// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), one per artifact — see DESIGN.md §3 for the mapping
// and EXPERIMENTS.md for paper-vs-measured values. Custom metrics carry
// the headline numbers of each artifact (latencies in virtual seconds,
// recall/hit-rate fractions, message counts) alongside the usual
// wall-clock cost of regenerating it.
//
// Run a single artifact with e.g.
//
//	go test -bench=BenchmarkTable4 -benchtime=1x .
package smartstore_test

import (
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/trace"
)

// benchParams returns the evaluation-scale parameters: 60 storage units
// (§5.1) and populations large enough for stable statistics while
// keeping the full bench sweep tractable.
func benchParams() experiments.Params {
	return experiments.Params{BaseFiles: 3000, Units: 60, Queries: 100, Seed: 2009}
}

func BenchmarkTable1_HPScaleUp(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if tb := experiments.TraceScaleUp(trace.HP(), p); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2_MSNScaleUp(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if tb := experiments.TraceScaleUp(trace.MSN(), p); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3_EECSScaleUp(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if tb := experiments.TraceScaleUp(trace.EECS(), p); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable4_QueryLatency(b *testing.B) {
	p := benchParams()
	p.Queries = 40
	var cells map[string]experiments.LatencyCell
	for i := 0; i < b.N; i++ {
		cells = experiments.QueryLatencyNumbers(trace.MSN(), 120, p)
	}
	b.ReportMetric(cells["range"].DBMS, "dbms_range_s")
	b.ReportMetric(cells["range"].RTree, "rtree_range_s")
	b.ReportMetric(cells["range"].SmartStore, "smart_range_s")
	b.ReportMetric(cells["range"].DBMS/cells["range"].SmartStore, "dbms_over_smart")
}

func BenchmarkFigure7_SpaceOverhead(b *testing.B) {
	p := benchParams()
	var smart, rtree, dbms int
	for i := 0; i < b.N; i++ {
		smart, rtree, dbms = experiments.SpaceOverheadNumbers(trace.MSN(), p)
	}
	b.ReportMetric(float64(smart)/1024, "smart_KB_per_node")
	b.ReportMetric(float64(rtree)/1024, "rtree_KB")
	b.ReportMetric(float64(dbms)/1024, "dbms_KB")
}

func BenchmarkFigure8_RoutingHops(b *testing.B) {
	p := benchParams()
	var h *stats.Histogram
	for i := 0; i < b.N; i++ {
		h = experiments.RoutingHopsHistogram(trace.MSN(), p)
	}
	b.ReportMetric(h.Fraction(0), "zero_hop_frac")
	b.ReportMetric(h.Fraction(1), "one_hop_frac")
}

func BenchmarkFigure9_PointHitRate(b *testing.B) {
	p := benchParams()
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = experiments.PointHitRateNumber(trace.MSN(), p)
	}
	b.ReportMetric(rate, "hit_rate")
}

func BenchmarkFigure10_RecallHP(b *testing.B) {
	p := benchParams()
	var tU, rU, tZ, rZ float64
	for i := 0; i < b.N; i++ {
		tU, rU = experiments.RecallHPNumbers(stats.Uniform, p)
		tZ, rZ = experiments.RecallHPNumbers(stats.Zipf, p)
	}
	b.ReportMetric(tU, "top8_uniform")
	b.ReportMetric(rU, "range_uniform")
	b.ReportMetric(tZ, "top8_zipf")
	b.ReportMetric(rZ, "range_zipf")
}

func BenchmarkFigure11_OptimalThresholds(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		a, bb := experiments.OptimalThresholds(p)
		if len(a.Rows) == 0 || len(bb.Rows) == 0 {
			b.Fatal("empty threshold tables")
		}
	}
}

func BenchmarkFigure12_RecallScale(b *testing.B) {
	p := benchParams()
	p.Queries = 60
	var small, large float64
	for i := 0; i < b.N; i++ {
		small = experiments.RecallScaleNumber(stats.Zipf, 20, p)
		large = experiments.RecallScaleNumber(stats.Zipf, 100, p)
	}
	b.ReportMetric(small, "recall_20_units")
	b.ReportMetric(large, "recall_100_units")
}

func BenchmarkFigure13_OnOffline(b *testing.B) {
	p := benchParams()
	p.Queries = 60
	var onLat, offLat, onMsg, offMsg float64
	for i := 0; i < b.N; i++ {
		onLat, offLat, onMsg, offMsg = experiments.OnOfflineNumbers(60, p)
	}
	b.ReportMetric(onLat, "online_s")
	b.ReportMetric(offLat, "offline_s")
	b.ReportMetric(onMsg, "online_msgs")
	b.ReportMetric(offMsg, "offline_msgs")
}

func BenchmarkFigure14_VersioningOverhead(b *testing.B) {
	p := benchParams()
	p.Queries = 60
	var space1, extra1, space8, extra8 float64
	for i := 0; i < b.N; i++ {
		space1, extra1 = experiments.VersioningOverheadNumbers(trace.MSN(), 1, p)
		space8, extra8 = experiments.VersioningOverheadNumbers(trace.MSN(), 8, p)
	}
	b.ReportMetric(space1/1024, "space_ratio1_KB")
	b.ReportMetric(space8/1024, "space_ratio8_KB")
	b.ReportMetric(extra1, "extra_latency_ratio1")
	b.ReportMetric(extra8, "extra_latency_ratio8")
}

func BenchmarkTable5_RecallVersioningMSN(b *testing.B) {
	p := benchParams()
	p.Queries = 50
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = experiments.RecallVersioningNumber(trace.MSN(), stats.Zipf, "range", p.Queries*3, false, p)
		on = experiments.RecallVersioningNumber(trace.MSN(), stats.Zipf, "range", p.Queries*3, true, p)
	}
	b.ReportMetric(off, "recall_no_versioning")
	b.ReportMetric(on, "recall_versioning")
}

func BenchmarkTable6_RecallVersioningEECS(b *testing.B) {
	p := benchParams()
	p.Queries = 50
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = experiments.RecallVersioningNumber(trace.EECS(), stats.Zipf, "range", p.Queries*3, false, p)
		on = experiments.RecallVersioningNumber(trace.EECS(), stats.Zipf, "range", p.Queries*3, true, p)
	}
	b.ReportMetric(off, "recall_no_versioning")
	b.ReportMetric(on, "recall_versioning")
}

func BenchmarkAblation_LSIvsKMeans(b *testing.B) {
	p := benchParams()
	p.Queries = 30
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationLSIvsKMeans(p); len(tb.Rows) != 3 {
			b.Fatal("unexpected ablation rows")
		}
	}
}

func BenchmarkAblation_BloomSizing(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationBloomSizing(p); len(tb.Rows) == 0 {
			b.Fatal("empty bloom ablation")
		}
	}
}

func BenchmarkAblation_AdmissionThreshold(b *testing.B) {
	p := benchParams()
	p.Queries = 30
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationAdmissionThreshold(p); len(tb.Rows) == 0 {
			b.Fatal("empty threshold ablation")
		}
	}
}

func BenchmarkAblation_AutoConfig(b *testing.B) {
	p := benchParams()
	p.Queries = 30
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationAutoConfig(p); len(tb.Rows) == 0 {
			b.Fatal("empty autoconfig ablation")
		}
	}
}

func BenchmarkAblation_ReplicaDepth(b *testing.B) {
	p := benchParams()
	p.Queries = 30
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationReplicaDepth(p); len(tb.Rows) == 0 {
			b.Fatal("empty replica-depth ablation")
		}
	}
}

// Service-path benchmarks: wall-clock cost of a query through the
// smartstored HTTP layer (in-process httptest server), capturing the
// serving trajectory — cached vs uncached, and concurrent fan-in —
// alongside the paper's simnet numbers.

// newServedBench stands up an in-process daemon over the bench-scale
// store.
func newServedBench(b *testing.B, cacheEntries int) *client.Client {
	return newShardedServedBench(b, cacheEntries, 1)
}

// newShardedServedBench stands up an in-process daemon over a store
// partitioned across the given engine shard count.
func newShardedServedBench(b *testing.B, cacheEntries, shards int) *client.Client {
	b.Helper()
	set, err := smartstore.GenerateTrace("MSN", 3000, 2009)
	if err != nil {
		b.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 60, Shards: shards, Seed: 2009})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(server.New(store, server.Options{CacheEntries: cacheEntries}))
	b.Cleanup(ts.Close)
	return client.New(ts.URL)
}

var servedAttrs = []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes, smartstore.AttrWriteBytes}

func BenchmarkServedRangeQuery_Uncached(b *testing.B) {
	cl := newServedBench(b, -1) // cache disabled: every request executes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Range(servedAttrs,
			[]float64{0, 0, 0}, []float64{40000 + float64(i%64), 4e7, 8e7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServedRangeQuery_Cached(b *testing.B) {
	cl := newServedBench(b, 1024)
	// Prime the cache, then every iteration is a hit.
	if _, err := cl.Range(servedAttrs, []float64{0, 0, 0}, []float64{40000, 4e7, 8e7}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cl.Range(servedAttrs, []float64{0, 0, 0}, []float64{40000, 4e7, 8e7})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("expected cache hit")
		}
	}
}

func BenchmarkServedTopK_Concurrent(b *testing.B) {
	cl := newServedBench(b, 1024)
	// A globally unique point per request — drawn from a shared counter
	// so goroutines never replay each other's keys — keeps this
	// measuring concurrent query execution rather than cache hits.
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := []float64{40000 + float64(seq.Add(1)), 3e7, 6e7}
			if _, err := cl.TopK(servedAttrs, p, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServedSharded_Concurrent measures concurrent mixed query
// throughput against 1 / 2 / 4 engine shards. On ≥2 cores the sharded
// engine's per-shard locking and parallel fan-out raise throughput with
// the shard count (per-shard slot hold times shrink with the shard's
// population); on a single core the fan-out is pure overhead and the
// sub-benchmarks document that floor instead.
func BenchmarkServedSharded_Concurrent(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cl := newShardedServedBench(b, -1, shards) // cache disabled: every request executes
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					if n%2 == 0 {
						p := []float64{40000 + float64(n), 3e7, 6e7}
						if _, err := cl.TopK(servedAttrs, p, 8); err != nil {
							b.Fatal(err)
						}
					} else {
						hi := 40000 + float64(n%512)
						if _, err := cl.Range(servedAttrs,
							[]float64{0, 0, 0}, []float64{hi, 4e7, 8e7}); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}
