package smartstore

import (
	"strconv"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Instrument attaches the store's metric sinks and registers its
// families on reg. The serving layer calls it once when it builds its
// registry; the store runs uninstrumented (and unmeasured — every hook
// is a nil check) until then. Histograms are shared across shards so
// the exposition shows one distribution per subsystem; per-shard skew
// is carried by the labeled counters.
func (s *Store) Instrument(reg *obs.Registry) {
	eo := &engine.Obs{
		ShardQueryNs:  &obs.Histogram{},
		ShardsVisited: &obs.Counter{},
		ShardsPruned:  &obs.Counter{},
		ShardInserts:  make([]*obs.Counter, s.Shards()),
		CkptLockNs:    &obs.Histogram{},
		CkptPersistNs: &obs.Histogram{},
		CkptRetireNs:  &obs.Histogram{},
	}
	reg.RegisterHistogram("smartstore_shard_query_duration_seconds", "",
		"Per-shard query execution wall time, one observation per shard per fan-out.",
		obs.ScaleNanos, eo.ShardQueryNs)
	reg.RegisterCounter("smartstore_shards_visited_total", "",
		"Fan-out shard visits that executed the query.", eo.ShardsVisited)
	reg.RegisterCounter("smartstore_shards_pruned_total", "",
		"Fan-out shard visits pruned by root MBR/Bloom rejection.", eo.ShardsPruned)
	for i := range eo.ShardInserts {
		c := &obs.Counter{}
		eo.ShardInserts[i] = c
		reg.RegisterCounter("smartstore_shard_inserts_total",
			obs.Labels("shard", strconv.Itoa(i)),
			"Files routed to each shard by semantic placement.", c)
	}
	for _, p := range []struct {
		phase string
		hist  *obs.Histogram
	}{
		{"lock", eo.CkptLockNs},
		{"persist", eo.CkptPersistNs},
		{"retire", eo.CkptRetireNs},
	} {
		reg.RegisterHistogram("smartstore_checkpoint_phase_duration_seconds",
			obs.Labels("phase", p.phase),
			"Checkpoint phase durations: lock (capture+rotate under shard locks), persist (snapshot encode+fsync), retire (sealed-segment deletion).",
			obs.ScaleNanos, p.hist)
	}
	s.eng.SetObs(eo)

	reg.RegisterGaugeFunc("smartstore_files", "",
		"Files currently stored.", func() float64 { return float64(s.Stats().Files) })
	reg.RegisterGaugeFunc("smartstore_epoch", "",
		"Composed mutation epoch (sum of per-shard epochs; monotonic).",
		func() float64 { return float64(s.Epoch()) })
	reg.RegisterGaugeFunc("smartstore_shards", "",
		"Engine shard count.", func() float64 { return float64(s.Shards()) })

	if s.logs == nil {
		return
	}
	wo := &wal.Observer{
		AppendNs:   &obs.Histogram{},
		FsyncNs:    &obs.Histogram{},
		Fsyncs:     &obs.Counter{},
		GroupBatch: &obs.Histogram{},
	}
	for _, l := range s.logs {
		l.SetObserver(wo)
	}
	reg.RegisterHistogram("smartstore_wal_append_duration_seconds", "",
		"WAL append latency including the group-commit fsync wait.",
		obs.ScaleNanos, wo.AppendNs)
	reg.RegisterHistogram("smartstore_wal_fsync_duration_seconds", "",
		"Duration of serving-path WAL fsyncs.", obs.ScaleNanos, wo.FsyncNs)
	reg.RegisterCounter("smartstore_wal_fsyncs_total", "",
		"Serving-path WAL fsyncs issued.", wo.Fsyncs)
	reg.RegisterHistogram("smartstore_wal_group_commit_batch_size", "",
		"Appends acknowledged per group-commit fsync.", 1, wo.GroupBatch)
	reg.RegisterGaugeFunc("smartstore_wal_bytes", "",
		"Total valid WAL length across shards.", func() float64 { return float64(s.WALStats().Bytes) })
	reg.RegisterGaugeFunc("smartstore_wal_segments", "",
		"Live WAL segment files across shards.", func() float64 { return float64(s.WALStats().Segments) })
	reg.RegisterCounterFunc("smartstore_wal_rotations_total", "",
		"WAL segment rotations (capacity- and checkpoint-triggered).",
		func() float64 { return float64(s.WALStats().Rotations) })
	reg.RegisterCounterFunc("smartstore_wal_group_commits_total", "",
		"Group-commit fsync batches issued.", func() float64 { return float64(s.WALStats().GroupCommits) })
	reg.RegisterCounterFunc("smartstore_wal_grouped_records_total", "",
		"Appends acknowledged by group-commit batches.", func() float64 { return float64(s.WALStats().GroupedRecords) })
	reg.RegisterCounterFunc("smartstore_checkpoints_auto_total", "",
		"Checkpoints triggered by the WAL-size threshold.", func() float64 { return float64(s.autoCheckpoints.Load()) })
	reg.RegisterCounterFunc("smartstore_checkpoint_failures_total", "",
		"Auto-triggered checkpoints that failed.", func() float64 { return float64(s.autoCheckpointFailures.Load()) })
}
