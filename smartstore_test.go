package smartstore_test

import (
	"testing"

	smartstore "repro"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/trace"
)

func buildStore(t testing.TB, n int, cfg smartstore.Config) (*smartstore.Store, *smartstore.TraceSet) {
	t.Helper()
	set, err := smartstore.GenerateTrace("MSN", n, 42)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return store, set
}

func TestBuildErrors(t *testing.T) {
	if _, err := smartstore.Build(nil, smartstore.Config{}); err == nil {
		t.Fatal("Build(nil) should error")
	}
	set, _ := smartstore.GenerateTrace("MSN", 10, 1)
	if _, err := smartstore.Build(set.Files, smartstore.Config{Units: 100}); err == nil {
		t.Fatal("more units than files should error")
	}
	if _, err := smartstore.Build(set.Files, smartstore.Config{Units: 4, Shards: 8}); err == nil {
		t.Fatal("more shards than units should error")
	}
}

// Invalid fan-out bounds must surface as a Build error, not a panic out
// of the tree layer — configuration can arrive from daemon flags.
func TestBuildRejectsInvalidFanOut(t *testing.T) {
	set, _ := smartstore.GenerateTrace("MSN", 200, 1)
	bad := []smartstore.Config{
		{Units: 10, MaxChildren: 10, MinChildren: 7},
		{Units: 10, MaxChildren: 10, MinChildren: 1},
		{Units: 10, MaxChildren: 3, MinChildren: 2},
		{Units: 10, MaxChildren: -2},
		{Units: 10, BaseThreshold: 1.5},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("config %d: Build panicked: %v", i, r)
				}
			}()
			if _, err := smartstore.Build(set.Files, cfg); err == nil {
				t.Fatalf("config %d accepted: %+v", i, cfg)
			}
		}()
	}
	// The boundary values are legal and must still build.
	if _, err := smartstore.Build(set.Files, smartstore.Config{Units: 10, MaxChildren: 4, MinChildren: 2}); err != nil {
		t.Fatalf("legal fan-out rejected: %v", err)
	}
}

func TestGenerateTraceUnknown(t *testing.T) {
	if _, err := smartstore.GenerateTrace("nope", 10, 1); err == nil {
		t.Fatal("unknown trace should error")
	}
}

func TestStatsShape(t *testing.T) {
	store, _ := buildStore(t, 600, smartstore.Config{Units: 12})
	st := store.Stats()
	if st.Units != 12 || st.Files != 600 || st.Trees != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.IndexUnits < 1 || st.TreeHeight < 2 {
		t.Fatalf("tree shape = %+v", st)
	}
	if st.IndexBytesTotal <= 0 || st.IndexBytesPerNode <= 0 {
		t.Fatalf("index size = %+v", st)
	}
}

func TestPointQuery(t *testing.T) {
	store, set := buildStore(t, 500, smartstore.Config{Units: 10})
	for i := 0; i < 50; i++ {
		f := set.Files[(i*17)%len(set.Files)]
		ids, rep := store.PointQuery(f.Path)
		found := false
		for _, id := range ids {
			if id == f.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("point query missed %q", f.Path)
		}
		if rep.Latency <= 0 || rep.Messages == 0 {
			t.Fatalf("report = %+v", rep)
		}
	}
}

func TestRangeQueryOfflineAndOnline(t *testing.T) {
	for _, mode := range []smartstore.Mode{smartstore.OffLine, smartstore.OnLine} {
		store, set := buildStore(t, 800, smartstore.Config{Units: 10, Mode: mode, Seed: uint64(mode)})
		gen := trace.NewQueryGen(set, stats.Zipf, nil, 7)
		var rec stats.Summary
		for i := 0; i < 30; i++ {
			q := gen.Range(0.08)
			ids, _ := store.RangeQuery(q.Attrs, q.Lo, q.Hi)
			want := query.RangeTruth(set.Files, q)
			if len(want) == 0 {
				continue
			}
			rec.Add(stats.Recall(want, ids))
		}
		if rec.N() > 0 && mode == smartstore.OnLine && rec.Mean() != 1 {
			t.Fatalf("online recall = %v, want 1", rec.Mean())
		}
		if rec.N() > 0 && rec.Mean() < 0.7 {
			t.Fatalf("mode %v recall = %v too low", mode, rec.Mean())
		}
	}
}

func TestTopKQueryReturnsK(t *testing.T) {
	store, set := buildStore(t, 500, smartstore.Config{Units: 8})
	gen := trace.NewQueryGen(set, stats.Gauss, nil, 11)
	for i := 0; i < 20; i++ {
		q := gen.TopK(6)
		ids, rep := store.TopKQuery(q.Attrs, q.Point, 6)
		if len(ids) != 6 {
			t.Fatalf("topk returned %d, want 6", len(ids))
		}
		if rep.Latency <= 0 {
			t.Fatal("no latency accounted")
		}
	}
}

func TestInsertDeleteModifyLifecycle(t *testing.T) {
	store, set := buildStore(t, 400, smartstore.Config{
		Units: 8, Versioning: true, LazyUpdateThreshold: 0.9,
	})
	nf := &smartstore.File{ID: 777777, Path: "/lifecycle/test.bin"}
	nf.Attrs = set.Files[0].Attrs

	rep, err := store.Insert(nf)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if rep.Latency <= 0 {
		t.Fatal("insert latency missing")
	}
	if _, err := store.Insert(nf); err == nil {
		t.Fatal("re-inserting an existing id did not error")
	}
	ids, _ := store.PointQuery(nf.Path)
	found := false
	for _, id := range ids {
		if id == nf.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted file not findable with versioning on")
	}

	mod := *nf
	mod.Attrs[smartstore.AttrSize] = 1
	if _, ok, err := store.Modify(&mod); err != nil || !ok {
		t.Fatal("Modify failed")
	}
	if _, ok, err := store.Delete(nf.ID); err != nil || !ok {
		t.Fatal("Delete failed")
	}
	if _, ok, _ := store.Delete(nf.ID); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestFlushMakesInsertsVisibleWithoutVersioning(t *testing.T) {
	store, set := buildStore(t, 400, smartstore.Config{
		Units: 8, Versioning: false, LazyUpdateThreshold: 0.9,
	})
	nf := &smartstore.File{ID: 888888, Path: "/flush/test.bin"}
	nf.Attrs = set.Files[0].Attrs
	if _, err := store.Insert(nf); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	ids, _ := store.PointQuery(nf.Path)
	for _, id := range ids {
		if id == nf.ID {
			t.Fatal("unpropagated insert visible without versioning")
		}
	}
	store.Flush()
	ids, _ = store.PointQuery(nf.Path)
	found := false
	for _, id := range ids {
		if id == nf.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("insert invisible after Flush")
	}
}

func TestAutoConfigRoutesQueries(t *testing.T) {
	store, set := buildStore(t, 600, smartstore.Config{
		Units: 10, AutoConfig: true, AutoConfigThreshold: 0.01,
	})
	st := store.Stats()
	if st.Trees < 2 {
		t.Skip("no specialized trees kept at this threshold")
	}
	// A size-only query routes somewhere and returns sound results.
	lo, hi := set.Norm.Bounds(smartstore.AttrSize)
	ids, _ := store.RangeQuery(
		[]smartstore.Attr{smartstore.AttrSize},
		[]float64{lo}, []float64{lo + (hi-lo)*0.2},
	)
	q := query.NewRange([]smartstore.Attr{smartstore.AttrSize},
		[]float64{lo}, []float64{lo + (hi-lo)*0.2})
	want := query.RangeTruth(set.Files, q)
	if len(want) > 0 && stats.Recall(want, ids) < 0.5 {
		t.Fatalf("autoconfig size-query recall = %v", stats.Recall(want, ids))
	}
}

func TestVirtualScaleRaisesLatency(t *testing.T) {
	small, set := buildStore(t, 500, smartstore.Config{Units: 10, Seed: 3})
	big, err := smartstore.Build(set.Files, smartstore.Config{Units: 10, Seed: 3, VirtualScale: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	// A full-space window guarantees records are scanned.
	attrs := []smartstore.Attr{smartstore.AttrSize}
	lo, hi := set.Norm.Bounds(smartstore.AttrSize)
	_, rs := small.RangeQuery(attrs, []float64{lo}, []float64{hi})
	_, rb := big.RangeQuery(attrs, []float64{lo}, []float64{hi})
	if rb.Latency <= rs.Latency {
		t.Fatalf("scaled latency %v not above unscaled %v", rb.Latency, rs.Latency)
	}
}

func TestDefaultCostModelExposed(t *testing.T) {
	if smartstore.DefaultCostModel().HopLatency <= 0 {
		t.Fatal("cost model not exposed")
	}
}
