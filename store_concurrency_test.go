// Concurrent-access coverage for the Store's locking layer: parallel
// complex queries hammered against interleaved mutations must be
// race-clean (run with -race) and structurally consistent throughout.
package smartstore_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	smartstore "repro"
)

func buildConcurrencyStore(t testing.TB) (*smartstore.Store, *smartstore.TraceSet) {
	t.Helper()
	set, err := smartstore.GenerateTrace("MSN", 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Build from clones: Modify writes the stored *File's attributes in
	// place, and the test's readers consult set.Files without the store
	// lock — sharing the pointers would be a data race in the test, not
	// the store.
	clones := make([]*smartstore.File, len(set.Files))
	for i, f := range set.Files {
		cp := *f
		clones[i] = &cp
	}
	store, err := smartstore.Build(clones, smartstore.Config{Units: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return store, set
}

func TestConcurrentQueriesAndMutations(t *testing.T) {
	store, set := buildConcurrencyStore(t)
	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes}

	const (
		readers    = 4
		writers    = 2
		iterations = 60
	)
	var nextID atomic.Uint64
	nextID.Store(store.MaxFileID())

	var wg sync.WaitGroup
	// Readers interleave every query shape plus stats and the derived
	// application queries.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				f := set.Files[(r*131+i*17)%len(set.Files)]
				switch i % 5 {
				case 0:
					ids, rep := store.RangeQuery(attrs,
						[]float64{0, 0}, []float64{f.Attrs[smartstore.AttrMTime], 1e12})
					if rep.Messages == 0 && len(ids) > 0 {
						t.Error("range query returned ids with zero messages")
					}
				case 1:
					ids, _ := store.TopKQuery(attrs,
						[]float64{f.Attrs[smartstore.AttrMTime], f.Attrs[smartstore.AttrReadBytes]}, 4)
					if len(ids) > 4 {
						t.Errorf("top-4 returned %d ids", len(ids))
					}
				case 2:
					store.PointQuery(f.Path)
				case 3:
					if st := store.Stats(); st.Units == 0 || st.Files == 0 {
						t.Errorf("stats degenerate mid-run: %+v", st)
					}
				case 4:
					store.Correlated(f.Path, 3)
				}
			}
		}(r)
	}
	// Writers insert fresh files, modify and delete existing ones, and
	// occasionally force propagation.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				switch i % 4 {
				case 0:
					id := nextID.Add(1)
					src := set.Files[(w*37+i)%len(set.Files)]
					if _, err := store.Insert(&smartstore.File{
						ID:    id,
						Path:  fmt.Sprintf("/conc/w%d/f%d", w, i),
						Attrs: src.Attrs,
					}); err != nil {
						t.Errorf("insert of fresh id %d: %v", id, err)
					}
				case 1:
					f := *set.Files[(w*53+i*29)%len(set.Files)]
					f.Attrs[smartstore.AttrSize] += 1
					if _, _, err := store.Modify(&f); err != nil {
						t.Errorf("modify: %v", err)
					}
				case 2:
					id := nextID.Add(1)
					src := set.Files[(w*41+i)%len(set.Files)]
					batch := []*smartstore.File{
						{ID: id, Path: fmt.Sprintf("/conc/w%d/b%d", w, i), Attrs: src.Attrs},
					}
					if _, err := store.InsertBatch(batch); err != nil {
						t.Errorf("batch insert of fresh id %d: %v", id, err)
					}
					if _, _, err := store.Delete(id); err != nil {
						t.Errorf("delete: %v", err)
					}
				case 3:
					store.Flush()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := store.Epoch(); got == 0 {
		t.Fatal("mutation epoch never advanced")
	}
	st := store.Stats()
	if st.Files < 2000 {
		t.Fatalf("files lost under concurrency: %d < 2000", st.Files)
	}
}

func TestEpochAdvancesPerMutation(t *testing.T) {
	store, set := buildConcurrencyStore(t)
	if store.Epoch() != 0 {
		t.Fatalf("fresh store epoch %d", store.Epoch())
	}
	f := &smartstore.File{ID: store.MaxFileID() + 1, Path: "/epoch/a.dat", Attrs: set.Files[0].Attrs}
	if _, err := store.Insert(f); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if store.Epoch() != 1 {
		t.Fatalf("epoch after insert: %d", store.Epoch())
	}
	store.Modify(f)
	store.Delete(f.ID)
	store.Flush() // delete left pending changes → flush bumps
	if store.Epoch() != 4 {
		t.Fatalf("epoch after modify+delete+flush: %d", store.Epoch())
	}
	// No-op mutations must not invalidate caches: delete of a missing
	// id, modify of a missing file, flush with nothing pending.
	if _, found, _ := store.Delete(f.ID); found {
		t.Fatal("second delete reported found")
	}
	missing := *f
	missing.ID = store.MaxFileID() + 100
	if _, found, _ := store.Modify(&missing); found {
		t.Fatal("modify of missing id reported found")
	}
	store.Flush()
	if store.Epoch() != 4 {
		t.Fatalf("no-op mutations advanced epoch to %d", store.Epoch())
	}
	// Queries must not advance the epoch.
	store.PointQuery("/epoch/a.dat")
	store.RangeQuery([]smartstore.Attr{smartstore.AttrMTime}, []float64{0}, []float64{1})
	if store.Epoch() != 4 {
		t.Fatalf("read path advanced epoch to %d", store.Epoch())
	}
	// Empty batches commit nothing and bump nothing.
	if _, err := store.InsertBatch(nil); err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
	if store.Epoch() != 4 {
		t.Fatalf("empty batch advanced epoch to %d", store.Epoch())
	}
	// Batches reusing a stored id, repeating an id internally, or
	// missing an id are rejected whole without bumping the epoch.
	existing := set.Files[0]
	dup := &smartstore.File{ID: existing.ID, Path: "/epoch/dup.dat", Attrs: existing.Attrs}
	if _, err := store.InsertBatch([]*smartstore.File{dup}); err == nil {
		t.Fatal("batch with already-stored id accepted")
	}
	a := &smartstore.File{ID: store.MaxFileID() + 50, Path: "/epoch/x.dat", Attrs: existing.Attrs}
	b := &smartstore.File{ID: a.ID, Path: "/epoch/y.dat", Attrs: existing.Attrs}
	if _, err := store.InsertBatch([]*smartstore.File{a, b}); err == nil {
		t.Fatal("batch with internal duplicate id accepted")
	}
	if _, err := store.InsertBatch([]*smartstore.File{{Path: "/epoch/noid.dat"}}); err == nil {
		t.Fatal("batch with zero id accepted")
	}
	if store.Epoch() != 4 {
		t.Fatalf("rejected batches advanced epoch to %d", store.Epoch())
	}
	if ids, _ := store.PointQuery("/epoch/x.dat"); len(ids) != 0 {
		t.Fatal("rejected batch partially inserted")
	}
}
