package smartstore_test

import (
	"context"
	"errors"
	"testing"

	smartstore "repro"
)

func TestDoValidationErrors(t *testing.T) {
	store, _ := buildStore(t, 400, smartstore.Config{Units: 8})
	ctx := context.Background()
	attrs := []smartstore.Attr{smartstore.AttrMTime}

	cases := []struct {
		name string
		q    smartstore.Query
	}{
		{"range dim mismatch", smartstore.NewRangeQuery(attrs, []float64{0, 1}, []float64{2})},
		{"range no dims", smartstore.NewRangeQuery(nil, nil, nil)},
		{"topk dim mismatch", smartstore.NewTopKQuery(attrs, []float64{1, 2}, 3)},
		{"topk k=0", smartstore.NewTopKQuery(attrs, []float64{1}, 0)},
		{"topk negative k", smartstore.NewTopKQuery(attrs, []float64{1}, -4)},
		{"negative limit", smartstore.NewPointQuery("/x").
			WithOptions(smartstore.QueryOptions{Limit: -1})},
		{"unknown kind", smartstore.Query{Kind: smartstore.QueryKind(99)}},
	}
	for _, tc := range cases {
		_, err := store.Do(ctx, tc.q)
		if err == nil {
			t.Errorf("%s: Do returned nil error", tc.name)
			continue
		}
		if !errors.Is(err, smartstore.ErrInvalidQuery) {
			t.Errorf("%s: error %v does not wrap ErrInvalidQuery", tc.name, err)
		}
	}
}

func TestDoCancelledContext(t *testing.T) {
	store, set := buildStore(t, 400, smartstore.Config{Units: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := store.Do(ctx, smartstore.NewPointQuery(set.Files[0].Path))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do with cancelled ctx: err %v, want context.Canceled", err)
	}
	// A valid query on a live context still works afterwards.
	if _, err := store.Do(context.Background(), smartstore.NewPointQuery(set.Files[0].Path)); err != nil {
		t.Fatalf("Do after cancellation: %v", err)
	}
}

func TestDoMatchesLegacyWrappers(t *testing.T) {
	store, set := buildStore(t, 800, smartstore.Config{Units: 12})
	ctx := context.Background()
	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes}
	lo := []float64{0, 0}
	hi := []float64{1e9, 1e12}

	legacyIDs, _ := store.RangeQuery(attrs, lo, hi)
	res, err := store.Do(ctx, smartstore.NewRangeQuery(attrs, lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != len(legacyIDs) {
		t.Fatalf("Do range %d ids, legacy %d", len(res.IDs), len(legacyIDs))
	}

	f := set.Files[33]
	legacyIDs, _ = store.PointQuery(f.Path)
	res, err = store.Do(ctx, smartstore.NewPointQuery(f.Path))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != len(legacyIDs) {
		t.Fatalf("Do point %d ids, legacy %d", len(res.IDs), len(legacyIDs))
	}

	point := []float64{f.Attrs[smartstore.AttrMTime], f.Attrs[smartstore.AttrReadBytes]}
	legacyIDs, _ = store.TopKQuery(attrs, point, 7)
	res, err = store.Do(ctx, smartstore.NewTopKQuery(attrs, point, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != len(legacyIDs) {
		t.Fatalf("Do topk %d ids, legacy %d", len(res.IDs), len(legacyIDs))
	}
}

func TestDoIncludeRecordsProjection(t *testing.T) {
	store, set := buildStore(t, 600, smartstore.Config{Units: 10})
	f := set.Files[100]
	res, err := store.Do(context.Background(), smartstore.NewPointQuery(f.Path).
		WithOptions(smartstore.QueryOptions{IncludeRecords: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 {
		t.Fatal("point query found nothing")
	}
	if len(res.Records) != len(res.IDs) {
		t.Fatalf("%d records for %d ids", len(res.Records), len(res.IDs))
	}
	for i, rec := range res.Records {
		if rec.ID != res.IDs[i] {
			t.Fatalf("record[%d] id %d != ids[%d] %d", i, rec.ID, i, res.IDs[i])
		}
		if rec.Path != f.Path {
			t.Fatalf("record path %q want %q", rec.Path, f.Path)
		}
	}

	// Without the option, no records travel.
	res, err = store.Do(context.Background(), smartstore.NewPointQuery(f.Path))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != nil {
		t.Fatalf("records projected without IncludeRecords: %d", len(res.Records))
	}
}

func TestDoLimitTruncation(t *testing.T) {
	store, _ := buildStore(t, 600, smartstore.Config{Units: 10})
	attrs := []smartstore.Attr{smartstore.AttrMTime}
	wide := smartstore.NewRangeQuery(attrs, []float64{0}, []float64{1e12})

	full, err := store.Do(context.Background(), wide)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.IDs) < 10 {
		t.Fatalf("wide range matched only %d files", len(full.IDs))
	}
	if full.Truncated {
		t.Fatal("unlimited query reported truncation")
	}

	lim, err := store.Do(context.Background(), wide.
		WithOptions(smartstore.QueryOptions{Limit: 5, IncludeRecords: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.IDs) != 5 || !lim.Truncated {
		t.Fatalf("limit 5: %d ids, truncated=%v", len(lim.IDs), lim.Truncated)
	}
	if len(lim.Records) != 5 {
		t.Fatalf("limit 5 projected %d records", len(lim.Records))
	}
}

func TestDoPerQueryModeOverride(t *testing.T) {
	// Enough storage units that the off-line path's routed-group cap is
	// well below the group count — otherwise both paths search every
	// group and are indistinguishable.
	store, _ := buildStore(t, 3000, smartstore.Config{Units: 60}) // default OffLine
	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes}
	q := smartstore.NewRangeQuery(attrs, []float64{0, 0}, []float64{1e9, 1e12})

	off, err := store.Do(context.Background(), q.
		WithOptions(smartstore.QueryOptions{Mode: smartstore.ModeOffline}))
	if err != nil {
		t.Fatal(err)
	}
	on, err := store.Do(context.Background(), q.
		WithOptions(smartstore.QueryOptions{Mode: smartstore.ModeOnline}))
	if err != nil {
		t.Fatal(err)
	}
	// The on-line multicast contacts every first-level group host; the
	// off-line path only the routed subset — message counts must show it.
	if on.Report.Messages <= off.Report.Messages {
		t.Fatalf("online messages %d not above offline %d",
			on.Report.Messages, off.Report.Messages)
	}
	// The exact on-line snapshot answer is a superset of off-line recall.
	if len(on.IDs) < len(off.IDs) {
		t.Fatalf("online found %d ids, offline %d", len(on.IDs), len(off.IDs))
	}
}

func TestMaxFileIDIncremental(t *testing.T) {
	store, set := buildStore(t, 300, smartstore.Config{Units: 6})
	var want uint64
	for _, f := range set.Files {
		if f.ID > want {
			want = f.ID
		}
	}
	if got := store.MaxFileID(); got != want {
		t.Fatalf("MaxFileID %d want %d", got, want)
	}

	// Insert above the max; the incremental index must follow.
	src := set.Files[0]
	high := &smartstore.File{ID: want + 500, Path: "/max/high.dat", Attrs: src.Attrs}
	if _, err := store.Insert(high); err != nil {
		t.Fatal(err)
	}
	if got := store.MaxFileID(); got != want+500 {
		t.Fatalf("MaxFileID after insert %d want %d", got, want+500)
	}

	// Deleting the max falls back to the previous maximum.
	if _, found, _ := store.Delete(want + 500); !found {
		t.Fatal("delete of max id not found")
	}
	if got := store.MaxFileID(); got != want {
		t.Fatalf("MaxFileID after delete %d want %d", got, want)
	}
}
