package smartstore

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Durability selects when write-ahead-log appends reach stable storage
// on a durable store (Config.DataDir set).
type Durability int

const (
	// DurabilityAlways fsyncs every WAL append before the mutation is
	// acknowledged — the default, and the only policy that survives
	// power loss with zero acknowledged-mutation loss.
	DurabilityAlways Durability = iota
	// DurabilityInterval batches fsyncs on a background timer
	// (Config.SyncInterval): full throughput, bounded loss window on
	// power failure, zero loss on a process crash.
	DurabilityInterval
	// DurabilityNever leaves flushing entirely to the OS page cache:
	// zero loss on a process crash, no guarantee on power failure.
	DurabilityNever
)

// String returns the policy's flag spelling.
func (d Durability) String() string {
	switch d {
	case DurabilityAlways:
		return "always"
	case DurabilityInterval:
		return "interval"
	case DurabilityNever:
		return "never"
	}
	return fmt.Sprintf("durability(%d)", int(d))
}

// ParseDurability resolves a policy's flag spelling ("always",
// "interval", "never") — the inverse of String, shared with the
// daemon's -fsync flag.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "always":
		return DurabilityAlways, nil
	case "interval":
		return DurabilityInterval, nil
	case "never":
		return DurabilityNever, nil
	}
	return 0, fmt.Errorf("smartstore: unknown durability %q (want always, interval or never)", s)
}

func (d Durability) syncPolicy() wal.SyncPolicy {
	switch d {
	case DurabilityInterval:
		return wal.SyncInterval
	case DurabilityNever:
		return wal.SyncNever
	}
	return wal.SyncAlways
}

// snapshotFileName is the recovery-base snapshot inside a data dir;
// shard WAL segment directories sit beside it.
const snapshotFileName = "snapshot.snap"

func snapshotPath(dir string) string { return filepath.Join(dir, snapshotFileName) }

// walDirName is shard i's segment directory inside the data dir.
func walDirName(shard int) string { return fmt.Sprintf("shard-%04d.wal", shard) }

// DataDirInitialized reports whether dir already holds a durable
// store's recovery base — the operator-facing probe the daemon uses to
// pick Open (recover) over Build (bootstrap).
func DataDirInitialized(dir string) bool {
	_, err := os.Stat(snapshotPath(dir))
	return err == nil
}

// initDataDir makes a freshly built (or freshly loaded) store durable:
// it creates the data dir, opens one empty WAL per shard, and writes
// the initial checkpoint that recovery will replay WAL tails against.
// A data dir that already holds a snapshot or logged records is
// refused — re-initializing it would silently orphan the previous
// deployment's state; recover it with Open instead.
func (s *Store) initDataDir() error {
	dir := s.cfg.DataDir
	if DataDirInitialized(dir) {
		return fmt.Errorf("smartstore: data dir %s already initialized (recover it with Open)", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("smartstore: %w", err)
	}
	sweepStaleTemp(dir)
	logs, tails, err := openLogs(dir, s.eng.Shards(), s.cfg.Durability.syncPolicy(), s.cfg.WALSegmentBytes)
	if err != nil {
		return err
	}
	for i, tail := range tails {
		if len(tail) > 0 {
			closeLogs(logs)
			return fmt.Errorf("smartstore: data dir %s holds %d logged records for shard %d (recover it with Open)",
				dir, len(tail), i)
		}
	}
	if err := s.eng.AttachWAL(logs); err != nil {
		closeLogs(logs)
		return fmt.Errorf("smartstore: %w", err)
	}
	s.logs = logs
	if err := s.Checkpoint(); err != nil {
		closeLogs(logs)
		return err
	}
	s.startSyncLoop()
	s.startCheckpointLoop()
	return nil
}

// Open recovers a durable store from cfg.DataDir: the checkpoint
// snapshot is loaded, each shard's WAL tail — every mutation
// acknowledged since that checkpoint — is replayed independently and
// in parallel past the snapshot's per-shard epoch truncation points,
// and a fresh checkpoint is written before the store is returned. No
// acknowledged mutation is lost across a crash, torn final records are
// discarded, and a multi-shard insert batch that did not reach every
// target's log (never acknowledged) is dropped atomically.
//
// Like Load, cfg's structural fields (Units, Attrs, Shards, fan-out,
// threshold) come from the snapshot; cfg supplies the deployment knobs
// (Seed, Versioning, Mode, ...) and the durability policy.
func Open(cfg Config) (*Store, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("smartstore: Open needs Config.DataDir")
	}
	sweepStaleTemp(cfg.DataDir)
	f, err := os.Open(snapshotPath(cfg.DataDir))
	if err != nil {
		return nil, fmt.Errorf("smartstore: data dir %s has no snapshot (initialize it with Build): %w",
			cfg.DataDir, err)
	}
	snap, err := snapshot.Read(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	s, err := restoreFromSnapshot(snap, cfg)
	if err != nil {
		return nil, err
	}

	epochs := snap.ShardEpochs()
	if err := s.eng.SetShardEpochs(epochs); err != nil {
		return nil, fmt.Errorf("smartstore: %w", err)
	}
	logs, tails, err := openLogs(cfg.DataDir, s.eng.Shards(), cfg.Durability.syncPolicy(), cfg.WALSegmentBytes)
	if err != nil {
		return nil, err
	}
	if _, err := s.eng.Recover(tails, epochs); err != nil {
		closeLogs(logs)
		return nil, fmt.Errorf("smartstore: %w", err)
	}
	if err := s.eng.AttachWAL(logs); err != nil {
		closeLogs(logs)
		return nil, fmt.Errorf("smartstore: %w", err)
	}
	s.logs = logs
	// Checkpoint the recovered state immediately when the logs held
	// anything: the replayed tail folds into the snapshot and the logs
	// restart empty, so this boot's batch ids cannot collide with
	// records from the last one. After a clean shutdown every tail is
	// empty — the snapshot is already current and no batch id can
	// linger, so the boot skips the redundant full-store write.
	for _, tail := range tails {
		if len(tail) > 0 {
			if err := s.Checkpoint(); err != nil {
				closeLogs(logs)
				return nil, err
			}
			break
		}
	}
	s.startSyncLoop()
	s.startCheckpointLoop()
	return s, nil
}

// openLogs opens (creating if absent) one segmented WAL per shard under
// dir, returning the logs and their scanned tails.
func openLogs(dir string, shards int, policy wal.SyncPolicy, segmentBytes int64) ([]*wal.Log, [][]wal.Record, error) {
	logs := make([]*wal.Log, shards)
	tails := make([][]wal.Record, shards)
	for i := 0; i < shards; i++ {
		l, tail, err := wal.Open(filepath.Join(dir, walDirName(i)), i, policy,
			wal.Options{SegmentBytes: segmentBytes})
		if err != nil {
			closeLogs(logs[:i])
			return nil, nil, fmt.Errorf("smartstore: %w", err)
		}
		logs[i] = l
		tails[i] = tail
	}
	return logs, tails, nil
}

func closeLogs(logs []*wal.Log) {
	for _, l := range logs {
		if l != nil {
			l.Close()
		}
	}
}

// Checkpoint persists the store's current state to the data dir and
// retires the WAL segments the snapshot covers. The protocol is
// lock-light: the capture (a memory copy) and a per-shard segment
// rotation happen under the all-shard read locks — taken in the
// engine's total lock order, so a checkpoint racing a multi-shard
// batch observes all of it or none of it — and the expensive part (gob
// encode, fsync, rename) runs after the locks are released, with
// writers committing into the fresh segments concurrently. Only once
// the snapshot is durable are the sealed segments deleted; a crash
// anywhere in between recovers from whichever snapshot the rename left
// in place, with leftover records skipped via the snapshot's per-shard
// epoch truncation points.
func (s *Store) Checkpoint() error {
	if s.cfg.DataDir == "" {
		return fmt.Errorf("smartstore: Checkpoint needs Config.DataDir")
	}
	return s.eng.Checkpoint(func(snap *snapshot.Snapshot) error {
		return writeSnapshotAtomic(s.cfg.DataDir, snap)
	})
}

// startCheckpointLoop runs the WAL-size-triggered checkpointer: after
// every mutation the store compares the total WAL size against
// Config.CheckpointBytes and, past it, kicks this loop (non-blocking,
// coalescing) to fold the logs into a snapshot. Disabled when
// CheckpointBytes is zero.
func (s *Store) startCheckpointLoop() {
	if s.cfg.CheckpointBytes <= 0 {
		return
	}
	s.ckptKick = make(chan struct{}, 1)
	s.ckptStop = make(chan struct{})
	s.ckptDone = make(chan struct{})
	go func() {
		defer close(s.ckptDone)
		for {
			select {
			case <-s.ckptKick:
				// Re-check under the kick: a periodic checkpoint may
				// have drained the logs between the kick and now.
				if s.walBytes() < s.cfg.CheckpointBytes {
					continue
				}
				if err := s.Checkpoint(); err == nil {
					s.autoCheckpoints.Add(1)
				} else {
					// The WAL still holds everything and the next
					// mutation's kick retries; the failure counter
					// (WALStats, /v1/stats) is how an operator learns
					// auto-checkpoints are failing while the log grows.
					s.autoCheckpointFailures.Add(1)
				}
			case <-s.ckptStop:
				return
			}
		}
	}()
}

// noteMutation is the post-mutation hook of WAL-size-triggered
// checkpointing: cheap (one atomic-free size sum on a durable store,
// nothing otherwise), it kicks the checkpoint loop when the logs have
// outgrown Config.CheckpointBytes.
func (s *Store) noteMutation() {
	if s.ckptKick == nil {
		return
	}
	if s.walBytes() < s.cfg.CheckpointBytes {
		return
	}
	select {
	case s.ckptKick <- struct{}{}:
	default: // a kick is already pending; the loop coalesces them
	}
}

// walBytes sums the live WAL size across shards.
func (s *Store) walBytes() int64 {
	var total int64
	for _, l := range s.logs {
		total += l.Size()
	}
	return total
}

// sweepStaleTemp removes snapshot temp files orphaned by a crash
// mid-checkpoint — the rename never happened, so they are garbage that
// would otherwise accumulate a full store's size per crash.
func sweepStaleTemp(dir string) {
	matches, err := filepath.Glob(filepath.Join(dir, snapshotFileName+".tmp*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		os.Remove(m)
	}
}

// writeSnapshotAtomic lands a snapshot with the standard
// write-tmp/fsync/rename/fsync-dir sequence, so the data dir always
// holds exactly one complete snapshot.
func writeSnapshotAtomic(dir string, snap *snapshot.Snapshot) error {
	tmp, err := os.CreateTemp(dir, snapshotFileName+".tmp*")
	if err != nil {
		return fmt.Errorf("smartstore: %w", err)
	}
	if err := snap.Write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("smartstore: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("smartstore: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapshotPath(dir)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("smartstore: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync pins the rename; best-effort — some
		// platforms refuse to sync directories.
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// startSyncLoop runs the background fsync ticker of
// DurabilityInterval.
func (s *Store) startSyncLoop() {
	if s.cfg.Durability != DurabilityInterval {
		return
	}
	interval := s.cfg.SyncInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	s.syncStop = make(chan struct{})
	s.syncDone = make(chan struct{})
	go func() {
		defer close(s.syncDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				for _, l := range s.logs {
					_ = l.Sync() // a failed periodic sync retries next tick
				}
			case <-s.syncStop:
				return
			}
		}
	}()
}

// Close shuts a durable store down cleanly: the background fsync loop
// stops, a final checkpoint folds the WAL tails into the snapshot, and
// the logs are closed. Close is idempotent and a no-op on an in-memory
// store. Mutating a closed durable store fails at the WAL. To simulate
// a crash (e.g. in recovery tests), drop the store without calling
// Close.
func (s *Store) Close() error {
	if s.logs == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		if s.syncStop != nil {
			close(s.syncStop)
			<-s.syncDone
		}
		if s.ckptStop != nil {
			close(s.ckptStop)
			<-s.ckptDone
		}
		s.closeErr = s.Checkpoint()
		for _, l := range s.logs {
			if err := l.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// WALSizes returns each shard's current write-ahead-log length in
// bytes across its live segments (nil on an in-memory store) — an
// operational signal for checkpoint scheduling.
func (s *Store) WALSizes() []int64 {
	if s.logs == nil {
		return nil
	}
	out := make([]int64, len(s.logs))
	for i, l := range s.logs {
		out[i] = l.Size()
	}
	return out
}

// WALStats aggregates the write-ahead logs' operational counters
// across shards.
type WALStats struct {
	// Segments counts live segment files; Bytes their total valid
	// length. DurableBytes is the fsync-covered prefix of that length —
	// the durable watermark replication ships up to; Bytes -
	// DurableBytes is data an acknowledged-only follower cannot see
	// yet.
	Segments     int
	Bytes        int64
	DurableBytes int64
	// GroupCommits counts the fsync batches issued by the per-shard
	// group committers (Durability Always); GroupedRecords the appends
	// those batches acknowledged. Their ratio is the achieved batching
	// factor.
	GroupCommits   uint64
	GroupedRecords uint64
	// Rotations counts segment rotations (capacity- and
	// checkpoint-triggered). AutoCheckpoints counts the checkpoints
	// Config.CheckpointBytes triggered; AutoCheckpointFailures the
	// triggered checkpoints that failed (the WAL keeps everything and
	// the next mutation retries, but a climbing failure count with a
	// growing WAL is the disk-pressure alarm).
	Rotations              uint64
	AutoCheckpoints        uint64
	AutoCheckpointFailures uint64
}

// WALStats snapshots the durable store's log counters (zero value on an
// in-memory store).
func (s *Store) WALStats() WALStats {
	var out WALStats
	if s.logs == nil {
		return out
	}
	for _, l := range s.logs {
		st := l.Stats()
		out.Segments += st.Segments
		out.Bytes += st.Bytes
		out.DurableBytes += st.DurableBytes
		out.GroupCommits += st.GroupCommits
		out.GroupedRecords += st.GroupedRecords
		out.Rotations += st.Rotations
	}
	out.AutoCheckpoints = s.autoCheckpoints.Load()
	out.AutoCheckpointFailures = s.autoCheckpointFailures.Load()
	return out
}

// Durable reports whether the store has a data dir (and therefore
// write-ahead logs) attached — a lock-free probe for serving layers
// that only want WAL statistics when they exist.
func (s *Store) Durable() bool { return s.logs != nil }
