package smartstore

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Durability selects when write-ahead-log appends reach stable storage
// on a durable store (Config.DataDir set).
type Durability int

const (
	// DurabilityAlways fsyncs every WAL append before the mutation is
	// acknowledged — the default, and the only policy that survives
	// power loss with zero acknowledged-mutation loss.
	DurabilityAlways Durability = iota
	// DurabilityInterval batches fsyncs on a background timer
	// (Config.SyncInterval): full throughput, bounded loss window on
	// power failure, zero loss on a process crash.
	DurabilityInterval
	// DurabilityNever leaves flushing entirely to the OS page cache:
	// zero loss on a process crash, no guarantee on power failure.
	DurabilityNever
)

// String returns the policy's flag spelling.
func (d Durability) String() string {
	switch d {
	case DurabilityAlways:
		return "always"
	case DurabilityInterval:
		return "interval"
	case DurabilityNever:
		return "never"
	}
	return fmt.Sprintf("durability(%d)", int(d))
}

// ParseDurability resolves a policy's flag spelling ("always",
// "interval", "never") — the inverse of String, shared with the
// daemon's -fsync flag.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "always":
		return DurabilityAlways, nil
	case "interval":
		return DurabilityInterval, nil
	case "never":
		return DurabilityNever, nil
	}
	return 0, fmt.Errorf("smartstore: unknown durability %q (want always, interval or never)", s)
}

func (d Durability) syncPolicy() wal.SyncPolicy {
	switch d {
	case DurabilityInterval:
		return wal.SyncInterval
	case DurabilityNever:
		return wal.SyncNever
	}
	return wal.SyncAlways
}

// snapshotFileName is the recovery-base snapshot inside a data dir;
// shard WALs sit beside it.
const snapshotFileName = "snapshot.snap"

func snapshotPath(dir string) string { return filepath.Join(dir, snapshotFileName) }

func walFileName(shard int) string { return fmt.Sprintf("shard-%04d.wal", shard) }

// DataDirInitialized reports whether dir already holds a durable
// store's recovery base — the operator-facing probe the daemon uses to
// pick Open (recover) over Build (bootstrap).
func DataDirInitialized(dir string) bool {
	_, err := os.Stat(snapshotPath(dir))
	return err == nil
}

// initDataDir makes a freshly built (or freshly loaded) store durable:
// it creates the data dir, opens one empty WAL per shard, and writes
// the initial checkpoint that recovery will replay WAL tails against.
// A data dir that already holds a snapshot or logged records is
// refused — re-initializing it would silently orphan the previous
// deployment's state; recover it with Open instead.
func (s *Store) initDataDir() error {
	dir := s.cfg.DataDir
	if DataDirInitialized(dir) {
		return fmt.Errorf("smartstore: data dir %s already initialized (recover it with Open)", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("smartstore: %w", err)
	}
	sweepStaleTemp(dir)
	logs, tails, err := openLogs(dir, s.eng.Shards(), s.cfg.Durability.syncPolicy())
	if err != nil {
		return err
	}
	for i, tail := range tails {
		if len(tail) > 0 {
			closeLogs(logs)
			return fmt.Errorf("smartstore: data dir %s holds %d logged records for shard %d (recover it with Open)",
				dir, len(tail), i)
		}
	}
	if err := s.eng.AttachWAL(logs); err != nil {
		closeLogs(logs)
		return fmt.Errorf("smartstore: %w", err)
	}
	s.logs = logs
	if err := s.Checkpoint(); err != nil {
		closeLogs(logs)
		return err
	}
	s.startSyncLoop()
	return nil
}

// Open recovers a durable store from cfg.DataDir: the checkpoint
// snapshot is loaded, each shard's WAL tail — every mutation
// acknowledged since that checkpoint — is replayed independently and
// in parallel past the snapshot's per-shard epoch truncation points,
// and a fresh checkpoint is written before the store is returned. No
// acknowledged mutation is lost across a crash, torn final records are
// discarded, and a multi-shard insert batch that did not reach every
// target's log (never acknowledged) is dropped atomically.
//
// Like Load, cfg's structural fields (Units, Attrs, Shards, fan-out,
// threshold) come from the snapshot; cfg supplies the deployment knobs
// (Seed, Versioning, Mode, ...) and the durability policy.
func Open(cfg Config) (*Store, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("smartstore: Open needs Config.DataDir")
	}
	sweepStaleTemp(cfg.DataDir)
	f, err := os.Open(snapshotPath(cfg.DataDir))
	if err != nil {
		return nil, fmt.Errorf("smartstore: data dir %s has no snapshot (initialize it with Build): %w",
			cfg.DataDir, err)
	}
	snap, err := snapshot.Read(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	s, err := restoreFromSnapshot(snap, cfg)
	if err != nil {
		return nil, err
	}

	epochs := snap.ShardEpochs()
	if err := s.eng.SetShardEpochs(epochs); err != nil {
		return nil, fmt.Errorf("smartstore: %w", err)
	}
	logs, tails, err := openLogs(cfg.DataDir, s.eng.Shards(), cfg.Durability.syncPolicy())
	if err != nil {
		return nil, err
	}
	if _, err := s.eng.Recover(tails, epochs); err != nil {
		closeLogs(logs)
		return nil, fmt.Errorf("smartstore: %w", err)
	}
	if err := s.eng.AttachWAL(logs); err != nil {
		closeLogs(logs)
		return nil, fmt.Errorf("smartstore: %w", err)
	}
	s.logs = logs
	// Checkpoint the recovered state immediately when the logs held
	// anything: the replayed tail folds into the snapshot and the logs
	// restart empty, so this boot's batch ids cannot collide with
	// records from the last one. After a clean shutdown every tail is
	// empty — the snapshot is already current and no batch id can
	// linger, so the boot skips the redundant full-store write.
	for _, tail := range tails {
		if len(tail) > 0 {
			if err := s.Checkpoint(); err != nil {
				closeLogs(logs)
				return nil, err
			}
			break
		}
	}
	s.startSyncLoop()
	return s, nil
}

// openLogs opens (creating if absent) one WAL per shard under dir,
// returning the logs and their scanned tails.
func openLogs(dir string, shards int, policy wal.SyncPolicy) ([]*wal.Log, [][]wal.Record, error) {
	logs := make([]*wal.Log, shards)
	tails := make([][]wal.Record, shards)
	for i := 0; i < shards; i++ {
		l, tail, err := wal.Open(filepath.Join(dir, walFileName(i)), i, policy)
		if err != nil {
			closeLogs(logs[:i])
			return nil, nil, fmt.Errorf("smartstore: %w", err)
		}
		logs[i] = l
		tails[i] = tail
	}
	return logs, tails, nil
}

func closeLogs(logs []*wal.Log) {
	for _, l := range logs {
		if l != nil {
			l.Close()
		}
	}
}

// Checkpoint atomically persists the store's current state to the data
// dir and truncates every shard's WAL: the snapshot is written to a
// temporary file, fsynced, renamed over the previous one, and only
// then are the logs emptied — a crash anywhere in between recovers
// from whichever snapshot the rename left in place, with leftover log
// records skipped via the snapshot's per-shard epoch truncation
// points. All shard read locks are held in the engine's total lock
// order for the capture, so a checkpoint racing a multi-shard batch
// observes all of it or none of it.
func (s *Store) Checkpoint() error {
	if s.cfg.DataDir == "" {
		return fmt.Errorf("smartstore: Checkpoint needs Config.DataDir")
	}
	return s.eng.Checkpoint(func(snap *snapshot.Snapshot) error {
		return writeSnapshotAtomic(s.cfg.DataDir, snap)
	})
}

// sweepStaleTemp removes snapshot temp files orphaned by a crash
// mid-checkpoint — the rename never happened, so they are garbage that
// would otherwise accumulate a full store's size per crash.
func sweepStaleTemp(dir string) {
	matches, err := filepath.Glob(filepath.Join(dir, snapshotFileName+".tmp*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		os.Remove(m)
	}
}

// writeSnapshotAtomic lands a snapshot with the standard
// write-tmp/fsync/rename/fsync-dir sequence, so the data dir always
// holds exactly one complete snapshot.
func writeSnapshotAtomic(dir string, snap *snapshot.Snapshot) error {
	tmp, err := os.CreateTemp(dir, snapshotFileName+".tmp*")
	if err != nil {
		return fmt.Errorf("smartstore: %w", err)
	}
	if err := snap.Write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("smartstore: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("smartstore: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapshotPath(dir)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("smartstore: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync pins the rename; best-effort — some
		// platforms refuse to sync directories.
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// startSyncLoop runs the background fsync ticker of
// DurabilityInterval.
func (s *Store) startSyncLoop() {
	if s.cfg.Durability != DurabilityInterval {
		return
	}
	interval := s.cfg.SyncInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	s.syncStop = make(chan struct{})
	s.syncDone = make(chan struct{})
	go func() {
		defer close(s.syncDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				for _, l := range s.logs {
					_ = l.Sync() // a failed periodic sync retries next tick
				}
			case <-s.syncStop:
				return
			}
		}
	}()
}

// Close shuts a durable store down cleanly: the background fsync loop
// stops, a final checkpoint folds the WAL tails into the snapshot, and
// the logs are closed. Close is idempotent and a no-op on an in-memory
// store. Mutating a closed durable store fails at the WAL. To simulate
// a crash (e.g. in recovery tests), drop the store without calling
// Close.
func (s *Store) Close() error {
	if s.logs == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		if s.syncStop != nil {
			close(s.syncStop)
			<-s.syncDone
		}
		s.closeErr = s.Checkpoint()
		for _, l := range s.logs {
			if err := l.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// WALSizes returns each shard's current write-ahead-log length in
// bytes (nil on an in-memory store) — an operational signal for
// checkpoint scheduling.
func (s *Store) WALSizes() []int64 {
	if s.logs == nil {
		return nil
	}
	out := make([]int64, len(s.logs))
	for i, l := range s.logs {
		out[i] = l.Size()
	}
	return out
}
