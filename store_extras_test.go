package smartstore_test

import (
	"bytes"
	"testing"

	smartstore "repro"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	store, set := buildStore(t, 500, smartstore.Config{Units: 10, Seed: 21})
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := smartstore.Load(&buf, smartstore.Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// Point queries answer identically.
	for i := 0; i < 30; i++ {
		f := set.Files[(i*41)%len(set.Files)]
		a, _ := store.PointQuery(f.Path)
		b, _ := restored.PointQuery(f.Path)
		if len(a) != len(b) {
			t.Fatalf("point answers differ for %q: %d vs %d", f.Path, len(a), len(b))
		}
	}
	// Stats structurally consistent.
	if restored.Stats().Files != store.Stats().Files {
		t.Fatalf("restored files = %d, want %d", restored.Stats().Files, store.Stats().Files)
	}
	if restored.Stats().Units != store.Stats().Units {
		t.Fatalf("restored units = %d, want %d", restored.Stats().Units, store.Stats().Units)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := smartstore.Load(bytes.NewBufferString("junk"), smartstore.Config{}); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestCorrelated(t *testing.T) {
	store, set := buildStore(t, 400, smartstore.Config{Units: 8, Seed: 23})
	anchor := set.Files[100]
	ids, rep, ok := store.Correlated(anchor.Path, 5)
	if !ok {
		t.Fatal("Correlated failed for existing path")
	}
	if len(ids) != 5 {
		t.Fatalf("Correlated returned %d ids, want 5", len(ids))
	}
	for _, id := range ids {
		if id == anchor.ID {
			t.Fatal("Correlated returned the anchor itself")
		}
	}
	if rep.Latency <= 0 {
		t.Fatal("no latency accounted")
	}
	if _, _, ok := store.Correlated("/absent/file", 5); ok {
		t.Fatal("Correlated succeeded for absent path")
	}
}

func TestDuplicateCandidatesFindsPlantedCopy(t *testing.T) {
	set, err := smartstore.GenerateTrace("MSN", 400, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Plant an attribute-identical copy of file 50.
	src := set.Files[50]
	dup := &smartstore.File{ID: 999999, Path: "/copy/of/file50"}
	dup.Attrs = src.Attrs
	files := append(set.Files, dup)

	store, err := smartstore.Build(files, smartstore.Config{
		Units: 8, Seed: 25,
		Attrs: []smartstore.Attr{smartstore.AttrSize, smartstore.AttrCTime},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids, _, ok := store.DuplicateCandidates(src.Path, 8)
	if !ok {
		t.Fatal("DuplicateCandidates failed")
	}
	found := false
	for _, id := range ids {
		if id == dup.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted duplicate not among candidates %v", ids)
	}
}
