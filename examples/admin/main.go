// Admin audit: the motivating scenario of the paper's introduction —
// "after installing or updating software, a system administrator may
// hope to track and find the changed files, which exist in both system
// and user directories, to ward off malicious operations".
//
// The example simulates a software update that touches files scattered
// across the namespace during a known time window, then finds them with
// one multi-dimensional range query (modification time × write volume)
// instead of walking the directory tree.
package main

import (
	"fmt"
	"log"
	"strings"

	smartstore "repro"
	"repro/internal/stats"
)

func main() {
	set, err := smartstore.GenerateTrace("HP", 8000, 17)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate the update: between t0 and t1 the installer rewrites 200
	// files across random directories.
	_, mhi := set.Norm.Bounds(smartstore.AttrMTime)
	t0 := mhi + 1000
	t1 := t0 + 1800 // a 30-minute install window
	rng := stats.NewRNG(19)
	touched := map[uint64]bool{}
	for len(touched) < 200 {
		f := set.Files[rng.IntN(len(set.Files))]
		if touched[f.ID] {
			continue
		}
		f.Attrs[smartstore.AttrMTime] = t0 + rng.Float64()*(t1-t0)
		f.Attrs[smartstore.AttrWriteBytes] += 64 << 10
		touched[f.ID] = true
	}

	// An audit wants completeness, so use the exact on-line multicast
	// path (§3.3) rather than the bounded off-line search.
	store, err := smartstore.Build(set.Files, smartstore.Config{
		Units: 60, Seed: 17, Mode: smartstore.OnLine,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One range query over (mtime, write volume) — no directory walk.
	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrWriteBytes}
	ids, rep := store.RangeQuery(attrs,
		[]float64{t0, 64 << 10},
		[]float64{t1, 1 << 40},
	)

	found := 0
	dirs := map[string]int{}
	byID := map[uint64]*smartstore.File{}
	for _, f := range set.Files {
		byID[f.ID] = f
	}
	for _, id := range ids {
		if touched[id] {
			found++
		}
		if f := byID[id]; f != nil {
			// Count top-level user directories to show the spread.
			parts := strings.SplitN(f.Path, "/", 4)
			if len(parts) > 2 {
				dirs[parts[2]]++
			}
		}
	}

	fmt.Printf("files touched by install:  %d\n", len(touched))
	fmt.Printf("range query returned:      %d (recall %.1f%%)\n",
		len(ids), 100*float64(found)/float64(len(touched)))
	fmt.Printf("query cost:                %.4fs, %d messages, %d hop(s)\n",
		rep.Latency, rep.Messages, rep.Hops)
	fmt.Printf("directories spanned:       %d (a directory walk would visit the whole tree)\n", len(dirs))
}
