// Dedup: use SmartStore to narrow duplicate detection, the system-side
// application sketched in §1.1 — "SmartStore can help identify the
// duplicate copies that often exhibit similar or approximate
// multi-dimensional attributes, such as file size and created time ...
// organiz[ing] them into the same or adjacent groups where duplicate
// copies can be placed together with high probability".
//
// The example plants duplicate files (same size/ctime profile), then for
// each candidate runs a top-k query on (size, ctime) and measures how
// often the true duplicate surfaces in the candidate set — versus the
// brute-force cost of scanning everything.
package main

import (
	"fmt"
	"log"

	smartstore "repro"
)

func main() {
	set, err := smartstore.GenerateTrace("EECS", 8000, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Plant duplicates: every 40th file gets a copy with identical size
	// and creation time (content copies share physical attributes).
	var dupIDs []uint64
	originals := map[uint64]uint64{} // dup id → original id
	nextID := uint64(1_000_000)
	files := set.Files
	for i := 0; i < len(set.Files); i += 40 {
		src := set.Files[i]
		dup := &smartstore.File{ID: nextID, Path: fmt.Sprintf("/backup%s", src.Path)}
		dup.Attrs = src.Attrs
		files = append(files, dup)
		dupIDs = append(dupIDs, dup.ID)
		originals[dup.ID] = src.ID
		nextID++
	}

	store, err := smartstore.Build(files, smartstore.Config{
		Units: 60,
		Seed:  7,
		Attrs: []smartstore.Attr{smartstore.AttrSize, smartstore.AttrCTime},
	})
	if err != nil {
		log.Fatal(err)
	}

	attrs := []smartstore.Attr{smartstore.AttrSize, smartstore.AttrCTime}
	byID := map[uint64]*smartstore.File{}
	for _, f := range files {
		byID[f.ID] = f
	}

	found := 0
	var totalLatency float64
	const k = 16
	for _, dupID := range dupIDs {
		dup := byID[dupID]
		point := []float64{dup.Attrs[smartstore.AttrSize], dup.Attrs[smartstore.AttrCTime]}
		ids, rep := store.TopKQuery(attrs, point, k)
		totalLatency += rep.Latency
		for _, id := range ids {
			if id == originals[dupID] {
				found++
				break
			}
		}
	}

	fmt.Printf("planted duplicates:   %d\n", len(dupIDs))
	fmt.Printf("found via top-%d:      %d (%.1f%%)\n", k, found, 100*float64(found)/float64(len(dupIDs)))
	fmt.Printf("mean query latency:   %.6fs (semantic groups)\n", totalLatency/float64(len(dupIDs)))
	fmt.Printf("corpus size:          %d files — brute force would scan all of them per candidate\n", len(files))
}
