// Quickstart: build a SmartStore over a synthesized MSN workload and run
// each of the three query interfaces — point, range and top-k (paper
// §1.2) — printing results and per-query cost accounting.
package main

import (
	"fmt"
	"log"

	smartstore "repro"
)

func main() {
	// Synthesize a 10k-file sample of the MSN production-server trace.
	set, err := smartstore.GenerateTrace("MSN", 10000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy over 60 storage units — the paper's prototype scale.
	store, err := smartstore.Build(set.Files, smartstore.Config{
		Units: 60,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("deployed: %d files, %d storage units, %d index units, height %d\n\n",
		st.Files, st.Units, st.IndexUnits, st.TreeHeight)

	// Point query (§3.3.3): exact filename lookup through the Bloom-
	// filter hierarchy.
	target := set.Files[1234]
	ids, rep := store.PointQuery(target.Path)
	fmt.Printf("point  %q\n  → %d match(es), %.4fs, %d messages\n\n",
		target.Path, len(ids), rep.Latency, rep.Messages)

	// Range query (§3.3.1): the paper's example — files revised within a
	// time window with bounded read/write volumes. Bounds are derived
	// from the workload so the window is populated.
	mlo, mhi := set.Norm.Bounds(smartstore.AttrMTime)
	rlo, rhi := set.Norm.Bounds(smartstore.AttrReadBytes)
	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes}
	lo := []float64{mlo + (mhi-mlo)*0.4, rlo}
	hi := []float64{mlo + (mhi-mlo)*0.6, rlo + (rhi-rlo)*0.1}
	ids, rep = store.RangeQuery(attrs, lo, hi)
	fmt.Printf("range  mtime∈[%.0f,%.0f] read∈[%.0f,%.0f]\n  → %d match(es), %.4fs, %d messages, %d hop(s)\n\n",
		lo[0], hi[0], lo[1], hi[1], len(ids), rep.Latency, rep.Messages, rep.Hops)

	// Top-k query (§3.3.2): "show 10 files closest to this description".
	point := []float64{target.Attrs[smartstore.AttrMTime], target.Attrs[smartstore.AttrReadBytes]}
	ids, rep = store.TopKQuery(attrs, point, 10)
	fmt.Printf("top-10 around (mtime=%.0f, read=%.0f)\n  → %v\n  %.4fs, %d messages, %d hop(s)\n",
		point[0], point[1], ids, rep.Latency, rep.Messages, rep.Hops)
}
