// Quickstart: build a SmartStore over a synthesized MSN workload and run
// each of the three query interfaces — point, range and top-k (paper
// §1.2) — through the unified Store.Do API, printing results and
// per-query cost accounting. Per-query options show record projection
// (full metadata inline, no follow-up lookups) and answer limiting.
package main

import (
	"context"
	"fmt"
	"log"

	smartstore "repro"
)

func main() {
	ctx := context.Background()

	// Synthesize a 10k-file sample of the MSN production-server trace.
	set, err := smartstore.GenerateTrace("MSN", 10000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy over 60 storage units — the paper's prototype scale.
	store, err := smartstore.Build(set.Files, smartstore.Config{
		Units: 60,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("deployed: %d files, %d storage units, %d index units, height %d\n\n",
		st.Files, st.Units, st.IndexUnits, st.TreeHeight)

	// Point query (§3.3.3): exact filename lookup through the Bloom-
	// filter hierarchy, with the full record projected into the answer.
	target := set.Files[1234]
	res, err := store.Do(ctx, smartstore.NewPointQuery(target.Path).
		WithOptions(smartstore.QueryOptions{IncludeRecords: true}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point  %q\n  → %d match(es), %.4fs, %d messages\n",
		target.Path, len(res.IDs), res.Report.Latency, res.Report.Messages)
	for _, f := range res.Records {
		fmt.Printf("  record: id %d size %.0f mtime %.0f\n",
			f.ID, f.Attrs[smartstore.AttrSize], f.Attrs[smartstore.AttrMTime])
	}
	fmt.Println()

	// Range query (§3.3.1): the paper's example — files revised within a
	// time window with bounded read/write volumes. Bounds are derived
	// from the workload so the window is populated; Limit caps the
	// answer and reports the truncation.
	mlo, mhi := set.Norm.Bounds(smartstore.AttrMTime)
	rlo, rhi := set.Norm.Bounds(smartstore.AttrReadBytes)
	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes}
	lo := []float64{mlo + (mhi-mlo)*0.4, rlo}
	hi := []float64{mlo + (mhi-mlo)*0.6, rlo + (rhi-rlo)*0.1}
	res, err = store.Do(ctx, smartstore.NewRangeQuery(attrs, lo, hi).
		WithOptions(smartstore.QueryOptions{Limit: 25}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range  mtime∈[%.0f,%.0f] read∈[%.0f,%.0f]\n  → %d match(es) (truncated=%v), %.4fs, %d messages, %d hop(s)\n\n",
		lo[0], hi[0], lo[1], hi[1], len(res.IDs), res.Truncated,
		res.Report.Latency, res.Report.Messages, res.Report.Hops)

	// Top-k query (§3.3.2): "show 10 files closest to this description",
	// forced onto the on-line multicast path for this one query.
	point := []float64{target.Attrs[smartstore.AttrMTime], target.Attrs[smartstore.AttrReadBytes]}
	res, err = store.Do(ctx, smartstore.NewTopKQuery(attrs, point, 10).
		WithOptions(smartstore.QueryOptions{Mode: smartstore.ModeOnline}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-10 around (mtime=%.0f, read=%.0f), on-line path\n  → %v\n  %.4fs, %d messages, %d hop(s)\n",
		point[0], point[1], res.IDs, res.Report.Latency, res.Report.Messages, res.Report.Hops)
}
