// Prefetch: semantic-aware caching, the second system-side application
// of §1.1 — "when a file is visited, we can execute a top-k query to
// find its k most correlated files to be prefetched".
//
// The example replays an access stream with Zipf popularity and compares
// the hit rate of a plain LRU metadata cache against LRU plus top-k
// semantic prefetching: on every miss, the k files most correlated with
// the missed file are pulled into the cache alongside it.
package main

import (
	"container/list"
	"fmt"
	"log"

	smartstore "repro"
	"repro/internal/stats"
)

// lruCache is a fixed-capacity LRU set of file ids.
type lruCache struct {
	cap   int
	order *list.List
	items map[uint64]*list.Element
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), items: map[uint64]*list.Element{}}
}

func (c *lruCache) touch(id uint64) bool {
	if el, ok := c.items[id]; ok {
		c.order.MoveToFront(el)
		return true
	}
	c.insert(id)
	return false
}

func (c *lruCache) insert(id uint64) {
	if el, ok := c.items[id]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.items[id] = c.order.PushFront(id)
	for len(c.items) > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(uint64))
	}
}

func main() {
	set, err := smartstore.GenerateTrace("MSN", 6000, 11)
	if err != nil {
		log.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 40, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Access stream: Zipf popularity with inter-file semantic
	// correlation — after a file is visited, the next access hits one of
	// its semantically correlated files with probability 0.6, matching
	// the measurement the paper cites (§1.1: "the probability of
	// inter-file access is found to be up to 80%" in Nexus/FARMER).
	attrsStream := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes, smartstore.AttrWriteBytes}
	rng := stats.NewRNG(13)
	zipf := stats.NewZipfGen(rng, 1.1, len(set.Files))
	neighborCache := map[uint64][]*smartstore.File{}
	neighbors := func(f *smartstore.File) []*smartstore.File {
		if ns, ok := neighborCache[f.ID]; ok {
			return ns
		}
		point := []float64{
			f.Attrs[smartstore.AttrMTime],
			f.Attrs[smartstore.AttrReadBytes],
			f.Attrs[smartstore.AttrWriteBytes],
		}
		ids, _ := store.TopKQuery(attrsStream, point, 12)
		byID := map[uint64]*smartstore.File{}
		for _, x := range set.Files {
			byID[x.ID] = x
		}
		var ns []*smartstore.File
		for _, id := range ids {
			if id != f.ID {
				ns = append(ns, byID[id])
			}
		}
		neighborCache[f.ID] = ns
		return ns
	}
	const accesses = 20000
	const correlation = 0.6
	stream := make([]*smartstore.File, accesses)
	cur := set.Files[zipf.Next()]
	for i := range stream {
		stream[i] = cur
		ns := neighbors(cur)
		if len(ns) > 0 && rng.Float64() < correlation {
			cur = ns[rng.IntN(len(ns))]
		} else {
			cur = set.Files[zipf.Next()]
		}
	}

	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes, smartstore.AttrWriteBytes}
	const cacheSize = 256
	const prefetchK = 8

	run := func(prefetch bool) float64 {
		cache := newLRU(cacheSize)
		hits := 0
		for _, f := range stream {
			if cache.touch(f.ID) {
				hits++
				continue
			}
			if !prefetch {
				continue
			}
			// Miss: prefetch the k most correlated files (§1.1).
			point := []float64{
				f.Attrs[smartstore.AttrMTime],
				f.Attrs[smartstore.AttrReadBytes],
				f.Attrs[smartstore.AttrWriteBytes],
			}
			ids, _ := store.TopKQuery(attrs, point, prefetchK)
			for _, id := range ids {
				cache.insert(id)
			}
		}
		return float64(hits) / float64(accesses)
	}

	plain := run(false)
	semantic := run(true)
	fmt.Printf("accesses:                 %d (Zipf over %d files)\n", accesses, len(set.Files))
	fmt.Printf("cache capacity:           %d entries\n", cacheSize)
	fmt.Printf("LRU hit rate:             %.1f%%\n", plain*100)
	fmt.Printf("LRU + top-%d prefetch:     %.1f%%\n", prefetchK, semantic*100)
	fmt.Printf("improvement:              %+.1f points\n", (semantic-plain)*100)
}
