package smartstore

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/query"
)

// ErrInvalidQuery tags every validation failure returned by Store.Do,
// so boundary layers can map it to a client error (HTTP 400) with
// errors.Is while other failures stay server-side.
var ErrInvalidQuery = errors.New("invalid query")

// QueryKind selects which of the three paper query classes a Query is.
type QueryKind int

const (
	// KindPoint is an exact-pathname lookup (§3.3.3).
	KindPoint QueryKind = iota
	// KindRange is a multi-dimensional range query (§3.3.1).
	KindRange
	// KindTopK is a top-k nearest-neighbour query (§3.3.2).
	KindTopK
)

// String returns the wire name of the kind ("point", "range", "topk").
func (k QueryKind) String() string {
	switch k {
	case KindPoint:
		return "point"
	case KindRange:
		return "range"
	case KindTopK:
		return "topk"
	}
	return fmt.Sprintf("QueryKind(%d)", int(k))
}

// ParseQueryKind resolves a wire kind name — the inverse of
// QueryKind.String.
func ParseQueryKind(name string) (QueryKind, error) {
	switch name {
	case "point":
		return KindPoint, nil
	case "range":
		return KindRange, nil
	case "topk":
		return KindTopK, nil
	}
	return 0, fmt.Errorf("%w: unknown kind %q", ErrInvalidQuery, name)
}

// QueryMode optionally overrides the store's configured execution path
// for one query. The zero value defers to the store default, so plain
// Query literals behave like the legacy methods.
type QueryMode int

const (
	// ModeDefault uses the store's configured Mode.
	ModeDefault QueryMode = iota
	// ModeOffline forces the off-line pre-processing path (§3.4).
	ModeOffline
	// ModeOnline forces the on-line multicast path (§3.3).
	ModeOnline
)

// String returns the wire name of the mode ("", "offline", "online").
func (m QueryMode) String() string {
	switch m {
	case ModeDefault:
		return ""
	case ModeOffline:
		return "offline"
	case ModeOnline:
		return "online"
	}
	return fmt.Sprintf("QueryMode(%d)", int(m))
}

// ParseQueryMode resolves a wire mode name; the empty string is
// ModeDefault.
func ParseQueryMode(name string) (QueryMode, error) {
	switch name {
	case "", "default":
		return ModeDefault, nil
	case "offline":
		return ModeOffline, nil
	case "online":
		return ModeOnline, nil
	}
	return 0, fmt.Errorf("%w: unknown mode %q", ErrInvalidQuery, name)
}

// QueryOptions carries per-query execution options. The zero value
// reproduces the legacy behaviour: store-default mode, no limit, ids
// only.
type QueryOptions struct {
	// Mode overrides the store's configured query path for this query.
	Mode QueryMode
	// Limit truncates the answer to at most Limit ids (0 = unlimited);
	// Result.Truncated reports whether anything was cut.
	Limit int
	// IncludeRecords projects full File records into Result.Records so
	// the answer needs no follow-up per-id lookups.
	IncludeRecords bool
	// IncludeDists resolves each top-k answer id's true normalized
	// squared distance into Result.Dists — what a federating gateway
	// needs to merge per-store answers exactly. Ignored by point and
	// range queries.
	IncludeDists bool
}

// Query is one composable request against the store: a kind plus its
// dimensions plus per-query options. Build one with NewPointQuery,
// NewRangeQuery or NewTopKQuery, or as a literal.
type Query struct {
	Kind QueryKind

	// Path is the exact pathname of a point query.
	Path string

	// Attrs names the queried dimensions of range and top-k queries.
	Attrs []Attr
	// Lo, Hi bound each dimension of a range query (raw units).
	Lo, Hi []float64
	// Point is the reference point of a top-k query (raw units).
	Point []float64
	// K is the top-k answer size.
	K int

	Options QueryOptions
}

// NewPointQuery builds an exact-pathname lookup.
func NewPointQuery(path string) Query {
	return Query{Kind: KindPoint, Path: path}
}

// NewRangeQuery builds a multi-dimensional range query over attrs with
// per-dimension bounds [lo[i], hi[i]] in raw attribute units.
func NewRangeQuery(attrs []Attr, lo, hi []float64) Query {
	return Query{Kind: KindRange, Attrs: attrs, Lo: lo, Hi: hi}
}

// NewTopKQuery builds a top-k nearest-neighbour query around point.
func NewTopKQuery(attrs []Attr, point []float64, k int) Query {
	return Query{Kind: KindTopK, Attrs: attrs, Point: point, K: k}
}

// WithOptions returns a copy of q carrying the given options.
func (q Query) WithOptions(o QueryOptions) Query {
	q.Options = o
	return q
}

// Validate reports whether q is well-formed; every failure wraps
// ErrInvalidQuery. Point queries accept any path (an unknown one simply
// matches nothing); range and top-k require consistent non-empty
// dimensions, top-k requires k ≥ 1, and Limit must not be negative.
func (q Query) Validate() error {
	if q.Options.Limit < 0 {
		return fmt.Errorf("%w: negative limit %d", ErrInvalidQuery, q.Options.Limit)
	}
	switch q.Options.Mode {
	case ModeDefault, ModeOffline, ModeOnline:
	default:
		return fmt.Errorf("%w: unknown mode %d", ErrInvalidQuery, int(q.Options.Mode))
	}
	switch q.Kind {
	case KindPoint:
		return nil
	case KindRange:
		if len(q.Attrs) == 0 || len(q.Attrs) != len(q.Lo) || len(q.Lo) != len(q.Hi) {
			return fmt.Errorf("%w: range dims %d attrs / %d lo / %d hi",
				ErrInvalidQuery, len(q.Attrs), len(q.Lo), len(q.Hi))
		}
		return nil
	case KindTopK:
		if len(q.Attrs) == 0 || len(q.Attrs) != len(q.Point) {
			return fmt.Errorf("%w: topk dims %d attrs / %d point values",
				ErrInvalidQuery, len(q.Attrs), len(q.Point))
		}
		if q.K < 1 {
			return fmt.Errorf("%w: k %d", ErrInvalidQuery, q.K)
		}
		return nil
	}
	return fmt.Errorf("%w: unknown kind %d", ErrInvalidQuery, int(q.Kind))
}

// Result is the answer to one Query.
type Result struct {
	// IDs are the matching file ids (for top-k, in ascending distance).
	IDs []uint64
	// Dists carries, aligned with IDs, each candidate's true normalized
	// squared distance for top-k queries run with
	// QueryOptions.IncludeDists.
	Dists []float64
	// Records carries the full metadata record per id, in IDs order,
	// when QueryOptions.IncludeRecords is set.
	Records []File
	// Truncated reports that QueryOptions.Limit cut the answer.
	Truncated bool
	// Report is the virtual-time accounting of the execution.
	Report QueryReport
	// Shards lists the engine shard indices the query fanned out to —
	// the exact shard set whose state the answer is a function of. The
	// set is data-independent (routing reads only the query and the
	// frozen placement centroids), so a cache keyed on these shards'
	// epochs can never serve a stale answer.
	Shards []int
}

// Do executes one query. It is the single entry point all query paths
// share: PointQuery, RangeQuery and TopKQuery are thin wrappers, and
// the wire layer's /v1/query endpoint calls it directly.
//
// Do validates before touching the store and returns errors — wrapping
// ErrInvalidQuery — where the legacy constructors panicked. The query
// then fans out to the relevant engine shards in parallel: range
// queries skip shards whose root MBR misses the query rectangle, top-k
// answers merge by true normalized distance, and the report aggregates
// max-latency / summed-messages across shards. The context is honoured
// between routing phases: before admission, while each shard waits for
// its deployment's query slot, and again between query execution and
// record projection; a cancelled context returns ctx.Err().
func (s *Store) Do(ctx context.Context, q Query) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	online := s.cfg.Mode == OnLine
	switch q.Options.Mode {
	case ModeOnline:
		online = true
	case ModeOffline:
		online = false
	}
	opts := engine.QueryOpts{
		Online:         online,
		Limit:          q.Options.Limit,
		IncludeRecords: q.Options.IncludeRecords,
		IncludeDists:   q.Options.IncludeDists,
	}

	var ans engine.Answer
	var err error
	switch q.Kind {
	case KindPoint:
		ans, err = s.eng.Point(ctx, query.Point{Filename: q.Path}, opts)
	case KindRange:
		rq, qerr := query.MakeRange(q.Attrs, q.Lo, q.Hi)
		if qerr != nil {
			return Result{}, fmt.Errorf("%w: %v", ErrInvalidQuery, qerr)
		}
		ans, err = s.eng.Range(ctx, rq, opts)
	case KindTopK:
		tq, qerr := query.MakeTopK(q.Attrs, q.Point, q.K)
		if qerr != nil {
			return Result{}, fmt.Errorf("%w: %v", ErrInvalidQuery, qerr)
		}
		ans, err = s.eng.TopK(ctx, tq, opts)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		IDs:       ans.IDs,
		Dists:     ans.Dists,
		Records:   ans.Records,
		Truncated: ans.Truncated,
		Report:    fromEngineReport(ans.Report),
		Shards:    ans.Targets,
	}, nil
}

// PointQuery looks up file metadata by exact pathname (§3.3.3). It is a
// compatibility wrapper over Do.
func (s *Store) PointQuery(filename string) ([]uint64, QueryReport) {
	r, err := s.Do(context.Background(), NewPointQuery(filename))
	if err != nil {
		panic(err.Error())
	}
	return r.IDs, r.Report
}

// RangeQuery finds all files whose attrs[i] lies within [lo[i], hi[i]]
// (§3.3.1). Values are in raw attribute units. It is a compatibility
// wrapper over Do and keeps the legacy contract of panicking on
// mismatched dimensions; use Do for error returns.
func (s *Store) RangeQuery(attrs []Attr, lo, hi []float64) ([]uint64, QueryReport) {
	r, err := s.Do(context.Background(), NewRangeQuery(attrs, lo, hi))
	if err != nil {
		panic(err.Error())
	}
	return r.IDs, r.Report
}

// TopKQuery finds the k files whose attributes are closest to the given
// point (§3.3.2). It is a compatibility wrapper over Do and keeps the
// legacy contract of panicking on invalid dimensions or k; use Do for
// error returns.
func (s *Store) TopKQuery(attrs []Attr, point []float64, k int) ([]uint64, QueryReport) {
	r, err := s.Do(context.Background(), NewTopKQuery(attrs, point, k))
	if err != nil {
		panic(err.Error())
	}
	return r.IDs, r.Report
}
