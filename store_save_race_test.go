// Snapshot-consistency coverage: Store.Save must take every shard's
// read lock before capturing any shard, so a snapshot racing a
// multi-shard InsertBatch observes either the whole batch or none of
// it. Run with -race.
package smartstore_test

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	smartstore "repro"
	"repro/internal/snapshot"
)

func TestSaveUnderConcurrentInsertIsNeverTorn(t *testing.T) {
	set, err := smartstore.GenerateTrace("MSN", 2000, 23)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(cloneFiles(set.Files),
		smartstore.Config{Units: 16, Shards: 4, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}

	// Batches of batchSize files each: because the base population is a
	// multiple of batchSize and batches commit atomically, every
	// consistent snapshot holds a multiple of batchSize files. A torn
	// snapshot — some of a batch's shards captured before the insert,
	// some after — breaks the invariant.
	const (
		batchSize = 5
		batches   = 40
		savers    = 3
	)
	if len(set.Files)%batchSize != 0 {
		t.Fatalf("population %d not a multiple of %d", len(set.Files), batchSize)
	}

	var nextID atomic.Uint64
	nextID.Store(store.MaxFileID())
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for b := 0; b < batches; b++ {
			batch := make([]*smartstore.File, batchSize)
			for j := range batch {
				src := set.Files[(b*batchSize+j)%len(set.Files)]
				batch[j] = &smartstore.File{
					ID:    nextID.Add(1),
					Path:  fmt.Sprintf("/save/b%d/f%d", b, j),
					Attrs: src.Attrs,
				}
			}
			if _, err := store.InsertBatch(batch); err != nil {
				t.Errorf("batch %d: %v", b, err)
			}
		}
	}()

	var lastSnap []byte
	var snapMu sync.Mutex
	for s := 0; s < savers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := store.Save(&buf); err != nil {
					t.Errorf("Save under load: %v", err)
					return
				}
				snap, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Errorf("snapshot unreadable: %v", err)
					return
				}
				if n := snap.FileCount(); n%batchSize != 0 {
					t.Errorf("torn snapshot: %d files is not a multiple of %d", n, batchSize)
					return
				}
				snapMu.Lock()
				lastSnap = append(lastSnap[:0], buf.Bytes()...)
				snapMu.Unlock()
			}
		}()
	}
	wg.Wait()

	// The last snapshot taken mid-run must restore into a store that
	// answers queries and preserves the shard assignment.
	if lastSnap == nil {
		t.Fatal("no snapshot captured")
	}
	restored, err := smartstore.Load(bytes.NewReader(lastSnap), smartstore.Config{Seed: 23})
	if err != nil {
		t.Fatalf("restoring mid-run snapshot: %v", err)
	}
	if restored.Shards() != 4 {
		t.Fatalf("restored %d shards, want 4", restored.Shards())
	}
	if got := restored.Stats().Files; got < len(set.Files) || got%batchSize != 0 {
		t.Fatalf("restored %d files (base %d)", got, len(set.Files))
	}
	f := set.Files[99]
	ids, _ := restored.PointQuery(f.Path)
	found := false
	for _, id := range ids {
		if id == f.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("restored store cannot find %q", f.Path)
	}
}
