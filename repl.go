package smartstore

import (
	"fmt"
	"io"

	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Replication facade: the leader-side read path (ReplTail — ship a
// shard's log past an epoch watermark) and the follower-side apply
// path (LoadReplica — bootstrap from a leader snapshot preserving its
// epochs; ApplyReplicated — fold shipped records in). The protocol and
// its invariants are documented in DESIGN.md §11; the wire framing
// lives in internal/wal (TailResponse and its codec).

// LoadReplica restores a store from a leader snapshot for use as a
// replication follower. It differs from Load in one way that matters:
// the snapshot's per-shard epochs are adopted (Load restarts them at
// zero), so the follower resumes the leader's epoch trajectory and its
// first tail pull — "records with epoch past the snapshot's" — lines
// up exactly with what the leader's log still holds.
//
// With cfg.DataDir set the follower becomes durable itself: the dir is
// freshly initialized with an initial checkpoint carrying the adopted
// epochs, so a follower restart recovers locally and re-joins the pull
// from where it left off instead of re-fetching the full snapshot.
func LoadReplica(r io.Reader, cfg Config) (*Store, error) {
	snap, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	s, err := restoreFromSnapshot(snap, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.eng.SetShardEpochs(snap.ShardEpochs()); err != nil {
		return nil, fmt.Errorf("smartstore: %w", err)
	}
	if cfg.DataDir != "" {
		if err := s.initDataDir(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ReplTail serves one pull of shard's log for a follower: every record
// with epoch past after, up to roughly maxBytes encoded (0 selects the
// WAL's default ship budget). The response's Base is the shard's
// replication base — the epoch of the latest durable checkpoint — and
// when after predates it the response carries SnapshotRequired instead
// of records: a checkpoint has truncated the segments that covered the
// follower's watermark, so the follower must re-bootstrap from a fresh
// snapshot (Save + LoadReplica) and resume pulling from its epochs.
//
// The base is read *after* the log scan: a checkpoint landing between
// the two can only raise the base, so a stale-watermark pull racing a
// checkpoint reports SnapshotRequired rather than silently returning a
// gapped tail.
func (s *Store) ReplTail(shard int, after uint64, maxBytes int64) (*wal.TailResponse, error) {
	if s.logs == nil {
		return nil, fmt.Errorf("smartstore: replication needs a durable store (Config.DataDir)")
	}
	if shard < 0 || shard >= len(s.logs) {
		return nil, fmt.Errorf("smartstore: shard %d of %d", shard, len(s.logs))
	}
	resp := &wal.TailResponse{Shard: shard, After: after}
	recs, caughtUp, err := s.logs[shard].TailSince(after, maxBytes)
	if err != nil {
		return nil, err
	}
	resp.Base = s.eng.ReplBase()[shard]
	if after < resp.Base {
		resp.SnapshotRequired = true
		resp.Records = nil
		resp.CaughtUp = false
		return resp, nil
	}
	resp.Records = recs
	resp.CaughtUp = caughtUp
	return resp, nil
}

// ApplyReplicated folds shipped leader records into one shard, logging
// each to the follower's own WAL before applying (when the follower is
// durable) and adopting the leader's epoch stamps. Records at or below
// the shard's epoch are skipped, making re-shipped prefixes harmless.
// The caller is responsible for withholding multi-shard batch
// fragments until every target's fragment has arrived (internal/repl
// does); see engine.ApplyReplicated.
func (s *Store) ApplyReplicated(shard int, recs []wal.Record) (int, error) {
	n, err := s.eng.ApplyReplicated(shard, recs)
	if n > 0 {
		s.noteMutation()
	}
	return n, err
}
