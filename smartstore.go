// Package smartstore is a Go implementation of SmartStore — the
// decentralized, semantic-aware file-system metadata organization of
// Hua, Jiang, Zhu, Feng and Tian (SC'09) — together with the substrates
// and baselines needed to reproduce the paper's evaluation.
//
// Instead of a directory tree, SmartStore groups file metadata by the
// semantic correlation of its multi-dimensional attributes, measured
// with Latent Semantic Indexing over an SVD. Correlated files aggregate
// into storage units (leaves of a semantic R-tree); storage units
// aggregate into index units carrying Minimum Bounding Rectangles and
// unioned Bloom filters. Complex queries — multi-dimensional range and
// top-k nearest-neighbour — are served by one or a small number of
// semantic groups rather than by brute-force search of every server.
//
// # Quick start
//
//	set := smartstore.GenerateTrace("MSN", 10000, 42)
//	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 60})
//	if err != nil { ... }
//	res, err := store.Do(ctx, smartstore.NewRangeQuery(
//	    []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes},
//	    []float64{36000, 30e6}, []float64{59000, 50e6}).
//	    WithOptions(smartstore.QueryOptions{IncludeRecords: true}))
//	if err != nil { ... }
//	fmt.Println(len(res.Records), res.Report.Latency)
//
// PointQuery, RangeQuery and TopKQuery remain as thin compatibility
// wrappers over Do.
//
// See the examples/ directory for complete programs and DESIGN.md for
// the system inventory and experiment index.
package smartstore

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Attr identifies a metadata attribute dimension (file size, creation
// time, ..., access frequency).
type Attr = metadata.Attr

// Attribute constants re-exported from the metadata schema.
const (
	AttrSize       = metadata.AttrSize
	AttrCTime      = metadata.AttrCTime
	AttrMTime      = metadata.AttrMTime
	AttrATime      = metadata.AttrATime
	AttrReadBytes  = metadata.AttrReadBytes
	AttrWriteBytes = metadata.AttrWriteBytes
	AttrAccessFreq = metadata.AttrAccessFreq
	NumAttrs       = metadata.NumAttrs
)

// File is one file's metadata record.
type File = metadata.File

// TraceSet is a generated workload (see GenerateTrace).
type TraceSet = trace.Set

// Mode selects the complex-query execution path of §3.3–3.4.
type Mode int

const (
	// OffLine routes a query directly to its most-correlated semantic
	// group using locally replicated index-unit vectors (§3.4). Fast and
	// message-frugal; recall bounded by grouping quality.
	OffLine Mode = iota
	// OnLine multicasts the query to every first-level group host
	// (§3.3). Exact on the propagated snapshot; more messages.
	OnLine
)

// Config parameterizes Build.
type Config struct {
	// Units is the number of storage units (metadata servers). The
	// prototype evaluation uses 60. Default 60.
	Units int
	// Attrs is the grouping predicate — the d-attribute subset of
	// special interest (§3.1.1). Default: mtime, read and write volume
	// (the paper's example query dimensions).
	Attrs []Attr
	// Mode is the default complex-query path. Default OffLine.
	Mode Mode
	// Versioning enables §4.4 consistency versioning.
	Versioning bool
	// VersionRatio is the modification-to-version ratio (§5.6; 0 → 4).
	VersionRatio int
	// LazyUpdateThreshold is the replica-refresh change fraction
	// (§3.4; 0 → 0.05).
	LazyUpdateThreshold float64
	// AutoConfig additionally builds specialized semantic R-trees over
	// attribute subsets (§2.4) and routes each query to the tree whose
	// attributes match best.
	AutoConfig bool
	// AutoConfigThreshold is the index-unit-count difference ratio for
	// keeping a specialized tree (§5.1 uses 10%; 0 → 0.10).
	AutoConfigThreshold float64
	// MaxChildren / MinChildren bound semantic R-tree fan-out (§4.1).
	MaxChildren, MinChildren int
	// BaseThreshold overrides the sampled level-1 admission threshold.
	BaseThreshold float64
	// Seed drives all randomized decisions. Deterministic per seed.
	Seed uint64
	// VirtualScale maps the in-memory sample onto a (much larger)
	// virtual population for latency modelling; see DESIGN.md §4.
	VirtualScale float64
}

// Store is a deployed SmartStore instance.
//
// A Store is safe for concurrent use: queries proceed under a shared
// lock while mutations (Insert, InsertBatch, Delete, Modify, Flush)
// are serialized under an exclusive lock. Within one deployment tree
// the virtual-time accounting (event loop, RNG, lazy id cache) is
// additionally serialized per cluster, so concurrent queries over
// different attribute subsets — which auto-configuration routes to
// different specialized trees — run in parallel end to end, while
// queries sharing a tree interleave only their simulated phase.
type Store struct {
	cfg      Config
	norm     *metadata.Normalizer
	primary  *cluster.Cluster
	forest   *semtree.Forest
	clusters map[*semtree.Tree]*cluster.Cluster

	// mu keeps tree structure stable: readers share it, mutators hold
	// it exclusively. qslot serializes each deployment's simulation
	// machinery, which every query mutates (sim counters, home-unit
	// RNG, lazy id cache); it is a capacity-1 channel semaphore rather
	// than a mutex so waiters can abandon the wait on context
	// cancellation (see Do). epoch counts committed mutations so result
	// caches can invalidate on change (see Epoch).
	mu    sync.RWMutex
	qslot map[*cluster.Cluster]chan struct{}
	epoch atomic.Uint64
}

// initLocks builds the per-deployment query slots; callers own s.
func (s *Store) initLocks() {
	s.qslot = make(map[*cluster.Cluster]chan struct{}, len(s.clusters))
	for _, c := range s.clusters {
		s.qslot[c] = make(chan struct{}, 1)
	}
}

// runQuery serializes one deployment's virtual-time machinery around f.
// The store-level read lock must already be held.
func (s *Store) runQuery(c *cluster.Cluster, f func()) {
	slot := s.qslot[c]
	slot <- struct{}{}
	defer func() { <-slot }()
	f()
}

// runQueryCtx is runQuery with a cancellable wait: a context cancelled
// while queued for the deployment slot — or observed cancelled once it
// is acquired — returns ctx.Err() without running f.
func (s *Store) runQueryCtx(ctx context.Context, c *cluster.Cluster, f func() error) error {
	slot := s.qslot[c]
	select {
	case slot <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-slot }()
	if err := ctx.Err(); err != nil {
		return err
	}
	return f()
}

// Epoch returns the store's mutation epoch. It increments on every
// mutation that can change a query's answer — inserts, effectual
// deletes, modifies, and flushes (no-ops leave it untouched); a cache
// keyed on query content can pair each entry with the epoch observed
// before computing it and treat any mismatch as invalidation.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// QueryReport carries the accounting of one operation: virtual latency,
// network messages, routing hops (groups beyond the first), and
// version-chain work.
type QueryReport struct {
	Latency        float64 // seconds of virtual time
	Messages       int64
	Hops           int
	UnitsSearched  int
	VersionChecked int
	VersionLatency float64
}

func fromResult(r cluster.Result) QueryReport {
	return QueryReport{
		Latency:        float64(r.Latency),
		Messages:       r.Messages,
		Hops:           r.Hops,
		UnitsSearched:  r.UnitsSearched,
		VersionChecked: r.VersionChecked,
		VersionLatency: float64(r.VersionLatency),
	}
}

// Build constructs and deploys a SmartStore over the given corpus.
func Build(files []*File, cfg Config) (*Store, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("smartstore: empty corpus")
	}
	if cfg.Units == 0 {
		cfg.Units = 60
	}
	if cfg.Units < 1 || cfg.Units > len(files) {
		return nil, fmt.Errorf("smartstore: %d units invalid for %d files", cfg.Units, len(files))
	}
	if cfg.Attrs == nil {
		cfg.Attrs = trace.DefaultQueryAttrs()
	}

	norm := &metadata.Normalizer{}
	norm.Fit(files)

	treeCfg := semtree.Config{
		Attrs:         cfg.Attrs,
		BaseThreshold: cfg.BaseThreshold,
		MaxChildren:   cfg.MaxChildren,
		MinChildren:   cfg.MinChildren,
	}
	clusterCfg := cluster.Config{
		Versioning:          cfg.Versioning,
		VersionRatio:        cfg.VersionRatio,
		LazyUpdateThreshold: cfg.LazyUpdateThreshold,
		Seed:                cfg.Seed,
		VirtualScale:        cfg.VirtualScale,
	}

	s := &Store{cfg: cfg, norm: norm, clusters: map[*semtree.Tree]*cluster.Cluster{}}

	units := semtree.PlaceSemantic(files, cfg.Units, norm, cfg.Attrs)
	primaryTree := semtree.Build(units, norm, treeCfg)
	s.primary = cluster.New(primaryTree, clusterCfg)
	s.clusters[primaryTree] = s.primary

	if cfg.AutoConfig {
		s.forest = semtree.AutoConfigure(
			semtree.PlaceSemantic(files, cfg.Units, norm, metadata.AllAttrs()),
			norm, treeCfg, nil, cfg.AutoConfigThreshold)
		for _, t := range s.forest.Trees() {
			s.clusters[t] = cluster.New(t, clusterCfg)
		}
	}
	s.initLocks()
	return s, nil
}

// clusterFor picks the deployment serving a query over the given
// attributes: with auto-configuration, the forest member whose grouping
// attributes match best; otherwise the primary tree.
func (s *Store) clusterFor(attrs []Attr) *cluster.Cluster {
	if s.forest == nil {
		return s.primary
	}
	// The primary tree is preferred when its predicate matches exactly.
	if sameAttrs(s.cfg.Attrs, attrs) {
		return s.primary
	}
	return s.clusters[s.forest.SelectTree(attrs)]
}

func sameAttrs(a, b []Attr) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[Attr]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		if !set[x] {
			return false
		}
	}
	return true
}

// pointQuery runs a point query with the read lock already held.
func (s *Store) pointQuery(filename string) ([]uint64, QueryReport) {
	var ids []uint64
	var res cluster.Result
	s.runQuery(s.primary, func() {
		ids, res = s.primary.Point(query.Point{Filename: filename})
	})
	return ids, fromResult(res)
}

// topKQuery runs a top-k query with the read lock already held.
func (s *Store) topKQuery(attrs []Attr, point []float64, k int) ([]uint64, QueryReport) {
	q := query.NewTopK(attrs, point, k)
	c := s.clusterFor(attrs)
	var ids []uint64
	var res cluster.Result
	s.runQuery(c, func() {
		if s.cfg.Mode == OnLine {
			ids, res = c.TopKOnline(q)
		} else {
			ids, res = c.TopKOffline(q)
		}
	})
	return ids, fromResult(res)
}

// Insert routes a new file's metadata into every deployed tree. Like
// InsertBatch, it rejects a zero id or an id that is already stored —
// the serving layer treats ids as unique, so every insert path
// enforces the invariant.
func (s *Store) Insert(f *File) (QueryReport, error) {
	return s.InsertBatch([]*File{f})
}

// InsertBatch inserts files under one exclusive critical section and
// one epoch bump — the admission path for bulk loads, where taking the
// write lock per record would let queries interleave mid-batch. Every
// file must carry an id that is neither already stored nor repeated in
// the batch; a violation rejects the whole batch before anything is
// inserted (validation and insert share the critical section, so the
// check cannot race another writer). The returned report aggregates
// virtual latency and messages over the whole batch.
func (s *Store) InsertBatch(files []*File) (QueryReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(files) == 0 {
		return QueryReport{}, nil
	}
	seen := make(map[uint64]bool, len(files))
	for _, f := range files {
		if f.ID == 0 {
			return QueryReport{}, fmt.Errorf("smartstore: insert without id (path %q)", f.Path)
		}
		if seen[f.ID] || s.primary.HasFile(f.ID) {
			return QueryReport{}, fmt.Errorf("smartstore: duplicate file id %d", f.ID)
		}
		seen[f.ID] = true
	}
	defer s.epoch.Add(1)
	var total QueryReport
	for _, f := range files {
		rep := s.insert(f)
		total.Latency += rep.Latency
		total.Messages += rep.Messages
		total.Hops += rep.Hops
		total.UnitsSearched += rep.UnitsSearched
		total.VersionChecked += rep.VersionChecked
		total.VersionLatency += rep.VersionLatency
	}
	return total, nil
}

// insert routes one file with the write lock already held.
func (s *Store) insert(f *File) QueryReport {
	var rep QueryReport
	for _, c := range s.clusters {
		res := c.InsertFile(f)
		if c == s.primary {
			rep = fromResult(res)
		}
	}
	return rep
}

// Delete removes a file by id, reporting whether it existed. The
// epoch advances only when a file was actually removed — a no-op
// delete must not invalidate query caches.
func (s *Store) Delete(id uint64) (QueryReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep QueryReport
	found := false
	for _, c := range s.clusters {
		res, ok := c.DeleteFile(id)
		if c == s.primary {
			rep = fromResult(res)
			found = ok
		}
	}
	if found {
		s.epoch.Add(1)
	}
	return rep, found
}

// Modify updates an existing file's attributes. The epoch advances
// only when the file existed.
func (s *Store) Modify(f *File) (QueryReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep QueryReport
	found := false
	for _, c := range s.clusters {
		res, ok := c.ModifyFile(f)
		if c == s.primary {
			rep = fromResult(res)
			found = ok
		}
	}
	if found {
		s.epoch.Add(1)
	}
	return rep, found
}

// Flush propagates all pending changes to replicas (lazy updates are
// otherwise threshold-driven, §3.4). The epoch advances only when
// something was pending — propagating nothing changes no query's
// answer.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for _, c := range s.clusters {
		for _, g := range c.Tree.FirstLevelIndexUnits() {
			if c.PendingCount(g) > 0 {
				changed = true
				break
			}
		}
		c.PropagateAll()
	}
	if changed {
		s.epoch.Add(1)
	}
}

// Stats summarizes the deployment.
type Stats struct {
	Units             int
	IndexUnits        int
	TreeHeight        int
	Files             int
	Trees             int // 1 + kept specialized trees
	IndexBytesTotal   int
	IndexBytesPerNode int
}

// Stats reports structural statistics of the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	storage, index := s.primary.Tree.CountNodes()
	st := Stats{
		Units:      storage,
		IndexUnits: index,
		TreeHeight: s.primary.Tree.Height(),
		Files:      s.primary.Tree.TotalFiles(),
		Trees:      len(s.clusters),
	}
	for _, c := range s.clusters {
		st.IndexBytesTotal += c.Tree.SizeBytes()
	}
	st.IndexBytesPerNode = s.primary.IndexSizeBytes()
	return st
}

// GenerateTrace synthesizes one of the paper's workloads ("HP", "MSN",
// "EECS") with nFiles sampled files, deterministic in seed.
func GenerateTrace(name string, nFiles int, seed uint64) (*TraceSet, error) {
	spec, err := trace.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Generate(nFiles, seed), nil
}

// FileByID returns a copy of the stored file with the given id.
func (s *Store) FileByID(id uint64) (File, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out File
	ok := false
	s.runQuery(s.primary, func() {
		// The id index may be lazily built here — cluster-state
		// mutation needing the same serialization as queries.
		if f, found := s.primary.FileByID(id); found {
			out = *f
			ok = true
		}
	})
	return out, ok
}

// MaxFileID returns the largest file id currently stored, or 0 for an
// empty deployment — the base a serving layer allocates fresh ids from.
// The maximum is maintained incrementally in the cluster's id index, so
// repeated calls are O(1) rather than a full-corpus scan.
func (s *Store) MaxFileID() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var max uint64
	s.runQuery(s.primary, func() {
		// The id index may be lazily built here — cluster-state
		// mutation needing the same serialization as queries.
		max = s.primary.MaxFileID()
	})
	return max
}

// Mode returns the store's configured default query execution path; a
// Query whose Options.Mode is ModeDefault runs on it.
func (s *Store) Mode() Mode { return s.cfg.Mode }

// ParseAttr resolves an attribute's short name ("size", "ctime",
// "mtime", "atime", "read_bytes", "write_bytes", "access_freq") to its
// Attr — the inverse of Attr.String, shared by the wire format and the
// CLIs.
func ParseAttr(name string) (Attr, error) { return metadata.ParseAttr(name) }

// DefaultCostModel exposes the calibrated virtual cost model so callers
// can reason about reported latencies.
func DefaultCostModel() simnet.CostModel { return simnet.DefaultCostModel() }
