// Package smartstore is a Go implementation of SmartStore — the
// decentralized, semantic-aware file-system metadata organization of
// Hua, Jiang, Zhu, Feng and Tian (SC'09) — together with the substrates
// and baselines needed to reproduce the paper's evaluation.
//
// Instead of a directory tree, SmartStore groups file metadata by the
// semantic correlation of its multi-dimensional attributes, measured
// with Latent Semantic Indexing over an SVD. Correlated files aggregate
// into storage units (leaves of a semantic R-tree); storage units
// aggregate into index units carrying Minimum Bounding Rectangles and
// unioned Bloom filters. Complex queries — multi-dimensional range and
// top-k nearest-neighbour — are served by one or a small number of
// semantic groups rather than by brute-force search of every server.
//
// # Quick start
//
//	set := smartstore.GenerateTrace("MSN", 10000, 42)
//	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 60})
//	if err != nil { ... }
//	res, err := store.Do(ctx, smartstore.NewRangeQuery(
//	    []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes},
//	    []float64{36000, 30e6}, []float64{59000, 50e6}).
//	    WithOptions(smartstore.QueryOptions{IncludeRecords: true}))
//	if err != nil { ... }
//	fmt.Println(len(res.Records), res.Report.Latency)
//
// PointQuery, RangeQuery and TopKQuery remain as thin compatibility
// wrappers over Do.
//
// # Durability
//
// With Config.DataDir set the store is durable: each engine shard
// appends every mutation to its own segmented write-ahead log before
// applying it (Config.Durability picks the fsync policy; under Always,
// each log group-commits concurrent appenders), Checkpoint rotates
// the logs to fresh segments under the shard locks, persists the
// snapshot outside them, and retires the covered segments — writers
// proceed for the whole encode. Checkpoints run explicitly, and
// automatically when the live WAL outgrows Config.CheckpointBytes.
// Open recovers a crashed store — snapshot load plus parallel
// per-shard WAL tail replay — losing no acknowledged mutation. See
// DESIGN.md §7.
//
// See the examples/ directory for complete programs and DESIGN.md for
// the system inventory and experiment index.
package smartstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/metadata"
	"repro/internal/semtree"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Attr identifies a metadata attribute dimension (file size, creation
// time, ..., access frequency).
type Attr = metadata.Attr

// Attribute constants re-exported from the metadata schema.
const (
	AttrSize       = metadata.AttrSize
	AttrCTime      = metadata.AttrCTime
	AttrMTime      = metadata.AttrMTime
	AttrATime      = metadata.AttrATime
	AttrReadBytes  = metadata.AttrReadBytes
	AttrWriteBytes = metadata.AttrWriteBytes
	AttrAccessFreq = metadata.AttrAccessFreq
	NumAttrs       = metadata.NumAttrs
)

// File is one file's metadata record.
type File = metadata.File

// TraceSet is a generated workload (see GenerateTrace).
type TraceSet = trace.Set

// Normalizer maps raw attribute values into the shared [0,1] semantic
// space all distances are computed in. Every store fits its own over
// its build corpus by default; a federation of stores must instead
// share one (see Config.Normalizer) so top-k distances computed on
// different backends are comparable and a gateway's merged answers
// match a single store's exactly.
type Normalizer = metadata.Normalizer

// FitNormalizer fits a normalizer over the given corpus — the handle a
// multi-store deployment builds once over the union of its backends'
// populations and passes to every backend's Config.Normalizer.
func FitNormalizer(files []*File) *Normalizer {
	n := &Normalizer{}
	n.Fit(files)
	return n
}

// Mode selects the complex-query execution path of §3.3–3.4.
type Mode int

const (
	// OffLine routes a query directly to its most-correlated semantic
	// group using locally replicated index-unit vectors (§3.4). Fast and
	// message-frugal; recall bounded by grouping quality.
	OffLine Mode = iota
	// OnLine multicasts the query to every first-level group host
	// (§3.3). Exact on the propagated snapshot; more messages.
	OnLine
)

// Config parameterizes Build.
type Config struct {
	// Shards is the number of independent engine shards the deployment
	// is partitioned into. Each shard owns its own semantic R-tree
	// forest, cluster deployment, virtual-time state and lock, so
	// operations on different shards never contend; queries fan out to
	// the relevant shards in parallel and merge. Default 1, which
	// reproduces the unsharded store exactly. Must not exceed Units.
	Shards int
	// Units is the number of storage units (metadata servers), summed
	// across shards. The prototype evaluation uses 60. Default 60.
	Units int
	// Attrs is the grouping predicate — the d-attribute subset of
	// special interest (§3.1.1). Default: mtime, read and write volume
	// (the paper's example query dimensions).
	Attrs []Attr
	// Mode is the default complex-query path. Default OffLine.
	Mode Mode
	// Versioning enables §4.4 consistency versioning.
	Versioning bool
	// VersionRatio is the modification-to-version ratio (§5.6; 0 → 4).
	VersionRatio int
	// LazyUpdateThreshold is the replica-refresh change fraction
	// (§3.4; 0 → 0.05).
	LazyUpdateThreshold float64
	// AutoConfig additionally builds specialized semantic R-trees over
	// attribute subsets (§2.4) and routes each query to the tree whose
	// attributes match best.
	AutoConfig bool
	// AutoConfigThreshold is the index-unit-count difference ratio for
	// keeping a specialized tree (§5.1 uses 10%; 0 → 0.10).
	AutoConfigThreshold float64
	// MaxChildren / MinChildren bound semantic R-tree fan-out (§4.1).
	MaxChildren, MinChildren int
	// BaseThreshold overrides the sampled level-1 admission threshold.
	BaseThreshold float64
	// Seed drives all randomized decisions. Deterministic per seed.
	Seed uint64
	// VirtualScale maps the in-memory sample onto a (much larger)
	// virtual population for latency modelling; see DESIGN.md §4.
	VirtualScale float64
	// DataDir, when set, makes the store durable: every shard appends
	// mutations to its own write-ahead log under DataDir before
	// applying them, and Checkpoint/Close persist snapshots there. A
	// crashed durable store reopens with Open — snapshot load plus
	// per-shard WAL tail replay — losing no acknowledged mutation. See
	// DESIGN.md §7. Empty (the default) keeps the store purely
	// in-memory.
	DataDir string
	// Durability selects the WAL fsync policy when DataDir is set:
	// DurabilityAlways (the zero value — fsync before every
	// acknowledgement), DurabilityInterval (periodic background fsync
	// every SyncInterval), DurabilityNever (leave flushing to the OS).
	// Acknowledged mutations survive a process crash under every
	// policy; surviving power loss needs Always (or bounded loss under
	// Interval).
	Durability Durability
	// SyncInterval is the background fsync period under
	// DurabilityInterval (0 → 100ms).
	SyncInterval time.Duration
	// CheckpointBytes, when positive, triggers a checkpoint whenever the
	// live write-ahead logs (summed across shards, WALSizes) outgrow it
	// — bounding both recovery replay time and disk growth between
	// periodic checkpoints. 0 (the default) disables size-triggered
	// checkpoints.
	CheckpointBytes int64
	// WALSegmentBytes is the rotation capacity of each shard's WAL
	// segments (0 → the wal package default, 1 MiB). Smaller segments
	// retire more promptly after a checkpoint; larger ones rotate less
	// often.
	WALSegmentBytes int64
	// Normalizer, when set and fitted, overrides the normalizer Build
	// would fit over the corpus. Stores federated behind one gateway
	// must share a normalizer fitted over the union of their corpora
	// (FitNormalizer) so cross-store distances agree.
	Normalizer *Normalizer
	// OfflineGroupBudget overrides the off-line search breadth: each
	// shard's off-line complex query searches at most this many index
	// groups, and a sharded off-line top-k targets at most this many
	// shards. 0 (the default) keeps the paper's adaptive heuristics; a
	// budget at least the group and shard counts makes the off-line
	// path exhaustive. Negative is rejected by Build. The evaluation
	// harness (cmd/smarteval) sweeps this knob to map recall vs cost.
	OfflineGroupBudget int
}

// engineConfig maps the public configuration onto the engine layer's.
func (cfg Config) engineConfig() engine.Config {
	return engine.Config{
		Shards:              cfg.Shards,
		Units:               cfg.Units,
		Attrs:               cfg.Attrs,
		Online:              cfg.Mode == OnLine,
		AutoConfig:          cfg.AutoConfig,
		AutoConfigThreshold: cfg.AutoConfigThreshold,
		Tree: semtree.Config{
			Attrs:         cfg.Attrs,
			BaseThreshold: cfg.BaseThreshold,
			MaxChildren:   cfg.MaxChildren,
			MinChildren:   cfg.MinChildren,
		},
		Cluster: cluster.Config{
			Versioning:          cfg.Versioning,
			VersionRatio:        cfg.VersionRatio,
			LazyUpdateThreshold: cfg.LazyUpdateThreshold,
			Seed:                cfg.Seed,
			VirtualScale:        cfg.VirtualScale,
		},
		Norm:               cfg.Normalizer,
		OfflineGroupBudget: cfg.OfflineGroupBudget,
	}
}

// Store is a deployed SmartStore instance.
//
// A Store is a facade over the sharded engine (internal/engine): the
// deployment is partitioned into Config.Shards independent shards, each
// with its own semantic R-tree forest, cluster deployment, virtual-time
// state and lock. A Store is safe for concurrent use — queries take
// per-shard shared locks and fan out in parallel, mutations route to
// their owning shard (multi-shard batches lock all target shards in a
// deadlock-free total order), and operations on different shards never
// contend on a lock. With Shards: 1 (the default) the engine executes
// exactly the pre-sharding store's code path.
type Store struct {
	cfg Config
	eng *engine.Engine

	// Durable-deployment state (nil/zero without Config.DataDir): one
	// segmented write-ahead log per shard, the background fsync loop
	// under DurabilityInterval, the WAL-size-triggered checkpoint loop
	// under Config.CheckpointBytes, and close-once bookkeeping.
	logs                   []*wal.Log
	syncStop               chan struct{}
	syncDone               chan struct{}
	ckptKick               chan struct{}
	ckptStop               chan struct{}
	ckptDone               chan struct{}
	autoCheckpoints        atomic.Uint64
	autoCheckpointFailures atomic.Uint64
	closeOnce              sync.Once
	closeErr               error
}

// Epoch returns the store's composed mutation epoch: the sum of the
// per-shard epochs, each of which increments on every mutation that can
// change a query's answer — inserts, effectual deletes, modifies, and
// flushes (no-ops leave it untouched). The sum is monotonic for any
// observer, so a cache keyed on query content can pair each entry with
// the epoch observed before computing it and treat any mismatch as
// invalidation.
func (s *Store) Epoch() uint64 { return s.eng.Epoch() }

// ShardEpochs snapshots every shard's mutation epoch in shard order.
// Each entry is individually monotonic, so a result cache can pair each
// entry with the epochs of exactly the shards the query targeted
// (Result.Shards) and survive writes that landed elsewhere.
func (s *Store) ShardEpochs() []uint64 { return s.eng.ShardEpochs() }

// PlacementInfo summarizes the store's semantic placement for a
// federating layer: the placement attributes, the file-count-weighted
// centroid in raw attribute units, and the raw normalization bounds per
// attribute.
type PlacementInfo struct {
	Attrs    []Attr
	Centroid []float64
	Lo, Hi   []float64
}

// Placement reports the store's placement summary — what a gateway
// reads at bootstrap to route writes and off-line queries by
// frozen-centroid distance, one level above the engine's shard routing.
func (s *Store) Placement() PlacementInfo {
	p := s.eng.Placement()
	return PlacementInfo{Attrs: p.Attrs, Centroid: p.Centroid, Lo: p.Lo, Hi: p.Hi}
}

// QueryReport carries the accounting of one operation: virtual latency,
// network messages, routing hops (groups beyond the first), and
// version-chain work. For operations fanned out across shards, latency
// is the slowest shard (they run in parallel) while messages and
// per-node work sum.
type QueryReport struct {
	Latency        float64 // seconds of virtual time
	Messages       int64
	Hops           int
	UnitsSearched  int
	VersionChecked int
	VersionLatency float64
}

func fromEngineReport(r engine.Report) QueryReport {
	return QueryReport{
		Latency:        r.Latency,
		Messages:       r.Messages,
		Hops:           r.Hops,
		UnitsSearched:  r.UnitsSearched,
		VersionChecked: r.VersionChecked,
		VersionLatency: r.VersionLatency,
	}
}

// Build constructs and deploys a SmartStore over the given corpus. An
// invalid configuration — fan-out bounds violating 2 ≤ m ≤ M/2, a shard
// count exceeding the unit count — returns an error rather than
// panicking, so configuration crossing a trust boundary (daemon flags)
// cannot crash the process.
func Build(files []*File, cfg Config) (*Store, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("smartstore: empty corpus")
	}
	if cfg.Units == 0 {
		cfg.Units = 60
	}
	if cfg.Units < 1 || cfg.Units > len(files) {
		return nil, fmt.Errorf("smartstore: %d units invalid for %d files", cfg.Units, len(files))
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Attrs == nil {
		cfg.Attrs = trace.DefaultQueryAttrs()
	}
	eng, err := engine.Build(files, cfg.engineConfig())
	if err != nil {
		return nil, fmt.Errorf("smartstore: %w", err)
	}
	s := &Store{cfg: cfg, eng: eng}
	if cfg.DataDir != "" {
		if err := s.initDataDir(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Insert routes a new file's metadata to its semantically placed shard.
// Like InsertBatch, it rejects a zero id or an id that is already
// stored — the serving layer treats ids as unique, so every insert path
// enforces the invariant.
func (s *Store) Insert(f *File) (QueryReport, error) {
	return s.InsertBatch([]*File{f})
}

// InsertBatch inserts files in one admission: the whole batch is
// validated first (a violation rejects the batch before anything is
// inserted; validation is serialized with every other insert's routing
// phase, so the uniqueness check cannot race another writer), files
// are routed to shards by semantic placement, and every target shard
// is write-locked before any insert lands — so each shard, and any
// snapshot (which locks all shards), observes the batch atomically. A
// query fanning out across shards takes per-shard read locks
// independently and therefore sees per-shard, not cross-shard, batch
// atomicity. Per-shard sub-batches execute in parallel, and each
// affected shard bumps its epoch once. The returned report aggregates
// virtual latency (max across shards, summed within each shard's
// sub-batch) and messages over the whole batch.
func (s *Store) InsertBatch(files []*File) (QueryReport, error) {
	rep, err := s.eng.InsertBatch(files)
	if err != nil {
		return QueryReport{}, fmt.Errorf("smartstore: %w", err)
	}
	s.noteMutation()
	return fromEngineReport(rep), nil
}

// Delete removes a file by id, reporting whether it existed. The id →
// shard index routes the delete directly to the owning shard; the
// shard's epoch advances only when a file was actually removed — a
// no-op delete must not invalidate query caches. On a durable store
// the delete is logged before it applies; a returned error means the
// WAL rejected the record and nothing changed.
func (s *Store) Delete(id uint64) (QueryReport, bool, error) {
	rep, found, err := s.eng.Delete(id)
	if err != nil {
		return QueryReport{}, false, fmt.Errorf("smartstore: %w", err)
	}
	s.noteMutation()
	return fromEngineReport(rep), found, nil
}

// Modify updates an existing file's attributes on its owning shard. The
// epoch advances only when the file existed. On a durable store the
// modify is logged before it applies; a returned error means the WAL
// rejected the record and nothing changed.
func (s *Store) Modify(f *File) (QueryReport, bool, error) {
	rep, found, err := s.eng.Modify(f)
	if err != nil {
		return QueryReport{}, false, fmt.Errorf("smartstore: %w", err)
	}
	s.noteMutation()
	return fromEngineReport(rep), found, nil
}

// Flush propagates all pending changes to replicas on every shard (lazy
// updates are otherwise threshold-driven, §3.4). Each shard's epoch
// advances only when that shard had something pending — propagating
// nothing changes no query's answer. On a durable store an effectual
// flush is logged before propagating (so recovery replays the same
// replica-state and epoch evolution); a returned error means a WAL
// append failed and that shard's replicas were left untouched.
func (s *Store) Flush() error {
	if err := s.eng.Flush(); err != nil {
		return fmt.Errorf("smartstore: %w", err)
	}
	s.noteMutation()
	return nil
}

// Stats summarizes the deployment.
type Stats struct {
	Units             int
	IndexUnits        int
	TreeHeight        int
	Files             int
	Trees             int // 1 + kept specialized trees, summed across shards
	IndexBytesTotal   int
	IndexBytesPerNode int
	// Shards is the engine shard count; PerShard breaks the deployment
	// down by shard.
	Shards   int
	PerShard []ShardStats
}

// ShardStats is one shard's slice of the deployment.
type ShardStats struct {
	Shard      int
	Units      int
	IndexUnits int
	TreeHeight int
	Files      int
	Trees      int
	Epoch      uint64
}

// Stats reports structural statistics of the store, aggregated across
// shards with a per-shard breakdown.
func (s *Store) Stats() Stats {
	total, per := s.eng.Stats()
	st := Stats{
		Units:             total.Units,
		IndexUnits:        total.IndexUnits,
		TreeHeight:        total.TreeHeight,
		Files:             total.Files,
		Trees:             total.Trees,
		IndexBytesTotal:   total.IndexBytesTotal,
		IndexBytesPerNode: total.IndexBytesPerNode,
		Shards:            len(per),
		PerShard:          make([]ShardStats, len(per)),
	}
	for i, p := range per {
		st.PerShard[i] = ShardStats{
			Shard:      p.Shard,
			Units:      p.Units,
			IndexUnits: p.IndexUnits,
			TreeHeight: p.TreeHeight,
			Files:      p.Files,
			Trees:      p.Trees,
			Epoch:      p.Epoch,
		}
	}
	return st
}

// GenerateTrace synthesizes one of the paper's workloads ("HP", "MSN",
// "EECS") with nFiles sampled files, deterministic in seed.
func GenerateTrace(name string, nFiles int, seed uint64) (*TraceSet, error) {
	spec, err := trace.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Generate(nFiles, seed), nil
}

// FileByID returns a copy of the stored file with the given id, routed
// directly to its owning shard through the id index.
func (s *Store) FileByID(id uint64) (File, bool) {
	return s.eng.FileByID(id)
}

// MaxFileID returns the largest file id currently stored, or 0 for an
// empty deployment — the base a serving layer allocates fresh ids from.
// The maximum is maintained incrementally alongside the engine's id →
// shard index, so repeated calls are O(1) rather than a full-corpus
// scan.
func (s *Store) MaxFileID() uint64 { return s.eng.MaxFileID() }

// Mode returns the store's configured default query execution path; a
// Query whose Options.Mode is ModeDefault runs on it.
func (s *Store) Mode() Mode { return s.cfg.Mode }

// Shards returns the engine shard count.
func (s *Store) Shards() int { return s.eng.Shards() }

// ParseAttr resolves an attribute's short name ("size", "ctime",
// "mtime", "atime", "read_bytes", "write_bytes", "access_freq") to its
// Attr — the inverse of Attr.String, shared by the wire format and the
// CLIs.
func ParseAttr(name string) (Attr, error) { return metadata.ParseAttr(name) }

// DefaultCostModel exposes the calibrated virtual cost model so callers
// can reason about reported latencies.
func DefaultCostModel() simnet.CostModel { return simnet.DefaultCostModel() }
