package smartstore

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/semtree"
	"repro/internal/snapshot"
)

// Save persists the store's primary deployment (partition, normalizer,
// configuration) to w. A store restored with Load answers queries
// identically. Specialized auto-configuration trees are rebuilt on
// load, not persisted.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return snapshot.Capture(s.primary.Tree).Write(w)
}

// Load restores a store previously written with Save. The cluster
// deployment (server mapping, replicas) is regenerated from cfg's seed;
// cfg's structural fields (Units, Attrs, fan-out, threshold) are taken
// from the snapshot and ignored in cfg.
func Load(r io.Reader, cfg Config) (*Store, error) {
	snap, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	tree, err := snap.Restore()
	if err != nil {
		return nil, err
	}
	if cfg.VersionRatio < 0 || cfg.LazyUpdateThreshold < 0 {
		return nil, fmt.Errorf("smartstore: invalid config")
	}
	cl := cluster.New(tree, cluster.Config{
		Versioning:          cfg.Versioning,
		VersionRatio:        cfg.VersionRatio,
		LazyUpdateThreshold: cfg.LazyUpdateThreshold,
		Seed:                cfg.Seed,
		VirtualScale:        cfg.VirtualScale,
	})
	st := &Store{
		cfg:      cfg,
		norm:     tree.Norm,
		primary:  cl,
		clusters: map[*semtree.Tree]*cluster.Cluster{tree: cl},
	}
	st.cfg.Attrs = tree.Attrs
	st.initLocks()
	return st, nil
}

// anchorFor resolves a path to its stored file record via a point query
// and the cluster's id index. The read lock must already be held.
func (s *Store) anchorFor(path string) *File {
	matches, _ := s.pointQuery(path)
	if len(matches) == 0 {
		return nil
	}
	var anchor *File
	s.runQuery(s.primary, func() {
		// FileByID may lazily build the id index — a mutation of
		// cluster state that needs the same serialization as queries.
		anchor, _ = s.primary.FileByID(matches[0])
	})
	return anchor
}

// Correlated returns the k files most semantically correlated with the
// file at the given path — the semantic-prefetching primitive of §1.1
// ("when a file is visited, we can execute a top-k query to find its k
// most correlated files to be prefetched"). It returns ok=false when
// the path is unknown.
func (s *Store) Correlated(path string, k int) (ids []uint64, rep QueryReport, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	anchor := s.anchorFor(path)
	if anchor == nil {
		return nil, QueryReport{}, false
	}
	attrs := s.cfg.Attrs
	point := make([]float64, len(attrs))
	for i, a := range attrs {
		point[i] = anchor.Attrs[a]
	}
	// k+1 then drop the anchor itself.
	got, r := s.topKQuery(attrs, point, k+1)
	out := make([]uint64, 0, k)
	for _, id := range got {
		if id != anchor.ID && len(out) < k {
			out = append(out, id)
		}
	}
	return out, r, true
}

// DuplicateCandidates returns, for the file at the given path, up to k
// files whose physical attributes (size, creation time) are nearest —
// the deduplication narrowing of §1.1. The caller confirms true
// duplicates by content comparison.
func (s *Store) DuplicateCandidates(path string, k int) (ids []uint64, rep QueryReport, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	anchor := s.anchorFor(path)
	if anchor == nil {
		return nil, QueryReport{}, false
	}
	attrs := []Attr{AttrSize, AttrCTime}
	point := []float64{anchor.Attrs[AttrSize], anchor.Attrs[AttrCTime]}
	got, r := s.topKQuery(attrs, point, k+1)
	out := make([]uint64, 0, k)
	for _, id := range got {
		if id != anchor.ID && len(out) < k {
			out = append(out, id)
		}
	}
	return out, r, true
}
