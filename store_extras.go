package smartstore

import (
	"context"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/snapshot"
)

// Save persists the store's deployment — every shard's partition, the
// shard assignment, the normalizer, and the construction configuration
// — to w. The capture takes every shard's read lock (in the engine's
// deadlock-free total order) before touching any shard, so a snapshot
// taken during a concurrent InsertBatch is never torn: it observes
// either all of a batch or none of it. A store restored with Load
// answers queries identically. Specialized auto-configuration trees are
// not persisted.
//
// Save writes to an arbitrary sink (an export, a backup) and does NOT
// truncate a durable store's write-ahead logs — only Checkpoint, which
// pairs the snapshot write with the truncation inside one lock hold,
// may discard log records.
func (s *Store) Save(w io.Writer) error {
	return s.eng.Snapshot().Write(w)
}

// Load restores a store previously written with Save. The cluster
// deployments (server mapping, replicas) are regenerated from cfg's
// seed; cfg's structural fields (Units, Attrs, Shards, fan-out,
// threshold) are taken from the snapshot and ignored in cfg. Version-1
// snapshots (written before sharding) load as a one-shard deployment;
// version-2 snapshots (written before the WAL) load with zero epochs.
//
// With cfg.DataDir set, the loaded store becomes durable: the data dir
// is freshly initialized (it must not already hold a deployment) with
// an initial checkpoint and empty per-shard WALs — the path for
// seeding a durable daemon from an exported snapshot. To recover a
// data dir that already has state, use Open.
func Load(r io.Reader, cfg Config) (*Store, error) {
	snap, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	s, err := restoreFromSnapshot(snap, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DataDir != "" {
		if err := s.initDataDir(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// restoreFromSnapshot is the shared restore pipeline of Load and Open:
// rebuild the shard trees, adopt the snapshot's structural fields over
// cfg's, and regenerate the deployments from cfg's seed. Any change to
// how a snapshot maps onto a store belongs here, so export (Load) and
// crash recovery (Open) can never restore differently.
func restoreFromSnapshot(snap *snapshot.Snapshot, cfg Config) (*Store, error) {
	trees, err := snap.RestoreShards()
	if err != nil {
		return nil, err
	}
	if cfg.VersionRatio < 0 || cfg.LazyUpdateThreshold < 0 {
		return nil, fmt.Errorf("smartstore: invalid config")
	}
	cfg.Shards = len(trees)
	cfg.Attrs = trees[0].Attrs
	eng, err := engine.Restore(trees, cfg.engineConfig())
	if err != nil {
		return nil, fmt.Errorf("smartstore: %w", err)
	}
	return &Store{cfg: cfg, eng: eng}, nil
}

// anchorFor resolves a path to its stored file record via a fanned-out
// point query and the engine's id index.
func (s *Store) anchorFor(path string) *File {
	ans, err := s.eng.Point(context.Background(), query.Point{Filename: path}, engine.QueryOpts{})
	if err != nil || len(ans.IDs) == 0 {
		return nil
	}
	if f, ok := s.eng.FileByID(ans.IDs[0]); ok {
		return &f
	}
	return nil
}

// topKIDs runs a top-k query over the engine, returning ids and the
// aggregated report.
func (s *Store) topKIDs(attrs []Attr, point []float64, k int) ([]uint64, QueryReport) {
	tq := query.NewTopK(attrs, point, k)
	ans, err := s.eng.TopK(context.Background(), tq,
		engine.QueryOpts{Online: s.cfg.Mode == OnLine})
	if err != nil {
		return nil, QueryReport{}
	}
	return ans.IDs, fromEngineReport(ans.Report)
}

// Correlated returns the k files most semantically correlated with the
// file at the given path — the semantic-prefetching primitive of §1.1
// ("when a file is visited, we can execute a top-k query to find its k
// most correlated files to be prefetched"). It returns ok=false when
// the path is unknown. Anchor resolution and the follow-up top-k run
// as separate engine admissions, so a mutation landing between them is
// observed (the pre-sharding store held one store-wide read lock
// across both); prefetch hints tolerate that staleness by nature.
func (s *Store) Correlated(path string, k int) (ids []uint64, rep QueryReport, ok bool) {
	anchor := s.anchorFor(path)
	if anchor == nil {
		return nil, QueryReport{}, false
	}
	attrs := s.cfg.Attrs
	point := make([]float64, len(attrs))
	for i, a := range attrs {
		point[i] = anchor.Attrs[a]
	}
	// k+1 then drop the anchor itself.
	got, r := s.topKIDs(attrs, point, k+1)
	out := make([]uint64, 0, k)
	for _, id := range got {
		if id != anchor.ID && len(out) < k {
			out = append(out, id)
		}
	}
	return out, r, true
}

// DuplicateCandidates returns, for the file at the given path, up to k
// files whose physical attributes (size, creation time) are nearest —
// the deduplication narrowing of §1.1. The caller confirms true
// duplicates by content comparison.
func (s *Store) DuplicateCandidates(path string, k int) (ids []uint64, rep QueryReport, ok bool) {
	anchor := s.anchorFor(path)
	if anchor == nil {
		return nil, QueryReport{}, false
	}
	attrs := []Attr{AttrSize, AttrCTime}
	point := []float64{anchor.Attrs[AttrSize], anchor.Attrs[AttrCTime]}
	got, r := s.topKIDs(attrs, point, k+1)
	out := make([]uint64, 0, k)
	for _, id := range got {
		if id != anchor.ID && len(out) < k {
			out = append(out, id)
		}
	}
	return out, r, true
}
