package smartstore_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	smartstore "repro"
	"repro/internal/wal"
)

// segHeaderOnly is the on-disk size of an empty WAL segment (header
// only) — what each shard's directory holds right after a checkpoint
// retired everything.
const segHeaderOnly = int64(wal.SegmentHeaderSize)

// buildDurableStore deploys a 4-shard durable store over a synthesized
// corpus in a fresh data dir.
func buildDurableStore(t testing.TB, dir string, files, units, shards int) (*smartstore.Store, *smartstore.TraceSet) {
	t.Helper()
	set, err := smartstore.GenerateTrace("MSN", files, 17)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{
		Units:      units,
		Shards:     shards,
		Seed:       17,
		DataDir:    dir,
		Durability: smartstore.DurabilityNever, // process-crash tests; fsync policy is orthogonal
	})
	if err != nil {
		t.Fatal(err)
	}
	return store, set
}

// reopen recovers the data dir as Open would after a crash.
func reopen(t testing.TB, dir string) *smartstore.Store {
	t.Helper()
	store, err := smartstore.Open(smartstore.Config{
		Seed:       17,
		DataDir:    dir,
		Durability: smartstore.DurabilityNever,
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return store
}

func sortedIDs(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rangeIDs runs a wide on-line range query (exact on propagated state).
func rangeIDs(t testing.TB, store *smartstore.Store) []uint64 {
	t.Helper()
	res, err := store.Do(context.Background(), smartstore.NewRangeQuery(
		[]smartstore.Attr{smartstore.AttrMTime},
		[]float64{-1e18}, []float64{1e18},
	).WithOptions(smartstore.QueryOptions{Mode: smartstore.ModeOnline}))
	if err != nil {
		t.Fatal(err)
	}
	return sortedIDs(res.IDs)
}

// TestCrashRecoveryFourShards is the recover-equals-pre-crash state
// test: a 4-shard durable store takes a concurrent mutation storm
// (multi-shard insert batches, deletes, modifies — run under -race in
// CI), is dropped without Close to simulate SIGKILL, and must reopen
// with identical files, epoch, max id, records and query answers.
func TestCrashRecoveryFourShards(t *testing.T) {
	dir := t.TempDir()
	store, set := buildDurableStore(t, dir, 800, 12, 4)

	const workers = 4
	base := store.MaxFileID()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch i % 3 {
				case 0: // multi-file batch: attrs sampled across the corpus span shards
					batch := make([]*smartstore.File, 3)
					for j := range batch {
						src := set.Files[(w*131+i*17+j*271)%len(set.Files)]
						batch[j] = &smartstore.File{
							ID:    base + uint64(w*1000+i*10+j+1),
							Path:  fmt.Sprintf("/crash/w%d/i%d/f%d", w, i, j),
							Attrs: src.Attrs,
						}
					}
					if _, err := store.InsertBatch(batch); err != nil {
						t.Errorf("insert batch: %v", err)
					}
				case 1: // modify a seed file
					f := *set.Files[(w*53+i*29)%len(set.Files)]
					f.Attrs[smartstore.AttrSize] += float64(i)
					if _, _, err := store.Modify(&f); err != nil {
						t.Errorf("modify: %v", err)
					}
				case 2: // delete one of this worker's earlier inserts
					if _, _, err := store.Delete(base + uint64(w*1000+(i-2)*10+1)); err != nil {
						t.Errorf("delete: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	preStats := store.Stats()
	preEpoch := store.Epoch()
	preMax := store.MaxFileID()
	if preEpoch == 0 || preStats.Files <= 800 {
		t.Fatalf("workload did not mutate: epoch %d files %d", preEpoch, preStats.Files)
	}
	if err := store.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	preFlushEpoch := store.Epoch()
	preRange := rangeIDs(t, store)
	sample := *set.Files[7]

	// Crash: no Close, no final checkpoint — the WAL tails carry
	// everything since Build's initial checkpoint.
	recovered := reopen(t, dir)
	defer recovered.Close()

	if got := recovered.Stats(); got.Files != preStats.Files {
		t.Fatalf("recovered files = %d, want %d", got.Files, preStats.Files)
	}
	if got := recovered.MaxFileID(); got != preMax {
		t.Fatalf("recovered MaxFileID = %d, want %d", got, preMax)
	}
	if got := recovered.Epoch(); got != preFlushEpoch {
		// Effectual flushes are logged too, so the recovered epoch must
		// match the pre-crash value exactly — the /v1/stats guarantee.
		t.Fatalf("recovered epoch = %d, want %d", got, preFlushEpoch)
	}
	recovered.Flush()
	postRange := rangeIDs(t, recovered)
	if len(postRange) != len(preRange) {
		t.Fatalf("recovered range answer %d ids, want %d", len(postRange), len(preRange))
	}
	for i := range preRange {
		if preRange[i] != postRange[i] {
			t.Fatalf("range id %d: recovered %d, want %d", i, postRange[i], preRange[i])
		}
	}
	if f, ok := recovered.FileByID(sample.ID); !ok || f.Path != sample.Path {
		t.Fatalf("recovered FileByID(%d) = %+v, %v", sample.ID, f, ok)
	}
	// The workload's modifies must have survived: worker 0 iteration 1
	// touched set.Files[29] last... spot-check one inserted path.
	res, err := recovered.Do(context.Background(),
		smartstore.NewPointQuery("/crash/w1/i3/f2"))
	if err != nil || len(res.IDs) == 0 {
		t.Fatalf("recovered point query: ids %v err %v", res.IDs, err)
	}
}

// TestCrashRecoveryLosesNothingAfterCleanClose: a clean Close
// checkpoints, so reopening replays an empty tail and still matches.
func TestCleanCloseReopens(t *testing.T) {
	dir := t.TempDir()
	store, set := buildDurableStore(t, dir, 300, 8, 2)
	nf := &smartstore.File{ID: store.MaxFileID() + 1, Path: "/clean/a.dat", Attrs: set.Files[3].Attrs}
	if _, err := store.Insert(nf); err != nil {
		t.Fatal(err)
	}
	want := store.Stats().Files
	wantEpoch := store.Epoch()
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	for i, sz := range storeWALSizesOnDisk(t, dir, 2) {
		if sz != segHeaderOnly { // one empty segment: Close's checkpoint retired the rest
			t.Fatalf("shard %d WAL holds %d bytes after clean Close, want %d", i, sz, segHeaderOnly)
		}
		if n := len(shardSegFiles(t, dir, i)); n != 1 {
			t.Fatalf("shard %d holds %d segment files after clean Close, want 1", i, n)
		}
	}
	back := reopen(t, dir)
	defer back.Close()
	if got := back.Stats().Files; got != want {
		t.Fatalf("reopened files = %d, want %d", got, want)
	}
	if got := back.Epoch(); got != wantEpoch {
		t.Fatalf("reopened epoch = %d, want %d", got, wantEpoch)
	}
}

// shardSegFiles lists shard i's WAL segment files in sequence order.
func shardSegFiles(t testing.TB, dir string, shard int) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", shard), "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	return matches
}

func storeWALSizesOnDisk(t testing.TB, dir string, shards int) []int64 {
	t.Helper()
	out := make([]int64, shards)
	for i := range out {
		for _, p := range shardSegFiles(t, dir, i) {
			info, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			out[i] += info.Size()
		}
	}
	return out
}

// wipeShardWAL deletes every segment file in one shard's WAL directory
// — the fault-injection stand-in for a shard whose log never reached
// disk.
func wipeShardWAL(t testing.TB, dir string, shard int) {
	t.Helper()
	for _, p := range shardSegFiles(t, dir, shard) {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIncompleteMultiShardBatchDroppedAtomically: a batch logged to
// only some of its target shards (the crash hit between appends, or a
// tail was lost) was never acknowledged — recovery must drop it on
// every shard, not replay the fragments that survived.
func TestIncompleteMultiShardBatchDroppedAtomically(t *testing.T) {
	dir := t.TempDir()
	store, set := buildDurableStore(t, dir, 600, 12, 4)
	preFiles := store.Stats().Files
	base := store.MaxFileID()

	// One batch whose attrs are sampled far apart in the corpus, so it
	// spans multiple shards (verified below via WAL growth).
	batch := make([]*smartstore.File, 8)
	for j := range batch {
		batch[j] = &smartstore.File{
			ID:    base + uint64(j) + 1,
			Path:  fmt.Sprintf("/atomic/f%d", j),
			Attrs: set.Files[(j*577+13)%len(set.Files)].Attrs,
		}
	}
	if _, err := store.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	sizes := store.WALSizes()
	grown := []int{}
	for i, sz := range sizes {
		if sz > segHeaderOnly {
			grown = append(grown, i)
		}
	}
	if len(grown) < 2 {
		t.Skipf("batch landed on %d shards; need ≥ 2 for the atomicity check", len(grown))
	}

	// Crash, then lose one target shard's copy of the batch record.
	wipeShardWAL(t, dir, grown[0])
	recovered := reopen(t, dir)
	defer recovered.Close()
	if got := recovered.Stats().Files; got != preFiles {
		t.Fatalf("incomplete batch partially replayed: %d files, want %d", got, preFiles)
	}
	for j := range batch {
		if _, ok := recovered.FileByID(batch[j].ID); ok {
			t.Fatalf("fragment of dropped batch resolvable: id %d", batch[j].ID)
		}
	}
}

// TestKillMidBatchEveryTornOffset cuts one target's final WAL record at
// every byte offset: whatever the tear, recovery must agree with the
// atomic-batch guarantee — the batch is gone everywhere.
func TestKillMidBatchEveryTornOffset(t *testing.T) {
	dir := t.TempDir()
	store, set := buildDurableStore(t, dir, 400, 8, 4)
	preFiles := store.Stats().Files
	base := store.MaxFileID()
	batch := make([]*smartstore.File, 8)
	for j := range batch {
		batch[j] = &smartstore.File{
			ID:    base + uint64(j) + 1,
			Path:  fmt.Sprintf("/torn/f%d", j),
			Attrs: set.Files[(j*487+5)%len(set.Files)].Attrs,
		}
	}
	if _, err := store.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	sizes := store.WALSizes()
	victim := -1
	for i, sz := range sizes {
		if sz > segHeaderOnly {
			victim = i
		}
	}
	if victim < 0 || len(sizes) < 2 {
		t.Fatal("batch landed nowhere")
	}
	multi := 0
	for _, sz := range sizes {
		if sz > segHeaderOnly {
			multi++
		}
	}
	if multi < 2 {
		t.Skip("batch landed on one shard; tearing it is covered by the wal package tests")
	}

	// The fresh store's writes fit one segment per shard; tear that one.
	victimSegs := shardSegFiles(t, dir, victim)
	if len(victimSegs) != 1 {
		t.Fatalf("victim shard holds %d segments, want 1", len(victimSegs))
	}
	victimPath := victimSegs[0]
	intact, err := os.ReadFile(victimPath)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the other logs and the snapshot pristine across iterations.
	pristine := snapshotDataDir(t, dir)

	for off := int64(segHeaderOnly); off < int64(len(intact)); off += 7 { // stride keeps the test fast; wal tests cover every offset
		restoreDataDir(t, pristine)
		if err := os.Truncate(victimPath, off); err != nil {
			t.Fatal(err)
		}
		recovered := reopen(t, dir)
		if got := recovered.Stats().Files; got != preFiles {
			t.Fatalf("tear at %d: %d files, want %d (batch must drop atomically)", off, got, preFiles)
		}
		recovered.Close()
	}
}

// snapshotDataDir captures every file under dir (recursively — shard
// WALs are segment directories) so a fault-injection loop can restore
// the exact pre-fault on-disk state between iterations.
func snapshotDataDir(t testing.TB, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		out[p] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func restoreDataDir(t testing.TB, pristine map[string][]byte) {
	t.Helper()
	for p, b := range pristine {
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryIgnoresPreCheckpointRecords simulates a crash between the
// checkpoint snapshot's rename and the WAL truncation that follows it:
// the stale records carry epochs at or below the snapshot's truncation
// points and must not double-apply.
func TestRecoveryIgnoresPreCheckpointRecords(t *testing.T) {
	dir := t.TempDir()
	store, set := buildDurableStore(t, dir, 300, 8, 2)
	base := store.MaxFileID()
	for j := 0; j < 6; j++ {
		f := &smartstore.File{ID: base + uint64(j) + 1, Path: fmt.Sprintf("/ckpt/f%d", j),
			Attrs: set.Files[j*37%len(set.Files)].Attrs}
		if _, err := store.Insert(f); err != nil {
			t.Fatal(err)
		}
	}
	// Save the WAL segments, checkpoint (rotating past and deleting
	// them), then put them back — exactly the on-disk state of a crash
	// after the snapshot rename but before the deferred truncation.
	walBytes := map[string][]byte{}
	for i := 0; i < 2; i++ {
		for _, p := range shardSegFiles(t, dir, i) {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			walBytes[p] = b
		}
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := store.Stats().Files
	wantEpoch := store.Epoch()
	for p, b := range walBytes {
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	recovered := reopen(t, dir)
	defer recovered.Close()
	if got := recovered.Stats().Files; got != want {
		t.Fatalf("stale records double-applied: %d files, want %d", got, want)
	}
	if got := recovered.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
}

// TestFlushEpochSurvivesCrash: effectual flushes are logged, so a
// flush that bumped the epoch as the *last* pre-crash mutation is not
// lost — /v1/stats epoch matches exactly after recovery.
func TestFlushEpochSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	store, set := buildDurableStore(t, dir, 300, 8, 2)
	f := &smartstore.File{ID: store.MaxFileID() + 1, Path: "/fl/a.dat", Attrs: set.Files[9].Attrs}
	if _, err := store.Insert(f); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Delete(f.ID); err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil { // delete left pending work → effectual
		t.Fatal(err)
	}
	want := store.Epoch()
	recovered := reopen(t, dir)
	defer recovered.Close()
	if got := recovered.Epoch(); got != want {
		t.Fatalf("recovered epoch = %d, want %d (trailing flush bump lost)", got, want)
	}
}

// A crash between a checkpoint's temp-file write and its rename leaves
// an orphan; the next recovery (or initialization) must sweep it.
func TestRecoverySweepsStaleTempSnapshots(t *testing.T) {
	dir := t.TempDir()
	store, _ := buildDurableStore(t, dir, 200, 6, 2)
	store.Close()
	orphan := filepath.Join(dir, "snapshot.snap.tmp12345")
	if err := os.WriteFile(orphan, []byte("half-written checkpoint"), 0o600); err != nil {
		t.Fatal(err)
	}
	back := reopen(t, dir)
	back.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("stale temp snapshot survived recovery: %v", err)
	}
}

func TestBuildRefusesInitializedDataDir(t *testing.T) {
	dir := t.TempDir()
	store, set := buildDurableStore(t, dir, 200, 6, 2)
	store.Close()
	if _, err := smartstore.Build(set.Files, smartstore.Config{
		Units: 6, Shards: 2, Seed: 17, DataDir: dir,
	}); err == nil {
		t.Fatal("Build re-initialized a data dir holding a deployment")
	}
}

func TestOpenRequiresInitializedDataDir(t *testing.T) {
	if _, err := smartstore.Open(smartstore.Config{DataDir: t.TempDir()}); err == nil {
		t.Fatal("Open succeeded on an empty data dir")
	}
	if _, err := smartstore.Open(smartstore.Config{}); err == nil {
		t.Fatal("Open succeeded without a data dir")
	}
}

// TestSizeTriggeredCheckpoint: with Config.CheckpointBytes set, a
// mutation stream that outgrows the threshold must trigger background
// checkpoints that fold the logs into the snapshot — the WAL shrinks
// back without any explicit Checkpoint call — and the store stays
// recoverable throughout.
func TestSizeTriggeredCheckpoint(t *testing.T) {
	dir := t.TempDir()
	set, err := smartstore.GenerateTrace("MSN", 300, 17)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{
		Units:           8,
		Shards:          2,
		Seed:            17,
		DataDir:         dir,
		Durability:      smartstore.DurabilityNever,
		CheckpointBytes: 8 << 10,
		WALSegmentBytes: 2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := store.MaxFileID()
	for j := 0; j < 200; j++ {
		f := &smartstore.File{
			ID:    base + uint64(j) + 1,
			Path:  fmt.Sprintf("/auto/f%d", j),
			Attrs: set.Files[j%len(set.Files)].Attrs,
		}
		if _, err := store.Insert(f); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for store.WALStats().AutoCheckpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no size-triggered checkpoint after the WAL outgrew the threshold (sizes %v)",
				store.WALSizes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	want := store.Stats().Files
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	back := reopen(t, dir)
	defer back.Close()
	if got := back.Stats().Files; got != want {
		t.Fatalf("reopened files = %d, want %d", got, want)
	}
}

// TestWALStatsGroupCommitCounters: under DurabilityAlways every
// acknowledged mutation is covered by a group commit, and the counters
// surface through the Store facade (and from there /v1/stats).
func TestWALStatsGroupCommitCounters(t *testing.T) {
	dir := t.TempDir()
	set, err := smartstore.GenerateTrace("MSN", 200, 17)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{
		Units: 6, Shards: 2, Seed: 17, DataDir: dir,
		Durability: smartstore.DurabilityAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	base := store.MaxFileID()
	const inserts = 10
	for j := 0; j < inserts; j++ {
		f := &smartstore.File{ID: base + uint64(j) + 1, Path: fmt.Sprintf("/gc/f%d", j),
			Attrs: set.Files[j].Attrs}
		if _, err := store.Insert(f); err != nil {
			t.Fatal(err)
		}
	}
	ws := store.WALStats()
	if ws.GroupedRecords < inserts {
		t.Fatalf("group committer acknowledged %d records, want ≥ %d", ws.GroupedRecords, inserts)
	}
	if ws.GroupCommits == 0 || ws.GroupCommits > ws.GroupedRecords {
		t.Fatalf("implausible group-commit counters: %d commits / %d records",
			ws.GroupCommits, ws.GroupedRecords)
	}
	if ws.Segments < 2 || ws.Bytes <= 2*segHeaderOnly {
		t.Fatalf("implausible segment inventory: %d segments, %d bytes", ws.Segments, ws.Bytes)
	}
}

func TestParseDurability(t *testing.T) {
	for _, d := range []smartstore.Durability{
		smartstore.DurabilityAlways, smartstore.DurabilityInterval, smartstore.DurabilityNever,
	} {
		back, err := smartstore.ParseDurability(d.String())
		if err != nil || back != d {
			t.Fatalf("ParseDurability(%q) = %v, %v", d.String(), back, err)
		}
	}
	if _, err := smartstore.ParseDurability("sometimes"); err == nil {
		t.Fatal("ParseDurability accepted junk")
	}
}
