package main

import (
	"strings"
	"testing"
)

// The daemon's store configuration crosses a trust boundary: every
// value arrives from operator flags. An invalid combination must come
// back as an error from bootstrap — never a panic out of the tree
// builder — so a typo in a systemd unit cannot crash-loop the daemon
// with a stack trace instead of a diagnostic.
func TestBootstrapRejectsInvalidFanOut(t *testing.T) {
	cases := []struct {
		name string
		o    bootstrapOpts
		want string
	}{
		{
			name: "min exceeds half of max",
			o:    bootstrapOpts{trace: "MSN", files: 500, units: 10, shards: 1, seed: 1, maxChildren: 10, minChildren: 7},
			want: "fan-out",
		},
		{
			name: "min below two",
			o:    bootstrapOpts{trace: "MSN", files: 500, units: 10, shards: 1, seed: 1, maxChildren: 10, minChildren: 1},
			want: "fan-out",
		},
		{
			name: "negative fan-out",
			o:    bootstrapOpts{trace: "MSN", files: 500, units: 10, shards: 1, seed: 1, maxChildren: -4, minChildren: 2},
			want: "fan-out",
		},
		{
			name: "more shards than units",
			o:    bootstrapOpts{trace: "MSN", files: 500, units: 4, shards: 8, seed: 1},
			want: "shards",
		},
		{
			name: "unknown trace",
			o:    bootstrapOpts{trace: "NOPE", files: 500, units: 10, shards: 1, seed: 1},
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bootstrap panicked: %v", r)
				}
			}()
			_, _, err := bootstrap(tc.o)
			if err == nil {
				t.Fatalf("bootstrap accepted invalid config %+v", tc.o)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// A valid sharded bootstrap must come up and report its shard count.
func TestBootstrapShardedStore(t *testing.T) {
	store, desc, err := bootstrap(bootstrapOpts{trace: "MSN", files: 800, units: 12, shards: 4, seed: 1})
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if store.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", store.Shards())
	}
	if st := store.Stats(); st.Files != 800 || st.Units != 12 || len(st.PerShard) != 4 {
		t.Fatalf("stats %+v", st)
	}
	if !strings.Contains(desc, "MSN") {
		t.Fatalf("desc %q", desc)
	}
}
