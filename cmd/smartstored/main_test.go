package main

import (
	"fmt"
	"strings"
	"testing"

	smartstore "repro"
)

// The daemon's store configuration crosses a trust boundary: every
// value arrives from operator flags. An invalid combination must come
// back as an error from bootstrap — never a panic out of the tree
// builder — so a typo in a systemd unit cannot crash-loop the daemon
// with a stack trace instead of a diagnostic.
func TestBootstrapRejectsInvalidFanOut(t *testing.T) {
	cases := []struct {
		name string
		o    bootstrapOpts
		want string
	}{
		{
			name: "min exceeds half of max",
			o:    bootstrapOpts{trace: "MSN", files: 500, units: 10, shards: 1, seed: 1, maxChildren: 10, minChildren: 7},
			want: "fan-out",
		},
		{
			name: "min below two",
			o:    bootstrapOpts{trace: "MSN", files: 500, units: 10, shards: 1, seed: 1, maxChildren: 10, minChildren: 1},
			want: "fan-out",
		},
		{
			name: "negative fan-out",
			o:    bootstrapOpts{trace: "MSN", files: 500, units: 10, shards: 1, seed: 1, maxChildren: -4, minChildren: 2},
			want: "fan-out",
		},
		{
			name: "more shards than units",
			o:    bootstrapOpts{trace: "MSN", files: 500, units: 4, shards: 8, seed: 1},
			want: "shards",
		},
		{
			name: "unknown trace",
			o:    bootstrapOpts{trace: "NOPE", files: 500, units: 10, shards: 1, seed: 1},
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bootstrap panicked: %v", r)
				}
			}()
			_, _, err := bootstrap(tc.o)
			if err == nil {
				t.Fatalf("bootstrap accepted invalid config %+v", tc.o)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// The daemon's durable boot sequence: a fresh -data-dir bootstrap
// initializes the dir, a crashed daemon (no Close) restarted over the
// same dir recovers every acknowledged mutation, and combining -load
// with an initialized dir is refused rather than orphaning its state.
func TestBootstrapRecoversDataDir(t *testing.T) {
	dir := t.TempDir()
	opts := bootstrapOpts{trace: "MSN", files: 600, units: 12, shards: 4, seed: 1,
		dataDir: dir, fsync: "never"}
	store, desc, err := bootstrap(opts)
	if err != nil {
		t.Fatalf("durable bootstrap: %v", err)
	}
	if !strings.Contains(desc, "trace") {
		t.Fatalf("desc %q, want trace bootstrap", desc)
	}
	base := store.MaxFileID()
	batch := make([]*smartstore.File, 5)
	for j := range batch {
		f, ok := store.FileByID(base - uint64(j*31) - 1)
		if !ok {
			t.Fatalf("seed file %d missing", base-uint64(j*31)-1)
		}
		batch[j] = &smartstore.File{ID: base + uint64(j) + 1,
			Path: fmt.Sprintf("/dd/f%d", j), Attrs: f.Attrs}
	}
	if _, err := store.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	want := store.Stats().Files
	wantEpoch := store.Epoch()

	// Crash (no Close) and restart over the same dir.
	store2, desc2, err := bootstrap(opts)
	if err != nil {
		t.Fatalf("recovery bootstrap: %v", err)
	}
	defer store2.Close()
	if !strings.Contains(desc2, "recovered") {
		t.Fatalf("desc %q, want recovery", desc2)
	}
	if got := store2.Stats().Files; got != want {
		t.Fatalf("recovered files = %d, want %d", got, want)
	}
	if got := store2.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch = %d, want %d", got, wantEpoch)
	}

	loadOpts := opts
	loadOpts.loadPath = "whatever.snap"
	if _, _, err := bootstrap(loadOpts); err == nil || !strings.Contains(err.Error(), "initialized") {
		t.Fatalf("-load over an initialized data dir: err = %v, want refusal", err)
	}
}

// An invalid -fsync spelling is an operator error, not a panic.
func TestBootstrapRejectsBadFsyncPolicy(t *testing.T) {
	if _, _, err := bootstrap(bootstrapOpts{trace: "MSN", files: 300, units: 6, shards: 1, seed: 1,
		dataDir: t.TempDir(), fsync: "mostly"}); err == nil {
		t.Fatal("bootstrap accepted -fsync mostly")
	}
}

// A valid sharded bootstrap must come up and report its shard count.
func TestBootstrapShardedStore(t *testing.T) {
	store, desc, err := bootstrap(bootstrapOpts{trace: "MSN", files: 800, units: 12, shards: 4, seed: 1})
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if store.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", store.Shards())
	}
	if st := store.Stats(); st.Files != 800 || st.Units != 12 || len(st.PerShard) != 4 {
		t.Fatalf("stats %+v", st)
	}
	if !strings.Contains(desc, "MSN") {
		t.Fatalf("desc %q", desc)
	}
}
