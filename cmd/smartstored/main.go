// Command smartstored is the SmartStore metadata daemon: it deploys a
// store — bootstrapped from a synthesized trace, restored from a
// snapshot, or recovered from a durable data dir — and serves the
// HTTP/JSON metadata API of internal/server.
//
// Usage:
//
//	smartstored -addr :7070 -trace MSN -files 20000
//	smartstored -addr :7070 -load store.snap -versioning
//	smartstored -addr :7070 -trace HP -cache 8192 -workers 16
//	smartstored -addr :7070 -shards 4 -data-dir /var/lib/smartstore
//
// With -data-dir the store is durable: each engine shard appends every
// mutation to its own segmented write-ahead log before applying it
// (-fsync picks the always/interval/never sync policy; under always,
// each log group-commits concurrent appenders — see DESIGN.md §7 for
// what that batches today), checkpoints fold
// the logs into a snapshot both periodically (-checkpoint-every) and
// when the live WAL outgrows -checkpoint-bytes, and a daemon restarted
// over the same data dir recovers the last acknowledged pre-crash
// state — snapshot load plus parallel per-shard WAL replay. Defaults
// worth knowing: -shards 1 (unsharded; must not exceed -units, default
// 60), -max-children 0 → fan-out M=10, -min-children 0 → m=2
// (validated as 2 ≤ m ≤ M/2, a violation is a startup error, not a
// panic), -fsync always, -checkpoint-every 5m, -checkpoint-bytes 0
// (size trigger off).
//
// With -follow the daemon runs as a replication follower instead of a
// leader: it bootstraps from the leader's snapshot endpoint, tails its
// per-shard WAL segment streams, and serves the same query API
// read-only (mutations answer 503) until POST /v1/repl/promote — or a
// smartgate failing the dead leader over — promotes it to a writable
// standalone store. See DESIGN.md §11 for the protocol and the
// failover state machine.
//
// Probe it with curl (see DESIGN.md §5 for the full API and §7 for the
// durability design):
//
//	curl -s localhost:7070/v1/stats
//	curl -s -X POST localhost:7070/v1/query/range \
//	  -d '{"attrs":["mtime","read_bytes"],"lo":[36000,3e7],"hi":[59000,5e7]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	smartstore "repro"
	"repro/internal/repl"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	traceName := flag.String("trace", "MSN", "trace to synthesize: HP, MSN or EECS")
	files := flag.Int("files", 20000, "sample population for trace bootstrap")
	units := flag.Int("units", 60, "storage units (metadata servers), summed across shards")
	shards := flag.Int("shards", 1, "independent engine shards (default 1 = unsharded; must not exceed -units)")
	seed := flag.Uint64("seed", 42, "random seed")
	idOffset := flag.Uint64("id-offset", 0, "offset added to every trace-synthesized file id (gives each member of a smartgate federation a disjoint id space)")
	loadPath := flag.String("load", "", "restore the store from a snapshot file instead of synthesizing")
	versioning := flag.Bool("versioning", false, "enable consistency versioning")
	online := flag.Bool("online", false, "use the on-line multicast query path")
	offlineBudget := flag.Int("offline-budget", 0, "off-line search budget: groups per shard and shards per query (0 = adaptive heuristics; ≥ group and shard counts = exhaustive, exact answers)")
	autoconfig := flag.Bool("autoconfig", false, "build specialized semantic R-trees per attribute subset")
	maxChildren := flag.Int("max-children", 0, "semantic R-tree max fan-out M (default 0 = 10)")
	minChildren := flag.Int("min-children", 0, "semantic R-tree min fan-out m (default 0 = 2; validated 2 ≤ m ≤ M/2)")
	cacheEntries := flag.Int("cache", 4096, "query-result cache entries (negative disables)")
	workers := flag.Int("workers", 0, "max concurrently executing requests (0 = 2×GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker (0 = 8×workers)")
	dataDir := flag.String("data-dir", "", "durable data dir: per-shard write-ahead logs + checkpoint snapshots; restart recovers the pre-crash store")
	fsyncPolicy := flag.String("fsync", "always", "WAL fsync policy with -data-dir: always (fsync before every ack), interval (periodic), never (OS decides)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync interval")
	checkpointEvery := flag.Duration("checkpoint-every", 5*time.Minute, "periodic snapshot+WAL-truncation period with -data-dir (0 disables)")
	checkpointBytes := flag.Int64("checkpoint-bytes", 0, "checkpoint when the live WAL (summed across shards) outgrows this many bytes (0 disables size-triggered checkpoints)")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 0, "rotate each shard's WAL to a fresh segment past this many bytes (0 = 64 MiB default)")
	metricsOn := flag.Bool("metrics", true, "expose Prometheus metrics at /v1/metrics")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/ (off by default; enables remote profiling)")
	slowQuery := flag.Duration("slow-query", 0, "log any request slower than this with its per-phase breakdown (0 disables)")
	follow := flag.String("follow", "", "run as a replication follower of this leader address (read-only until promoted; see DESIGN.md §11)")
	followPoll := flag.Duration("follow-poll", 250*time.Millisecond, "WAL tail poll period while caught up with -follow")
	flag.Parse()

	// The signal context is created before bootstrap so a follower's
	// snapshot fetch and catch-up are themselves interruptible.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	bo := bootstrapOpts{
		loadPath:        *loadPath,
		trace:           *traceName,
		files:           *files,
		units:           *units,
		shards:          *shards,
		seed:            *seed,
		idOffset:        *idOffset,
		versioning:      *versioning,
		online:          *online,
		offlineBudget:   *offlineBudget,
		autoconfig:      *autoconfig,
		maxChildren:     *maxChildren,
		minChildren:     *minChildren,
		dataDir:         *dataDir,
		fsync:           *fsyncPolicy,
		fsyncInterval:   *fsyncInterval,
		checkpointBytes: *checkpointBytes,
		walSegmentBytes: *walSegmentBytes,
	}

	var store *smartstore.Store
	var desc string
	var err error
	var follower *repl.Follower
	if *follow != "" {
		if *loadPath != "" {
			log.Fatal("smartstored: -follow is incompatible with -load (the follower bootstraps from the leader's snapshot)")
		}
		cfg, cErr := buildConfig(bo)
		if cErr != nil {
			log.Fatalf("smartstored: %v", cErr)
		}
		store, desc, err = repl.Bootstrap(ctx, *follow, *dataDir, cfg, repl.Options{
			PollEvery: *followPoll,
			Logf:      log.Printf,
		})
		if err != nil {
			log.Fatalf("smartstored: %v", err)
		}
		follower = repl.New(store, *follow, repl.Options{
			PollEvery: *followPoll,
			Logf:      log.Printf,
		})
	} else {
		store, desc, err = bootstrap(bo)
		if err != nil {
			log.Fatalf("smartstored: %v", err)
		}
	}

	srvOpts := server.Options{
		CacheEntries:   *cacheEntries,
		Workers:        *workers,
		MaxQueue:       *queue,
		DisableMetrics: !*metricsOn,
		SlowQuery:      *slowQuery,
	}
	if follower != nil {
		srvOpts.ReadOnly = true
		srvOpts.Repl = follower
	}
	srv := server.New(store, srvOpts)
	var handler http.Handler = srv
	if *pprofOn {
		// pprof stays opt-in: it exposes heap contents and stack traces,
		// so it must never ride along silently on a production port.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		log.Print("smartstored: pprof enabled under /debug/pprof/")
	}
	st := store.Stats()
	log.Printf("smartstored: %s — %d files in %d units across %d shards (%d index units, height %d)",
		desc, st.Files, st.Units, st.Shards, st.IndexUnits, st.TreeHeight)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if follower != nil {
		log.Printf("smartstored: following %s (read-only until promoted)", *follow)
		go follower.Run(ctx)
	}

	// Periodic checkpoint: fold the WAL tails into the snapshot and
	// truncate the logs, bounding both recovery replay time and log
	// growth. A failed checkpoint is an operational warning, not fatal
	// — the WAL still holds everything and the next tick retries. The
	// goroutine is joined before Close so a tick racing shutdown can
	// never checkpoint against closed logs.
	var ckptDone chan struct{}
	if *dataDir != "" && *checkpointEvery > 0 {
		ckptDone = make(chan struct{})
		go func() {
			defer close(ckptDone)
			t := time.NewTicker(*checkpointEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := store.Checkpoint(); err != nil {
						log.Printf("smartstored: checkpoint: %v", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("smartstored: serving on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("smartstored: %v", err)
		}
	case <-ctx.Done():
		log.Print("smartstored: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("smartstored: shutdown: %v", err)
		}
		if ckptDone != nil {
			<-ckptDone // ctx is done; joins any in-flight checkpoint
		}
		// Final checkpoint + log close: a cleanly stopped daemon
		// restarts with an empty WAL tail to replay.
		if err := store.Close(); err != nil {
			log.Printf("smartstored: close: %v", err)
		}
	}
}

// bootstrapOpts collects the store-construction flags. Everything in
// here crosses the wire boundary from operator flags, so bootstrap must
// return an error — never panic — on any invalid combination.
type bootstrapOpts struct {
	loadPath                 string
	trace                    string
	files, units, shards     int
	seed                     uint64
	idOffset                 uint64
	versioning, online       bool
	offlineBudget            int
	autoconfig               bool
	maxChildren, minChildren int
	dataDir                  string
	fsync                    string
	fsyncInterval            time.Duration
	checkpointBytes          int64
	walSegmentBytes          int64
}

// buildConfig translates the operator flags into a store Config; it is
// shared by leader bootstrap and follower bootstrap (repl.Bootstrap),
// so both modes interpret -fsync, -units and friends identically.
func buildConfig(o bootstrapOpts) (smartstore.Config, error) {
	mode := smartstore.OffLine
	if o.online {
		mode = smartstore.OnLine
	}
	durability := smartstore.DurabilityAlways
	if o.dataDir != "" {
		var err error
		durability, err = smartstore.ParseDurability(o.fsync)
		if err != nil {
			return smartstore.Config{}, err
		}
	}
	return smartstore.Config{
		Units:              o.units,
		Shards:             o.shards,
		Seed:               o.seed,
		Versioning:         o.versioning,
		Mode:               mode,
		OfflineGroupBudget: o.offlineBudget,
		AutoConfig:         o.autoconfig,
		MaxChildren:        o.maxChildren,
		MinChildren:        o.minChildren,
		DataDir:            o.dataDir,
		Durability:         durability,
		SyncInterval:       o.fsyncInterval,
		CheckpointBytes:    o.checkpointBytes,
		WALSegmentBytes:    o.walSegmentBytes,
	}, nil
}

// bootstrap builds the store: recovered from an initialized data dir,
// restored from a snapshot file, or synthesized from a trace. With a
// data dir, bootstrap sources initialize it (refusing one that already
// holds a deployment) and recovery replays its WAL tails.
func bootstrap(o bootstrapOpts) (*smartstore.Store, string, error) {
	cfg, err := buildConfig(o)
	if err != nil {
		return nil, "", err
	}

	if o.dataDir != "" && smartstore.DataDirInitialized(o.dataDir) {
		if o.loadPath != "" {
			return nil, "", fmt.Errorf("data dir %s is already initialized; -load would orphan its state (recover without -load, or point -data-dir somewhere fresh)", o.dataDir)
		}
		store, err := smartstore.Open(cfg)
		if err != nil {
			return nil, "", fmt.Errorf("recovering %s: %w", o.dataDir, err)
		}
		return store, "recovered from " + o.dataDir, nil
	}

	if o.loadPath != "" {
		f, err := os.Open(o.loadPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		store, err := smartstore.Load(f, cfg)
		if err != nil {
			return nil, "", fmt.Errorf("restoring %s: %w", o.loadPath, err)
		}
		return store, "restored from " + o.loadPath, nil
	}

	set, err := smartstore.GenerateTrace(o.trace, o.files, o.seed)
	if err != nil {
		return nil, "", err
	}
	if o.idOffset > 0 {
		// Disjoint id spaces are a federation invariant: a smartgate
		// merges per-backend answers assuming no id lives on two members.
		for _, f := range set.Files {
			f.ID += o.idOffset
		}
	}
	store, err := smartstore.Build(set.Files, cfg)
	if err != nil {
		return nil, "", err
	}
	return store, "bootstrapped from trace " + o.trace, nil
}
