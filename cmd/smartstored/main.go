// Command smartstored is the SmartStore metadata daemon: it deploys a
// store — bootstrapped from a synthesized trace or restored from a
// snapshot — and serves the HTTP/JSON metadata API of internal/server.
//
// Usage:
//
//	smartstored -addr :7070 -trace MSN -files 20000
//	smartstored -addr :7070 -load store.snap -versioning
//	smartstored -addr :7070 -trace HP -cache 8192 -workers 16
//
// Probe it with curl (see DESIGN.md §5 for the full API):
//
//	curl -s localhost:7070/v1/stats
//	curl -s -X POST localhost:7070/v1/query/range \
//	  -d '{"attrs":["mtime","read_bytes"],"lo":[36000,3e7],"hi":[59000,5e7]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	smartstore "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	traceName := flag.String("trace", "MSN", "trace to synthesize: HP, MSN or EECS")
	files := flag.Int("files", 20000, "sample population for trace bootstrap")
	units := flag.Int("units", 60, "storage units")
	shards := flag.Int("shards", 1, "independent engine shards (1 = unsharded; must not exceed units)")
	seed := flag.Uint64("seed", 42, "random seed")
	loadPath := flag.String("load", "", "restore the store from a snapshot file instead of synthesizing")
	versioning := flag.Bool("versioning", false, "enable consistency versioning")
	online := flag.Bool("online", false, "use the on-line multicast query path")
	autoconfig := flag.Bool("autoconfig", false, "build specialized semantic R-trees per attribute subset")
	maxChildren := flag.Int("max-children", 0, "semantic R-tree max fan-out M (0 = default 10)")
	minChildren := flag.Int("min-children", 0, "semantic R-tree min fan-out m (0 = default 2; need 2 ≤ m ≤ M/2)")
	cacheEntries := flag.Int("cache", 4096, "query-result cache entries (negative disables)")
	workers := flag.Int("workers", 0, "max concurrently executing requests (0 = 2×GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker (0 = 8×workers)")
	flag.Parse()

	store, desc, err := bootstrap(bootstrapOpts{
		loadPath:    *loadPath,
		trace:       *traceName,
		files:       *files,
		units:       *units,
		shards:      *shards,
		seed:        *seed,
		versioning:  *versioning,
		online:      *online,
		autoconfig:  *autoconfig,
		maxChildren: *maxChildren,
		minChildren: *minChildren,
	})
	if err != nil {
		log.Fatalf("smartstored: %v", err)
	}

	srv := server.New(store, server.Options{
		CacheEntries: *cacheEntries,
		Workers:      *workers,
		MaxQueue:     *queue,
	})
	st := store.Stats()
	log.Printf("smartstored: %s — %d files in %d units across %d shards (%d index units, height %d)",
		desc, st.Files, st.Units, st.Shards, st.IndexUnits, st.TreeHeight)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("smartstored: serving on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("smartstored: %v", err)
		}
	case <-ctx.Done():
		log.Print("smartstored: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("smartstored: shutdown: %v", err)
		}
	}
}

// bootstrapOpts collects the store-construction flags. Everything in
// here crosses the wire boundary from operator flags, so bootstrap must
// return an error — never panic — on any invalid combination.
type bootstrapOpts struct {
	loadPath                 string
	trace                    string
	files, units, shards     int
	seed                     uint64
	versioning, online       bool
	autoconfig               bool
	maxChildren, minChildren int
}

// bootstrap builds the store from a snapshot or a synthesized trace.
func bootstrap(o bootstrapOpts) (*smartstore.Store, string, error) {
	mode := smartstore.OffLine
	if o.online {
		mode = smartstore.OnLine
	}
	cfg := smartstore.Config{
		Units:       o.units,
		Shards:      o.shards,
		Seed:        o.seed,
		Versioning:  o.versioning,
		Mode:        mode,
		AutoConfig:  o.autoconfig,
		MaxChildren: o.maxChildren,
		MinChildren: o.minChildren,
	}

	if o.loadPath != "" {
		f, err := os.Open(o.loadPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		store, err := smartstore.Load(f, cfg)
		if err != nil {
			return nil, "", fmt.Errorf("restoring %s: %w", o.loadPath, err)
		}
		return store, "restored from " + o.loadPath, nil
	}

	set, err := smartstore.GenerateTrace(o.trace, o.files, o.seed)
	if err != nil {
		return nil, "", err
	}
	store, err := smartstore.Build(set.Files, cfg)
	if err != nil {
		return nil, "", err
	}
	return store, "bootstrapped from trace " + o.trace, nil
}
