// Command benchdiff is the CI bench-regression gate: it compares two
// smartbench -json reports (BENCH_serve.json from a base and a head
// build) and fails when head's p95 latency regresses past the allowed
// fraction for any (shard count, op type) pair present in both.
//
// Usage:
//
//	benchdiff -base BENCH_base.json -head BENCH_head.json
//	benchdiff -base ... -head ... -max-regress 0.25 -min-ms 1.0
//
// Fast ops drown in scheduler noise, so a pair is only eligible to fail
// the gate when at least one side's p95 reaches -min-ms; below that the
// comparison is printed but informational. Ops or shard counts present
// on one side only are reported and skipped — a renamed op must not
// silently drop out of the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// opStats mirrors the smartbench -json per-op block (only the fields
// the gate reads).
type opStats struct {
	Count int     `json:"count"`
	P95Ms float64 `json:"p95_ms"`
}

// benchResult mirrors one shard-count pass of the report.
type benchResult struct {
	Shards     int                `json:"shards"`
	Throughput float64            `json:"throughput_ops_per_sec"`
	PerOp      map[string]opStats `json:"per_op"`
	// ServerPerOp is the daemon's own latency view (smartbench
	// -scrape); gated like PerOp when both reports carry it.
	ServerPerOp map[string]opStats `json:"server_per_op"`
}

// benchReport mirrors the smartbench -json envelope.
type benchReport struct {
	Results []benchResult `json:"results"`
}

// comparison is one (shards, op) pair's verdict.
type comparison struct {
	Shards   int
	Op       string
	BaseP95  float64
	HeadP95  float64
	Delta    float64 // fractional change, head vs. base
	Gated    bool    // true when the pair can fail the gate
	RegressK bool    // true when gated and past the threshold
}

func readReport(path string) (benchReport, error) {
	var r benchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Results) == 0 {
		return r, fmt.Errorf("%s: no results", path)
	}
	return r, nil
}

// compare pairs up every (shards, op) present in both reports and
// applies the regression rule. unmatched collects pairs present on one
// side only.
func compare(base, head benchReport, maxRegress, minMs float64) (comps []comparison, unmatched []string) {
	baseByShards := map[int]benchResult{}
	for _, r := range base.Results {
		baseByShards[r.Shards] = r
	}
	headSeen := map[string]bool{}
	for _, hr := range head.Results {
		br, ok := baseByShards[hr.Shards]
		if !ok {
			unmatched = append(unmatched, fmt.Sprintf("shards=%d only in head", hr.Shards))
			continue
		}
		for op, hs := range hr.PerOp {
			bs, ok := br.PerOp[op]
			headSeen[fmt.Sprintf("%d/%s", hr.Shards, op)] = true
			if !ok {
				unmatched = append(unmatched, fmt.Sprintf("shards=%d op=%s only in head", hr.Shards, op))
				continue
			}
			c := comparison{Shards: hr.Shards, Op: op, BaseP95: bs.P95Ms, HeadP95: hs.P95Ms}
			if bs.P95Ms > 0 {
				c.Delta = hs.P95Ms/bs.P95Ms - 1
			}
			c.Gated = bs.P95Ms >= minMs || hs.P95Ms >= minMs
			c.RegressK = c.Gated && bs.P95Ms > 0 && hs.P95Ms > bs.P95Ms*(1+maxRegress)
			comps = append(comps, c)
		}
		for op := range br.PerOp {
			if !headSeen[fmt.Sprintf("%d/%s", hr.Shards, op)] {
				unmatched = append(unmatched, fmt.Sprintf("shards=%d op=%s only in base", hr.Shards, op))
			}
		}
		// The daemon-observed view gates only when both reports carry it
		// (a base report predating -scrape must not trip unmatched
		// warnings), and pairs op-by-op like the client view.
		if len(hr.ServerPerOp) > 0 && len(br.ServerPerOp) > 0 {
			for op, hs := range hr.ServerPerOp {
				bs, ok := br.ServerPerOp[op]
				if !ok {
					continue
				}
				c := comparison{Shards: hr.Shards, Op: "server/" + op, BaseP95: bs.P95Ms, HeadP95: hs.P95Ms}
				if bs.P95Ms > 0 {
					c.Delta = hs.P95Ms/bs.P95Ms - 1
				}
				c.Gated = bs.P95Ms >= minMs || hs.P95Ms >= minMs
				c.RegressK = c.Gated && bs.P95Ms > 0 && hs.P95Ms > bs.P95Ms*(1+maxRegress)
				comps = append(comps, c)
			}
		}
	}
	headByShards := map[int]bool{}
	for _, hr := range head.Results {
		headByShards[hr.Shards] = true
	}
	for _, br := range base.Results {
		if !headByShards[br.Shards] {
			unmatched = append(unmatched, fmt.Sprintf("shards=%d only in base", br.Shards))
		}
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Shards != comps[j].Shards {
			return comps[i].Shards < comps[j].Shards
		}
		return comps[i].Op < comps[j].Op
	})
	sort.Strings(unmatched)
	return comps, unmatched
}

func main() {
	basePath := flag.String("base", "", "base build's smartbench -json report")
	headPath := flag.String("head", "", "head build's smartbench -json report")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional p95 regression (0.25 = +25%)")
	minMs := flag.Float64("min-ms", 1.0, "gate a pair only when either side's p95 reaches this many ms (noise floor)")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -head are required")
		os.Exit(2)
	}
	base, err := readReport(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	head, err := readReport(*headPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	comps, unmatched := compare(base, head, *maxRegress, *minMs)
	fmt.Printf("%-8s %-10s %12s %12s %9s %s\n", "shards", "op", "base p95ms", "head p95ms", "delta", "verdict")
	failed := 0
	for _, c := range comps {
		verdict := "ok"
		switch {
		case c.RegressK:
			verdict = "REGRESSED"
			failed++
		case !c.Gated:
			verdict = "info (under noise floor)"
		}
		fmt.Printf("%-8d %-10s %12.3f %12.3f %8.1f%% %s\n",
			c.Shards, c.Op, c.BaseP95, c.HeadP95, c.Delta*100, verdict)
	}
	for _, u := range unmatched {
		fmt.Printf("unmatched: %s\n", u)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d (shards, op) pair(s) regressed past +%.0f%%\n",
			failed, *maxRegress*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no p95 regression past +%.0f%% (%d pairs compared)\n",
		*maxRegress*100, len(comps))
}
