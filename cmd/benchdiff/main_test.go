package main

import "testing"

func report(shards int, ops map[string]float64) benchReport {
	per := map[string]opStats{}
	for op, p95 := range ops {
		per[op] = opStats{Count: 100, P95Ms: p95}
	}
	return benchReport{Results: []benchResult{{Shards: shards, PerOp: per}}}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := report(4, map[string]float64{"range": 10, "point": 2})
	head := report(4, map[string]float64{"range": 14, "point": 2.1})
	comps, unmatched := compare(base, head, 0.25, 1.0)
	if len(unmatched) != 0 {
		t.Fatalf("unexpected unmatched pairs: %v", unmatched)
	}
	got := map[string]bool{}
	for _, c := range comps {
		got[c.Op] = c.RegressK
	}
	if !got["range"] {
		t.Fatal("+40% p95 on range not flagged")
	}
	if got["point"] {
		t.Fatal("+5% p95 on point flagged as regression")
	}
}

func TestCompareToleratesWithinThreshold(t *testing.T) {
	base := report(1, map[string]float64{"topk": 8})
	head := report(1, map[string]float64{"topk": 9.9})
	comps, _ := compare(base, head, 0.25, 1.0)
	if len(comps) != 1 || comps[0].RegressK {
		t.Fatalf("+24%% flagged: %+v", comps)
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	// Both sides under -min-ms: a 3x blowup on a 0.1ms op is scheduler
	// noise, not a regression.
	base := report(1, map[string]float64{"point": 0.1})
	head := report(1, map[string]float64{"point": 0.3})
	comps, _ := compare(base, head, 0.25, 1.0)
	if len(comps) != 1 || comps[0].RegressK {
		t.Fatalf("sub-noise-floor pair failed the gate: %+v", comps)
	}
	if comps[0].Gated {
		t.Fatalf("pair under the noise floor reported as gated: %+v", comps[0])
	}
	// Crossing the floor upward IS gated: 0.5ms → 2ms.
	comps, _ = compare(report(1, map[string]float64{"point": 0.5}),
		report(1, map[string]float64{"point": 2}), 0.25, 1.0)
	if len(comps) != 1 || !comps[0].RegressK {
		t.Fatalf("floor-crossing regression missed: %+v", comps)
	}
}

func TestCompareReportsUnmatched(t *testing.T) {
	base := benchReport{Results: []benchResult{
		{Shards: 1, PerOp: map[string]opStats{"range": {P95Ms: 5}}},
		{Shards: 4, PerOp: map[string]opStats{"range": {P95Ms: 3}}},
	}}
	head := benchReport{Results: []benchResult{
		{Shards: 1, PerOp: map[string]opStats{"scan": {P95Ms: 5}}},
	}}
	_, unmatched := compare(base, head, 0.25, 1.0)
	if len(unmatched) != 3 { // range only in base, scan only in head, shards=4 only in base
		t.Fatalf("unmatched = %v, want 3 entries", unmatched)
	}
}

func TestCompareGatesServerView(t *testing.T) {
	mk := func(clientP95, serverP95 float64) benchReport {
		return benchReport{Results: []benchResult{{
			Shards:      1,
			PerOp:       map[string]opStats{"range": {Count: 100, P95Ms: clientP95}},
			ServerPerOp: map[string]opStats{"range": {Count: 100, P95Ms: serverP95}},
		}}}
	}
	// Client view flat, server view +60%: the daemon-observed pair must
	// fail the gate on its own.
	comps, unmatched := compare(mk(5, 2), mk(5, 3.2), 0.25, 1.0)
	if len(unmatched) != 0 {
		t.Fatalf("unexpected unmatched: %v", unmatched)
	}
	got := map[string]bool{}
	for _, c := range comps {
		got[c.Op] = c.RegressK
	}
	if got["range"] {
		t.Fatal("flat client pair flagged")
	}
	if !got["server/range"] {
		t.Fatal("+60% server-side p95 not flagged")
	}

	// A base report without server_per_op (predates -scrape) gates only
	// the client view — no comparisons, no unmatched spam.
	old := benchReport{Results: []benchResult{{
		Shards: 1,
		PerOp:  map[string]opStats{"range": {Count: 100, P95Ms: 5}},
	}}}
	comps, unmatched = compare(old, mk(5, 9), 0.25, 1.0)
	if len(unmatched) != 0 {
		t.Fatalf("unexpected unmatched: %v", unmatched)
	}
	for _, c := range comps {
		if c.Op == "server/range" {
			t.Fatal("server pair compared against a report lacking server_per_op")
		}
	}
}
