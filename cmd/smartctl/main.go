// Command smartctl builds a SmartStore over a synthesized trace and runs
// ad-hoc queries against it — a small operational front-end to the
// library for exploration and demos. With -remote it routes the same
// verbs through a running smartstored daemon instead of building a
// local store, so one binary exercises both the library and the
// service path. Both paths run through the unified query API
// (Store.Do locally, POST /v1/query remotely), so the per-query
// options -records, -limit and -mode apply everywhere.
//
// Usage:
//
//	smartctl -trace MSN -files 5000 stats
//	smartctl -trace MSN -files 5000 point /MSN/u010/d03/f0000123.dat
//	smartctl -trace HP range mtime=3600:86400 read_bytes=3e7:5e7
//	smartctl -trace EECS -records topk 8 mtime=41000 read_bytes=2.68e7 write_bytes=6.57e7
//	smartctl -remote localhost:7070 stats
//	smartctl -remote localhost:7070 -records -limit 20 range mtime=3600:86400
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	traceName := flag.String("trace", "MSN", "trace to synthesize: HP, MSN or EECS")
	files := flag.Int("files", 5000, "sample population")
	units := flag.Int("units", 60, "storage units")
	seed := flag.Uint64("seed", 42, "random seed")
	versioning := flag.Bool("versioning", false, "enable consistency versioning")
	online := flag.Bool("online", false, "use the on-line multicast query path")
	loadPath := flag.String("load", "", "restore the store from a snapshot file instead of synthesizing")
	savePath := flag.String("save", "", "write the built store to a snapshot file before querying")
	remote := flag.String("remote", "", "route verbs through a smartstored daemon at this address")
	records := flag.Bool("records", false, "inline full file records in query answers")
	limit := flag.Int("limit", 0, "truncate query answers to at most this many ids (0 = unlimited)")
	queryMode := flag.String("mode", "", "per-query mode override: offline or online (empty = store default)")
	wireFlag := flag.String("wire", "auto", "remote query codec: auto (negotiate binary), json, or binary")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	opts, err := queryOptions(*records, *limit, *queryMode)
	if err != nil {
		fatal(err)
	}

	if args[0] == "metrics" && *remote == "" {
		fatal(fmt.Errorf("the metrics verb reads a daemon's /v1/metrics; it needs -remote"))
	}
	if *remote != "" {
		wireMode, err := client.ParseWireMode(*wireFlag)
		if err != nil {
			fatal(err)
		}
		runRemote(*remote, args, opts, wireMode)
		return
	}

	mode := smartstore.OffLine
	if *online {
		mode = smartstore.OnLine
	}
	var store *smartstore.Store
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		store, err = smartstore.Load(f, smartstore.Config{
			Seed: *seed, Versioning: *versioning, Mode: mode,
		})
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		set, err := smartstore.GenerateTrace(*traceName, *files, *seed)
		if err != nil {
			fatal(err)
		}
		store, err = smartstore.Build(set.Files, smartstore.Config{
			Units: *units, Seed: *seed, Versioning: *versioning, Mode: mode,
		})
		if err != nil {
			fatal(err)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := store.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if args[0] == "stats" {
		st := store.Stats()
		fmt.Printf("trace        %s (%d sampled files)\n", *traceName, st.Files)
		fmt.Printf("storage units %d\n", st.Units)
		fmt.Printf("index units   %d\n", st.IndexUnits)
		fmt.Printf("tree height   %d\n", st.TreeHeight)
		fmt.Printf("trees         %d\n", st.Trees)
		fmt.Printf("index bytes   %d total, %d per node\n", st.IndexBytesTotal, st.IndexBytesPerNode)
		return
	}

	q, err := parseQueryVerb(args, opts)
	if err != nil {
		fatal(err)
	}
	res, err := store.Do(context.Background(), q)
	if err != nil {
		fatal(err)
	}
	printLocal(q, res)
}

// queryOptions assembles the shared per-query options from flags.
func queryOptions(records bool, limit int, mode string) (smartstore.QueryOptions, error) {
	m, err := smartstore.ParseQueryMode(mode)
	if err != nil {
		return smartstore.QueryOptions{}, err
	}
	return smartstore.QueryOptions{Mode: m, Limit: limit, IncludeRecords: records}, nil
}

// parseQueryVerb builds the unified query from a CLI verb.
func parseQueryVerb(args []string, opts smartstore.QueryOptions) (smartstore.Query, error) {
	switch args[0] {
	case "point":
		if len(args) != 2 {
			usage()
		}
		return smartstore.NewPointQuery(args[1]).WithOptions(opts), nil
	case "range":
		attrs, lo, hi := parseRangeArgs(args[1:])
		return smartstore.NewRangeQuery(attrs, lo, hi).WithOptions(opts), nil
	case "topk":
		if len(args) < 3 {
			usage()
		}
		k, err := strconv.Atoi(args[1])
		if err != nil || k < 1 {
			return smartstore.Query{}, fmt.Errorf("invalid k %q", args[1])
		}
		attrs, point := parsePointArgs(args[2:])
		return smartstore.NewTopKQuery(attrs, point, k).WithOptions(opts), nil
	}
	usage()
	return smartstore.Query{}, nil
}

func printLocal(q smartstore.Query, res smartstore.Result) {
	fmt.Printf("%s: %d match(es) in %.6fs over %d message(s), %d hop(s)%s\n",
		q.Kind, len(res.IDs), res.Report.Latency, res.Report.Messages, res.Report.Hops,
		truncatedTag(res.Truncated))
	if len(res.Records) > 0 {
		for _, f := range res.Records {
			fmt.Printf("  id %-10d %s\n", f.ID, f.Path)
		}
		return
	}
	for _, id := range res.IDs {
		fmt.Printf("  id %d\n", id)
	}
}

// runRemote executes one verb against a smartstored daemon through the
// unified /v1/query endpoint.
func runRemote(addr string, args []string, opts smartstore.QueryOptions, wire client.WireMode) {
	cl := client.NewWithOptions(addr, client.Options{Wire: wire})
	if args[0] == "metrics" {
		printMetrics(cl)
		return
	}
	if args[0] == "stats" {
		st, err := cl.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("remote        %s (epoch %d)\n", addr, st.Store.Epoch)
		if st.Build.GoVersion != "" {
			ver := st.Build.Version
			if ver == "" {
				ver = "(devel)"
			}
			fmt.Printf("build         %s %s", ver, st.Build.GoVersion)
			if st.Build.Revision != "" {
				dirty := ""
				if st.Build.Dirty {
					dirty = "+dirty"
				}
				fmt.Printf(" rev %.12s%s", st.Build.Revision, dirty)
			}
			fmt.Println()
		}
		fmt.Printf("files         %d\n", st.Store.Files)
		fmt.Printf("storage units %d\n", st.Store.Units)
		fmt.Printf("index units   %d\n", st.Store.IndexUnits)
		fmt.Printf("tree height   %d\n", st.Store.TreeHeight)
		fmt.Printf("trees         %d\n", st.Store.Trees)
		fmt.Printf("index bytes   %d total, %d per node\n",
			st.Store.IndexBytesTotal, st.Store.IndexBytesPerNode)
		fmt.Printf("server        %d reqs (%d rejected), cache %d/%d entries, %d hits / %d misses\n",
			st.Server.Requests, st.Server.Rejected,
			st.Server.Cache.Entries, st.Server.Cache.MaxEntries,
			st.Server.Cache.Hits, st.Server.Cache.Misses)
		return
	}
	q, err := parseQueryVerb(args, opts)
	if err != nil {
		fatal(err)
	}
	resp, err := cl.Query(context.Background(), q)
	if err != nil {
		fatal(err)
	}
	printRemote(resp)
}

func printRemote(resp *server.QueryResponse) {
	fmt.Printf("%s: %d match(es) in %.6fs over %d message(s), %d hop(s)%s%s\n",
		resp.Kind, resp.Count, resp.Report.LatencySec, resp.Report.Messages, resp.Report.Hops,
		truncatedTag(resp.Truncated), cachedTag(resp.Cached))
	if len(resp.Records) > 0 {
		for _, rec := range resp.Records {
			fmt.Printf("  id %-10d %s\n", rec.ID, rec.Path)
		}
		return
	}
	for _, id := range resp.IDs {
		fmt.Printf("  id %d\n", id)
	}
}

func cachedTag(cached bool) string {
	if cached {
		return " [cached]"
	}
	return ""
}

func truncatedTag(truncated bool) string {
	if truncated {
		return " [truncated]"
	}
	return ""
}

// parseRangeArgs parses attr=lo:hi clauses.
func parseRangeArgs(args []string) ([]smartstore.Attr, []float64, []float64) {
	if len(args) == 0 {
		usage()
	}
	var attrs []smartstore.Attr
	var lo, hi []float64
	for _, arg := range args {
		name, spec, ok := strings.Cut(arg, "=")
		if !ok {
			fatal(fmt.Errorf("bad range clause %q (want attr=lo:hi)", arg))
		}
		a, err := smartstore.ParseAttr(name)
		if err != nil {
			fatal(fmt.Errorf("unknown attribute %q", name))
		}
		los, his, ok := strings.Cut(spec, ":")
		if !ok {
			fatal(fmt.Errorf("bad range clause %q (want attr=lo:hi)", arg))
		}
		l, err1 := strconv.ParseFloat(los, 64)
		h, err2 := strconv.ParseFloat(his, 64)
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad bounds in %q", arg))
		}
		attrs = append(attrs, a)
		lo = append(lo, l)
		hi = append(hi, h)
	}
	return attrs, lo, hi
}

// parsePointArgs parses attr=value clauses.
func parsePointArgs(args []string) ([]smartstore.Attr, []float64) {
	if len(args) == 0 {
		usage()
	}
	var attrs []smartstore.Attr
	var vals []float64
	for _, arg := range args {
		name, spec, ok := strings.Cut(arg, "=")
		if !ok {
			fatal(fmt.Errorf("bad point clause %q (want attr=value)", arg))
		}
		a, err := smartstore.ParseAttr(name)
		if err != nil {
			fatal(fmt.Errorf("unknown attribute %q", name))
		}
		v, err := strconv.ParseFloat(spec, 64)
		if err != nil {
			fatal(fmt.Errorf("bad value in %q", arg))
		}
		attrs = append(attrs, a)
		vals = append(vals, v)
	}
	return attrs, vals
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  smartctl [flags] stats
  smartctl [flags] point <path>
  smartctl [flags] range attr=lo:hi [attr=lo:hi ...]
  smartctl [flags] topk <k> attr=value [attr=value ...]
  smartctl -remote host:port metrics

query option flags (local and -remote):
  -records      inline full file records in the answer
  -limit N      truncate the answer to N ids
  -mode M       per-query path override: offline or online

attributes: size ctime mtime atime read_bytes write_bytes access_freq
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartctl:", err)
	os.Exit(1)
}

// printMetrics fetches /v1/metrics and renders it human-readably:
// counters and gauges as name{labels} value, histograms folded to
// count / mean / p50 / p95 / p99.
func printMetrics(cl *client.Client) {
	text, err := cl.Metrics()
	if err != nil {
		fatal(err)
	}
	fams, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		fatal(fmt.Errorf("parsing /v1/metrics exposition: %w", err))
	}
	for _, fam := range fams {
		switch fam.Type {
		case "histogram":
			printHistogramFamily(fam)
		default:
			for _, s := range fam.Samples {
				fmt.Printf("%-52s %g\n", s.Name+labelSuffix(s.Labels), s.Value)
			}
		}
	}
}

// printHistogramFamily renders one histogram family, one line per
// label set.
func printHistogramFamily(fam obs.Family) {
	// Group samples by label set, keeping first-seen order.
	type group struct {
		key     string
		buckets []obs.Sample
		sum     float64
		count   float64
	}
	var order []string
	groups := make(map[string]*group)
	for _, s := range fam.Samples {
		labels := make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			if !(s.Name == fam.Name+"_bucket" && k == "le") {
				labels[k] = v
			}
		}
		key := labelSuffix(labels)
		g := groups[key]
		if g == nil {
			g = &group{key: key}
			groups[key] = g
			order = append(order, key)
		}
		switch s.Name {
		case fam.Name + "_bucket":
			g.buckets = append(g.buckets, s)
		case fam.Name + "_sum":
			g.sum = s.Value
		case fam.Name + "_count":
			g.count = s.Value
		}
	}
	for _, key := range order {
		g := groups[key]
		if g.count == 0 {
			fmt.Printf("%-52s count 0\n", fam.Name+g.key)
			continue
		}
		fmt.Printf("%-52s count %.0f mean %s p50 %s p95 %s p99 %s\n",
			fam.Name+g.key, g.count,
			histVal(fam.Name, g.sum/g.count),
			histVal(fam.Name, obs.BucketQuantile(g.buckets, 0.50)),
			histVal(fam.Name, obs.BucketQuantile(g.buckets, 0.95)),
			histVal(fam.Name, obs.BucketQuantile(g.buckets, 0.99)))
	}
}

// histVal renders a histogram statistic: families named *_seconds are
// durations, anything else is a plain number.
func histVal(famName string, v float64) string {
	if strings.HasSuffix(famName, "_seconds") {
		return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.1f", v)
}

// labelSuffix renders a label map as {k="v",...} sorted by key, or ""
// when empty.
func labelSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
