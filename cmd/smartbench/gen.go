package main

import (
	"fmt"
	"math/rand/v2"

	smartstore "repro"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/trace"
)

// benchOp is one fully drawn operation: the kind plus its materialized
// payload, so the draw sequence is testable without a live endpoint.
type benchOp struct {
	op     string // point, range, batch, topk, insert
	point  query.Point
	rng    query.Range
	topk   query.TopK
	insert *smartstore.File
}

// fingerprint renders the op for byte-exact sequence comparison.
func (op benchOp) fingerprint() string {
	if op.insert != nil {
		return fmt.Sprintf("%s|%s|%x", op.op, op.insert.Path, op.insert.Attrs)
	}
	return fmt.Sprintf("%s|%+v|%+v|%+v", op.op, op.point, op.rng, op.topk)
}

// benchOpGen draws one worker's operation sequence. The draw is a pure
// function of (trace set, mutate ratio, seed, worker index): each
// worker owns derived generators, so the sequence is identical across
// runs regardless of scheduling — the property the -seed flag promises
// and TestBenchOpGenDeterministic pins down.
type benchOpGen struct {
	set    *smartstore.TraceSet
	qg     *trace.QueryGen
	rng    *rand.Rand
	attrs  []smartstore.Attr
	mutate float64
	worker uint64
	drawn  int
}

func newBenchOpGen(set *smartstore.TraceSet, mutate float64, seed, worker uint64) *benchOpGen {
	return &benchOpGen{
		set:    set,
		qg:     trace.NewQueryGen(set, stats.Zipf, nil, seed+1000*worker+1),
		rng:    stats.NewRNG(seed + 7000*worker + 3),
		attrs:  trace.DefaultQueryAttrs(),
		mutate: mutate,
		worker: worker,
	}
}

// next draws the next operation: with probability mutate an insert
// cloning a random stored file's attributes, otherwise 20% point, 30%
// range, 10% mixed batch, 40% top-k.
func (g *benchOpGen) next() benchOp {
	defer func() { g.drawn++ }()
	if g.rng.Float64() < g.mutate {
		src := g.set.Files[g.rng.IntN(len(g.set.Files))]
		return benchOp{op: "insert", insert: &smartstore.File{
			Path:  fmt.Sprintf("/bench/w%d/f%d", g.worker, g.drawn),
			Attrs: src.Attrs,
		}}
	}
	switch g.rng.IntN(10) {
	case 0, 1:
		return benchOp{op: "point", point: g.qg.Point(0.8)}
	case 2, 3, 4:
		return benchOp{op: "range", rng: g.qg.Range(0.1)}
	case 5:
		return benchOp{op: "batch", point: g.qg.Point(0.8), rng: g.qg.Range(0.1), topk: g.qg.TopK(8)}
	default:
		return benchOp{op: "topk", topk: g.qg.TopK(8)}
	}
}
