// Server-side latency scraping for the service bench (-scrape): the
// client-observed percentiles in the report include the HTTP round
// trip, while the daemon's own histograms isolate serving-layer time.
// Folding a scrape delta into the JSON report lets benchdiff gate on
// daemon-observed p95 as well as the client view.
package main

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/obs"
)

// histScrape is one histogram's state at scrape time: cumulative
// bucket counts keyed by upper bound, plus sum and count.
type histScrape struct {
	buckets map[float64]float64
	sum     float64
	count   float64
}

// scrapeServerHists fetches /v1/metrics and extracts the per-op
// serving histograms: the per-kind query durations plus the insert
// endpoint's request duration, keyed by the bench's op names.
func scrapeServerHists(cl *client.Client) (map[string]histScrape, error) {
	text, err := cl.Metrics()
	if err != nil {
		return nil, err
	}
	fams, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		return nil, fmt.Errorf("parsing /v1/metrics: %w", err)
	}
	out := map[string]histScrape{}
	collect := func(famName, labelKey, labelVal, op string) {
		fam := obs.FindFamily(fams, famName)
		if fam == nil {
			return
		}
		h := histScrape{buckets: map[float64]float64{}}
		for _, s := range fam.Samples {
			if s.Labels[labelKey] != labelVal {
				continue
			}
			switch s.Name {
			case famName + "_bucket":
				// ParseFloat accepts "+Inf", so the overflow bucket
				// lands on the math.Inf(1) key.
				if le, err := strconv.ParseFloat(s.Labels["le"], 64); err == nil {
					h.buckets[le] = s.Value
				}
			case famName + "_sum":
				h.sum = s.Value
			case famName + "_count":
				h.count = s.Value
			}
		}
		out[op] = h
	}
	for _, kind := range []string{"point", "range", "topk", "batch"} {
		collect("smartstore_query_duration_seconds", "kind", kind, kind)
	}
	collect("smartstore_http_request_duration_seconds", "endpoint", "insert", "insert")
	return out, nil
}

// serverPerOp folds the before/after scrape delta of one bench pass
// into per-op stats (milliseconds, like the client-side view). Ops the
// pass never issued are dropped.
func serverPerOp(before, after map[string]histScrape) map[string]opStats {
	out := map[string]opStats{}
	for op, a := range after {
		b := before[op]
		count := a.count - b.count
		if count <= 0 {
			continue
		}
		// Delta of cumulative buckets is itself a valid cumulative
		// histogram: both scrapes share the registry's fixed bounds.
		var buckets []obs.Sample
		for le, cum := range a.buckets {
			d := cum - b.buckets[le]
			if d < 0 {
				d = 0
			}
			buckets = append(buckets, obs.Sample{
				Labels: map[string]string{"le": formatLe(le)},
				Value:  d,
			})
		}
		toMs := func(sec float64) float64 { return sec * 1e3 }
		out[op] = opStats{
			Count:  int(count),
			MeanMs: toMs((a.sum - b.sum) / count),
			P50Ms:  toMs(obs.BucketQuantile(buckets, 0.50)),
			P95Ms:  toMs(obs.BucketQuantile(buckets, 0.95)),
			P99Ms:  toMs(obs.BucketQuantile(buckets, 0.99)),
		}
	}
	return out
}

func formatLe(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}
