// Service-path benchmarking: a closed-loop load generator driving the
// smartstored HTTP API, either against an in-process server (-serve) or
// a running daemon (-remote addr). Unlike the simnet experiments, which
// report *virtual* time, this mode measures real wall-clock service
// throughput and latency (p50/p95/p99) per operation type, so the
// serving layer — sharded engine, locking, cache, admission — becomes
// measurable.
//
// With -serve, -shards accepts a comma-separated list of shard counts
// (e.g. "1,4"): one pass runs per count against a freshly built store,
// and a scaling summary reports throughput per count — the perf
// trajectory of the sharded engine. -json writes the machine-readable
// results (throughput, per-op p50/p95/p99) for CI artifacts.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/server"
)

// serveBenchOpts collects the load-generator flags.
type serveBenchOpts struct {
	remote    string // daemon address; empty = start in-process
	trace     string
	files     int
	units     int
	shards    []int // in-process shard counts, one bench pass each
	seed      uint64
	clients   int
	ops       int
	mutate    float64 // fraction of operations that are inserts
	cache     int
	jsonPath  string // write machine-readable results here ("" = skip)
	scrape    bool   // fold the daemon's own histograms into the report
	noMetrics bool   // in-process server with instrumentation disabled (overhead baseline)
	wire      client.WireMode
}

type opSample struct {
	op     string
	d      time.Duration
	err    bool
	cached bool
}

// opStats is the machine-readable per-operation summary.
type opStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	Cached int     `json:"cached"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// benchResult is one pass's machine-readable outcome.
type benchResult struct {
	Shards     int     `json:"shards"`
	Clients    int     `json:"clients"`
	Ops        int     `json:"ops"`
	Mutate     float64 `json:"mutate"`
	WallSec    float64 `json:"wall_sec"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	Errors     int     `json:"errors"`
	// Wire is the requested query codec mode; Codec is what the pass
	// actually spoke after negotiation ("json" or "binary").
	Wire  string             `json:"wire"`
	Codec string             `json:"codec"`
	PerOp map[string]opStats `json:"per_op"`
	// ServerPerOp is the daemon's own view of the same pass (-scrape):
	// per-op latency from the server-side histograms, HTTP round trip
	// excluded. Quantiles are bucket-interpolated, so coarser than the
	// client-side exact percentiles.
	ServerPerOp map[string]opStats `json:"server_per_op,omitempty"`
}

// benchReport is the -json envelope.
type benchReport struct {
	Trace   string        `json:"trace"`
	Files   int           `json:"files"`
	Units   int           `json:"units"`
	Seed    uint64        `json:"seed"`
	Remote  string        `json:"remote,omitempty"`
	Results []benchResult `json:"results"`
}

// parseShardList resolves the -shards flag ("1", "1,4", ...).
func parseShardList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{1}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runServiceBench drives the closed loop — one pass per shard count —
// and prints the report. It returns a process exit code.
func runServiceBench(o serveBenchOpts) int {
	if o.scrape && o.noMetrics {
		fmt.Fprintln(os.Stderr, "smartbench: -scrape needs the metrics endpoint; drop -no-metrics")
		return 2
	}
	set, err := smartstore.GenerateTrace(o.trace, o.files, o.seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartbench:", err)
		return 1
	}

	report := benchReport{Trace: o.trace, Files: o.files, Units: o.units, Seed: o.seed, Remote: o.remote}
	shardCounts := o.shards
	if o.remote != "" {
		// A remote daemon's shard count is fixed at its bootstrap; a
		// single pass drives whatever it runs.
		shardCounts = []int{0}
	}

	exit := 0
	for _, shards := range shardCounts {
		res, code := runBenchPass(set, o, shards)
		if code != 0 {
			exit = code
		}
		report.Results = append(report.Results, res)
	}

	if len(report.Results) > 1 {
		printScalingSummary(report.Results)
	}
	if o.jsonPath != "" {
		if err := writeJSONReport(o.jsonPath, report); err != nil {
			fmt.Fprintln(os.Stderr, "smartbench:", err)
			return 1
		}
		fmt.Printf("smartbench: wrote %s\n", o.jsonPath)
	}
	return exit
}

// runBenchPass builds (or dials) one server and drives the closed loop
// against it. shards > 0 selects the in-process store's shard count;
// shards == 0 means a remote daemon.
func runBenchPass(set *smartstore.TraceSet, o serveBenchOpts, shards int) (benchResult, int) {
	addr := o.remote
	var shutdown func()
	if addr == "" {
		store, err := smartstore.Build(set.Files, smartstore.Config{
			Units: o.units, Shards: shards, Seed: o.seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartbench:", err)
			return benchResult{Shards: shards}, 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartbench:", err)
			return benchResult{Shards: shards}, 1
		}
		srv := &http.Server{Handler: server.New(store, server.Options{
			CacheEntries:   o.cache,
			DisableMetrics: o.noMetrics,
		})}
		go srv.Serve(ln)
		addr = ln.Addr().String()
		shutdown = func() { srv.Close() }
		fmt.Printf("smartbench: in-process smartstored on %s (%d files, %d units, %d shards)\n",
			addr, len(set.Files), o.units, shards)
	} else {
		fmt.Printf("smartbench: driving remote smartstored at %s\n", addr)
		fmt.Printf("smartbench: drawing queries from trace %s ×%d seed %d — match the daemon's bootstrap\n",
			o.trace, o.files, o.seed)
	}
	if shutdown != nil {
		defer shutdown()
	}

	cl := client.NewWithOptions(addr, client.Options{Wire: o.wire})
	if !cl.Healthy() {
		fmt.Fprintf(os.Stderr, "smartbench: no healthy smartstored at %s\n", addr)
		return benchResult{Shards: shards}, 1
	}

	// Pre-pass scrape: the per-op server view is the delta across the
	// pass, so a long-lived remote daemon's prior traffic drops out.
	var preScrape map[string]histScrape
	if o.scrape {
		var err error
		if preScrape, err = scrapeServerHists(cl); err != nil {
			fmt.Fprintf(os.Stderr, "smartbench: -scrape: %v\n", err)
			return benchResult{Shards: shards}, 1
		}
	}

	// Closed loop: o.clients workers issue operations back-to-back until
	// the shared budget drains. Per-worker generators keep the draw
	// deterministic in seed regardless of scheduling.
	var remaining atomic.Int64
	remaining.Store(int64(o.ops))
	samples := make([][]opSample, o.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samples[w] = benchWorker(cl, set, o, uint64(w), &remaining)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []opSample
	errs := 0
	for _, s := range samples {
		all = append(all, s...)
		for _, op := range s {
			if op.err {
				errs++
			}
		}
	}
	res := summarize(all, wall, o, shards, errs)
	res.Wire = o.wire.String()
	if cl.BinaryNegotiated() {
		res.Codec = "binary"
	} else {
		res.Codec = "json"
	}
	if o.scrape {
		post, err := scrapeServerHists(cl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smartbench: -scrape: %v\n", err)
			return res, 1
		}
		res.ServerPerOp = serverPerOp(preScrape, post)
	}
	printServiceReport(res, all, wall, o, cl)
	// Failed operations fail the run — CI uses this mode as a smoke
	// gate on the serving path, so a broken endpoint must not exit 0.
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "smartbench: %d/%d operations failed\n", errs, len(all))
		return res, 1
	}
	return res, 0
}

// benchWorker issues operations until the shared budget drains. The
// draw itself lives in benchOpGen so its seed-determinism is testable.
func benchWorker(cl *client.Client, set *smartstore.TraceSet, o serveBenchOpts,
	worker uint64, budget *atomic.Int64) []opSample {

	gen := newBenchOpGen(set, o.mutate, o.seed, worker)
	var out []opSample
	for budget.Add(-1) >= 0 {
		op := gen.next()
		s := opSample{op: op.op}
		t0 := time.Now()
		switch op.op {
		case "insert":
			_, err := cl.Insert([]*smartstore.File{op.insert})
			s.err = err != nil
		case "point":
			resp, err := cl.Point(op.point.Filename)
			s.err = err != nil
			s.cached = err == nil && resp.Cached
		case "range":
			resp, err := cl.Range(gen.attrs, op.rng.Lo, op.rng.Hi)
			s.err = err != nil
			s.cached = err == nil && resp.Cached
		case "batch": // mixed batch through the multiplexed endpoint
			resp, err := cl.QueryBatch(context.Background(), []smartstore.Query{
				smartstore.NewPointQuery(op.point.Filename),
				smartstore.NewRangeQuery(gen.attrs, op.rng.Lo, op.rng.Hi),
				smartstore.NewTopKQuery(gen.attrs, op.topk.Point, op.topk.K),
			})
			s.err = err != nil
			if err == nil {
				for _, qr := range resp.Results {
					if qr.Error != "" {
						s.err = true
					}
					if qr.Cached {
						s.cached = true
					}
				}
			}
		default: // top-k
			resp, err := cl.TopK(gen.attrs, op.topk.Point, op.topk.K)
			s.err = err != nil
			s.cached = err == nil && resp.Cached
		}
		s.d = time.Since(t0)
		out = append(out, s)
	}
	return out
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// summarize folds raw samples into the machine-readable pass result.
func summarize(all []opSample, wall time.Duration, o serveBenchOpts, shards, errs int) benchResult {
	res := benchResult{
		Shards:     shards,
		Clients:    o.clients,
		Ops:        len(all),
		Mutate:     o.mutate,
		WallSec:    wall.Seconds(),
		Throughput: float64(len(all)) / wall.Seconds(),
		Errors:     errs,
		PerOp:      map[string]opStats{},
	}
	byOp := map[string][]opSample{}
	for _, s := range all {
		byOp[s.op] = append(byOp[s.op], s)
	}
	for op, ss := range byOp {
		durs := make([]time.Duration, 0, len(ss))
		var sum time.Duration
		st := opStats{Count: len(ss)}
		for _, s := range ss {
			durs = append(durs, s.d)
			sum += s.d
			if s.err {
				st.Errors++
			}
			if s.cached {
				st.Cached++
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		st.MeanMs = ms(sum / time.Duration(len(ss)))
		st.P50Ms = ms(percentile(durs, 0.50))
		st.P95Ms = ms(percentile(durs, 0.95))
		st.P99Ms = ms(percentile(durs, 0.99))
		res.PerOp[op] = st
	}
	return res
}

func printServiceReport(res benchResult, all []opSample, wall time.Duration, o serveBenchOpts, cl *client.Client) {
	fmt.Printf("\nservice bench: shards=%d clients=%d ops=%d mutate=%.2f codec=%s wall=%.2fs throughput=%.0f ops/s\n",
		res.Shards, o.clients, len(all), o.mutate, res.Codec, wall.Seconds(), res.Throughput)
	fmt.Printf("%-8s %8s %6s %8s %10s %10s %10s %10s\n",
		"op", "count", "err", "cached", "mean_ms", "p50_ms", "p95_ms", "p99_ms")
	for _, op := range []string{"point", "range", "topk", "batch", "insert"} {
		st, ok := res.PerOp[op]
		if !ok {
			continue
		}
		fmt.Printf("%-8s %8d %6d %8d %10.3f %10.3f %10.3f %10.3f\n",
			op, st.Count, st.Errors, st.Cached, st.MeanMs, st.P50Ms, st.P95Ms, st.P99Ms)
	}
	if len(res.ServerPerOp) > 0 {
		fmt.Printf("server-side view (scraped from /v1/metrics, bucket-interpolated):\n")
		for _, op := range []string{"point", "range", "topk", "batch", "insert"} {
			st, ok := res.ServerPerOp[op]
			if !ok {
				continue
			}
			fmt.Printf("%-8s %8d %6s %8s %10.3f %10.3f %10.3f %10.3f\n",
				op, st.Count, "-", "-", st.MeanMs, st.P50Ms, st.P95Ms, st.P99Ms)
		}
	}
	if st, err := cl.Stats(); err == nil {
		c := st.Server.Cache
		fmt.Printf("cache: %d entries, %d hits / %d misses, %d invalidations, %d evictions\n",
			c.Entries, c.Hits, c.Misses, c.Invalidations, c.Evictions)
		fmt.Printf("server: %d requests, %d rejected, %d workers, %d shards, epoch %d\n",
			st.Server.Requests, st.Server.Rejected, st.Server.Workers, st.Store.Shards, st.Store.Epoch)
	}
}

// printScalingSummary reports throughput across shard counts — the
// headline number of the sharded engine.
func printScalingSummary(results []benchResult) {
	fmt.Printf("\nshard scaling: %-8s %14s %10s\n", "shards", "ops/s", "speedup")
	base := results[0].Throughput
	for _, r := range results {
		speedup := 0.0
		if base > 0 {
			speedup = r.Throughput / base
		}
		fmt.Printf("               %-8d %14.0f %9.2fx\n", r.Shards, r.Throughput, speedup)
	}
}

func writeJSONReport(path string, report benchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
