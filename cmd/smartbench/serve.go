// Service-path benchmarking: a closed-loop load generator driving the
// smartstored HTTP API, either against an in-process server (-serve) or
// a running daemon (-remote addr). Unlike the simnet experiments, which
// report *virtual* time, this mode measures real wall-clock service
// throughput and latency (p50/p95/p99) per operation type, so the
// serving layer — locking, cache, admission — becomes measurable.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/trace"
)

// serveBenchOpts collects the load-generator flags.
type serveBenchOpts struct {
	remote  string // daemon address; empty = start in-process
	trace   string
	files   int
	units   int
	seed    uint64
	clients int
	ops     int
	mutate  float64 // fraction of operations that are inserts
	cache   int
}

type opSample struct {
	op     string
	d      time.Duration
	err    bool
	cached bool
}

// runServiceBench drives the closed loop and prints the report. It
// returns a process exit code.
func runServiceBench(o serveBenchOpts) int {
	set, err := smartstore.GenerateTrace(o.trace, o.files, o.seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartbench:", err)
		return 1
	}

	addr := o.remote
	var shutdown func()
	if addr == "" {
		store, err := smartstore.Build(set.Files, smartstore.Config{Units: o.units, Seed: o.seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartbench:", err)
			return 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartbench:", err)
			return 1
		}
		srv := &http.Server{Handler: server.New(store, server.Options{CacheEntries: o.cache})}
		go srv.Serve(ln)
		addr = ln.Addr().String()
		shutdown = func() { srv.Close() }
		fmt.Printf("smartbench: in-process smartstored on %s (%d files, %d units)\n",
			addr, len(set.Files), o.units)
	} else {
		fmt.Printf("smartbench: driving remote smartstored at %s\n", addr)
		fmt.Printf("smartbench: drawing queries from trace %s ×%d seed %d — match the daemon's bootstrap\n",
			o.trace, o.files, o.seed)
	}
	if shutdown != nil {
		defer shutdown()
	}

	cl := client.New(addr)
	if !cl.Healthy() {
		fmt.Fprintf(os.Stderr, "smartbench: no healthy smartstored at %s\n", addr)
		return 1
	}

	// Closed loop: o.clients workers issue operations back-to-back until
	// the shared budget drains. Per-worker generators keep the draw
	// deterministic in seed regardless of scheduling.
	var remaining atomic.Int64
	remaining.Store(int64(o.ops))
	samples := make([][]opSample, o.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samples[w] = benchWorker(cl, set, o, uint64(w), &remaining)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []opSample
	errs := 0
	for _, s := range samples {
		all = append(all, s...)
		for _, op := range s {
			if op.err {
				errs++
			}
		}
	}
	printServiceReport(all, wall, o, cl)
	// Failed operations fail the run — CI uses this mode as a smoke
	// gate on the serving path, so a broken endpoint must not exit 0.
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "smartbench: %d/%d operations failed\n", errs, len(all))
		return 1
	}
	return 0
}

// benchWorker issues operations until the shared budget drains.
func benchWorker(cl *client.Client, set *smartstore.TraceSet, o serveBenchOpts,
	worker uint64, budget *atomic.Int64) []opSample {

	qg := trace.NewQueryGen(set, stats.Zipf, nil, o.seed+1000*worker+1)
	rng := stats.NewRNG(o.seed + 7000*worker + 3)
	attrs := trace.DefaultQueryAttrs()
	var out []opSample
	for budget.Add(-1) >= 0 {
		var s opSample
		t0 := time.Now()
		switch {
		case rng.Float64() < o.mutate:
			s.op = "insert"
			src := set.Files[rng.IntN(len(set.Files))]
			f := &smartstore.File{Path: fmt.Sprintf("/bench/w%d/f%d", worker, len(out)), Attrs: src.Attrs}
			_, err := cl.Insert([]*smartstore.File{f})
			s.err = err != nil
		default:
			switch rng.IntN(10) {
			case 0, 1: // 20% point
				s.op = "point"
				q := qg.Point(0.8)
				resp, err := cl.Point(q.Filename)
				s.err = err != nil
				s.cached = err == nil && resp.Cached
			case 2, 3, 4: // 30% range
				s.op = "range"
				q := qg.Range(0.1)
				resp, err := cl.Range(attrs, q.Lo, q.Hi)
				s.err = err != nil
				s.cached = err == nil && resp.Cached
			case 5: // 10% mixed batch through the multiplexed endpoint
				s.op = "batch"
				pq, rq, tq := qg.Point(0.8), qg.Range(0.1), qg.TopK(8)
				resp, err := cl.QueryBatch(context.Background(), []smartstore.Query{
					smartstore.NewPointQuery(pq.Filename),
					smartstore.NewRangeQuery(attrs, rq.Lo, rq.Hi),
					smartstore.NewTopKQuery(attrs, tq.Point, tq.K),
				})
				s.err = err != nil
				if err == nil {
					for _, qr := range resp.Results {
						if qr.Error != "" {
							s.err = true
						}
						if qr.Cached {
							s.cached = true
						}
					}
				}
			default: // 40% top-k
				s.op = "topk"
				q := qg.TopK(8)
				resp, err := cl.TopK(attrs, q.Point, q.K)
				s.err = err != nil
				s.cached = err == nil && resp.Cached
			}
		}
		s.d = time.Since(t0)
		out = append(out, s)
	}
	return out
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func printServiceReport(all []opSample, wall time.Duration, o serveBenchOpts, cl *client.Client) {
	byOp := map[string][]opSample{}
	for _, s := range all {
		byOp[s.op] = append(byOp[s.op], s)
	}
	fmt.Printf("\nservice bench: clients=%d ops=%d mutate=%.2f wall=%.2fs throughput=%.0f ops/s\n",
		o.clients, len(all), o.mutate, wall.Seconds(), float64(len(all))/wall.Seconds())
	fmt.Printf("%-8s %8s %6s %8s %10s %10s %10s %10s\n",
		"op", "count", "err", "cached", "mean_ms", "p50_ms", "p95_ms", "p99_ms")
	for _, op := range []string{"point", "range", "topk", "batch", "insert"} {
		ss := byOp[op]
		if len(ss) == 0 {
			continue
		}
		durs := make([]time.Duration, 0, len(ss))
		var sum time.Duration
		errs, cached := 0, 0
		for _, s := range ss {
			durs = append(durs, s.d)
			sum += s.d
			if s.err {
				errs++
			}
			if s.cached {
				cached++
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
		fmt.Printf("%-8s %8d %6d %8d %10.3f %10.3f %10.3f %10.3f\n",
			op, len(ss), errs, cached,
			ms(sum/time.Duration(len(ss))),
			ms(percentile(durs, 0.50)), ms(percentile(durs, 0.95)), ms(percentile(durs, 0.99)))
	}
	if st, err := cl.Stats(); err == nil {
		c := st.Server.Cache
		fmt.Printf("cache: %d entries, %d hits / %d misses, %d invalidations, %d evictions\n",
			c.Entries, c.Hits, c.Misses, c.Invalidations, c.Evictions)
		fmt.Printf("server: %d requests, %d rejected, %d workers, epoch %d\n",
			st.Server.Requests, st.Server.Rejected, st.Server.Workers, st.Store.Epoch)
	}
}
