// Command smartbench regenerates the tables and figures of the
// SmartStore paper's evaluation (§5).
//
// Usage:
//
//	smartbench -exp all                 # every experiment (slow)
//	smartbench -exp table4              # one experiment
//	smartbench -exp fig10,fig12         # several
//	smartbench -exp ablations           # the design-choice ablations
//	smartbench -quick                   # small populations (CI-sized)
//
// Experiment ids match DESIGN.md §3: table1..table6, fig7..fig14,
// ablations.
//
// A second mode benchmarks the *service* path — real wall-clock
// throughput and latency through the smartstored HTTP API rather than
// simnet virtual time:
//
//	smartbench -serve -clients 8 -ops 4000            # in-process server
//	smartbench -remote localhost:7070 -clients 16     # running daemon
//	smartbench -serve -mutate 0.05                    # 5% inserts in the mix
//	smartbench -serve -wire binary                    # force the binary query codec
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (see DESIGN.md §3), or 'all'")
	quick := flag.Bool("quick", false, "use small populations for a fast pass")
	baseFiles := flag.Int("files", 0, "override sample population per trace")
	units := flag.Int("units", 0, "override storage-unit count")
	queries := flag.Int("queries", 0, "override queries per cell")
	seed := flag.Uint64("seed", 0, "override random seed")
	serve := flag.Bool("serve", false, "benchmark the HTTP service path against an in-process server")
	remote := flag.String("remote", "", "benchmark a running smartstored at this address")
	clients := flag.Int("clients", 8, "service bench: concurrent closed-loop clients")
	ops := flag.Int("ops", 4000, "service bench: total operations")
	mutate := flag.Float64("mutate", 0, "service bench: fraction of ops that are inserts")
	benchTrace := flag.String("trace", "MSN", "service bench: trace to draw queries from")
	cacheEntries := flag.Int("cache", 4096, "service bench: in-process server cache entries")
	shardList := flag.String("shards", "1", "service bench: comma-separated shard counts, one pass each (e.g. 1,4)")
	jsonOut := flag.String("json", "", "service bench: write machine-readable results (throughput, p50/p95/p99) to this file")
	scrape := flag.Bool("scrape", false, "service bench: scrape the daemon's /v1/metrics and fold its server-side per-op latency into the report")
	noMetrics := flag.Bool("no-metrics", false, "service bench: build the in-process server with instrumentation disabled — the baseline for the overhead comparison")
	wireFlag := flag.String("wire", "auto", "service bench: query codec — auto (negotiate binary), json, or binary")
	flag.Parse()

	if *serve || *remote != "" {
		shards, err := parseShardList(*shardList)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartbench:", err)
			os.Exit(2)
		}
		wireMode, err := client.ParseWireMode(*wireFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartbench:", err)
			os.Exit(2)
		}
		o := serveBenchOpts{
			remote:    *remote,
			trace:     *benchTrace,
			files:     orDefault(*baseFiles, 20000),
			units:     orDefault(*units, 60),
			shards:    shards,
			seed:      *seed,
			clients:   *clients,
			ops:       *ops,
			mutate:    *mutate,
			cache:     *cacheEntries,
			jsonPath:  *jsonOut,
			scrape:    *scrape,
			noMetrics: *noMetrics,
			wire:      wireMode,
		}
		if o.seed == 0 {
			o.seed = 42
		}
		os.Exit(runServiceBench(o))
	}

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if *baseFiles > 0 {
		p.BaseFiles = *baseFiles
	}
	if *units > 0 {
		p.Units = *units
	}
	if *queries > 0 {
		p.Queries = *queries
	}
	if *seed > 0 {
		p.Seed = *seed
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := wanted["all"]
	want := func(id string) bool { return all || wanted[id] }
	ran := 0
	show := func(t *experiments.Table) {
		fmt.Println(t.String())
		ran++
	}

	if want("table1") {
		show(experiments.TraceScaleUp(trace.HP(), p))
	}
	if want("table2") {
		show(experiments.TraceScaleUp(trace.MSN(), p))
	}
	if want("table3") {
		show(experiments.TraceScaleUp(trace.EECS(), p))
	}
	if want("table4") {
		show(experiments.QueryLatency(p))
	}
	if want("fig7") {
		show(experiments.SpaceOverhead(p))
	}
	if want("fig8") {
		show(experiments.RoutingHops(p))
	}
	if want("fig9") {
		show(experiments.PointHitRate(p))
	}
	if want("fig10") {
		show(experiments.RecallHP(p))
	}
	if want("fig11") || want("fig11a") || want("fig11b") {
		a, b := experiments.OptimalThresholds(p)
		show(a)
		show(b)
	}
	if want("fig12") {
		show(experiments.RecallScale(p))
	}
	if want("fig13") || want("fig13a") || want("fig13b") {
		a, b := experiments.OnOffline(p)
		show(a)
		show(b)
	}
	if want("fig14") || want("fig14a") || want("fig14b") {
		a, b := experiments.VersioningOverhead(p)
		show(a)
		show(b)
	}
	if want("table5") {
		show(experiments.RecallVersioning(trace.MSN(), p))
	}
	if want("table6") {
		show(experiments.RecallVersioning(trace.EECS(), p))
	}
	if want("ablations") {
		show(experiments.AblationLSIvsKMeans(p))
		show(experiments.AblationBloomSizing(p))
		show(experiments.AblationAdmissionThreshold(p))
		show(experiments.AblationAutoConfig(p))
		show(experiments.AblationReplicaDepth(p))
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "smartbench: no experiment matched %q (see DESIGN.md §3 for ids)\n", *exp)
		os.Exit(2)
	}
}

// orDefault substitutes d for an unset (zero) flag value.
func orDefault(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}
