package main

import (
	"testing"

	smartstore "repro"
)

// Same seed and worker index ⇒ byte-identical op sequences; any seed
// or worker change diverges. This is the contract behind -seed: a
// reported benchmark is replayable from its JSON report alone.
func TestBenchOpGenDeterministic(t *testing.T) {
	set, err := smartstore.GenerateTrace("MSN", 300, 5)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	const n = 400
	draw := func(mutate float64, seed, worker uint64) []string {
		g := newBenchOpGen(set, mutate, seed, worker)
		out := make([]string, n)
		for i := range out {
			out[i] = g.next().fingerprint()
		}
		return out
	}

	a, b := draw(0.1, 42, 3), draw(0.1, 42, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}

	same := func(x, y []string) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, draw(0.1, 43, 3)) {
		t.Fatal("different seeds produced identical sequences")
	}
	if same(a, draw(0.1, 42, 4)) {
		t.Fatal("different workers produced identical sequences")
	}

	kinds := map[string]int{}
	for _, g := range a {
		kinds[g[:2]] = kinds[g[:2]] + 1
	}
	for _, op := range []string{"po", "ra", "ba", "to", "in"} {
		if kinds[op] == 0 {
			t.Fatalf("op kind %q never drawn in %d ops: %v", op, n, kinds)
		}
	}

	// A query-only generator must never draw inserts.
	for i, g := range draw(0, 7, 0) {
		if g[:2] == "in" {
			t.Fatalf("mutate=0 drew an insert at op %d", i)
		}
	}
}
