// Command tracegen synthesizes the paper's file-system workloads and
// emits either summary statistics (the Tables 1–3 view) or the sampled
// metadata records as CSV for external tooling.
//
// Usage:
//
//	tracegen -trace MSN -files 10000 -stats
//	tracegen -trace HP -files 5000 -tif 4 > hp.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/metadata"
	"repro/internal/trace"
)

func main() {
	traceName := flag.String("trace", "MSN", "trace to synthesize: HP, MSN or EECS")
	files := flag.Int("files", 10000, "sample population before TIF scale-up")
	tif := flag.Int("tif", 1, "trace intensifying factor applied to the sample")
	seed := flag.Uint64("seed", 42, "random seed")
	stats := flag.Bool("stats", false, "print the scale-up statistics table instead of records")
	flag.Parse()

	spec, err := trace.ByName(*traceName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *stats {
		p := experiments.Default()
		p.BaseFiles = *files
		fmt.Println(experiments.TraceScaleUp(spec, p).String())
		return
	}

	set := spec.GenerateScaled(*files, *tif, *seed)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprint(w, "id,path,subtrace")
	for a := 0; a < int(metadata.NumAttrs); a++ {
		fmt.Fprintf(w, ",%s", metadata.Attr(a))
	}
	fmt.Fprintln(w)
	for _, f := range set.Files {
		fmt.Fprintf(w, "%d,%s,%d", f.ID, f.Path, f.SubTrace)
		for a := 0; a < int(metadata.NumAttrs); a++ {
			fmt.Fprintf(w, ",%g", f.Attrs[a])
		}
		fmt.Fprintln(w)
	}
}
