// Command smarteval is the batch evaluation harness: it replays the
// scenario mixes of internal/eval — Zipf-hot vs uniform-scan anchors,
// steady vs bursty arrivals, scan-heavy vs insert-heavy balances,
// multi-tenant attribute mixes — against a served deployment and
// reports, per scenario, client-observed throughput and latency
// percentiles plus range/top-k recall against a single-union-store
// ground truth (the paper's Fig. 10/12 methodology), as machine-
// readable EVAL_report.json.
//
// Two modes:
//
//	smarteval -scenarios all -shards 1,4 -budgets 0,64
//	smarteval -remote localhost:7070 -trace MSN -files 20000 -seed 42
//
// The default in-process mode sweeps shard count × offline group
// budget, building a fresh store per cell so every scenario starts
// from an identical corpus. Remote mode drives a live smartstored or
// smartgate; -trace/-files/-seed must match the daemon's bootstrap,
// and mutating scenarios carry the evolved corpus forward so the
// ground truth tracks the daemon across scenarios.
//
// Recall floors turn the report into a gate: with -floor-range /
// -floor-topk set, any scenario whose mean recall drops below its
// floor (or any server/truth mutation verdict mismatch) makes the
// process exit nonzero — the CI eval-smoke job runs exactly that.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/eval"
	"repro/internal/server"
	"repro/internal/trace"
)

type options struct {
	remote    string
	scenarios string
	trace     string
	files     int
	units     int
	seed      uint64
	ops       int
	clients   int
	round     int
	pace      bool
	shards    []int
	budgets   []int
	fsync     string
	wire      client.WireMode
	jsonPath  string
	floorRng  float64
	floorTopK float64
}

// report is the EVAL_report.json envelope.
type report struct {
	Tool       string                 `json:"tool"`
	Remote     string                 `json:"remote,omitempty"`
	Files      int                    `json:"files"`
	Seed       uint64                 `json:"seed"`
	Ops        int                    `json:"ops"`
	Clients    int                    `json:"clients"`
	FloorRange float64                `json:"floor_range,omitempty"`
	FloorTopK  float64                `json:"floor_topk,omitempty"`
	Results    []*eval.ScenarioResult `json:"results"`
	Violations []string               `json:"violations,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var o options
	flag.StringVar(&o.remote, "remote", "", "drive a live daemon at this address instead of in-process stores (requires -trace matching its bootstrap)")
	flag.StringVar(&o.scenarios, "scenarios", "all", "comma-separated scenario names, or all")
	flag.StringVar(&o.trace, "trace", "", "override every scenario's trace (HP, MSN or EECS); required with -remote")
	flag.IntVar(&o.files, "files", 2000, "corpus size per scenario (remote: must match the daemon's bootstrap)")
	flag.IntVar(&o.units, "units", 48, "storage units for in-process stores")
	flag.Uint64Var(&o.seed, "seed", 42, "corpus and replay seed (remote: must match the daemon's bootstrap)")
	flag.IntVar(&o.ops, "ops", 600, "operations per scenario")
	flag.IntVar(&o.clients, "clients", 8, "concurrent query workers")
	flag.IntVar(&o.round, "round", 0, "replay round length (0 = auto)")
	flag.BoolVar(&o.pace, "pace", false, "honour the scenarios' arrival offsets instead of closed-loop replay")
	shardsList := flag.String("shards", "1,4", "comma list of shard counts to sweep (in-process mode)")
	budgetsList := flag.String("budgets", "0", "comma list of offline group budgets to sweep (0 = adaptive heuristics)")
	flag.StringVar(&o.fsync, "fsync", "", "build in-process stores durable in a temp dir with this WAL fsync policy: always, interval or never (empty = in-memory)")
	wireFlag := flag.String("wire", "auto", "query codec: auto, json or binary")
	flag.StringVar(&o.jsonPath, "json", "EVAL_report.json", "write the machine-readable report here (empty disables)")
	flag.Float64Var(&o.floorRng, "floor-range", 0, "fail if any scenario's mean range recall drops below this (0 disables)")
	flag.Float64Var(&o.floorTopK, "floor-topk", 0, "fail if any scenario's mean top-k recall drops below this (0 disables)")
	flag.Parse()

	var err error
	if o.shards, err = parseIntList(*shardsList); err != nil {
		fmt.Fprintf(os.Stderr, "smarteval: -shards: %v\n", err)
		return 2
	}
	if o.budgets, err = parseIntList(*budgetsList); err != nil {
		fmt.Fprintf(os.Stderr, "smarteval: -budgets: %v\n", err)
		return 2
	}
	if o.wire, err = client.ParseWireMode(*wireFlag); err != nil {
		fmt.Fprintf(os.Stderr, "smarteval: %v\n", err)
		return 2
	}
	scns, err := eval.ByNames(o.scenarios)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smarteval: %v\n", err)
		return 2
	}
	if o.trace != "" {
		for i := range scns {
			scns[i].Trace = o.trace
		}
	}

	rep := &report{
		Tool: "smarteval", Remote: o.remote,
		Files: o.files, Seed: o.seed, Ops: o.ops, Clients: o.clients,
		FloorRange: o.floorRng, FloorTopK: o.floorTopK,
	}
	ctx := context.Background()
	if o.remote != "" {
		err = runRemote(ctx, scns, o, rep)
	} else {
		err = runSweep(ctx, scns, o, rep)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "smarteval: %v\n", err)
		return 1
	}

	for _, res := range rep.Results {
		rep.Violations = append(rep.Violations, res.CheckFloors(o.floorRng, o.floorTopK)...)
	}
	if o.jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "smarteval: %v\n", err)
			return 1
		}
		if err := os.WriteFile(o.jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "smarteval: %v\n", err)
			return 1
		}
		fmt.Printf("smarteval: report written to %s\n", o.jsonPath)
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "smarteval: FLOOR VIOLATION: %s\n", v)
		}
		return 1
	}
	return 0
}

// runRemote replays every scenario sequentially against one live
// daemon, carrying the truth mirror's evolved corpus forward so
// mutating scenarios leave the ground truth in sync with the endpoint.
func runRemote(ctx context.Context, scns []eval.Scenario, o options, rep *report) error {
	if o.trace == "" {
		return fmt.Errorf("-remote needs -trace naming the daemon's bootstrap trace")
	}
	set, err := smartstore.GenerateTrace(o.trace, o.files, o.seed)
	if err != nil {
		return err
	}
	cl := client.NewWithOptions(o.remote, client.Options{Wire: o.wire})
	if !cl.Healthy() {
		return fmt.Errorf("no healthy daemon at %s", o.remote)
	}
	for _, scn := range scns {
		cfg := eval.Config{Endpoint: o.remote, Wire: wireName(o.wire), Mode: "remote"}
		res, truth, err := eval.RunTracked(ctx, scn, evalOptions(cl, set, o, cfg))
		if err != nil {
			return fmt.Errorf("scenario %s: %w", scn.Name, err)
		}
		rep.Results = append(rep.Results, res)
		printResult(res)
		// Seed the next scenario from what the daemon now holds.
		set = &trace.Set{Spec: set.Spec, TIF: set.TIF, Files: truth.Files(), Norm: set.Norm}
	}
	return nil
}

// runSweep runs every scenario in every shards × budget cell against a
// fresh in-process store, so cells are directly comparable.
func runSweep(ctx context.Context, scns []eval.Scenario, o options, rep *report) error {
	sets := map[string]*trace.Set{}
	for _, shards := range o.shards {
		for _, budget := range o.budgets {
			for _, scn := range scns {
				set, ok := sets[scn.Trace]
				if !ok {
					var err error
					if set, err = smartstore.GenerateTrace(scn.Trace, o.files, o.seed); err != nil {
						return err
					}
					sets[scn.Trace] = set
				}
				res, err := runCell(ctx, scn, set, shards, budget, o)
				if err != nil {
					return fmt.Errorf("scenario %s (shards=%d budget=%d): %w", scn.Name, shards, budget, err)
				}
				rep.Results = append(rep.Results, res)
				printResult(res)
			}
		}
	}
	return nil
}

// runCell builds one store, serves it on a loopback listener, replays
// one scenario against it and tears everything down.
func runCell(ctx context.Context, scn eval.Scenario, set *trace.Set, shards, budget int, o options) (*eval.ScenarioResult, error) {
	cfg := smartstore.Config{
		Units: o.units, Shards: shards, Seed: o.seed,
		OfflineGroupBudget: budget,
	}
	if o.fsync != "" {
		dur, err := smartstore.ParseDurability(o.fsync)
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "smarteval-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.DataDir = dir
		cfg.Durability = dur
	}
	store, err := smartstore.Build(set.Files, cfg)
	if err != nil {
		return nil, err
	}
	defer store.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: server.New(store, server.Options{DisableMetrics: true})}
	go srv.Serve(ln)
	defer srv.Close()

	addr := ln.Addr().String()
	cl := client.NewWithOptions(addr, client.Options{Wire: o.wire})
	ecfg := eval.Config{
		Endpoint: addr, Shards: shards, Fsync: o.fsync,
		Wire: wireName(o.wire), OfflineBudget: budget, Mode: "inproc",
	}
	return eval.Run(ctx, scn, evalOptions(cl, set, o, ecfg))
}

func evalOptions(cl *client.Client, set *trace.Set, o options, cfg eval.Config) eval.Options {
	return eval.Options{
		Client: cl, Set: set,
		Ops: o.ops, Clients: o.clients, Seed: o.seed,
		RoundSize: o.round, Pace: o.pace, Config: cfg,
	}
}

// wireName renders the forced codec, empty for auto (the runner fills
// in whatever the client actually negotiated).
func wireName(m client.WireMode) string {
	if m == client.WireAuto {
		return ""
	}
	return m.String()
}

func printResult(r *eval.ScenarioResult) {
	line := fmt.Sprintf("%-13s shards=%-2d budget=%-3d wire=%-6s %8.0f ops/s",
		r.Scenario, r.Config.Shards, r.Config.OfflineBudget, r.Config.Wire, r.Throughput)
	if st, ok := r.PerOp["range"]; ok && st.Count > 0 {
		line += fmt.Sprintf("  range p95 %6.2fms", st.P95Ms)
	}
	if r.RangeRecall != nil {
		line += fmt.Sprintf("  range recall %.4f", r.RangeRecall.Mean)
	}
	if r.TopKRecall != nil {
		line += fmt.Sprintf("  topk recall %.4f", r.TopKRecall.Mean)
	}
	if r.Errors > 0 || r.Mismatches > 0 {
		line += fmt.Sprintf("  [errors=%d mismatches=%d]", r.Errors, r.Mismatches)
	}
	fmt.Println(line)
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
