// Command smartgate is the scale-out gateway daemon: it federates a
// static membership of smartstored backends behind the exact same
// HTTP/JSON wire API a single smartstored serves, so smartctl,
// smartbench and the typed client point at it unchanged. Queries fan
// out concurrently and merge exactly (internal/gateway); inserts route
// by semantic placement; a down backend degrades the answer to
// Partial instead of failing it.
//
// Usage:
//
//	smartgate -addr :7080 -backends 127.0.0.1:7081,127.0.0.1:7082
//	smartgate -addr :7080 -backends a:7070,b:7070,c:7070 -health-every 1s
//
// Every backend must be reachable at startup (placement bootstrap,
// bounded by -bootstrap-wait); afterwards the health loop tolerates
// members coming and going. The federation is only exact when the
// backends were built against a shared normalizer and hold disjoint
// id spaces — see DESIGN.md §9.
//
// With -followers (positional, parallel to -backends; leave a slot
// empty for a member without one) a down member whose follower reports
// itself caught up is failed over: the gateway promotes the follower
// and repoints the member at it, so fan-outs answer complete instead
// of partial. Fail-back is an operator action — see DESIGN.md §11.
//
//	smartgate -addr :7080 -backends a:7070,b:7070 -followers a2:7070,b2:7070
//
// Probe it exactly like a smartstored:
//
//	curl -s localhost:7080/v1/stats
//	curl -s -X POST localhost:7080/v1/query \
//	  -d '{"kind":"topk","attrs":["mtime","read_bytes"],"point":[40000,3e7],"k":10}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":7080", "listen address")
	backends := flag.String("backends", "", "comma-separated smartstored addresses (required)")
	healthEvery := flag.Duration("health-every", 2*time.Second, "backend health-check cadence")
	timeout := flag.Duration("timeout", 10*time.Second, "per-attempt backend request timeout")
	retries := flag.Int("retries", 2, "extra attempts for idempotent backend reads after a transient failure")
	retryBackoff := flag.Duration("retry-backoff", 25*time.Millisecond, "initial retry delay, doubling per retry")
	workers := flag.Int("workers", 0, "max concurrently executing requests (0 = 4×GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker (0 = 8×workers)")
	metricsOn := flag.Bool("metrics", true, "expose Prometheus metrics at /v1/metrics")
	bootstrapWait := flag.Duration("bootstrap-wait", 15*time.Second, "how long to retry unreachable backends at startup")
	followers := flag.String("followers", "", "comma-separated follower addresses, positional with -backends (empty slot = member has no follower)")
	flag.Parse()

	if *backends == "" {
		log.Fatal("smartgate: -backends is required (comma-separated smartstored addresses)")
	}
	var members []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			members = append(members, b)
		}
	}
	// Follower slots are positional — unlike -backends, empty entries
	// are kept so "a2,,c2" leaves the middle member without a follower.
	var followerAddrs []string
	if *followers != "" {
		for _, f := range strings.Split(*followers, ",") {
			followerAddrs = append(followerAddrs, strings.TrimSpace(f))
		}
	}

	g, err := gateway.New(gateway.Options{
		Backends:       members,
		Followers:      followerAddrs,
		HealthEvery:    *healthEvery,
		Timeout:        *timeout,
		Retries:        *retries,
		RetryBackoff:   *retryBackoff,
		Workers:        *workers,
		MaxQueue:       *queue,
		DisableMetrics: !*metricsOn,
		BootstrapWait:  *bootstrapWait,
	})
	if err != nil {
		log.Fatalf("smartgate: %v", err)
	}
	log.Printf("smartgate: federating %d backends: %s", len(members), strings.Join(members, ", "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go g.Run(ctx) // health loop

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           g,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("smartgate: serving on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("smartgate: %v", err)
		}
	case <-ctx.Done():
		log.Print("smartgate: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("smartgate: shutdown: %v", err)
		}
	}
}
