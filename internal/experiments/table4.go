package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// QueryLatency reproduces Table 4: mean latency (virtual seconds) of
// point, range and top-k queries on SmartStore versus the R-tree and
// DBMS baselines, for the MSN and EECS traces at TIF ∈ {120, 160}.
//
// The reproduction target is the *shape*: DBMS ≫ R-tree ≫ SmartStore
// (the paper reports ≈10³× between DBMS and SmartStore), with latencies
// growing super-linearly in TIF for the centralized baselines (disk
// paging) and staying near-flat for SmartStore (per-unit in-memory
// scans).
func QueryLatency(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "table4",
		Caption: "Query latency (s): SmartStore vs R-tree vs DBMS (Zipf queries)",
		Header:  []string{"trace", "TIF", "query", "DBMS", "R-tree", "SmartStore"},
	}
	for _, spec := range []*trace.Spec{trace.MSN(), trace.EECS()} {
		for _, tif := range []int{120, 160} {
			rows := queryLatencyCell(spec, tif, p)
			for _, r := range rows {
				t.AddRow(r...)
			}
		}
	}
	return t
}

func queryLatencyCell(spec *trace.Spec, tif int, p Params) [][]string {
	in := core.NewInstance(core.Options{
		Spec: spec, BaseFiles: p.BaseFiles, VirtualTIF: tif,
		Units: p.Units, Seed: p.Seed,
	})
	cfg := baseline.Config{VirtualScale: in.VirtualScale}
	dbms := baseline.NewDBMS(in.Set.Files, in.Set.Norm, cfg)
	rt := baseline.NewRTree(in.Set.Files, in.Set.Norm, cfg)
	gen := in.QueryGen(stats.Zipf, p.Seed+uint64(tif))

	var pD, pR, pS stats.Summary // point
	var rD, rR, rS stats.Summary // range
	var kD, kR, kS stats.Summary // top-k
	pointGen := trace.NewQueryGen(in.Set, stats.Zipf, nil, p.Seed+uint64(tif)+1)

	for i := 0; i < p.Queries; i++ {
		pq := pointGen.Point(0.9)
		_, d := dbms.Point(pq)
		_, r := rt.Point(pq)
		_, s := in.Cluster.Point(pq)
		pD.Add(float64(d.Latency))
		pR.Add(float64(r.Latency))
		pS.Add(float64(s.Latency))

		rq := gen.Range(0.05)
		_, d = dbms.Range(rq)
		_, r = rt.Range(rq)
		_, s = in.Cluster.RangeOffline(rq)
		rD.Add(float64(d.Latency))
		rR.Add(float64(r.Latency))
		rS.Add(float64(s.Latency))

		kq := gen.TopK(8)
		_, d = dbms.TopK(kq)
		_, r = rt.TopK(kq)
		_, s = in.Cluster.TopKOffline(kq)
		kD.Add(float64(d.Latency))
		kR.Add(float64(r.Latency))
		kS.Add(float64(s.Latency))
	}
	tifS := fmt.Sprintf("%d", tif)
	return [][]string{
		{spec.Name, tifS, "point", f2(pD.Mean()), f2(pR.Mean()), f3(pS.Mean())},
		{spec.Name, tifS, "range", f2(rD.Mean()), f2(rR.Mean()), f3(rS.Mean())},
		{spec.Name, tifS, "top-k", f2(kD.Mean()), f2(kR.Mean()), f3(kS.Mean())},
	}
}

// QueryLatencyRaw returns the mean latencies for one (trace, tif) cell
// as numbers, for assertions in tests and benches.
type LatencyCell struct {
	DBMS, RTree, SmartStore float64
}

// QueryLatencyNumbers computes {point, range, topk} cells for a trace
// and TIF.
func QueryLatencyNumbers(spec *trace.Spec, tif int, p Params) map[string]LatencyCell {
	p = p.withDefaults()
	rows := queryLatencyCell(spec, tif, p)
	out := map[string]LatencyCell{}
	for _, r := range rows {
		out[r[2]] = LatencyCell{
			DBMS:       parseF(r[3]),
			RTree:      parseF(r[4]),
			SmartStore: parseF(r[5]),
		}
	}
	return out
}

func parseF(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%f", &v)
	return v
}
