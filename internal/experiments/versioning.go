package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metadata"
	"repro/internal/stats"
	"repro/internal/trace"
)

// churnFraction is the fraction of query operations that are
// accompanied by a metadata insertion in the versioning experiments —
// the update stream whose staleness versioning recovers.
const churnFraction = 0.3

// VersioningOverhead reproduces Fig. 14: (a) average version space per
// index unit and (b) extra query latency spent checking versions, as a
// function of the version ratio, for MSN and EECS.
func VersioningOverhead(p Params) (*Table, *Table) {
	p = p.withDefaults()
	a := &Table{
		ID:      "fig14a",
		Caption: "Versioning space overhead per index unit (KB)",
		Header:  []string{"version ratio", "MSN", "EECS"},
	}
	b := &Table{
		ID:      "fig14b",
		Caption: "Extra query latency from version checks (fraction of total)",
		Header:  []string{"version ratio", "MSN", "EECS"},
	}
	for _, ratio := range []int{1, 2, 4, 8, 16} {
		var spaces, extras [2]float64
		for i, spec := range []*trace.Spec{trace.MSN(), trace.EECS()} {
			space, extra := VersioningOverheadNumbers(spec, ratio, p)
			spaces[i], extras[i] = space, extra
		}
		a.AddRow(fmt.Sprintf("%d", ratio), f1(spaces[0]/1024), f1(spaces[1]/1024))
		b.AddRow(fmt.Sprintf("%d", ratio), pct(extras[0]), pct(extras[1]))
	}
	return a, b
}

// VersioningOverheadNumbers measures one Fig. 14 cell: mean version
// space per index unit (bytes) and the version share of query latency,
// under a heavy update stream (several changes per query, as when
// replica refresh is rare relative to the modification rate).
func VersioningOverheadNumbers(spec *trace.Spec, ratio int, p Params) (space, extraFrac float64) {
	p = p.withDefaults()
	in := core.NewInstance(core.Options{
		Spec: spec, BaseFiles: p.BaseFiles, Units: p.Units, Seed: p.Seed,
		Versioning: true, VersionRatio: ratio, LazyThreshold: 0.1,
	})
	gen := in.QueryGen(stats.Zipf, p.Seed+37)
	rng := stats.NewRNG(p.Seed + 41)
	nextID := uint64(20_000_000)
	var lat, vlat stats.Summary
	const churnPerQuery = 4
	zipfHot := stats.NewZipfGen(rng, 1.1, len(in.Set.Files))
	for i := 0; i < p.Queries; i++ {
		for c := 0; c < churnPerQuery; c++ {
			// Realistic churn mixes new files with repeated
			// modifications of hot files — the latter aggregate within
			// versions (§5.6).
			if c%2 == 0 {
				insertChurnFile(in, rng, &nextID)
			} else {
				modifyChurnFile(in, zipfHot)
			}
		}
		_, res := in.Cluster.RangeOffline(gen.Range(0.05))
		lat.Add(float64(res.Latency))
		vlat.Add(float64(res.VersionLatency))
	}
	chains := in.Cluster.Chains()
	var sum stats.Summary
	for _, ch := range chains {
		sum.Add(float64(ch.SizeBytes()))
	}
	if lat.Sum() == 0 {
		return sum.Mean(), 0
	}
	return sum.Mean(), vlat.Sum() / lat.Sum()
}

func insertChurnFile(in *core.Instance, rng interface{ IntN(int) int }, nextID *uint64) {
	src := in.Set.Files[rng.IntN(len(in.Set.Files))]
	nf := &metadata.File{ID: *nextID, Path: fmt.Sprintf("/churn/v%d.dat", *nextID)}
	nf.Attrs = src.Attrs
	in.Cluster.InsertFile(nf)
	in.Set.Files = append(in.Set.Files, nf)
	*nextID++
}

// modifyChurnFile re-modifies a popularity-weighted existing file,
// bumping its write volume and modification time.
func modifyChurnFile(in *core.Instance, zipf *stats.ZipfGen) {
	f := in.Set.Files[zipf.Next()]
	mod := *f
	mod.Attrs[metadata.AttrWriteBytes] += 4096
	in.Cluster.ModifyFile(&mod)
}

// RecallVersioning reproduces Tables 5 and 6: recall of range and top-8
// queries, with and without versioning, as the number of queries (and
// hence interleaved updates) grows, for each query distribution.
func RecallVersioning(spec *trace.Spec, p Params) *Table {
	p = p.withDefaults()
	id := "table5"
	if spec.Name == "EECS" {
		id = "table6"
	}
	t := &Table{
		ID:      id,
		Caption: fmt.Sprintf("Recall (%%) of range and top-8 queries ± versioning, %s", spec.Name),
		Header:  []string{"distribution", "kind", "versioning"},
	}
	counts := queryCounts(p)
	for _, n := range counts {
		t.Header = append(t.Header, fmt.Sprintf("%d", n))
	}
	for _, dist := range stats.Distributions {
		for _, kind := range []string{"range", "top-8"} {
			rowOff := []string{dist.String(), kind, "off"}
			rowOn := []string{dist.String(), kind, "on"}
			for _, n := range counts {
				off := RecallVersioningNumber(spec, dist, kind, n, false, p)
				on := RecallVersioningNumber(spec, dist, kind, n, true, p)
				rowOff = append(rowOff, f1(off*100))
				rowOn = append(rowOn, f1(on*100))
			}
			t.AddRow(rowOff...)
			t.AddRow(rowOn...)
		}
	}
	return t
}

func queryCounts(p Params) []int {
	// The paper sweeps 1000–5000 queries; scale to the Params budget.
	base := p.Queries
	return []int{base, 2 * base, 3 * base, 4 * base, 5 * base}
}

// RecallVersioningNumber runs one Table 5/6 cell: nQueries queries of
// the given kind interleaved with churn, returning mean recall.
func RecallVersioningNumber(spec *trace.Spec, dist stats.Distribution, kind string,
	nQueries int, versioning bool, p Params) float64 {

	p = p.withDefaults()
	in := core.NewInstance(core.Options{
		Spec: spec, BaseFiles: p.BaseFiles, Units: p.Units, Seed: p.Seed,
		Versioning: versioning, VersionRatio: 4,
		// A high lazy threshold lets staleness accumulate across the
		// whole sweep, as when replica refresh is rare relative to the
		// query rate.
		LazyThreshold: 0.8,
	})
	gen := in.QueryGen(dist, p.Seed+43)
	rng := stats.NewRNG(p.Seed + 47)
	nextID := uint64(30_000_000)
	out := core.NewRecallOutcome()
	for i := 0; i < nQueries; i++ {
		if rng.Float64() < churnFraction {
			insertChurnFile(in, rng, &nextID)
		}
		if kind == "range" {
			in.ObserveRange(gen.Range(0.04), out)
		} else {
			in.ObserveTopK(gen.TopK(8), out)
		}
	}
	return out.Recall.Mean()
}
