package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SpaceOverhead reproduces Fig. 7: per-node index space of SmartStore
// versus the centralized R-tree and DBMS footprints, per trace.
func SpaceOverhead(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "fig7",
		Caption: "Space overhead per node (KB)",
		Header:  []string{"trace", "SmartStore/node", "R-tree (central)", "DBMS (central)"},
	}
	for _, spec := range trace.Specs() {
		in := core.NewInstance(core.Options{
			Spec: spec, BaseFiles: p.BaseFiles, Units: p.Units, Seed: p.Seed,
		})
		cfg := baseline.Config{VirtualScale: in.VirtualScale}
		dbms := baseline.NewDBMS(in.Set.Files, in.Set.Norm, cfg)
		rt := baseline.NewRTree(in.Set.Files, in.Set.Norm, cfg)
		t.AddRow(spec.Name,
			f1(float64(in.Cluster.IndexSizeBytes())/1024),
			f1(float64(rt.SizeBytes())/1024),
			f1(float64(dbms.SizeBytes())/1024),
		)
	}
	return t
}

// SpaceOverheadNumbers returns the three footprints for assertions.
func SpaceOverheadNumbers(spec *trace.Spec, p Params) (smart, rtree, dbms int) {
	p = p.withDefaults()
	in := core.NewInstance(core.Options{
		Spec: spec, BaseFiles: p.BaseFiles, Units: p.Units, Seed: p.Seed,
	})
	cfg := baseline.Config{VirtualScale: in.VirtualScale}
	d := baseline.NewDBMS(in.Set.Files, in.Set.Norm, cfg)
	r := baseline.NewRTree(in.Set.Files, in.Set.Norm, cfg)
	return in.Cluster.IndexSizeBytes(), r.SizeBytes(), d.SizeBytes()
}

// RoutingHops reproduces Fig. 8: the distribution of routing distance
// (groups visited beyond the first) for complex queries per trace.
// The paper reports 87.3–90.6% of operations served by one group.
func RoutingHops(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "fig8",
		Caption: "Routing distance of complex queries (fraction of operations)",
		Header:  []string{"trace", "0 hop", "1 hop", "2 hops", "3+ hops"},
	}
	for _, spec := range trace.Specs() {
		h := RoutingHopsHistogram(spec, p)
		three := 0.0
		for i := 3; i < 8; i++ {
			three += h.Fraction(i)
		}
		t.AddRow(spec.Name, pct(h.Fraction(0)), pct(h.Fraction(1)), pct(h.Fraction(2)), pct(three))
	}
	return t
}

// RoutingHopsHistogram runs the Fig. 8 workload for one trace.
func RoutingHopsHistogram(spec *trace.Spec, p Params) *stats.Histogram {
	p = p.withDefaults()
	in := core.NewInstance(core.Options{
		Spec: spec, BaseFiles: p.BaseFiles, Units: p.Units, Seed: p.Seed,
	})
	gen := in.QueryGen(stats.Zipf, p.Seed+11)
	h := stats.NewHistogram(8)
	for i := 0; i < p.Queries; i++ {
		if i%2 == 0 {
			// Selective windows, as in the paper's example queries
			// ("revised between 10:00 and 16:20, read 30–50MB").
			_, res := in.Cluster.RangeOffline(gen.Range(0.02))
			h.Add(res.Hops)
		} else {
			_, res := in.Cluster.TopKOffline(gen.TopK(8))
			h.Add(res.Hops)
		}
	}
	return h
}

// PointHitRate reproduces Fig. 9: the fraction of point queries served
// accurately via the Bloom-filter path, per trace. The paper reports
// over 88.2%.
func PointHitRate(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "fig9",
		Caption: "Average hit rate for point query",
		Header:  []string{"trace", "hit rate"},
	}
	for _, spec := range trace.Specs() {
		t.AddRow(spec.Name, pct(PointHitRateNumber(spec, p)))
	}
	return t
}

// PointHitRateNumber runs the Fig. 9 workload for one trace: point
// queries over existing names interleaved with metadata churn. Lookups
// are recency-biased (users look up what was just created), so replica
// staleness — names not yet propagated into index-unit Bloom filters —
// produces the false negatives of §5.4.1 alongside hash-collision
// false positives; the paper reports 88.2%+ served accurately.
func PointHitRateNumber(spec *trace.Spec, p Params) float64 {
	p = p.withDefaults()
	in := core.NewInstance(core.Options{
		Spec: spec, BaseFiles: p.BaseFiles, Units: p.Units, Seed: p.Seed,
		Versioning: false, LazyThreshold: 0.02,
	})
	pointGen := trace.NewQueryGen(in.Set, stats.Zipf, nil, p.Seed+17)
	rng := stats.NewRNG(p.Seed + 19)
	hits, total := 0, 0
	nextID := uint64(10_000_000)
	var recent []*metadata.File
	for i := 0; i < p.Queries; i++ {
		// Churn: ~20% of operations insert a new file.
		if rng.Float64() < 0.20 {
			src := in.Set.Files[rng.IntN(len(in.Set.Files))]
			nf := &metadata.File{ID: nextID, Path: fmt.Sprintf("/churn/f%d.dat", nextID)}
			nf.Attrs = src.Attrs
			in.Cluster.InsertFile(nf)
			in.Set.Files = append(in.Set.Files, nf)
			recent = append(recent, nf)
			if len(recent) > 16 {
				recent = recent[1:]
			}
			nextID++
		}
		// Recency bias: ~15% of lookups target a recently created name.
		var q query.Point
		if len(recent) > 0 && rng.Float64() < 0.15 {
			q = query.Point{Filename: recent[rng.IntN(len(recent))].Path}
		} else {
			q = pointGen.Point(1.0)
		}
		got, _ := in.Cluster.Point(q)
		want := query.PointTruth(in.Set.Files, q)
		total++
		if stats.Recall(want, got) == 1 {
			hits++
		}
	}
	return float64(hits) / float64(total)
}

// RecallHP reproduces Fig. 10: recall of top-8 NN and range queries on
// the HP trace under Uniform, Gauss and Zipf query distributions.
func RecallHP(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "fig10",
		Caption: "Recall of complex queries, HP trace",
		Header:  []string{"distribution", "top-8 NN", "range"},
	}
	for _, dist := range stats.Distributions {
		topk, rng := RecallHPNumbers(dist, p)
		t.AddRow(dist.String(), pct(topk), pct(rng))
	}
	return t
}

// RecallHPNumbers computes (top-8 recall, range recall) for one query
// distribution on HP.
func RecallHPNumbers(dist stats.Distribution, p Params) (topk, rangeRecall float64) {
	p = p.withDefaults()
	in := core.NewInstance(core.Options{
		Spec: trace.HP(), BaseFiles: p.BaseFiles, Units: p.Units, Seed: p.Seed,
	})
	gen := in.QueryGen(dist, p.Seed+23)
	outK := core.NewRecallOutcome()
	outR := core.NewRecallOutcome()
	for i := 0; i < p.Queries; i++ {
		in.ObserveTopK(gen.TopK(8), outK)
		in.ObserveRange(gen.Range(0.04), outR)
	}
	return outK.Recall.Mean(), outR.Recall.Mean()
}

// OptimalThresholds reproduces Fig. 11: (a) the optimal admission
// threshold as a function of system scale, and (b) the optimal
// threshold per semantic R-tree level for 60 nodes.
func OptimalThresholds(p Params) (*Table, *Table) {
	p = p.withDefaults()
	a := &Table{
		ID:      "fig11a",
		Caption: "Optimal admission threshold vs system scale (MSN)",
		Header:  []string{"storage units", "optimal threshold"},
	}
	for _, units := range []int{20, 40, 60, 80, 100} {
		if units > p.BaseFiles {
			continue
		}
		in := core.NewInstance(core.Options{
			Spec: trace.MSN(), BaseFiles: p.BaseFiles, Units: units, Seed: p.Seed,
		})
		nodes := in.Tree.Leaves()
		best, _ := semtree.OptimalThreshold(nodes, thresholdCandidates(nodes), 10)
		a.AddRow(fmt.Sprintf("%d", units), f3(best))
	}

	b := &Table{
		ID:      "fig11b",
		Caption: fmt.Sprintf("Optimal threshold per tree level (%d nodes, MSN)", p.Units),
		Header:  []string{"tree level", "optimal threshold"},
	}
	in := core.NewInstance(core.Options{
		Spec: trace.MSN(), BaseFiles: p.BaseFiles, Units: p.Units, Seed: p.Seed,
	})
	byLevel := nodesByLevel(in.Tree)
	for level := 0; level < len(byLevel); level++ {
		nodes := byLevel[level]
		if len(nodes) < 2 {
			continue
		}
		best, _ := semtree.OptimalThreshold(nodes, thresholdCandidates(nodes), 10)
		b.AddRow(fmt.Sprintf("%d", level+1), f3(best))
	}
	return a, b
}

// thresholdCandidates derives the admission-threshold sweep from the
// observed pairwise-similarity distribution (the paper's "sampling
// analysis", §3.2.1): candidates are the similarity deciles, so the
// sweep actually discriminates regardless of how compressed the cosine
// range is.
func thresholdCandidates(nodes []*semtree.Node) []float64 {
	vectors := make([][]float64, len(nodes))
	for i, n := range nodes {
		vectors[i] = n.Vector
	}
	var out []float64
	seen := map[float64]bool{}
	for q := 0.1; q < 0.95; q += 0.1 {
		c := semtree.SampleThreshold(vectors, q)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []float64{0.5}
	}
	return out
}

func nodesByLevel(t *semtree.Tree) [][]*semtree.Node {
	depth := t.Height()
	out := make([][]*semtree.Node, depth)
	var walk func(n *semtree.Node)
	walk = func(n *semtree.Node) {
		if n.Level < depth {
			out[n.Level] = append(out[n.Level], n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// RecallScale reproduces Fig. 12: recall of a 2000-query mix (half
// range, half top-k) as a function of system scale, for Gauss and Zipf
// distributions.
func RecallScale(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "fig12",
		Caption: "Recall vs system scale (range+top-k mix, EECS)",
		Header:  []string{"storage units", "Gauss", "Zipf"},
	}
	for _, units := range []int{20, 40, 60, 80, 100} {
		if units > p.BaseFiles {
			continue
		}
		g := RecallScaleNumber(stats.Gauss, units, p)
		z := RecallScaleNumber(stats.Zipf, units, p)
		t.AddRow(fmt.Sprintf("%d", units), pct(g), pct(z))
	}
	return t
}

// RecallScaleNumber runs the Fig. 12 mix at one scale/distribution.
func RecallScaleNumber(dist stats.Distribution, units int, p Params) float64 {
	p = p.withDefaults()
	in := core.NewInstance(core.Options{
		Spec: trace.EECS(), BaseFiles: p.BaseFiles, Units: units, Seed: p.Seed,
	})
	gen := in.QueryGen(dist, p.Seed+29)
	out := core.NewRecallOutcome()
	for i := 0; i < p.Queries/2; i++ {
		in.ObserveRange(gen.Range(0.04), out)
		in.ObserveTopK(gen.TopK(8), out)
	}
	return out.Recall.Mean()
}

// OnOffline reproduces Fig. 13: (a) query latency and (b) message count
// of the on-line multicast versus off-line pre-processing approaches as
// a function of system scale, under Zipf queries.
func OnOffline(p Params) (*Table, *Table) {
	p = p.withDefaults()
	a := &Table{
		ID:      "fig13a",
		Caption: "On-line vs off-line query latency (s) vs system scale (MSN, Zipf)",
		Header:  []string{"storage units", "on-line", "off-line"},
	}
	b := &Table{
		ID:      "fig13b",
		Caption: "On-line vs off-line messages per query vs system scale (MSN, Zipf)",
		Header:  []string{"storage units", "on-line", "off-line"},
	}
	for _, units := range []int{20, 40, 60, 80, 100} {
		if units > p.BaseFiles {
			continue
		}
		onLat, offLat, onMsg, offMsg := OnOfflineNumbers(units, p)
		a.AddRow(fmt.Sprintf("%d", units), f3(onLat), f3(offLat))
		b.AddRow(fmt.Sprintf("%d", units), f1(onMsg), f1(offMsg))
	}
	return a, b
}

// OnOfflineNumbers measures one scale point of Fig. 13.
func OnOfflineNumbers(units int, p Params) (onLat, offLat, onMsg, offMsg float64) {
	p = p.withDefaults()
	in := core.NewInstance(core.Options{
		Spec: trace.MSN(), BaseFiles: p.BaseFiles, Units: units, Seed: p.Seed,
	})
	gen := in.QueryGen(stats.Zipf, p.Seed+31)
	var sOnLat, sOffLat, sOnMsg, sOffMsg stats.Summary
	for i := 0; i < p.Queries; i++ {
		q := gen.Range(0.04)
		_, on := in.Cluster.RangeOnline(q)
		_, off := in.Cluster.RangeOffline(q)
		sOnLat.Add(float64(on.Latency))
		sOffLat.Add(float64(off.Latency))
		sOnMsg.Add(float64(on.Messages))
		sOffMsg.Add(float64(off.Messages))
	}
	return sOnLat.Mean(), sOffLat.Mean(), sOnMsg.Mean(), sOffMsg.Mean()
}
