package experiments

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/stats"
	"repro/internal/trace"
)

// AblationLSIvsKMeans quantifies §3.1.1's argument for LSI over
// K-means: group quality (within-group SSE of the placement) and the
// resulting off-line range recall under both placements.
func AblationLSIvsKMeans(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "ablation-lsi-kmeans",
		Caption: "Grouping tool ablation (MSN): LSI semantic sort vs K-means vs round-robin",
		Header:  []string{"placement", "within-unit SSE", "offline range recall"},
	}
	set := trace.MSN().Generate(p.BaseFiles, p.Seed)
	attrs := trace.DefaultQueryAttrs()

	place := map[string][]*semtree.StorageUnit{
		"LSI semantic sort": semtree.PlaceSemantic(set.Files, p.Units, set.Norm, attrs),
		"round-robin":       semtree.PlaceRoundRobin(set.Files, p.Units),
	}
	// K-means placement: cluster file vectors into Units clusters, then
	// rebalance to equal sizes by splitting oversized clusters.
	place["K-means"] = kmeansPlacement(set, p.Units, attrs, p.Seed)

	for _, name := range []string{"LSI semantic sort", "K-means", "round-robin"} {
		units := place[name]
		var sse float64
		for _, u := range units {
			sse += metadata.SumSquaredError(set.Norm, u.Files, attrs)
		}
		recall := placementRecall(set, units, attrs, p)
		t.AddRow(name, f3(sse), pct(recall))
	}
	return t
}

func kmeansPlacement(set *trace.Set, nUnits int, attrs []metadata.Attr, seed uint64) []*semtree.StorageUnit {
	vectors := make([][]float64, len(set.Files))
	for i, f := range set.Files {
		vectors[i] = set.Norm.Vector(f, attrs)
	}
	res, err := kmeans.Cluster(vectors, nUnits, stats.NewRNG(seed))
	if err != nil {
		return semtree.PlaceRoundRobin(set.Files, nUnits)
	}
	buckets := make([][]*metadata.File, nUnits)
	for i, f := range set.Files {
		c := res.Assignment[i]
		buckets[c] = append(buckets[c], f)
	}
	units := make([]*semtree.StorageUnit, nUnits)
	for i := range units {
		units[i] = semtree.NewStorageUnit(i, buckets[i])
	}
	return units
}

func placementRecall(set *trace.Set, units []*semtree.StorageUnit, attrs []metadata.Attr, p Params) float64 {
	tree := semtree.Build(units, set.Norm, semtree.Config{Attrs: attrs})
	in := coreInstanceFromTree(set, tree, p)
	gen := trace.NewQueryGen(set, stats.Zipf, attrs, p.Seed+53)
	out := core.NewRecallOutcome()
	for i := 0; i < p.Queries; i++ {
		in.ObserveRange(gen.Range(0.04), out)
	}
	return out.Recall.Mean()
}

// coreInstanceFromTree wraps an externally built tree in an Instance so
// the Observe helpers can run over it.
func coreInstanceFromTree(set *trace.Set, tree *semtree.Tree, p Params) *core.Instance {
	return core.WrapDeployment(set, tree, p.Seed)
}

// AblationBloomSizing sweeps Bloom-filter geometry around the §5.1
// setting (1024 bits, k=7): fill ratio and analytic false-positive rate
// per storage unit at the experiment's population.
func AblationBloomSizing(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "ablation-bloom",
		Caption: "Bloom filter sizing (per-unit population)",
		Header:  []string{"bits", "k", "fill ratio", "est. false positive"},
	}
	set := trace.MSN().Generate(p.BaseFiles, p.Seed)
	perUnit := len(set.Files) / p.Units
	if perUnit < 1 {
		perUnit = 1
	}
	for _, bits := range []int{512, 1024, 2048, 4096} {
		for _, k := range []int{3, 7, 11} {
			f := bloom.New(bits, k)
			for i := 0; i < perUnit; i++ {
				f.Add(set.Files[i%len(set.Files)].Path + fmt.Sprintf("#%d", i))
			}
			t.AddRow(fmt.Sprintf("%d", bits), fmt.Sprintf("%d", k),
				f3(f.FillRatio()), f3(f.EstimatedFalsePositiveRate()))
		}
	}
	return t
}

// AblationAdmissionThreshold sweeps the level-1 admission threshold and
// reports group count and off-line recall — the balance-vs-correlation
// trade-off of §3.2.1.
func AblationAdmissionThreshold(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "ablation-threshold",
		Caption: "Admission threshold sweep (MSN)",
		Header:  []string{"threshold", "first-level groups", "offline range recall"},
	}
	set := trace.MSN().Generate(p.BaseFiles, p.Seed)
	attrs := trace.DefaultQueryAttrs()
	for _, eps := range []float64{0.3, 0.5, 0.7, 0.9, 0.97} {
		units := semtree.PlaceSemantic(set.Files, p.Units, set.Norm, attrs)
		tree := semtree.Build(units, set.Norm, semtree.Config{Attrs: attrs, BaseThreshold: eps})
		in := coreInstanceFromTree(set, tree, p)
		gen := trace.NewQueryGen(set, stats.Zipf, attrs, p.Seed+59)
		out := core.NewRecallOutcome()
		for i := 0; i < p.Queries; i++ {
			in.ObserveRange(gen.Range(0.04), out)
		}
		t.AddRow(f2(eps), fmt.Sprintf("%d", len(tree.FirstLevelIndexUnits())), pct(out.Recall.Mean()))
	}
	return t
}

// AblationAutoConfig compares querying the matched specialized tree
// versus forcing every query through the full-D tree (§2.4).
func AblationAutoConfig(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "ablation-autoconfig",
		Caption: "Automatic configuration (MSN): specialized vs full-D tree",
		Header:  []string{"query attrs", "tree used", "offline range recall"},
	}
	set := trace.MSN().Generate(p.BaseFiles, p.Seed)
	units := semtree.PlaceSemantic(set.Files, p.Units, set.Norm, metadata.AllAttrs())
	forest := semtree.AutoConfigure(units, set.Norm, semtree.Config{}, nil, 0.0001)

	queryAttrs := []metadata.Attr{metadata.AttrSize, metadata.AttrMTime}
	for _, mode := range []string{"matched", "full-D"} {
		tree := forest.Full
		if mode == "matched" {
			tree = forest.SelectTree(queryAttrs)
		}
		in := coreInstanceFromTree(set, tree, p)
		gen := trace.NewQueryGen(set, stats.Zipf, queryAttrs, p.Seed+61)
		out := core.NewRecallOutcome()
		for i := 0; i < p.Queries; i++ {
			in.ObserveRange(gen.Range(0.05), out)
		}
		t.AddRow(semtree.SubsetKey(queryAttrs), mode+" ("+semtree.SubsetKey(tree.Attrs)+")",
			pct(out.Recall.Mean()))
	}
	return t
}

// AblationReplicaDepth compares replicating first-level index units
// (§3.4's choice) against replicating deeper levels: groups at deeper
// replica levels are smaller, so single-group searches see less data —
// cheaper but lower recall.
func AblationReplicaDepth(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "ablation-replica-depth",
		Caption: "Replica depth (MSN): routed-search recall vs records scanned",
		Header:  []string{"replica level", "groups", "recall", "records/query"},
	}
	in := core.NewInstance(core.Options{
		Spec: trace.MSN(), BaseFiles: p.BaseFiles, Units: p.Units, Seed: p.Seed,
	})
	gen := in.QueryGen(stats.Zipf, p.Seed+67)
	for _, level := range []int{1, 0} { // 1 = first-level groups, 0 = single units
		groups := groupsAtLevel(in.Tree, level)
		var rec, scanned stats.Summary
		for i := 0; i < p.Queries; i++ {
			q := gen.Range(0.04)
			g := bestGroupForRange(in.Tree, groups, q)
			ids, st := in.Tree.SearchGroupRange(g, q)
			truth := query.RangeTruth(in.Set.Files, q)
			if len(truth) > 0 {
				rec.Add(stats.Recall(truth, ids))
			}
			scanned.Add(float64(st.RecordsScanned))
		}
		t.AddRow(fmt.Sprintf("%d", level), fmt.Sprintf("%d", len(groups)),
			pct(rec.Mean()), f1(scanned.Mean()))
	}
	return t
}

// groupsAtLevel returns the tree nodes at the given level (0 = leaves).
func groupsAtLevel(t *semtree.Tree, level int) []*semtree.Node {
	var out []*semtree.Node
	var walk func(n *semtree.Node)
	walk = func(n *semtree.Node) {
		if n.Level == level {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	if len(out) == 0 {
		out = append(out, t.Root)
	}
	return out
}

// bestGroupForRange picks the candidate whose MBR overlaps the query
// window most, mirroring the off-line routing rule over an arbitrary
// candidate set.
func bestGroupForRange(t *semtree.Tree, groups []*semtree.Node, q query.Range) *semtree.Node {
	best := groups[0]
	bestVol := -1.0
	for _, g := range groups {
		if !g.HasMBR {
			continue
		}
		vol := 1.0
		ok := true
		for i, a := range q.Attrs {
			lo := maxF(t.Norm.Value(a, q.Lo[i]), t.Norm.Value(a, g.MBR.Lo[a]))
			hi := minF(t.Norm.Value(a, q.Hi[i]), t.Norm.Value(a, g.MBR.Hi[a]))
			if hi < lo {
				ok = false
				break
			}
			vol *= hi - lo
		}
		if ok && vol > bestVol {
			best, bestVol = g, vol
		}
	}
	return best
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
