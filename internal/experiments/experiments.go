// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a pure function from Params to a
// Table of rows; cmd/smartbench prints them and bench_test.go times
// them. DESIGN.md §3 maps experiment ids to paper artifacts.
package experiments

import (
	"fmt"
	"strings"
)

// Params scales an experiment run. Tests use small values; benches use
// Default() to approach the paper's populations.
type Params struct {
	// BaseFiles is the per-trace sample population.
	BaseFiles int
	// Units is the cluster size (the paper's prototype uses 60).
	Units int
	// Queries is the number of queries per measured cell.
	Queries int
	// Seed drives all randomness.
	Seed uint64
}

// Default returns bench-scale parameters: 60 units as in §5.1 and query
// batches large enough for stable means.
func Default() Params {
	return Params{BaseFiles: 3000, Units: 60, Queries: 200, Seed: 2009}
}

// Quick returns test-scale parameters.
func Quick() Params {
	return Params{BaseFiles: 600, Units: 12, Queries: 30, Seed: 7}
}

func (p Params) withDefaults() Params {
	d := Default()
	if p.BaseFiles == 0 {
		p.BaseFiles = d.BaseFiles
	}
	if p.Units == 0 {
		p.Units = d.Units
	}
	if p.Queries == 0 {
		p.Queries = d.Queries
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// Table is a rendered experiment result: a caption, a header and rows.
type Table struct {
	ID      string // experiment id, e.g. "table4", "fig13a"
	Caption string
	Header  []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Caption)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
