package experiments

import (
	"fmt"

	"repro/internal/metadata"
	"repro/internal/trace"
)

// TraceScaleUp reproduces Tables 1–3: the published original trace
// statistics next to their TIF-scaled counterparts, plus the generated
// sample's empirical statistics as a sanity column.
func TraceScaleUp(spec *trace.Spec, p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      fmt.Sprintf("table%d", tableIndex(spec.Name)),
		Caption: fmt.Sprintf("Scaled-up %s (TIF=%d)", spec.Name, spec.DefaultTIF),
		Header:  []string{"statistic", "original", fmt.Sprintf("TIF=%d", spec.DefaultTIF), "unit"},
	}
	for _, st := range spec.Stats {
		t.AddRow(st.Label, trimFloat(st.Original), trimFloat(st.Scaled), st.Unit)
	}

	// Empirical sanity rows from the generated sample.
	set := spec.Generate(p.BaseFiles, p.Seed)
	var reads, writes, reqs float64
	for _, f := range set.Files {
		reqs += f.Attrs[metadata.AttrAccessFreq]
		reads += f.Attrs[metadata.AttrReadBytes]
		writes += f.Attrs[metadata.AttrWriteBytes]
	}
	t.AddRow("[sample] files", fmt.Sprintf("%d", len(set.Files)), "", "")
	t.AddRow("[sample] requests/file", f2(reqs/float64(len(set.Files))),
		f2(spec.ReqPerFile), "target")
	t.AddRow("[sample] read fraction", f2(reads/(reads+writes)),
		f2(readVolumeFraction(spec)), "target±")
	return t
}

// readVolumeFraction converts the spec's request-level read fraction to
// an approximate volume fraction (both directions share the same size
// distribution in the generator).
func readVolumeFraction(spec *trace.Spec) float64 { return spec.ReadFrac }

func tableIndex(name string) int {
	switch name {
	case "HP":
		return 1
	case "MSN":
		return 2
	default:
		return 3
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
