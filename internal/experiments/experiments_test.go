package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// quick returns test-scale params, deterministic.
func quick() Params { return Quick() }

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Caption: "c", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	s := tb.String()
	if !strings.Contains(s, "== x: c ==") || !strings.Contains(s, "bb") {
		t.Fatalf("render = %q", s)
	}
}

func TestTraceScaleUpTables(t *testing.T) {
	for _, spec := range trace.Specs() {
		tb := TraceScaleUp(spec, quick())
		if len(tb.Rows) < 5 {
			t.Fatalf("%s: %d rows, want ≥ 5", spec.Name, len(tb.Rows))
		}
		if !strings.Contains(tb.Caption, spec.Name) {
			t.Fatalf("caption %q lacks trace name", tb.Caption)
		}
	}
}

func TestQueryLatencyShape(t *testing.T) {
	// The Table 4 reproduction target: DBMS > R-tree > SmartStore for
	// every query type, and latencies grow with TIF. Enough units that
	// SmartStore's per-unit virtual population fits one server's memory,
	// as in the paper's 60-unit prototype.
	p := Params{BaseFiles: 1200, Units: 40, Queries: 20, Seed: 7}
	for _, tif := range []int{120, 160} {
		cells := QueryLatencyNumbers(trace.MSN(), tif, p)
		for kind, c := range cells {
			if !(c.DBMS > c.RTree) {
				t.Errorf("TIF %d %s: DBMS %v not above R-tree %v", tif, kind, c.DBMS, c.RTree)
			}
			if !(c.RTree > c.SmartStore) {
				t.Errorf("TIF %d %s: R-tree %v not above SmartStore %v", tif, kind, c.RTree, c.SmartStore)
			}
		}
		// Headline: ~10³× between DBMS and SmartStore for complex queries.
		if ratio := cells["range"].DBMS / cells["range"].SmartStore; ratio < 50 {
			t.Errorf("TIF %d: DBMS/SmartStore range ratio %v, want ≫ 50", tif, ratio)
		}
	}
	c120 := QueryLatencyNumbers(trace.MSN(), 120, p)
	c160 := QueryLatencyNumbers(trace.MSN(), 160, p)
	if c160["range"].DBMS <= c120["range"].DBMS {
		t.Error("DBMS range latency did not grow with TIF")
	}
}

func TestSpaceOverheadShape(t *testing.T) {
	// Fig. 7: SmartStore per-node < R-tree central < DBMS central.
	smart, rtree, dbms := SpaceOverheadNumbers(trace.MSN(), quick())
	if !(smart < rtree && rtree < dbms) {
		t.Fatalf("space ordering violated: smart=%d rtree=%d dbms=%d", smart, rtree, dbms)
	}
}

func TestRoutingHopsShape(t *testing.T) {
	// Fig. 8: the large majority of complex queries are 0-hop.
	h := RoutingHopsHistogram(trace.MSN(), quick())
	if h.Fraction(0) < 0.6 {
		t.Fatalf("0-hop fraction = %v, want ≥ 0.6 (paper: 87–91%%)", h.Fraction(0))
	}
}

func TestPointHitRateShape(t *testing.T) {
	// Fig. 9: over ~88% of point queries served accurately.
	rate := PointHitRateNumber(trace.MSN(), quick())
	if rate < 0.8 {
		t.Fatalf("point hit rate = %v, want ≥ 0.8 (paper: 88.2%%)", rate)
	}
}

func TestRecallHPShape(t *testing.T) {
	p := quick()
	// Fig. 10: top-k ≥ range per distribution; Zipf/Gauss ≥ Uniform.
	topkU, rangeU := RecallHPNumbers(stats.Uniform, p)
	topkZ, rangeZ := RecallHPNumbers(stats.Zipf, p)
	if topkZ < rangeZ-0.1 {
		t.Errorf("Zipf: top-8 recall %v well below range recall %v (paper: top-k higher)", topkZ, rangeZ)
	}
	if rangeZ < rangeU-0.1 {
		t.Errorf("Zipf range recall %v far below Uniform %v (paper: skewed ≥ uniform)", rangeZ, rangeU)
	}
	for _, v := range []float64{topkU, rangeU, topkZ, rangeZ} {
		if v < 0.4 || v > 1.0001 {
			t.Fatalf("recall out of plausible band: %v", v)
		}
	}
}

func TestOptimalThresholdsTables(t *testing.T) {
	a, b := OptimalThresholds(quick())
	if len(a.Rows) == 0 {
		t.Fatal("fig11a empty")
	}
	if len(b.Rows) == 0 {
		t.Fatal("fig11b empty")
	}
	for _, row := range a.Rows {
		v := parseF(row[1])
		if v < 0 || v > 1 {
			t.Fatalf("threshold %v out of [0,1]", v)
		}
	}
}

func TestRecallScaleStaysHigh(t *testing.T) {
	// Fig. 12: recall maintained as scale grows.
	p := quick()
	small := RecallScaleNumber(stats.Zipf, 8, p)
	large := RecallScaleNumber(stats.Zipf, 24, p)
	if small < 0.5 || large < 0.5 {
		t.Fatalf("recall collapsed: %v → %v", small, large)
	}
	if large < small-0.3 {
		t.Fatalf("recall degraded badly with scale: %v → %v", small, large)
	}
}

func TestOnOfflineShape(t *testing.T) {
	// Fig. 13: off-line uses fewer messages, and the message gap widens
	// with system scale.
	p := quick()
	onLatS, offLatS, onMsgS, offMsgS := OnOfflineNumbers(8, p)
	onLatL, offLatL, onMsgL, offMsgL := OnOfflineNumbers(24, p)
	if offMsgS >= onMsgS || offMsgL >= onMsgL {
		t.Fatalf("off-line messages not below on-line: %v/%v, %v/%v", offMsgS, onMsgS, offMsgL, onMsgL)
	}
	if (onMsgL - offMsgL) <= (onMsgS - offMsgS) {
		t.Fatalf("message gap did not widen with scale")
	}
	if offLatS > onLatS || offLatL > onLatL {
		t.Fatalf("off-line latency above on-line: %v/%v, %v/%v", offLatS, onLatS, offLatL, onLatL)
	}
}

func TestVersioningOverheadShape(t *testing.T) {
	// Fig. 14: space shrinks with ratio; extra latency stays bounded
	// (paper: no more than 10%).
	p := quick()
	s1, e1 := VersioningOverheadNumbers(trace.MSN(), 1, p)
	s8, e8 := VersioningOverheadNumbers(trace.MSN(), 8, p)
	if s1 < s8 {
		t.Fatalf("comprehensive versioning space %v below ratio-8 %v", s1, s8)
	}
	for _, e := range []float64{e1, e8} {
		if e < 0 || e > 0.5 {
			t.Fatalf("version latency share %v out of band", e)
		}
	}
}

func TestRecallVersioningShape(t *testing.T) {
	// Tables 5/6: versioning recall ≥ non-versioned recall.
	p := quick()
	p.Queries = 40
	for _, dist := range []stats.Distribution{stats.Zipf} {
		off := RecallVersioningNumber(trace.MSN(), dist, "range", p.Queries*3, false, p)
		on := RecallVersioningNumber(trace.MSN(), dist, "range", p.Queries*3, true, p)
		if on < off {
			t.Fatalf("%v: versioned recall %v below non-versioned %v", dist, on, off)
		}
	}
}

func TestRecallVersioningTableRenders(t *testing.T) {
	p := quick()
	p.Queries = 10
	tb := RecallVersioning(trace.MSN(), p)
	if len(tb.Rows) != 12 { // 3 dists × 2 kinds × 2 versioning states
		t.Fatalf("table rows = %d, want 12", len(tb.Rows))
	}
}

func TestAblationsRun(t *testing.T) {
	p := quick()
	p.Queries = 15
	for _, tb := range []*Table{
		AblationLSIvsKMeans(p),
		AblationBloomSizing(p),
		AblationAdmissionThreshold(p),
		AblationAutoConfig(p),
		AblationReplicaDepth(p),
	} {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s produced no rows", tb.ID)
		}
	}
}

func TestAblationLSIBeatsRoundRobinSSE(t *testing.T) {
	p := quick()
	p.Queries = 10
	tb := AblationLSIvsKMeans(p)
	var lsiSSE, rrSSE float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "LSI semantic sort":
			lsiSSE = parseF(row[1])
		case "round-robin":
			rrSSE = parseF(row[1])
		}
	}
	if lsiSSE >= rrSSE {
		t.Fatalf("LSI SSE %v not below round-robin %v", lsiSSE, rrSSE)
	}
}
