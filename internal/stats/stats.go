// Package stats supplies the statistical substrate of the evaluation:
// deterministic random sources, the Uniform / Gauss / Zipf samplers used
// to synthesize complex queries (paper §5.1), lognormal file-size
// distributions, summary statistics, and the Recall measure (§5.4.2).
package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// NewRNG returns a deterministic PCG-backed random source for the given
// seed. All randomness in the reproduction flows from explicit seeds so
// every table and figure is reproducible run-to-run.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Distribution identifies one of the three query-coordinate distributions
// used in the paper's synthetic complex-query generator.
type Distribution int

const (
	// Uniform draws coordinates uniformly over the attribute range.
	Uniform Distribution = iota
	// Gauss draws coordinates from a normal centred mid-range with
	// σ = range/6, clamped to the range.
	Gauss
	// Zipf draws coordinates with Zipf-skewed preference toward the
	// dense (low) end of the attribute range, mirroring the skew of
	// real metadata attribute values.
	Zipf
)

// String returns the distribution name as used in the paper's tables.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "Uniform"
	case Gauss:
		return "Gauss"
	case Zipf:
		return "Zipf"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// Distributions lists the three distributions in the order the paper's
// tables report them.
var Distributions = []Distribution{Uniform, Gauss, Zipf}

// Sampler draws values in [lo, hi] under a given distribution.
type Sampler struct {
	dist Distribution
	rng  *rand.Rand
	zipf *ZipfGen
}

// NewSampler returns a sampler for dist backed by rng. The Zipf variant
// uses skew s=1.1 over 1024 buckets spread across the range, matching
// the heavy skew of file-system metadata reported in §1.1.
func NewSampler(dist Distribution, rng *rand.Rand) *Sampler {
	s := &Sampler{dist: dist, rng: rng}
	if dist == Zipf {
		s.zipf = NewZipfGen(rng, 1.1, 1024)
	}
	return s
}

// Sample draws one value in [lo, hi].
func (s *Sampler) Sample(lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	span := hi - lo
	if span == 0 {
		return lo
	}
	switch s.dist {
	case Gauss:
		v := lo + span/2 + s.rng.NormFloat64()*span/6
		return clamp(v, lo, hi)
	case Zipf:
		b := s.zipf.Next()
		frac := (float64(b) + s.rng.Float64()) / float64(s.zipf.N())
		return lo + frac*span
	default:
		return lo + s.rng.Float64()*span
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ZipfGen draws integers in [0, n) with P(k) ∝ 1/(k+1)^s using inverse
// transform sampling over the precomputed CDF. It is valid for any s>0
// (unlike stdlib rand.Zipf which requires s>1).
type ZipfGen struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipfGen builds a Zipf sampler over n buckets with skew s.
func NewZipfGen(rng *rand.Rand, s float64, n int) *ZipfGen {
	if n <= 0 {
		panic("stats: ZipfGen needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &ZipfGen{rng: rng, cdf: cdf}
}

// N returns the number of buckets.
func (z *ZipfGen) N() int { return len(z.cdf) }

// Next draws the next Zipf-distributed integer in [0, N()).
func (z *ZipfGen) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Lognormal draws a lognormal value with the given log-space mean and
// sigma — the standard model for file-size distributions.
func Lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// Recall computes |T ∩ A| / |T| as defined in §5.4.2, where truth and
// answer are sets of item identifiers. Recall of an empty truth set is 1
// (the query is vacuously answered).
func Recall(truth, answer []uint64) float64 {
	if len(truth) == 0 {
		return 1
	}
	in := make(map[uint64]struct{}, len(answer))
	for _, a := range answer {
		in[a] = struct{}{}
	}
	hit := 0
	for _, t := range truth {
		if _, ok := in[t]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// Summary aggregates a series of float64 observations.
type Summary struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations recorded.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Min returns the smallest observation, or 0 when empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 when empty.
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the population standard deviation, or 0 when n < 2.
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Histogram counts observations into fixed integer buckets; bucket i
// counts values equal to i, with values ≥ len(counts)-1 clamped into the
// final bucket. It is used for the hop-distance distribution of Fig. 8.
type Histogram struct {
	counts []int
	total  int
}

// NewHistogram returns a histogram with n buckets (n ≥ 1).
func NewHistogram(n int) *Histogram {
	if n < 1 {
		panic("stats: histogram needs at least one bucket")
	}
	return &Histogram{counts: make([]int, n)}
}

// Add records integer observation v, clamping negatives to 0 and
// overflows into the last bucket.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		v = len(h.counts) - 1
	}
	h.counts[v]++
	h.total++
}

// Count returns the number of observations in bucket i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns bucket i's share of all observations, or 0 when empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}
