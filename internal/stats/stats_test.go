package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDistributionString(t *testing.T) {
	cases := map[Distribution]string{Uniform: "Uniform", Gauss: "Gauss", Zipf: "Zipf"}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("String() = %q, want %q", d.String(), want)
		}
	}
	if Distribution(9).String() != "Distribution(9)" {
		t.Errorf("unknown distribution String() = %q", Distribution(9).String())
	}
}

func TestSamplerInRange(t *testing.T) {
	for _, d := range Distributions {
		s := NewSampler(d, NewRNG(uint64(d)+1))
		for i := 0; i < 2000; i++ {
			v := s.Sample(10, 20)
			if v < 10 || v > 20 {
				t.Fatalf("%v sample %v outside [10,20]", d, v)
			}
		}
	}
}

func TestSamplerDegenerateRange(t *testing.T) {
	s := NewSampler(Uniform, NewRNG(1))
	if v := s.Sample(5, 5); v != 5 {
		t.Fatalf("Sample(5,5) = %v, want 5", v)
	}
	// Reversed bounds should be tolerated.
	v := s.Sample(20, 10)
	if v < 10 || v > 20 {
		t.Fatalf("reversed-bounds sample %v outside [10,20]", v)
	}
}

func TestGaussConcentratesMidRange(t *testing.T) {
	s := NewSampler(Gauss, NewRNG(7))
	var sum Summary
	for i := 0; i < 5000; i++ {
		sum.Add(s.Sample(0, 100))
	}
	if m := sum.Mean(); math.Abs(m-50) > 3 {
		t.Fatalf("Gauss mean = %v, want ≈50", m)
	}
	if sd := sum.StdDev(); sd > 25 {
		t.Fatalf("Gauss stddev = %v, want well under uniform's ~28.9", sd)
	}
}

func TestZipfSkewsLow(t *testing.T) {
	s := NewSampler(Zipf, NewRNG(9))
	low := 0
	n := 5000
	for i := 0; i < n; i++ {
		if s.Sample(0, 100) < 20 {
			low++
		}
	}
	// Under Zipf skew far more than 20% of the mass is in the low fifth.
	if frac := float64(low) / float64(n); frac < 0.5 {
		t.Fatalf("Zipf low-fifth fraction = %v, want > 0.5", frac)
	}
}

func TestZipfGenMonotoneCDF(t *testing.T) {
	z := NewZipfGen(NewRNG(3), 1.0, 64)
	counts := make([]int, 64)
	for i := 0; i < 20000; i++ {
		k := z.Next()
		if k < 0 || k >= 64 {
			t.Fatalf("Zipf index %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[32] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[32]=%d", counts[0], counts[32])
	}
}

func TestZipfGenPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipfGen(.., 0) did not panic")
		}
	}()
	NewZipfGen(NewRNG(1), 1.0, 0)
}

func TestLognormalPositive(t *testing.T) {
	rng := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if v := Lognormal(rng, 10, 2); v <= 0 {
			t.Fatalf("Lognormal produced non-positive %v", v)
		}
	}
}

func TestRecall(t *testing.T) {
	cases := []struct {
		truth, answer []uint64
		want          float64
	}{
		{nil, nil, 1},
		{nil, []uint64{1}, 1},
		{[]uint64{1, 2, 3, 4}, []uint64{1, 2}, 0.5},
		{[]uint64{1, 2}, []uint64{1, 2, 3, 4}, 1},
		{[]uint64{5}, []uint64{6}, 0},
		{[]uint64{1, 2, 3}, []uint64{3, 2, 1}, 1},
	}
	for i, c := range cases {
		if got := Recall(c.truth, c.answer); got != c.want {
			t.Errorf("case %d: Recall = %v, want %v", i, got, c.want)
		}
	}
}

func TestRecallPropertyBounds(t *testing.T) {
	f := func(truth, answer []uint64) bool {
		r := Recall(truth, answer)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecallPropertySupersetAnswer(t *testing.T) {
	// An answer that contains all of truth has recall exactly 1.
	f := func(truth []uint64, extra []uint64) bool {
		answer := append(append([]uint64{}, truth...), extra...)
		return Recall(truth, answer) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("empty summary should be zero-valued")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if math.Abs(s.StdDev()-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", s.StdDev())
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %v, want 40", s.Sum())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(3)
	for _, v := range []int{0, 0, 1, 2, 5, -1} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	if h.Count(0) != 3 { // two zeros + clamped -1
		t.Fatalf("Count(0) = %d, want 3", h.Count(0))
	}
	if h.Count(2) != 2 { // one 2 + clamped 5
		t.Fatalf("Count(2) = %d, want 2", h.Count(2))
	}
	if got := h.Fraction(1); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("Fraction(1) = %v, want 1/6", got)
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(2)
	if h.Fraction(0) != 0 {
		t.Fatal("empty histogram Fraction should be 0")
	}
}

func TestHistogramPanicsOnZeroBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(0) did not panic")
		}
	}()
	NewHistogram(0)
}
