package server

import (
	"net/http"
	"testing"

	smartstore "repro"
	"repro/internal/metadata"
)

// TestUnifiedQueryRecordsInline covers the projection acceptance
// criterion: one POST /v1/query with include_records answers with full
// file records inline, no follow-up per-id lookups needed.
func TestUnifiedQueryRecordsInline(t *testing.T) {
	ts, _, set := newTestServer(t, Options{})
	want := set.Files[21]

	var resp QueryResponse
	req := QueryRequest{WireQuery: WireQuery{Kind: "point", Path: want.Path, IncludeRecords: true}}
	if code := postJSON(t, ts.URL+"/v1/query", req, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Kind != "point" || resp.Count == 0 {
		t.Fatalf("response %+v", resp)
	}
	if len(resp.Records) != len(resp.IDs) {
		t.Fatalf("%d records for %d ids", len(resp.Records), len(resp.IDs))
	}
	for i, rec := range resp.Records {
		if rec.ID != resp.IDs[i] {
			t.Fatalf("record[%d] id %d != ids[%d] %d", i, rec.ID, i, resp.IDs[i])
		}
		if rec.Path != want.Path {
			t.Fatalf("record path %q want %q", rec.Path, want.Path)
		}
		if len(rec.Attrs) != int(metadata.NumAttrs) {
			t.Fatalf("record carries %d attrs, want %d", len(rec.Attrs), metadata.NumAttrs)
		}
	}

	// Range with records and a limit: records follow the truncated ids.
	var rr QueryResponse
	rangeReq := QueryRequest{WireQuery: WireQuery{
		Kind: "range", Attrs: defaultNames(),
		Lo: []float64{0, 0, 0}, Hi: []float64{1e9, 1e12, 1e12},
		Limit: 5, IncludeRecords: true,
	}}
	if code := postJSON(t, ts.URL+"/v1/query", rangeReq, &rr); code != 200 {
		t.Fatalf("range status %d", code)
	}
	if len(rr.IDs) != 5 || !rr.Truncated {
		t.Fatalf("limited range: %d ids truncated=%v", len(rr.IDs), rr.Truncated)
	}
	if len(rr.Records) != 5 {
		t.Fatalf("limited range projected %d records", len(rr.Records))
	}
}

// TestUnifiedBatchOneAdmissionTicket covers the batch acceptance
// criterion: a mixed point/range/topk batch executes concurrently under
// the single admission ticket its request holds — with one worker and
// no queue, per-member admission would reject or deadlock.
func TestUnifiedBatchOneAdmissionTicket(t *testing.T) {
	ts, _, set := newTestServer(t, Options{Workers: 1, MaxQueue: 0, CacheEntries: -1})
	anchor := set.Files[5]

	req := QueryRequest{Queries: []WireQuery{
		{Kind: "point", Path: anchor.Path},
		{Kind: "range", Attrs: defaultNames(),
			Lo: []float64{0, 0, 0}, Hi: []float64{1e9, 1e12, 1e12}},
		{Kind: "topk", Attrs: defaultNames(), K: 4,
			Point: []float64{
				anchor.Attrs[metadata.AttrMTime],
				anchor.Attrs[metadata.AttrReadBytes],
				anchor.Attrs[metadata.AttrWriteBytes],
			}},
		{Kind: "point", Path: anchor.Path, IncludeRecords: true},
	}}
	var resp BatchQueryResponse
	if code := postJSON(t, ts.URL+"/v1/query", req, &resp); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("%d results for 4 queries", len(resp.Results))
	}
	// Results arrive in request order with no per-member failures.
	wantKinds := []string{"point", "range", "topk", "point"}
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("results[%d] failed: %s", i, r.Error)
		}
		if r.Kind != wantKinds[i] {
			t.Fatalf("results[%d] kind %q want %q", i, r.Kind, wantKinds[i])
		}
	}
	if resp.Results[2].Count != 4 {
		t.Fatalf("topk member answered %d ids, want 4", resp.Results[2].Count)
	}
	if len(resp.Results[3].Records) != len(resp.Results[3].IDs) {
		t.Fatal("per-member include_records not honoured in batch")
	}

	// A batch with any malformed member is rejected wholesale.
	bad := QueryRequest{Queries: []WireQuery{
		{Kind: "point", Path: anchor.Path},
		{Kind: "topk", Attrs: defaultNames(), Point: []float64{1, 2, 3}, K: 0},
	}}
	if code := postJSON(t, ts.URL+"/v1/query", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed batch member: status %d want 400", code)
	}
}

// TestWireTopKValidation is the regression test for the daemon panic
// path: k = 0 or negative must be rejected at the boundary with 400 —
// on the unified endpoint and on the legacy shim — never reaching the
// library's panicking constructor.
func TestWireTopKValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	for _, k := range []int{0, -3} {
		uni := QueryRequest{WireQuery: WireQuery{
			Kind: "topk", Attrs: []string{"mtime"}, Point: []float64{0}, K: k}}
		if code := postJSON(t, ts.URL+"/v1/query", uni, nil); code != http.StatusBadRequest {
			t.Errorf("unified topk k=%d: status %d want 400", k, code)
		}
		legacy := TopKRequest{Attrs: []string{"mtime"}, Point: []float64{0}, K: k}
		if code := postJSON(t, ts.URL+"/v1/query/topk", legacy, nil); code != http.StatusBadRequest {
			t.Errorf("legacy topk k=%d: status %d want 400", k, code)
		}
	}
	// Negative limit and unknown mode are boundary-rejected too.
	if code := postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: WireQuery{
		Kind: "point", Path: "/x", Limit: -1}}, nil); code != http.StatusBadRequest {
		t.Error("negative limit accepted")
	}
	if code := postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: WireQuery{
		Kind: "point", Path: "/x", Mode: "sideways"}}, nil); code != http.StatusBadRequest {
		t.Error("unknown mode accepted")
	}
	if code := postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: WireQuery{
		Kind: "warp", Path: "/x"}}, nil); code != http.StatusBadRequest {
		t.Error("unknown kind accepted")
	}
}

// TestLegacyShimsShareUnifiedPath pins the compatibility contract: the
// three legacy endpoints answer exactly like the unified endpoint (and
// share its cache — a legacy query warms the unified one).
func TestLegacyShimsShareUnifiedPath(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{CacheEntries: 64})
	legacyReq := RangeRequest{Attrs: defaultNames(),
		Lo: []float64{0, 0, 0}, Hi: []float64{1e9, 1e12, 1e12}}

	var legacy QueryResponse
	if code := postJSON(t, ts.URL+"/v1/query/range", legacyReq, &legacy); code != 200 {
		t.Fatalf("legacy status %d", code)
	}
	uniReq := QueryRequest{WireQuery: WireQuery{
		Kind: "range", Attrs: legacyReq.Attrs, Lo: legacyReq.Lo, Hi: legacyReq.Hi}}
	var uni QueryResponse
	if code := postJSON(t, ts.URL+"/v1/query", uniReq, &uni); code != 200 {
		t.Fatalf("unified status %d", code)
	}
	if len(uni.IDs) != len(legacy.IDs) {
		t.Fatalf("unified %d ids, legacy %d", len(uni.IDs), len(legacy.IDs))
	}
	if !uni.Cached {
		t.Fatal("legacy query did not warm the unified cache entry")
	}
}

// TestCacheOptionAwareness covers the cache-correctness satellite: the
// same dimensions with a different mode, limit, or projection must not
// collide on one entry, and an epoch bump invalidates batch members
// like singles.
func TestCacheOptionAwareness(t *testing.T) {
	ts, store, set := newTestServer(t, Options{CacheEntries: 64})
	dims := WireQuery{Kind: "range", Attrs: defaultNames(),
		Lo: []float64{0, 0, 0}, Hi: []float64{1e9, 1e12, 1e12}}

	// Warm the limited variant first: a colliding key would serve the
	// 5-id truncated entry to the unlimited query.
	limited := dims
	limited.Limit = 5
	var lim QueryResponse
	postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: limited}, &lim)
	if len(lim.IDs) != 5 || !lim.Truncated {
		t.Fatalf("limited warmup: %d ids truncated=%v", len(lim.IDs), lim.Truncated)
	}
	var full QueryResponse
	postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: dims}, &full)
	if full.Cached {
		t.Fatal("unlimited query collided with limited cache entry")
	}
	if len(full.IDs) <= 5 {
		t.Fatalf("unlimited query answered %d ids", len(full.IDs))
	}

	// Projection variant must not serve the record-less entry. (A limit
	// keeps the projected answer under the record-caching bound.)
	projected := dims
	projected.IncludeRecords = true
	projected.Limit = 50
	var proj QueryResponse
	postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: projected}, &proj)
	if proj.Cached {
		t.Fatal("projected query collided with id-only cache entry")
	}
	if len(proj.Records) != len(proj.IDs) {
		t.Fatalf("projection lost: %d records for %d ids", len(proj.Records), len(proj.IDs))
	}

	// Mode variant keys separately from the store-default entry.
	online := dims
	online.Mode = "online"
	var on QueryResponse
	postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: online}, &on)
	if on.Cached {
		t.Fatal("online query collided with default-mode cache entry")
	}
	// An explicit mode equal to the store default shares its entry.
	explicitDefault := dims
	explicitDefault.Mode = "offline"
	if store.Mode() != smartstore.OffLine {
		t.Fatal("test assumes an off-line default store")
	}
	var expl QueryResponse
	postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: explicitDefault}, &expl)
	if !expl.Cached {
		t.Fatal("explicit store-default mode missed the default entry")
	}

	// Epoch invalidation holds across batch queries: a mutation between
	// two identical batches makes every member re-execute.
	batch := QueryRequest{Queries: []WireQuery{dims, projected}}
	var warm BatchQueryResponse
	postJSON(t, ts.URL+"/v1/query", batch, &warm)
	for i, r := range warm.Results {
		if !r.Cached {
			t.Fatalf("batch warmup member %d not cached", i)
		}
	}
	rec := RecordFromFile(set.Files[0])
	rec.ID = 0
	rec.Path = "/cache/epoch-batch.dat"
	var ins InsertResponse
	postJSON(t, ts.URL+"/v1/insert", InsertRequest{Files: []FileRecord{rec}}, &ins)

	var cold BatchQueryResponse
	postJSON(t, ts.URL+"/v1/query", batch, &cold)
	for i, r := range cold.Results {
		if r.Cached {
			t.Fatalf("batch member %d served stale cache after epoch bump", i)
		}
	}
}
