package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	smartstore "repro"
	"repro/internal/metadata"
)

// newTestStore builds a small deterministic store plus its trace set.
func newTestStore(t testing.TB) (*smartstore.Store, *smartstore.TraceSet) {
	t.Helper()
	set, err := smartstore.GenerateTrace("MSN", 1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return store, set
}

func newTestServer(t testing.TB, opts Options) (*httptest.Server, *smartstore.Store, *smartstore.TraceSet) {
	t.Helper()
	store, set := newTestStore(t)
	ts := httptest.NewServer(New(store, opts))
	t.Cleanup(ts.Close)
	return ts, store, set
}

// postJSON round-trips one request and decodes into out, returning the
// status code.
func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func defaultNames() []string {
	return []string{"mtime", "read_bytes", "write_bytes"}
}

func TestPointEndpoint(t *testing.T) {
	ts, _, set := newTestServer(t, Options{})
	want := set.Files[7]
	var resp QueryResponse
	if code := postJSON(t, ts.URL+"/v1/query/point", PointRequest{Path: want.Path}, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	found := false
	for _, id := range resp.IDs {
		if id == want.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("point query for %q: ids %v missing %d", want.Path, resp.IDs, want.ID)
	}
	if resp.Report.Messages == 0 {
		t.Fatal("point query reported zero messages")
	}
}

func TestRangeEndpointMatchesDirectQuery(t *testing.T) {
	ts, store, _ := newTestServer(t, Options{CacheEntries: -1})
	attrs := []metadata.Attr{metadata.AttrMTime, metadata.AttrReadBytes}
	lo := []float64{0, 0}
	hi := []float64{1e9, 1e12}

	var resp QueryResponse
	if code := postJSON(t, ts.URL+"/v1/query/range",
		RangeRequest{Attrs: []string{"mtime", "read_bytes"}, Lo: lo, Hi: hi}, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	direct, _ := store.RangeQuery(attrs, lo, hi)
	if len(resp.IDs) != len(direct) {
		t.Fatalf("served %d ids, direct query %d", len(resp.IDs), len(direct))
	}
	if resp.Count != len(resp.IDs) {
		t.Fatalf("count %d != len(ids) %d", resp.Count, len(resp.IDs))
	}
}

func TestTopKEndpoint(t *testing.T) {
	ts, _, set := newTestServer(t, Options{})
	anchor := set.Files[11]
	req := TopKRequest{
		Attrs: defaultNames(),
		Point: []float64{
			anchor.Attrs[metadata.AttrMTime],
			anchor.Attrs[metadata.AttrReadBytes],
			anchor.Attrs[metadata.AttrWriteBytes],
		},
		K: 8,
	}
	var resp QueryResponse
	if code := postJSON(t, ts.URL+"/v1/query/topk", req, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.IDs) != 8 {
		t.Fatalf("top-8 returned %d ids", len(resp.IDs))
	}
}

func TestInsertDeleteModifyRoundTrip(t *testing.T) {
	ts, store, set := newTestServer(t, Options{})
	src := set.Files[3]
	maxBefore := store.MaxFileID()

	// Batch insert: one explicit id, one server-assigned.
	rec := RecordFromFile(src)
	rec.ID = 0
	rec.Path = "/served/auto.dat"
	explicit := RecordFromFile(src)
	explicit.ID = 999_999
	explicit.Path = "/served/explicit.dat"
	var ins InsertResponse
	if code := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Files: []FileRecord{rec, explicit}}, &ins); code != 200 {
		t.Fatalf("insert status %d", code)
	}
	if ins.Inserted != 2 || len(ins.IDs) != 2 {
		t.Fatalf("insert response %+v", ins)
	}
	if ins.IDs[0] <= maxBefore {
		t.Fatalf("auto id %d not allocated above pre-insert max %d", ins.IDs[0], maxBefore)
	}
	if ins.IDs[1] != 999_999 {
		t.Fatalf("explicit id not honoured: %d", ins.IDs[1])
	}
	if ins.Epoch == 0 {
		t.Fatal("insert did not bump epoch")
	}

	// Auto-allocated ids must stay above any explicit id seen so far —
	// a later id-less insert cannot collide with 999_999.
	later := RecordFromFile(src)
	later.ID = 0
	later.Path = "/served/after-explicit.dat"
	var ins2 InsertResponse
	if code := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Files: []FileRecord{later}}, &ins2); code != 200 {
		t.Fatalf("second insert status %d", code)
	}
	if ins2.IDs[0] <= 999_999 {
		t.Fatalf("auto id %d collides with explicit id range", ins2.IDs[0])
	}

	// Inserted files become point-query visible after propagation.
	var fl FlushResponse
	if code := postJSON(t, ts.URL+"/v1/flush", struct{}{}, &fl); code != 200 {
		t.Fatalf("flush status %d", code)
	}
	var pt QueryResponse
	if code := postJSON(t, ts.URL+"/v1/query/point", PointRequest{Path: "/served/auto.dat"}, &pt); code != 200 {
		t.Fatalf("point status %d", code)
	}
	if len(pt.IDs) != 1 || pt.IDs[0] != ins.IDs[0] {
		t.Fatalf("point after insert+flush: %v want [%d]", pt.IDs, ins.IDs[0])
	}

	// Modify the explicit file with a partial attrs map: only the named
	// attribute changes, the rest of the vector keeps its stored values.
	var mod MutateResponse
	partial := FileRecord{ID: 999_999, Attrs: map[string]float64{"size": 1234}}
	if code := postJSON(t, ts.URL+"/v1/modify", ModifyRequest{File: partial}, &mod); code != 200 {
		t.Fatalf("modify status %d", code)
	}
	if !mod.Found {
		t.Fatal("modify did not find inserted file")
	}
	got, ok := store.FileByID(999_999)
	if !ok {
		t.Fatal("modified file vanished")
	}
	if got.Attrs[metadata.AttrSize] != 1234 {
		t.Fatalf("modify did not apply size: %v", got.Attrs[metadata.AttrSize])
	}
	if got.Attrs[metadata.AttrMTime] != src.Attrs[metadata.AttrMTime] {
		t.Fatalf("partial modify zeroed mtime: %v want %v",
			got.Attrs[metadata.AttrMTime], src.Attrs[metadata.AttrMTime])
	}

	// Delete it; a second delete reports found=false.
	var del MutateResponse
	if code := postJSON(t, ts.URL+"/v1/delete", DeleteRequest{ID: 999_999}, &del); code != 200 {
		t.Fatalf("delete status %d", code)
	}
	if !del.Found {
		t.Fatal("delete did not find file")
	}
	if code := postJSON(t, ts.URL+"/v1/delete", DeleteRequest{ID: 999_999}, &del); code != 200 {
		t.Fatalf("re-delete status %d", code)
	}
	if del.Found {
		t.Fatal("second delete of same id reported found")
	}
}

func TestCacheHitAndInvalidation(t *testing.T) {
	ts, _, set := newTestServer(t, Options{CacheEntries: 64})
	req := RangeRequest{Attrs: defaultNames(),
		Lo: []float64{0, 0, 0}, Hi: []float64{1e9, 1e12, 1e12}}

	var first, second, third QueryResponse
	postJSON(t, ts.URL+"/v1/query/range", req, &first)
	if first.Cached {
		t.Fatal("first execution reported cached")
	}
	postJSON(t, ts.URL+"/v1/query/range", req, &second)
	if !second.Cached {
		t.Fatal("repeat query not served from cache")
	}
	if len(second.IDs) != len(first.IDs) {
		t.Fatalf("cached result differs: %d vs %d ids", len(second.IDs), len(first.IDs))
	}

	// Any mutation bumps the epoch and invalidates.
	rec := RecordFromFile(set.Files[0])
	rec.ID = 0
	rec.Path = "/cache/invalidate.dat"
	var ins InsertResponse
	postJSON(t, ts.URL+"/v1/insert", InsertRequest{Files: []FileRecord{rec}}, &ins)

	postJSON(t, ts.URL+"/v1/query/range", req, &third)
	if third.Cached {
		t.Fatal("query after mutation still served from cache")
	}

	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	c := st.Server.Cache
	if c.Hits < 1 || c.Invalidations < 1 {
		t.Fatalf("cache stats %+v: want ≥1 hit and ≥1 invalidation", c)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, store, _ := newTestServer(t, Options{})
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	direct := store.Stats()
	if st.Store.Files != direct.Files || st.Store.Units != direct.Units {
		t.Fatalf("stats mismatch: wire %+v direct %+v", st.Store, direct)
	}
	if st.Server.Workers <= 0 {
		t.Fatalf("worker pool not reported: %+v", st.Server)
	}
	if st.WAL != nil {
		t.Fatalf("in-memory store reported WAL stats: %+v", st.WAL)
	}
}

// TestStatsEndpointWALSection: a durable store's /v1/stats carries the
// segment inventory and group-commit counters.
func TestStatsEndpointWALSection(t *testing.T) {
	set, err := smartstore.GenerateTrace("MSN", 400, 42)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{
		Units: 8, Shards: 2, Seed: 42,
		DataDir:    t.TempDir(),
		Durability: smartstore.DurabilityAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ts := httptest.NewServer(New(store, Options{}))
	t.Cleanup(ts.Close)

	var ins InsertResponse
	if code := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Files: []FileRecord{
		{Path: "/wal/a.dat", Attrs: map[string]float64{"size": 4096, "mtime": 41000}},
	}}, &ins); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.WAL == nil {
		t.Fatal("durable store reported no WAL stats")
	}
	if st.WAL.Segments < 2 || st.WAL.Bytes == 0 {
		t.Fatalf("implausible WAL inventory: %+v", st.WAL)
	}
	if st.WAL.GroupCommits == 0 || st.WAL.GroupedRecords == 0 {
		t.Fatalf("group-commit counters not surfaced: %+v", st.WAL)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	cases := []struct {
		name string
		path string
		body any
	}{
		{"unknown attr", "/v1/query/range",
			RangeRequest{Attrs: []string{"nonsense"}, Lo: []float64{0}, Hi: []float64{1}}},
		{"dim mismatch", "/v1/query/range",
			RangeRequest{Attrs: []string{"mtime"}, Lo: []float64{0, 1}, Hi: []float64{1}}},
		{"bad k", "/v1/query/topk",
			TopKRequest{Attrs: []string{"mtime"}, Point: []float64{0}, K: 0}},
		{"empty point", "/v1/query/point", PointRequest{}},
		{"empty insert", "/v1/insert", InsertRequest{}},
		{"insert missing path", "/v1/insert",
			InsertRequest{Files: []FileRecord{{Attrs: map[string]float64{"size": 1}}}}},
		{"insert duplicate of stored id", "/v1/insert",
			InsertRequest{Files: []FileRecord{{ID: 5, Path: "/dup/stored.dat"}}}},
		{"insert duplicate within batch", "/v1/insert",
			InsertRequest{Files: []FileRecord{
				{ID: 777_777, Path: "/dup/a.dat"}, {ID: 777_777, Path: "/dup/b.dat"}}}},
		{"delete missing id", "/v1/delete", DeleteRequest{}},
	}
	for _, tc := range cases {
		if code := postJSON(t, ts.URL+tc.path, tc.body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}

	// Wrong method on a POST route.
	resp, err := http.Get(ts.URL + "/v1/query/point")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestAdmissionShedsLoadWhenSaturated(t *testing.T) {
	store, _ := newTestStore(t)
	s := New(store, Options{Workers: 1, MaxQueue: 1})

	// Occupy the single worker slot and fill the wait queue, then the
	// next admission must be rejected rather than queued. inflight
	// counts executing + waiting, so Workers+MaxQueue saturates it.
	s.sem <- struct{}{}
	s.inflight.Add(int64(s.opts.Workers + s.opts.MaxQueue))
	req := httptest.NewRequest("POST", "/v1/query/point", nil)
	if _, err := s.admit(req); err != errBusy {
		t.Fatalf("saturated admit: err %v, want errBusy", err)
	}
	s.inflight.Add(-int64(s.opts.Workers + s.opts.MaxQueue))

	// A queued request whose client goes away is released with the
	// context error, not left blocked.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.admit(req.WithContext(ctx)); err != context.Canceled {
		t.Fatalf("cancelled admit: err %v, want context.Canceled", err)
	}
	<-s.sem

	// With the slot free again, admission succeeds.
	release, err := s.admit(httptest.NewRequest("POST", "/v1/query/point", nil))
	if err != nil {
		t.Fatalf("free admit: %v", err)
	}
	release()
}

func TestQueryCacheLRUAndEpoch(t *testing.T) {
	c := newQueryCache(2)
	resp := QueryResponse{IDs: []uint64{1}, Count: 1, Report: Report{Messages: 3}}
	all := []int{0, 1}
	epochs := []uint64{1, 1}
	c.put("a", all, epochs, resp)
	c.put("b", all, epochs, resp)

	got, ok := c.get("a", epochs)
	if !ok {
		t.Fatal("a missing")
	}
	if !got.Cached || got.Count != 1 || got.Report.Messages != 3 {
		t.Fatalf("cached response mangled: %+v", got)
	}
	// a is now most recent; inserting c evicts b.
	c.put("c", all, epochs, resp)
	if _, ok := c.get("b", epochs); ok {
		t.Fatal("b not evicted as LRU")
	}
	if _, ok := c.get("a", epochs); !ok {
		t.Fatal("a evicted despite being MRU")
	}

	// A target shard's epoch moving invalidates.
	if _, ok := c.get("a", []uint64{1, 2}); ok {
		t.Fatal("stale-epoch entry served")
	}
	st := c.stats()
	if st.Invalidations != 1 || st.Evictions != 1 {
		t.Fatalf("cache stats %+v", st)
	}

	// A nil cache (caching disabled) is inert.
	var disabled *queryCache
	disabled.put("x", all, epochs, resp)
	if _, ok := disabled.get("x", epochs); ok {
		t.Fatal("nil cache returned a hit")
	}
}

// TestQueryCachePerShardInvalidation is the ROADMAP follow-up contract:
// an entry keyed on a target subset of shards survives writes that
// land on shards outside that subset.
func TestQueryCachePerShardInvalidation(t *testing.T) {
	c := newQueryCache(4)
	resp := QueryResponse{IDs: []uint64{9}, Count: 1}
	// Entry targeting only shard 0 of a 4-shard deployment.
	c.put("hot", []int{0}, []uint64{5, 7, 2, 9}, resp)

	// Writes on shards 1..3 move their epochs; shard 0 untouched.
	if _, ok := c.get("hot", []uint64{5, 8, 3, 11}); !ok {
		t.Fatal("entry invalidated by writes on non-target shards")
	}
	// A write on shard 0 invalidates.
	if _, ok := c.get("hot", []uint64{6, 8, 3, 11}); ok {
		t.Fatal("entry survived a write on its target shard")
	}

	// A multi-target entry invalidates on any of its targets.
	c.put("pair", []int{1, 3}, []uint64{5, 7, 2, 9}, resp)
	if _, ok := c.get("pair", []uint64{99, 7, 88, 9}); !ok {
		t.Fatal("pair entry invalidated by non-target shards")
	}
	if _, ok := c.get("pair", []uint64{5, 7, 2, 10}); ok {
		t.Fatal("pair entry survived a target-shard write")
	}

	// An empty target set is never cached (it could never invalidate).
	c.put("none", nil, []uint64{1}, resp)
	if _, ok := c.get("none", []uint64{1}); ok {
		t.Fatal("target-less entry cached")
	}
	// A target outside the epoch vector fails closed on lookup.
	c.put("wide", []int{3}, []uint64{1, 1, 1, 1}, resp)
	if _, ok := c.get("wide", []uint64{1, 1}); ok {
		t.Fatal("entry with out-of-range target served")
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	rq := func(attrs []smartstore.Attr, lo, hi []float64) smartstore.Query {
		return smartstore.NewRangeQuery(attrs, lo, hi)
	}
	a := queryKey(rq([]smartstore.Attr{metadata.AttrMTime, metadata.AttrSize},
		[]float64{1, 3}, []float64{2, 4}), smartstore.ModeOffline)
	b := queryKey(rq([]smartstore.Attr{metadata.AttrSize, metadata.AttrMTime},
		[]float64{3, 1}, []float64{4, 2}), smartstore.ModeOffline)
	if a != b {
		t.Fatalf("permuted range dims key differently:\n%s\n%s", a, b)
	}
	k1 := queryKey(smartstore.NewTopKQuery([]smartstore.Attr{metadata.AttrSize, metadata.AttrMTime}, []float64{5, 6}, 3), smartstore.ModeOffline)
	k2 := queryKey(smartstore.NewTopKQuery([]smartstore.Attr{metadata.AttrMTime, metadata.AttrSize}, []float64{6, 5}, 3), smartstore.ModeOffline)
	if k1 != k2 {
		t.Fatalf("permuted topk dims key differently:\n%s\n%s", k1, k2)
	}
	if queryKey(smartstore.NewTopKQuery([]smartstore.Attr{metadata.AttrSize}, []float64{5}, 3), smartstore.ModeOffline) ==
		queryKey(smartstore.NewTopKQuery([]smartstore.Attr{metadata.AttrSize}, []float64{5}, 4), smartstore.ModeOffline) {
		t.Fatal("k not part of topk key")
	}

	// Options that change the answer's content must change the key:
	// execution mode, limit, and record projection each key separately.
	base := rq([]smartstore.Attr{metadata.AttrMTime}, []float64{0}, []float64{1})
	offline := queryKey(base, smartstore.ModeOffline)
	online := queryKey(base, smartstore.ModeOnline)
	if offline == online {
		t.Fatal("mode not part of key")
	}
	limited := base.WithOptions(smartstore.QueryOptions{Limit: 5})
	if queryKey(limited, smartstore.ModeOffline) == offline {
		t.Fatal("limit not part of key")
	}
	projected := base.WithOptions(smartstore.QueryOptions{IncludeRecords: true})
	if queryKey(projected, smartstore.ModeOffline) == offline {
		t.Fatal("include_records not part of key")
	}
}

// TestServedCachePerShardOverWire drives the per-shard invalidation
// contract end to end: a cached off-line top-k (which targets a strict
// subset of a 4-shard store) must survive wire inserts that land on
// shards outside its target set, and invalidate when one lands inside.
func TestServedCachePerShardOverWire(t *testing.T) {
	set, err := smartstore.GenerateTrace("MSN", 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 16, Shards: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(store, Options{}))
	defer ts.Close()

	wq := map[string]any{
		"kind": "topk", "attrs": defaultNames(),
		"point": []float64{40000, 3e7, 6e7}, "k": 5, "mode": "offline",
	}
	// A traced first execution reveals the engine's target shard set.
	body, _ := json.Marshal(wq)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "1")
	hres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var traced QueryResponse
	if err := json.NewDecoder(hres.Body).Decode(&traced); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if traced.Trace == nil || len(traced.Trace.Shards) == 0 {
		t.Fatalf("traced query carried no shard breakdown: %+v", traced.Trace)
	}
	targets := map[int]bool{}
	for _, sh := range traced.Trace.Shards {
		targets[sh.Shard] = true
	}
	if len(targets) >= 4 {
		t.Fatalf("off-line top-k targeted every shard (%v); the survival case needs a strict subset", targets)
	}

	query := func() QueryResponse {
		var resp QueryResponse
		if code := postJSON(t, ts.URL+"/v1/query", wq, &resp); code != http.StatusOK {
			t.Fatalf("query answered %d", code)
		}
		return resp
	}
	if !query().Cached {
		t.Fatal("second execution not served from cache")
	}

	shardEpochs := func() []uint64 {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(st.Store.PerShard))
		for i, p := range st.Store.PerShard {
			out[i] = p.Epoch
		}
		return out
	}

	prev := shardEpochs()
	survived, invalidated := 0, 0
	for i := 0; i < 40 && (survived == 0 || invalidated == 0); i++ {
		src := set.Files[(i*31)%len(set.Files)]
		ins := map[string]any{"files": []map[string]any{{
			"path": fmt.Sprintf("/cacheprobe/%d.dat", i),
			"attrs": map[string]float64{
				"mtime":       src.Attrs[metadata.AttrMTime],
				"read_bytes":  src.Attrs[metadata.AttrReadBytes],
				"write_bytes": src.Attrs[metadata.AttrWriteBytes],
			},
		}}}
		if code := postJSON(t, ts.URL+"/v1/insert", ins, nil); code != http.StatusOK {
			t.Fatalf("probe insert answered %d", code)
		}
		cur := shardEpochs()
		mutated := -1
		for s := range cur {
			if cur[s] != prev[s] {
				mutated = s
			}
		}
		prev = cur
		if mutated < 0 {
			t.Fatal("insert advanced no shard epoch")
		}
		got := query()
		if targets[mutated] {
			if got.Cached {
				t.Fatalf("write on target shard %d left the entry cached", mutated)
			}
			invalidated++
			// The re-execution just re-primed the cache with fresh epochs.
		} else {
			if !got.Cached {
				t.Fatalf("write on non-target shard %d invalidated the entry", mutated)
			}
			survived++
		}
	}
	if survived == 0 || invalidated == 0 {
		t.Fatalf("probe placement never exercised both cases: survived=%d invalidated=%d", survived, invalidated)
	}
}
