// Wire format of the smartstored HTTP/JSON metadata API, shared by the
// server handlers and the typed client (internal/client). Attribute
// dimensions travel as their short names ("mtime", "read_bytes", ...);
// values are raw attribute units, exactly like the library API. See
// DESIGN.md §5 for the endpoint reference with curl examples.
package server

import (
	"fmt"

	smartstore "repro"
	"repro/internal/metadata"
)

// Report is the wire form of smartstore.QueryReport: the virtual-time
// accounting of one operation.
type Report struct {
	LatencySec        float64 `json:"latency_sec"`
	Messages          int64   `json:"messages"`
	Hops              int     `json:"hops"`
	UnitsSearched     int     `json:"units_searched"`
	VersionChecked    int     `json:"version_checked,omitempty"`
	VersionLatencySec float64 `json:"version_latency_sec,omitempty"`
}

func wireReport(r smartstore.QueryReport) Report {
	return Report{
		LatencySec:        r.Latency,
		Messages:          r.Messages,
		Hops:              r.Hops,
		UnitsSearched:     r.UnitsSearched,
		VersionChecked:    r.VersionChecked,
		VersionLatencySec: r.VersionLatency,
	}
}

// FileRecord is one file's metadata on the wire. A zero ID on insert
// asks the server to allocate one; the response echoes the assignment.
type FileRecord struct {
	ID    uint64             `json:"id,omitempty"`
	Path  string             `json:"path"`
	Attrs map[string]float64 `json:"attrs"`
}

// RecordFromFile converts a stored file to its wire form.
func RecordFromFile(f *metadata.File) FileRecord {
	attrs := make(map[string]float64, int(metadata.NumAttrs))
	for a := metadata.Attr(0); a < metadata.NumAttrs; a++ {
		attrs[a.String()] = f.Attrs[a]
	}
	return FileRecord{ID: f.ID, Path: f.Path, Attrs: attrs}
}

// File converts a wire record to a metadata file, resolving attribute
// names. Unnamed attributes default to zero.
func (r FileRecord) File() (*metadata.File, error) {
	if r.Path == "" {
		return nil, fmt.Errorf("file record missing path")
	}
	f := &metadata.File{ID: r.ID, Path: r.Path}
	for name, v := range r.Attrs {
		a, err := metadata.ParseAttr(name)
		if err != nil {
			return nil, err
		}
		f.Attrs[a] = v
	}
	return f, nil
}

// parseAttrs resolves a wire attribute-name list.
func parseAttrs(names []string) ([]metadata.Attr, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("empty attribute list")
	}
	attrs := make([]metadata.Attr, len(names))
	for i, n := range names {
		a, err := metadata.ParseAttr(n)
		if err != nil {
			return nil, err
		}
		attrs[i] = a
	}
	return attrs, nil
}

// AttrNames converts an attribute subset to its wire names.
func AttrNames(attrs []metadata.Attr) []string {
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.String()
	}
	return names
}

// WireQuery is the unified wire form of one smartstore.Query: a kind
// ("point", "range", "topk") plus that kind's dimensions plus per-query
// options. Unused fields are omitted.
type WireQuery struct {
	Kind  string    `json:"kind,omitempty"`
	Path  string    `json:"path,omitempty"`
	Attrs []string  `json:"attrs,omitempty"`
	Lo    []float64 `json:"lo,omitempty"`
	Hi    []float64 `json:"hi,omitempty"`
	Point []float64 `json:"point,omitempty"`
	K     int       `json:"k,omitempty"`

	// Mode optionally overrides the store's query path for this query:
	// "offline" or "online" (empty = store default).
	Mode string `json:"mode,omitempty"`
	// Limit truncates the answer to at most Limit ids (0 = unlimited).
	Limit int `json:"limit,omitempty"`
	// IncludeRecords inlines full file records in the response.
	IncludeRecords bool `json:"include_records,omitempty"`
	// IncludeDists inlines each top-k answer id's true normalized
	// squared distance — what a federating gateway needs to merge
	// per-backend answers exactly. Ignored by point and range queries.
	IncludeDists bool `json:"include_dists,omitempty"`
}

// Query resolves the wire form to a validated smartstore.Query. Every
// failure wraps smartstore.ErrInvalidQuery.
func (wq WireQuery) Query() (smartstore.Query, error) {
	kind, err := smartstore.ParseQueryKind(wq.Kind)
	if err != nil {
		return smartstore.Query{}, err
	}
	mode, err := smartstore.ParseQueryMode(wq.Mode)
	if err != nil {
		return smartstore.Query{}, err
	}
	q := smartstore.Query{
		Kind:  kind,
		Path:  wq.Path,
		Lo:    wq.Lo,
		Hi:    wq.Hi,
		Point: wq.Point,
		K:     wq.K,
		Options: smartstore.QueryOptions{
			Mode:           mode,
			Limit:          wq.Limit,
			IncludeRecords: wq.IncludeRecords,
			IncludeDists:   wq.IncludeDists,
		},
	}
	if kind == smartstore.KindPoint {
		if wq.Path == "" {
			return smartstore.Query{}, fmt.Errorf("%w: point query missing path", smartstore.ErrInvalidQuery)
		}
	} else {
		attrs, err := parseAttrs(wq.Attrs)
		if err != nil {
			return smartstore.Query{}, fmt.Errorf("%w: %v", smartstore.ErrInvalidQuery, err)
		}
		q.Attrs = attrs
	}
	if err := q.Validate(); err != nil {
		return smartstore.Query{}, err
	}
	return q, nil
}

// QueryToWire converts a library query to its wire form — the encoding
// the typed client sends to POST /v1/query.
func QueryToWire(q smartstore.Query) WireQuery {
	wq := WireQuery{
		Kind:           q.Kind.String(),
		Path:           q.Path,
		Lo:             q.Lo,
		Hi:             q.Hi,
		Point:          q.Point,
		K:              q.K,
		Mode:           q.Options.Mode.String(),
		Limit:          q.Options.Limit,
		IncludeRecords: q.Options.IncludeRecords,
		IncludeDists:   q.Options.IncludeDists,
	}
	if len(q.Attrs) > 0 {
		wq.Attrs = AttrNames(q.Attrs)
	}
	return wq
}

// QueryRequest is the body of POST /v1/query: either one query inline
// (the embedded WireQuery fields) or a batch via Queries. A non-empty
// Queries takes precedence; the batch executes concurrently under one
// admission ticket.
type QueryRequest struct {
	WireQuery
	Queries []WireQuery `json:"queries,omitempty"`
}

// BatchQueryResponse answers a batch POST /v1/query: one result per
// query, in request order. A query that failed after admission carries
// its message in Error with zeroed results.
type BatchQueryResponse struct {
	Results []QueryResponse `json:"results"`
}

// PointRequest asks for the files stored under an exact pathname.
// Legacy form of POST /v1/query/point — new clients use WireQuery.
type PointRequest struct {
	Path string `json:"path"`
}

// RangeRequest asks for all files with Attrs[i] in [Lo[i], Hi[i]].
type RangeRequest struct {
	Attrs []string  `json:"attrs"`
	Lo    []float64 `json:"lo"`
	Hi    []float64 `json:"hi"`
}

// TopKRequest asks for the K files nearest to Point over Attrs.
type TopKRequest struct {
	Attrs []string  `json:"attrs"`
	Point []float64 `json:"point"`
	K     int       `json:"k"`
}

// QueryResponse answers every query form — unified single, batch item,
// and the legacy point/range/topk shims. Cached reports whether the
// result was served from the query cache (in which case the report
// replays the accounting of the original execution); Records carries
// inline file records when the query asked for them; Truncated reports
// that a limit cut the answer; Error is set only on batch items that
// failed after admission.
type QueryResponse struct {
	Kind      string   `json:"kind,omitempty"`
	IDs       []uint64 `json:"ids"`
	Count     int      `json:"count"`
	Truncated bool     `json:"truncated,omitempty"`
	Cached    bool     `json:"cached"`
	// Dists carries, aligned with IDs, each top-k candidate's true
	// normalized squared distance when the query asked for
	// include_dists.
	Dists   []float64    `json:"dists,omitempty"`
	Records []FileRecord `json:"records,omitempty"`
	// Partial flags an answer computed without every relevant backend —
	// a gateway degraded by a down member answers with what the healthy
	// backends hold instead of failing, and marks the gap here. A
	// single-store server never sets it.
	Partial bool   `json:"partial,omitempty"`
	Report  Report `json:"report"`
	// Trace is the per-phase timing breakdown, present only when the
	// request carried the X-Smartstore-Trace header.
	Trace *TraceWire `json:"trace,omitempty"`
	Error string     `json:"error,omitempty"`
}

// TraceWire is the inline wire form of a request trace: real wall
// times of this request, not virtual-time accounting (that is Report).
// Phases appear in serving order: admission_wait, decode, cache_lookup,
// execute, merge (derived: execute minus the slowest shard), encode.
type TraceWire struct {
	// TotalMs is the request's total wall time, admission wait through
	// response encode.
	TotalMs float64     `json:"total_ms"`
	Phases  []PhaseWire `json:"phases"`
	Shards  []ShardWire `json:"shards,omitempty"`
	// Backends breaks a gateway's execute phase down per backend,
	// nesting each backend's own trace when the backend returned one.
	Backends []BackendTraceWire `json:"backends,omitempty"`
}

// BackendTraceWire is one backend's share of a gateway fan-out.
type BackendTraceWire struct {
	Backend string  `json:"backend"`
	Ms      float64 `json:"ms"`
	// Down marks a backend that was skipped (marked unhealthy) or
	// failed mid-query.
	Down bool `json:"down,omitempty"`
	// Trace is the backend's own per-phase breakdown, propagated when
	// the gateway forwarded the trace header.
	Trace *TraceWire `json:"trace,omitempty"`
}

// PhaseWire is one named serving phase.
type PhaseWire struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// ShardWire is one shard's share of the execute phase. A pruned shard
// was rejected by its root MBR/Bloom filter without executing.
type ShardWire struct {
	Shard  int     `json:"shard"`
	Ms     float64 `json:"ms"`
	Pruned bool    `json:"pruned,omitempty"`
}

// InsertRequest inserts a batch of files in one admission.
type InsertRequest struct {
	Files []FileRecord `json:"files"`
}

// InsertResponse echoes the ids assigned to the batch, in input order.
type InsertResponse struct {
	Inserted int      `json:"inserted"`
	IDs      []uint64 `json:"ids"`
	Epoch    uint64   `json:"epoch"`
	Report   Report   `json:"report"`
}

// DeleteRequest removes a file by id.
type DeleteRequest struct {
	ID uint64 `json:"id"`
}

// ModifyRequest updates an existing file's attributes with merge
// semantics: attributes not named in File.Attrs keep their stored
// values, so a partial map updates only what it names. Path is
// immutable on modify and ignored.
type ModifyRequest struct {
	File FileRecord `json:"file"`
}

// MutateResponse answers delete and modify.
type MutateResponse struct {
	Found  bool   `json:"found"`
	Epoch  uint64 `json:"epoch"`
	Report Report `json:"report"`
}

// FlushResponse answers an explicit replica propagation.
type FlushResponse struct {
	Epoch uint64 `json:"epoch"`
}

// StoreStats is the wire form of smartstore.Stats plus the composed
// mutation epoch and the per-shard breakdown.
type StoreStats struct {
	Units             int          `json:"units"`
	IndexUnits        int          `json:"index_units"`
	TreeHeight        int          `json:"tree_height"`
	Files             int          `json:"files"`
	Trees             int          `json:"trees"`
	IndexBytesTotal   int          `json:"index_bytes_total"`
	IndexBytesPerNode int          `json:"index_bytes_per_node"`
	Epoch             uint64       `json:"epoch"`
	Shards            int          `json:"shards"`
	PerShard          []ShardStats `json:"per_shard,omitempty"`
}

// ShardStats is one engine shard's slice of the deployment: its units,
// index structure, resident files and its own mutation epoch (the
// store-wide epoch is the sum across shards).
type ShardStats struct {
	Shard      int    `json:"shard"`
	Units      int    `json:"units"`
	IndexUnits int    `json:"index_units"`
	TreeHeight int    `json:"tree_height"`
	Files      int    `json:"files"`
	Trees      int    `json:"trees"`
	Epoch      uint64 `json:"epoch"`
}

// CacheStats reports query-cache effectiveness.
type CacheStats struct {
	Entries       int    `json:"entries"`
	MaxEntries    int    `json:"max_entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// ServerStats reports the serving layer's own counters.
type ServerStats struct {
	UptimeSec float64    `json:"uptime_sec"`
	Requests  uint64     `json:"requests"`
	Rejected  uint64     `json:"rejected"`
	Workers   int        `json:"workers"`
	MaxQueue  int        `json:"max_queue"`
	Cache     CacheStats `json:"cache"`
}

// WALStats reports a durable store's write-ahead-log counters: segment
// inventory, group-commit effectiveness (grouped_records /
// group_commits is the achieved batching factor), and checkpoint
// activity. Absent on an in-memory store.
type WALStats struct {
	Segments               int    `json:"segments"`
	Bytes                  int64  `json:"bytes"`
	GroupCommits           uint64 `json:"group_commits"`
	GroupedRecords         uint64 `json:"grouped_records"`
	Rotations              uint64 `json:"rotations"`
	AutoCheckpoints        uint64 `json:"auto_checkpoints"`
	AutoCheckpointFailures uint64 `json:"auto_checkpoint_failures"`
}

// PlacementWire summarizes a store's semantic placement for a
// federating gateway: the placement attributes, the file-count-weighted
// centroid in raw attribute units, the raw normalization bounds per
// attribute, and the largest stored file id (the base a gateway
// allocates fresh ids above).
type PlacementWire struct {
	Attrs     []string  `json:"attrs"`
	Centroid  []float64 `json:"centroid"`
	Lo        []float64 `json:"lo"`
	Hi        []float64 `json:"hi"`
	MaxFileID uint64    `json:"max_file_id"`
}

// BackendWire is one backend's membership row in a gateway's stats.
type BackendWire struct {
	Backend string `json:"backend"`
	Healthy bool   `json:"healthy"`
	Files   int    `json:"files"`
	Epoch   uint64 `json:"epoch"`
}

// GatewayWire is the gateway's own stats section: the static
// membership with per-backend health, and the healthy count.
type GatewayWire struct {
	Backends []BackendWire `json:"backends"`
	Healthy  int           `json:"healthy"`
}

// StatsResponse answers GET /v1/stats. Placement is present on a
// single store (what a gateway reads at bootstrap); Gateway is present
// only on a gateway, whose Store section aggregates across the healthy
// backends.
type StatsResponse struct {
	Store     StoreStats     `json:"store"`
	Server    ServerStats    `json:"server"`
	WAL       *WALStats      `json:"wal,omitempty"`
	Placement *PlacementWire `json:"placement,omitempty"`
	Gateway   *GatewayWire   `json:"gateway,omitempty"`
	Build     BuildWire      `json:"build"`
}

// BuildWire identifies the serving binary.
type BuildWire struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
