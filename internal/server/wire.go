// Wire format of the smartstored HTTP metadata API, shared by the
// server handlers and the typed client (internal/client). The
// query-path types — everything POST /v1/query exchanges — live in
// internal/wire (which also owns the binary codec) and are aliased
// here so existing callers keep compiling; the mutation, stats and
// legacy-shim types below remain server-owned and JSON-only. Attribute
// dimensions travel as their short names ("mtime", "read_bytes", ...);
// values are raw attribute units, exactly like the library API. See
// DESIGN.md §5 for the endpoint reference with curl examples.
package server

import (
	smartstore "repro"
	"repro/internal/metadata"
	"repro/internal/wire"
)

// Aliases for the query-path wire types, moved to internal/wire so the
// server, gateway and client share one codec-agnostic definition.
type (
	// Report is the wire form of smartstore.QueryReport: the
	// virtual-time accounting of one operation.
	Report = wire.Report
	// FileRecord is one file's metadata on the wire.
	FileRecord = wire.FileRecord
	// WireQuery is the unified wire form of one smartstore.Query.
	WireQuery = wire.WireQuery
	// QueryRequest is the body of POST /v1/query.
	QueryRequest = wire.QueryRequest
	// QueryResponse answers every query form.
	QueryResponse = wire.QueryResponse
	// BatchQueryResponse answers a batch POST /v1/query.
	BatchQueryResponse = wire.BatchQueryResponse
	// TraceWire is the inline wire form of a request trace.
	TraceWire = wire.TraceWire
	// BackendTraceWire is one backend's share of a gateway fan-out.
	BackendTraceWire = wire.BackendTraceWire
	// PhaseWire is one named serving phase.
	PhaseWire = wire.PhaseWire
	// ShardWire is one shard's share of the execute phase.
	ShardWire = wire.ShardWire
	// ErrorResponse is the body of every non-2xx reply.
	ErrorResponse = wire.ErrorResponse
)

// RecordFromFile converts a stored file to its wire form.
func RecordFromFile(f *metadata.File) FileRecord { return wire.RecordFromFile(f) }

// AttrNames converts an attribute subset to its wire names.
func AttrNames(attrs []metadata.Attr) []string { return wire.AttrNames(attrs) }

// QueryToWire converts a library query to its wire form — the encoding
// the typed client sends to POST /v1/query.
func QueryToWire(q smartstore.Query) WireQuery { return wire.QueryToWire(q) }

func wireReport(r smartstore.QueryReport) Report {
	return Report{
		LatencySec:        r.Latency,
		Messages:          r.Messages,
		Hops:              r.Hops,
		UnitsSearched:     r.UnitsSearched,
		VersionChecked:    r.VersionChecked,
		VersionLatencySec: r.VersionLatency,
	}
}

// PointRequest asks for the files stored under an exact pathname.
// Legacy form of POST /v1/query/point — new clients use WireQuery.
type PointRequest struct {
	Path string `json:"path"`
}

// RangeRequest asks for all files with Attrs[i] in [Lo[i], Hi[i]].
type RangeRequest struct {
	Attrs []string  `json:"attrs"`
	Lo    []float64 `json:"lo"`
	Hi    []float64 `json:"hi"`
}

// TopKRequest asks for the K files nearest to Point over Attrs.
type TopKRequest struct {
	Attrs []string  `json:"attrs"`
	Point []float64 `json:"point"`
	K     int       `json:"k"`
}

// InsertRequest inserts a batch of files in one admission.
type InsertRequest struct {
	Files []FileRecord `json:"files"`
}

// InsertResponse echoes the ids assigned to the batch, in input order.
type InsertResponse struct {
	Inserted int      `json:"inserted"`
	IDs      []uint64 `json:"ids"`
	Epoch    uint64   `json:"epoch"`
	Report   Report   `json:"report"`
}

// DeleteRequest removes a file by id.
type DeleteRequest struct {
	ID uint64 `json:"id"`
}

// ModifyRequest updates an existing file's attributes with merge
// semantics: attributes not named in File.Attrs keep their stored
// values, so a partial map updates only what it names. Path is
// immutable on modify and ignored.
type ModifyRequest struct {
	File FileRecord `json:"file"`
}

// MutateResponse answers delete and modify.
type MutateResponse struct {
	Found  bool   `json:"found"`
	Epoch  uint64 `json:"epoch"`
	Report Report `json:"report"`
}

// FlushResponse answers an explicit replica propagation.
type FlushResponse struct {
	Epoch uint64 `json:"epoch"`
}

// StoreStats is the wire form of smartstore.Stats plus the composed
// mutation epoch and the per-shard breakdown.
type StoreStats struct {
	Units             int          `json:"units"`
	IndexUnits        int          `json:"index_units"`
	TreeHeight        int          `json:"tree_height"`
	Files             int          `json:"files"`
	Trees             int          `json:"trees"`
	IndexBytesTotal   int          `json:"index_bytes_total"`
	IndexBytesPerNode int          `json:"index_bytes_per_node"`
	Epoch             uint64       `json:"epoch"`
	Shards            int          `json:"shards"`
	PerShard          []ShardStats `json:"per_shard,omitempty"`
}

// ShardStats is one engine shard's slice of the deployment: its units,
// index structure, resident files and its own mutation epoch (the
// store-wide epoch is the sum across shards).
type ShardStats struct {
	Shard      int    `json:"shard"`
	Units      int    `json:"units"`
	IndexUnits int    `json:"index_units"`
	TreeHeight int    `json:"tree_height"`
	Files      int    `json:"files"`
	Trees      int    `json:"trees"`
	Epoch      uint64 `json:"epoch"`
}

// CacheStats reports query-cache effectiveness.
type CacheStats struct {
	Entries       int    `json:"entries"`
	MaxEntries    int    `json:"max_entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// ServerStats reports the serving layer's own counters.
type ServerStats struct {
	UptimeSec float64    `json:"uptime_sec"`
	Requests  uint64     `json:"requests"`
	Rejected  uint64     `json:"rejected"`
	Workers   int        `json:"workers"`
	MaxQueue  int        `json:"max_queue"`
	Cache     CacheStats `json:"cache"`
}

// WALStats reports a durable store's write-ahead-log counters: segment
// inventory, group-commit effectiveness (grouped_records /
// group_commits is the achieved batching factor), and checkpoint
// activity. Absent on an in-memory store.
type WALStats struct {
	Segments               int    `json:"segments"`
	Bytes                  int64  `json:"bytes"`
	DurableBytes           int64  `json:"durable_bytes"`
	GroupCommits           uint64 `json:"group_commits"`
	GroupedRecords         uint64 `json:"grouped_records"`
	Rotations              uint64 `json:"rotations"`
	AutoCheckpoints        uint64 `json:"auto_checkpoints"`
	AutoCheckpointFailures uint64 `json:"auto_checkpoint_failures"`
}

// PlacementWire summarizes a store's semantic placement for a
// federating gateway: the placement attributes, the file-count-weighted
// centroid in raw attribute units, the raw normalization bounds per
// attribute, and the largest stored file id (the base a gateway
// allocates fresh ids above).
type PlacementWire struct {
	Attrs     []string  `json:"attrs"`
	Centroid  []float64 `json:"centroid"`
	Lo        []float64 `json:"lo"`
	Hi        []float64 `json:"hi"`
	MaxFileID uint64    `json:"max_file_id"`
}

// BackendWire is one backend's membership row in a gateway's stats.
type BackendWire struct {
	Backend string `json:"backend"`
	Healthy bool   `json:"healthy"`
	Files   int    `json:"files"`
	Epoch   uint64 `json:"epoch"`
	// Active is the address currently serving this member — the
	// follower's after a failover, Backend's otherwise. FailedOver
	// reports that the member has been switched to its follower.
	Active     string `json:"active,omitempty"`
	FailedOver bool   `json:"failed_over,omitempty"`
}

// GatewayWire is the gateway's own stats section: the static
// membership with per-backend health, and the healthy count.
type GatewayWire struct {
	Backends []BackendWire `json:"backends"`
	Healthy  int           `json:"healthy"`
}

// StatsResponse answers GET /v1/stats. Placement is present on a
// single store (what a gateway reads at bootstrap); Gateway is present
// only on a gateway, whose Store section aggregates across the healthy
// backends.
type StatsResponse struct {
	Store     StoreStats     `json:"store"`
	Server    ServerStats    `json:"server"`
	WAL       *WALStats      `json:"wal,omitempty"`
	Placement *PlacementWire `json:"placement,omitempty"`
	Gateway   *GatewayWire   `json:"gateway,omitempty"`
	Build     BuildWire      `json:"build"`
}

// BuildWire identifies the serving binary.
type BuildWire struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}
