package server

import (
	"errors"
	"net/http"
	"strconv"

	"repro/internal/wal"
)

// Replication endpoints: the leader side serves snapshot bootstrap
// (GET /v1/repl/snapshot) and per-shard log tails (GET /v1/repl/wal);
// a follower serves replication status (GET /v1/repl/status) and
// promotion (POST /v1/repl/promote) while rejecting mutations with 503
// until promoted. Every endpoint is routed unconditionally — a leader
// simply has no ReplController, so status reports a non-following
// store and promote answers 409.

// ReplController is the follower-side hook the daemon wires in: the
// server consults it for status and delegates promotion to it. Nil on
// a store that is not following anyone.
type ReplController interface {
	// Status reports the follower's replication progress.
	Status() ReplStatusWire
	// Promote stops following and applies everything already fetched;
	// after it returns the store is writable. It must be idempotent.
	Promote() error
}

// ReplStatusWire answers GET /v1/repl/status.
type ReplStatusWire struct {
	// Following is the leader's base URL; empty when this store never
	// followed anyone.
	Following string `json:"following,omitempty"`
	// ReadOnly reports whether mutations are currently rejected.
	ReadOnly bool `json:"read_only"`
	// Promoted reports that a follower has been promoted to leader.
	Promoted bool `json:"promoted,omitempty"`
	// CaughtUp reports that every shard's last pull reached the durable
	// end of the leader's log with nothing left queued.
	CaughtUp bool `json:"caught_up"`
	// LeaderReachable reports whether the most recent pull round
	// succeeded.
	LeaderReachable bool `json:"leader_reachable,omitempty"`
	// RecordsApplied counts records folded into the store since the
	// process started following.
	RecordsApplied uint64 `json:"records_applied"`
	// ShardEpochs is the store's per-shard mutation epoch vector — on a
	// caught-up follower it matches the leader's.
	ShardEpochs []uint64 `json:"shard_epochs"`
}

// errReadOnly rejects mutations on a following store.
var errReadOnly = errors.New("store is read-only (following a leader; promote it first)")

// writable screens a mutation handler on a read-only store.
func (s *Server) writable() error {
	if s.readOnly.Load() {
		return errReadOnly
	}
	return nil
}

// replMaxShipBytes bounds one tail response; a catching-up follower
// simply pulls again.
const replMaxShipBytes = 1 << 20

// handleReplSnapshot streams the store's current snapshot — the
// follower bootstrap base. The encoding is the exact Save format, and
// the capture takes the all-shard read locks, so the streamed snapshot
// is never torn mid-batch.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "application/octet-stream")
	// A mid-stream write error means the follower went away; the
	// stream is self-validating on the receiving side.
	_ = s.store.Save(w)
	return nil
}

// handleReplWAL serves one pull of a shard's log tail:
// GET /v1/repl/wal?shard=N&after=E, answered in the wal ship framing.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) error {
	if !s.store.Durable() {
		return badRequest("replication needs a durable leader (-data-dir)")
	}
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		return badRequest("repl/wal: bad shard: %v", err)
	}
	if shard < 0 || shard >= s.store.Shards() {
		return badRequest("repl/wal: shard %d of %d", shard, s.store.Shards())
	}
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil {
		return badRequest("repl/wal: bad after: %v", err)
	}
	resp, err := s.store.ReplTail(shard, after, replMaxShipBytes)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	return wal.EncodeTail(w, resp)
}

// handleReplStatus reports replication state. On a plain leader (no
// controller) it still answers — read_only false, no leader — so
// operators and the gateway can probe any member uniformly.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) error {
	var st ReplStatusWire
	if s.opts.Repl != nil {
		st = s.opts.Repl.Status()
	}
	st.ReadOnly = s.readOnly.Load()
	st.ShardEpochs = s.store.ShardEpochs()
	writeJSON(w, http.StatusOK, st)
	return nil
}

// handleReplPromote promotes a follower: the controller stops pulling
// and applies what it already fetched, then the server lifts the
// read-only guard. On a store that is not following, promotion is a
// 409 — there is nothing to promote.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) error {
	if s.opts.Repl == nil {
		writeError(w, http.StatusConflict, errors.New("not a follower"))
		return nil
	}
	if err := s.opts.Repl.Promote(); err != nil {
		return err
	}
	s.readOnly.Store(false)
	st := s.opts.Repl.Status()
	st.ReadOnly = false
	st.ShardEpochs = s.store.ShardEpochs()
	writeJSON(w, http.StatusOK, st)
	return nil
}
