package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// scrape fetches /v1/metrics and parses it through the validating
// exposition parser, failing the test on any incoherence.
func scrape(t *testing.T, base string) []obs.Family {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET /v1/metrics: content type %q", ct)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v", err)
	}
	return fams
}

// metricValue returns the value of the first sample named name in the
// family whose labels include every given key=value pair.
func metricValue(t *testing.T, fams []obs.Family, name string, kv ...string) float64 {
	t.Helper()
	if len(kv)%2 != 0 {
		t.Fatal("metricValue: odd kv list")
	}
	famName := name
	for _, suf := range []string{"_count", "_sum", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			famName = base
		}
	}
	fam := obs.FindFamily(fams, famName)
	if fam == nil {
		t.Fatalf("family %s not exposed", name)
	}
	for _, s := range fam.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for i := 0; i < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				ok = false
			}
		}
		if ok {
			return s.Value
		}
	}
	t.Fatalf("family %s: no sample matching %v", name, kv)
	return 0
}

// TestMetricsExposition drives traffic through the server and asserts
// the scrape is valid exposition whose counters reflect that traffic.
func TestMetricsExposition(t *testing.T) {
	ts, _, set := newTestServer(t, Options{})

	for i := 0; i < 3; i++ {
		var qr QueryResponse
		if code := postJSON(t, ts.URL+"/v1/query",
			QueryRequest{WireQuery: WireQuery{Kind: "point", Path: set.Files[i].Path}}, &qr); code != 200 {
			t.Fatalf("query status %d", code)
		}
	}
	var tr QueryResponse
	postJSON(t, ts.URL+"/v1/query/topk",
		TopKRequest{Attrs: defaultNames(), Point: []float64{0, 0, 0}, K: 5}, &tr)

	fams := scrape(t, ts.URL)

	if got := metricValue(t, fams, "smartstore_http_requests_total", "endpoint", "query"); got != 3 {
		t.Fatalf("query endpoint counter = %v, want 3", got)
	}
	if got := metricValue(t, fams, "smartstore_http_requests_total", "endpoint", "topk"); got != 1 {
		t.Fatalf("topk endpoint counter = %v, want 1", got)
	}
	// Point queries ran three times; the per-kind histogram count must
	// agree regardless of the carrying endpoint.
	if got := metricValue(t, fams, "smartstore_query_duration_seconds_count", "kind", "point"); got != 3 {
		t.Fatalf("point kind count = %v, want 3", got)
	}
	// The fan-out visited or pruned shards for each executed query.
	visited := metricValue(t, fams, "smartstore_shards_visited_total")
	if visited == 0 {
		t.Fatal("shards visited counter is zero after queries")
	}
	if got := metricValue(t, fams, "smartstore_build_info"); got != 1 {
		t.Fatalf("build info = %v, want 1", got)
	}
	// Second scrape: scrape counter advanced, still parses.
	fams2 := scrape(t, ts.URL)
	s1 := metricValue(t, fams, "smartstore_metrics_scrapes_total")
	s2 := metricValue(t, fams2, "smartstore_metrics_scrapes_total")
	if s2 <= s1 {
		t.Fatalf("scrape counter did not advance: %v -> %v", s1, s2)
	}
}

// TestMetricsDisabled verifies DisableMetrics removes the endpoint and
// the hot path tolerates the nil sinks.
func TestMetricsDisabled(t *testing.T) {
	ts, _, set := newTestServer(t, Options{DisableMetrics: true})
	var qr QueryResponse
	if code := postJSON(t, ts.URL+"/v1/query",
		QueryRequest{WireQuery: WireQuery{Kind: "point", Path: set.Files[0].Path}}, &qr); code != 200 {
		t.Fatalf("query status %d with metrics disabled", code)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics endpoint with DisableMetrics: status %d, want 404", resp.StatusCode)
	}
}

// TestTraceHeader asserts the inline per-phase breakdown round-trips.
func TestTraceHeader(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{CacheEntries: -1})

	body := `{"kind":"range","attrs":["read_bytes"],"lo":[0],"hi":[1e12]}`
	req, err := http.NewRequest("POST", ts.URL+"/v1/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil {
		t.Fatal("traced request returned no trace")
	}
	if qr.Trace.TotalMs <= 0 {
		t.Fatalf("trace total = %v ms", qr.Trace.TotalMs)
	}
	want := map[string]bool{"admission_wait": false, "decode": false, "execute": false, "merge": false, "encode": false}
	for _, p := range qr.Trace.Phases {
		if _, ok := want[p.Name]; ok {
			want[p.Name] = true
		}
		if p.Ms < 0 {
			t.Fatalf("phase %s has negative duration", p.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("trace missing phase %q (got %+v)", name, qr.Trace.Phases)
		}
	}
	if len(qr.Trace.Shards) == 0 {
		t.Fatal("trace carries no per-shard breakdown")
	}

	// Untraced request must not carry the field.
	var plain QueryResponse
	postJSON(t, ts.URL+"/v1/query",
		QueryRequest{WireQuery: WireQuery{Kind: "range", Attrs: []string{"read_bytes"}, Lo: []float64{0}, Hi: []float64{1e12}}}, &plain)
	if plain.Trace != nil {
		t.Fatal("untraced request returned a trace")
	}
}

// TestStatsBuildInfo asserts /v1/stats carries build identification.
func TestStatsBuildInfo(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Build.GoVersion == "" {
		t.Fatal("stats build info missing go version")
	}
}

// TestMetricsConcurrentScrape scrapes while queries run; under -race
// this exercises the lock-free histogram and registry read paths.
func TestMetricsConcurrentScrape(t *testing.T) {
	ts, _, set := newTestServer(t, Options{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var qr QueryResponse
			postJSON(t, ts.URL+"/v1/query",
				QueryRequest{WireQuery: WireQuery{Kind: "point", Path: set.Files[i%len(set.Files)].Path}}, &qr)
		}
	}()
	for i := 0; i < 10; i++ {
		scrape(t, ts.URL)
	}
	<-done
	scrape(t, ts.URL)
}
