package server

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	smartstore "repro"
	"repro/internal/metadata"
)

// queryCache is an LRU over query results, keyed by the normalized
// query text. Each entry carries the store's mutation epoch observed
// *before* the result was computed; a lookup whose epoch differs drops
// the entry, so one mutation invalidates the whole cache at the cost of
// a counter compare per hit — no tracking of which groups a write
// touched. Tagging with the pre-query epoch keeps the race with a
// concurrent writer safe: a result computed while a mutation lands is
// at worst invalidated one lookup early, never served stale.
type queryCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions, invalidations uint64
}

type cacheEntry struct {
	key   string
	epoch uint64
	ids   []uint64
	rep   smartstore.QueryReport
}

func newQueryCache(max int) *queryCache {
	return &queryCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached result for key if present and computed at the
// given epoch.
func (c *queryCache) get(key string, epoch uint64) ([]uint64, smartstore.QueryReport, bool) {
	if c == nil {
		return nil, smartstore.QueryReport{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, smartstore.QueryReport{}, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch {
		c.ll.Remove(el)
		delete(c.entries, key)
		c.invalidations++
		c.misses++
		return nil, smartstore.QueryReport{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.ids, ent.rep, true
}

// put stores a result computed at the given epoch, evicting the least
// recently used entry when full.
func (c *queryCache) put(key string, epoch uint64, ids []uint64, rep smartstore.QueryReport) {
	if c == nil || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = &cacheEntry{key: key, epoch: epoch, ids: ids, rep: rep}
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, epoch: epoch, ids: ids, rep: rep})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats snapshots the cache counters.
func (c *queryCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       c.ll.Len(),
		MaxEntries:    c.max,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}

// Cache keys normalize the query so semantically identical requests
// collide: dimensions are sorted by attribute id and values printed in
// full precision.

type dim struct {
	attr   metadata.Attr
	v1, v2 float64
}

func sortDims(attrs []metadata.Attr, v1, v2 []float64) []dim {
	dims := make([]dim, len(attrs))
	for i, a := range attrs {
		d := dim{attr: a, v1: v1[i]}
		if v2 != nil {
			d.v2 = v2[i]
		}
		dims[i] = d
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i].attr < dims[j].attr })
	return dims
}

func pointKey(path string) string { return "p|" + path }

func rangeKey(attrs []metadata.Attr, lo, hi []float64) string {
	var b strings.Builder
	b.WriteString("r")
	for _, d := range sortDims(attrs, lo, hi) {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(int(d.attr)))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(d.v1, 'g', -1, 64))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(d.v2, 'g', -1, 64))
	}
	return b.String()
}

func topKKey(attrs []metadata.Attr, point []float64, k int) string {
	var b strings.Builder
	b.WriteString("k|")
	b.WriteString(strconv.Itoa(k))
	for _, d := range sortDims(attrs, point, nil) {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(int(d.attr)))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(d.v1, 'g', -1, 64))
	}
	return b.String()
}
