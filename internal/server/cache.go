package server

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	smartstore "repro"
	"repro/internal/metadata"
)

// queryCache is an LRU over query results, keyed by the normalized
// unified query text (kind, resolved execution mode, limit, projection
// flags, and dimensions sorted by attribute id) so two queries that can
// answer differently — a different mode, limit, or projection — never
// collide on one entry. Each entry carries the per-shard mutation
// epochs of exactly the shards the query targeted, observed *before*
// the result was computed; a lookup compares each target shard's
// current epoch against the entry's and drops the entry on any
// mismatch — so a write to shard 3 stops evicting shard 0's hot
// entries. The target set is data-independent (routing reads only the
// query and the frozen placement centroids), so an entry's target
// epochs cover every shard whose state the answer is a function of.
// Tagging with the pre-query epochs keeps the race with a concurrent
// writer safe: a result computed while a mutation lands is at worst
// invalidated one lookup early, never served stale.
type queryCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions, invalidations uint64
}

// cacheEntry stores the full wire response (ids, records, truncation,
// report) with the Cached bit cleared; get stamps it on hits. targets
// and epochs are aligned: epochs[i] is shard targets[i]'s epoch
// observed before the result was computed.
type cacheEntry struct {
	key     string
	targets []int
	epochs  []uint64
	resp    QueryResponse
}

// freshAt reports whether every target shard's epoch still matches the
// entry. A target outside the current epoch vector (impossible without
// a shard-count change) fails closed.
func (e *cacheEntry) freshAt(cur []uint64) bool {
	for i, t := range e.targets {
		if t < 0 || t >= len(cur) || cur[t] != e.epochs[i] {
			return false
		}
	}
	return true
}

func newQueryCache(max int) *queryCache {
	return &queryCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached response for key if present and fresh against
// the current per-shard epoch vector.
func (c *queryCache) get(key string, epochs []uint64) (QueryResponse, bool) {
	if c == nil {
		return QueryResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return QueryResponse{}, false
	}
	ent := el.Value.(*cacheEntry)
	if !ent.freshAt(epochs) {
		c.ll.Remove(el)
		delete(c.entries, key)
		c.invalidations++
		c.misses++
		return QueryResponse{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	resp := ent.resp
	resp.Cached = true
	return resp, true
}

// put stores a response that targeted the given shards, pairing it
// with those shards' entries in the pre-query epoch vector, evicting
// the least recently used entry when full. An empty target set (a
// serving layer that cannot attribute the answer to specific shards)
// would never invalidate, so it is not cached.
func (c *queryCache) put(key string, targets []int, epochs []uint64, resp QueryResponse) {
	if c == nil || c.max <= 0 || len(targets) == 0 {
		return
	}
	selected := make([]uint64, len(targets))
	for i, t := range targets {
		if t < 0 || t >= len(epochs) {
			return
		}
		selected[i] = epochs[t]
	}
	resp.Cached = false
	ent := &cacheEntry{key: key, targets: targets, epochs: selected, resp: resp}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = ent
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(ent)
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats snapshots the cache counters.
func (c *queryCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       c.ll.Len(),
		MaxEntries:    c.max,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}

// Cache keys normalize the unified query so semantically identical
// requests collide: dimensions are sorted by attribute id and values
// printed in full precision, and the execution mode (resolved against
// the store default), limit and record-projection flag are part of the
// key because each changes the answer's content.

type dim struct {
	attr   metadata.Attr
	v1, v2 float64
}

func sortDims(attrs []metadata.Attr, v1, v2 []float64) []dim {
	dims := make([]dim, len(attrs))
	for i, a := range attrs {
		d := dim{attr: a, v1: v1[i]}
		if v2 != nil {
			d.v2 = v2[i]
		}
		dims[i] = d
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i].attr < dims[j].attr })
	return dims
}

// queryKey builds the normalized cache key for q. mode is the resolved
// execution mode (ModeDefault already replaced by the store's default),
// so an explicit option equal to the default hits the same entry.
func queryKey(q smartstore.Query, mode smartstore.QueryMode) string {
	var b strings.Builder
	switch q.Kind {
	case smartstore.KindPoint:
		b.WriteByte('p')
	case smartstore.KindRange:
		b.WriteByte('r')
	case smartstore.KindTopK:
		b.WriteByte('k')
	}
	b.WriteString("|m")
	b.WriteString(strconv.Itoa(int(mode)))
	b.WriteString("|l")
	b.WriteString(strconv.Itoa(q.Options.Limit))
	if q.Options.IncludeRecords {
		b.WriteString("|rec")
	}
	if q.Options.IncludeDists {
		b.WriteString("|dst")
	}
	switch q.Kind {
	case smartstore.KindPoint:
		b.WriteByte('|')
		b.WriteString(q.Path)
	case smartstore.KindRange:
		for _, d := range sortDims(q.Attrs, q.Lo, q.Hi) {
			b.WriteByte('|')
			b.WriteString(strconv.Itoa(int(d.attr)))
			b.WriteByte(':')
			b.WriteString(strconv.FormatFloat(d.v1, 'g', -1, 64))
			b.WriteByte(':')
			b.WriteString(strconv.FormatFloat(d.v2, 'g', -1, 64))
		}
	case smartstore.KindTopK:
		b.WriteString("|k")
		b.WriteString(strconv.Itoa(q.K))
		for _, d := range sortDims(q.Attrs, q.Point, nil) {
			b.WriteByte('|')
			b.WriteString(strconv.Itoa(int(d.attr)))
			b.WriteByte(':')
			b.WriteString(strconv.FormatFloat(d.v1, 'g', -1, 64))
		}
	}
	return b.String()
}
