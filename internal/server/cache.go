package server

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	smartstore "repro"
	"repro/internal/metadata"
)

// queryCache is an LRU over query results, keyed by the normalized
// unified query text (kind, resolved execution mode, limit, projection
// flag, and dimensions sorted by attribute id) so two queries that can
// answer differently — a different mode, limit, or record projection —
// never collide on one entry. Each entry carries the store's mutation
// epoch observed *before* the result was computed; a lookup whose epoch
// differs drops the entry, so one mutation invalidates the whole cache
// at the cost of a counter compare per hit — no tracking of which
// groups a write touched. Tagging with the pre-query epoch keeps the
// race with a concurrent writer safe: a result computed while a
// mutation lands is at worst invalidated one lookup early, never served
// stale.
type queryCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions, invalidations uint64
}

// cacheEntry stores the full wire response (ids, records, truncation,
// report) with the Cached bit cleared; get stamps it on hits.
type cacheEntry struct {
	key   string
	epoch uint64
	resp  QueryResponse
}

func newQueryCache(max int) *queryCache {
	return &queryCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached response for key if present and computed at
// the given epoch.
func (c *queryCache) get(key string, epoch uint64) (QueryResponse, bool) {
	if c == nil {
		return QueryResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return QueryResponse{}, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch {
		c.ll.Remove(el)
		delete(c.entries, key)
		c.invalidations++
		c.misses++
		return QueryResponse{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	resp := ent.resp
	resp.Cached = true
	return resp, true
}

// put stores a response computed at the given epoch, evicting the least
// recently used entry when full.
func (c *queryCache) put(key string, epoch uint64, resp QueryResponse) {
	if c == nil || c.max <= 0 {
		return
	}
	resp.Cached = false
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = &cacheEntry{key: key, epoch: epoch, resp: resp}
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, epoch: epoch, resp: resp})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats snapshots the cache counters.
func (c *queryCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       c.ll.Len(),
		MaxEntries:    c.max,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}

// Cache keys normalize the unified query so semantically identical
// requests collide: dimensions are sorted by attribute id and values
// printed in full precision, and the execution mode (resolved against
// the store default), limit and record-projection flag are part of the
// key because each changes the answer's content.

type dim struct {
	attr   metadata.Attr
	v1, v2 float64
}

func sortDims(attrs []metadata.Attr, v1, v2 []float64) []dim {
	dims := make([]dim, len(attrs))
	for i, a := range attrs {
		d := dim{attr: a, v1: v1[i]}
		if v2 != nil {
			d.v2 = v2[i]
		}
		dims[i] = d
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i].attr < dims[j].attr })
	return dims
}

// queryKey builds the normalized cache key for q. mode is the resolved
// execution mode (ModeDefault already replaced by the store's default),
// so an explicit option equal to the default hits the same entry.
func queryKey(q smartstore.Query, mode smartstore.QueryMode) string {
	var b strings.Builder
	switch q.Kind {
	case smartstore.KindPoint:
		b.WriteByte('p')
	case smartstore.KindRange:
		b.WriteByte('r')
	case smartstore.KindTopK:
		b.WriteByte('k')
	}
	b.WriteString("|m")
	b.WriteString(strconv.Itoa(int(mode)))
	b.WriteString("|l")
	b.WriteString(strconv.Itoa(q.Options.Limit))
	if q.Options.IncludeRecords {
		b.WriteString("|rec")
	}
	switch q.Kind {
	case smartstore.KindPoint:
		b.WriteByte('|')
		b.WriteString(q.Path)
	case smartstore.KindRange:
		for _, d := range sortDims(q.Attrs, q.Lo, q.Hi) {
			b.WriteByte('|')
			b.WriteString(strconv.Itoa(int(d.attr)))
			b.WriteByte(':')
			b.WriteString(strconv.FormatFloat(d.v1, 'g', -1, 64))
			b.WriteByte(':')
			b.WriteString(strconv.FormatFloat(d.v2, 'g', -1, 64))
		}
	case smartstore.KindTopK:
		b.WriteString("|k")
		b.WriteString(strconv.Itoa(q.K))
		for _, d := range sortDims(q.Attrs, q.Point, nil) {
			b.WriteByte('|')
			b.WriteString(strconv.Itoa(int(d.attr)))
			b.WriteByte(':')
			b.WriteString(strconv.FormatFloat(d.v1, 'g', -1, 64))
		}
	}
	return b.String()
}
