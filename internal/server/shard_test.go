package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	smartstore "repro"
)

// A sharded store behind the server must expose the per-shard breakdown
// in /v1/stats, and the serving path — unified queries, inserts, cache
// invalidation on the composed epoch — must behave exactly like the
// unsharded one.
func TestStatsExposePerShardBreakdown(t *testing.T) {
	set, err := smartstore.GenerateTrace("MSN", 1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 20, Shards: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(store, Options{}))
	defer ts.Close()

	stats := func() StatsResponse {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := stats()
	if st.Store.Shards != 4 || len(st.Store.PerShard) != 4 {
		t.Fatalf("stats report %d shards / %d breakdown entries, want 4/4",
			st.Store.Shards, len(st.Store.PerShard))
	}
	units, files := 0, 0
	for _, sh := range st.Store.PerShard {
		if sh.Units == 0 || sh.Files == 0 {
			t.Fatalf("degenerate shard in breakdown: %+v", sh)
		}
		units += sh.Units
		files += sh.Files
	}
	if units != st.Store.Units || files != st.Store.Files {
		t.Fatalf("per-shard totals %d units / %d files do not add up to %d / %d",
			units, files, st.Store.Units, st.Store.Files)
	}

	// A mutation bumps exactly one shard's epoch and the composed epoch.
	var ins InsertResponse
	src := set.Files[3]
	rec := RecordFromFile(src)
	rec.ID = 0
	rec.Path = "/shard/insert.dat"
	if code := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Files: []FileRecord{rec}}, &ins); code != 200 {
		t.Fatalf("insert status %d", code)
	}
	st2 := stats()
	if st2.Store.Epoch != st.Store.Epoch+1 {
		t.Fatalf("composed epoch %d, want %d", st2.Store.Epoch, st.Store.Epoch+1)
	}
	bumped := 0
	for i, sh := range st2.Store.PerShard {
		if sh.Epoch != st.Store.PerShard[i].Epoch {
			bumped++
		}
	}
	if bumped != 1 {
		t.Fatalf("%d shard epochs bumped by a single insert, want 1", bumped)
	}
}

// The epoch-keyed cache must invalidate on a mutation landing on any
// shard — the composed epoch is what entries are tagged with.
func TestCacheInvalidatesOnAnyShardMutation(t *testing.T) {
	set, err := smartstore.GenerateTrace("MSN", 1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 20, Shards: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(store, Options{CacheEntries: 64}))
	defer ts.Close()

	// The on-line path is exact on the propagated snapshot, so the
	// post-insert count is deterministic (this test is about cache
	// invalidation, not off-line recall).
	rq := WireQuery{Kind: "range", Mode: "online", Attrs: defaultNames(),
		Lo: []float64{0, 0, 0}, Hi: []float64{9e9, 9e9, 9e9}}
	var first, second, third QueryResponse
	postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: rq}, &first)
	postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: rq}, &second)
	if !second.Cached {
		t.Fatal("repeat query not served from cache")
	}
	// Mutate: whichever shard this lands on, the composed epoch changes.
	src := RecordFromFile(set.Files[11])
	src.ID = 0
	src.Path = "/shard/invalidate.dat"
	if code := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Files: []FileRecord{src}}, nil); code != 200 {
		t.Fatalf("insert status %d", code)
	}
	// Propagate the pending insert so the snapshot answer includes it.
	if code := postJSON(t, ts.URL+"/v1/flush", struct{}{}, nil); code != 200 {
		t.Fatal("flush failed")
	}
	postJSON(t, ts.URL+"/v1/query", QueryRequest{WireQuery: rq}, &third)
	if third.Cached {
		t.Fatal("cache served a stale entry across a shard mutation")
	}
	if third.Count != first.Count+1 {
		t.Fatalf("post-insert count %d, want %d", third.Count, first.Count+1)
	}
}
