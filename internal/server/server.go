// Package server is the concurrent serving layer over a SmartStore:
// an HTTP/JSON metadata service (stdlib net/http only) exposing the
// point/range/top-k query paths and the insert/delete/modify update
// paths over the wire, in front of the thread-safe Store.
//
// Three mechanisms turn the library into a service:
//
//   - the Store's sharded engine (per-shard locking, parallel query
//     fan-out, a composed mutation epoch — see the root package and
//     internal/engine);
//   - an LRU query-result cache keyed by normalized query text and
//     invalidated wholesale on any composed-epoch change, so the common
//     read-heavy metadata workload short-circuits repeated complex
//     queries regardless of which shard a mutation landed on;
//   - bounded worker-pool admission: at most Workers requests execute
//     concurrently and at most MaxQueue more wait; beyond that the
//     server sheds load with 503 instead of collapsing under it.
//
// See DESIGN.md §5 for the endpoint reference with curl examples.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	smartstore "repro"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/version"
	"repro/internal/wire"
)

// Options parameterizes a Server. The zero value selects defaults.
type Options struct {
	// CacheEntries bounds the query-result cache; 0 selects 1024 and a
	// negative value disables caching.
	CacheEntries int
	// Workers bounds concurrently executing requests; 0 selects
	// 2×GOMAXPROCS.
	Workers int
	// MaxQueue bounds requests waiting for a worker slot; 0 selects
	// 8×Workers. Waiters beyond the bound are rejected with 503.
	MaxQueue int
	// DisableMetrics drops the metrics registry entirely: /v1/metrics
	// is not routed and every instrumentation hook short-circuits on a
	// nil check — the baseline half of the overhead comparison gate.
	DisableMetrics bool
	// SlowQuery, when positive, logs any served request whose total
	// wall time (admission wait included) exceeds it, with its full
	// phase breakdown.
	SlowQuery time.Duration
	// ReadOnly starts the server with mutations rejected (503) — the
	// serving posture of a replication follower. Promotion lifts it.
	ReadOnly bool
	// Repl is the follower-side replication controller (status +
	// promotion); nil on a store that is not following a leader.
	Repl ReplController
}

func (o Options) withDefaults() Options {
	if o.CacheEntries == 0 {
		o.CacheEntries = 1024
	}
	if o.Workers <= 0 {
		o.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 8 * o.Workers
	}
	return o
}

// Server serves a Store over HTTP. It implements http.Handler.
type Server struct {
	store *smartstore.Store
	opts  Options
	cache *queryCache
	mux   *http.ServeMux
	start time.Time

	sem chan struct{}
	// inflight counts admitted-or-waiting requests; bounded by
	// Workers+MaxQueue so at most MaxQueue wait while Workers execute.
	inflight atomic.Int64

	requests atomic.Uint64
	rejected atomic.Uint64

	// insMu makes id allocation atomic with batch commit: without it,
	// an auto-allocated id could collide with a concurrent explicit-id
	// batch that commits first, failing the auto-id client's insert.
	// Inserts serialize on the store's write lock anyway, so this
	// costs no concurrency. nextID is only touched under insMu.
	insMu  sync.Mutex
	nextID uint64

	// metrics is the serving layer's registry and hot-path sinks
	// (metrics.go); nil when Options.DisableMetrics is set.
	metrics *serverMetrics
	build   version.BuildInfo

	// readOnly rejects mutations while the store follows a leader;
	// promotion clears it (repl.go).
	readOnly atomic.Bool
}

// New builds a Server over store. Fresh ids for inserts without one are
// allocated above the store's current maximum.
func New(store *smartstore.Store, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		store: store,
		opts:  opts,
		mux:   http.NewServeMux(),
		start: time.Now(),
		sem:   make(chan struct{}, opts.Workers),
	}
	if opts.CacheEntries > 0 {
		s.cache = newQueryCache(opts.CacheEntries)
	}
	s.nextID = store.MaxFileID()
	s.build = version.Build()
	if !opts.DisableMetrics {
		s.metrics = newServerMetrics(s)
		store.Instrument(s.metrics.reg)
		s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	}

	s.mux.HandleFunc("POST /v1/query", s.admitted("query", s.handleQuery))
	s.mux.HandleFunc("POST /v1/query/point", s.admitted("point", s.handlePoint))
	s.mux.HandleFunc("POST /v1/query/range", s.admitted("range", s.handleRange))
	s.mux.HandleFunc("POST /v1/query/topk", s.admitted("topk", s.handleTopK))
	s.mux.HandleFunc("POST /v1/insert", s.admitted("insert", s.handleInsert))
	s.mux.HandleFunc("POST /v1/delete", s.admitted("delete", s.handleDelete))
	s.mux.HandleFunc("POST /v1/modify", s.admitted("modify", s.handleModify))
	s.mux.HandleFunc("POST /v1/flush", s.admitted("flush", s.handleFlush))
	s.mux.HandleFunc("GET /v1/stats", s.admitted("stats", s.handleStats))
	s.mux.HandleFunc("GET /v1/repl/snapshot", s.admitted("repl_snapshot", s.handleReplSnapshot))
	s.mux.HandleFunc("GET /v1/repl/wal", s.admitted("repl_wal", s.handleReplWAL))
	s.mux.HandleFunc("GET /v1/repl/status", s.admitted("repl_status", s.handleReplStatus))
	s.mux.HandleFunc("POST /v1/repl/promote", s.admitted("repl_promote", s.handleReplPromote))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	s.readOnly.Store(opts.ReadOnly)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errBusy is returned by admission when the wait queue is full.
var errBusy = errors.New("server at capacity")

// admit blocks until a worker slot frees, the request is cancelled, or
// the wait queue overflows. On success the caller must invoke release.
func (s *Server) admit(r *http.Request) (release func(), err error) {
	if s.inflight.Add(1) > int64(s.opts.Workers+s.opts.MaxQueue) {
		s.inflight.Add(-1)
		return nil, errBusy
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem; s.inflight.Add(-1) }, nil
	case <-r.Context().Done():
		s.inflight.Add(-1)
		return nil, r.Context().Err()
	}
}

// admitted wraps a handler with admission control, request accounting,
// instrumentation (per-endpoint counters and latency, admission wait,
// trace capture, slow-query logging) and error mapping.
func (s *Server) admitted(endpoint string, h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.metrics.observeEndpoint(endpoint)
		start := time.Now()
		release, err := s.admit(r)
		if err != nil {
			s.rejected.Add(1)
			if errors.Is(err, errBusy) {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, err)
			} else {
				// Client went away while queued.
				writeError(w, 499, err)
			}
			return
		}
		wait := time.Since(start)
		s.metrics.observeAdmissionWait(wait)
		var tr *obs.QueryTrace
		if s.opts.SlowQuery > 0 || r.Header.Get(TraceHeader) != "" {
			var ctx context.Context
			ctx, tr = obs.WithTrace(r.Context())
			tr.AddPhase("admission_wait", wait)
			r = r.WithContext(ctx)
		}
		defer func() {
			release()
			total := time.Since(start)
			s.metrics.observeDuration(endpoint, total)
			if s.opts.SlowQuery > 0 && total >= s.opts.SlowQuery {
				s.logSlow(endpoint, total, tr)
			}
		}()
		if err := h(w, r); err != nil {
			var bad badRequestError
			switch {
			case errors.As(err, &bad):
				writeError(w, http.StatusBadRequest, err)
			case errors.Is(err, errReadOnly):
				// A follower rejecting a mutation: retryable against
				// this address once it is promoted.
				writeError(w, http.StatusServiceUnavailable, err)
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				// Client went away mid-query.
				writeError(w, 499, err)
			default:
				writeError(w, http.StatusInternalServerError, err)
			}
		}
	}
}

// badRequestError marks client errors (malformed body, unknown attrs).
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return badRequestError{fmt.Errorf(format, args...)}
}

// maxBodyBytes bounds request bodies (batch inserts dominate sizing).
const maxBodyBytes = 16 << 20

func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		return badRequest("decoding request: %v", err)
	}
	return nil
}

// decodeQueryRequest decodes a /v1/query body in whichever codec the
// request's Content-Type names: the binary frame format when it is
// wire.ContentType, JSON otherwise. Malformed frames — bad CRC, short
// payload, trailing bytes — answer 400 exactly like malformed JSON.
func decodeQueryRequest(r *http.Request, req *QueryRequest) error {
	if !wire.IsBinary(r.Header.Get("Content-Type")) {
		return decode(r, req)
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return badRequest("reading request: %v", err)
	}
	decoded, err := wire.DecodeRequest(body)
	if err != nil {
		return badRequest("decoding request: %v", err)
	}
	*req = *decoded
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// resolveMode replaces ModeDefault with the store's configured path so
// cache keys treat "default" and an explicit option equal to it as the
// same query.
func (s *Server) resolveMode(m smartstore.QueryMode) smartstore.QueryMode {
	if m != smartstore.ModeDefault {
		return m
	}
	if s.store.Mode() == smartstore.OnLine {
		return smartstore.ModeOnline
	}
	return smartstore.ModeOffline
}

// execQuery runs one validated query through the cache, which keys
// invalidation on the epochs of exactly the shards the query targets.
// The epoch vector is observed before executing so a mutation landing
// mid-query can only invalidate early, never leave a stale entry
// behind.
func (s *Server) execQuery(ctx context.Context, q smartstore.Query) (QueryResponse, error) {
	if s.cache == nil {
		resp, _, err := s.runQuery(ctx, q)
		return resp, err
	}
	key := queryKey(q, s.resolveMode(q.Options.Mode))
	epochs := s.store.ShardEpochs()
	if tr := obs.TraceFrom(ctx); tr != nil {
		lookupStart := time.Now()
		resp, ok := s.cache.get(key, epochs)
		tr.AddPhase("cache_lookup", time.Since(lookupStart))
		if ok {
			return resp, nil
		}
	} else if resp, ok := s.cache.get(key, epochs); ok {
		return resp, nil
	}
	resp, targets, err := s.runQuery(ctx, q)
	if err != nil {
		return QueryResponse{}, err
	}
	// Record-heavy answers are served but not cached: entries hold full
	// responses while the LRU bounds entry count, not bytes, so broad
	// projected answers could otherwise pin corpus-sized record arrays
	// across every cache slot.
	if len(resp.Records) <= maxCachedRecords {
		s.cache.put(key, targets, epochs, resp)
	}
	return resp, nil
}

// maxCachedRecords bounds the projected-record payload a single cache
// entry may hold; larger answers recompute on every request.
const maxCachedRecords = 1024

// runQuery executes q against the store and shapes the wire response,
// also returning the engine shard set the query targeted (the cache's
// invalidation key).
func (s *Server) runQuery(ctx context.Context, q smartstore.Query) (QueryResponse, []int, error) {
	tr := obs.TraceFrom(ctx)
	var execStart time.Time
	if tr != nil {
		execStart = time.Now()
	}
	res, err := s.store.Do(ctx, q)
	if tr != nil {
		tr.AddPhase("execute", time.Since(execStart))
	}
	if err != nil {
		if errors.Is(err, smartstore.ErrInvalidQuery) {
			return QueryResponse{}, nil, badRequestError{err}
		}
		return QueryResponse{}, nil, err
	}
	resp := QueryResponse{
		Kind:      q.Kind.String(),
		IDs:       res.IDs,
		Count:     len(res.IDs),
		Truncated: res.Truncated,
		Dists:     res.Dists,
		Report:    wireReport(res.Report),
	}
	if q.Options.IncludeRecords {
		resp.Records = make([]FileRecord, len(res.Records))
		for i := range res.Records {
			resp.Records[i] = RecordFromFile(&res.Records[i])
		}
	}
	return resp, res.Shards, nil
}

// maxBatchQueries bounds one /v1/query batch; beyond it the request is
// rejected outright rather than fanned out.
const maxBatchQueries = 256

// handleQuery serves the unified POST /v1/query endpoint: one query
// inline, or a batch under "queries". The whole request — batch
// included — runs under the single admission ticket the admitted
// wrapper already granted; batch members execute concurrently.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	tr := obs.TraceFrom(r.Context())
	decodeStart := time.Now()
	var req QueryRequest
	if err := decodeQueryRequest(r, &req); err != nil {
		return err
	}
	if tr != nil {
		tr.AddPhase("decode", time.Since(decodeStart))
	}
	if len(req.Queries) == 0 {
		q, err := req.WireQuery.Query()
		if err != nil {
			return badRequestError{err}
		}
		kindStart := time.Now()
		resp, err := s.execQuery(r.Context(), q)
		if err != nil {
			return err
		}
		s.metrics.observeQuery(q.Kind.String(), time.Since(kindStart))
		s.writeQueryResponse(w, r, resp)
		return nil
	}

	if len(req.Queries) > maxBatchQueries {
		return badRequest("batch of %d queries exceeds the %d limit", len(req.Queries), maxBatchQueries)
	}
	// Validate every member before running any: a malformed batch is
	// rejected wholesale, like a malformed single query.
	queries := make([]smartstore.Query, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := wq.Query()
		if err != nil {
			return badRequest("queries[%d]: %v", i, err)
		}
		queries[i] = q
	}
	results := make([]QueryResponse, len(queries))
	batchStart := time.Now()
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q smartstore.Query) {
			defer wg.Done()
			resp, err := s.execQuery(r.Context(), q)
			if err != nil {
				resp = QueryResponse{Kind: q.Kind.String(), Error: err.Error()}
			}
			results[i] = resp
		}(i, q)
	}
	wg.Wait()
	s.metrics.observeQuery("batch", time.Since(batchStart))
	writeBatchResponse(w, r, BatchQueryResponse{Results: results})
	return nil
}

// writeBatchResponse writes a batch answer in whichever codec the
// request's Accept header negotiated.
func writeBatchResponse(w http.ResponseWriter, r *http.Request, batch BatchQueryResponse) {
	if !wire.Accepts(r.Header.Get("Accept")) {
		writeJSON(w, http.StatusOK, batch)
		return
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	// Like writeJSON, a mid-stream write error only means the client
	// went away; the status is already committed.
	wire.EncodeBatchResponse(w, &batch)
}

// The legacy one-endpoint-per-kind routes remain as shims over the
// unified path: same validation, same cache, ids-only responses.

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) error {
	var req PointRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	return s.serveShim(w, r, WireQuery{Kind: "point", Path: req.Path})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) error {
	var req RangeRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	return s.serveShim(w, r, WireQuery{Kind: "range", Attrs: req.Attrs, Lo: req.Lo, Hi: req.Hi})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) error {
	var req TopKRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	return s.serveShim(w, r, WireQuery{Kind: "topk", Attrs: req.Attrs, Point: req.Point, K: req.K})
}

// serveShim funnels a legacy request through the unified execution
// path.
func (s *Server) serveShim(w http.ResponseWriter, r *http.Request, wq WireQuery) error {
	q, err := wq.Query()
	if err != nil {
		return badRequestError{err}
	}
	kindStart := time.Now()
	resp, err := s.execQuery(r.Context(), q)
	if err != nil {
		return err
	}
	s.metrics.observeQuery(q.Kind.String(), time.Since(kindStart))
	s.writeQueryResponse(w, r, resp)
	return nil
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) error {
	if err := s.writable(); err != nil {
		return err
	}
	var req InsertRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if len(req.Files) == 0 {
		return badRequest("insert: empty batch")
	}
	files := make([]*smartstore.File, len(req.Files))
	ids := make([]uint64, len(req.Files))
	s.insMu.Lock()
	for i, rec := range req.Files {
		f, err := rec.File()
		if err != nil {
			s.insMu.Unlock()
			return badRequest("insert[%d]: %v", i, err)
		}
		if f.ID == 0 {
			s.nextID++
			f.ID = s.nextID
		} else if f.ID > s.nextID {
			// Keep the allocator above explicit ids so later
			// auto-assigned ones cannot collide with them.
			s.nextID = f.ID
		}
		files[i] = f
		ids[i] = f.ID
	}
	rep, err := s.store.InsertBatch(files)
	s.insMu.Unlock()
	if err != nil {
		return badRequest("insert: %v", err)
	}
	writeJSON(w, http.StatusOK, InsertResponse{
		Inserted: len(files),
		IDs:      ids,
		Epoch:    s.store.Epoch(),
		Report:   wireReport(rep),
	})
	return nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	if err := s.writable(); err != nil {
		return err
	}
	var req DeleteRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if req.ID == 0 {
		return badRequest("delete: missing id")
	}
	rep, found, err := s.store.Delete(req.ID)
	if err != nil {
		// A WAL append failure: the delete was rejected before applying
		// — surface it as a server-side error, not a quiet not-found.
		return err
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Found:  found,
		Epoch:  s.store.Epoch(),
		Report: wireReport(rep),
	})
	return nil
}

func (s *Server) handleModify(w http.ResponseWriter, r *http.Request) error {
	if err := s.writable(); err != nil {
		return err
	}
	var req ModifyRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if req.File.ID == 0 {
		return badRequest("modify: missing id")
	}
	// Merge semantics: attributes not named in the request keep their
	// stored values — a partial attrs map must not zero the rest of
	// the vector (Store.Modify replaces it wholesale).
	existing, ok := s.store.FileByID(req.File.ID)
	if !ok {
		writeJSON(w, http.StatusOK, MutateResponse{
			Found: false,
			Epoch: s.store.Epoch(),
		})
		return nil
	}
	for name, v := range req.File.Attrs {
		a, err := metadata.ParseAttr(name)
		if err != nil {
			return badRequest("modify: %v", err)
		}
		existing.Attrs[a] = v
	}
	rep, found, err := s.store.Modify(&existing)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Found:  found,
		Epoch:  s.store.Epoch(),
		Report: wireReport(rep),
	})
	return nil
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) error {
	if err := s.writable(); err != nil {
		return err
	}
	if err := s.store.Flush(); err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, FlushResponse{Epoch: s.store.Epoch()})
	return nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	st := s.store.Stats()
	perShard := make([]ShardStats, len(st.PerShard))
	for i, p := range st.PerShard {
		perShard[i] = ShardStats{
			Shard:      p.Shard,
			Units:      p.Units,
			IndexUnits: p.IndexUnits,
			TreeHeight: p.TreeHeight,
			Files:      p.Files,
			Trees:      p.Trees,
			Epoch:      p.Epoch,
		}
	}
	var walStats *WALStats
	if s.store.Durable() {
		ws := s.store.WALStats()
		walStats = &WALStats{
			Segments:               ws.Segments,
			Bytes:                  ws.Bytes,
			GroupCommits:           ws.GroupCommits,
			GroupedRecords:         ws.GroupedRecords,
			Rotations:              ws.Rotations,
			AutoCheckpoints:        ws.AutoCheckpoints,
			AutoCheckpointFailures: ws.AutoCheckpointFailures,
		}
	}
	placement := s.store.Placement()
	writeJSON(w, http.StatusOK, StatsResponse{
		Placement: &PlacementWire{
			Attrs:     AttrNames(placement.Attrs),
			Centroid:  placement.Centroid,
			Lo:        placement.Lo,
			Hi:        placement.Hi,
			MaxFileID: s.store.MaxFileID(),
		},
		Build: BuildWire{
			GoVersion: s.build.GoVersion,
			Module:    s.build.Module,
			Version:   s.build.Version,
			Revision:  s.build.Revision,
			Dirty:     s.build.Dirty,
		},
		WAL: walStats,
		Store: StoreStats{
			Units:             st.Units,
			IndexUnits:        st.IndexUnits,
			TreeHeight:        st.TreeHeight,
			Files:             st.Files,
			Trees:             st.Trees,
			IndexBytesTotal:   st.IndexBytesTotal,
			IndexBytesPerNode: st.IndexBytesPerNode,
			Epoch:             s.store.Epoch(),
			Shards:            st.Shards,
			PerShard:          perShard,
		},
		Server: ServerStats{
			UptimeSec: time.Since(s.start).Seconds(),
			Requests:  s.requests.Load(),
			Rejected:  s.rejected.Load(),
			Workers:   s.opts.Workers,
			MaxQueue:  s.opts.MaxQueue,
			Cache:     s.cache.stats(),
		},
	})
	return nil
}
