// Package server is the concurrent serving layer over a SmartStore:
// an HTTP/JSON metadata service (stdlib net/http only) exposing the
// point/range/top-k query paths and the insert/delete/modify update
// paths over the wire, in front of the thread-safe Store.
//
// Three mechanisms turn the library into a service:
//
//   - the Store's own concurrency layer (parallel readers, serialized
//     writers, a mutation epoch — see the root package);
//   - an LRU query-result cache keyed by normalized query text and
//     invalidated wholesale on any epoch bump, so the common read-heavy
//     metadata workload short-circuits repeated complex queries;
//   - bounded worker-pool admission: at most Workers requests execute
//     concurrently and at most MaxQueue more wait; beyond that the
//     server sheds load with 503 instead of collapsing under it.
//
// See DESIGN.md §5 for the endpoint reference with curl examples.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	smartstore "repro"
	"repro/internal/metadata"
)

// Options parameterizes a Server. The zero value selects defaults.
type Options struct {
	// CacheEntries bounds the query-result cache; 0 selects 1024 and a
	// negative value disables caching.
	CacheEntries int
	// Workers bounds concurrently executing requests; 0 selects
	// 2×GOMAXPROCS.
	Workers int
	// MaxQueue bounds requests waiting for a worker slot; 0 selects
	// 8×Workers. Waiters beyond the bound are rejected with 503.
	MaxQueue int
}

func (o Options) withDefaults() Options {
	if o.CacheEntries == 0 {
		o.CacheEntries = 1024
	}
	if o.Workers <= 0 {
		o.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 8 * o.Workers
	}
	return o
}

// Server serves a Store over HTTP. It implements http.Handler.
type Server struct {
	store *smartstore.Store
	opts  Options
	cache *queryCache
	mux   *http.ServeMux
	start time.Time

	sem chan struct{}
	// inflight counts admitted-or-waiting requests; bounded by
	// Workers+MaxQueue so at most MaxQueue wait while Workers execute.
	inflight atomic.Int64

	requests atomic.Uint64
	rejected atomic.Uint64

	// insMu makes id allocation atomic with batch commit: without it,
	// an auto-allocated id could collide with a concurrent explicit-id
	// batch that commits first, failing the auto-id client's insert.
	// Inserts serialize on the store's write lock anyway, so this
	// costs no concurrency. nextID is only touched under insMu.
	insMu  sync.Mutex
	nextID uint64
}

// New builds a Server over store. Fresh ids for inserts without one are
// allocated above the store's current maximum.
func New(store *smartstore.Store, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		store: store,
		opts:  opts,
		mux:   http.NewServeMux(),
		start: time.Now(),
		sem:   make(chan struct{}, opts.Workers),
	}
	if opts.CacheEntries > 0 {
		s.cache = newQueryCache(opts.CacheEntries)
	}
	s.nextID = store.MaxFileID()

	s.mux.HandleFunc("POST /v1/query/point", s.admitted(s.handlePoint))
	s.mux.HandleFunc("POST /v1/query/range", s.admitted(s.handleRange))
	s.mux.HandleFunc("POST /v1/query/topk", s.admitted(s.handleTopK))
	s.mux.HandleFunc("POST /v1/insert", s.admitted(s.handleInsert))
	s.mux.HandleFunc("POST /v1/delete", s.admitted(s.handleDelete))
	s.mux.HandleFunc("POST /v1/modify", s.admitted(s.handleModify))
	s.mux.HandleFunc("POST /v1/flush", s.admitted(s.handleFlush))
	s.mux.HandleFunc("GET /v1/stats", s.admitted(s.handleStats))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errBusy is returned by admission when the wait queue is full.
var errBusy = errors.New("server at capacity")

// admit blocks until a worker slot frees, the request is cancelled, or
// the wait queue overflows. On success the caller must invoke release.
func (s *Server) admit(r *http.Request) (release func(), err error) {
	if s.inflight.Add(1) > int64(s.opts.Workers+s.opts.MaxQueue) {
		s.inflight.Add(-1)
		return nil, errBusy
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem; s.inflight.Add(-1) }, nil
	case <-r.Context().Done():
		s.inflight.Add(-1)
		return nil, r.Context().Err()
	}
}

// admitted wraps a handler with admission control, request accounting
// and error mapping.
func (s *Server) admitted(h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		release, err := s.admit(r)
		if err != nil {
			s.rejected.Add(1)
			if errors.Is(err, errBusy) {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, err)
			} else {
				// Client went away while queued.
				writeError(w, 499, err)
			}
			return
		}
		defer release()
		if err := h(w, r); err != nil {
			var bad badRequestError
			if errors.As(err, &bad) {
				writeError(w, http.StatusBadRequest, err)
			} else {
				writeError(w, http.StatusInternalServerError, err)
			}
		}
	}
}

// badRequestError marks client errors (malformed body, unknown attrs).
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return badRequestError{fmt.Errorf(format, args...)}
}

// maxBodyBytes bounds request bodies (batch inserts dominate sizing).
const maxBodyBytes = 16 << 20

func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		return badRequest("decoding request: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// cachedQuery serves a query through the epoch-keyed cache: the epoch
// is observed before executing so a mutation landing mid-query can only
// invalidate early, never leave a stale entry behind. key is a thunk so
// the disabled-cache hot path skips key construction entirely.
func (s *Server) cachedQuery(key func() string, run func() ([]uint64, smartstore.QueryReport)) QueryResponse {
	if s.cache == nil {
		ids, rep := run()
		return QueryResponse{IDs: ids, Count: len(ids), Report: wireReport(rep)}
	}
	k := key()
	epoch := s.store.Epoch()
	if ids, rep, ok := s.cache.get(k, epoch); ok {
		return QueryResponse{IDs: ids, Count: len(ids), Cached: true, Report: wireReport(rep)}
	}
	ids, rep := run()
	s.cache.put(k, epoch, ids, rep)
	return QueryResponse{IDs: ids, Count: len(ids), Report: wireReport(rep)}
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) error {
	var req PointRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if req.Path == "" {
		return badRequest("point query missing path")
	}
	resp := s.cachedQuery(func() string { return pointKey(req.Path) }, func() ([]uint64, smartstore.QueryReport) {
		return s.store.PointQuery(req.Path)
	})
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) error {
	var req RangeRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	attrs, err := parseAttrs(req.Attrs)
	if err != nil {
		return badRequest("range query: %v", err)
	}
	if len(req.Lo) != len(attrs) || len(req.Hi) != len(attrs) {
		return badRequest("range query: %d attrs but %d lo / %d hi bounds",
			len(attrs), len(req.Lo), len(req.Hi))
	}
	resp := s.cachedQuery(func() string { return rangeKey(attrs, req.Lo, req.Hi) }, func() ([]uint64, smartstore.QueryReport) {
		return s.store.RangeQuery(attrs, req.Lo, req.Hi)
	})
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) error {
	var req TopKRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	attrs, err := parseAttrs(req.Attrs)
	if err != nil {
		return badRequest("topk query: %v", err)
	}
	if len(req.Point) != len(attrs) {
		return badRequest("topk query: %d attrs but %d point values", len(attrs), len(req.Point))
	}
	if req.K < 1 {
		return badRequest("topk query: invalid k %d", req.K)
	}
	resp := s.cachedQuery(func() string { return topKKey(attrs, req.Point, req.K) }, func() ([]uint64, smartstore.QueryReport) {
		return s.store.TopKQuery(attrs, req.Point, req.K)
	})
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) error {
	var req InsertRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if len(req.Files) == 0 {
		return badRequest("insert: empty batch")
	}
	files := make([]*smartstore.File, len(req.Files))
	ids := make([]uint64, len(req.Files))
	s.insMu.Lock()
	for i, rec := range req.Files {
		f, err := rec.File()
		if err != nil {
			s.insMu.Unlock()
			return badRequest("insert[%d]: %v", i, err)
		}
		if f.ID == 0 {
			s.nextID++
			f.ID = s.nextID
		} else if f.ID > s.nextID {
			// Keep the allocator above explicit ids so later
			// auto-assigned ones cannot collide with them.
			s.nextID = f.ID
		}
		files[i] = f
		ids[i] = f.ID
	}
	rep, err := s.store.InsertBatch(files)
	s.insMu.Unlock()
	if err != nil {
		return badRequest("insert: %v", err)
	}
	writeJSON(w, http.StatusOK, InsertResponse{
		Inserted: len(files),
		IDs:      ids,
		Epoch:    s.store.Epoch(),
		Report:   wireReport(rep),
	})
	return nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	var req DeleteRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if req.ID == 0 {
		return badRequest("delete: missing id")
	}
	rep, found := s.store.Delete(req.ID)
	writeJSON(w, http.StatusOK, MutateResponse{
		Found:  found,
		Epoch:  s.store.Epoch(),
		Report: wireReport(rep),
	})
	return nil
}

func (s *Server) handleModify(w http.ResponseWriter, r *http.Request) error {
	var req ModifyRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if req.File.ID == 0 {
		return badRequest("modify: missing id")
	}
	// Merge semantics: attributes not named in the request keep their
	// stored values — a partial attrs map must not zero the rest of
	// the vector (Store.Modify replaces it wholesale).
	existing, ok := s.store.FileByID(req.File.ID)
	if !ok {
		writeJSON(w, http.StatusOK, MutateResponse{
			Found: false,
			Epoch: s.store.Epoch(),
		})
		return nil
	}
	for name, v := range req.File.Attrs {
		a, err := metadata.ParseAttr(name)
		if err != nil {
			return badRequest("modify: %v", err)
		}
		existing.Attrs[a] = v
	}
	rep, found := s.store.Modify(&existing)
	writeJSON(w, http.StatusOK, MutateResponse{
		Found:  found,
		Epoch:  s.store.Epoch(),
		Report: wireReport(rep),
	})
	return nil
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) error {
	s.store.Flush()
	writeJSON(w, http.StatusOK, FlushResponse{Epoch: s.store.Epoch()})
	return nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	st := s.store.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Store: StoreStats{
			Units:             st.Units,
			IndexUnits:        st.IndexUnits,
			TreeHeight:        st.TreeHeight,
			Files:             st.Files,
			Trees:             st.Trees,
			IndexBytesTotal:   st.IndexBytesTotal,
			IndexBytesPerNode: st.IndexBytesPerNode,
			Epoch:             s.store.Epoch(),
		},
		Server: ServerStats{
			UptimeSec: time.Since(s.start).Seconds(),
			Requests:  s.requests.Load(),
			Rejected:  s.rejected.Load(),
			Workers:   s.opts.Workers,
			MaxQueue:  s.opts.MaxQueue,
			Cache:     s.cache.stats(),
		},
	})
	return nil
}
