package server

import (
	"encoding/json"
	"log"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/version"
	"repro/internal/wire"
)

// TraceHeader is the request header that asks for an inline per-phase
// timing breakdown: any non-empty value makes the query response carry
// a Trace object (wire.go) with the admission wait, cache lookup,
// per-shard execution, derived merge time and encode time of the
// request.
const TraceHeader = "X-Smartstore-Trace"

// endpointNames fixes the label set of the per-endpoint families —
// metrics exist from the first scrape with zero values, so dashboards
// and the CI coherence checks never see series pop into existence.
var endpointNames = []string{
	"query", "point", "range", "topk",
	"insert", "delete", "modify", "flush", "stats",
	"repl_snapshot", "repl_wal", "repl_status", "repl_promote",
}

// queryKinds labels the per-kind query duration family. "batch" covers
// a whole multi-query request.
var queryKinds = []string{"point", "range", "topk", "batch"}

// endpointMetrics is one endpoint's counter + latency histogram.
type endpointMetrics struct {
	requests obs.Counter
	dur      obs.Histogram
}

// serverMetrics owns the serving layer's registry and every family the
// server itself feeds. A nil *serverMetrics (Options.DisableMetrics)
// turns every record call into a nil check.
type serverMetrics struct {
	reg           *obs.Registry
	endpoints     map[string]*endpointMetrics
	queryDur      map[string]*obs.Histogram
	admissionWait obs.Histogram
	scrapes       obs.Counter
}

// newServerMetrics builds the registry and registers the server-level
// families; store-level families are added by store.Instrument.
func newServerMetrics(s *Server) *serverMetrics {
	m := &serverMetrics{
		reg:       obs.NewRegistry(),
		endpoints: make(map[string]*endpointMetrics, len(endpointNames)),
		queryDur:  make(map[string]*obs.Histogram, len(queryKinds)),
	}
	for _, name := range endpointNames {
		em := &endpointMetrics{}
		m.endpoints[name] = em
		m.reg.RegisterCounter("smartstore_http_requests_total",
			obs.Labels("endpoint", name),
			"HTTP requests received per endpoint (admitted or not).", &em.requests)
		m.reg.RegisterHistogram("smartstore_http_request_duration_seconds",
			obs.Labels("endpoint", name),
			"Wall time of admitted requests per endpoint, admission wait included.",
			obs.ScaleNanos, &em.dur)
	}
	for _, kind := range queryKinds {
		h := &obs.Histogram{}
		m.queryDur[kind] = h
		m.reg.RegisterHistogram("smartstore_query_duration_seconds",
			obs.Labels("kind", kind),
			"Query execution time by kind (cache included), regardless of which endpoint carried it.",
			obs.ScaleNanos, h)
	}
	m.reg.RegisterHistogram("smartstore_admission_wait_seconds", "",
		"Time admitted requests spent waiting for a worker slot.",
		obs.ScaleNanos, &m.admissionWait)
	m.reg.RegisterCounterFunc("smartstore_requests_rejected_total", "",
		"Requests shed by admission control (queue overflow or client gone).",
		func() float64 { return float64(s.rejected.Load()) })
	m.reg.RegisterGaugeFunc("smartstore_inflight_requests", "",
		"Requests currently admitted or waiting for a worker slot.",
		func() float64 { return float64(s.inflight.Load()) })
	m.reg.RegisterGaugeFunc("smartstore_uptime_seconds", "",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	m.reg.RegisterCounter("smartstore_metrics_scrapes_total", "",
		"Scrapes of /v1/metrics.", &m.scrapes)
	for _, c := range []struct {
		name, help string
		get        func(CacheStats) uint64
	}{
		{"smartstore_cache_hits_total", "Query-cache hits.", func(cs CacheStats) uint64 { return cs.Hits }},
		{"smartstore_cache_misses_total", "Query-cache misses.", func(cs CacheStats) uint64 { return cs.Misses }},
		{"smartstore_cache_evictions_total", "Query-cache LRU evictions.", func(cs CacheStats) uint64 { return cs.Evictions }},
		{"smartstore_cache_invalidations_total", "Query-cache epoch invalidations.", func(cs CacheStats) uint64 { return cs.Invalidations }},
	} {
		get := c.get
		m.reg.RegisterCounterFunc(c.name, "", c.help,
			func() float64 { return float64(get(s.cache.stats())) })
	}
	b := version.Build()
	m.reg.RegisterGaugeFunc("smartstore_build_info",
		obs.Labels("go_version", b.GoVersion, "version", b.Version),
		"Build information; the value is always 1.",
		func() float64 { return 1 })
	return m
}

// observeEndpoint feeds one endpoint's request counter.
func (m *serverMetrics) observeEndpoint(endpoint string) {
	if m == nil {
		return
	}
	if em := m.endpoints[endpoint]; em != nil {
		em.requests.Inc()
	}
}

// observeDuration feeds one endpoint's latency histogram.
func (m *serverMetrics) observeDuration(endpoint string, d time.Duration) {
	if m == nil {
		return
	}
	if em := m.endpoints[endpoint]; em != nil {
		em.dur.Observe(uint64(d))
	}
}

// observeAdmissionWait feeds the worker-slot wait histogram.
func (m *serverMetrics) observeAdmissionWait(d time.Duration) {
	if m == nil {
		return
	}
	m.admissionWait.Observe(uint64(d))
}

// observeQuery feeds the per-kind query duration histogram.
func (m *serverMetrics) observeQuery(kind string, d time.Duration) {
	if m == nil {
		return
	}
	if h := m.queryDur[kind]; h != nil {
		h.Observe(uint64(d))
	}
}

// handleMetrics serves GET /v1/metrics. It bypasses admission control
// deliberately: a scrape during overload is exactly when the metrics
// matter, and exposition cost is bounded by the registered series, not
// by request volume.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.scrapes.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}

// logSlow emits the -slow-query log line for an over-threshold request.
func (s *Server) logSlow(endpoint string, total time.Duration, tr *obs.QueryTrace) {
	log.Printf("smartstored: slow %s request: total=%s %s", endpoint, total, tr)
}

// writeQueryResponse writes a single-query response in whichever codec
// the request's Accept header negotiated, attaching the inline trace
// when the request carried the trace header.
//
// On the JSON path the encode phase is measured by marshalling the
// response once before the real write — traced requests pay for a
// second marshal; untraced ones take the plain path. On the binary
// path the bulk of the encode (header + id/record chunks) streams
// first and is timed for real; the trace rides in the trailer frame,
// which is built after the phase is stamped, so no double encode.
func (s *Server) writeQueryResponse(w http.ResponseWriter, r *http.Request, resp QueryResponse) {
	tr := obs.TraceFrom(r.Context())
	traced := tr != nil && r.Header.Get(TraceHeader) != ""
	if wire.Accepts(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", wire.ContentType)
		w.WriteHeader(http.StatusOK)
		enc := wire.NewResponseEncoder(w)
		encStart := time.Now()
		enc.WriteHeader(resp.Kind)
		enc.WriteIDs(resp.IDs, resp.Dists)
		enc.WriteRecords(resp.Records)
		if traced {
			tr.AddPhase("encode", time.Since(encStart))
			resp.Trace = traceWire(tr)
		}
		// Like writeJSON, a mid-stream write error only means the
		// client went away; the status is already committed.
		enc.WriteTrailer(&resp)
		return
	}
	if traced {
		encStart := time.Now()
		if _, err := json.Marshal(resp); err == nil {
			tr.AddPhase("encode", time.Since(encStart))
		}
		resp.Trace = traceWire(tr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// traceWire shapes a QueryTrace for the wire: phases in recording
// order with a derived "merge" phase inserted after "execute" (execute
// wall time minus the slowest non-pruned shard — the fan-out's
// collect-and-merge overhead), and the per-shard breakdown alongside.
func traceWire(tr *obs.QueryTrace) *TraceWire {
	phases := tr.Phases()
	shards := tr.Shards()
	total := time.Since(tr.Start)
	for _, p := range phases {
		// Start is stamped after admission, so the wait phase is added
		// back in for the true request total.
		if p.Name == "admission_wait" {
			total += p.Dur
		}
	}
	var slowest time.Duration
	for _, sh := range shards {
		if !sh.Pruned && sh.Dur > slowest {
			slowest = sh.Dur
		}
	}
	out := &TraceWire{TotalMs: ms(total)}
	for _, p := range phases {
		out.Phases = append(out.Phases, PhaseWire{Name: p.Name, Ms: ms(p.Dur)})
		if p.Name == "execute" && len(shards) > 0 {
			merge := p.Dur - slowest
			if merge < 0 {
				merge = 0
			}
			out.Phases = append(out.Phases, PhaseWire{Name: "merge", Ms: ms(merge)})
		}
	}
	for _, sh := range shards {
		out.Shards = append(out.Shards, ShardWire{Shard: sh.Shard, Ms: ms(sh.Dur), Pruned: sh.Pruned})
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
