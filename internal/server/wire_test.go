package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// postWire posts one /v1/query request in the chosen codecs and
// returns the response body and status. reqBinary picks the request
// encoding; respBinary sets the Accept header.
func postWire(t *testing.T, url string, req *QueryRequest, reqBinary, respBinary bool) (int, string, []byte) {
	t.Helper()
	var body []byte
	var err error
	contentType := "application/json"
	if reqBinary {
		body, err = wire.EncodeRequest(req)
		contentType = wire.ContentType
	} else {
		body, err = json.Marshal(req)
	}
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", contentType)
	if respBinary {
		hreq.Header.Set("Accept", wire.ContentType)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), raw
}

// decodeWire decodes a /v1/query response body by its content type.
func decodeWire(t *testing.T, contentType string, raw []byte, batch bool) any {
	t.Helper()
	if wire.IsBinary(contentType) {
		if batch {
			out, err := wire.DecodeBatchResponseBytes(raw)
			if err != nil {
				t.Fatalf("binary batch decode: %v", err)
			}
			return out
		}
		out, err := wire.DecodeResponseBytes(raw)
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		return out
	}
	if batch {
		out := &BatchQueryResponse{}
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("json batch decode: %v", err)
		}
		return out
	}
	out := &QueryResponse{}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	return out
}

// TestCodecEquivalenceOverHTTP drives every query shape through all
// four request/response codec combinations and demands the identical
// decoded value: the binary codec is a transport, not a dialect.
func TestCodecEquivalenceOverHTTP(t *testing.T) {
	ts, _, set := newTestServer(t, Options{CacheEntries: -1})
	f := set.Files[3]
	shapes := map[string]*QueryRequest{
		"point": {WireQuery: WireQuery{Kind: "point", Path: f.Path}},
		"point-records": {WireQuery: WireQuery{
			Kind: "point", Path: f.Path, IncludeRecords: true}},
		"range": {WireQuery: WireQuery{
			Kind: "range", Attrs: defaultNames(),
			Lo: []float64{0, 0, 0}, Hi: []float64{1e9, 1e12, 1e12}}},
		"range-limit": {WireQuery: WireQuery{
			Kind: "range", Attrs: defaultNames(),
			Lo: []float64{0, 0, 0}, Hi: []float64{1e9, 1e12, 1e12}, Limit: 5}},
		"range-empty": {WireQuery: WireQuery{
			Kind: "range", Attrs: []string{"mtime"}, Lo: []float64{-2}, Hi: []float64{-1}}},
		"topk": {WireQuery: WireQuery{
			Kind: "topk", Attrs: []string{"mtime", "read_bytes"},
			Point: []float64{f.Attrs[0], f.Attrs[1]}, K: 7, IncludeDists: true}},
		"topk-records": {WireQuery: WireQuery{
			Kind: "topk", Attrs: []string{"mtime"}, Point: []float64{f.Attrs[0]},
			K: 3, IncludeRecords: true}},
		"batch": {Queries: []WireQuery{
			{Kind: "point", Path: f.Path},
			{Kind: "range", Attrs: []string{"mtime"}, Lo: []float64{0}, Hi: []float64{1e9}, Limit: 4},
			{Kind: "topk", Attrs: []string{"mtime"}, Point: []float64{0}, K: 2, IncludeDists: true},
		}},
	}
	// Each combination re-executes the query (the cache is off), and
	// the virtual-time latency sum is not bit-stable across executions
	// — zero the float accounting before comparing; everything else
	// (ids, dists, records, counts, flags) must match exactly.
	scrub := func(v any) {
		zero := func(r *QueryResponse) {
			r.Report.LatencySec = 0
			r.Report.VersionLatencySec = 0
		}
		switch r := v.(type) {
		case *QueryResponse:
			zero(r)
		case *BatchQueryResponse:
			for i := range r.Results {
				zero(&r.Results[i])
			}
		}
	}
	for name, req := range shapes {
		t.Run(name, func(t *testing.T) {
			batch := len(req.Queries) > 0
			var ref any
			for i, combo := range []struct{ reqBin, respBin bool }{
				{false, false}, {true, false}, {false, true}, {true, true},
			} {
				code, ct, raw := postWire(t, ts.URL, req, combo.reqBin, combo.respBin)
				if code != 200 {
					t.Fatalf("combo %d: status %d: %s", i, code, raw)
				}
				if combo.respBin && !wire.IsBinary(ct) {
					t.Fatalf("combo %d: asked for binary, got %q", i, ct)
				}
				got := decodeWire(t, ct, raw, batch)
				scrub(got)
				if i == 0 {
					ref = got
					continue
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("combo %d diverges from JSON/JSON:\n  ref: %+v\n  got: %+v", i, ref, got)
				}
			}
		})
	}
}

// TestCrossCodecCacheHit: the serving cache stores codec-agnostic
// results, so an entry populated through one codec serves a hit
// through the other — byte-identical to a fresh answer modulo the
// Cached flag.
func TestCrossCodecCacheHit(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{CacheEntries: 64})
	req := &QueryRequest{WireQuery: WireQuery{
		Kind: "range", Attrs: defaultNames(),
		Lo: []float64{0, 0, 0}, Hi: []float64{1e9, 1e12, 1e12}, Limit: 9}}

	// Populate through JSON, hit through binary.
	code, ct, raw := postWire(t, ts.URL, req, false, false)
	if code != 200 {
		t.Fatalf("populate: status %d", code)
	}
	cold := decodeWire(t, ct, raw, false).(*QueryResponse)
	if cold.Cached {
		t.Fatal("first query already cached")
	}
	code, ct, raw = postWire(t, ts.URL, req, true, true)
	if code != 200 {
		t.Fatalf("binary hit: status %d", code)
	}
	hit := decodeWire(t, ct, raw, false).(*QueryResponse)
	if !hit.Cached {
		t.Fatal("binary request missed a JSON-populated cache entry")
	}
	hit.Cached = false
	if !reflect.DeepEqual(hit, cold) {
		t.Fatalf("cache hit diverges across codecs:\n  cold: %+v\n  hit:  %+v", cold, hit)
	}

	// And the reverse: a binary-populated entry serves a JSON hit.
	req.Limit = 10 // fresh cache key
	if code, _, _ = postWire(t, ts.URL, req, true, true); code != 200 {
		t.Fatalf("binary populate: status %d", code)
	}
	code, ct, raw = postWire(t, ts.URL, req, false, false)
	if code != 200 {
		t.Fatalf("json hit: status %d", code)
	}
	if out := decodeWire(t, ct, raw, false).(*QueryResponse); !out.Cached {
		t.Fatal("JSON request missed a binary-populated cache entry")
	}
}

// TestMalformedBinaryRequestIs400: corrupt binary bodies answer 400
// with a JSON error — never a panic, hang, or 5xx.
func TestMalformedBinaryRequestIs400(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	good, err := wire.EncodeRequest(&QueryRequest{WireQuery: WireQuery{Kind: "point", Path: "/x"}})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		{},
		good[:6],
		append([]byte{0xFF, 0xFF, 0xFF, 0x7F}, good[4:]...),
		func() []byte { b := append([]byte(nil), good...); b[9] ^= 0xA5; return b }(),
	}
	for i, body := range bad {
		resp, err := http.Post(ts.URL+"/v1/query", wire.ContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Fatalf("case %d: 400 body is not a JSON error: %v", i, err)
		}
		resp.Body.Close()
	}
}

// TestBinaryResponseTraced: the trace rides the binary trailer when
// the trace header is set.
func TestBinaryResponseTraced(t *testing.T) {
	ts, _, set := newTestServer(t, Options{})
	body, err := wire.EncodeRequest(&QueryRequest{WireQuery: WireQuery{Kind: "point", Path: set.Files[0].Path}})
	if err != nil {
		t.Fatal(err)
	}
	hreq, _ := http.NewRequest("POST", ts.URL+"/v1/query", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", wire.ContentType)
	hreq.Header.Set("Accept", wire.ContentType)
	hreq.Header.Set(TraceHeader, "1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := wire.DecodeResponse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || len(out.Trace.Phases) == 0 {
		t.Fatal("binary response dropped the trace")
	}
	found := false
	for _, p := range out.Trace.Phases {
		if p.Name == "encode" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace phases %v missing encode", out.Trace.Phases)
	}
}

// TestBinaryStreamBoundedWrites: a large range answered over the
// binary codec streams in frames no larger than MaxEncodedWrite — the
// server never buffers the whole response.
func TestBinaryStreamBoundedWrites(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{CacheEntries: -1})
	req := &QueryRequest{WireQuery: WireQuery{
		Kind: "range", Attrs: defaultNames(),
		Lo: []float64{0, 0, 0}, Hi: []float64{1e12, 1e15, 1e15}, IncludeRecords: true}}
	code, ct, raw := postWire(t, ts.URL, req, true, true)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !wire.IsBinary(ct) {
		t.Fatalf("content type %q", ct)
	}
	out, err := wire.DecodeResponseBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count == 0 || len(out.Records) != len(out.IDs) {
		t.Fatalf("count %d, %d records for %d ids", out.Count, len(out.Records), len(out.IDs))
	}
	// The frame bound is structural: scan the raw stream and check
	// every frame observes MaxFrame.
	for off := 0; off < len(raw); {
		if len(raw)-off < 8 {
			t.Fatal("torn frame header")
		}
		n := int(uint32(raw[off]) | uint32(raw[off+1])<<8 | uint32(raw[off+2])<<16 | uint32(raw[off+3])<<24)
		if n > wire.MaxFrame {
			t.Fatalf("frame of %d bytes exceeds MaxFrame", n)
		}
		off += 8 + n
	}
}
