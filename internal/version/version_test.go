package version

import (
	"testing"
	"testing/quick"

	"repro/internal/metadata"
)

func chg(kind Kind, id uint64) Change {
	return Change{Kind: kind, File: &metadata.File{ID: id, Path: "/f"}}
}

func TestKindString(t *testing.T) {
	if Insert.String() != "insert" || Delete.String() != "delete" || Modify.String() != "modify" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestNewChainPanicsOnBadRatio(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewChain(0) did not panic")
		}
	}()
	NewChain(0)
}

func TestComprehensiveVersioning(t *testing.T) {
	c := NewChain(1)
	for i := 0; i < 5; i++ {
		c.Record(chg(Insert, uint64(i)))
	}
	if len(c.Versions()) != 5 {
		t.Fatalf("ratio-1 chain has %d versions, want 5", len(c.Versions()))
	}
	if c.PendingCount() != 0 {
		t.Fatalf("pending = %d, want 0", c.PendingCount())
	}
}

func TestAggregatedVersioning(t *testing.T) {
	c := NewChain(4)
	for i := 0; i < 10; i++ {
		c.Record(chg(Insert, uint64(i)))
	}
	if len(c.Versions()) != 2 {
		t.Fatalf("ratio-4 chain has %d versions after 10 changes, want 2", len(c.Versions()))
	}
	if c.PendingCount() != 2 {
		t.Fatalf("pending = %d, want 2", c.PendingCount())
	}
	if c.TotalChanges() != 10 {
		t.Fatalf("TotalChanges = %d, want 10", c.TotalChanges())
	}
}

func TestVersionSequenceAscending(t *testing.T) {
	c := NewChain(2)
	for i := 0; i < 8; i++ {
		c.Record(chg(Modify, uint64(i)))
	}
	vs := c.Versions()
	for i := 1; i < len(vs); i++ {
		if vs[i].Seq <= vs[i-1].Seq {
			t.Fatal("version sequence not ascending")
		}
	}
}

func TestWalkBackwardNewestFirst(t *testing.T) {
	c := NewChain(2)
	for i := 0; i < 7; i++ { // 3 sealed versions + 1 pending
		c.Record(chg(Insert, uint64(i)))
	}
	var seen []uint64
	n := c.WalkBackward(func(ch Change) bool {
		seen = append(seen, ch.File.ID)
		return true
	})
	if n != 7 {
		t.Fatalf("examined %d, want 7", n)
	}
	want := []uint64{6, 5, 4, 3, 2, 1, 0}
	for i, id := range want {
		if seen[i] != id {
			t.Fatalf("backward order = %v, want %v", seen, want)
		}
	}
}

func TestWalkBackwardEarlyStop(t *testing.T) {
	c := NewChain(1)
	for i := 0; i < 10; i++ {
		c.Record(chg(Insert, uint64(i)))
	}
	n := c.WalkBackward(func(ch Change) bool { return ch.File.ID != 7 })
	if n != 3 { // ids 9, 8, 7
		t.Fatalf("early stop examined %d, want 3", n)
	}
}

func TestEffectiveNewestWins(t *testing.T) {
	c := NewChain(3)
	c.Record(chg(Insert, 1))
	c.Record(chg(Modify, 1))
	c.Record(chg(Delete, 1))
	c.Record(chg(Insert, 2))
	eff := c.Effective()
	if len(eff) != 2 {
		t.Fatalf("Effective has %d entries, want 2", len(eff))
	}
	if eff[1].Kind != Delete {
		t.Fatalf("file 1 effective kind = %v, want delete", eff[1].Kind)
	}
	if eff[2].Kind != Insert {
		t.Fatalf("file 2 effective kind = %v, want insert", eff[2].Kind)
	}
}

func TestCompact(t *testing.T) {
	c := NewChain(2)
	for i := 0; i < 5; i++ {
		c.Record(chg(Insert, uint64(i)))
	}
	out := c.Compact()
	if len(out) != 5 {
		t.Fatalf("Compact returned %d changes, want 5", len(out))
	}
	// Oldest-first for replay.
	for i, ch := range out {
		if ch.File.ID != uint64(i) {
			t.Fatalf("Compact order = %v at %d", ch.File.ID, i)
		}
	}
	if c.TotalChanges() != 0 || len(c.Versions()) != 0 || c.PendingCount() != 0 {
		t.Fatal("chain not empty after Compact")
	}
}

func TestSizeBytesVsRatio(t *testing.T) {
	// Fig. 14(a): comprehensive versioning (ratio 1) costs the most
	// space; higher ratios aggregate and shrink per-version overhead.
	sizes := map[int]int{}
	for _, ratio := range []int{1, 4, 16} {
		c := NewChain(ratio)
		for i := 0; i < 160; i++ {
			c.Record(chg(Modify, uint64(i)))
		}
		sizes[ratio] = c.SizeBytes()
	}
	if !(sizes[1] > sizes[4] && sizes[4] > sizes[16]) {
		t.Fatalf("space should shrink with ratio: %v", sizes)
	}
}

// Property: TotalChanges always equals the number of Record calls, and
// WalkBackward visits exactly that many changes when not stopped.
func TestPropertyConservation(t *testing.T) {
	f := func(ratio8 uint8, n uint8) bool {
		ratio := int(ratio8%16) + 1
		c := NewChain(ratio)
		for i := 0; i < int(n); i++ {
			c.Record(chg(Insert, uint64(i)))
		}
		if c.TotalChanges() != int(n) {
			return false
		}
		count := 0
		c.WalkBackward(func(Change) bool { count++; return true })
		return count == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Effective never contains more entries than distinct file ids
// recorded, and every entry's id was recorded.
func TestPropertyEffectiveIDs(t *testing.T) {
	f := func(ids []uint8) bool {
		c := NewChain(3)
		distinct := map[uint64]bool{}
		for _, id := range ids {
			c.Record(chg(Modify, uint64(id)))
			distinct[uint64(id)] = true
		}
		eff := c.Effective()
		if len(eff) != len(distinct) {
			return false
		}
		for id := range eff {
			if !distinct[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
