package version

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary for /v1/stats: the Go
// toolchain it was built with and the module version (VCS-stamped when
// the build had one).
type BuildInfo struct {
	// GoVersion is the runtime's toolchain version.
	GoVersion string
	// Module is the main module path ("repro").
	Module string
	// Version is the main module version; "(devel)" for an unstamped
	// source build.
	Version string
	// Revision and Dirty carry the VCS stamp when present.
	Revision string
	Dirty    bool
}

// Build reads the binary's embedded build information. Fields the
// build did not stamp stay empty.
func Build() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = bi.Main.Path
	b.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}
