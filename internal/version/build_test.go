package version

import "testing"

func TestBuild(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Fatal("Build().GoVersion is empty")
	}
}
