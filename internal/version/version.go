// Package version implements the consistency-via-versioning mechanism of
// §4.4: each replicated (first-level) index unit accumulates metadata
// changes into attached versions instead of updating its replicas on
// every change.
//
// From t_{i−1} to t_i, insertions, deletions and modifications are
// aggregated into the t_i-th version. The version ratio — the paper's
// "file modification-to-version ratio" (§5.6) — controls how many
// changes seal one version: ratio 1 is comprehensive versioning (every
// change its own version), larger ratios aggregate more and cost less
// space. Queries "roll the version changes backwards": newest version
// first, so recent information wins and stale checks stop early.
package version

import (
	"fmt"

	"repro/internal/metadata"
)

// Kind classifies one metadata change.
type Kind int

// The change kinds §4.4 enumerates: "insertion, deletion and
// modification of file metadata, which are appropriately labeled in the
// versions".
const (
	Insert Kind = iota
	Delete
	Modify
)

// String returns the change kind's label.
func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Modify:
		return "modify"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Change is one labeled metadata change.
type Change struct {
	Kind Kind
	File *metadata.File
}

// Version is one sealed aggregate of changes: everything that happened
// between two version timestamps.
type Version struct {
	Seq     int
	Changes []Change
}

// Chain is the version list attached to one replicated index unit.
type Chain struct {
	ratio    int
	nextSeq  int
	pending  []Change
	versions []Version
}

// NewChain returns a chain sealing one version per ratio changes
// (ratio ≥ 1; 1 = comprehensive versioning).
func NewChain(ratio int) *Chain {
	if ratio < 1 {
		panic(fmt.Sprintf("version: ratio %d must be ≥ 1", ratio))
	}
	return &Chain{ratio: ratio}
}

// Ratio returns the modification-to-version ratio.
func (c *Chain) Ratio() int { return c.ratio }

// Record appends one change; when ratio changes have accumulated they
// are sealed into a new version.
func (c *Chain) Record(ch Change) {
	c.pending = append(c.pending, ch)
	if len(c.pending) >= c.ratio {
		c.seal()
	}
}

func (c *Chain) seal() {
	if len(c.pending) == 0 {
		return
	}
	// Aggregation (§5.6: "changes usually are aggregated to produce a
	// version to reduce space overhead"): multiple changes to the same
	// file within one version window coalesce into the newest one.
	// Larger ratios therefore cost less space per change.
	seen := make(map[uint64]bool, len(c.pending))
	compact := make([]Change, 0, len(c.pending))
	for i := len(c.pending) - 1; i >= 0; i-- {
		ch := c.pending[i]
		if seen[ch.File.ID] {
			continue
		}
		seen[ch.File.ID] = true
		compact = append(compact, ch)
	}
	// Restore oldest-first order within the version.
	for i, j := 0, len(compact)-1; i < j; i, j = i+1, j-1 {
		compact[i], compact[j] = compact[j], compact[i]
	}
	c.nextSeq++
	c.versions = append(c.versions, Version{
		Seq:     c.nextSeq,
		Changes: compact,
	})
	c.pending = nil
}

// Versions returns the sealed versions, oldest first.
func (c *Chain) Versions() []Version { return c.versions }

// PendingCount returns the number of changes not yet sealed.
func (c *Chain) PendingCount() int { return len(c.pending) }

// TotalChanges returns all recorded changes, sealed or pending.
func (c *Chain) TotalChanges() int {
	n := len(c.pending)
	for _, v := range c.versions {
		n += len(v.Changes)
	}
	return n
}

// WalkBackward visits changes newest-first — pending changes, then
// versions from t_i down to t_0, each version newest-change-first — and
// stops early when fn returns false. It returns the number of changes
// examined, which the cluster layer converts into the extra versioning
// latency of Fig. 14(b).
func (c *Chain) WalkBackward(fn func(Change) bool) int {
	examined := 0
	for i := len(c.pending) - 1; i >= 0; i-- {
		examined++
		if !fn(c.pending[i]) {
			return examined
		}
	}
	for v := len(c.versions) - 1; v >= 0; v-- {
		chs := c.versions[v].Changes
		for i := len(chs) - 1; i >= 0; i-- {
			examined++
			if !fn(chs[i]) {
				return examined
			}
		}
	}
	return examined
}

// Effective folds the chain into its net effect: for every file touched,
// the newest change wins. Deleted files map to a Delete change; inserted
// or modified files map to their latest state.
func (c *Chain) Effective() map[uint64]Change {
	out := make(map[uint64]Change)
	c.WalkBackward(func(ch Change) bool {
		if _, seen := out[ch.File.ID]; !seen {
			out[ch.File.ID] = ch
		}
		return true
	})
	return out
}

// Compact removes all versions (the reconfiguration of §4.4), returning
// every recorded change oldest-first so the caller can apply them to the
// original index unit and multicast them to remote replicas.
func (c *Chain) Compact() []Change {
	var out []Change
	for _, v := range c.versions {
		out = append(out, v.Changes...)
	}
	out = append(out, c.pending...)
	c.versions = nil
	c.pending = nil
	return out
}

// SizeBytes estimates the chain's memory footprint for Fig. 14(a):
// per-change label + file record, per-version header.
func (c *Chain) SizeBytes() int {
	size := 0
	for _, v := range c.versions {
		size += 16 // version header
		for _, ch := range v.Changes {
			size += 8 + ch.File.SizeBytes()
		}
	}
	for _, ch := range c.pending {
		size += 8 + ch.File.SizeBytes()
	}
	return size
}
