// Package core composes the SmartStore engine for the evaluation
// harness: it turns a trace specification into a fully deployed
// instance — generated workload, semantic placement, semantic R-tree,
// simulated cluster — with the virtual-population scaling derived from
// the trace's published size, and provides the recall-evaluation
// helpers shared by the experiments and benches.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options selects a workload and deployment shape.
type Options struct {
	// Spec is the trace to synthesize (required).
	Spec *trace.Spec
	// BaseFiles is the sample population before TIF scale-up. Zero
	// selects 2000.
	BaseFiles int
	// TIFSample is the scale-up factor applied to the in-memory sample.
	// Zero selects 1 (the virtual population is scaled regardless; see
	// VirtualTIF).
	TIFSample int
	// VirtualTIF is the TIF used for virtual-population scaling — the
	// paper's trace intensifying factor. Zero selects Spec.DefaultTIF.
	VirtualTIF int
	// Units is the number of storage units. Zero selects 60 (§5.1).
	Units int
	// Attrs is the grouping predicate. Nil selects the default query
	// attributes.
	Attrs []metadata.Attr
	// Versioning, VersionRatio and LazyThreshold configure §4.4/§3.4.
	Versioning    bool
	VersionRatio  int
	LazyThreshold float64
	// Seed drives workload synthesis and deployment decisions.
	Seed uint64
}

// Instance is a deployed SmartStore over a synthesized workload.
type Instance struct {
	Opt     Options
	Set     *trace.Set
	Tree    *semtree.Tree
	Cluster *cluster.Cluster
	// VirtualScale is the sample→virtual population multiplier used by
	// the cost model.
	VirtualScale float64
}

// NewInstance builds a deployed instance. It panics on a nil spec (the
// harness is internal; misuse is a programming error).
func NewInstance(opt Options) *Instance {
	if opt.Spec == nil {
		panic("core: Options.Spec is required")
	}
	if opt.BaseFiles == 0 {
		opt.BaseFiles = 2000
	}
	if opt.TIFSample == 0 {
		opt.TIFSample = 1
	}
	if opt.VirtualTIF == 0 {
		opt.VirtualTIF = opt.Spec.DefaultTIF
	}
	if opt.Units == 0 {
		opt.Units = 60
	}
	if opt.Attrs == nil {
		opt.Attrs = trace.DefaultQueryAttrs()
	}

	set := opt.Spec.GenerateScaled(opt.BaseFiles, opt.TIFSample, opt.Seed)
	sample := len(set.Files)
	virtualTotal := opt.Spec.NominalFiles * float64(opt.VirtualTIF)
	scale := virtualTotal / float64(sample)
	if scale < 1 {
		scale = 1
	}

	units := semtree.PlaceSemantic(set.Files, opt.Units, set.Norm, opt.Attrs)
	tree := semtree.Build(units, set.Norm, semtree.Config{Attrs: opt.Attrs})
	cl := cluster.New(tree, cluster.Config{
		Versioning:          opt.Versioning,
		VersionRatio:        opt.VersionRatio,
		LazyUpdateThreshold: opt.LazyThreshold,
		Seed:                opt.Seed,
		VirtualScale:        scale,
	})
	return &Instance{Opt: opt, Set: set, Tree: tree, Cluster: cl, VirtualScale: scale}
}

// WrapDeployment wraps an externally built tree (over the given
// workload) into a deployed Instance with no virtual scaling — used by
// ablation experiments that compare alternative constructions.
func WrapDeployment(set *trace.Set, tree *semtree.Tree, seed uint64) *Instance {
	cl := cluster.New(tree, cluster.Config{Seed: seed})
	return &Instance{
		Opt:          Options{Spec: set.Spec, Units: len(tree.Leaves()), Seed: seed, Attrs: tree.Attrs},
		Set:          set,
		Tree:         tree,
		Cluster:      cl,
		VirtualScale: 1,
	}
}

// QueryGen returns a deterministic complex-query generator over the
// instance's workload.
func (in *Instance) QueryGen(dist stats.Distribution, seed uint64) *trace.QueryGen {
	return trace.NewQueryGen(in.Set, dist, in.Opt.Attrs, seed)
}

// RecallOutcome aggregates recall and cost over a query batch.
type RecallOutcome struct {
	Recall   stats.Summary
	Latency  stats.Summary
	Messages stats.Summary
	Hops     *stats.Histogram
}

// NewRecallOutcome returns an empty outcome accumulator.
func NewRecallOutcome() *RecallOutcome {
	return &RecallOutcome{Hops: stats.NewHistogram(8)}
}

// ObserveRange runs one off-line range query and records recall against
// exhaustive truth.
func (in *Instance) ObserveRange(q query.Range, out *RecallOutcome) {
	got, res := in.Cluster.RangeOffline(q)
	truth := query.RangeTruth(in.Set.Files, q)
	if len(truth) > 0 {
		out.Recall.Add(stats.Recall(truth, got))
	}
	out.Latency.Add(float64(res.Latency))
	out.Messages.Add(float64(res.Messages))
	out.Hops.Add(res.Hops)
}

// ObserveTopK runs one off-line top-k query and records recall.
func (in *Instance) ObserveTopK(q query.TopK, out *RecallOutcome) {
	got, res := in.Cluster.TopKOffline(q)
	truth := query.TopKTruth(in.Set.Files, in.Set.Norm, q)
	if len(truth) > 0 {
		out.Recall.Add(stats.Recall(truth, got))
	}
	out.Latency.Add(float64(res.Latency))
	out.Messages.Add(float64(res.Messages))
	out.Hops.Add(res.Hops)
}

// String describes the instance for logs.
func (in *Instance) String() string {
	return fmt.Sprintf("%s×%d: %d files sampled, %d units, virtual scale %.0f",
		in.Opt.Spec.Name, in.Opt.VirtualTIF, len(in.Set.Files), in.Opt.Units, in.VirtualScale)
}
