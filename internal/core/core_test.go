package core

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func TestNewInstanceDefaults(t *testing.T) {
	in := NewInstance(Options{Spec: trace.MSN(), BaseFiles: 500, Units: 10, Seed: 1})
	if len(in.Set.Files) != 500 {
		t.Fatalf("sample = %d files, want 500", len(in.Set.Files))
	}
	if in.Opt.VirtualTIF != trace.MSN().DefaultTIF {
		t.Fatalf("VirtualTIF = %d, want default %d", in.Opt.VirtualTIF, trace.MSN().DefaultTIF)
	}
	// MSN×100 = 125M virtual files over a 500-file sample.
	if in.VirtualScale < 1e4 {
		t.Fatalf("VirtualScale = %v, implausibly small", in.VirtualScale)
	}
	if err := in.Tree.Validate(); err != nil {
		t.Fatalf("deployed tree invalid: %v", err)
	}
}

func TestNewInstancePanicsWithoutSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewInstance without spec did not panic")
		}
	}()
	NewInstance(Options{})
}

func TestObserveRangeAndTopK(t *testing.T) {
	in := NewInstance(Options{Spec: trace.EECS(), BaseFiles: 800, Units: 10, Seed: 3})
	gen := in.QueryGen(stats.Zipf, 7)
	out := NewRecallOutcome()
	for i := 0; i < 20; i++ {
		in.ObserveRange(gen.Range(0.05), out)
		in.ObserveTopK(gen.TopK(8), out)
	}
	if out.Latency.N() != 40 {
		t.Fatalf("latency observations = %d, want 40", out.Latency.N())
	}
	if out.Recall.N() == 0 {
		t.Fatal("no recall observations")
	}
	if m := out.Recall.Mean(); m < 0.5 || m > 1 {
		t.Fatalf("recall mean = %v out of plausible range", m)
	}
	if out.Hops.Total() != 40 {
		t.Fatalf("hops observations = %d, want 40", out.Hops.Total())
	}
}

func TestInstanceString(t *testing.T) {
	in := NewInstance(Options{Spec: trace.HP(), BaseFiles: 300, Units: 5, Seed: 9})
	s := in.String()
	if !strings.Contains(s, "HP") || !strings.Contains(s, "300 files") {
		t.Fatalf("String() = %q", s)
	}
}

func TestTIFSampleScalesPopulation(t *testing.T) {
	in := NewInstance(Options{Spec: trace.MSN(), BaseFiles: 100, TIFSample: 3, Units: 5, Seed: 11})
	if len(in.Set.Files) != 300 {
		t.Fatalf("TIF-sampled population = %d, want 300", len(in.Set.Files))
	}
}
