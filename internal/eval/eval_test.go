package eval

import (
	"context"
	"net"
	"net/http"
	"testing"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/trace"
)

// startServed builds an in-process store over the set and serves it on
// a loopback listener, returning a connected client.
func startServed(t *testing.T, set *trace.Set, cfg smartstore.Config) *client.Client {
	t.Helper()
	store, err := smartstore.Build(set.Files, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := &http.Server{Handler: server.New(store, server.Options{DisableMetrics: true})}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return client.New(ln.Addr().String())
}

func scenario(t *testing.T, name string) Scenario {
	t.Helper()
	scns, err := ByNames(name)
	if err != nil {
		t.Fatalf("ByNames(%q): %v", name, err)
	}
	return scns[0]
}

// With an explicit offline budget at least the group and shard counts,
// pruning is exhaustive, so every answer must equal the single union
// store's truth exactly: the end-to-end validation of the mirror and
// the replay protocol.
func TestRunExactWithExhaustiveBudget(t *testing.T) {
	scn := scenario(t, "zipf-hot")
	set, err := smartstore.GenerateTrace(scn.Trace, 400, 7)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	cl := startServed(t, set, smartstore.Config{
		Units: 24, Shards: 4, Seed: 7, OfflineGroupBudget: 1000,
	})

	res, err := Run(context.Background(), scn, Options{
		Client: cl, Set: set, Ops: 240, Clients: 4, Seed: 11,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("run reported %d op errors: %+v", res.Errors, res.PerOp)
	}
	if res.RangeRecall == nil || res.RangeRecall.Queries == 0 {
		t.Fatal("no range queries scored")
	}
	if res.RangeRecall.Mean != 1 || res.RangeRecall.Min != 1 {
		t.Fatalf("exhaustive range recall = %+v, want exactly 1", res.RangeRecall)
	}
	if res.TopKRecall == nil || res.TopKRecall.Mean != 1 || res.TopKRecall.Min != 1 {
		t.Fatalf("exhaustive topk recall = %+v, want exactly 1", res.TopKRecall)
	}
	if res.RangeSpurious != 0 {
		t.Fatalf("spurious range ids = %d, want 0", res.RangeSpurious)
	}
	if res.PointQueries == 0 || res.PointHitRate != 1 {
		t.Fatalf("point hit rate = %v over %d queries, want 1", res.PointHitRate, res.PointQueries)
	}
	if res.Mismatches != 0 {
		t.Fatalf("mutation verdict mismatches = %d", res.Mismatches)
	}
	if res.Throughput <= 0 || res.Ops != 240 || res.Files != 400 {
		t.Fatalf("implausible run shape: %+v", res)
	}
	for _, k := range []string{"point", "range", "topk"} {
		st, ok := res.PerOp[k]
		if !ok || st.Count == 0 {
			t.Fatalf("missing per-op latency for %s: %+v", k, res.PerOp)
		}
		if st.P50Ms > st.P99Ms {
			t.Fatalf("%s percentiles not monotone: %+v", k, st)
		}
	}
	if viol := res.CheckFloors(0.99, 0.99); len(viol) != 0 {
		t.Fatalf("floor gate flagged an exact run: %v", viol)
	}
}

// A mutating scenario must stay exact under the round/flush protocol:
// inserts land under server-allocated ids, deletes and modifies agree
// with the mirror's verdicts, and recall never degrades.
func TestRunMutatingScenarioStaysExact(t *testing.T) {
	scn := scenario(t, "insert-heavy")
	set, err := smartstore.GenerateTrace(scn.Trace, 300, 21)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	cl := startServed(t, set, smartstore.Config{
		Units: 24, Shards: 3, Seed: 21, OfflineGroupBudget: 1000,
	})

	res, err := Run(context.Background(), scn, Options{
		Client: cl, Set: set, Ops: 300, Clients: 4, Seed: 5, RoundSize: 60,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Mutations == 0 || res.Flushes == 0 {
		t.Fatalf("insert-heavy scenario mutated nothing: %+v", res)
	}
	if res.Mismatches != 0 {
		t.Fatalf("server and truth disagreed on %d mutation verdicts", res.Mismatches)
	}
	if res.Errors != 0 {
		t.Fatalf("run reported %d op errors: %+v", res.Errors, res.PerOp)
	}
	if res.RangeRecall != nil && res.RangeRecall.Min != 1 {
		t.Fatalf("range recall degraded under mutation: %+v", res.RangeRecall)
	}
	if res.TopKRecall == nil || res.TopKRecall.Min != 1 {
		t.Fatalf("topk recall degraded under mutation: %+v", res.TopKRecall)
	}
	if res.Files == 300 {
		t.Fatal("final truth population unchanged — inserts were not mirrored")
	}
	// The live endpoint and the mirror must agree on the final count.
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Store.Files != res.Files {
		t.Fatalf("endpoint holds %d files, truth %d", st.Store.Files, res.Files)
	}
}

// Under the default adaptive offline routing, recall is a measurement
// (possibly < 1), never an error — the harness reports it either way.
func TestRunAdaptiveOfflineReportsRecall(t *testing.T) {
	scn := scenario(t, "uniform-scan")
	set, err := smartstore.GenerateTrace(scn.Trace, 400, 3)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	cl := startServed(t, set, smartstore.Config{Units: 24, Shards: 4, Seed: 3})

	res, err := Run(context.Background(), scn, Options{
		Client: cl, Set: set, Ops: 150, Clients: 4, Seed: 9,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.RangeRecall == nil || res.RangeRecall.Queries == 0 {
		t.Fatal("scan-heavy scenario scored no range queries")
	}
	if res.RangeRecall.Mean <= 0 || res.RangeRecall.Mean > 1 {
		t.Fatalf("range recall mean out of (0,1]: %+v", res.RangeRecall)
	}
	if res.Config.Wire == "" {
		t.Fatal("wire codec not recorded in the result config")
	}
}

// The multi-tenant scenario interleaves three tenants deterministically
// and still replays cleanly end to end.
func TestRunMultiTenant(t *testing.T) {
	scn := scenario(t, "multi-tenant")
	set, err := smartstore.GenerateTrace(scn.Trace, 300, 13)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	opsA := scn.Ops(set, 120, 42)
	opsB := scn.Ops(set, 120, 42)
	if len(opsA) != 120 || len(opsA) != len(opsB) {
		t.Fatalf("tenant split lost ops: %d vs %d", len(opsA), len(opsB))
	}
	for i := range opsA {
		if opsA[i].Fingerprint() != opsB[i].Fingerprint() {
			t.Fatalf("multi-tenant interleave not deterministic at op %d", i)
		}
	}

	cl := startServed(t, set, smartstore.Config{
		Units: 24, Shards: 2, Seed: 13, OfflineGroupBudget: 1000,
	})
	res, err := Run(context.Background(), scn, Options{
		Client: cl, Set: set, Ops: 120, Clients: 3, Seed: 42,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Tenants != 3 {
		t.Fatalf("tenants = %d, want 3", res.Tenants)
	}
	if res.Errors != 0 || res.Mismatches != 0 {
		t.Fatalf("multi-tenant replay broke: errors=%d mismatches=%d", res.Errors, res.Mismatches)
	}
}

// Run refuses to score against an endpoint whose population does not
// match the truth corpus.
func TestRunBootstrapMismatch(t *testing.T) {
	set, err := smartstore.GenerateTrace("MSN", 200, 1)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	cl := startServed(t, set, smartstore.Config{Units: 12, Seed: 1})

	other, err := smartstore.GenerateTrace("MSN", 150, 1)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	if _, err := Run(context.Background(), scenario(t, "zipf-hot"), Options{Client: cl, Set: other}); err == nil {
		t.Fatal("Run accepted a mismatched bootstrap")
	}
}

func TestCheckFloors(t *testing.T) {
	r := &ScenarioResult{
		Scenario:    "x",
		RangeRecall: &RecallStat{Queries: 10, Mean: 0.90, Min: 0.5},
		TopKRecall:  &RecallStat{Queries: 10, Mean: 0.99, Min: 0.9},
	}
	if v := r.CheckFloors(0.85, 0.95); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	if v := r.CheckFloors(0.95, 0.95); len(v) != 1 {
		t.Fatalf("want 1 range violation, got %v", v)
	}
	r.Mismatches = 2
	if v := r.CheckFloors(0, 0); len(v) != 1 {
		t.Fatalf("mismatches must always violate: %v", v)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{5, 1, 4, 2, 3}
	if p := Percentile(s, 50); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := Percentile(s, 99); p != 5 {
		t.Fatalf("p99 = %v, want 5", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %v, want 0", p)
	}
	if s[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}
