// Package eval is the batch evaluation harness behind cmd/smarteval: it
// replays diverse scenario workloads against a live smartstored or
// smartgate endpoint through internal/client while mirroring every
// mutation into a single union ground-truth corpus, and measures — per
// scenario — client-observed throughput and latency percentiles plus
// range/top-k recall with the paper's Fig. 10/12 methodology
// (recall = |T(q) ∩ A(q)| / |T(q)|, empty truth counting as 1).
//
// The replay is round-based: each round's queries run concurrently
// (latency is measured there), then the round's mutations apply — to
// the served store and the mirror — followed by a flush, so replica
// propagation can never make the comparison ambiguous: every query
// races only queries, never an unpropagated write. See DESIGN.md §10.
package eval

import (
	"fmt"
	"sort"

	"repro/internal/metadata"
	"repro/internal/query"
)

// Truth is the single-union-store ground truth: a linear mirror of
// every file the served deployment holds, answered exactly by scan
// (query.RangeTruth / TopKTruth / PointTruth). It is not safe for
// concurrent mutation; the runner mutates it only between query rounds.
type Truth struct {
	norm  *metadata.Normalizer
	files map[uint64]*metadata.File
	snap  []*metadata.File
	dirty bool
}

// NewTruth seeds the mirror with the build corpus and the (frozen)
// normalizer the served store fitted over the same corpus.
func NewTruth(files []*metadata.File, norm *metadata.Normalizer) *Truth {
	t := &Truth{norm: norm, files: make(map[uint64]*metadata.File, len(files)), dirty: true}
	for _, f := range files {
		cp := *f
		t.files[f.ID] = &cp
	}
	return t
}

// Files returns a stable snapshot slice in ascending id order,
// rebuilding it only after mutations. The runner calls it once before
// each concurrent query round; the returned slice must not be mutated.
func (t *Truth) Files() []*metadata.File {
	if t.dirty {
		t.snap = t.snap[:0]
		for _, f := range t.files {
			t.snap = append(t.snap, f)
		}
		// Deterministic order so truth answers are reproducible.
		sort.Slice(t.snap, func(i, j int) bool { return t.snap[i].ID < t.snap[j].ID })
		t.dirty = false
	}
	return t.snap
}

// Len reports the mirrored population size.
func (t *Truth) Len() int { return len(t.files) }

// Insert mirrors a served insert under the id the server allocated.
func (t *Truth) Insert(id uint64, f *metadata.File) error {
	if id == 0 {
		return fmt.Errorf("eval: truth insert with zero id (path %q)", f.Path)
	}
	if _, dup := t.files[id]; dup {
		return fmt.Errorf("eval: truth insert duplicate id %d", id)
	}
	cp := *f
	cp.ID = id
	t.files[id] = &cp
	t.dirty = true
	return nil
}

// Delete mirrors a served delete, reporting whether the id existed —
// the runner cross-checks this against the server's verdict.
func (t *Truth) Delete(id uint64) bool {
	if _, ok := t.files[id]; !ok {
		return false
	}
	delete(t.files, id)
	t.dirty = true
	return true
}

// Modify mirrors a served full-vector modify, reporting whether the id
// existed.
func (t *Truth) Modify(f *metadata.File) bool {
	cur, ok := t.files[f.ID]
	if !ok {
		return false
	}
	cur.Attrs = f.Attrs
	t.dirty = true
	return true
}

// Range answers exactly by linear scan.
func (t *Truth) Range(q query.Range) []uint64 { return query.RangeTruth(t.Files(), q) }

// TopK answers exactly by linear scan under the shared normalizer.
func (t *Truth) TopK(q query.TopK) []uint64 { return query.TopKTruth(t.Files(), t.norm, q) }

// Point answers exactly by linear scan.
func (t *Truth) Point(q query.Point) []uint64 { return query.PointTruth(t.Files(), q) }
