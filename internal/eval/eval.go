package eval

import (
	"context"
	"fmt"
	"sync"
	"time"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options parameterizes one scenario run.
type Options struct {
	// Client is the connected client for the live endpoint. The served
	// deployment MUST have been bootstrapped from the same trace, file
	// count and seed as Set, or the ground-truth comparison is
	// meaningless (the runner cross-checks the served file count).
	Client *client.Client
	// Set is the build corpus the truth mirror seeds from.
	Set *trace.Set
	// Ops is the total operation count (0 → 800).
	Ops int
	// Clients is the concurrent worker count per query round (0 → 8).
	Clients int
	// Seed drives the scenario's op streams.
	Seed uint64
	// RoundSize is the replay round length (0 → max(64, 8×Clients)):
	// each round runs its queries concurrently, then applies its
	// mutations and flushes, so queries never race replica propagation.
	RoundSize int
	// Pace honours the ops' arrival offsets (bursty scenarios) instead
	// of replaying closed-loop.
	Pace bool
	// Config tags the result with the deployment knobs under test.
	Config Config
}

func (o Options) withDefaults() Options {
	if o.Ops <= 0 {
		o.Ops = 800
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.RoundSize <= 0 {
		o.RoundSize = 8 * o.Clients
		if o.RoundSize < 64 {
			o.RoundSize = 64
		}
	}
	return o
}

// runState accumulates one scenario run's measurements.
type runState struct {
	mu            sync.Mutex
	lat           map[string][]float64 // milliseconds per op kind
	errs          map[string]int
	rangeRecalls  []float64
	topkRecalls   []float64
	rangeSpurious int
	pointQueries  int
	pointHits     int
	mismatches    int
	mutations     int
	flushes       int
}

func (st *runState) observe(kind string, ms float64, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err != nil {
		st.errs[kind]++
		return
	}
	st.lat[kind] = append(st.lat[kind], ms)
}

// Run replays one scenario against the live endpoint and returns its
// report cell. A returned error means the run itself broke (endpoint
// down, corpus mismatch, a mutation failed outright) — measurement
// outcomes, including recall misses and per-op errors, live in the
// result instead.
func Run(ctx context.Context, scn Scenario, opts Options) (*ScenarioResult, error) {
	res, _, err := RunTracked(ctx, scn, opts)
	return res, err
}

// RunTracked is Run plus the final truth mirror, for drivers chaining
// mutating scenarios against one long-lived endpoint: the mirror's
// final population is exactly what the endpoint holds, so it seeds the
// next scenario's corpus.
func RunTracked(ctx context.Context, scn Scenario, opts Options) (*ScenarioResult, *Truth, error) {
	opts = opts.withDefaults()
	if opts.Client == nil || opts.Set == nil {
		return nil, nil, fmt.Errorf("eval: Client and Set are required")
	}
	remote, err := opts.Client.Stats()
	if err != nil {
		return nil, nil, fmt.Errorf("eval: endpoint not reachable: %w", err)
	}
	if remote.Store.Files != len(opts.Set.Files) {
		return nil, nil, fmt.Errorf("eval: endpoint holds %d files but the truth corpus has %d — bootstrap mismatch",
			remote.Store.Files, len(opts.Set.Files))
	}

	ops := scn.Ops(opts.Set, opts.Ops, opts.Seed)
	truth := NewTruth(opts.Set.Files, opts.Set.Norm)
	st := &runState{lat: map[string][]float64{}, errs: map[string]int{}}

	start := time.Now()
	for lo := 0; lo < len(ops); lo += opts.RoundSize {
		hi := lo + opts.RoundSize
		if hi > len(ops) {
			hi = len(ops)
		}
		if err := runRound(ctx, ops[lo:hi], truth, st, opts); err != nil {
			return nil, nil, err
		}
	}
	wall := time.Since(start).Seconds()

	res := &ScenarioResult{
		Scenario:      scn.Name,
		Desc:          scn.Desc,
		Trace:         scn.Trace,
		Tenants:       len(scn.Tenants),
		Config:        opts.Config,
		Files:         truth.Len(),
		Ops:           len(ops),
		Clients:       opts.Clients,
		Seed:          opts.Seed,
		WallSec:       wall,
		Mutations:     st.mutations,
		Flushes:       st.flushes,
		PerOp:         map[string]*LatencyStat{},
		RangeRecall:   recallStat(st.rangeRecalls),
		TopKRecall:    recallStat(st.topkRecalls),
		RangeSpurious: st.rangeSpurious,
		PointQueries:  st.pointQueries,
		PointHits:     st.pointHits,
		Mismatches:    st.mismatches,
	}
	if wall > 0 {
		res.Throughput = float64(len(ops)) / wall
	}
	if res.PointQueries > 0 {
		res.PointHitRate = float64(res.PointHits) / float64(res.PointQueries)
	}
	kinds := map[string]bool{}
	for k := range st.lat {
		kinds[k] = true
	}
	for k := range st.errs {
		kinds[k] = true
	}
	for k := range kinds {
		res.PerOp[k] = latStat(st.lat[k], st.errs[k])
		res.Errors += st.errs[k]
	}
	if res.Config.Wire == "" {
		if opts.Client.BinaryNegotiated() {
			res.Config.Wire = "binary"
		} else {
			res.Config.Wire = "json"
		}
	}
	return res, truth, nil
}

// runRound executes one replay round: the round's queries concurrently
// under the worker pool (optionally paced by arrival offset), then its
// mutations in stream order, then one flush if anything mutated.
func runRound(ctx context.Context, ops []trace.Op, truth *Truth, st *runState, opts Options) error {
	var queries, mutations []trace.Op
	for _, op := range ops {
		switch op.Kind {
		case trace.OpInsert, trace.OpDelete, trace.OpModify:
			mutations = append(mutations, op)
		default:
			queries = append(queries, op)
		}
	}

	// Freeze the truth snapshot before any worker reads it.
	truth.Files()

	jobs := make(chan trace.Op)
	var wg sync.WaitGroup
	for w := 0; w < opts.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range jobs {
				runQuery(ctx, op, truth, st, opts)
			}
		}()
	}
	base := 0.0
	if opts.Pace && len(queries) > 0 {
		base = queries[0].At
	}
	phaseStart := time.Now()
	for _, op := range queries {
		if opts.Pace {
			if due := time.Duration((op.At - base) * float64(time.Second)); due > 0 {
				if d := due - time.Since(phaseStart); d > 0 {
					time.Sleep(d)
				}
			}
		}
		select {
		case jobs <- op:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()

	if len(mutations) == 0 {
		return nil
	}
	for _, op := range mutations {
		if err := runMutation(ctx, op, truth, st, opts); err != nil {
			return err
		}
	}
	if _, err := opts.Client.FlushCtx(ctx); err != nil {
		return fmt.Errorf("eval: flush: %w", err)
	}
	st.flushes++
	return nil
}

// runQuery executes one query op against the endpoint, measures its
// latency, and scores it against the exact truth.
func runQuery(ctx context.Context, op trace.Op, truth *Truth, st *runState, opts Options) {
	var q smartstore.Query
	switch op.Kind {
	case trace.OpPoint:
		q = smartstore.NewPointQuery(op.Point.Filename)
	case trace.OpRange:
		q = smartstore.NewRangeQuery(op.Range.Attrs, op.Range.Lo, op.Range.Hi)
	case trace.OpTopK:
		q = smartstore.NewTopKQuery(op.TopK.Attrs, op.TopK.Point, op.TopK.K)
	default:
		return
	}
	t0 := time.Now()
	resp, err := opts.Client.Query(ctx, q)
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	st.observe(op.Kind.String(), ms, err)
	if err != nil {
		return
	}

	switch op.Kind {
	case trace.OpRange:
		want := truth.Range(op.Range)
		r := stats.Recall(want, resp.IDs)
		inTruth := make(map[uint64]bool, len(want))
		for _, id := range want {
			inTruth[id] = true
		}
		spurious := 0
		for _, id := range resp.IDs {
			if !inTruth[id] {
				spurious++
			}
		}
		st.mu.Lock()
		st.rangeRecalls = append(st.rangeRecalls, r)
		st.rangeSpurious += spurious
		st.mu.Unlock()
	case trace.OpTopK:
		want := truth.TopK(op.TopK)
		r := stats.Recall(want, resp.IDs)
		st.mu.Lock()
		st.topkRecalls = append(st.topkRecalls, r)
		st.mu.Unlock()
	case trace.OpPoint:
		want := truth.Point(op.Point)
		hit := len(want) == len(resp.IDs) && stats.Recall(want, resp.IDs) == 1
		st.mu.Lock()
		st.pointQueries++
		if hit {
			st.pointHits++
		}
		st.mu.Unlock()
	}
}

// runMutation applies one mutation to the served store and mirrors it
// into the truth, cross-checking the two verdicts. Mutation latency
// lands in the same per-op stats as queries.
func runMutation(ctx context.Context, op trace.Op, truth *Truth, st *runState, opts Options) error {
	st.mutations++
	switch op.Kind {
	case trace.OpInsert:
		f := *op.File
		t0 := time.Now()
		resp, err := opts.Client.Insert([]*smartstore.File{&f})
		st.observe(op.Kind.String(), float64(time.Since(t0))/float64(time.Millisecond), err)
		if err != nil {
			return fmt.Errorf("eval: insert %q: %w", op.File.Path, err)
		}
		if len(resp.IDs) != 1 {
			return fmt.Errorf("eval: insert %q: server returned %d ids", op.File.Path, len(resp.IDs))
		}
		if err := truth.Insert(resp.IDs[0], op.File); err != nil {
			return err
		}
	case trace.OpDelete:
		t0 := time.Now()
		resp, err := opts.Client.DeleteCtx(ctx, op.ID)
		st.observe(op.Kind.String(), float64(time.Since(t0))/float64(time.Millisecond), err)
		if err != nil {
			return fmt.Errorf("eval: delete %d: %w", op.ID, err)
		}
		if truth.Delete(op.ID) != resp.Found {
			st.mismatches++
		}
	case trace.OpModify:
		t0 := time.Now()
		resp, err := opts.Client.Modify(op.File)
		st.observe(op.Kind.String(), float64(time.Since(t0))/float64(time.Millisecond), err)
		if err != nil {
			return fmt.Errorf("eval: modify %d: %w", op.ID, err)
		}
		if truth.Modify(op.File) != resp.Found {
			st.mismatches++
		}
	}
	return nil
}
