package eval

import (
	"fmt"
	"strings"

	"repro/internal/metadata"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Scenario is one named workload mix: a paper trace to generate the
// population and query anchors from, plus one operation stream per
// tenant. Multi-tenant scenarios interleave their tenants' streams
// deterministically, so tenants with different attribute subsets and
// skews contend on the same deployment — the cross-layer workload
// taxonomy the sweep covers.
type Scenario struct {
	Name    string             // registry key, e.g. "zipf-hot"
	Desc    string             // one-line description for reports
	Trace   string             // paper trace backing the population (HP/MSN/EECS)
	Tenants []trace.StreamSpec // one op-stream spec per tenant, interleaved on replay
}

// Ops generates the scenario's deterministic operation sequence: n ops
// split evenly across tenants, each tenant's stream seeded from the run
// seed and its tenant index, interleaved in seed-deterministic order.
func (s Scenario) Ops(set *trace.Set, n int, seed uint64) []trace.Op {
	if len(s.Tenants) == 1 {
		return trace.NewOpStream(set, s.Tenants[0], seed).Take(n)
	}
	per := make([][]trace.Op, len(s.Tenants))
	for i, spec := range s.Tenants {
		share := n / len(s.Tenants)
		if i < n%len(s.Tenants) {
			share++
		}
		per[i] = trace.NewOpStream(set, spec, seed+uint64(i)*1_000_003).Take(share)
	}
	return trace.Interleave(seed, per...)
}

// Spec resolves the scenario's trace generator.
func (s Scenario) Spec() (*trace.Spec, error) {
	switch strings.ToUpper(s.Trace) {
	case "HP":
		return trace.HP(), nil
	case "MSN":
		return trace.MSN(), nil
	case "EECS":
		return trace.EECS(), nil
	}
	return nil, fmt.Errorf("eval: scenario %s: unknown trace %q", s.Name, s.Trace)
}

// Scenarios is the built-in registry, covering the diversity axes of
// the evaluation: id skew (Zipf vs uniform), arrival shape (steady vs
// bursty), op balance (scan-heavy vs insert-heavy) and tenancy
// (single-tenant vs mixed attribute subsets).
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:  "zipf-hot",
			Desc:  "read-mostly traffic concentrated on the popularity head, steady arrivals",
			Trace: "MSN",
			Tenants: []trace.StreamSpec{{
				Dist: stats.Zipf,
				Mix:  trace.Mix{Point: 2, Range: 3, TopK: 5},
			}},
		},
		{
			Name:  "uniform-scan",
			Desc:  "scan-heavy wide range queries anchored uniformly across the population",
			Trace: "EECS",
			Tenants: []trace.StreamSpec{{
				Dist:       stats.Uniform,
				Mix:        trace.Mix{Point: 1, Range: 8, TopK: 1},
				RangeWidth: 0.25,
			}},
		},
		{
			Name:  "bursty-mixed",
			Desc:  "bursts of mixed reads and writes separated by idle gaps (paced replay)",
			Trace: "HP",
			Tenants: []trace.StreamSpec{{
				Dist:     stats.Zipf,
				Mix:      trace.Mix{Point: 2, Range: 3, TopK: 3, Insert: 1, Delete: 0.5, Modify: 0.5},
				BurstLen: 32,
				OpGap:    0.0002,
				BurstGap: 0.02,
			}},
		},
		{
			Name:  "insert-heavy",
			Desc:  "ingest-dominated mix growing the population mid-run",
			Trace: "MSN",
			Tenants: []trace.StreamSpec{{
				Dist: stats.Zipf,
				Mix:  trace.Mix{Point: 1, Range: 1, TopK: 2, Insert: 4, Delete: 1, Modify: 1},
			}},
		},
		{
			Name:  "multi-tenant",
			Desc:  "three tenants querying different attribute subsets under different skews",
			Trace: "MSN",
			Tenants: []trace.StreamSpec{
				{
					Dist: stats.Zipf,
					Mix:  trace.Mix{Point: 1, Range: 3, TopK: 4},
				},
				{
					Dist:  stats.Uniform,
					Mix:   trace.Mix{Range: 4, TopK: 2},
					Attrs: []metadata.Attr{metadata.AttrSize, metadata.AttrATime},
				},
				{
					Dist:       stats.Gauss,
					Mix:        trace.Mix{Range: 2, TopK: 4, Insert: 1},
					Attrs:      []metadata.Attr{metadata.AttrCTime, metadata.AttrAccessFreq},
					RangeWidth: 0.1,
				},
			},
		},
	}
}

// ByNames resolves a comma-separated scenario selection ("all" or
// empty selects every built-in), preserving registry order.
func ByNames(names string) ([]Scenario, error) {
	all := Scenarios()
	names = strings.TrimSpace(names)
	if names == "" || names == "all" {
		return all, nil
	}
	byName := make(map[string]Scenario, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	var out []Scenario
	for _, raw := range strings.Split(names, ",") {
		name := strings.TrimSpace(raw)
		s, ok := byName[name]
		if !ok {
			known := make([]string, len(all))
			for i, sc := range all {
				known[i] = sc.Name
			}
			return nil, fmt.Errorf("eval: unknown scenario %q (have %s)", name, strings.Join(known, ", "))
		}
		out = append(out, s)
	}
	return out, nil
}
