package eval

import (
	"fmt"
	"math"
	"sort"
)

// LatencyStat summarizes one op kind's client-observed latency.
type LatencyStat struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// RecallStat summarizes recall over one query class, measured per
// query against the single-union-store ground truth (§5.4.2:
// |T(q) ∩ A(q)| / |T(q)|, empty truth = 1).
type RecallStat struct {
	Queries int     `json:"queries"`
	Mean    float64 `json:"mean"`
	Min     float64 `json:"min"`
}

// Config tags a result with the deployment knobs it ran under — the
// sweep axes of cmd/smarteval.
type Config struct {
	Endpoint      string `json:"endpoint"`
	Shards        int    `json:"shards,omitempty"`
	Fsync         string `json:"fsync,omitempty"`
	Wire          string `json:"wire"`
	OfflineBudget int    `json:"offline_budget,omitempty"`
	Mode          string `json:"mode,omitempty"`
}

// ScenarioResult is one scenario × config cell of EVAL_report.json.
type ScenarioResult struct {
	Scenario string `json:"scenario"`
	Desc     string `json:"desc,omitempty"`
	Trace    string `json:"trace"`
	Tenants  int    `json:"tenants"`
	Config   Config `json:"config"`

	Files   int    `json:"files"`
	Ops     int    `json:"ops"`
	Clients int    `json:"clients"`
	Seed    uint64 `json:"seed"`

	WallSec    float64 `json:"wall_sec"`
	Throughput float64 `json:"throughput_ops_sec"`
	Errors     int     `json:"errors"`
	Mutations  int     `json:"mutations"`
	Flushes    int     `json:"flushes"`

	PerOp map[string]*LatencyStat `json:"per_op"`

	RangeRecall *RecallStat `json:"range_recall,omitempty"`
	TopKRecall  *RecallStat `json:"topk_recall,omitempty"`
	// RangeSpurious counts answered range ids outside the exact truth.
	// With the round-flush protocol it should be zero; nonzero values
	// flag a staleness or correctness bug, not a recall artefact.
	RangeSpurious int `json:"range_spurious"`

	PointQueries int     `json:"point_queries"`
	PointHits    int     `json:"point_hits"`
	PointHitRate float64 `json:"point_hit_rate"`

	// Mismatches counts mutation verdicts where the server and the
	// mirror disagreed (e.g. a delete the server found but the truth
	// did not) — any nonzero value invalidates the recall comparison.
	Mismatches int `json:"mismatches"`
}

// CheckFloors validates the result against recall floors (0 disables a
// floor). It returns every violation, empty when the gate passes.
func (r *ScenarioResult) CheckFloors(rangeFloor, topkFloor float64) []string {
	var out []string
	if rangeFloor > 0 && r.RangeRecall != nil && r.RangeRecall.Mean < rangeFloor {
		out = append(out, fmt.Sprintf("%s: range recall %.4f below floor %.4f",
			r.Scenario, r.RangeRecall.Mean, rangeFloor))
	}
	if topkFloor > 0 && r.TopKRecall != nil && r.TopKRecall.Mean < topkFloor {
		out = append(out, fmt.Sprintf("%s: topk recall %.4f below floor %.4f",
			r.Scenario, r.TopKRecall.Mean, topkFloor))
	}
	if r.Mismatches > 0 {
		out = append(out, fmt.Sprintf("%s: %d server/truth mutation verdict mismatches", r.Scenario, r.Mismatches))
	}
	return out
}

// Percentile returns the p-th percentile (0–100) of samples by
// nearest-rank on a sorted copy; 0 for an empty set.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// latStat folds latency samples (milliseconds) into a LatencyStat.
func latStat(samples []float64, errors int) *LatencyStat {
	st := &LatencyStat{Count: len(samples), Errors: errors}
	if len(samples) == 0 {
		return st
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	st.MeanMs = sum / float64(len(samples))
	st.P50Ms = Percentile(samples, 50)
	st.P95Ms = Percentile(samples, 95)
	st.P99Ms = Percentile(samples, 99)
	return st
}

// recallStat folds per-query recalls into a RecallStat (nil when the
// class never ran).
func recallStat(recalls []float64) *RecallStat {
	if len(recalls) == 0 {
		return nil
	}
	st := &RecallStat{Queries: len(recalls), Min: math.Inf(1)}
	sum := 0.0
	for _, r := range recalls {
		sum += r
		if r < st.Min {
			st.Min = r
		}
	}
	st.Mean = sum / float64(len(recalls))
	return st
}
