package eval

import (
	"fmt"
	"math"
	"sort"
)

// LatencyStat summarizes one op kind's client-observed latency.
type LatencyStat struct {
	Count  int     `json:"count"`   // operations measured
	Errors int     `json:"errors"`  // operations that failed
	MeanMs float64 `json:"mean_ms"` // mean latency, milliseconds
	P50Ms  float64 `json:"p50_ms"`  // median latency
	P95Ms  float64 `json:"p95_ms"`  // 95th-percentile latency
	P99Ms  float64 `json:"p99_ms"`  // 99th-percentile latency
}

// RecallStat summarizes recall over one query class, measured per
// query against the single-union-store ground truth (§5.4.2:
// |T(q) ∩ A(q)| / |T(q)|, empty truth = 1).
type RecallStat struct {
	Queries int     `json:"queries"` // queries scored
	Mean    float64 `json:"mean"`    // mean per-query recall
	Min     float64 `json:"min"`     // worst single-query recall
}

// Config tags a result with the deployment knobs it ran under — the
// sweep axes of cmd/smarteval.
type Config struct {
	Endpoint      string `json:"endpoint"`                 // "inprocess" or the remote address
	Shards        int    `json:"shards,omitempty"`         // engine shards of the store under test
	Fsync         string `json:"fsync,omitempty"`          // WAL sync policy when durable
	Wire          string `json:"wire"`                     // query codec: "json" or "binary"
	OfflineBudget int    `json:"offline_budget,omitempty"` // §10 offline group budget (0 = adaptive)
	Mode          string `json:"mode,omitempty"`           // query path: "online" or "offline"
}

// ScenarioResult is one scenario × config cell of EVAL_report.json.
type ScenarioResult struct {
	Scenario string `json:"scenario"`       // registry name of the scenario
	Desc     string `json:"desc,omitempty"` // its one-line description
	Trace    string `json:"trace"`          // paper trace backing the population
	Tenants  int    `json:"tenants"`        // interleaved tenant streams
	Config   Config `json:"config"`         // deployment knobs of this cell

	Files   int    `json:"files"`   // corpus size at replay start
	Ops     int    `json:"ops"`     // operations replayed
	Clients int    `json:"clients"` // concurrent query workers
	Seed    uint64 `json:"seed"`    // op-stream seed

	WallSec    float64 `json:"wall_sec"`           // replay wall time, seconds
	Throughput float64 `json:"throughput_ops_sec"` // ops / wall second
	Errors     int     `json:"errors"`             // failed operations, all kinds
	Mutations  int     `json:"mutations"`          // inserts + deletes + modifies applied
	Flushes    int     `json:"flushes"`            // round-boundary flushes issued

	// PerOp breaks latency down by op kind ("point", "insert", ...).
	PerOp map[string]*LatencyStat `json:"per_op"`

	RangeRecall *RecallStat `json:"range_recall,omitempty"` // range recall vs exact truth
	TopKRecall  *RecallStat `json:"topk_recall,omitempty"`  // top-k recall vs exact truth
	// RangeSpurious counts answered range ids outside the exact truth.
	// With the round-flush protocol it should be zero; nonzero values
	// flag a staleness or correctness bug, not a recall artefact.
	RangeSpurious int `json:"range_spurious"`

	PointQueries int     `json:"point_queries"`  // point lookups issued
	PointHits    int     `json:"point_hits"`     // lookups the server answered correctly
	PointHitRate float64 `json:"point_hit_rate"` // hits / queries (Fig. 9's metric)

	// Mismatches counts mutation verdicts where the server and the
	// mirror disagreed (e.g. a delete the server found but the truth
	// did not) — any nonzero value invalidates the recall comparison.
	Mismatches int `json:"mismatches"`
}

// CheckFloors validates the result against recall floors (0 disables a
// floor). It returns every violation, empty when the gate passes.
func (r *ScenarioResult) CheckFloors(rangeFloor, topkFloor float64) []string {
	var out []string
	if rangeFloor > 0 && r.RangeRecall != nil && r.RangeRecall.Mean < rangeFloor {
		out = append(out, fmt.Sprintf("%s: range recall %.4f below floor %.4f",
			r.Scenario, r.RangeRecall.Mean, rangeFloor))
	}
	if topkFloor > 0 && r.TopKRecall != nil && r.TopKRecall.Mean < topkFloor {
		out = append(out, fmt.Sprintf("%s: topk recall %.4f below floor %.4f",
			r.Scenario, r.TopKRecall.Mean, topkFloor))
	}
	if r.Mismatches > 0 {
		out = append(out, fmt.Sprintf("%s: %d server/truth mutation verdict mismatches", r.Scenario, r.Mismatches))
	}
	return out
}

// Percentile returns the p-th percentile (0–100) of samples by
// nearest-rank on a sorted copy; 0 for an empty set.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// latStat folds latency samples (milliseconds) into a LatencyStat.
func latStat(samples []float64, errors int) *LatencyStat {
	st := &LatencyStat{Count: len(samples), Errors: errors}
	if len(samples) == 0 {
		return st
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	st.MeanMs = sum / float64(len(samples))
	st.P50Ms = Percentile(samples, 50)
	st.P95Ms = Percentile(samples, 95)
	st.P99Ms = Percentile(samples, 99)
	return st
}

// recallStat folds per-query recalls into a RecallStat (nil when the
// class never ran).
func recallStat(recalls []float64) *RecallStat {
	if len(recalls) == 0 {
		return nil
	}
	st := &RecallStat{Queries: len(recalls), Min: math.Inf(1)}
	sum := 0.0
	for _, r := range recalls {
		sum += r
		if r < st.Min {
			st.Min = r
		}
	}
	st.Mean = sum / float64(len(recalls))
	return st
}
