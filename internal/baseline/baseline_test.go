package baseline

import (
	"testing"

	"repro/internal/query"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

func corpus(t testing.TB, n int, seed uint64) *trace.Set {
	t.Helper()
	return trace.MSN().Generate(n, seed)
}

func systems(t testing.TB, set *trace.Set, cfg Config) []System {
	t.Helper()
	return []System{
		NewDBMS(set.Files, set.Norm, cfg),
		NewRTree(set.Files, set.Norm, cfg),
	}
}

func TestNames(t *testing.T) {
	set := corpus(t, 50, 1)
	sys := systems(t, set, Config{})
	if sys[0].Name() != "DBMS" || sys[1].Name() != "R-tree" {
		t.Fatalf("names = %q/%q", sys[0].Name(), sys[1].Name())
	}
}

func TestPointQueryCorrect(t *testing.T) {
	set := corpus(t, 300, 2)
	for _, s := range systems(t, set, Config{}) {
		for i := 0; i < 50; i++ {
			f := set.Files[(i*13)%len(set.Files)]
			got, res := s.Point(query.Point{Filename: f.Path})
			found := false
			for _, id := range got {
				if id == f.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: point query missed %q", s.Name(), f.Path)
			}
			if res.Latency <= 0 || res.RecordsExamined <= 0 {
				t.Fatalf("%s: empty cost accounting", s.Name())
			}
		}
		// Absent name → no results.
		got, _ := s.Point(query.Point{Filename: "/absent/file"})
		if len(got) != 0 {
			t.Fatalf("%s: absent point query returned %v", s.Name(), got)
		}
	}
}

func TestRangeQueryExact(t *testing.T) {
	set := corpus(t, 400, 3)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 5)
	for _, s := range systems(t, set, Config{}) {
		for i := 0; i < 30; i++ {
			q := gen.Range(0.1)
			got, _ := s.Range(q)
			want := query.RangeTruth(set.Files, q)
			if r := stats.Recall(want, got); r != 1 {
				t.Fatalf("%s: range recall %v, want 1 (baselines are exact)", s.Name(), r)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: range returned %d, truth %d (no extras allowed)", s.Name(), len(got), len(want))
			}
		}
	}
}

func TestTopKExactForDBMS(t *testing.T) {
	set := corpus(t, 300, 7)
	gen := trace.NewQueryGen(set, stats.Gauss, nil, 11)
	d := NewDBMS(set.Files, set.Norm, Config{})
	for i := 0; i < 20; i++ {
		q := gen.TopK(8)
		got, _ := d.TopK(q)
		want := query.TopKTruth(set.Files, set.Norm, q)
		if stats.Recall(want, got) != 1 {
			t.Fatal("DBMS brute-force topk must be exact")
		}
	}
}

func TestTopKRTreeHighRecall(t *testing.T) {
	set := corpus(t, 300, 13)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 17)
	r := NewRTree(set.Files, set.Norm, Config{})
	var rec stats.Summary
	for i := 0; i < 20; i++ {
		q := gen.TopK(8)
		got, _ := r.TopK(q)
		want := query.TopKTruth(set.Files, set.Norm, q)
		rec.Add(stats.Recall(want, got))
	}
	if rec.Mean() < 0.85 {
		t.Fatalf("R-tree topk recall %v, want ≥ 0.85", rec.Mean())
	}
}

func TestVirtualScaleMultipliesLatency(t *testing.T) {
	set := corpus(t, 200, 19)
	small := NewDBMS(set.Files, set.Norm, Config{VirtualScale: 1})
	big := NewDBMS(set.Files, set.Norm, Config{VirtualScale: 1000})
	q := query.Point{Filename: set.Files[100].Path}
	_, rs := small.Point(q)
	_, rb := big.Point(q)
	if rb.Latency <= rs.Latency {
		t.Fatalf("scaled latency %v not above unscaled %v", rb.Latency, rs.Latency)
	}
	if rb.RecordsExamined != rs.RecordsExamined*1000 {
		t.Fatalf("scaled records %d, want %d", rb.RecordsExamined, rs.RecordsExamined*1000)
	}
}

func TestDiskPagingKicksInBeyondMemory(t *testing.T) {
	set := corpus(t, 200, 23)
	cost := simnet.DefaultCostModel()
	// Virtual population far beyond one server's memory.
	scale := float64(cost.MemCapacity) // 200 files → 200×2M records ≫ capacity
	d := NewDBMS(set.Files, set.Norm, Config{VirtualScale: scale})
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 29)
	q := gen.TopK(8)
	_, res := d.TopK(q)
	// A pure in-memory scan of the same volume would cost records×probe;
	// paging must make it far slower.
	inMem := cost.ProbeCost(int(res.RecordsExamined))
	if res.Latency < inMem*2 {
		t.Fatalf("paged latency %v not well above in-memory %v", res.Latency, inMem)
	}
}

func TestLatencyOrderingDBMSWorst(t *testing.T) {
	// The headline of Table 4: DBMS > R-tree for complex queries on the
	// same (virtually scaled) population.
	set := corpus(t, 1000, 31)
	cfg := Config{VirtualScale: 10000}
	d := NewDBMS(set.Files, set.Norm, cfg)
	r := NewRTree(set.Files, set.Norm, cfg)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 37)
	var dLat, rLat float64
	for i := 0; i < 20; i++ {
		q := gen.Range(0.05)
		_, dr := d.Range(q)
		_, rr := r.Range(q)
		dLat += float64(dr.Latency)
		rLat += float64(rr.Latency)
	}
	if dLat <= rLat {
		t.Fatalf("DBMS range latency %v not above R-tree %v", dLat, rLat)
	}
}

func TestSizeOrderingDBMSLargest(t *testing.T) {
	// Fig. 7: DBMS (one B+-tree per attribute) costs the most space.
	set := corpus(t, 1000, 41)
	d := NewDBMS(set.Files, set.Norm, Config{})
	r := NewRTree(set.Files, set.Norm, Config{})
	if d.SizeBytes() <= r.SizeBytes() {
		t.Fatalf("DBMS size %d not above R-tree %d", d.SizeBytes(), r.SizeBytes())
	}
}
