// Package baseline implements the two comparison systems of §5.1:
//
//   - DBMS: "a popular database approach that uses a B+ tree to index
//     each metadata attribute ... does not take into account database
//     optimization". Point queries scan the flat pathname column (§6.3:
//     "DBMS considers file pathnames as a flat string attribute"),
//     range queries intersect per-attribute B+-tree range scans, and
//     top-k queries fall back to a brute-force distance scan, since a
//     one-dimensional index per attribute cannot answer nearest-
//     neighbour questions directly.
//
//   - RTree: "a simple, non-semantic R-tree-based database approach
//     that organizes each file based on its multi-dimensional
//     attributes without leveraging metadata semantics" — a single
//     centralized Guttman R-tree.
//
// Both are centralized: the whole population lives on one server, so
// once the virtual population exceeds that server's memory the cost
// model pages from disk. SmartStore's decentralized semantic groups
// avoid precisely this, which is where the ~1000× latency gap of
// Table 4 comes from.
package baseline

import (
	"crypto/md5"
	"encoding/binary"
	"sort"

	"repro/internal/btree"
	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/simnet"
)

// Result carries a baseline operation's cost accounting.
type Result struct {
	Latency         simnet.Time
	RecordsExamined int64 // virtual records touched
}

// System is the query interface shared by both baselines (and satisfied
// by adapter code for SmartStore in the experiments harness).
type System interface {
	Name() string
	Point(q query.Point) ([]uint64, Result)
	Range(q query.Range) ([]uint64, Result)
	TopK(q query.TopK) ([]uint64, Result)
	SizeBytes() int
}

// Config parameterizes a baseline build.
type Config struct {
	// Cost is the virtual cost model (zero value → default).
	Cost simnet.CostModel
	// VirtualScale maps sample record counts onto the full TIF-scaled
	// population, exactly as in cluster.Config (zero → 1).
	VirtualScale float64
}

func (c Config) withDefaults() Config {
	if c.Cost == (simnet.CostModel{}) {
		c.Cost = simnet.DefaultCostModel()
	}
	if c.VirtualScale == 0 {
		c.VirtualScale = 1
	}
	return c
}

// scale converts sample record counts to virtual counts.
func (c Config) scale(n int) int { return int(float64(n) * c.VirtualScale) }

// topKDistanceCostFactor models the extra per-record arithmetic of a
// distance computation versus a plain comparison during brute-force
// top-k scans.
const topKDistanceCostFactor = 3

// DBMS is the per-attribute B+-tree baseline.
type DBMS struct {
	cfg     Config
	files   []*metadata.File
	byID    map[uint64]*metadata.File
	norm    *metadata.Normalizer
	indexes [metadata.NumAttrs]*btree.Tree
	total   int // virtual population
}

// NewDBMS bulk-builds the per-attribute indexes over the corpus.
func NewDBMS(files []*metadata.File, norm *metadata.Normalizer, cfg Config) *DBMS {
	cfg = cfg.withDefaults()
	d := &DBMS{
		cfg:   cfg,
		files: files,
		byID:  make(map[uint64]*metadata.File, len(files)),
		norm:  norm,
		total: cfg.scale(len(files)),
	}
	for a := range d.indexes {
		d.indexes[a] = btree.NewDefault()
	}
	for _, f := range files {
		d.byID[f.ID] = f
		for a := 0; a < int(metadata.NumAttrs); a++ {
			d.indexes[a].Insert(f.Attrs[a], f.ID)
		}
	}
	return d
}

// Name implements System.
func (d *DBMS) Name() string { return "DBMS" }

// Point scans the flat pathname column: without a string index (the
// unoptimized configuration of §5.1) every record is compared until the
// match; expected cost is half the column when present.
func (d *DBMS) Point(q query.Point) ([]uint64, Result) {
	var out []uint64
	examined := 0
	for _, f := range d.files {
		examined++
		if f.Path == q.Filename {
			out = append(out, f.ID)
			break
		}
	}
	vExamined := d.cfg.scale(examined)
	return out, Result{
		Latency:         d.cfg.Cost.ScanCost(vExamined, d.total),
		RecordsExamined: int64(vExamined),
	}
}

// Range runs one B+-tree range scan per queried attribute and
// intersects the resulting id sets — "DBMS must check each B+-tree
// index for each attribute".
func (d *DBMS) Range(q query.Range) ([]uint64, Result) {
	examined := 0
	var lists [][]uint64
	for i, a := range q.Attrs {
		ids, visited := d.indexes[a].Range(nil, q.Lo[i], q.Hi[i])
		examined += visited + len(ids)
		lists = append(lists, ids)
	}
	// Intersection: count each posting-list element touched.
	counts := map[uint64]int{}
	for _, l := range lists {
		examined += len(l)
		for _, id := range l {
			counts[id]++
		}
	}
	var out []uint64
	for id, c := range counts {
		if c == len(lists) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	vExamined := d.cfg.scale(examined)
	return out, Result{
		Latency:         d.cfg.Cost.ScanCost(vExamined, d.total),
		RecordsExamined: int64(vExamined),
	}
}

// TopK cannot be answered from one-dimensional indexes: the DBMS falls
// back to a full-table scan computing the distance of every record.
func (d *DBMS) TopK(q query.TopK) ([]uint64, Result) {
	out := query.TopKTruth(d.files, d.norm, q)
	vExamined := d.cfg.scale(len(d.files) * topKDistanceCostFactor)
	return out, Result{
		Latency:         d.cfg.Cost.ScanCost(vExamined, d.total),
		RecordsExamined: int64(vExamined),
	}
}

// SizeBytes reports the total index footprint: one B+-tree per
// attribute — "DBMS has a large storage overhead" (Fig. 7).
func (d *DBMS) SizeBytes() int {
	size := 0
	for a := range d.indexes {
		size += d.indexes[a].SizeBytes()
	}
	return size
}

var _ System = (*DBMS)(nil)

// RTree is the centralized non-semantic R-tree baseline. Filename point
// queries go through a companion B+-tree keyed by pathname hash (an
// R-tree cannot exact-match an attribute uncorrelated with its spatial
// organization); complex queries use the R-tree itself.
type RTree struct {
	cfg   Config
	tree  *rtree.Tree
	names *btree.Tree
	byID  map[uint64]*metadata.File
	norm  *metadata.Normalizer
	total int
}

// NewRTree bulk-loads a single R-tree over the full *normalized*
// attribute space (Guttman splits need commensurate dimensions), with
// an extra pathname-hash dimension so filename point queries map to
// degenerate rectangle searches.
func NewRTree(files []*metadata.File, norm *metadata.Normalizer, cfg Config) *RTree {
	cfg = cfg.withDefaults()
	r := &RTree{
		cfg:   cfg,
		tree:  rtree.NewDefault(int(metadata.NumAttrs) + 1),
		names: btree.NewDefault(),
		byID:  make(map[uint64]*metadata.File, len(files)),
		norm:  norm,
		total: cfg.scale(len(files)),
	}
	for _, f := range files {
		r.byID[f.ID] = f
		r.tree.Insert(f.ID, rtree.PointRect(r.point(f)))
		r.names.Insert(pathHash(f.Path), f.ID)
	}
	return r
}

// point embeds a file in the (D+1)-dimensional normalized index space:
// its D normalized attributes plus a pathname hash in [0,1].
func (r *RTree) point(f *metadata.File) []float64 {
	p := make([]float64, metadata.NumAttrs+1)
	for a := 0; a < int(metadata.NumAttrs); a++ {
		p[a] = r.norm.Value(metadata.Attr(a), f.Attrs[a])
	}
	p[metadata.NumAttrs] = pathHash(f.Path)
	return p
}

// Name implements System.
func (r *RTree) Name() string { return "R-tree" }

// liftRange embeds a range query in the (D+1)-dim normalized space.
func (r *RTree) liftRange(q query.Range) rtree.Rect {
	lo := make([]float64, metadata.NumAttrs+1)
	hi := make([]float64, metadata.NumAttrs+1)
	for a := 0; a <= int(metadata.NumAttrs); a++ {
		lo[a], hi[a] = -0.5, 1.5 // unbounded within normalized space
	}
	for i, a := range q.Attrs {
		lo[a] = r.norm.Value(a, q.Lo[i])
		hi[a] = r.norm.Value(a, q.Hi[i])
	}
	return rtree.Rect{Lo: lo, Hi: hi}
}

// Point looks the name up in the companion hash index. The descent costs
// one random disk page per B+-tree level once the population exceeds
// memory; candidates are then confirmed against the full pathname.
func (r *RTree) Point(q query.Point) ([]uint64, Result) {
	h := pathHash(q.Filename)
	cands := r.names.Get(h)
	var out []uint64
	for _, id := range cands {
		if r.byID[id].Path == q.Filename {
			out = append(out, id)
		}
	}
	// Virtual descent depth grows with the virtual population.
	virtualHeight := 1
	for n := float64(r.total); n > float64(btree.DefaultOrder); n /= btree.DefaultOrder {
		virtualHeight++
	}
	lat := simnet.Time(0)
	if r.total > r.cfg.Cost.MemCapacity {
		lat += simnet.Time(virtualHeight) * r.cfg.Cost.DiskPage
	}
	examined := virtualHeight*btree.DefaultOrder + len(cands)
	lat += r.cfg.Cost.ProbeCost(examined)
	return out, Result{Latency: lat, RecordsExamined: int64(examined)}
}

// Range searches the lifted rectangle.
func (r *RTree) Range(q query.Range) ([]uint64, Result) {
	out := r.tree.Search(nil, r.liftRange(q))
	return out, r.visitCost(len(out))
}

// TopK runs exact branch-and-bound k-NN restricted to the queried
// (normalized) dimensions.
func (r *RTree) TopK(q query.TopK) ([]uint64, Result) {
	p := make([]float64, metadata.NumAttrs+1)
	dims := make([]int, len(q.Attrs))
	for i, a := range q.Attrs {
		p[a] = r.norm.Value(a, q.Point[i])
		dims[i] = int(a)
	}
	nn := r.tree.NearestKDims(p, q.K, dims)
	out := make([]uint64, len(nn))
	for i, n := range nn {
		out[i] = n.ID
	}
	examined := r.tree.LastVisited()*rtree.DefaultMax*topKDistanceCostFactor + len(nn)
	vExamined := r.cfg.scale(examined)
	return out, Result{
		Latency:         r.cfg.Cost.ScanCost(vExamined, r.total),
		RecordsExamined: int64(vExamined),
	}
}

// visitCost converts the R-tree's last visit count plus result size into
// virtual cost: every visited node is a page-sized unit of work on the
// single overloaded server.
func (r *RTree) visitCost(results int) Result {
	examined := r.tree.LastVisited()*rtree.DefaultMax + results
	vExamined := r.cfg.scale(examined)
	return Result{
		Latency:         r.cfg.Cost.ScanCost(vExamined, r.total),
		RecordsExamined: int64(vExamined),
	}
}

// SizeBytes reports the centralized index footprint.
func (r *RTree) SizeBytes() int { return r.tree.SizeBytes() }

var _ System = (*RTree)(nil)

// pathHash maps a pathname to a [0,1] index coordinate via MD5.
func pathHash(path string) float64 {
	sum := md5.Sum([]byte(path))
	v := binary.LittleEndian.Uint64(sum[:8])
	return float64(v>>11) / float64(uint64(1)<<53)
}
