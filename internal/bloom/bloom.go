// Package bloom implements the Bloom filters SmartStore embeds in its
// storage and index units to answer filename point queries (paper
// §3.3.3, Fig. 4).
//
// Following the prototype configuration of §5.1, the default filter is
// 1024 bits with k=7 hash functions, and hashing is MD5-based: the key's
// 128-bit MD5 digest is split into four 32-bit words, from which the k
// probe positions are derived with the standard double-hashing scheme
// g_i(x) = h1(x) + i·h2(x). Index-unit filters are the bitwise union of
// their children's filters, so a positive at an index unit means "some
// descendant may hold the name".
package bloom

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Default parameters from the prototype configuration in §5.1.
const (
	DefaultBits   = 1024
	DefaultHashes = 7
)

// Filter is a Bloom filter for string membership.
type Filter struct {
	bits   []uint64
	nbits  uint32
	k      int
	nAdded int
}

// New returns a filter with nbits bits and k hash functions.
// It panics if nbits or k is not positive.
func New(nbits, k int) *Filter {
	if nbits <= 0 || k <= 0 {
		panic(fmt.Sprintf("bloom: invalid parameters nbits=%d k=%d", nbits, k))
	}
	return &Filter{
		bits:  make([]uint64, (nbits+63)/64),
		nbits: uint32(nbits),
		k:     k,
	}
}

// NewDefault returns a 1024-bit, k=7 filter — the paper's configuration.
func NewDefault() *Filter { return New(DefaultBits, DefaultHashes) }

// hashPair derives the double-hashing basis (h1, h2) from the MD5 digest
// of key: the digest's four 32-bit words w0..w3 give h1 = w0⊕w2 and
// h2 = w1⊕w3 (forced odd so all probe strides hit distinct bits).
func (f *Filter) hashPair(key string) (uint32, uint32) {
	sum := md5.Sum([]byte(key))
	w0 := binary.LittleEndian.Uint32(sum[0:4])
	w1 := binary.LittleEndian.Uint32(sum[4:8])
	w2 := binary.LittleEndian.Uint32(sum[8:12])
	w3 := binary.LittleEndian.Uint32(sum[12:16])
	h1 := w0 ^ w2
	h2 := (w1 ^ w3) | 1
	return h1, h2
}

// Add inserts key into the filter.
func (f *Filter) Add(key string) {
	h1, h2 := f.hashPair(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint32(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.nAdded++
}

// Contains reports whether key may be in the set. False positives occur
// with probability ≈ (1-e^{-kn/m})^k; false negatives never occur for
// keys actually added.
func (f *Filter) Contains(key string) bool {
	h1, h2 := f.hashPair(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint32(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Union ORs other into f in place (the index-unit construction of Fig. 4).
// It panics if the filters' geometries differ.
func (f *Filter) Union(other *Filter) {
	if f.nbits != other.nbits || f.k != other.k {
		panic(fmt.Sprintf("bloom: union of incompatible filters (%d/%d vs %d/%d)",
			f.nbits, f.k, other.nbits, other.k))
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.nAdded += other.nAdded
}

// Clone returns a deep copy of f.
func (f *Filter) Clone() *Filter {
	b := make([]uint64, len(f.bits))
	copy(b, f.bits)
	return &Filter{bits: b, nbits: f.nbits, k: f.k, nAdded: f.nAdded}
}

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.nAdded = 0
}

// Bits returns the filter size in bits.
func (f *Filter) Bits() int { return int(f.nbits) }

// Hashes returns the number of hash functions k.
func (f *Filter) Hashes() int { return f.k }

// Added returns the number of Add calls (summed across unions).
func (f *Filter) Added() int { return f.nAdded }

// PopCount returns the number of set bits.
func (f *Filter) PopCount() int {
	n := 0
	for _, w := range f.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	return float64(f.PopCount()) / float64(f.nbits)
}

// EstimatedFalsePositiveRate returns the analytic false-positive rate for
// the current fill: fill^k (each of the k probes hits a set bit
// independently with probability ≈ fill ratio).
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// SizeBytes returns the in-memory size of the bit array, used by the
// space-overhead accounting of Fig. 7.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// OptimalHashes returns the k minimizing the false-positive rate for a
// filter of m bits holding n keys: k = (m/n)·ln2, at least 1.
func OptimalHashes(m, n int) int {
	if n <= 0 {
		return 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return k
}
