package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewDefault()
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("/home/user/file-%d.dat", i)
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestAbsentKeysMostlyNegative(t *testing.T) {
	f := NewDefault()
	for i := 0; i < 60; i++ {
		f.Add(fmt.Sprintf("present-%d", i))
	}
	fp := 0
	n := 10000
	for i := 0; i < n; i++ {
		if f.Contains(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / float64(n)
	// With 60 keys in 1024 bits, k=7: theoretical fp ≈ 0.0005. Allow slack.
	if rate > 0.01 {
		t.Fatalf("false positive rate %v too high", rate)
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, p := range [][2]int{{0, 7}, {1024, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", p[0], p[1])
				}
			}()
			New(p[0], p[1])
		}()
	}
}

func TestDefaultGeometry(t *testing.T) {
	f := NewDefault()
	if f.Bits() != 1024 || f.Hashes() != 7 {
		t.Fatalf("default geometry %d/%d, want 1024/7", f.Bits(), f.Hashes())
	}
	if f.SizeBytes() != 128 {
		t.Fatalf("SizeBytes = %d, want 128", f.SizeBytes())
	}
}

func TestUnionBehavesLikeCombinedSet(t *testing.T) {
	a, b := NewDefault(), NewDefault()
	for i := 0; i < 30; i++ {
		a.Add(fmt.Sprintf("a-%d", i))
		b.Add(fmt.Sprintf("b-%d", i))
	}
	u := a.Clone()
	u.Union(b)
	for i := 0; i < 30; i++ {
		if !u.Contains(fmt.Sprintf("a-%d", i)) || !u.Contains(fmt.Sprintf("b-%d", i)) {
			t.Fatal("union lost a member")
		}
	}
	if u.Added() != 60 {
		t.Fatalf("union Added = %d, want 60", u.Added())
	}
}

func TestUnionIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("union of incompatible filters did not panic")
		}
	}()
	New(512, 7).Union(New(1024, 7))
}

func TestCloneIndependence(t *testing.T) {
	a := NewDefault()
	a.Add("x")
	b := a.Clone()
	b.Add("y")
	if a.Contains("y") && a.PopCount() == b.PopCount() {
		t.Fatal("clone shares bit storage with original")
	}
	if !b.Contains("x") {
		t.Fatal("clone lost member")
	}
}

func TestReset(t *testing.T) {
	f := NewDefault()
	f.Add("x")
	f.Reset()
	if f.PopCount() != 0 || f.Added() != 0 {
		t.Fatal("Reset did not clear the filter")
	}
	if f.Contains("x") {
		t.Fatal("Reset filter still reports membership")
	}
}

func TestFillRatioAndFPEstimate(t *testing.T) {
	f := NewDefault()
	if f.FillRatio() != 0 || f.EstimatedFalsePositiveRate() != 0 {
		t.Fatal("empty filter should report zero fill and fp rate")
	}
	for i := 0; i < 100; i++ {
		f.Add(fmt.Sprintf("k%d", i))
	}
	if f.FillRatio() <= 0 || f.FillRatio() > 1 {
		t.Fatalf("FillRatio = %v out of (0,1]", f.FillRatio())
	}
	if fp := f.EstimatedFalsePositiveRate(); fp <= 0 || fp > 1 {
		t.Fatalf("fp estimate = %v out of (0,1]", fp)
	}
}

func TestOptimalHashes(t *testing.T) {
	cases := []struct{ m, n, want int }{
		{1024, 0, 1},
		{1024, 10000, 1},
		{1024, 100, 7}, // 10.24*ln2 ≈ 7.1
	}
	for _, c := range cases {
		if got := OptimalHashes(c.m, c.n); got != c.want {
			t.Errorf("OptimalHashes(%d,%d) = %d, want %d", c.m, c.n, got, c.want)
		}
	}
}

// Property: anything added is always found (no false negatives), and
// union preserves membership from both sides.
func TestPropertyNoFalseNegatives(t *testing.T) {
	f := func(keys []string) bool {
		fl := NewDefault()
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionSuperset(t *testing.T) {
	f := func(as, bs []string) bool {
		a, b := NewDefault(), NewDefault()
		for _, k := range as {
			a.Add(k)
		}
		for _, k := range bs {
			b.Add(k)
		}
		u := a.Clone()
		u.Union(b)
		for _, k := range as {
			if !u.Contains(k) {
				return false
			}
		}
		for _, k := range bs {
			if !u.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewDefault()
	for i := 0; i < b.N; i++ {
		f.Add("some/path/to/a/file.dat")
	}
}

func BenchmarkContains(b *testing.B) {
	f := NewDefault()
	for i := 0; i < 100; i++ {
		f.Add(fmt.Sprintf("k%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains("k50")
	}
}
