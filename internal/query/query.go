// Package query defines the three query interfaces SmartStore serves —
// point (filename), range, and top-k nearest-neighbour (paper §1.2,
// §3.3) — together with exhaustive-scan ground-truth evaluators used to
// compute the Recall measure of §5.4.2.
package query

import (
	"fmt"
	"sort"

	"repro/internal/metadata"
)

// Point is a filename-based point query (§3.3.3).
type Point struct {
	Filename string
}

// Range is a multi-dimensional range query (§3.3.1): find all files
// whose attribute a_i lies in [Lo[i], Hi[i]] for every queried
// dimension. Values are in raw attribute units, exactly like the
// paper's example "(10:00, 30, 5) and (16:20, 50, 8)".
type Range struct {
	Attrs  []metadata.Attr
	Lo, Hi []float64
}

// MakeRange builds a validated range query, normalizing each dimension
// so Lo ≤ Hi. It returns an error when the slices' lengths disagree or
// no dimension is given.
func MakeRange(attrs []metadata.Attr, lo, hi []float64) (Range, error) {
	if len(attrs) != len(lo) || len(lo) != len(hi) || len(attrs) == 0 {
		return Range{}, fmt.Errorf("query: invalid range dims %d/%d/%d", len(attrs), len(lo), len(hi))
	}
	l := append([]float64(nil), lo...)
	h := append([]float64(nil), hi...)
	for i := range l {
		if l[i] > h[i] {
			l[i], h[i] = h[i], l[i]
		}
	}
	return Range{Attrs: attrs, Lo: l, Hi: h}, nil
}

// NewRange is MakeRange for callers that have already validated their
// dimensions; it panics on invalid input.
func NewRange(attrs []metadata.Attr, lo, hi []float64) Range {
	r, err := MakeRange(attrs, lo, hi)
	if err != nil {
		panic(err.Error())
	}
	return r
}

// Matches reports whether file f satisfies every dimension of r.
func (r Range) Matches(f *metadata.File) bool {
	for i, a := range r.Attrs {
		v := f.Attrs[a]
		if v < r.Lo[i] || v > r.Hi[i] {
			return false
		}
	}
	return true
}

// TopK is a top-k nearest-neighbour query (§3.3.2): the k files whose
// attributes are closest to Point, like the paper's "(11:20, 26.8,
// 65.7, 6)" example. Point values are in raw attribute units; distances
// are measured in normalized attribute space so no dimension dominates.
type TopK struct {
	Attrs []metadata.Attr
	Point []float64
	K     int
}

// MakeTopK builds a validated top-k query, returning an error when the
// dimensions disagree or k < 1.
func MakeTopK(attrs []metadata.Attr, point []float64, k int) (TopK, error) {
	if len(attrs) != len(point) || len(attrs) == 0 {
		return TopK{}, fmt.Errorf("query: invalid topk dims %d/%d", len(attrs), len(point))
	}
	if k < 1 {
		return TopK{}, fmt.Errorf("query: invalid k %d", k)
	}
	return TopK{Attrs: attrs, Point: append([]float64(nil), point...), K: k}, nil
}

// NewTopK is MakeTopK for callers that have already validated their
// dimensions; it panics on invalid input.
func NewTopK(attrs []metadata.Attr, point []float64, k int) TopK {
	q, err := MakeTopK(attrs, point, k)
	if err != nil {
		panic(err.Error())
	}
	return q
}

// Dist returns the normalized Euclidean distance from file f to the
// query point.
func (q TopK) Dist(n *metadata.Normalizer, f *metadata.File) float64 {
	var s float64
	for i, a := range q.Attrs {
		d := n.Value(a, f.Attrs[a]) - n.Value(a, q.Point[i])
		s += d * d
	}
	return s // squared distance is order-preserving; callers only rank
}

// RangeTruth returns the exact answer to r over the corpus by linear
// scan — the ideal set T(q) for recall computation.
func RangeTruth(files []*metadata.File, r Range) []uint64 {
	var out []uint64
	for _, f := range files {
		if r.Matches(f) {
			out = append(out, f.ID)
		}
	}
	return out
}

// TopKTruth returns the exact top-k answer by linear scan, in ascending
// distance order.
func TopKTruth(files []*metadata.File, n *metadata.Normalizer, q TopK) []uint64 {
	type cand struct {
		id   uint64
		dist float64
	}
	cands := make([]cand, 0, len(files))
	for _, f := range files {
		cands = append(cands, cand{f.ID, q.Dist(n, f)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	k := q.K
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// PointTruth returns the IDs of files whose path equals the queried
// filename.
func PointTruth(files []*metadata.File, p Point) []uint64 {
	var out []uint64
	for _, f := range files {
		if f.Path == p.Filename {
			out = append(out, f.ID)
		}
	}
	return out
}
