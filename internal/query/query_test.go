package query

import (
	"testing"
	"testing/quick"

	"repro/internal/metadata"
)

func mkFile(id uint64, path string, size, ctime float64) *metadata.File {
	f := &metadata.File{ID: id, Path: path}
	f.Attrs[metadata.AttrSize] = size
	f.Attrs[metadata.AttrCTime] = ctime
	return f
}

func corpus() []*metadata.File {
	return []*metadata.File{
		mkFile(1, "/a", 10, 100),
		mkFile(2, "/b", 20, 200),
		mkFile(3, "/c", 30, 300),
		mkFile(4, "/d", 40, 400),
	}
}

func TestNewRangeNormalizesBounds(t *testing.T) {
	r := NewRange([]metadata.Attr{metadata.AttrSize}, []float64{50}, []float64{10})
	if r.Lo[0] != 10 || r.Hi[0] != 50 {
		t.Fatalf("bounds = %v..%v, want 10..50", r.Lo[0], r.Hi[0])
	}
}

func TestNewRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRange mismatch did not panic")
		}
	}()
	NewRange([]metadata.Attr{metadata.AttrSize}, []float64{1, 2}, []float64{3})
}

func TestRangeMatches(t *testing.T) {
	r := NewRange(
		[]metadata.Attr{metadata.AttrSize, metadata.AttrCTime},
		[]float64{15, 150}, []float64{35, 350},
	)
	f := corpus()
	if r.Matches(f[0]) {
		t.Fatal("file 1 should not match")
	}
	if !r.Matches(f[1]) || !r.Matches(f[2]) {
		t.Fatal("files 2,3 should match")
	}
	if r.Matches(f[3]) {
		t.Fatal("file 4 should not match")
	}
}

func TestRangeTruth(t *testing.T) {
	r := NewRange([]metadata.Attr{metadata.AttrSize}, []float64{15}, []float64{35})
	got := RangeTruth(corpus(), r)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("RangeTruth = %v, want [2 3]", got)
	}
	empty := NewRange([]metadata.Attr{metadata.AttrSize}, []float64{500}, []float64{600})
	if got := RangeTruth(corpus(), empty); len(got) != 0 {
		t.Fatalf("empty RangeTruth = %v", got)
	}
}

func TestNewTopKPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { NewTopK([]metadata.Attr{metadata.AttrSize}, []float64{1, 2}, 3) },
		func() { NewTopK([]metadata.Attr{metadata.AttrSize}, []float64{1}, 0) },
		func() { NewTopK(nil, nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewTopK did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestTopKTruthOrderingAndK(t *testing.T) {
	files := corpus()
	var n metadata.Normalizer
	n.Fit(files)
	q := NewTopK([]metadata.Attr{metadata.AttrSize}, []float64{22}, 2)
	got := TopKTruth(files, &n, q)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("TopKTruth = %v, want [2 3]", got)
	}
	// k larger than corpus clamps.
	q = NewTopK([]metadata.Attr{metadata.AttrSize}, []float64{22}, 100)
	if got := TopKTruth(files, &n, q); len(got) != 4 {
		t.Fatalf("clamped TopKTruth len = %d, want 4", len(got))
	}
}

func TestTopKDistMonotone(t *testing.T) {
	files := corpus()
	var n metadata.Normalizer
	n.Fit(files)
	q := NewTopK([]metadata.Attr{metadata.AttrSize}, []float64{10}, 1)
	d1 := q.Dist(&n, files[0])
	d4 := q.Dist(&n, files[3])
	if d1 >= d4 {
		t.Fatalf("dist to nearer file %v not < dist to farther %v", d1, d4)
	}
}

func TestPointTruth(t *testing.T) {
	got := PointTruth(corpus(), Point{Filename: "/c"})
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("PointTruth = %v, want [3]", got)
	}
	if got := PointTruth(corpus(), Point{Filename: "/zzz"}); len(got) != 0 {
		t.Fatalf("missing file PointTruth = %v", got)
	}
}

// Property: every id RangeTruth returns corresponds to a matching file,
// and every matching file is returned.
func TestPropertyRangeTruthExact(t *testing.T) {
	f := func(sizes []uint16, loRaw, spanRaw uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		files := make([]*metadata.File, len(sizes))
		for i, s := range sizes {
			files[i] = mkFile(uint64(i+1), "/f", float64(s), 0)
		}
		lo := float64(loRaw)
		hi := lo + float64(spanRaw)
		r := NewRange([]metadata.Attr{metadata.AttrSize}, []float64{lo}, []float64{hi})
		got := map[uint64]bool{}
		for _, id := range RangeTruth(files, r) {
			got[id] = true
		}
		for _, fl := range files {
			want := fl.Attrs[metadata.AttrSize] >= lo && fl.Attrs[metadata.AttrSize] <= hi
			if got[fl.ID] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
