package repl_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	smartstore "repro"
	"repro/internal/repl"
	"repro/internal/server"
)

// discard silences follower logging in tests; failures assert on state,
// not log lines.
func discard(string, ...any) {}

// testOpts returns fast-cadence follower options for tests.
func testOpts() repl.Options {
	return repl.Options{PollEvery: 5 * time.Millisecond, Timeout: 5 * time.Second, Logf: discard}
}

// startLeader deploys a durable leader store over a synthesized corpus
// and serves it over HTTP.
func startLeader(t *testing.T, shards int) (*smartstore.Store, *smartstore.TraceSet, *httptest.Server) {
	t.Helper()
	set, err := smartstore.GenerateTrace("MSN", 400, 17)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{
		Units:      12,
		Shards:     shards,
		Seed:       17,
		DataDir:    t.TempDir(),
		Durability: smartstore.DurabilityNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(store, server.Options{DisableMetrics: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { store.Close() })
	return store, set, ts
}

// followerCfg is the follower's deployment config; structure comes from
// the leader's snapshot.
func followerCfg() smartstore.Config {
	return smartstore.Config{Seed: 17, Durability: smartstore.DurabilityNever}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func sortedIDs(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rangeIDs runs a wide on-line range query (exact on propagated state).
func rangeIDs(t *testing.T, store *smartstore.Store) []uint64 {
	t.Helper()
	res, err := store.Do(context.Background(), smartstore.NewRangeQuery(
		[]smartstore.Attr{smartstore.AttrMTime},
		[]float64{-1e18}, []float64{1e18},
	).WithOptions(smartstore.QueryOptions{Mode: smartstore.ModeOnline}))
	if err != nil {
		t.Fatal(err)
	}
	return sortedIDs(res.IDs)
}

// mutate runs a small mixed workload against the leader: multi-shard
// insert batches, modifies and deletes.
func mutate(t *testing.T, store *smartstore.Store, set *smartstore.TraceSet, round int) {
	t.Helper()
	base := store.MaxFileID()
	for i := 0; i < 20; i++ {
		switch i % 3 {
		case 0:
			batch := make([]*smartstore.File, 3)
			for j := range batch {
				src := set.Files[(round*131+i*17+j*271)%len(set.Files)]
				batch[j] = &smartstore.File{
					ID:    base + uint64(round*1000+i*10+j+1),
					Path:  fmt.Sprintf("/repl/r%d/i%d/f%d", round, i, j),
					Attrs: src.Attrs,
				}
			}
			if _, err := store.InsertBatch(batch); err != nil {
				t.Fatalf("insert batch: %v", err)
			}
		case 1:
			f := *set.Files[(round*53+i*29)%len(set.Files)]
			f.Attrs[smartstore.AttrSize] += float64(i)
			if _, _, err := store.Modify(&f); err != nil {
				t.Fatalf("modify: %v", err)
			}
		case 2:
			if _, _, err := store.Delete(base + uint64(round*1000+(i-2)*10+1)); err != nil {
				t.Fatalf("delete: %v", err)
			}
		}
	}
}

// epochsEqual reports whether the follower's shard epochs have reached
// the leader's.
func epochsEqual(leader, follower *smartstore.Store) bool {
	return reflect.DeepEqual(leader.ShardEpochs(), follower.ShardEpochs())
}

// TestFollowerCatchUpEquivalence is the replication core test: a
// follower bootstraps from the leader's snapshot, tails its WAL streams
// through a mutation storm, and must converge to bit-identical state —
// shard epochs, max file id and query answers — which it keeps serving
// after the leader dies abruptly.
func TestFollowerCatchUpEquivalence(t *testing.T) {
	leader, set, ts := startLeader(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fst, desc, err := repl.Bootstrap(ctx, ts.URL, "", followerCfg(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fst.Close()
	if desc != "bootstrapped from leader "+ts.URL {
		t.Fatalf("bootstrap desc = %q", desc)
	}
	f := repl.New(fst, ts.URL, testOpts())
	go f.Run(ctx)

	// Two rounds of writes while the follower tails, flush propagating
	// the last round so on-line queries are exact on both sides.
	mutate(t, leader, set, 1)
	mutate(t, leader, set, 2)
	if err := leader.Flush(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 10*time.Second, "follower to reach leader epochs", func() bool {
		return epochsEqual(leader, fst)
	})
	waitFor(t, 10*time.Second, "follower status caught_up", func() bool {
		st := f.Status()
		return st.CaughtUp && st.LeaderReachable
	})

	if got, want := fst.MaxFileID(), leader.MaxFileID(); got != want {
		t.Fatalf("follower MaxFileID = %d, leader %d", got, want)
	}
	if got, want := fst.Stats().Files, leader.Stats().Files; got != want {
		t.Fatalf("follower files = %d, leader %d", got, want)
	}
	preKill := rangeIDs(t, leader)
	if got := rangeIDs(t, fst); !reflect.DeepEqual(got, preKill) {
		t.Fatalf("follower range answer diverges: %d ids vs leader %d", len(got), len(preKill))
	}

	// Abrupt leader death: the follower must keep serving the converged
	// state (reads never depended on the leader being alive).
	ts.CloseClientConnections()
	ts.Close()
	waitFor(t, 10*time.Second, "leader_reachable to drop", func() bool {
		return !f.Status().LeaderReachable
	})
	if got := rangeIDs(t, fst); !reflect.DeepEqual(got, preKill) {
		t.Fatal("follower answer changed after leader death")
	}

	// Promotion makes it a writable standalone store.
	if err := f.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	nf := &smartstore.File{ID: fst.MaxFileID() + 1, Path: "/promoted/a.dat", Attrs: set.Files[3].Attrs}
	if _, err := fst.Insert(nf); err != nil {
		t.Fatalf("insert on promoted follower: %v", err)
	}
	if _, ok := fst.FileByID(nf.ID); !ok {
		t.Fatal("promoted follower lost its own insert")
	}
}

// TestPromoteUnderConcurrentWrites promotes a follower while the leader
// is still taking writes (run under -race in CI). The promoted state
// must be a consistent prefix of the leader's history: every
// multi-shard batch is present entirely or not at all, and every
// present file matches the leader's copy.
func TestPromoteUnderConcurrentWrites(t *testing.T) {
	leader, set, ts := startLeader(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fst, _, err := repl.Bootstrap(ctx, ts.URL, "", followerCfg(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fst.Close()
	f := repl.New(fst, ts.URL, testOpts())
	go f.Run(ctx)

	// Writers insert multi-shard batches with ids in disjoint,
	// reconstructible blocks: batch (w, i) holds ids base+w*10000+i*10
	// + {1,2,3}.
	base := leader.MaxFileID()
	var stop atomic.Bool
	var wg sync.WaitGroup
	const workers = 3
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				batch := make([]*smartstore.File, 3)
				for j := range batch {
					src := set.Files[(w*131+i*17+j*271)%len(set.Files)]
					batch[j] = &smartstore.File{
						ID:    base + uint64(w*10000+i*10+j+1),
						Path:  fmt.Sprintf("/conc/w%d/i%d/f%d", w, i, j),
						Attrs: src.Attrs,
					}
				}
				if _, err := leader.InsertBatch(batch); err != nil {
					t.Errorf("insert batch: %v", err)
					return
				}
			}
		}(w)
	}

	// Let some replication happen mid-storm, then promote.
	waitFor(t, 10*time.Second, "some records applied", func() bool {
		return f.Status().RecordsApplied > 0
	})
	if err := f.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	if !f.Status().Promoted {
		t.Fatal("status not promoted")
	}

	// Batch atomicity on the promoted store: for every batch the
	// workers wrote, the follower holds all three files or none.
	for w := 0; w < workers; w++ {
		for i := 0; ; i++ {
			first := base + uint64(w*10000+i*10+1)
			if _, ok := leader.FileByID(first); !ok {
				break // past this worker's last batch
			}
			var present int
			for j := 0; j < 3; j++ {
				if _, ok := fst.FileByID(base + uint64(w*10000+i*10+j+1)); ok {
					present++
				}
			}
			if present != 0 && present != 3 {
				t.Fatalf("batch (w=%d,i=%d) torn on promoted follower: %d/3 files", w, i, present)
			}
		}
	}

	// Every file the follower holds matches the leader's copy.
	for _, id := range rangeIDs(t, fst) {
		lf, ok := leader.FileByID(id)
		if !ok {
			t.Fatalf("follower holds id %d the leader never acknowledged", id)
		}
		ff, _ := fst.FileByID(id)
		if lf.Path != ff.Path {
			t.Fatalf("id %d path diverges: leader %q follower %q", id, lf.Path, ff.Path)
		}
	}

	// The promoted store takes writes.
	nf := &smartstore.File{ID: fst.MaxFileID() + 100000, Path: "/conc/post.dat", Attrs: set.Files[0].Attrs}
	if _, err := fst.Insert(nf); err != nil {
		t.Fatalf("insert on promoted follower: %v", err)
	}
}

// TestBootstrapReBootstrapsStaleReplica: a follower whose data dir fell
// behind the leader's checkpoint base cannot catch up from the log —
// Bootstrap must detect it, wipe the dir and re-fetch the snapshot.
func TestBootstrapReBootstrapsStaleReplica(t *testing.T) {
	leader, set, ts := startLeader(t, 2)
	ctx := context.Background()
	dir := t.TempDir()

	// First generation: bootstrap durable, catch up, shut down cleanly.
	fst, _, err := repl.Bootstrap(ctx, ts.URL, dir, followerCfg(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := repl.New(fst, ts.URL, testOpts())
	runCtx, cancelRun := context.WithCancel(ctx)
	go f.Run(runCtx)
	mutate(t, leader, set, 1)
	waitFor(t, 10*time.Second, "first-generation catch-up", func() bool {
		return epochsEqual(leader, fst)
	})
	cancelRun()
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}

	// The leader moves on and checkpoints: its replication base now
	// exceeds the parked replica's watermark.
	mutate(t, leader, set, 2)
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Second generation over the same dir: recovery alone would leave a
	// gap, so Bootstrap must fall back to the snapshot path.
	fst2, desc, err := repl.Bootstrap(ctx, ts.URL, dir, followerCfg(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fst2.Close()
	if desc != "bootstrapped from leader "+ts.URL {
		t.Fatalf("stale replica was not re-bootstrapped: desc %q", desc)
	}
	if !epochsEqual(leader, fst2) {
		t.Fatalf("re-bootstrapped epochs %v != leader %v", fst2.ShardEpochs(), leader.ShardEpochs())
	}
}

// TestFollowerRejectsTornShips: a proxy truncates the first pulls of
// every shard mid-body — the follower must reject the torn ships whole
// and still converge once responses flow intact (the retry loop, not a
// silent prefix apply).
func TestFollowerRejectsTornShips(t *testing.T) {
	leader, set, ts := startLeader(t, 2)

	var torn atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(ts.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		// Tear the first four substantive WAL ships in half; everything
		// afterwards passes through intact. (Caught-up empty ships are
		// header-only and smaller than 64 bytes.)
		if r.URL.Path == "/v1/repl/wal" && len(body) > 64 && torn.Add(1) <= 4 {
			body = body[:len(body)/2]
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	}))
	defer proxy.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fst, _, err := repl.Bootstrap(ctx, proxy.URL, "", followerCfg(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fst.Close()
	f := repl.New(fst, proxy.URL, testOpts())
	go f.Run(ctx)

	// Mutations land after the snapshot bootstrap, so they can only
	// reach the follower through the (initially torn) WAL ships.
	mutate(t, leader, set, 1)

	waitFor(t, 10*time.Second, "convergence through torn ships", func() bool {
		return epochsEqual(leader, fst)
	})
	if torn.Load() <= 4 {
		t.Fatalf("proxy tore only %d ships — the retry path was not exercised", torn.Load())
	}
	if got, want := rangeIDs(t, fst), rangeIDs(t, leader); !reflect.DeepEqual(got, want) {
		t.Fatal("follower diverged after torn-ship retries")
	}
}
