// Package repl is the follower half of SmartStore's per-shard
// WAL-shipping replication: it bootstraps a replica from a leader's
// snapshot (catch-up-from-checkpoint), then tails each shard's WAL
// segment stream over HTTP and folds the shipped records into the
// local store through the engine's recovery apply path — so a
// caught-up follower is state-identical to its leader, shard epochs
// included.
//
// The pull protocol is epoch-watermarked: each shard's puller asks
// GET /v1/repl/wal?shard=N&after=E for every record past E, where E is
// the highest epoch it has fetched. The leader answers in the wal ship
// framing (length-prefixed CRC-32C frames inside a counted envelope),
// so a response torn by a dying leader is detected and discarded
// whole, exactly like a torn segment tail on recovery. A leader
// checkpoint can truncate segments a lagging follower still needs; the
// response then carries SnapshotRequired instead of a gapped log. At
// bootstrap over a durable replica dir that triggers an automatic wipe
// and fresh snapshot fetch; on a live follower it stalls the shard and
// logs the operator instruction (restart with a cleared data dir) —
// a background loop does not wipe a store out from under its servers.
//
// Multi-shard insert batches are the one cross-shard ordering concern:
// a batch's per-shard fragments arrive on independent pullers, and
// applying one fragment before every declared target has arrived would
// let a leader crash strand half a batch on the follower. The Follower
// therefore withholds a batch fragment from the apply path until all
// its targets' fragments are queued (mirroring the completeness check
// recovery runs), and Promote drops still-incomplete fragments for the
// same reason recovery does: they were never acknowledged.
//
// See DESIGN.md §11 for the full protocol walkthrough and failure
// matrix.
package repl

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	smartstore "repro"
	"repro/internal/server"
	"repro/internal/wal"
)

// Options tunes a Follower. The zero value selects defaults.
type Options struct {
	// PollEvery is the idle pull cadence per shard once caught up;
	// behind, the puller re-pulls immediately. 0 selects 250ms.
	PollEvery time.Duration
	// Timeout bounds one HTTP pull round-trip. 0 selects 10s (snapshot
	// fetches use 10× this — they stream a full store).
	Timeout time.Duration
	// Logf sinks progress and warning lines; nil selects log.Printf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.PollEvery <= 0 {
		o.PollEvery = 250 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Bootstrap produces the follower's local store for leader: if dataDir
// already holds an initialized replica it recovers locally (the pull
// resumes from the recovered epochs — no snapshot transfer), otherwise
// it fetches the leader's current snapshot and loads it with
// LoadReplica, adopting the leader's epoch trajectory. cfg is the
// follower's deployment config; its DataDir field is overridden by
// dataDir (which may be empty for an in-memory follower).
//
// A recovered replica can have fallen behind the leader's replication
// base — a checkpoint truncated the segments that covered its
// watermark — in which case the log can never catch it up. Bootstrap
// probes each shard's tail once to detect that, wipes the stale
// replica dir, and falls through to a fresh snapshot fetch. When the
// leader is unreachable the probe is skipped: the recovered state
// serves reads and Run keeps retrying the pull.
func Bootstrap(ctx context.Context, leader, dataDir string, cfg smartstore.Config, opts Options) (*smartstore.Store, string, error) {
	opts = opts.withDefaults()
	leader = normalizeLeader(leader)
	cfg.DataDir = dataDir
	if dataDir != "" && smartstore.DataDirInitialized(dataDir) {
		st, err := smartstore.Open(cfg)
		if err != nil {
			return nil, "", fmt.Errorf("repl: recovering replica dir %s: %w", dataDir, err)
		}
		stale, err := replicaStale(ctx, leader, st, opts)
		if err != nil {
			// Leader unreachable: keep the recovered replica; Run
			// retries.
			opts.Logf("repl: leader %s unreachable at bootstrap (%v); serving recovered replica", leader, err)
			return st, "recovered replica from " + dataDir, nil
		}
		if !stale {
			return st, "recovered replica from " + dataDir, nil
		}
		opts.Logf("repl: replica dir %s predates the leader's checkpoint base; re-bootstrapping from snapshot", dataDir)
		if err := st.Close(); err != nil {
			return nil, "", fmt.Errorf("repl: closing stale replica: %w", err)
		}
		if err := wipeReplicaDir(dataDir); err != nil {
			return nil, "", err
		}
	}
	st, err := fetchSnapshot(ctx, leader, cfg, opts)
	if err != nil {
		return nil, "", err
	}
	return st, "bootstrapped from leader " + leader, nil
}

// replicaStale probes one tail pull per shard at the recovered
// watermarks, reporting whether any shard needs a snapshot
// re-bootstrap. A transport failure is returned as an error — staleness
// unknown.
func replicaStale(ctx context.Context, leader string, st *smartstore.Store, opts Options) (bool, error) {
	hc := &http.Client{Timeout: opts.Timeout}
	for shard, epoch := range st.ShardEpochs() {
		resp, err := fetchTailHTTP(ctx, hc, leader, shard, epoch)
		if err != nil {
			return false, err
		}
		if resp.SnapshotRequired {
			return true, nil
		}
	}
	return false, nil
}

// fetchSnapshot streams GET /v1/repl/snapshot from the leader into
// LoadReplica.
func fetchSnapshot(ctx context.Context, leader string, cfg smartstore.Config, opts Options) (*smartstore.Store, error) {
	sctx, cancel := context.WithTimeout(ctx, 10*opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, leader+"/v1/repl/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("repl: %w", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("repl: fetching leader snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repl: leader snapshot: status %d", resp.StatusCode)
	}
	st, err := smartstore.LoadReplica(resp.Body, cfg)
	if err != nil {
		return nil, fmt.Errorf("repl: loading leader snapshot: %w", err)
	}
	return st, nil
}

// normalizeLeader accepts either a bare "host:port" or a full base URL
// for the leader address, matching internal/client's convention.
func normalizeLeader(addr string) string {
	addr = strings.TrimSuffix(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// wipeReplicaDir empties a replica data dir so a fresh bootstrap can
// re-initialize it — the SnapshotRequired path. It refuses to touch
// anything that does not look like a replica dir's own contents.
func wipeReplicaDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("repl: %w", err)
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			return fmt.Errorf("repl: wiping %s: %w", dir, err)
		}
	}
	return nil
}

// batchState tracks one multi-shard batch awaiting completeness.
type batchState struct {
	targets []int
	arrived map[int]bool
}

func (b *batchState) complete() bool {
	if len(b.targets) == 0 {
		return false
	}
	for _, t := range b.targets {
		if !b.arrived[t] {
			return false
		}
	}
	return true
}

// Follower tails a leader's per-shard WAL streams into a local store.
// It implements server.ReplController, so the daemon can hand it to
// the serving layer for /v1/repl/status and /v1/repl/promote.
type Follower struct {
	store  *smartstore.Store
	leader string
	opts   Options
	shards int
	hc     *http.Client

	// mu guards the queues, the pending-batch table, the per-shard
	// watermarks and flags. Pullers ingest under it; pumps extract
	// ready prefixes under it and apply outside it.
	mu             sync.Mutex
	queues         [][]wal.Record
	pending        map[uint64]*batchState
	fetchedThrough []uint64
	applying       []bool
	caughtUp       []bool
	snapshotStall  []bool

	promoted   atomic.Bool
	leaderUp   atomic.Bool
	applied    atomic.Uint64
	runStarted atomic.Bool

	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// New builds a Follower over the bootstrapped local store. Run starts
// the pull loops; until then the follower is inert (Status answers,
// Promote is legal and simply marks the store promoted).
func New(store *smartstore.Store, leader string, opts Options) *Follower {
	opts = opts.withDefaults()
	n := store.Shards()
	return &Follower{
		store:          store,
		leader:         normalizeLeader(leader),
		opts:           opts,
		shards:         n,
		hc:             &http.Client{Timeout: opts.Timeout},
		queues:         make([][]wal.Record, n),
		pending:        map[uint64]*batchState{},
		fetchedThrough: store.ShardEpochs(),
		applying:       make([]bool, n),
		caughtUp:       make([]bool, n),
		snapshotStall:  make([]bool, n),
		stopCh:         make(chan struct{}),
		done:           make(chan struct{}),
	}
}

// Run starts one puller per shard and blocks until ctx is cancelled or
// the follower is promoted. Pull errors are never fatal: a follower
// must stay alive precisely when its leader is dying, so an
// unreachable leader only marks leader_reachable false and the puller
// keeps retrying at the poll cadence.
func (f *Follower) Run(ctx context.Context) {
	if !f.runStarted.CompareAndSwap(false, true) {
		return
	}
	defer close(f.done)
	if f.promoted.Load() {
		return // promoted before Run: nothing to pull
	}
	var wg sync.WaitGroup
	for i := 0; i < f.shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			f.pullLoop(ctx, shard)
		}(i)
	}
	wg.Wait()
}

// pullLoop tails one shard: pull, ingest, pump, sleep when caught up.
func (f *Follower) pullLoop(ctx context.Context, shard int) {
	t := time.NewTimer(0)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-f.stopCh:
			return
		case <-t.C:
		}
		again := f.pullOnce(ctx, shard)
		if again {
			t.Reset(0)
		} else {
			t.Reset(f.opts.PollEvery)
		}
	}
}

// pullOnce performs one pull round for shard, reporting whether the
// puller should immediately go again (still behind the leader).
func (f *Follower) pullOnce(ctx context.Context, shard int) bool {
	f.mu.Lock()
	after := f.fetchedThrough[shard]
	f.mu.Unlock()

	resp, err := f.fetchTail(ctx, shard, after)
	if err != nil {
		if f.leaderUp.Swap(false) {
			f.opts.Logf("repl: leader %s unreachable (shard %d): %v", f.leader, shard, err)
		}
		return false
	}
	if !f.leaderUp.Swap(true) {
		f.opts.Logf("repl: leader %s reachable again", f.leader)
	}
	if resp.SnapshotRequired {
		// The leader checkpointed past our watermark: the covering
		// segments are gone and this shard cannot catch up from the
		// log. Stall the shard and surface the condition — the operator
		// (or supervisor) restarts the follower with a cleared data dir
		// to re-bootstrap. Wiping a live store out from under its
		// serving layer is not something a background loop should do.
		f.mu.Lock()
		stalled := f.snapshotStall[shard]
		f.snapshotStall[shard] = true
		f.caughtUp[shard] = false
		f.mu.Unlock()
		if !stalled {
			f.opts.Logf("repl: shard %d fell behind the leader's checkpoint base %d (watermark %d): re-bootstrap required — restart the follower with an empty data dir",
				shard, resp.Base, after)
		}
		return false
	}
	if resp.Shard != shard {
		f.opts.Logf("repl: misrouted tail: asked shard %d, got %d", shard, resp.Shard)
		return false
	}
	f.ingest(shard, resp)
	// Pump every shard, not just this one: this ingest may hold the
	// last fragment another shard's queue was blocked on.
	f.pumpAll()
	// Re-poll immediately only while the leader reports more to ship;
	// a queue blocked on a cross-shard fragment resolves via the other
	// shards' pulls, not by hammering this one.
	return !resp.CaughtUp
}

// fetchTail round-trips one GET /v1/repl/wal pull.
func (f *Follower) fetchTail(ctx context.Context, shard int, after uint64) (*wal.TailResponse, error) {
	return fetchTailHTTP(ctx, f.hc, f.leader, shard, after)
}

// fetchTailHTTP is the raw tail pull, shared by the follower's pull
// loops and the bootstrap staleness probe. Raw net/http rather than
// internal/client: the ship framing is binary and the puller wants no
// retry magic between itself and the leader's truth.
func fetchTailHTTP(ctx context.Context, hc *http.Client, leader string, shard int, after uint64) (*wal.TailResponse, error) {
	url := fmt.Sprintf("%s/v1/repl/wal?shard=%d&after=%d", leader, shard, after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return wal.DecodeTail(resp.Body)
}

// ingest queues a pull's records under mu, registers multi-shard batch
// fragments in the pending table, and advances the shard's fetch
// watermark.
func (f *Follower) ingest(shard int, resp *wal.TailResponse) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, rec := range resp.Records {
		f.queues[shard] = append(f.queues[shard], rec)
		if rec.Epoch > f.fetchedThrough[shard] {
			f.fetchedThrough[shard] = rec.Epoch
		}
		if rec.BatchID != 0 {
			b := f.pending[rec.BatchID]
			if b == nil {
				b = &batchState{targets: rec.Targets, arrived: map[int]bool{}}
				f.pending[rec.BatchID] = b
			}
			b.arrived[shard] = true
		}
	}
	f.caughtUp[shard] = resp.CaughtUp && len(f.queues[shard]) == 0
}

// pump drains shard's queue: it extracts the maximal ready prefix —
// stopping at the first fragment of a still-incomplete multi-shard
// batch — applies it outside mu, and repeats until the queue has no
// ready prefix. The applying flag serializes pumps per shard (another
// shard's ingest may complete a batch and pump this shard) while
// keeping the shared mutex free during the apply itself.
func (f *Follower) pump(shard int) {
	for {
		f.mu.Lock()
		if f.applying[shard] || len(f.queues[shard]) == 0 {
			f.mu.Unlock()
			return
		}
		ready := 0
		for _, rec := range f.queues[shard] {
			if rec.BatchID != 0 && !f.pending[rec.BatchID].complete() {
				break
			}
			ready++
		}
		if ready == 0 {
			f.mu.Unlock()
			return
		}
		batch := make([]wal.Record, ready)
		copy(batch, f.queues[shard][:ready])
		f.queues[shard] = f.queues[shard][ready:]
		f.applying[shard] = true
		f.mu.Unlock()

		n, err := f.store.ApplyReplicated(shard, batch)
		f.applied.Add(uint64(n))

		f.mu.Lock()
		f.applying[shard] = false
		// A multi-shard batch this shard just applied may have been the
		// last arrival other shards were waiting on — their pumps run
		// from their own ingests; this loop only re-checks its own
		// queue. Caught-up tracking: the queue may have refilled while
		// applying.
		if len(f.queues[shard]) > 0 {
			f.caughtUp[shard] = false
		}
		f.mu.Unlock()
		if err != nil {
			f.opts.Logf("repl: apply shard %d: %v", shard, err)
			return
		}
	}
}

// pumpAll re-checks every shard's queue — used after promotion-time
// fragment drops and by ingests that complete a cross-shard batch.
func (f *Follower) pumpAll() {
	for i := 0; i < f.shards; i++ {
		f.pump(i)
	}
}

// Promote stops the pull loops, drops still-incomplete multi-shard
// batch fragments (they were never acknowledged by the leader —
// exactly what recovery would drop), applies everything else queued,
// and checkpoints a durable store so the promoted state is the next
// recovery base. Idempotent; safe to call whether or not Run started.
// After Promote returns the store holds every complete mutation the
// follower ever fetched and is ready for writes.
func (f *Follower) Promote() error {
	f.stopOnce.Do(func() { close(f.stopCh) })
	if f.promoted.Swap(true) {
		return nil
	}
	if f.runStarted.Load() {
		<-f.done // pullers drained: no ingest races the drop below
	}

	f.mu.Lock()
	for shard := range f.queues {
		kept := f.queues[shard][:0]
		for _, rec := range f.queues[shard] {
			if rec.BatchID != 0 && !f.pending[rec.BatchID].complete() {
				continue
			}
			kept = append(kept, rec)
		}
		f.queues[shard] = kept
	}
	f.mu.Unlock()
	f.pumpAll()

	if f.store.Durable() {
		if err := f.store.Checkpoint(); err != nil {
			return fmt.Errorf("repl: promotion checkpoint: %w", err)
		}
	}
	f.opts.Logf("repl: promoted (was following %s; %d records applied)", f.leader, f.applied.Load())
	return nil
}

// Status reports the follower's replication progress. The server
// overlays ReadOnly and ShardEpochs from its own state.
func (f *Follower) Status() server.ReplStatusWire {
	f.mu.Lock()
	caught := true
	for i := range f.caughtUp {
		if !f.caughtUp[i] || len(f.queues[i]) > 0 {
			caught = false
			break
		}
	}
	f.mu.Unlock()
	return server.ReplStatusWire{
		Following:       f.leader,
		Promoted:        f.promoted.Load(),
		CaughtUp:        caught,
		LeaderReachable: f.leaderUp.Load(),
		RecordsApplied:  f.applied.Load(),
	}
}
