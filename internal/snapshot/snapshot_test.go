package snapshot

import (
	"bytes"
	"testing"

	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/stats"
	"repro/internal/trace"
)

func buildTree(t *testing.T, n, units int, seed uint64) (*semtree.Tree, *trace.Set) {
	t.Helper()
	set := trace.MSN().Generate(n, seed)
	attrs := trace.DefaultQueryAttrs()
	us := semtree.PlaceSemantic(set.Files, units, set.Norm, attrs)
	return semtree.Build(us, set.Norm, semtree.Config{Attrs: attrs}), set
}

func TestRoundTrip(t *testing.T) {
	tree, set := buildTree(t, 400, 8, 1)
	snap := Capture(tree)
	if snap.FileCount() != 400 {
		t.Fatalf("FileCount = %d, want 400", snap.FileCount())
	}

	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := back.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored.TotalFiles() != 400 {
		t.Fatalf("restored files = %d, want 400", restored.TotalFiles())
	}
	if len(restored.Leaves()) != len(tree.Leaves()) {
		t.Fatalf("restored units = %d, want %d", len(restored.Leaves()), len(tree.Leaves()))
	}
	// Reconstruction is deterministic: the restored tree has the same
	// shape (this regressed once when the normalizer's fitted flag was
	// lost to gob and grouping silently degraded).
	s1, i1 := tree.CountNodes()
	s2, i2 := restored.CountNodes()
	if s1 != s2 || i1 != i2 {
		t.Fatalf("restored shape %d/%d, want %d/%d", s2, i2, s1, i1)
	}
	if tree.Height() != restored.Height() {
		t.Fatalf("restored height %d, want %d", restored.Height(), tree.Height())
	}

	// Every file answerable before is answerable after.
	for i := 0; i < 50; i++ {
		f := set.Files[(i*31)%len(set.Files)]
		got, _ := restored.PointQuery(query.Point{Filename: f.Path})
		found := false
		for _, id := range got {
			if id == f.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("restored tree cannot find %q", f.Path)
		}
	}
}

func TestRestoredAnswersMatchOriginal(t *testing.T) {
	tree, set := buildTree(t, 500, 10, 3)
	var buf bytes.Buffer
	if err := Capture(tree).Write(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 5)
	for i := 0; i < 25; i++ {
		q := gen.Range(0.08)
		a, _ := tree.RangeQuery(q)
		b, _ := restored.RangeQuery(q)
		if len(a) != len(b) {
			t.Fatalf("query %d: original %d results, restored %d", i, len(a), len(b))
		}
		set1 := map[uint64]bool{}
		for _, id := range a {
			set1[id] = true
		}
		for _, id := range b {
			if !set1[id] {
				t.Fatalf("query %d: restored returned extra id %d", i, id)
			}
		}
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	tree, _ := buildTree(t, 50, 4, 7)
	snap := Capture(tree)
	snap.Version = 99
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("Read accepted wrong format version")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("Read accepted garbage")
	}
}

func TestReadRejectsEmptyUnits(t *testing.T) {
	snap := &Snapshot{Version: FormatVersion}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("Read accepted snapshot without units")
	}
}

func TestCaptureIsDeepCopy(t *testing.T) {
	tree, set := buildTree(t, 100, 4, 9)
	snap := Capture(tree)
	// Mutating the live tree must not affect the captured snapshot.
	orig := snap.Units[0].Files[0].Attrs
	set.Files[0].Attrs[0] = -12345
	if snap.Units[0].Files[0].Attrs != orig {
		t.Fatal("snapshot shares file storage with the live tree")
	}
}
