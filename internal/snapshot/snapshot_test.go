package snapshot

import (
	"bytes"
	"testing"

	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/stats"
	"repro/internal/trace"
)

func buildTree(t *testing.T, n, units int, seed uint64) (*semtree.Tree, *trace.Set) {
	t.Helper()
	set := trace.MSN().Generate(n, seed)
	attrs := trace.DefaultQueryAttrs()
	us := semtree.PlaceSemantic(set.Files, units, set.Norm, attrs)
	return semtree.Build(us, set.Norm, semtree.Config{Attrs: attrs}), set
}

func TestRoundTrip(t *testing.T) {
	tree, set := buildTree(t, 400, 8, 1)
	snap := Capture(tree)
	if snap.FileCount() != 400 {
		t.Fatalf("FileCount = %d, want 400", snap.FileCount())
	}

	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := back.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored.TotalFiles() != 400 {
		t.Fatalf("restored files = %d, want 400", restored.TotalFiles())
	}
	if len(restored.Leaves()) != len(tree.Leaves()) {
		t.Fatalf("restored units = %d, want %d", len(restored.Leaves()), len(tree.Leaves()))
	}
	// Reconstruction is deterministic: the restored tree has the same
	// shape (this regressed once when the normalizer's fitted flag was
	// lost to gob and grouping silently degraded).
	s1, i1 := tree.CountNodes()
	s2, i2 := restored.CountNodes()
	if s1 != s2 || i1 != i2 {
		t.Fatalf("restored shape %d/%d, want %d/%d", s2, i2, s1, i1)
	}
	if tree.Height() != restored.Height() {
		t.Fatalf("restored height %d, want %d", restored.Height(), tree.Height())
	}

	// Every file answerable before is answerable after.
	for i := 0; i < 50; i++ {
		f := set.Files[(i*31)%len(set.Files)]
		got, _ := restored.PointQuery(query.Point{Filename: f.Path})
		found := false
		for _, id := range got {
			if id == f.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("restored tree cannot find %q", f.Path)
		}
	}
}

func TestRestoredAnswersMatchOriginal(t *testing.T) {
	tree, set := buildTree(t, 500, 10, 3)
	var buf bytes.Buffer
	if err := Capture(tree).Write(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 5)
	for i := 0; i < 25; i++ {
		q := gen.Range(0.08)
		a, _ := tree.RangeQuery(q)
		b, _ := restored.RangeQuery(q)
		if len(a) != len(b) {
			t.Fatalf("query %d: original %d results, restored %d", i, len(a), len(b))
		}
		set1 := map[uint64]bool{}
		for _, id := range a {
			set1[id] = true
		}
		for _, id := range b {
			if !set1[id] {
				t.Fatalf("query %d: restored returned extra id %d", i, id)
			}
		}
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	tree, _ := buildTree(t, 50, 4, 7)
	snap := Capture(tree)
	snap.Version = 99
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("Read accepted wrong format version")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("Read accepted garbage")
	}
}

func TestReadRejectsEmptyUnits(t *testing.T) {
	snap := &Snapshot{Version: FormatVersion}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("Read accepted snapshot without units")
	}
}

func TestCaptureIsDeepCopy(t *testing.T) {
	tree, set := buildTree(t, 100, 4, 9)
	snap := Capture(tree)
	// Mutating the live tree must not affect the captured snapshot.
	orig := snap.Shards[0].Units[0].Files[0].Attrs
	set.Files[0].Attrs[0] = -12345
	if snap.Shards[0].Units[0].Files[0].Attrs != orig {
		t.Fatal("snapshot shares file storage with the live tree")
	}
}

// A version-2 stream — sharded partition, written before the WAL
// introduced per-shard epochs — must load with zero epochs (replay
// everything a log might hold) rather than be rejected.
func TestV2SnapshotLoadsWithZeroEpochs(t *testing.T) {
	t1, _ := buildTree(t, 80, 3, 31)
	t2, _ := buildTree(t, 90, 3, 32)
	snap := CaptureShards([]*semtree.Tree{t1, t2}, []uint64{5, 6})
	snap.Version = 2
	for i := range snap.Shards {
		snap.Shards[i].Epoch = 0 // what a v2 writer would (not) have written
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
	if back.ShardCount() != 2 || back.FileCount() != 170 {
		t.Fatalf("v2 snapshot: %d shards / %d files", back.ShardCount(), back.FileCount())
	}
	for i, e := range back.ShardEpochs() {
		if e != 0 {
			t.Fatalf("v2 shard %d epoch = %d, want 0", i, e)
		}
	}
	if _, err := back.RestoreShards(); err != nil {
		t.Fatalf("v2 restore: %v", err)
	}
}

func TestShardEpochsRoundTrip(t *testing.T) {
	t1, _ := buildTree(t, 60, 3, 33)
	snap := CaptureShards([]*semtree.Tree{t1}, []uint64{42})
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if es := back.ShardEpochs(); len(es) != 1 || es[0] != 42 {
		t.Fatalf("ShardEpochs = %v, want [42]", es)
	}
}

func TestV1SnapshotLoadsAsOneShard(t *testing.T) {
	// A pre-sharding stream: version 1, flat Units, no Shards — exactly
	// what older builds wrote. It must lift into a one-shard snapshot.
	tree, _ := buildTree(t, 120, 4, 13)
	v2 := Capture(tree)
	v1 := &Snapshot{
		Version:       1,
		Attrs:         v2.Attrs,
		BaseThreshold: v2.BaseThreshold,
		MaxChildren:   v2.MaxChildren,
		MinChildren:   v2.MinChildren,
		NormLo:        v2.NormLo,
		NormHi:        v2.NormHi,
		NormFitted:    v2.NormFitted,
		Units:         v2.Shards[0].Units,
	}
	var buf bytes.Buffer
	if err := v1.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if back.ShardCount() != 1 {
		t.Fatalf("v1 snapshot lifted to %d shards, want 1", back.ShardCount())
	}
	if back.FileCount() != 120 {
		t.Fatalf("v1 FileCount = %d, want 120", back.FileCount())
	}
	restored, err := back.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored.TotalFiles() != 120 {
		t.Fatalf("restored files = %d, want 120", restored.TotalFiles())
	}
}

func TestMultiShardRoundTrip(t *testing.T) {
	t1, _ := buildTree(t, 200, 4, 21)
	t2, _ := buildTree(t, 300, 6, 22)
	snap := CaptureShards([]*semtree.Tree{t1, t2}, []uint64{7, 9})
	if snap.ShardCount() != 2 || snap.FileCount() != 500 {
		t.Fatalf("captured %d shards / %d files, want 2 / 500", snap.ShardCount(), snap.FileCount())
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := back.RestoreShards()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("restored %d shards, want 2", len(trees))
	}
	if trees[0].TotalFiles() != 200 || trees[1].TotalFiles() != 300 {
		t.Fatalf("shard assignment did not round-trip: %d/%d files",
			trees[0].TotalFiles(), trees[1].TotalFiles())
	}
	// Restore on a multi-shard snapshot must refuse rather than drop
	// shards silently.
	if _, err := back.Restore(); err == nil {
		t.Fatal("single-tree Restore accepted a multi-shard snapshot")
	}
}
