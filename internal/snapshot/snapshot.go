// Package snapshot persists and restores a SmartStore deployment: the
// storage-unit partition (which files live on which metadata server),
// the shard assignment (which storage units live on which engine
// shard), the fitted attribute normalizer, and the construction
// configuration. Restoring rebuilds each shard's semantic R-tree
// deterministically from the persisted partition, so a restored store
// answers queries identically to the one that was saved.
//
// The format is Go gob over a versioned envelope, suitable for the
// metadata checkpointing a next-generation file system would perform at
// reconfiguration points (§4.4 removes versions "when reconfiguring
// index units" — a natural snapshot boundary). Version 2 adds the
// per-shard unit partition; version 3 adds each shard's mutation epoch
// at capture — the shard's write-ahead-log truncation point, so
// recovery (snapshot + per-shard WAL tail replay, DESIGN.md §7) skips
// records the snapshot already contains. Version 1 snapshots (single
// flat partition) still load as a one-shard deployment, and version 2
// snapshots load with zero epochs.
package snapshot

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/metadata"
	"repro/internal/semtree"
)

// FormatVersion is the version new snapshots are written with.
const FormatVersion = 3

// Legacy formats, still accepted on read: v1 is the single-shard flat
// partition, v2 the sharded partition without per-shard epochs.
const (
	formatV1 = 1
	formatV2 = 2
)

// Snapshot is the persisted form of a deployment.
type Snapshot struct {
	Version int
	// Attrs is the grouping predicate of the persisted trees.
	Attrs []metadata.Attr
	// BaseThreshold, MaxChildren, MinChildren mirror semtree.Config.
	BaseThreshold float64
	MaxChildren   int
	MinChildren   int
	// NormLo/NormHi/NormFitted persist the fitted normalizer's state
	// explicitly (its fitted flag is unexported and would be lost to
	// gob otherwise).
	NormLo, NormHi [metadata.NumAttrs]float64
	NormFitted     bool
	// Units holds the flat storage-unit partition of a version-1
	// snapshot. Version-2 snapshots leave it empty and use Shards.
	Units []UnitRecord
	// Shards holds each shard's storage-unit partition (version ≥ 2) —
	// the shard assignment round-trips, so a restored engine keeps the
	// same placement.
	Shards []ShardRecord
}

// ShardRecord is one shard's persisted partition.
type ShardRecord struct {
	Units []UnitRecord
	// Epoch is the shard's mutation epoch at capture (version ≥ 3) —
	// the shard's WAL truncation point: recovery replays only log
	// records whose epoch exceeds it. Zero for v1/v2 snapshots.
	Epoch uint64
}

// UnitRecord is one storage unit's persisted content.
type UnitRecord struct {
	ID    int
	Files []metadata.File
}

// Capture extracts a single-shard snapshot from a built tree with a
// zero epoch.
func Capture(t *semtree.Tree) *Snapshot {
	return CaptureShards([]*semtree.Tree{t}, nil)
}

// CaptureShards extracts a snapshot from one tree per shard, stamping
// each shard record with its mutation epoch at capture (epochs may be
// nil for zero epochs — a deployment without a WAL). All trees must
// share a grouping predicate, configuration and normalizer (the engine
// guarantees this); the shared state is captured from the first.
func CaptureShards(trees []*semtree.Tree, epochs []uint64) *Snapshot {
	if len(trees) == 0 {
		panic("snapshot: no trees to capture")
	}
	t0 := trees[0]
	s := &Snapshot{
		Version:       FormatVersion,
		Attrs:         append([]metadata.Attr(nil), t0.Attrs...),
		BaseThreshold: t0.Config.BaseThreshold,
		MaxChildren:   t0.Config.MaxChildren,
		MinChildren:   t0.Config.MinChildren,
		NormLo:        t0.Norm.Lo,
		NormHi:        t0.Norm.Hi,
		NormFitted:    t0.Norm.Fitted(),
		Shards:        make([]ShardRecord, len(trees)),
	}
	for i, t := range trees {
		if epochs != nil {
			s.Shards[i].Epoch = epochs[i]
		}
		for _, u := range t.Units() {
			rec := UnitRecord{ID: u.ID, Files: make([]metadata.File, len(u.Files))}
			for j, f := range u.Files {
				rec.Files[j] = *f
			}
			s.Shards[i].Units = append(s.Shards[i].Units, rec)
		}
	}
	return s
}

// ShardEpochs returns each persisted shard's mutation epoch at capture
// — the per-shard WAL truncation points (all zero for v1/v2 streams).
func (s *Snapshot) ShardEpochs() []uint64 {
	out := make([]uint64, len(s.Shards))
	for i, sh := range s.Shards {
		out[i] = sh.Epoch
	}
	return out
}

// Write encodes the snapshot to w.
func (s *Snapshot) Write(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	return nil
}

// Read decodes a snapshot from r, validating the format version. A
// version-1 stream (flat partition) is lifted into a one-shard
// snapshot, so pre-sharding snapshots keep loading.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	switch s.Version {
	case formatV1:
		if len(s.Units) == 0 {
			return nil, fmt.Errorf("snapshot: no storage units")
		}
		s.Shards = []ShardRecord{{Units: s.Units}}
		s.Units = nil
	case formatV2, FormatVersion:
		if len(s.Shards) == 0 {
			return nil, fmt.Errorf("snapshot: no shards")
		}
		for i, sh := range s.Shards {
			if len(sh.Units) == 0 {
				return nil, fmt.Errorf("snapshot: shard %d has no storage units", i)
			}
		}
	default:
		return nil, fmt.Errorf("snapshot: format version %d, want ≤ %d", s.Version, FormatVersion)
	}
	return &s, nil
}

// ShardCount returns the number of persisted shards.
func (s *Snapshot) ShardCount() int { return len(s.Shards) }

// Restore rebuilds the semantic R-tree of a single-shard snapshot. It
// errors when the snapshot holds more than one shard — multi-shard
// callers use RestoreShards.
func (s *Snapshot) Restore() (*semtree.Tree, error) {
	trees, err := s.RestoreShards()
	if err != nil {
		return nil, err
	}
	if len(trees) != 1 {
		return nil, fmt.Errorf("snapshot: %d shards, want 1 (use RestoreShards)", len(trees))
	}
	return trees[0], nil
}

// RestoreShards rebuilds one semantic R-tree per persisted shard. Each
// tree is structurally regenerated (grouping is deterministic given the
// same units, normalizer and config), so every persisted file is
// findable in its restored shard.
func (s *Snapshot) RestoreShards() ([]*semtree.Tree, error) {
	if err := (semtree.Config{
		BaseThreshold: s.BaseThreshold,
		MaxChildren:   s.MaxChildren,
		MinChildren:   s.MinChildren,
	}).Validate(); err != nil {
		return nil, fmt.Errorf("snapshot: persisted config invalid: %w", err)
	}
	norm := metadata.RestoreNormalizer(s.NormLo, s.NormHi, s.NormFitted)
	cfg := semtree.Config{
		Attrs:         s.Attrs,
		BaseThreshold: s.BaseThreshold,
		MaxChildren:   s.MaxChildren,
		MinChildren:   s.MinChildren,
	}
	trees := make([]*semtree.Tree, len(s.Shards))
	for i, sh := range s.Shards {
		units := make([]*semtree.StorageUnit, len(sh.Units))
		for j, rec := range sh.Units {
			files := make([]*metadata.File, len(rec.Files))
			for k := range rec.Files {
				f := rec.Files[k]
				files[k] = &f
			}
			units[j] = semtree.NewStorageUnit(rec.ID, files)
		}
		tree := semtree.Build(units, norm, cfg)
		if err := tree.Validate(); err != nil {
			return nil, fmt.Errorf("snapshot: restored shard %d invalid: %w", i, err)
		}
		trees[i] = tree
	}
	return trees, nil
}

// FileCount returns the number of persisted file records.
func (s *Snapshot) FileCount() int {
	n := 0
	for _, sh := range s.Shards {
		for _, u := range sh.Units {
			n += len(u.Files)
		}
	}
	for _, u := range s.Units {
		n += len(u.Files)
	}
	return n
}
