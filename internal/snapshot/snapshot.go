// Package snapshot persists and restores a SmartStore deployment: the
// storage-unit partition (which files live on which metadata server),
// the fitted attribute normalizer, and the construction configuration.
// Restoring rebuilds the semantic R-tree deterministically from the
// persisted partition, so a restored store answers queries identically
// to the one that was saved.
//
// The format is Go gob over a versioned envelope, suitable for the
// metadata checkpointing a next-generation file system would perform at
// reconfiguration points (§4.4 removes versions "when reconfiguring
// index units" — a natural snapshot boundary).
package snapshot

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/metadata"
	"repro/internal/semtree"
)

// FormatVersion guards against decoding snapshots from incompatible
// builds.
const FormatVersion = 1

// Snapshot is the persisted form of a deployment.
type Snapshot struct {
	Version int
	// Attrs is the grouping predicate of the persisted tree.
	Attrs []metadata.Attr
	// BaseThreshold, MaxChildren, MinChildren mirror semtree.Config.
	BaseThreshold float64
	MaxChildren   int
	MinChildren   int
	// NormLo/NormHi/NormFitted persist the fitted normalizer's state
	// explicitly (its fitted flag is unexported and would be lost to
	// gob otherwise).
	NormLo, NormHi [metadata.NumAttrs]float64
	NormFitted     bool
	// Units holds each storage unit's id and file records.
	Units []UnitRecord
}

// UnitRecord is one storage unit's persisted content.
type UnitRecord struct {
	ID    int
	Files []metadata.File
}

// Capture extracts a snapshot from a built tree.
func Capture(t *semtree.Tree) *Snapshot {
	s := &Snapshot{
		Version:       FormatVersion,
		Attrs:         append([]metadata.Attr(nil), t.Attrs...),
		BaseThreshold: t.Config.BaseThreshold,
		MaxChildren:   t.Config.MaxChildren,
		MinChildren:   t.Config.MinChildren,
		NormLo:        t.Norm.Lo,
		NormHi:        t.Norm.Hi,
		NormFitted:    t.Norm.Fitted(),
	}
	for _, u := range t.Units() {
		rec := UnitRecord{ID: u.ID, Files: make([]metadata.File, len(u.Files))}
		for i, f := range u.Files {
			rec.Files[i] = *f
		}
		s.Units = append(s.Units, rec)
	}
	return s
}

// Write encodes the snapshot to w.
func (s *Snapshot) Write(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	return nil
}

// Read decodes a snapshot from r, validating the format version.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("snapshot: format version %d, want %d", s.Version, FormatVersion)
	}
	if len(s.Units) == 0 {
		return nil, fmt.Errorf("snapshot: no storage units")
	}
	return &s, nil
}

// Restore rebuilds the semantic R-tree from the persisted partition.
// The tree is structurally regenerated (grouping is deterministic given
// the same units, normalizer and config), so every persisted file is
// findable in the restored tree.
func (s *Snapshot) Restore() (*semtree.Tree, error) {
	units := make([]*semtree.StorageUnit, len(s.Units))
	for i, rec := range s.Units {
		files := make([]*metadata.File, len(rec.Files))
		for j := range rec.Files {
			f := rec.Files[j]
			files[j] = &f
		}
		units[i] = semtree.NewStorageUnit(rec.ID, files)
	}
	norm := metadata.RestoreNormalizer(s.NormLo, s.NormHi, s.NormFitted)
	cfg := semtree.Config{
		Attrs:         s.Attrs,
		BaseThreshold: s.BaseThreshold,
		MaxChildren:   s.MaxChildren,
		MinChildren:   s.MinChildren,
	}
	tree := semtree.Build(units, norm, cfg)
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("snapshot: restored tree invalid: %w", err)
	}
	return tree, nil
}

// FileCount returns the number of persisted file records.
func (s *Snapshot) FileCount() int {
	n := 0
	for _, u := range s.Units {
		n += len(u.Files)
	}
	return n
}
