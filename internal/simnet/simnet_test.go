package simnet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, ...) did not panic")
		}
	}()
	New(0, DefaultCostModel())
}

func TestTransferTime(t *testing.T) {
	c := DefaultCostModel()
	base := c.TransferTime(0)
	if base != c.HopLatency {
		t.Fatalf("zero-byte transfer = %v, want hop latency %v", base, c.HopLatency)
	}
	big := c.TransferTime(1 << 20)
	if big <= base {
		t.Fatal("larger messages must take longer")
	}
}

func TestProbeAndScanCost(t *testing.T) {
	c := DefaultCostModel()
	if c.ProbeCost(0) != 0 {
		t.Fatal("probing zero records should be free")
	}
	if c.ProbeCost(1000) != Time(1000)*c.MemProbe {
		t.Fatal("probe cost not linear")
	}
	// Within memory: scan == probe.
	if c.ScanCost(100, c.MemCapacity) != c.ProbeCost(100) {
		t.Fatal("in-memory scan should equal probe cost")
	}
	// Beyond memory: disk pages dominate.
	inMem := c.ScanCost(10000, c.MemCapacity)
	paged := c.ScanCost(10000, c.MemCapacity*10)
	if paged <= inMem {
		t.Fatalf("paged scan %v not slower than in-memory %v", paged, inMem)
	}
	if c.ScanCost(0, c.MemCapacity*10) != 0 {
		t.Fatal("scanning zero records should be free")
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := New(1, DefaultCostModel())
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("event order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want 3", s.Now())
	}
}

func TestScheduleTieFIFO(t *testing.T) {
	s := New(1, DefaultCostModel())
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1, DefaultCostModel())
	ran := false
	s.Schedule(-5, func() { ran = true })
	s.Run()
	if !ran || s.Now() != 0 {
		t.Fatalf("negative delay mishandled: ran=%v now=%v", ran, s.Now())
	}
}

func TestSendCountsMessagesAndBytes(t *testing.T) {
	s := New(2, DefaultCostModel())
	delivered := -1
	s.Node(0).Send(s.Node(1), 512, func(at *Node) { delivered = at.ID() })
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered at node %d, want 1", delivered)
	}
	if s.Messages() != 1 || s.BytesSent() != 512 {
		t.Fatalf("counters = %d msgs / %d bytes", s.Messages(), s.BytesSent())
	}
	s.ResetCounters()
	if s.Messages() != 0 || s.BytesSent() != 0 {
		t.Fatal("ResetCounters failed")
	}
}

func TestMulticast(t *testing.T) {
	s := New(5, DefaultCostModel())
	var got []int
	s.Node(0).Multicast(s.Nodes()[1:], 64, func(at *Node) { got = append(got, at.ID()) })
	s.Run()
	if len(got) != 4 {
		t.Fatalf("multicast reached %d nodes, want 4", len(got))
	}
	if s.Messages() != 4 {
		t.Fatalf("multicast counted %d messages, want 4", s.Messages())
	}
}

func TestWorkSerializesPerNode(t *testing.T) {
	s := New(1, DefaultCostModel())
	n := s.Node(0)
	var t1, t2 Time
	n.Work(10, func() { t1 = s.Now() })
	n.Work(10, func() { t2 = s.Now() })
	s.Run()
	if t1 != 10 {
		t.Fatalf("first work completed at %v, want 10", t1)
	}
	if t2 != 20 {
		t.Fatalf("second work completed at %v, want 20 (queued behind first)", t2)
	}
}

func TestWorkOnDifferentNodesParallel(t *testing.T) {
	s := New(2, DefaultCostModel())
	var t1, t2 Time
	s.Node(0).Work(10, func() { t1 = s.Now() })
	s.Node(1).Work(10, func() { t2 = s.Now() })
	s.Run()
	if t1 != 10 || t2 != 10 {
		t.Fatalf("parallel work = %v/%v, want 10/10", t1, t2)
	}
}

func TestLatencyRequestResponse(t *testing.T) {
	c := DefaultCostModel()
	s := New(2, c)
	lat := s.Latency(func(done func()) {
		s.Node(0).Send(s.Node(1), 100, func(at *Node) {
			at.Work(c.ProbeCost(1000), func() {
				at.Send(s.Node(0), 100, func(*Node) { done() })
			})
		})
	})
	want := 2*c.TransferTime(100) + c.ProbeCost(1000)
	if math.Abs(float64(lat-want)) > 1e-12 {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
}

func TestLatencyPanicsWithoutDone(t *testing.T) {
	s := New(1, DefaultCostModel())
	defer func() {
		if recover() == nil {
			t.Error("Latency without done() did not panic")
		}
	}()
	s.Latency(func(done func()) {})
}

func TestMulticastLatencyIsMax(t *testing.T) {
	// A fan-out/fan-in pattern completes when the slowest branch does.
	c := DefaultCostModel()
	s := New(4, c)
	workloads := []Time{0.010, 0.030, 0.020}
	lat := s.Latency(func(done func()) {
		pending := len(workloads)
		s.Node(0).Multicast(s.Nodes()[1:], 64, func(at *Node) {
			at.Work(workloads[at.ID()-1], func() {
				at.Send(s.Node(0), 64, func(*Node) {
					pending--
					if pending == 0 {
						done()
					}
				})
			})
		})
	})
	want := 2*c.TransferTime(64) + 0.030
	if math.Abs(float64(lat-want)) > 1e-12 {
		t.Fatalf("fan-in latency = %v, want %v (slowest branch)", lat, want)
	}
}

// Property: virtual time never goes backwards regardless of scheduling
// pattern.
func TestPropertyClockMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(1, DefaultCostModel())
		last := Time(-1)
		ok := true
		for _, d := range delays {
			s.Schedule(Time(d)/1000, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: message counter equals exactly the number of Send calls.
func TestPropertyMessageCount(t *testing.T) {
	f := func(n uint8) bool {
		s := New(2, DefaultCostModel())
		for i := 0; i < int(n); i++ {
			s.Node(0).Send(s.Node(1), 10, func(*Node) {})
		}
		s.Run()
		return s.Messages() == int64(n) && s.BytesSent() == int64(n)*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
