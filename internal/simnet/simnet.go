// Package simnet is a deterministic discrete-event simulator of the
// storage cluster the SmartStore prototype ran on (§5.1: "a cluster of
// 60 storage units ... high-speed network connections").
//
// The physical testbed is replaced by a virtual-time event loop: nodes
// exchange messages whose delivery time is propagation latency plus
// serialization at link bandwidth, and local work (index probes, disk
// pages, LSI fold-ins) advances a node's busy time through the CostModel.
// All evaluation metrics that the paper reports in wall-clock terms —
// query latency (Table 4), on-line vs off-line latency and message count
// (Fig. 13), versioning latency (Fig. 14) — are measured in this virtual
// time, which makes runs deterministic and hardware-independent while
// preserving relative magnitudes.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual time in seconds.
type Time float64

// CostModel fixes the virtual costs of primitive operations. Defaults
// are calibrated in DESIGN.md §4 so the baselines land in the paper's
// latency regime.
type CostModel struct {
	HopLatency   Time    // one-way network propagation per message
	BandwidthBps float64 // link bandwidth for message serialization
	MemProbe     Time    // examining one in-memory record / index entry
	DiskPage     Time    // reading one page from disk
	PageRecords  int     // records per disk page
	MemCapacity  int     // records a node can hold in memory before paging
	LSIFold      Time    // folding one query vector into the LSI subspace
	BloomCheck   Time    // one Bloom-filter membership test
	MsgHandle    Time    // CPU time to receive/dispatch one message
}

// DefaultCostModel returns the calibration used by all experiments:
// gigabit-class interconnect, commodity-2009 disk and DRAM figures.
func DefaultCostModel() CostModel {
	return CostModel{
		HopLatency:   200e-6, // 0.2 ms
		BandwidthBps: 1e9 / 8,
		MemProbe:     200e-9,  // 0.2 µs per record
		DiskPage:     5e-3,    // 5 ms per (large, scan-sized) page
		PageRecords:  1000,    // ⇒ ~200k records/s streamed off disk
		MemCapacity:  4 << 20, // ~4M records in 2GB RAM at ~500B each (§5.1 nodes)
		LSIFold:      5e-6,
		BloomCheck:   100e-9,
		MsgHandle:    20e-6, // per-message receive/dispatch CPU cost
	}
}

// TransferTime returns the network time for one message of size bytes.
func (c CostModel) TransferTime(bytes int) Time {
	return c.HopLatency + Time(float64(bytes)/c.BandwidthBps)
}

// ProbeCost returns the node-local time to examine n records that are
// resident in memory.
func (c CostModel) ProbeCost(n int) Time {
	return Time(n) * c.MemProbe
}

// ScanCost returns the node-local time to examine n records on a node
// holding total records: the portion beyond memory capacity pages from
// disk. This is what makes the DBMS baseline's brute-force scans slow at
// scale, reproducing the 10³× gap of Table 4.
func (c CostModel) ScanCost(n, total int) Time {
	if total <= c.MemCapacity || n == 0 {
		return c.ProbeCost(n)
	}
	diskFrac := float64(total-c.MemCapacity) / float64(total)
	diskRecs := int(math.Ceil(float64(n) * diskFrac))
	memRecs := n - diskRecs
	pages := (diskRecs + c.PageRecords - 1) / c.PageRecords
	return c.ProbeCost(memRecs) + Time(pages)*c.DiskPage
}

// Event is a scheduled callback in virtual time.
type event struct {
	at  Time
	seq uint64 // tie-break so simultaneous events fire FIFO
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is one simulation run: an event queue, a virtual clock, and
// per-run message/byte counters.
type Sim struct {
	Cost CostModel

	now      Time
	seq      uint64
	events   eventHeap
	messages int64
	bytes    int64
	nodes    []*Node
}

// New returns a simulator with n nodes under the given cost model.
func New(n int, cost CostModel) *Sim {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: need at least one node, got %d", n))
	}
	s := &Sim{Cost: cost}
	s.nodes = make([]*Node, n)
	for i := range s.nodes {
		s.nodes[i] = &Node{id: i, sim: s}
	}
	return s
}

// Node is one storage server in the simulated cluster.
type Node struct {
	id   int
	sim  *Sim
	busy Time // the node is serially busy until this time
}

// ID returns the node's index.
func (n *Node) ID() int { return n.id }

// Nodes returns the simulator's node list.
func (s *Sim) Nodes() []*Node { return s.nodes }

// Node returns node i.
func (s *Sim) Node(i int) *Node { return s.nodes[i] }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Messages returns the number of messages sent since the last
// ResetCounters.
func (s *Sim) Messages() int64 { return s.messages }

// BytesSent returns the number of bytes sent since the last
// ResetCounters.
func (s *Sim) BytesSent() int64 { return s.bytes }

// ResetCounters zeroes the message and byte counters (per-experiment
// accounting).
func (s *Sim) ResetCounters() { s.messages, s.bytes = 0, 0 }

// Schedule runs fn after delay of virtual time. Negative delays are
// clamped to zero.
func (s *Sim) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until the queue drains, returning the final
// virtual time.
func (s *Sim) Run() Time {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// Send transmits a message of size bytes from n to dst, invoking fn at
// dst when it arrives. Delivery time is the cost model's transfer time.
func (n *Node) Send(dst *Node, size int, fn func(at *Node)) {
	s := n.sim
	s.messages++
	s.bytes += int64(size)
	s.Schedule(s.Cost.TransferTime(size), func() { fn(dst) })
}

// Multicast sends the same message to every destination; deliveries are
// concurrent (each counts as one message).
func (n *Node) Multicast(dsts []*Node, size int, fn func(at *Node)) {
	for _, d := range dsts {
		n.Send(d, size, fn)
	}
}

// Work occupies the node for d of virtual time and calls fn when the
// work completes. Work is serialized per node: requests queue behind the
// node's busy horizon, modelling a single-service-queue server.
func (n *Node) Work(d Time, fn func()) {
	s := n.sim
	start := s.now
	if n.busy > start {
		start = n.busy
	}
	n.busy = start + d
	s.Schedule(n.busy-s.now, fn)
}

// Latency measures one request's virtual completion time: it schedules
// start at the current clock, runs the simulation to completion, and
// returns the elapsed virtual time between injection and the moment
// done() was called inside the event graph.
//
// Typical use:
//
//	lat := sim.Latency(func(done func()) {
//	    client.Send(home, 128, func(at *simnet.Node) { ... ; done() })
//	})
func (s *Sim) Latency(start func(done func())) Time {
	injected := s.now
	finished := Time(-1)
	start(func() {
		if finished < 0 {
			finished = s.now
		}
	})
	s.Run()
	if finished < 0 {
		panic("simnet: request never completed — done() was not called")
	}
	return finished - injected
}
