package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metric naming convention (DESIGN.md §8): every series is
// smartstore_<subsystem>_<what>_<unit>, durations are exposed in
// seconds (recorded in nanoseconds, scaled at exposition with
// ScaleNanos), sizes in bytes, everything else unitless counts.
// Labels are static at registration time — there is no dynamic label
// creation, so cardinality is bounded by what the code registers.

// ScaleNanos converts nanosecond-recorded histogram values to the
// seconds Prometheus expects for duration metrics.
const ScaleNanos = 1e-9

// kind is the exposition TYPE of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled sample source inside a family.
type series struct {
	labels string // pre-rendered, e.g. `endpoint="query"`; "" for none
	value  func() float64
	hist   *Histogram
	scale  float64
}

// family is one metric name: its metadata plus every labeled series
// registered under it.
type family struct {
	name   string
	help   string
	kind   kind
	series []series
}

// Registry holds the process's metric families and renders them in
// Prometheus text exposition format 0.0.4. Registration happens at
// wiring time (server/store construction); WritePrometheus may be
// called concurrently with registration and with the hot paths that
// move the underlying atomics.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(name, help string, k kind, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, k))
	}
	f.series = append(f.series, s)
}

// Labels renders label pairs into the canonical exposition form,
// sorted by key: Labels("shard", "0", "op", "insert") →
// `op="insert",shard="0"`. Use the result as the labels argument of
// the Register* methods.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labels requires key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// RegisterCounter exposes c as a counter series.
func (r *Registry) RegisterCounter(name, labels, help string, c *Counter) {
	r.add(name, help, kindCounter, series{labels: labels, value: func() float64 { return float64(c.Load()) }})
}

// RegisterCounterFunc exposes f as a counter series; f must be
// monotonically non-decreasing and safe to call concurrently.
func (r *Registry) RegisterCounterFunc(name, labels, help string, f func() float64) {
	r.add(name, help, kindCounter, series{labels: labels, value: f})
}

// RegisterGauge exposes g as a gauge series.
func (r *Registry) RegisterGauge(name, labels, help string, g *Gauge) {
	r.add(name, help, kindGauge, series{labels: labels, value: func() float64 { return float64(g.Load()) }})
}

// RegisterGaugeFunc exposes f as a gauge series; f must be safe to
// call concurrently.
func (r *Registry) RegisterGaugeFunc(name, labels, help string, f func() float64) {
	r.add(name, help, kindGauge, series{labels: labels, value: f})
}

// RegisterHistogram exposes h as a histogram series. scale multiplies
// recorded units into exposed units (ScaleNanos for ns→s durations, 1
// for plain counts).
func (r *Registry) RegisterHistogram(name, labels, help string, scale float64, h *Histogram) {
	if scale == 0 {
		scale = 1
	}
	r.add(name, help, kindHistogram, series{labels: labels, hist: h, scale: scale})
}

// snapshotFamilies copies the family list under the lock so exposition
// can run without holding it while calling value funcs (which may take
// their own locks, e.g. cache stats).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	copy(out, r.families)
	return out
}

// WritePrometheus renders every registered family in text exposition
// format 0.0.4, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		// Series membership only grows, and appends happen-before any
		// scrape that should see them (wiring precedes serving); reading
		// len once keeps the loop stable if a late registration races.
		r.mu.Lock()
		ss := f.series[:len(f.series):len(f.series)]
		r.mu.Unlock()
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			if f.kind == kindHistogram {
				writeHistogram(bw, f.name, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(s.labels), formatFloat(s.value()))
		}
	}
	return bw.Flush()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHistogram emits the cumulative bucket series, _sum and _count
// for one histogram. Only non-empty buckets get an explicit le line —
// a valid subset under the exposition format, and it keeps a scrape of
// many sparse histograms compact — with the mandatory +Inf closing the
// series.
func writeHistogram(bw *bufio.Writer, name string, s series) {
	snap := s.hist.Snapshot()
	var cum uint64
	for i, c := range snap.Counts {
		if c == 0 {
			continue
		}
		cum += c
		if i == HistBuckets-1 {
			continue // overflow bucket counts only toward +Inf
		}
		le := formatFloat(BucketBound(i) * s.scale)
		fmt.Fprintf(bw, "%s_bucket{%sle=%q} %d\n", name, labelPrefix(s.labels), le, cum)
	}
	// _count is the bucket total, not the separate count atomic: the
	// snapshot is not atomic across fields, and the exposition invariant
	// bucket{+Inf} == _count must hold on every scrape.
	fmt.Fprintf(bw, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix(s.labels), cum)
	fmt.Fprintf(bw, "%s_sum%s %s\n", name, braced(s.labels), formatFloat(float64(snap.Sum)*s.scale))
	fmt.Fprintf(bw, "%s_count%s %d\n", name, braced(s.labels), cum)
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}
