package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// TestBucketBoundaries pins the index function to the documented edge
// rule: bucket i holds bounds[i-1] < v <= bounds[i], √2 growth.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0},
		{2, 1},         // bounds[0]=√2 < 2 ≤ bounds[1]=2
		{3, 3},         // bounds[2]=2√2≈2.83 < 3 ≤ bounds[3]=4
		{4, 3},         // exactly on an edge stays inside it
		{5, 4},         // 4 < 5 ≤ 4√2≈5.66
		{1024, 19},     // 2^10 = bounds[19]
		{1025, 20},     // just past a power-of-two edge
		{1 << 62, 123}, // 2^62 = bounds[123]
		{math.MaxUint64, HistBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// The invariant must hold for a dense sweep around every edge.
	for i := 0; i < HistBuckets-1; i++ {
		edge := BucketBound(i)
		for _, v := range []float64{edge - 1, edge, edge + 1} {
			if v < 1 {
				continue
			}
			u := uint64(v)
			idx := bucketIndex(u)
			if idx > 0 && float64(u) <= BucketBound(idx-1) {
				t.Fatalf("v=%d landed in bucket %d but is below its lower edge %g", u, idx, BucketBound(idx-1))
			}
			if idx < HistBuckets-1 && float64(u) > BucketBound(idx) {
				t.Fatalf("v=%d landed in bucket %d but exceeds its upper edge %g", u, idx, BucketBound(idx))
			}
		}
	}
}

// TestQuantileAccuracy checks extracted quantiles stay within one
// bucket ratio (√2) of the true value on a known distribution.
func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform 1..10000: true p50=5000, p95=9500, p99=9900.
	for v := uint64(1); v <= 10000; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{0.50, 5000}, {0.95, 9500}, {0.99, 9900},
	} {
		got := h.Quantile(tc.p)
		ratio := got / tc.want
		if ratio < 1/math.Sqrt2 || ratio > math.Sqrt2 {
			t.Errorf("p%v = %g, want within √2 of %g", tc.p*100, got, tc.want)
		}
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	// A single-valued distribution must come back inside its bucket.
	var h2 Histogram
	for i := 0; i < 100; i++ {
		h2.Observe(1000)
	}
	got := h2.Quantile(0.99)
	if got < 1000/math.Sqrt2 || got > 1000*math.Sqrt2 {
		t.Errorf("point-mass p99 = %g, want within √2 of 1000", got)
	}
}

func TestHistogramMeanAndDelta(t *testing.T) {
	var h Histogram
	h.Observe(100)
	h.Observe(300)
	before := h.Snapshot()
	if got := before.Mean(); got != 200 {
		t.Fatalf("mean = %g, want 200", got)
	}
	h.Observe(700)
	d := h.Snapshot().Delta(before)
	if d.Count != 1 || d.Sum != 700 {
		t.Fatalf("delta count=%d sum=%d, want 1/700", d.Count, d.Sum)
	}
	var total uint64
	for _, c := range d.Counts {
		total += c
	}
	if total != 1 {
		t.Fatalf("delta bucket total = %d, want 1", total)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// while a reader snapshots and a writer renders exposition — the -race
// gate for the lock-free core.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	reg := NewRegistry()
	reg.RegisterHistogram("t_conc_ns", "", "concurrent test", ScaleNanos, &h)
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			if _, err := ParsePrometheus(strings.NewReader(sb.String())); err != nil {
				t.Errorf("mid-load exposition invalid: %v", err)
				return
			}
			h.Snapshot().Quantile(0.95)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			v := seed*2654435761 + 1
			for i := 0; i < perWriter; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				h.Observe(v >> 40)
			}
		}(uint64(w))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != writers*perWriter {
		t.Fatalf("bucket total = %d, want %d", total, writers*perWriter)
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(3)
	reg.RegisterCounter("t_requests_total", Labels("endpoint", "query"), "requests", &c)
	reg.RegisterCounterFunc("t_requests_total", Labels("endpoint", "insert"), "requests", func() float64 { return 5 })
	var g Gauge
	g.Set(-2)
	reg.RegisterGauge("t_inflight", "", "inflight", &g)
	reg.RegisterGaugeFunc("t_uptime_seconds", "", "uptime", func() float64 { return 1.5 })
	var h Histogram
	h.Observe(1000)
	h.Observe(2000)
	reg.RegisterHistogram("t_latency_seconds", "", "latency", ScaleNanos, &h)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	if len(fams) != 4 {
		t.Fatalf("got %d families, want 4\n%s", len(fams), text)
	}
	req := FindFamily(fams, "t_requests_total")
	if req == nil || req.Type != "counter" || len(req.Samples) != 2 {
		t.Fatalf("t_requests_total parsed wrong: %+v", req)
	}
	for _, s := range req.Samples {
		switch s.Labels["endpoint"] {
		case "query":
			if s.Value != 3 {
				t.Errorf("query counter = %v, want 3", s.Value)
			}
		case "insert":
			if s.Value != 5 {
				t.Errorf("insert counter = %v, want 5", s.Value)
			}
		default:
			t.Errorf("unexpected labels %v", s.Labels)
		}
	}
	lat := FindFamily(fams, "t_latency_seconds")
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("t_latency_seconds missing: %+v", lat)
	}
	var buckets []Sample
	var count, sum float64
	for _, s := range lat.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			buckets = append(buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		}
	}
	if count != 2 {
		t.Errorf("count = %v, want 2", count)
	}
	if math.Abs(sum-3e-6) > 1e-12 {
		t.Errorf("sum = %v, want 3e-6", sum)
	}
	q := BucketQuantile(buckets, 0.5)
	if q < 1e-6/math.Sqrt2 || q > 1e-6*math.Sqrt2*math.Sqrt2 {
		t.Errorf("scraped p50 = %v, want ~1-2µs", q)
	}
}

func TestParsePrometheusRejectsIncoherent(t *testing.T) {
	bad := []string{
		// sample without TYPE
		"no_type_metric 1\n",
		// non-cumulative buckets
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		// missing +Inf
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		// _count disagrees with +Inf
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
		// garbage value
		"# TYPE c counter\nc abc\n",
	}
	for _, text := range bad {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("expected parse error for %q", text)
		}
	}
	ok := "# HELP c help text\n# TYPE c counter\nc{a=\"x,y\",b=\"z\"} 12 1700000000\n"
	fams, err := ParsePrometheus(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if fams[0].Samples[0].Labels["a"] != "x,y" {
		t.Errorf("label with comma parsed wrong: %v", fams[0].Samples[0].Labels)
	}
}

func TestLabels(t *testing.T) {
	if got := Labels("shard", "0", "op", "insert"); got != `op="insert",shard="0"` {
		t.Fatalf("Labels = %q", got)
	}
	if got := Labels("k", "a\"b\\c\nd"); got != `k="a\"b\\c\nd"` {
		t.Fatalf("escaped Labels = %q", got)
	}
}

func TestQueryTrace(t *testing.T) {
	var nilTrace *QueryTrace
	nilTrace.AddPhase("x", time.Second) // must not panic
	nilTrace.AddShard(0, time.Second, false)
	if nilTrace.String() != "" {
		t.Fatal("nil trace should render empty")
	}

	ctx, tr := WithTrace(context.Background())
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom did not round-trip")
	}
	tr.AddPhase("admission_wait", 10*time.Microsecond)
	tr.AddPhase("execute", 3*time.Millisecond)
	tr.AddShard(0, 3*time.Millisecond, false)
	tr.AddShard(1, 0, true)
	s := tr.String()
	for _, want := range []string{"admission_wait=10µs", "execute=3ms", "shard0=3ms", "shard1=pruned"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace %q missing %q", s, want)
		}
	}
	if n := len(tr.Phases()); n != 2 {
		t.Errorf("phases = %d, want 2", n)
	}
	if n := len(tr.Shards()); n != 2 {
		t.Errorf("shards = %d, want 2", n)
	}
}
