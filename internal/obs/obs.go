// Package obs is the dependency-free observability core of the serving
// stack: atomic counters and gauges, lock-free fixed-bucket log-scale
// histograms with quantile extraction, a Prometheus-text-format
// registry (registry.go), a minimal exposition parser shared by the
// CLIs (promtext.go), and the per-request trace carrier the server and
// engine use to attribute wall time to phases (trace.go).
//
// Everything here is stdlib-only and safe for concurrent use. The hot
// path — Counter.Add, Histogram.Observe — is a handful of atomic
// operations with no locks and no allocation, so instrumenting a
// per-request or per-append code path costs nanoseconds; the overhead
// budget of the whole layer is ≤3% on served-query p95 (DESIGN.md §8).
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the fixed bucket count of every Histogram: two
// sub-buckets per power of two (a √2 growth factor), covering the whole
// uint64 range. The relative quantile error is bounded by the bucket
// ratio: at worst ~±21% of the true value, tight enough to gate p95
// regressions while keeping Observe a single array increment.
const HistBuckets = 128

// histBounds[i] is bucket i's inclusive upper edge: 2^((i+1)/2). A
// value v lands in the first bucket whose edge is ≥ v; the final bucket
// is the overflow (+Inf) bucket.
var histBounds = func() [HistBuckets]float64 {
	var b [HistBuckets]float64
	for i := range b {
		b[i] = math.Exp2(float64(i+1) / 2)
	}
	return b
}()

// BucketBound returns bucket i's inclusive upper edge in recorded
// units. The final bucket is unbounded (+Inf); its nominal edge is
// returned for interpolation.
func BucketBound(i int) float64 { return histBounds[i] }

// bucketIndex maps a recorded value to its bucket. Values ≤ 1 land in
// bucket 0.
func bucketIndex(v uint64) int {
	if v <= 1 {
		return 0
	}
	f := float64(v)
	idx := int(math.Ceil(2 * math.Log2(f)))
	idx-- // bounds[i] = 2^((i+1)/2)
	if idx < 0 {
		idx = 0
	}
	if idx >= HistBuckets {
		return HistBuckets - 1
	}
	// Float rounding near an edge can land one bucket off; restore the
	// invariant bounds[idx-1] < v ≤ bounds[idx] with at most one step.
	for idx > 0 && histBounds[idx-1] >= f {
		idx--
	}
	for idx < HistBuckets-1 && histBounds[idx] < f {
		idx++
	}
	return idx
}

// Histogram is a lock-free fixed-bucket log-scale histogram over
// uint64 observations (nanoseconds for latencies, plain counts for
// sizes — the unit is the caller's; the registry applies a scale at
// exposition). Observe is wait-free: one atomic increment per bucket
// plus the running count and sum.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time copy of a histogram's state. The
// copy is not atomic across buckets — concurrent observations may
// straddle it — but every bucket is individually consistent and the
// drift is bounded by the records in flight during the read.
type HistSnapshot struct {
	Counts [HistBuckets]uint64 // per-bucket observation counts
	Count  uint64              // total observations
	Sum    uint64              // sum of observed values
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Quantile extracts the p-quantile (0 ≤ p ≤ 1) from the live
// histogram, in recorded units.
func (h *Histogram) Quantile(p float64) float64 {
	s := h.Snapshot()
	return s.Quantile(p)
}

// Delta returns the windowed snapshot s − prev: the observations
// recorded between the two snapshots. Underflowing fields (prev taken
// from a different histogram, or after a reset) clamp to zero.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range s.Counts {
		if s.Counts[i] > prev.Counts[i] {
			d.Counts[i] = s.Counts[i] - prev.Counts[i]
		}
	}
	if s.Count > prev.Count {
		d.Count = s.Count - prev.Count
	}
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	return d
}

// Quantile extracts the p-quantile (0 ≤ p ≤ 1) from the snapshot, in
// recorded units, by linear interpolation inside the target bucket. An
// empty snapshot returns 0.
func (s HistSnapshot) Quantile(p float64) float64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lower := 0.0
			if i > 0 {
				lower = histBounds[i-1]
			}
			upper := histBounds[i]
			return lower + (upper-lower)*(target-cum)/float64(c)
		}
		cum = next
	}
	return histBounds[HistBuckets-1]
}

// Mean returns the snapshot's mean observation in recorded units (0
// when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
