package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A minimal parser for Prometheus text exposition format 0.0.4 — just
// enough to round-trip what the registry writes. It is the shared
// consumer behind `smartctl -metrics` (pretty-printing), `smartbench
// -scrape` (folding daemon-observed latency into the bench report) and
// the server exposition-validity test, so the project needs no
// external Prometheus dependency.

// Sample is one parsed sample line. For histograms the Name keeps its
// _bucket/_sum/_count suffix and bucket samples carry their "le" label.
type Sample struct {
	Name   string            // full sample name, suffixes included (_bucket, _sum, ...)
	Labels map[string]string // label set, nil when unlabelled
	Value  float64           // parsed sample value
}

// Family is one parsed metric family: its TYPE/HELP metadata and every
// sample attributed to it.
type Family struct {
	Name    string   // family name from the # TYPE line
	Help    string   // # HELP text, possibly empty
	Type    string   // "counter", "gauge" or "histogram"
	Samples []Sample // every sample line of the family, in order
}

// ParsePrometheus parses text exposition format and validates what it
// can: sample lines must parse, every sample must belong to a declared
// family, and histogram families must be internally coherent (bucket
// counts cumulative and non-decreasing, a +Inf bucket present and equal
// to _count, per label set). Families are returned in declaration
// order.
func ParsePrometheus(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var fams []Family
	byName := make(map[string]*Family)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseMeta(line, &fams, byName); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		f := familyFor(s.Name, byName)
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %s has no # TYPE declaration", lineno, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Family, len(fams))
	for i := range fams {
		out[i] = *byName[fams[i].Name]
		if out[i].Type == "histogram" {
			if err := checkHistogram(out[i]); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func parseMeta(line string, fams *[]Family, byName map[string]*Family) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if byName[name] != nil {
			if byName[name].Type != "" {
				return fmt.Errorf("duplicate TYPE for %s", name)
			}
			byName[name].Type = typ
			return nil
		}
		f := &Family{Name: name, Type: typ}
		byName[name] = f
		*fams = append(*fams, Family{Name: name})
	case "HELP":
		name := fields[2]
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		if byName[name] == nil {
			byName[name] = &Family{Name: name, Help: help}
			*fams = append(*fams, Family{Name: name})
		} else {
			byName[name].Help = help
		}
	}
	return nil
}

// familyFor resolves a sample name to its declared family, stripping
// histogram suffixes.
func familyFor(name string, byName map[string]*Family) *Family {
	if f := byName[name]; f != nil {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := byName[base]; f != nil && f.Type == "histogram" {
				return f
			}
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" || !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	// A timestamp may trail the value; take the first field.
	val := strings.Fields(rest)
	if len(val) == 0 {
		return s, fmt.Errorf("missing value in %q", line)
	}
	v, err := parseValue(val[0])
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(name string) bool {
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parseLabels(s string, out map[string]string) error {
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return fmt.Errorf("malformed labels %q", s)
		}
		key := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		out[key] = b.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
	return nil
}

// checkHistogram validates cumulative-bucket coherence per label set.
func checkHistogram(f Family) error {
	type state struct {
		lastLe, lastCum float64
		inf, count      float64
		hasInf, hasCnt  bool
	}
	states := map[string]*state{}
	key := func(labels map[string]string) string {
		kv := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			kv = append(kv, k+"="+v)
		}
		sort.Strings(kv)
		return strings.Join(kv, ",")
	}
	get := func(labels map[string]string) *state {
		k := key(labels)
		st := states[k]
		if st == nil {
			st = &state{lastLe: math.Inf(-1)}
			states[k] = st
		}
		return st
	}
	for _, s := range f.Samples {
		st := get(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, err := parseValue(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, s.Labels["le"])
			}
			if math.IsInf(le, 1) {
				st.inf, st.hasInf = s.Value, true
				continue
			}
			if le <= st.lastLe {
				return fmt.Errorf("%s: le %v out of order", f.Name, le)
			}
			if s.Value < st.lastCum {
				return fmt.Errorf("%s: bucket counts not cumulative at le %v", f.Name, le)
			}
			st.lastLe, st.lastCum = le, s.Value
		case strings.HasSuffix(s.Name, "_count"):
			st.count, st.hasCnt = s.Value, true
		}
	}
	for k, st := range states {
		if !st.hasInf {
			return fmt.Errorf("%s{%s}: missing +Inf bucket", f.Name, k)
		}
		if st.inf < st.lastCum {
			return fmt.Errorf("%s{%s}: +Inf bucket below last cumulative count", f.Name, k)
		}
		if st.hasCnt && st.count != st.inf {
			return fmt.Errorf("%s{%s}: _count %v != +Inf bucket %v", f.Name, k, st.count, st.inf)
		}
	}
	return nil
}

// BucketQuantile extracts the p-quantile from parsed _bucket samples of
// one label set (cumulative counts, ascending le, +Inf included), in
// exposed units — the scrape-side mirror of HistSnapshot.Quantile.
func BucketQuantile(buckets []Sample, p float64) float64 {
	type edge struct{ le, cum float64 }
	edges := make([]edge, 0, len(buckets))
	for _, b := range buckets {
		le, err := parseValue(b.Labels["le"])
		if err != nil {
			continue
		}
		edges = append(edges, edge{le, b.Value})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
	if len(edges) == 0 {
		return 0
	}
	total := edges[len(edges)-1].cum
	if total == 0 {
		return 0
	}
	target := p * total
	if target < 1 {
		target = 1
	}
	prevLe, prevCum := 0.0, 0.0
	for _, e := range edges {
		if e.cum >= target {
			if math.IsInf(e.le, 1) {
				return prevLe
			}
			if e.cum == prevCum {
				return e.le
			}
			return prevLe + (e.le-prevLe)*(target-prevCum)/(e.cum-prevCum)
		}
		prevLe, prevCum = e.le, e.cum
	}
	return prevLe
}

// FindFamily returns the named family from a parse result, or nil.
func FindFamily(fams []Family, name string) *Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}
