package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// QueryTrace accumulates the per-phase timing breakdown of one served
// query: the serving layer records the coarse phases (admission wait →
// decode → cache lookup → execute → merge → encode) and the engine's
// fan-out records one entry per shard it visited or pruned. A trace is
// requested with the X-Smartstore-Trace header (returned inline in the
// response) or implicitly collected when the daemon's -slow-query
// threshold is set (logged when exceeded). The carrier travels by
// context so the engine needs no signature change; a nil *QueryTrace is
// valid everywhere and records nothing.
type QueryTrace struct {
	// Start is stamped by WithTrace; the serving layer measures the
	// request's total wall time against it.
	Start time.Time

	mu     sync.Mutex
	phases []TracePhase
	shards []TraceShard
}

// TracePhase is one named serving phase and its wall time.
type TracePhase struct {
	Name string        // phase name (admission_wait, decode, ...)
	Dur  time.Duration // phase wall time
}

// TraceShard is one shard's contribution to the execute phase.
type TraceShard struct {
	Shard  int           // shard index
	Dur    time.Duration // shard execution wall time
	Pruned bool          // rejected by root MBR/Bloom, not executed
}

// AddPhase appends a phase timing. Safe on a nil trace.
func (t *QueryTrace) AddPhase(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.phases = append(t.phases, TracePhase{Name: name, Dur: d})
	t.mu.Unlock()
}

// AddShard appends one shard's execute timing. Safe on a nil trace and
// called concurrently from the fan-out goroutines.
func (t *QueryTrace) AddShard(shard int, d time.Duration, pruned bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.shards = append(t.shards, TraceShard{Shard: shard, Dur: d, Pruned: pruned})
	t.mu.Unlock()
}

// Phases returns the recorded phases in recording order.
func (t *QueryTrace) Phases() []TracePhase {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TracePhase, len(t.phases))
	copy(out, t.phases)
	return out
}

// Shards returns the recorded per-shard timings (fan-out order is
// nondeterministic).
func (t *QueryTrace) Shards() []TraceShard {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceShard, len(t.shards))
	copy(out, t.shards)
	return out
}

// String renders the breakdown in the compact one-line form the
// -slow-query log uses: "admission_wait=12µs execute=3.4ms
// [shard0=3.1ms shard2=pruned] ...".
func (t *QueryTrace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for i, p := range t.Phases() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", p.Name, p.Dur)
		if p.Name == "execute" {
			if shards := t.Shards(); len(shards) > 0 {
				b.WriteString(" [")
				for j, s := range shards {
					if j > 0 {
						b.WriteByte(' ')
					}
					if s.Pruned {
						fmt.Fprintf(&b, "shard%d=pruned", s.Shard)
					} else {
						fmt.Fprintf(&b, "shard%d=%s", s.Shard, s.Dur)
					}
				}
				b.WriteByte(']')
			}
		}
	}
	return b.String()
}

type traceKey struct{}

// WithTrace returns a context carrying a fresh QueryTrace.
func WithTrace(ctx context.Context) (context.Context, *QueryTrace) {
	t := &QueryTrace{Start: time.Now()}
	return context.WithValue(ctx, traceKey{}, t), t
}

// TraceFrom extracts the context's QueryTrace, or nil when the request
// is untraced.
func TraceFrom(ctx context.Context) *QueryTrace {
	t, _ := ctx.Value(traceKey{}).(*QueryTrace)
	return t
}
