package metadata

import (
	"math"
	"testing"
	"testing/quick"
)

func mkFile(id uint64, size, ctime float64) *File {
	f := &File{ID: id, Path: "/f"}
	f.Attrs[AttrSize] = size
	f.Attrs[AttrCTime] = ctime
	return f
}

func TestAttrString(t *testing.T) {
	if AttrSize.String() != "size" || AttrAccessFreq.String() != "access_freq" {
		t.Fatal("attr names wrong")
	}
	if Attr(99).String() != "attr(99)" {
		t.Fatalf("unknown attr name = %q", Attr(99).String())
	}
}

func TestAllAttrs(t *testing.T) {
	all := AllAttrs()
	if len(all) != int(NumAttrs) {
		t.Fatalf("AllAttrs len = %d, want %d", len(all), NumAttrs)
	}
	for i, a := range all {
		if int(a) != i {
			t.Fatalf("AllAttrs[%d] = %v", i, a)
		}
	}
}

func TestFileVector(t *testing.T) {
	f := mkFile(1, 100, 50)
	v := f.Vector([]Attr{AttrCTime, AttrSize})
	if v[0] != 50 || v[1] != 100 {
		t.Fatalf("Vector = %v, want [50 100]", v)
	}
}

func TestNormalizerUnfittedIdentity(t *testing.T) {
	var n Normalizer
	if n.Fitted() {
		t.Fatal("fresh normalizer reports fitted")
	}
	if n.Value(AttrSize, 123) != 123 {
		t.Fatal("unfitted normalizer should be identity")
	}
}

func TestNormalizerFitEmptyIsIdentity(t *testing.T) {
	var n Normalizer
	n.Fit(nil)
	if n.Fitted() {
		t.Fatal("Fit(nil) should leave normalizer unfitted")
	}
}

func TestNormalizerRange(t *testing.T) {
	files := []*File{mkFile(1, 0, 10), mkFile(2, 100, 20), mkFile(3, 50, 15)}
	var n Normalizer
	n.Fit(files)
	if got := n.Value(AttrSize, 0); got != 0 {
		t.Fatalf("min should map to 0, got %v", got)
	}
	if got := n.Value(AttrSize, 100); got != 1 {
		t.Fatalf("max should map to 1, got %v", got)
	}
	if got := n.Value(AttrSize, 50); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mid should map to 0.5, got %v", got)
	}
	// Clamping beyond the fitted range.
	if n.Value(AttrSize, -10) != 0 || n.Value(AttrSize, 500) != 1 {
		t.Fatal("values outside fit range should clamp")
	}
	lo, hi := n.Bounds(AttrCTime)
	if lo != 10 || hi != 20 {
		t.Fatalf("Bounds = %v/%v, want 10/20", lo, hi)
	}
}

func TestNormalizerDegenerateAttr(t *testing.T) {
	files := []*File{mkFile(1, 7, 1), mkFile(2, 7, 2)}
	var n Normalizer
	n.Fit(files)
	if got := n.Value(AttrSize, 7); got != 0 {
		t.Fatalf("constant attribute should normalize to 0, got %v", got)
	}
}

func TestNormalizerVectorAndPoint(t *testing.T) {
	files := []*File{mkFile(1, 0, 0), mkFile(2, 10, 100)}
	var n Normalizer
	n.Fit(files)
	attrs := []Attr{AttrSize, AttrCTime}
	v := n.Vector(files[1], attrs)
	if v[0] != 1 || v[1] != 1 {
		t.Fatalf("Vector = %v, want [1 1]", v)
	}
	p := n.Point(attrs, []float64{5, 50})
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Fatalf("Point = %v, want [0.5 0.5]", p)
	}
}

func TestPointPanicsOnMismatch(t *testing.T) {
	var n Normalizer
	defer func() {
		if recover() == nil {
			t.Error("Point with mismatched dims did not panic")
		}
	}()
	n.Point([]Attr{AttrSize}, []float64{1, 2})
}

func TestCentroid(t *testing.T) {
	files := []*File{mkFile(1, 0, 0), mkFile(2, 10, 100)}
	var n Normalizer
	n.Fit(files)
	attrs := []Attr{AttrSize, AttrCTime}
	c := Centroid(&n, files, attrs)
	if c[0] != 0.5 || c[1] != 0.5 {
		t.Fatalf("Centroid = %v, want [0.5 0.5]", c)
	}
	if Centroid(&n, nil, attrs) != nil {
		t.Fatal("Centroid of empty set should be nil")
	}
}

func TestSumSquaredError(t *testing.T) {
	files := []*File{mkFile(1, 0, 0), mkFile(2, 10, 0)}
	var n Normalizer
	n.Fit(files)
	attrs := []Attr{AttrSize}
	// Normalized values are 0 and 1; centroid 0.5; SSE = 0.25+0.25.
	if got := SumSquaredError(&n, files, attrs); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("SSE = %v, want 0.5", got)
	}
	if SumSquaredError(&n, nil, attrs) != 0 {
		t.Fatal("SSE of empty set should be 0")
	}
}

func TestSizeBytesPositive(t *testing.T) {
	f := mkFile(1, 1, 1)
	f.Path = "/a/long/path/name.txt"
	if f.SizeBytes() <= len(f.Path) {
		t.Fatal("SizeBytes implausibly small")
	}
}

// Property: normalized values always land in [0,1] once fitted.
func TestPropertyNormalizedInUnitInterval(t *testing.T) {
	f := func(vals []float64, probe float64) bool {
		if len(vals) == 0 {
			return true
		}
		files := make([]*File, len(vals))
		for i, v := range vals {
			files[i] = mkFile(uint64(i), v, 0)
		}
		var n Normalizer
		n.Fit(files)
		got := n.Value(AttrSize, probe)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the centroid minimizes SSE — shifting any coordinate
// increases the sum of squared distances.
func TestPropertyCentroidMinimizesSSE(t *testing.T) {
	f := func(seed int64) bool {
		files := []*File{
			mkFile(1, float64(seed%100), 3),
			mkFile(2, float64((seed+37)%100), 8),
			mkFile(3, float64((seed+74)%100), 1),
		}
		var n Normalizer
		n.Fit(files)
		attrs := []Attr{AttrSize, AttrCTime}
		c := Centroid(&n, files, attrs)
		base := 0.0
		for _, fl := range files {
			v := n.Vector(fl, attrs)
			for i := range c {
				d := v[i] - c[i]
				base += d * d
			}
		}
		shifted := 0.0
		for _, fl := range files {
			v := n.Vector(fl, attrs)
			for i := range c {
				d := v[i] - (c[i] + 0.1)
				shifted += d * d
			}
		}
		return shifted >= base-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
