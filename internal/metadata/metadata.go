// Package metadata defines the file-metadata model of the reproduction:
// D-dimensional attribute vectors combining the physical attributes
// (file size, creation time, last modification time) and behavioural
// attributes (read/write volume, access frequency) the paper groups and
// queries over (§2.3, §3.1.1), plus the normalization used to form
// semantic vectors.
package metadata

import (
	"fmt"
	"math"
)

// Attr identifies one metadata attribute dimension.
type Attr int

// The attribute schema. The paper's examples use creation time, file
// size, last-modification time, and the read/write volumes ("amount of
// read data ranging from 30MB to 50MB"); access frequency is the
// behavioural attribute driving Nexus/FARMER-style correlation.
const (
	AttrSize       Attr = iota // file size in bytes
	AttrCTime                  // creation time, seconds since trace start
	AttrMTime                  // last modification time, seconds since trace start
	AttrATime                  // last access time, seconds since trace start
	AttrReadBytes              // cumulative bytes read
	AttrWriteBytes             // cumulative bytes written
	AttrAccessFreq             // number of accesses observed
	NumAttrs                   // D: the total number of dimensions
)

var attrNames = [NumAttrs]string{
	"size", "ctime", "mtime", "atime", "read_bytes", "write_bytes", "access_freq",
}

// String returns the attribute's short name.
func (a Attr) String() string {
	if a >= 0 && a < NumAttrs {
		return attrNames[a]
	}
	return fmt.Sprintf("attr(%d)", int(a))
}

// ParseAttr resolves an attribute's short name to its Attr — the
// inverse of String, used by wire formats and CLIs.
func ParseAttr(name string) (Attr, error) {
	for a, n := range attrNames {
		if n == name {
			return Attr(a), nil
		}
	}
	return 0, fmt.Errorf("metadata: unknown attribute %q", name)
}

// AllAttrs returns the full D-dimensional attribute subset.
func AllAttrs() []Attr {
	out := make([]Attr, NumAttrs)
	for i := range out {
		out[i] = Attr(i)
	}
	return out
}

// File is one file's metadata record: the unit SmartStore groups,
// indexes and returns from queries.
type File struct {
	ID       uint64
	Path     string
	SubTrace int // TIF sub-trace id (0 for the original trace)
	Attrs    [NumAttrs]float64
}

// Vector extracts the file's values over the attribute subset attrs, in
// order — the raw semantic vector Sa = [S1 … Sd] of §3.1.1.
func (f *File) Vector(attrs []Attr) []float64 {
	v := make([]float64, len(attrs))
	for i, a := range attrs {
		v[i] = f.Attrs[a]
	}
	return v
}

// Normalizer rescales each attribute to [0,1] over an observed corpus so
// Euclidean distances and LSI correlations are not dominated by large-
// magnitude attributes (bytes vs seconds vs counts).
type Normalizer struct {
	Lo, Hi [NumAttrs]float64
	fitted bool
}

// Fit computes per-attribute bounds over files. Fitting an empty corpus
// leaves the normalizer as identity.
func (n *Normalizer) Fit(files []*File) {
	if len(files) == 0 {
		return
	}
	for a := 0; a < int(NumAttrs); a++ {
		n.Lo[a] = math.Inf(1)
		n.Hi[a] = math.Inf(-1)
	}
	for _, f := range files {
		for a := 0; a < int(NumAttrs); a++ {
			v := f.Attrs[a]
			if v < n.Lo[a] {
				n.Lo[a] = v
			}
			if v > n.Hi[a] {
				n.Hi[a] = v
			}
		}
	}
	n.fitted = true
}

// Fitted reports whether Fit has been called on a non-empty corpus.
func (n *Normalizer) Fitted() bool { return n.fitted }

// RestoreNormalizer reconstructs a fitted normalizer from persisted
// bounds (snapshot restore). fitted=false yields the identity
// normalizer regardless of bounds.
func RestoreNormalizer(lo, hi [NumAttrs]float64, fitted bool) *Normalizer {
	return &Normalizer{Lo: lo, Hi: hi, fitted: fitted}
}

// Value normalizes a single attribute value to [0,1] (clamped).
func (n *Normalizer) Value(a Attr, v float64) float64 {
	if !n.fitted {
		return v
	}
	span := n.Hi[a] - n.Lo[a]
	if span <= 0 {
		return 0
	}
	x := (v - n.Lo[a]) / span
	if math.IsInf(span, 1) {
		// Avoid Inf/Inf → NaN on astronomically wide fitted ranges:
		// divide both operands by span separately.
		x = v/span - n.Lo[a]/span
	}
	switch {
	case math.IsNaN(x), x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}

// Vector normalizes a file's values over the attribute subset.
func (n *Normalizer) Vector(f *File, attrs []Attr) []float64 {
	v := make([]float64, len(attrs))
	for i, a := range attrs {
		v[i] = n.Value(a, f.Attrs[a])
	}
	return v
}

// Point normalizes a raw query point given in attribute units.
func (n *Normalizer) Point(attrs []Attr, raw []float64) []float64 {
	if len(attrs) != len(raw) {
		panic(fmt.Sprintf("metadata: point dims %d != attrs %d", len(raw), len(attrs)))
	}
	v := make([]float64, len(raw))
	for i, a := range attrs {
		v[i] = n.Value(a, raw[i])
	}
	return v
}

// Bounds returns the fitted [lo,hi] for attribute a in raw units.
func (n *Normalizer) Bounds(a Attr) (lo, hi float64) { return n.Lo[a], n.Hi[a] }

// Centroid returns the arithmetic mean of the files' normalized vectors
// over attrs — the group centroid Ci of the semantic-correlation measure
// in §1.1. It returns nil for an empty set.
func Centroid(n *Normalizer, files []*File, attrs []Attr) []float64 {
	if len(files) == 0 {
		return nil
	}
	c := make([]float64, len(attrs))
	for _, f := range files {
		v := n.Vector(f, attrs)
		for i := range c {
			c[i] += v[i]
		}
	}
	inv := 1 / float64(len(files))
	for i := range c {
		c[i] *= inv
	}
	return c
}

// SumSquaredError returns Σ_f (f − centroid)² over the files' normalized
// vectors — the per-group term of the semantic correlation objective
// Σᵢ Σ_{fj∈Gi} (fj − Ci)² that §5.5 minimizes to find optimal thresholds.
func SumSquaredError(n *Normalizer, files []*File, attrs []Attr) float64 {
	c := Centroid(n, files, attrs)
	if c == nil {
		return 0
	}
	var sse float64
	for _, f := range files {
		v := n.Vector(f, attrs)
		for i := range c {
			d := v[i] - c[i]
			sse += d * d
		}
	}
	return sse
}

// SizeBytes estimates the in-memory footprint of one metadata record for
// the Fig. 7 space accounting: attributes + id + path bytes + header.
func (f *File) SizeBytes() int {
	return 8*int(NumAttrs) + 8 + len(f.Path) + 32
}
