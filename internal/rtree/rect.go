// Package rtree implements a classical Guttman R-tree over
// D-dimensional rectangles: insertion with quadratic split, deletion
// with condensing, range search, and branch-and-bound k-nearest-
// neighbour search.
//
// It serves two roles in the reproduction: the paper's non-semantic
// "R-tree" baseline system uses it directly as a centralized
// multi-dimensional index (§5.1), and the semantic R-tree (package
// semtree) reuses its Minimum Bounding Rectangle algebra (§2.1).
package rtree

import (
	"fmt"
	"math"
)

// Rect is a D-dimensional axis-aligned rectangle: the Minimum Bounding
// Rectangle of §2.2, "the minimal approximation of the enclosed data set
// ... showing the lower and the upper bounds of each dimension".
type Rect struct {
	Lo, Hi []float64
}

// NewRect builds a rectangle from bounds, normalizing each dimension so
// Lo ≤ Hi. It panics if the slices' lengths differ or are zero.
func NewRect(lo, hi []float64) Rect {
	if len(lo) != len(hi) || len(lo) == 0 {
		panic(fmt.Sprintf("rtree: invalid rect bounds %d/%d", len(lo), len(hi)))
	}
	l := make([]float64, len(lo))
	h := make([]float64, len(hi))
	for i := range lo {
		l[i], h[i] = lo[i], hi[i]
		if l[i] > h[i] {
			l[i], h[i] = h[i], l[i]
		}
	}
	return Rect{Lo: l, Hi: h}
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p []float64) Rect {
	return NewRect(p, p)
}

// Dims returns the dimensionality of r.
func (r Rect) Dims() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{
		Lo: append([]float64(nil), r.Lo...),
		Hi: append([]float64(nil), r.Hi...),
	}
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether p lies within r (inclusive).
func (r Rect) ContainsPoint(p []float64) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s overlap (inclusive of boundaries).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if s.Hi[i] < r.Lo[i] || s.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make([]float64, len(r.Lo))
	hi := make([]float64, len(r.Hi))
	for i := range r.Lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// Expand grows r in place to cover s.
func (r *Rect) Expand(s Rect) {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] {
			r.Lo[i] = s.Lo[i]
		}
		if s.Hi[i] > r.Hi[i] {
			r.Hi[i] = s.Hi[i]
		}
	}
}

// Area returns the D-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of edge lengths of r.
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Enlargement returns how much r's area grows if expanded to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance from point p to r
// (0 when p is inside) — the branch-and-bound lower bound for k-NN.
func (r Rect) MinDist(p []float64) float64 {
	var s float64
	for i := range r.Lo {
		var d float64
		switch {
		case p[i] < r.Lo[i]:
			d = r.Lo[i] - p[i]
		case p[i] > r.Hi[i]:
			d = p[i] - r.Hi[i]
		}
		s += d * d
	}
	return math.Sqrt(s)
}

// Center returns the midpoint of r.
func (r Rect) Center() []float64 {
	c := make([]float64, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Dist returns the Euclidean distance between points a and b.
func Dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
