package rtree

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func pt(xs ...float64) []float64 { return xs }

func TestRectNormalization(t *testing.T) {
	r := NewRect(pt(5, 1), pt(1, 5))
	if r.Lo[0] != 1 || r.Hi[0] != 5 || r.Lo[1] != 1 || r.Hi[1] != 5 {
		t.Fatalf("bounds not normalized: %+v", r)
	}
}

func TestRectPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRect with mismatched dims did not panic")
		}
	}()
	NewRect(pt(1, 2), pt(1))
}

func TestRectContainsIntersects(t *testing.T) {
	outer := NewRect(pt(0, 0), pt(10, 10))
	inner := NewRect(pt(2, 2), pt(5, 5))
	apart := NewRect(pt(20, 20), pt(30, 30))
	touching := NewRect(pt(10, 0), pt(15, 5))

	if !outer.Contains(inner) || inner.Contains(outer) {
		t.Fatal("Contains wrong")
	}
	if !outer.Intersects(inner) || !inner.Intersects(outer) {
		t.Fatal("Intersects wrong for nested")
	}
	if outer.Intersects(apart) {
		t.Fatal("Intersects wrong for disjoint")
	}
	if !outer.Intersects(touching) {
		t.Fatal("boundary touch should intersect")
	}
	if !outer.ContainsPoint(pt(10, 10)) || outer.ContainsPoint(pt(10.1, 0)) {
		t.Fatal("ContainsPoint wrong")
	}
}

func TestRectUnionAreaMargin(t *testing.T) {
	a := NewRect(pt(0, 0), pt(1, 1))
	b := NewRect(pt(2, 2), pt(3, 3))
	u := a.Union(b)
	if u.Lo[0] != 0 || u.Hi[1] != 3 {
		t.Fatalf("union = %+v", u)
	}
	if a.Area() != 1 || u.Area() != 9 {
		t.Fatalf("areas = %v/%v, want 1/9", a.Area(), u.Area())
	}
	if a.Margin() != 2 {
		t.Fatalf("margin = %v, want 2", a.Margin())
	}
	if got := a.Enlargement(b); got != 8 {
		t.Fatalf("enlargement = %v, want 8", got)
	}
}

func TestRectMinDist(t *testing.T) {
	r := NewRect(pt(0, 0), pt(2, 2))
	if d := r.MinDist(pt(1, 1)); d != 0 {
		t.Fatalf("inside MinDist = %v, want 0", d)
	}
	if d := r.MinDist(pt(5, 2)); d != 3 {
		t.Fatalf("MinDist = %v, want 3", d)
	}
	if d := r.MinDist(pt(5, 6)); math.Abs(d-5) > 1e-12 {
		t.Fatalf("corner MinDist = %v, want 5", d)
	}
}

func TestRectCenterDist(t *testing.T) {
	r := NewRect(pt(0, 0), pt(4, 2))
	c := r.Center()
	if c[0] != 2 || c[1] != 1 {
		t.Fatalf("center = %v", c)
	}
	if Dist(pt(0, 0), pt(3, 4)) != 5 {
		t.Fatal("Dist wrong")
	}
}

func TestNewPanics(t *testing.T) {
	cases := []struct{ dims, min, max int }{
		{0, 2, 8}, {2, 1, 8}, {2, 5, 8},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%d) did not panic", c.dims, c.min, c.max)
				}
			}()
			New(c.dims, c.min, c.max)
		}()
	}
}

func TestInsertSearchBasic(t *testing.T) {
	tr := NewDefault(2)
	tr.Insert(1, PointRect(pt(1, 1)))
	tr.Insert(2, PointRect(pt(5, 5)))
	tr.Insert(3, PointRect(pt(9, 9)))

	got := tr.Search(nil, NewRect(pt(0, 0), pt(6, 6)))
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Search = %v, want [1 2]", got)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
}

func TestSearchEmptyTree(t *testing.T) {
	tr := NewDefault(2)
	if got := tr.Search(nil, NewRect(pt(0, 0), pt(1, 1))); got != nil {
		t.Fatalf("Search on empty = %v", got)
	}
	if nn := tr.NearestK(pt(0, 0), 3); nn != nil {
		t.Fatalf("NearestK on empty = %v", nn)
	}
}

func TestGrowthAndHeight(t *testing.T) {
	tr := New(2, 2, 4)
	for i := 0; i < 500; i++ {
		tr.Insert(uint64(i), PointRect(pt(float64(i%25), float64(i/25))))
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, expected deep tree with M=4", tr.Height())
	}
	all := tr.Search(nil, NewRect(pt(-1, -1), pt(100, 100)))
	if len(all) != 500 {
		t.Fatalf("full search found %d, want 500", len(all))
	}
}

func TestNearestKOrdering(t *testing.T) {
	tr := NewDefault(2)
	for i := 0; i < 100; i++ {
		tr.Insert(uint64(i), PointRect(pt(float64(i), 0)))
	}
	nn := tr.NearestK(pt(10.2, 0), 3)
	if len(nn) != 3 {
		t.Fatalf("NearestK returned %d, want 3", len(nn))
	}
	if nn[0].ID != 10 {
		t.Fatalf("nearest = %d, want 10", nn[0].ID)
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].Dist < nn[i-1].Dist {
			t.Fatal("NearestK not in ascending distance order")
		}
	}
}

func TestNearestKMoreThanItems(t *testing.T) {
	tr := NewDefault(2)
	tr.Insert(1, PointRect(pt(0, 0)))
	tr.Insert(2, PointRect(pt(1, 1)))
	nn := tr.NearestK(pt(0, 0), 10)
	if len(nn) != 2 {
		t.Fatalf("NearestK = %d results, want 2", len(nn))
	}
}

func TestNearestKZero(t *testing.T) {
	tr := NewDefault(2)
	tr.Insert(1, PointRect(pt(0, 0)))
	if nn := tr.NearestK(pt(0, 0), 0); nn != nil {
		t.Fatalf("NearestK(0) = %v, want nil", nn)
	}
}

func TestDelete(t *testing.T) {
	tr := New(2, 2, 4)
	for i := 0; i < 100; i++ {
		tr.Insert(uint64(i), PointRect(pt(float64(i%10), float64(i/10))))
	}
	if !tr.Delete(55, PointRect(pt(5, 5))) {
		t.Fatal("Delete existing failed")
	}
	if tr.Len() != 99 {
		t.Fatalf("Len = %d after delete, want 99", tr.Len())
	}
	got := tr.Search(nil, PointRect(pt(5, 5)))
	for _, id := range got {
		if id == 55 {
			t.Fatal("deleted id still found")
		}
	}
	if tr.Delete(55, PointRect(pt(5, 5))) {
		t.Fatal("second delete reported success")
	}
	// All others still reachable after condensation/reinsertion.
	all := tr.Search(nil, NewRect(pt(-1, -1), pt(11, 11)))
	if len(all) != 99 {
		t.Fatalf("full search after delete = %d, want 99", len(all))
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New(2, 2, 4)
	for i := 0; i < 50; i++ {
		tr.Insert(uint64(i), PointRect(pt(float64(i), float64(i))))
	}
	for i := 0; i < 50; i++ {
		if !tr.Delete(uint64(i), PointRect(pt(float64(i), float64(i)))) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if got := tr.Search(nil, NewRect(pt(-100, -100), pt(100, 100))); len(got) != 0 {
		t.Fatalf("Search after delete-all = %v", got)
	}
	// Tree remains usable.
	tr.Insert(999, PointRect(pt(1, 2)))
	if got := tr.SearchPoint(nil, pt(1, 2)); len(got) != 1 || got[0] != 999 {
		t.Fatalf("reuse after delete-all failed: %v", got)
	}
}

func TestBounds(t *testing.T) {
	tr := NewDefault(2)
	if _, ok := tr.Bounds(); ok {
		t.Fatal("Bounds on empty should be !ok")
	}
	tr.Insert(1, PointRect(pt(1, 2)))
	tr.Insert(2, PointRect(pt(5, -3)))
	b, ok := tr.Bounds()
	if !ok || b.Lo[0] != 1 || b.Lo[1] != -3 || b.Hi[0] != 5 || b.Hi[1] != 2 {
		t.Fatalf("Bounds = %+v/%v", b, ok)
	}
}

func TestCountNodesAndSize(t *testing.T) {
	tr := New(2, 2, 4)
	for i := 0; i < 200; i++ {
		tr.Insert(uint64(i), PointRect(pt(float64(i%20), float64(i/20))))
	}
	leaves, internals := tr.CountNodes()
	if leaves == 0 || internals == 0 {
		t.Fatalf("CountNodes = %d/%d", leaves, internals)
	}
	if tr.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
	if tr.LastVisited() < 0 {
		t.Fatal("LastVisited negative")
	}
}

// Property: Search agrees with a linear scan for random points and query
// rectangles.
func TestPropertySearchMatchesLinear(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed*2+1))
		tr := New(3, 2, 6)
		type item struct {
			id uint64
			p  []float64
		}
		var items []item
		for i := 0; i < 200; i++ {
			p := pt(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
			items = append(items, item{uint64(i), p})
			tr.Insert(uint64(i), PointRect(p))
		}
		lo := pt(rng.Float64()*80, rng.Float64()*80, rng.Float64()*80)
		hi := pt(lo[0]+rng.Float64()*30, lo[1]+rng.Float64()*30, lo[2]+rng.Float64()*30)
		q := NewRect(lo, hi)

		got := tr.Search(nil, q)
		want := map[uint64]bool{}
		for _, it := range items {
			if q.ContainsPoint(it.p) {
				want[it.id] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, id := range got {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: NearestK agrees with the exact k smallest distances from a
// linear scan.
func TestPropertyNearestKExact(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		tr := New(2, 2, 5)
		var pts [][]float64
		for i := 0; i < 150; i++ {
			p := pt(rng.Float64()*50, rng.Float64()*50)
			pts = append(pts, p)
			tr.Insert(uint64(i), PointRect(p))
		}
		q := pt(rng.Float64()*50, rng.Float64()*50)
		k := 1 + int(rng.Uint64()%10)

		got := tr.NearestK(q, k)
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = Dist(p, q)
		}
		sort.Float64s(dists)
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Dist-dists[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: insert followed by delete of random subsets preserves exactly
// the surviving ids.
func TestPropertyInsertDelete(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+13))
		tr := New(2, 2, 4)
		pts := make(map[uint64][]float64)
		for i := 0; i < 120; i++ {
			p := pt(float64(rng.Uint64()%30), float64(rng.Uint64()%30))
			pts[uint64(i)] = p
			tr.Insert(uint64(i), PointRect(p))
		}
		for id, p := range pts {
			if rng.Float64() < 0.5 {
				if !tr.Delete(id, PointRect(p)) {
					return false
				}
				delete(pts, id)
			}
		}
		got := tr.Search(nil, NewRect(pt(-1, -1), pt(31, 31)))
		if len(got) != len(pts) {
			return false
		}
		for _, id := range got {
			if _, ok := pts[id]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := NewDefault(3)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i), PointRect(pt(rng.Float64(), rng.Float64(), rng.Float64())))
	}
}

func BenchmarkSearch(b *testing.B) {
	tr := NewDefault(3)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 100000; i++ {
		tr.Insert(uint64(i), PointRect(pt(rng.Float64(), rng.Float64(), rng.Float64())))
	}
	q := NewRect(pt(0.4, 0.4, 0.4), pt(0.6, 0.6, 0.6))
	buf := make([]uint64, 0, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.Search(buf[:0], q)
	}
}

func BenchmarkNearestK(b *testing.B) {
	tr := NewDefault(3)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 100000; i++ {
		tr.Insert(uint64(i), PointRect(pt(rng.Float64(), rng.Float64(), rng.Float64())))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NearestK(pt(0.5, 0.5, 0.5), 8)
	}
}
