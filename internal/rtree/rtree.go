package rtree

import (
	"container/heap"
	"fmt"
	"math"
)

// Default fan-out bounds. Guttman's constraint m ≤ M/2 is preserved by
// the constructor (§4.1: "m and M can be defined as m ≤ M/2").
const (
	DefaultMax = 16
	DefaultMin = 4
)

// Tree is an R-tree over uint64-identified rectangles.
type Tree struct {
	root    *rnode
	min     int // m: min entries per node (except root)
	max     int // M: max entries per node
	dims    int
	size    int
	visited int // nodes touched by the most recent search, for cost models
}

type entry struct {
	rect  Rect
	child *rnode // nil for leaf entries
	id    uint64 // valid for leaf entries
}

type rnode struct {
	leaf    bool
	entries []entry
}

// New returns an empty R-tree for dims-dimensional data with fan-out
// bounds [min, max]. It panics unless 2 ≤ min ≤ max/2 and dims ≥ 1.
func New(dims, min, max int) *Tree {
	if dims < 1 {
		panic(fmt.Sprintf("rtree: invalid dims %d", dims))
	}
	if min < 2 || min > max/2 {
		panic(fmt.Sprintf("rtree: invalid fan-out m=%d M=%d (need 2 ≤ m ≤ M/2)", min, max))
	}
	return &Tree{
		root: &rnode{leaf: true},
		min:  min, max: max, dims: dims,
	}
}

// NewDefault returns an empty tree with DefaultMin/DefaultMax fan-out.
func NewDefault(dims int) *Tree { return New(dims, DefaultMin, DefaultMax) }

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Dims returns the dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Height returns the height of the tree (1 = root is a leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
	}
	return h
}

// LastVisited returns the number of nodes touched by the most recent
// Search/NearestK/SearchPoint call; the baselines use it to model I/O
// cost.
func (t *Tree) LastVisited() int { return t.visited }

// Bounds returns the MBR of the whole tree, or ok=false when empty.
func (t *Tree) Bounds() (Rect, bool) {
	if t.size == 0 {
		return Rect{}, false
	}
	return t.root.mbr(), true
}

// Insert adds an item with the given rectangle.
func (t *Tree) Insert(id uint64, r Rect) {
	if r.Dims() != t.dims {
		panic(fmt.Sprintf("rtree: rect dims %d != tree dims %d", r.Dims(), t.dims))
	}
	e := entry{rect: r.Clone(), id: id}
	split := t.insert(t.root, e, 1)
	if split != nil {
		old := t.root
		t.root = &rnode{
			leaf: false,
			entries: []entry{
				{rect: old.mbr(), child: old},
				{rect: split.mbr(), child: split},
			},
		}
	}
	t.size++
}

func (t *Tree) insert(n *rnode, e entry, level int) *rnode {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.max {
			return t.splitNode(n)
		}
		return nil
	}
	i := t.chooseSubtree(n, e.rect)
	split := t.insert(n.entries[i].child, e, level+1)
	n.entries[i].rect = n.entries[i].child.mbr()
	if split != nil {
		n.entries = append(n.entries, entry{rect: split.mbr(), child: split})
		if len(n.entries) > t.max {
			return t.splitNode(n)
		}
	}
	return nil
}

// chooseSubtree picks the child whose MBR needs least enlargement
// (ties → smaller area), per Guttman's ChooseLeaf.
func (t *Tree) chooseSubtree(n *rnode, r Rect) int {
	best := 0
	bestEnl := n.entries[0].rect.Enlargement(r)
	bestArea := n.entries[0].rect.Area()
	for i := 1; i < len(n.entries); i++ {
		enl := n.entries[i].rect.Enlargement(r)
		area := n.entries[i].rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitNode performs Guttman's quadratic split, moving roughly half of
// n's entries into a returned new sibling.
func (t *Tree) splitNode(n *rnode) *rnode {
	entries := n.entries
	// PickSeeds: the pair wasting the most area together.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			u := entries[i].rect.Union(entries[j].rect)
			waste := u.Area() - entries[i].rect.Area() - entries[j].rect.Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	g1 := []entry{entries[s1]}
	g2 := []entry{entries[s2]}
	r1 := entries[s1].rect.Clone()
	r2 := entries[s2].rect.Clone()

	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}

	for len(rest) > 0 {
		// If one group must take everything to reach the minimum, do so.
		need1 := t.min - len(g1)
		need2 := t.min - len(g2)
		if need1 >= len(rest) {
			g1 = append(g1, rest...)
			for _, e := range rest {
				r1.Expand(e.rect)
			}
			break
		}
		if need2 >= len(rest) {
			g2 = append(g2, rest...)
			for _, e := range rest {
				r2.Expand(e.rect)
			}
			break
		}
		// PickNext: entry with the greatest preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := r1.Enlargement(e.rect)
			d2 := r2.Enlargement(e.rect)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := r1.Enlargement(e.rect)
		d2 := r2.Enlargement(e.rect)
		if d1 < d2 || (d1 == d2 && r1.Area() < r2.Area()) ||
			(d1 == d2 && r1.Area() == r2.Area() && len(g1) < len(g2)) {
			g1 = append(g1, e)
			r1.Expand(e.rect)
		} else {
			g2 = append(g2, e)
			r2.Expand(e.rect)
		}
	}

	n.entries = g1
	return &rnode{leaf: n.leaf, entries: g2}
}

func (n *rnode) mbr() Rect {
	r := n.entries[0].rect.Clone()
	for _, e := range n.entries[1:] {
		r.Expand(e.rect)
	}
	return r
}

// Search appends to dst the ids of all items whose rectangles intersect
// q, returning the result.
func (t *Tree) Search(dst []uint64, q Rect) []uint64 {
	t.visited = 0
	if t.size == 0 {
		return dst
	}
	return t.search(t.root, q, dst)
}

func (t *Tree) search(n *rnode, q Rect, dst []uint64) []uint64 {
	t.visited++
	for _, e := range n.entries {
		if !e.rect.Intersects(q) {
			continue
		}
		if n.leaf {
			dst = append(dst, e.id)
		} else {
			dst = t.search(e.child, q, dst)
		}
	}
	return dst
}

// SearchPoint appends ids of items whose rectangles contain point p.
func (t *Tree) SearchPoint(dst []uint64, p []float64) []uint64 {
	return t.Search(dst, PointRect(p))
}

// Neighbor is one k-NN result: an item id and its distance from the
// query point.
type Neighbor struct {
	ID   uint64
	Dist float64
}

// NearestK returns the k items nearest to point p in ascending distance
// order, using best-first branch-and-bound over node MinDists. The MaxD
// pruning of §3.3.2 corresponds to the bound maintained by the priority
// queue: a node is never expanded once its MinDist exceeds the current
// k-th best distance.
func (t *Tree) NearestK(p []float64, k int) []Neighbor {
	return t.NearestKDims(p, k, nil)
}

// NearestKDims is NearestK with distance restricted to the given
// dimension indices (nil = all dimensions). It lets callers run k-NN
// over a query-attribute subspace of a higher-dimensional index — the
// situation of a multi-dimensional metadata index answering a top-k
// query that names only some attributes.
func (t *Tree) NearestKDims(p []float64, k int, dims []int) []Neighbor {
	t.visited = 0
	if k <= 0 || t.size == 0 {
		return nil
	}
	minDist := func(r Rect, q []float64) float64 {
		if dims == nil {
			return r.MinDist(q)
		}
		var s float64
		for _, i := range dims {
			var d float64
			switch {
			case q[i] < r.Lo[i]:
				d = r.Lo[i] - q[i]
			case q[i] > r.Hi[i]:
				d = q[i] - r.Hi[i]
			}
			s += d * d
		}
		return math.Sqrt(s)
	}
	pq := &minHeap{}
	heap.Init(pq)
	heap.Push(pq, heapItem{node: t.root, dist: minDist(t.root.mbr(), p)})

	var out []Neighbor
	maxD := -1.0 // the paper's MaxD: distance of the current k-th result
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if len(out) == k && it.dist > maxD {
			break
		}
		if it.node == nil {
			// Leaf entry surfaced in distance order: a confirmed result.
			if len(out) < k {
				out = append(out, Neighbor{ID: it.id, Dist: it.dist})
				if len(out) == k {
					maxD = out[k-1].Dist
				}
			}
			continue
		}
		t.visited++
		for _, e := range it.node.entries {
			d := minDist(e.rect, p)
			if len(out) == k && d > maxD {
				continue
			}
			if it.node.leaf {
				heap.Push(pq, heapItem{id: e.id, dist: d})
			} else {
				heap.Push(pq, heapItem{node: e.child, dist: d})
			}
		}
	}
	return out
}

// Delete removes the item with the given id whose stored rectangle
// intersects r, reporting whether it was found. Underfull nodes are
// condensed: their remaining entries are reinserted, per Guttman.
func (t *Tree) Delete(id uint64, r Rect) bool {
	var orphans []entry
	found := t.delete(t.root, id, r, &orphans)
	if !found {
		return false
	}
	t.size--
	// Collapse a non-leaf root with one child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &rnode{leaf: true}
	}
	// Reinsert orphaned leaf entries.
	for _, e := range orphans {
		split := t.insert(t.root, e, 1)
		if split != nil {
			old := t.root
			t.root = &rnode{
				leaf: false,
				entries: []entry{
					{rect: old.mbr(), child: old},
					{rect: split.mbr(), child: split},
				},
			}
		}
	}
	return true
}

func (t *Tree) delete(n *rnode, id uint64, r Rect, orphans *[]entry) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.id == id && e.rect.Intersects(r) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i, e := range n.entries {
		if !e.rect.Intersects(r) {
			continue
		}
		if t.delete(e.child, id, r, orphans) {
			child := e.child
			if len(child.entries) < t.min && n != t.root {
				// Condense: orphan the child's leaf entries for reinsertion.
				collectLeafEntries(child, orphans)
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
			} else if len(child.entries) == 0 {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
			} else {
				n.entries[i].rect = child.mbr()
			}
			return true
		}
	}
	return false
}

func collectLeafEntries(n *rnode, out *[]entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, e := range n.entries {
		collectLeafEntries(e.child, out)
	}
}

// CountNodes returns (leafNodes, indexNodes) — the NO(I) statistic the
// automatic-configuration heuristic of §2.4 compares across trees.
func (t *Tree) CountNodes() (leaves, internals int) {
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if n.leaf {
			leaves++
			return
		}
		internals++
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return leaves, internals
}

// SizeBytes estimates the in-memory footprint for Fig. 7 space
// accounting: 16·dims bytes per stored rectangle plus entry and node
// overhead.
func (t *Tree) SizeBytes() int {
	size := 0
	var walk func(n *rnode)
	walk = func(n *rnode) {
		size += 24 // node header
		for _, e := range n.entries {
			size += 16*t.dims + 16 // rect bounds + id/child pointer
			if e.child != nil {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return size
}

// heapItem is either a node (child != nil) or a confirmed leaf entry.
type heapItem struct {
	node *rnode
	id   uint64
	dist float64
}

type minHeap []heapItem

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
