package cluster

import (
	"testing"

	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/stats"
	"repro/internal/trace"
)

func deploy(t testing.TB, nFiles, nUnits int, seed uint64, cfg Config) (*Cluster, *trace.Set) {
	t.Helper()
	set := trace.MSN().Generate(nFiles, seed)
	attrs := trace.DefaultQueryAttrs()
	units := semtree.PlaceSemantic(set.Files, nUnits, set.Norm, attrs)
	tree := semtree.Build(units, set.Norm, semtree.Config{Attrs: attrs})
	return New(tree, cfg), set
}

func TestDeploymentMapping(t *testing.T) {
	c, _ := deploy(t, 600, 12, 1, Config{Seed: 1})
	// Every leaf has its own server; client is distinct.
	seen := map[int]bool{}
	for _, l := range c.Tree.Leaves() {
		n := c.NodeOf(l)
		if n == nil {
			t.Fatal("leaf without server")
		}
		if n.ID() == 0 {
			t.Fatal("leaf mapped to client node")
		}
		if seen[n.ID()] {
			t.Fatalf("server %d hosts two units", n.ID())
		}
		seen[n.ID()] = true
	}
	// First-level index units are hosted by one of their own child
	// storage units (§4.2: "randomly mapped to one of its child nodes");
	// higher levels may land on any remaining server.
	for _, iu := range c.Tree.IndexUnits() {
		host := c.HostOf(iu)
		if host == nil {
			t.Fatalf("index unit %d unhosted", iu.ID)
		}
		if iu.Level != 1 {
			continue
		}
		var leaves []*semtree.Node
		leaves = iu.Leaves(leaves)
		ok := false
		for _, l := range leaves {
			if c.NodeOf(l) == host {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("first-level index unit %d hosted outside its children (§4.2 violated)", iu.ID)
		}
	}
}

func TestIndexUnitsMappedToDistinctServers(t *testing.T) {
	c, _ := deploy(t, 800, 16, 3, Config{Seed: 3})
	storage, index := c.Tree.CountNodes()
	if index >= storage {
		t.Skipf("more index units (%d) than storage units (%d)", index, storage)
	}
	seen := map[int]bool{}
	for _, iu := range c.Tree.IndexUnits() {
		id := c.HostOf(iu).ID()
		if seen[id] {
			t.Fatalf("two index units share server %d despite spare capacity", id)
		}
		seen[id] = true
	}
}

func TestRootReplicasOnePerGroup(t *testing.T) {
	c, _ := deploy(t, 600, 12, 5, Config{Seed: 5})
	groups := c.Tree.FirstLevelIndexUnits()
	if len(c.RootReplicas()) != len(groups) {
		t.Fatalf("root replicas = %d, want one per group (%d)", len(c.RootReplicas()), len(groups))
	}
}

func TestRangeOnlineExactOnSnapshot(t *testing.T) {
	c, set := deploy(t, 800, 10, 7, Config{Seed: 7})
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 9)
	for i := 0; i < 25; i++ {
		q := gen.Range(0.1)
		got, res := c.RangeOnline(q)
		want := query.RangeTruth(set.Files, q)
		if r := stats.Recall(want, got); r != 1 {
			t.Fatalf("online range recall = %v, want 1 on clean snapshot", r)
		}
		if res.Latency <= 0 {
			t.Fatal("latency not positive")
		}
		if res.Messages < int64(len(c.Tree.FirstLevelIndexUnits())) {
			t.Fatalf("online messages = %d, expected at least one per group", res.Messages)
		}
	}
}

func TestRangeOfflineFewerMessages(t *testing.T) {
	c, set := deploy(t, 1500, 15, 11, Config{Seed: 11})
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 13)
	var onMsgs, offMsgs int64
	var onLat, offLat float64
	for i := 0; i < 30; i++ {
		q := gen.Range(0.05)
		_, on := c.RangeOnline(q)
		_, off := c.RangeOffline(q)
		onMsgs += on.Messages
		offMsgs += off.Messages
		onLat += float64(on.Latency)
		offLat += float64(off.Latency)
	}
	if offMsgs >= onMsgs {
		t.Fatalf("off-line messages %d not below on-line %d (Fig. 13b)", offMsgs, onMsgs)
	}
	if offLat >= onLat {
		t.Fatalf("off-line latency %v not below on-line %v (Fig. 13a)", offLat, onLat)
	}
}

func TestRangeOfflineRecallHigh(t *testing.T) {
	c, set := deploy(t, 1500, 15, 17, Config{Seed: 17})
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 19)
	var rec stats.Summary
	for i := 0; i < 50; i++ {
		q := gen.Range(0.04)
		got, _ := c.RangeOffline(q)
		want := query.RangeTruth(set.Files, q)
		if len(want) == 0 {
			continue
		}
		rec.Add(stats.Recall(want, got))
	}
	if rec.N() == 0 {
		t.Skip("no non-empty queries")
	}
	if rec.Mean() < 0.7 {
		t.Fatalf("off-line Zipf range recall = %v, want ≥ 0.7 (paper: 87–91%%)", rec.Mean())
	}
}

func TestTopKOfflineReturnsK(t *testing.T) {
	c, set := deploy(t, 800, 10, 23, Config{Seed: 23})
	gen := trace.NewQueryGen(set, stats.Gauss, nil, 29)
	for i := 0; i < 20; i++ {
		q := gen.TopK(8)
		got, res := c.TopKOffline(q)
		if len(got) != 8 {
			t.Fatalf("topk returned %d ids, want 8", len(got))
		}
		if res.Latency <= 0 {
			t.Fatal("latency not positive")
		}
	}
}

func TestTopKOnlineRecallExactOnSnapshot(t *testing.T) {
	c, set := deploy(t, 600, 8, 31, Config{Seed: 31})
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 37)
	for i := 0; i < 15; i++ {
		q := gen.TopK(8)
		got, _ := c.TopKOnline(q)
		want := query.TopKTruth(set.Files, set.Norm, q)
		// Compare achieved k-th distance: online search is exhaustive so
		// the distance profile must match the truth.
		byID := map[uint64]*metadata.File{}
		for _, f := range set.Files {
			byID[f.ID] = f
		}
		var gotWorst, wantWorst float64
		for _, id := range got {
			if d := q.Dist(set.Norm, byID[id]); d > gotWorst {
				gotWorst = d
			}
		}
		for _, id := range want {
			if d := q.Dist(set.Norm, byID[id]); d > wantWorst {
				wantWorst = d
			}
		}
		if gotWorst > wantWorst+1e-9 {
			t.Fatalf("online topk k-th distance %v worse than truth %v", gotWorst, wantWorst)
		}
	}
}

func TestPointQueryHitRate(t *testing.T) {
	c, set := deploy(t, 600, 10, 41, Config{Seed: 41})
	gen := trace.NewQueryGen(set, stats.Uniform, nil, 43)
	hits := 0
	const n = 200
	for i := 0; i < n; i++ {
		p := gen.Point(1.0) // always existing files
		got, _ := c.Point(p)
		want := query.PointTruth(set.Files, p)
		if stats.Recall(want, got) == 1 {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.88 {
		t.Fatalf("point hit rate = %v, want ≥ 0.88 (Fig. 9)", frac)
	}
}

func TestStalenessWithoutVersioning(t *testing.T) {
	cfg := Config{Seed: 47, Versioning: false, LazyUpdateThreshold: 0.5}
	c, set := deploy(t, 800, 10, 47, cfg)
	// Insert new files that would match a broad query.
	var inserted []uint64
	for i := 0; i < 30; i++ {
		f := &metadata.File{ID: uint64(900000 + i), Path: "/new/f.bin"}
		f.Attrs = set.Files[i].Attrs // clone an existing profile
		c.InsertFile(f)
		inserted = append(inserted, f.ID)
	}
	// A full-space online query must miss the unpropagated inserts.
	q := query.NewRange(
		trace.DefaultQueryAttrs(),
		[]float64{-1e18, -1e18, -1e18},
		[]float64{1e18, 1e18, 1e18},
	)
	got, _ := c.RangeOnline(q)
	gotSet := map[uint64]bool{}
	for _, id := range got {
		gotSet[id] = true
	}
	for _, id := range inserted {
		if gotSet[id] {
			t.Fatalf("unpropagated insert %d visible without versioning", id)
		}
	}
	// After propagation they appear.
	c.PropagateAll()
	got, _ = c.RangeOnline(q)
	gotSet = map[uint64]bool{}
	for _, id := range got {
		gotSet[id] = true
	}
	for _, id := range inserted {
		if !gotSet[id] {
			t.Fatalf("insert %d invisible after propagation", id)
		}
	}
}

func TestVersioningRecoversRecentInserts(t *testing.T) {
	cfg := Config{Seed: 53, Versioning: true, VersionRatio: 2, LazyUpdateThreshold: 0.5}
	c, set := deploy(t, 800, 10, 53, cfg)
	var inserted []uint64
	for i := 0; i < 30; i++ {
		f := &metadata.File{ID: uint64(900000 + i), Path: "/new/f.bin"}
		f.Attrs = set.Files[i].Attrs
		c.InsertFile(f)
		inserted = append(inserted, f.ID)
	}
	q := query.NewRange(
		trace.DefaultQueryAttrs(),
		[]float64{-1e18, -1e18, -1e18},
		[]float64{1e18, 1e18, 1e18},
	)
	got, res := c.RangeOnline(q)
	gotSet := map[uint64]bool{}
	for _, id := range got {
		gotSet[id] = true
	}
	for _, id := range inserted {
		if !gotSet[id] {
			t.Fatalf("versioning failed to surface insert %d", id)
		}
	}
	if res.VersionChecked == 0 {
		t.Fatal("no version entries examined")
	}
	if res.VersionLatency <= 0 {
		t.Fatal("version latency not accounted")
	}
}

func TestLazyUpdateTriggersPropagation(t *testing.T) {
	cfg := Config{Seed: 59, Versioning: true, LazyUpdateThreshold: 0.02}
	c, set := deploy(t, 500, 5, 59, cfg)
	before := c.ReplicaMulticasts
	for i := 0; i < 100; i++ {
		f := &metadata.File{ID: uint64(800000 + i), Path: "/bulk/f.bin"}
		f.Attrs = set.Files[i%len(set.Files)].Attrs
		c.InsertFile(f)
	}
	if c.ReplicaMulticasts == before {
		t.Fatal("2% threshold never triggered replica multicast over 100 inserts")
	}
}

func TestDeleteAndModifyFile(t *testing.T) {
	cfg := Config{Seed: 61, Versioning: true, LazyUpdateThreshold: 0.9}
	c, set := deploy(t, 400, 8, 61, cfg)
	target := set.Files[17]

	if _, ok := c.DeleteFile(target.ID); !ok {
		t.Fatal("DeleteFile failed")
	}
	if _, ok := c.DeleteFile(target.ID); ok {
		t.Fatal("double delete succeeded")
	}
	got, _ := c.Point(query.Point{Filename: target.Path})
	for _, id := range got {
		if id == target.ID {
			t.Fatal("deleted file still returned")
		}
	}

	mod := *set.Files[18]
	mod.Attrs[metadata.AttrSize] = 42
	if _, ok := c.ModifyFile(&mod); !ok {
		t.Fatal("ModifyFile failed")
	}
	if _, ok := c.ModifyFile(&metadata.File{ID: 12345678}); ok {
		t.Fatal("modify of missing file succeeded")
	}
}

func TestHopsHistogramMostlyZero(t *testing.T) {
	c, set := deploy(t, 2000, 20, 67, Config{Seed: 67})
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 71)
	h := stats.NewHistogram(8)
	for i := 0; i < 100; i++ {
		q := gen.Range(0.03)
		_, res := c.RangeOffline(q)
		h.Add(res.Hops)
	}
	if h.Fraction(0) < 0.8 {
		t.Fatalf("0-hop fraction = %v, want ≥ 0.8 for off-line routing (Fig. 8)", h.Fraction(0))
	}
}

func TestIndexSizeBytes(t *testing.T) {
	c, _ := deploy(t, 500, 10, 73, Config{Seed: 73})
	if c.IndexSizeBytes() <= 0 {
		t.Fatal("IndexSizeBytes must be positive")
	}
}

func TestInsertUnitIntoCluster(t *testing.T) {
	c, _ := deploy(t, 500, 10, 79, Config{Seed: 79})
	extra := trace.MSN().Generate(50, 80)
	leaf := c.InsertUnit(semtree.NewStorageUnit(500, extra.Files))
	if leaf == nil || c.NodeOf(leaf) == nil {
		t.Fatal("inserted unit not mapped")
	}
	if err := c.Tree.Validate(); err != nil {
		t.Fatalf("tree invalid after unit insert: %v", err)
	}
}
