package cluster

import (
	"repro/internal/metadata"
	"repro/internal/semtree"
	"repro/internal/simnet"
	"repro/internal/version"
)

// InsertFile routes a new file's metadata into the cluster (§3.2):
// the semantic tree places it in the most-correlated storage unit, the
// group's version chain records the change, and — when the group's
// accumulated changes exceed the lazy-update threshold — the index unit
// multicasts fresh replicas to all storage units (§3.4).
//
// Until propagation, the insert is invisible to queries against the
// replicated snapshot unless versioning is enabled, which is exactly the
// staleness/recall trade-off Tables 5–6 measure.
func (c *Cluster) InsertFile(f *metadata.File) Result {
	var res Result
	if c.byID != nil {
		c.byID[f.ID] = f
		if f.ID > c.maxID {
			c.maxID = f.ID
		}
	}
	leaf := c.Tree.InsertFile(f)
	g := c.Tree.GroupOf(leaf)
	c.ensureGroup(g)
	c.pending[g][f.ID] = f
	c.chains[g].Record(version.Change{Kind: version.Insert, File: f})

	res.Latency = c.insertLatency(leaf)
	res.Messages = 2 // client → unit, unit ack

	if c.shouldPropagate(g) {
		res.Messages += c.Propagate(g)
	}
	return res
}

// ModifyFile updates an existing file's attributes in place and records
// the modification in the owning group's version chain.
// The id index needs no maintenance here: the stored *File is mutated
// in place, so its pointer stays valid.
func (c *Cluster) ModifyFile(f *metadata.File) (Result, bool) {
	var res Result
	leaf, existing, ok := c.Tree.ModifyFile(f)
	if !ok {
		return res, false
	}
	g := c.Tree.GroupOf(leaf)
	c.ensureGroup(g)
	c.pending[g][f.ID] = existing
	c.chains[g].Record(version.Change{Kind: version.Modify, File: existing})
	res.Latency = c.insertLatency(leaf)
	res.Messages = 2
	if c.shouldPropagate(g) {
		res.Messages += c.Propagate(g)
	}
	return res, true
}

// DeleteFile removes a file from the cluster, recording the deletion.
func (c *Cluster) DeleteFile(id uint64) (Result, bool) {
	var res Result
	for _, leaf := range c.Tree.Leaves() {
		var target *metadata.File
		for _, f := range leaf.Unit.Files {
			if f.ID == id {
				target = f
				break
			}
		}
		if target == nil {
			continue
		}
		if !leaf.Unit.RemoveFile(id) {
			return res, false
		}
		if c.byID != nil {
			delete(c.byID, id)
			// Deleting the maximum is the one case that needs a
			// rescan; any other delete leaves the max untouched.
			if id == c.maxID {
				c.maxID = 0
				for fid := range c.byID {
					if fid > c.maxID {
						c.maxID = fid
					}
				}
			}
		}
		g := c.Tree.GroupOf(leaf)
		c.ensureGroup(g)
		delete(c.pending[g], id)
		c.deleted[g][id] = true
		c.chains[g].Record(version.Change{Kind: version.Delete, File: target})
		res.Latency = c.insertLatency(leaf)
		res.Messages = 2
		if c.shouldPropagate(g) {
			res.Messages += c.Propagate(g)
		}
		return res, true
	}
	return res, false
}

// insertLatency models one metadata update round trip: client → unit,
// local index update, ack.
func (c *Cluster) insertLatency(leaf *semtree.Node) simnet.Time {
	node := c.unitNode[leaf]
	c.Sim.ResetCounters()
	return c.Sim.Latency(func(done func()) {
		c.client.Send(node, queryMsgBytes, func(at *simnet.Node) {
			at.Work(c.Cfg.Cost.ProbeCost(1)+c.Cfg.Cost.LSIFold, func() {
				at.Send(c.client, resultMsgBase, func(*simnet.Node) { done() })
			})
		})
	})
}

// shouldPropagate applies the lazy-update rule of §3.4: propagate when
// the group's unpropagated changes exceed the threshold fraction of its
// file population.
func (c *Cluster) shouldPropagate(g *semtree.Node) bool {
	size := c.GroupSize(g)
	if size == 0 {
		return true
	}
	changes := c.PendingCount(g)
	return float64(changes) >= c.Cfg.LazyUpdateThreshold*float64(size)
}

// Propagate applies a group's accumulated changes to the snapshot and
// multicasts fresh replicas to every storage unit (§4.4's version
// removal: apply locally, then multicast to remote replica holders). It
// returns the number of messages sent.
func (c *Cluster) Propagate(g *semtree.Node) int64 {
	c.ensureGroup(g)
	changes := c.chains[g].Compact()
	c.pending[g] = make(map[uint64]*metadata.File)
	c.deleted[g] = make(map[uint64]bool)
	c.ReplicaMulticasts++

	// Replica multicast: the group's host sends its refreshed vector +
	// MBR (and the change log) to every other storage unit.
	host := c.groupHost(g)
	var others []*simnet.Node
	for _, l := range c.Tree.Leaves() {
		if n := c.unitNode[l]; n != host {
			others = append(others, n)
		}
	}
	c.Sim.ResetCounters()
	size := replicaPerSize + 8*len(changes)
	host.Multicast(others, size, func(*simnet.Node) {})
	c.Sim.Run()
	return c.Sim.Messages()
}

// PropagateAll flushes every group (used between experiment phases to
// start from a consistent snapshot).
func (c *Cluster) PropagateAll() {
	for _, g := range c.Tree.FirstLevelIndexUnits() {
		c.Propagate(g)
	}
}

// ensureGroup lazily initializes version state for groups created by
// splits after deployment.
func (c *Cluster) ensureGroup(g *semtree.Node) {
	if _, ok := c.chains[g]; !ok {
		c.chains[g] = version.NewChain(c.Cfg.VersionRatio)
		c.pending[g] = make(map[uint64]*metadata.File)
		c.deleted[g] = make(map[uint64]bool)
	}
}

// InsertUnit adds a whole storage unit to the deployment (§3.2.1): the
// tree locates the most-correlated group, simulated servers grow by one,
// and the unit's node joins the mapping.
func (c *Cluster) InsertUnit(u *semtree.StorageUnit) *semtree.Node {
	// Keep the incrementally maintained id index covering the unit's
	// files — they bypass InsertFile.
	if c.byID != nil {
		for _, f := range u.Files {
			c.byID[f.ID] = f
			if f.ID > c.maxID {
				c.maxID = f.ID
			}
		}
	}
	leaf := c.Tree.InsertUnit(u)
	// The simulator's node set is fixed; map the new unit onto a fresh
	// logical server modelled by reusing the least-loaded existing one.
	// (The paper inserts units on new physical servers; for accounting
	// purposes only message counts matter here.)
	c.unitNode[leaf] = c.Sim.Node(1 + (len(c.unitNode) % (len(c.Sim.Nodes()) - 1)))
	c.ensureGroup(c.Tree.GroupOf(leaf))
	c.mapRootReplicas()
	return leaf
}
