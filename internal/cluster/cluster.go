// Package cluster deploys a semantic R-tree across a simulated storage
// cluster, implementing the distributed aspects of SmartStore: mapping
// index units onto storage units (§4.2), multi-mapping the root for
// reliability (§4.3), the on-line multicast and off-line pre-processing
// query paths (§3.3–3.4), and consistency via versioning with lazy
// replica updates (§4.4).
//
// All latencies and message counts are measured in simnet virtual time,
// reproducing the metrics of Table 4 and Figs. 8, 9, 13, 14.
package cluster

import (
	"math/rand/v2"

	"repro/internal/metadata"
	"repro/internal/semtree"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/version"
)

// Config parameterizes a deployment.
type Config struct {
	// Versioning enables the §4.4 consistency mechanism; without it,
	// queries see only the last-propagated snapshot and lose recall as
	// updates accumulate (Tables 5–6).
	Versioning bool
	// VersionRatio is the file modification-to-version ratio (§5.6);
	// 1 = comprehensive versioning. Zero selects 4.
	VersionRatio int
	// LazyUpdateThreshold is the fraction of a group's files that may
	// change before the index unit multicasts fresh replicas (§3.4,
	// §5.1 sets 5%). Zero selects 0.05.
	LazyUpdateThreshold float64
	// Cost is the virtual cost model. Zero value selects the default.
	Cost simnet.CostModel
	// Seed drives home-unit selection and index-unit mapping.
	Seed uint64
	// VirtualScale maps the in-memory sample population onto the full
	// TIF-scaled trace population: every record-count entering the cost
	// model is multiplied by it, so virtual latencies reflect e.g. the
	// 150M-file MSN×120 population while the simulation holds a tractable
	// sample (DESIGN.md §4). Zero selects 1 (no scaling).
	VirtualScale float64
}

func (c Config) withDefaults() Config {
	if c.VersionRatio == 0 {
		c.VersionRatio = 4
	}
	if c.LazyUpdateThreshold == 0 {
		c.LazyUpdateThreshold = 0.05
	}
	if c.Cost == (simnet.CostModel{}) {
		c.Cost = simnet.DefaultCostModel()
	}
	if c.VirtualScale == 0 {
		c.VirtualScale = 1
	}
	return c
}

// Cluster is a deployed SmartStore instance.
type Cluster struct {
	Tree *semtree.Tree
	Sim  *simnet.Sim
	Cfg  Config

	client   *simnet.Node
	unitNode map[*semtree.Node]*simnet.Node // leaf → its own server
	hostOf   map[*semtree.Node]*simnet.Node // index unit → hosting server
	rootRe   []*simnet.Node                 // servers holding root replicas

	// Versioning state, per first-level group.
	chains  map[*semtree.Node]*version.Chain
	pending map[*semtree.Node]map[uint64]*metadata.File // unpropagated inserts
	deleted map[*semtree.Node]map[uint64]bool           // unpropagated deletes

	// ReplicaMulticasts counts lazy-update propagation rounds.
	ReplicaMulticasts int

	// byID caches the id → file map used by top-k reranking and id
	// lookups; mutations maintain it incrementally once built. maxID
	// tracks the largest stored id alongside it, so MaxFileID is O(1)
	// instead of a full scan; it is only meaningful once byID exists.
	byID  map[uint64]*metadata.File
	maxID uint64

	rng *rand.Rand
}

// fileByID returns the cached id → file index, rebuilding it after
// updates.
func (c *Cluster) fileByID() map[uint64]*metadata.File {
	if c.byID == nil {
		files := c.Tree.AllFiles()
		c.byID = make(map[uint64]*metadata.File, len(files))
		c.maxID = 0
		for _, f := range files {
			c.byID[f.ID] = f
			if f.ID > c.maxID {
				c.maxID = f.ID
			}
		}
	}
	return c.byID
}

// MaxFileID returns the largest stored file id (0 when empty) from the
// incrementally maintained id index.
func (c *Cluster) MaxFileID() uint64 {
	c.fileByID()
	return c.maxID
}

// HasFile reports whether a file with the given id is currently
// stored, using the cached id index.
func (c *Cluster) HasFile(id uint64) bool {
	_, ok := c.fileByID()[id]
	return ok
}

// FileByID returns the stored file with the given id, using the cached
// id index. Mutations keep the index current incrementally, so lookups
// stay O(1) across insert/delete churn.
func (c *Cluster) FileByID(id uint64) (*metadata.File, bool) {
	f, ok := c.fileByID()[id]
	return f, ok
}

// New deploys tree over a fresh simulated cluster: one server per
// storage unit plus a client node, index units mapped bottom-up onto
// distinct servers, root replicated into every first-level group.
func New(tree *semtree.Tree, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	leaves := tree.Leaves()
	sim := simnet.New(len(leaves)+1, cfg.Cost)

	c := &Cluster{
		Tree:     tree,
		Sim:      sim,
		Cfg:      cfg,
		client:   sim.Node(0),
		unitNode: make(map[*semtree.Node]*simnet.Node, len(leaves)),
		hostOf:   make(map[*semtree.Node]*simnet.Node),
		chains:   make(map[*semtree.Node]*version.Chain),
		pending:  make(map[*semtree.Node]map[uint64]*metadata.File),
		deleted:  make(map[*semtree.Node]map[uint64]bool),
		rng:      stats.NewRNG(cfg.Seed),
	}
	for i, l := range leaves {
		c.unitNode[l] = sim.Node(i + 1)
	}
	c.mapIndexUnits()
	c.mapRootReplicas()
	for _, g := range tree.FirstLevelIndexUnits() {
		c.chains[g] = version.NewChain(cfg.VersionRatio)
		c.pending[g] = make(map[uint64]*metadata.File)
		c.deleted[g] = make(map[uint64]bool)
	}
	return c
}

// mapIndexUnits applies the bottom-up random mapping of §4.2: each
// first-level index unit is mapped to a random unlabeled storage unit
// among its children ("randomly mapped to one of its child nodes"); each
// mapped server is labeled; higher-level index units are then "mapped to
// the remaining storage units" — any unlabeled server cluster-wide —
// level by level up to the root. Only when no unlabeled server remains
// does an index unit double up on a random descendant.
func (c *Cluster) mapIndexUnits() {
	labeled := map[*simnet.Node]bool{}
	pick := func(candidates []*simnet.Node) *simnet.Node {
		if len(candidates) == 0 {
			return nil
		}
		n := candidates[c.rng.IntN(len(candidates))]
		labeled[n] = true
		return n
	}
	idx := c.Tree.IndexUnits() // level-ascending order
	for _, iu := range idx {
		var leaves []*semtree.Node
		leaves = iu.Leaves(leaves)
		var candidates []*simnet.Node
		if iu.Level == 1 {
			// First level: choose among the unit's own children.
			for _, l := range leaves {
				if n := c.unitNode[l]; !labeled[n] {
					candidates = append(candidates, n)
				}
			}
		} else {
			// Higher levels: choose among all remaining unlabeled units.
			for _, l := range c.Tree.Leaves() {
				if n := c.unitNode[l]; !labeled[n] {
					candidates = append(candidates, n)
				}
			}
		}
		host := pick(candidates)
		if host == nil {
			// Every server labeled: double up on a random descendant.
			host = c.unitNode[leaves[c.rng.IntN(len(leaves))]]
		}
		c.hostOf[iu] = host
	}
	if c.Tree.Root.IsLeaf() {
		c.hostOf[c.Tree.Root] = c.unitNode[c.Tree.Root]
	}
}

// mapRootReplicas places one root replica in every first-level group
// (§4.3: "the root is mapped to a storage unit in each group ... so
// that the root can be found within each of the subtrees").
func (c *Cluster) mapRootReplicas() {
	c.rootRe = c.rootRe[:0]
	for _, g := range c.Tree.FirstLevelIndexUnits() {
		var leaves []*semtree.Node
		leaves = g.Leaves(leaves)
		c.rootRe = append(c.rootRe, c.unitNode[leaves[c.rng.IntN(len(leaves))]])
	}
}

// HomeUnit draws a random storage-unit leaf — the paper's "a user sends
// a query randomly to a storage unit" (§2.2).
func (c *Cluster) HomeUnit() *semtree.Node {
	leaves := c.Tree.Leaves()
	return leaves[c.rng.IntN(len(leaves))]
}

// NodeOf returns the simulated server hosting a leaf.
func (c *Cluster) NodeOf(leaf *semtree.Node) *simnet.Node { return c.unitNode[leaf] }

// HostOf returns the simulated server hosting an index unit.
func (c *Cluster) HostOf(iu *semtree.Node) *simnet.Node { return c.hostOf[iu] }

// RootReplicas returns the servers holding root replicas.
func (c *Cluster) RootReplicas() []*simnet.Node { return c.rootRe }

// Result aggregates the accounting of one operation.
type Result struct {
	Latency        simnet.Time
	Messages       int64
	Hops           int // routing distance in groups beyond the first (Fig. 8)
	UnitsSearched  int
	RecordsScanned int
	VersionChecked int // version-chain entries examined (Fig. 14b)
	VersionLatency simnet.Time
}

// GroupSize returns the number of files currently under group g.
func (c *Cluster) GroupSize(g *semtree.Node) int {
	var leaves []*semtree.Node
	leaves = g.Leaves(leaves)
	n := 0
	for _, l := range leaves {
		n += l.Unit.Len()
	}
	return n
}

// Chains exposes the per-group version chains (benches measure their
// space, Fig. 14a).
func (c *Cluster) Chains() map[*semtree.Node]*version.Chain { return c.chains }

// PendingCount returns the number of unpropagated changes in group g.
func (c *Cluster) PendingCount(g *semtree.Node) int {
	return len(c.pending[g]) + len(c.deleted[g])
}

// IndexSizeBytes returns the per-node average index footprint: the
// decentralized tree plus replica vectors and version chains, divided
// by the number of servers (Fig. 7 reports per-node space overhead).
func (c *Cluster) IndexSizeBytes() int {
	total := c.Tree.SizeBytes()
	for _, ch := range c.chains {
		total += ch.SizeBytes()
	}
	// Off-line replicas: every server stores every first-level group's
	// semantic vector + MBR (§3.4).
	groups := len(c.Tree.FirstLevelIndexUnits())
	perReplica := 8*len(c.Tree.Attrs) + 16*int(metadata.NumAttrs)
	total += groups * perReplica * len(c.Tree.Leaves())
	return total / len(c.Tree.Leaves())
}

func (c *Cluster) groupHost(g *semtree.Node) *simnet.Node {
	if h, ok := c.hostOf[g]; ok {
		return h
	}
	// Single-leaf tree: the group is the root leaf.
	return c.unitNode[g]
}

func validateGroup(g *semtree.Node) {
	if g == nil {
		panic("cluster: nil group")
	}
}
