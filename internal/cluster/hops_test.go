package cluster

import (
	"testing"

	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/trace"
)

func TestContributingHops(t *testing.T) {
	g1 := &semtree.Node{ID: 1}
	g2 := &semtree.Node{ID: 2}
	g3 := &semtree.Node{ID: 3}
	cases := []struct {
		name    string
		byGroup map[*semtree.Node][]uint64
		final   []uint64
		want    int
	}{
		{
			name:    "single contributing group",
			byGroup: map[*semtree.Node][]uint64{g1: {1, 2}, g2: {9}},
			final:   []uint64{1, 2},
			want:    0,
		},
		{
			name:    "two contributing groups",
			byGroup: map[*semtree.Node][]uint64{g1: {1}, g2: {2}},
			final:   []uint64{1, 2},
			want:    1,
		},
		{
			name:    "checked but non-contributing groups ignored",
			byGroup: map[*semtree.Node][]uint64{g1: {1}, g2: {8}, g3: {9}},
			final:   []uint64{1},
			want:    0,
		},
		{
			name:    "empty final",
			byGroup: map[*semtree.Node][]uint64{g1: {1}},
			final:   nil,
			want:    0,
		},
		{
			name:    "three contributors",
			byGroup: map[*semtree.Node][]uint64{g1: {1}, g2: {2}, g3: {3}},
			final:   []uint64{1, 2, 3},
			want:    2,
		},
	}
	for _, c := range cases {
		if got := contributingHops(c.byGroup, c.final); got != c.want {
			t.Errorf("%s: hops = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestOfflineMaxGroupsScaling(t *testing.T) {
	// Small deployments: cap near 3; larger: grows slowly, never above
	// the group count.
	c, _ := deploy(t, 400, 8, 91, Config{Seed: 91})
	groups := len(c.Tree.FirstLevelIndexUnits())
	m := c.offlineMaxGroups()
	if m < 1 || m > groups {
		t.Fatalf("offlineMaxGroups = %d with %d groups", m, groups)
	}
	big, _ := deploy(t, 3000, 60, 93, Config{Seed: 93})
	groupsBig := len(big.Tree.FirstLevelIndexUnits())
	mBig := big.offlineMaxGroups()
	if mBig > groupsBig {
		t.Fatalf("offlineMaxGroups = %d exceeds %d groups", mBig, groupsBig)
	}
	if groupsBig > 8 && mBig >= groupsBig {
		t.Fatal("off-line search must stay bounded well below all-groups multicast")
	}
}

func TestVersionLatencyScalesWithVirtualPopulation(t *testing.T) {
	cfg := Config{Seed: 95, Versioning: true, LazyUpdateThreshold: 0.9, VirtualScale: 1000}
	c, set := deploy(t, 600, 10, 95, cfg)
	for i := 0; i < 40; i++ {
		nf := *set.Files[i]
		nf.ID = uint64(700000 + i)
		nf.Path = "/v/f.bin"
		c.InsertFile(&nf)
	}
	q := fullSpaceRange()
	_, res := c.RangeOnline(q)
	if res.VersionChecked == 0 {
		t.Fatal("no version entries examined")
	}
	small, _ := deploy(t, 600, 10, 95, Config{Seed: 95, Versioning: true, LazyUpdateThreshold: 0.9})
	for i := 0; i < 40; i++ {
		nf := *set.Files[i]
		nf.ID = uint64(700000 + i)
		nf.Path = "/v/f.bin"
		small.InsertFile(&nf)
	}
	_, resSmall := small.RangeOnline(q)
	if res.VersionLatency <= resSmall.VersionLatency {
		t.Fatalf("version latency %v not scaled above unscaled %v",
			res.VersionLatency, resSmall.VersionLatency)
	}
}

func fullSpaceRange() query.Range {
	return query.NewRange(
		trace.DefaultQueryAttrs(),
		[]float64{-1e18, -1e18, -1e18},
		[]float64{1e18, 1e18, 1e18},
	)
}
