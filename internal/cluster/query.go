package cluster

import (
	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/simnet"
	"repro/internal/version"
)

// Message size constants (bytes) for the virtual network.
const (
	queryMsgBytes  = 256
	resultMsgBase  = 64
	resultPerID    = 16
	replicaPerSize = 256 // one group's vector + MBR snapshot
)

// RangeOnline answers a range query with the on-line multicast approach
// (§3.3.1): the client contacts a random home unit, which multicasts the
// query to every first-level index-unit host; hosts whose group MBR
// intersects forward into member units; matching units scan and reply.
func (c *Cluster) RangeOnline(q query.Range) ([]uint64, Result) {
	home := c.HomeUnit()
	groups := c.Tree.FirstLevelIndexUnits()
	return c.runComplex(home, groups, func(g *semtree.Node) ([]uint64, semtree.QueryStats, int) {
		return c.searchGroupRange(g, q)
	}, true)
}

// offlineMaxGroups caps how many groups the off-line path may search:
// the target plus a few high-mass siblings, growing slowly with the
// number of groups so the search stays "bounded within one or a small
// number of tree nodes" (§3.1.2) at any scale.
func (c *Cluster) offlineMaxGroups() int {
	n := len(c.Tree.FirstLevelIndexUnits())
	m := 3
	if extra := n / 4; extra > 0 {
		m += extra
	}
	if m > n {
		m = n
	}
	return m
}

// SharedOfflineBudget returns the off-line group budget for a
// deployment that is one shard of a multi-shard fan-out: the
// most-correlated group plus a slowly growing sibling allowance,
// without the solo deployment's 3-group floor — the cross-shard union
// already supplies breadth, so repeating the floor on every shard would
// multiply total search work by the shard count.
func (c *Cluster) SharedOfflineBudget() int {
	n := len(c.Tree.FirstLevelIndexUnits())
	m := 1 + n/4
	if m > n {
		m = n
	}
	return m
}

// RangeOffline answers a range query with off-line pre-processing
// (§3.4): the home unit folds the request against its local replica of
// first-level index-unit summaries and forwards the query directly to
// the most-correlated group, plus any sibling group whose replica
// indicates substantial matching mass.
func (c *Cluster) RangeOffline(q query.Range) ([]uint64, Result) {
	return c.RangeOfflineN(q, 0)
}

// RangeOfflineN is RangeOffline with an explicit group budget; a
// non-positive budget selects the deployment default. The engine uses
// it to divide one logical query's search breadth across shards. An
// explicit budget covering every group searches all of them — the
// heuristic sibling cut-offs only bound the *adaptive* routing, so a
// configured exhaustive budget provably drops no contributing group
// (the top end of the evaluation harness's recall/cost sweep).
func (c *Cluster) RangeOfflineN(q query.Range, maxGroups int) ([]uint64, Result) {
	home := c.HomeUnit()
	targets := c.offlineTargets(maxGroups, func(m int) []*semtree.Node {
		return c.Tree.RouteRangeGroups(q, m)
	})
	return c.runComplex(home, targets, func(g *semtree.Node) ([]uint64, semtree.QueryStats, int) {
		return c.searchGroupRange(g, q)
	}, false)
}

// offlineTargets resolves an off-line query's target groups: a
// non-positive budget routes adaptively under the deployment default; an
// explicit budget that covers every first-level group searches all of
// them; anything else routes adaptively under the explicit cap.
func (c *Cluster) offlineTargets(maxGroups int, route func(int) []*semtree.Node) []*semtree.Node {
	groups := c.Tree.FirstLevelIndexUnits()
	if maxGroups > 0 && maxGroups >= len(groups) {
		return groups
	}
	if maxGroups <= 0 {
		maxGroups = c.offlineMaxGroups()
	}
	return route(maxGroups)
}

// TopKOnline answers a top-k query via multicast over all groups.
func (c *Cluster) TopKOnline(q query.TopK) ([]uint64, Result) {
	home := c.HomeUnit()
	groups := c.Tree.FirstLevelIndexUnits()
	byGroup := map[*semtree.Node][]uint64{}
	ids, res := c.runComplex(home, groups, func(g *semtree.Node) ([]uint64, semtree.QueryStats, int) {
		out, st, v := c.searchGroupTopK(g, q)
		byGroup[g] = out
		return out, st, v
	}, true)
	final := c.rerankTopK(ids, q)
	res.Hops = contributingHops(byGroup, final)
	return final, res
}

// TopKOffline answers a top-k query at the most-correlated group plus
// any sibling whose MBR also reaches the query point's neighbourhood
// (the MaxD sibling verification of §3.3.2).
func (c *Cluster) TopKOffline(q query.TopK) ([]uint64, Result) {
	return c.TopKOfflineN(q, 0)
}

// TopKOfflineN is TopKOffline with an explicit group budget; a
// non-positive budget selects the deployment default. As with ranges,
// an explicit budget covering every group searches all of them.
func (c *Cluster) TopKOfflineN(q query.TopK, maxGroups int) ([]uint64, Result) {
	home := c.HomeUnit()
	targets := c.offlineTargets(maxGroups, func(m int) []*semtree.Node {
		return c.Tree.RouteTopKGroups(q, m)
	})
	byGroup := map[*semtree.Node][]uint64{}
	ids, res := c.runComplex(home, targets, func(g *semtree.Node) ([]uint64, semtree.QueryStats, int) {
		out, st, v := c.searchGroupTopK(g, q)
		byGroup[g] = out
		return out, st, v
	}, false)
	final := c.rerankTopK(ids, q)
	res.Hops = contributingHops(byGroup, final)
	return final, res
}

// contributingHops counts the groups that own at least one final result
// (the Fig. 8 "served by" metric), minus one.
func contributingHops(byGroup map[*semtree.Node][]uint64, final []uint64) int {
	in := make(map[uint64]bool, len(final))
	for _, id := range final {
		in[id] = true
	}
	contributing := 0
	for _, ids := range byGroup {
		for _, id := range ids {
			if in[id] {
				contributing++
				break
			}
		}
	}
	if contributing <= 1 {
		return 0
	}
	return contributing - 1
}

// rerankTopK merges per-group candidate lists into the final k by true
// distance (the MaxD refinement step of §3.3.2).
func (c *Cluster) rerankTopK(ids []uint64, q query.TopK) []uint64 {
	if len(ids) <= q.K {
		return ids
	}
	byID := c.fileByID()
	type cand struct {
		id   uint64
		dist float64
	}
	cands := make([]cand, 0, len(ids))
	for _, id := range ids {
		if f, ok := byID[id]; ok {
			cands = append(cands, cand{id, q.Dist(c.Tree.Norm, f)})
		}
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (cands[j].dist < cands[j-1].dist ||
			(cands[j].dist == cands[j-1].dist && cands[j].id < cands[j-1].id)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	k := q.K
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// runComplex executes the shared fan-out/fan-in pattern of complex
// queries over the given candidate groups and accounts latency,
// messages and hops. online=true models the multicast identification
// phase; offline adds the local LSI fold-in cost instead.
func (c *Cluster) runComplex(home *semtree.Node, groups []*semtree.Node,
	search func(*semtree.Node) ([]uint64, semtree.QueryStats, int), online bool) ([]uint64, Result) {

	var out []uint64
	var res Result
	touched := 0

	c.Sim.ResetCounters()
	homeNode := c.unitNode[home]
	res.Latency = c.Sim.Latency(func(done func()) {
		// Client → home unit.
		c.client.Send(homeNode, queryMsgBytes, func(at *simnet.Node) {
			proceed := func() {
				pendingReplies := len(groups)
				if pendingReplies == 0 {
					done()
					return
				}
				for _, g := range groups {
					g := g
					host := c.groupHost(g)
					at.Send(host, queryMsgBytes, func(h *simnet.Node) {
						ids, st, vChecked := search(g)
						// The version walk happens at the group host and
						// adds the Fig. 14(b) extra latency. Version
						// entries scale with the virtual population like
						// other probes, but each entry is a compact
						// in-memory delta ("versions only maintain
						// changes that require small storage overheads",
						// §4.4), so it costs a fraction of a full record
						// probe; with the lazy-update threshold bounding
						// chain length this stays under ~10% of query
						// latency (§5.6).
						const versionProbeFraction = 0.25
						vLat := c.Cfg.Cost.ProbeCost(int(float64(vChecked) * c.Cfg.VirtualScale * versionProbeFraction))
						res.VersionChecked += vChecked
						res.VersionLatency += vLat
						// Member units scan their shares in parallel; the
						// group's wall time is one unit's share against
						// that unit's resident population. Decentralization
						// is what keeps SmartStore at memory speed while
						// the centralized baselines page from disk (§5.2).
						nUnits := st.UnitsSearched
						if nUnits < 1 {
							nUnits = 1
						}
						var gLeaves []*semtree.Node
						gLeaves = g.Leaves(gLeaves)
						perUnitTotal := c.GroupSize(g) / len(gLeaves)
						scaled := int(float64(st.RecordsScanned) * c.Cfg.VirtualScale / float64(nUnits))
						unitTotal := int(float64(perUnitTotal) * c.Cfg.VirtualScale)
						work := c.Cfg.Cost.MsgHandle +
							c.Cfg.Cost.ScanCost(scaled, unitTotal) + vLat
						h.Work(work, func() {
							// A group counts toward routing distance when
							// it contributes results (Fig. 8 measures the
							// groups an operation is *served* by).
							if len(ids) > 0 {
								touched++
							}
							res.UnitsSearched += st.UnitsSearched
							res.RecordsScanned += st.RecordsScanned
							out = append(out, ids...)
							h.Send(homeNode, resultMsgBase+resultPerID*len(ids), func(*simnet.Node) {
								// Reply handling serializes at the home
								// unit — the fan-in cost that makes the
								// on-line multicast slower at scale
								// (Fig. 13a).
								homeNode.Work(c.Cfg.Cost.MsgHandle, func() {
									pendingReplies--
									if pendingReplies == 0 {
										// Home → client.
										homeNode.Send(c.client, resultMsgBase+resultPerID*len(out), func(*simnet.Node) {
											done()
										})
									}
								})
							})
						})
					})
				}
			}
			if online {
				// Multicast identification costs one Bloom/MBR check per
				// group host before forwarding.
				at.Work(c.Cfg.Cost.ProbeCost(len(groups)), proceed)
			} else {
				// Off-line: LSI fold-in against local replica vectors.
				at.Work(c.Cfg.Cost.LSIFold, proceed)
			}
		})
	})
	res.Messages = c.Sim.Messages()
	if touched > 1 {
		res.Hops = touched - 1
	}
	return out, res
}

// searchGroupRange searches one group's units for a range query,
// respecting the consistency model: results reflect the propagated
// snapshot; with versioning enabled the group's version chain is walked
// backward to surface unpropagated changes (§4.4).
func (c *Cluster) searchGroupRange(g *semtree.Node, q query.Range) ([]uint64, semtree.QueryStats, int) {
	validateGroup(g)
	ids, st := c.Tree.SearchGroupRange(g, q)
	ids, examined := c.applyConsistency(g, ids, func(f *metadata.File) bool { return q.Matches(f) })
	return ids, st, examined
}

// searchGroupTopK searches one group's units for top-k candidates.
func (c *Cluster) searchGroupTopK(g *semtree.Node, q query.TopK) ([]uint64, semtree.QueryStats, int) {
	validateGroup(g)
	ids, st := c.Tree.SearchGroupTopK(g, q)
	// Versioned candidates join the pool; rerankTopK finalizes order.
	ids, examined := c.applyConsistency(g, ids, func(*metadata.File) bool { return true })
	return ids, st, examined
}

// applyConsistency filters unpropagated files out of the snapshot answer
// and, when versioning is on, walks the version chain backward to
// recover them. It returns the updated ids and the number of version
// entries examined (the Fig. 14b extra-latency driver).
func (c *Cluster) applyConsistency(g *semtree.Node, ids []uint64,
	match func(*metadata.File) bool) ([]uint64, int) {

	pend := c.pending[g]
	del := c.deleted[g]
	if len(pend) == 0 && len(del) == 0 {
		return ids, 0
	}
	// The propagated snapshot does not include pending inserts, and
	// still includes pending deletes.
	kept := ids[:0]
	for _, id := range ids {
		if _, isPending := pend[id]; isPending {
			continue
		}
		kept = append(kept, id)
	}
	ids = kept

	if !c.Cfg.Versioning {
		return ids, 0
	}
	chain := c.chains[g]
	seen := map[uint64]bool{}
	examined := chain.WalkBackward(func(ch version.Change) bool {
		if seen[ch.File.ID] {
			return true
		}
		seen[ch.File.ID] = true
		switch ch.Kind {
		case version.Insert, version.Modify:
			if match(ch.File) {
				ids = append(ids, ch.File.ID)
			}
		case version.Delete:
			for i, id := range ids {
				if id == ch.File.ID {
					ids = append(ids[:i], ids[i+1:]...)
					break
				}
			}
		}
		return true
	})
	return ids, examined
}

// Point answers a filename point query (§3.3.3): the home unit checks
// its local Bloom filters and routes along positive index-unit filters.
// Hit/miss accounting feeds Fig. 9.
func (c *Cluster) Point(q query.Point) ([]uint64, Result) {
	home := c.HomeUnit()
	var ids []uint64
	var st semtree.QueryStats
	var res Result

	c.Sim.ResetCounters()
	homeNode := c.unitNode[home]
	res.Latency = c.Sim.Latency(func(done func()) {
		c.client.Send(homeNode, queryMsgBytes, func(at *simnet.Node) {
			ids, st = c.Tree.PointQuery(q)
			// Pending files are not yet in index-unit Bloom filters; with
			// versioning the chain recovers them.
			ids = c.pointConsistency(q, ids, &st)
			// Bloom checks are per-node index operations and do not grow
			// with the virtual population; the exact-match confirmation
			// probes do.
			work := simnet.Time(st.BloomChecks)*c.Cfg.Cost.BloomCheck +
				c.Cfg.Cost.ProbeCost(int(float64(st.RecordsScanned)*c.Cfg.VirtualScale))
			at.Work(work, func() {
				// Forward to each unit that reported a positive (modelled
				// as one message round to the farthest).
				extra := st.UnitsSearched
				if extra < 1 {
					extra = 1
				}
				at.Send(homeNode, resultMsgBase+resultPerID*len(ids), func(*simnet.Node) {
					homeNode.Send(c.client, resultMsgBase+resultPerID*len(ids), func(*simnet.Node) {
						done()
					})
				})
				res.Messages += int64(extra)
			})
		})
	})
	res.Messages += c.Sim.Messages()
	res.UnitsSearched = st.UnitsSearched
	res.RecordsScanned = st.RecordsScanned
	if st.GroupsTouched > 1 {
		res.Hops = st.GroupsTouched - 1
	}
	return ids, res
}

func (c *Cluster) pointConsistency(q query.Point, ids []uint64, st *semtree.QueryStats) []uint64 {
	// Drop pending inserts (their names are not yet in propagated
	// index-unit filters — modelling staleness false negatives), then
	// recover via versions when enabled.
	for _, g := range c.Tree.FirstLevelIndexUnits() {
		pend := c.pending[g]
		if len(pend) == 0 {
			continue
		}
		kept := ids[:0]
		for _, id := range ids {
			if _, isPending := pend[id]; isPending {
				continue
			}
			kept = append(kept, id)
		}
		ids = kept
		if c.Cfg.Versioning {
			examined := c.chains[g].WalkBackward(func(ch version.Change) bool {
				if ch.Kind != version.Delete && ch.File.Path == q.Filename {
					ids = append(ids, ch.File.ID)
				}
				return true
			})
			st.RecordsScanned += examined
		}
	}
	return ids
}
