package kmeans

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+1)) }

func twoBlobs(n int, r *rand.Rand) [][]float64 {
	pts := make([][]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		pts = append(pts, []float64{r.NormFloat64() * 0.1, r.NormFloat64() * 0.1})
	}
	for i := 0; i < n; i++ {
		pts = append(pts, []float64{10 + r.NormFloat64()*0.1, 10 + r.NormFloat64()*0.1})
	}
	return pts
}

func TestClusterErrors(t *testing.T) {
	r := rng(1)
	if _, err := Cluster(nil, 1, r); err == nil {
		t.Fatal("empty points should error")
	}
	if _, err := Cluster([][]float64{{1}}, 0, r); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Cluster([][]float64{{1}}, 2, r); err == nil {
		t.Fatal("k>n should error")
	}
	if _, err := Cluster([][]float64{{1, 2}, {1}}, 1, r); err == nil {
		t.Fatal("ragged points should error")
	}
}

func TestSeparatedBlobs(t *testing.T) {
	r := rng(2)
	pts := twoBlobs(50, r)
	res, err := Cluster(pts, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	// All of blob 1 in one cluster, all of blob 2 in the other.
	first := res.Assignment[0]
	for i := 0; i < 50; i++ {
		if res.Assignment[i] != first {
			t.Fatalf("blob 1 split across clusters at %d", i)
		}
	}
	second := res.Assignment[50]
	if second == first {
		t.Fatal("both blobs in the same cluster")
	}
	for i := 50; i < 100; i++ {
		if res.Assignment[i] != second {
			t.Fatalf("blob 2 split across clusters at %d", i)
		}
	}
	if res.Inertia > 10 {
		t.Fatalf("inertia %v too large for tight blobs", res.Inertia)
	}
}

func TestKEqualsN(t *testing.T) {
	r := rng(3)
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	res, err := Cluster(pts, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("k=n inertia = %v, want 0", res.Inertia)
	}
}

func TestK1CentroidIsMean(t *testing.T) {
	r := rng(4)
	pts := [][]float64{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	res, err := Cluster(pts, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Centroids[0]
	if c[0] != 1 || c[1] != 1 {
		t.Fatalf("k=1 centroid = %v, want [1 1]", c)
	}
}

func TestIdenticalPoints(t *testing.T) {
	r := rng(5)
	pts := [][]float64{{3, 3}, {3, 3}, {3, 3}, {3, 3}}
	res, err := Cluster(pts, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia = %v, want 0", res.Inertia)
	}
}

// Property: every assignment indexes a valid cluster, and inertia is the
// sum of squared distances to assigned centroids (non-negative, finite).
func TestPropertyValidAssignments(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		n := 5 + int(r.Uint64()%30)
		k := 1 + int(r.Uint64()%uint64(n))
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
		}
		res, err := Cluster(pts, k, r)
		if err != nil {
			return false
		}
		if len(res.Assignment) != n || len(res.Centroids) != k {
			return false
		}
		for _, a := range res.Assignment {
			if a < 0 || a >= k {
				return false
			}
		}
		return res.Inertia >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: increasing k never increases optimal inertia by much — in
// particular k=n gives (near-)zero inertia.
func TestPropertyInertiaShrinksWithK(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed | 1)
		n := 10
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{r.Float64() * 10, r.Float64() * 10}
		}
		full, err := Cluster(pts, n, rng(seed|1))
		if err != nil {
			return false
		}
		return full.Inertia < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCluster1000x2(b *testing.B) {
	r := rng(9)
	pts := twoBlobs(500, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(pts, 8, rng(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
