// Package kmeans implements Lloyd's K-means clustering with k-means++
// seeding. The paper (§3.1.1) discusses K-means [30] as the obvious
// alternative grouping tool and argues LSI is preferable because
// K-means "heavy[ily] depend[s] on the distribution of the initial set
// of clusters and the input parameter K"; this package exists so the
// LSI-vs-K-means ablation bench can quantify that comparison.
package kmeans

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Result is a completed clustering.
type Result struct {
	Centroids  [][]float64
	Assignment []int   // Assignment[i] = cluster of point i
	Inertia    float64 // Σ ||p_i − centroid(p_i)||², the K-means objective
	Iterations int
}

// MaxIterations bounds Lloyd refinement.
const MaxIterations = 100

// Cluster partitions points into k clusters. It is deterministic in rng.
// It returns an error when inputs are empty, ragged, or k is out of
// range.
func Cluster(points [][]float64, k int, rng *rand.Rand) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("kmeans: k=%d out of range [1,%d]", k, n)
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("kmeans: point %d has %d dims, want %d", i, len(p), d)
		}
	}

	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	counts := make([]int, k)

	iters := 0
	for ; iters < MaxIterations; iters++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if dd := sqDist(p, centroids[c]); dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iters > 0 {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				centroids[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an emptied cluster at a random point — the
				// instability the paper complains about.
				copy(centroids[c], points[rng.IntN(n)])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}

	inertia := 0.0
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	return &Result{
		Centroids:  centroids,
		Assignment: assign,
		Inertia:    inertia,
		Iterations: iters,
	}, nil
}

// seedPlusPlus chooses initial centroids with the k-means++ scheme:
// each subsequent seed is drawn proportional to squared distance from
// the nearest existing seed.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := points[rng.IntN(n)]
	centroids = append(centroids, append([]float64(nil), first...))

	dists := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(p, c); dd < best {
					best = dd
				}
			}
			dists[i] = best
			total += best
		}
		var idx int
		if total == 0 {
			idx = rng.IntN(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			for i, dd := range dists {
				acc += dd
				if acc >= r {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
