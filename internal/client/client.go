// Package client is the typed Go client of the smartstored HTTP/JSON
// metadata service. It speaks the wire format of internal/server and
// mirrors the root library API: callers pass smartstore.Attr subsets
// and raw attribute values and get back ids plus the virtual-time
// report, with the extra Cached bit the serving layer adds.
//
// A Client is safe for concurrent use by multiple goroutines.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	smartstore "repro"
	"repro/internal/server"
)

// Client talks to one smartstored instance.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for a daemon at addr — either a bare "host:port"
// or a full "http://host:port" base URL.
func New(addr string) *Client {
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	// A dedicated transport with a deep idle pool: benchmark and
	// service workloads run dozens of concurrent closed-loop callers
	// through one Client, and the default MaxIdleConnsPerHost of 2
	// would churn TCP connections, polluting measured tail latency
	// with handshake cost.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 64
	return &Client{
		base: base,
		hc:   &http.Client{Timeout: 60 * time.Second, Transport: tr},
	}
}

// post round-trips one JSON request; out may be nil.
func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	return c.finish(path, resp, out)
}

// get round-trips one GET.
func (c *Client) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	return c.finish(path, resp, out)
}

func (c *Client) finish(path string, resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&we) == nil && we.Error != "" {
			return fmt.Errorf("client: %s: %s (%s)", path, we.Error, resp.Status)
		}
		return fmt.Errorf("client: %s: %s", path, resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// Point looks up file metadata by exact pathname.
func (c *Client) Point(path string) (*server.QueryResponse, error) {
	var out server.QueryResponse
	if err := c.post("/v1/query/point", server.PointRequest{Path: path}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Range finds all files whose attrs[i] lies within [lo[i], hi[i]], in
// raw attribute units.
func (c *Client) Range(attrs []smartstore.Attr, lo, hi []float64) (*server.QueryResponse, error) {
	var out server.QueryResponse
	req := server.RangeRequest{Attrs: server.AttrNames(attrs), Lo: lo, Hi: hi}
	if err := c.post("/v1/query/range", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TopK finds the k files whose attributes are closest to point.
func (c *Client) TopK(attrs []smartstore.Attr, point []float64, k int) (*server.QueryResponse, error) {
	var out server.QueryResponse
	req := server.TopKRequest{Attrs: server.AttrNames(attrs), Point: point, K: k}
	if err := c.post("/v1/query/topk", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Insert inserts a batch of files in one request. Files with a zero ID
// get one allocated by the server; the response lists the batch's ids
// in input order.
func (c *Client) Insert(files []*smartstore.File) (*server.InsertResponse, error) {
	recs := make([]server.FileRecord, len(files))
	for i, f := range files {
		recs[i] = server.RecordFromFile(f)
	}
	var out server.InsertResponse
	if err := c.post("/v1/insert", server.InsertRequest{Files: recs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete removes a file by id.
func (c *Client) Delete(id uint64) (*server.MutateResponse, error) {
	var out server.MutateResponse
	if err := c.post("/v1/delete", server.DeleteRequest{ID: id}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Modify updates an existing file's attributes.
func (c *Client) Modify(f *smartstore.File) (*server.MutateResponse, error) {
	var out server.MutateResponse
	if err := c.post("/v1/modify", server.ModifyRequest{File: server.RecordFromFile(f)}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Flush propagates all pending changes to replicas.
func (c *Client) Flush() (*server.FlushResponse, error) {
	var out server.FlushResponse
	if err := c.post("/v1/flush", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats reports store structure and serving-layer counters.
func (c *Client) Stats() (*server.StatsResponse, error) {
	var out server.StatsResponse
	if err := c.get("/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthy reports whether the daemon answers its health check.
func (c *Client) Healthy() bool {
	var out map[string]bool
	return c.get("/healthz", &out) == nil && out["ok"]
}
