// Package client is the typed Go client of the smartstored HTTP
// metadata service. It speaks the wire format of internal/wire and
// mirrors the root library API: Query and QueryBatch take
// smartstore.Query values — kind, dimensions, per-query options — and
// round-trip them through the unified POST /v1/query endpoint, with
// context cancellation aborting the HTTP exchange. The legacy Point,
// Range and TopK helpers remain as thin wrappers over Query.
//
// Queries default to the length-prefixed binary codec with automatic
// JSON fallback: the client always advertises the codec via Accept,
// and upgrades request bodies to binary once the server answers in it
// (Options.Wire forces either codec). Mutations and stats stay JSON.
//
// Idempotent reads — queries, stats, metrics, health — can retry
// transient failures (transport errors, 502/503/504) with bounded
// exponential backoff and a per-attempt timeout (Options); mutations
// are never retried, since a timed-out insert may have landed and a
// blind replay would surface duplicate-id errors. The gateway
// (internal/gateway) leans on this so a backend hiccup doesn't surface
// as a federated query failure.
//
// A Client is safe for concurrent use by multiple goroutines.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	smartstore "repro"
	"repro/internal/server"
	"repro/internal/wire"
)

// WireMode selects the /v1/query codec (the mutation and stats
// endpoints are always JSON).
type WireMode int

const (
	// WireAuto (the default) asks for binary responses on every query
	// (Accept: application/x-smartstore-bin) while sending JSON request
	// bodies, and upgrades request bodies to binary once a binary
	// response proves the server speaks the codec. Against an older
	// JSON-only server everything stays JSON — the fallback costs
	// nothing but the ignored Accept header.
	WireAuto WireMode = iota
	// WireJSON forces JSON both ways.
	WireJSON
	// WireBinary forces binary request bodies immediately. Only for
	// servers known to speak the codec — an older server answers 400.
	WireBinary
)

// ParseWireMode resolves a -wire flag value: "auto", "json" or
// "binary".
func ParseWireMode(s string) (WireMode, error) {
	switch s {
	case "", "auto":
		return WireAuto, nil
	case "json":
		return WireJSON, nil
	case "binary":
		return WireBinary, nil
	default:
		return WireAuto, fmt.Errorf("unknown wire mode %q (want auto, json or binary)", s)
	}
}

func (m WireMode) String() string {
	switch m {
	case WireJSON:
		return "json"
	case WireBinary:
		return "binary"
	default:
		return "auto"
	}
}

// Options parameterizes a Client beyond its address. The zero value
// reproduces the legacy behaviour: one attempt, 60s overall timeout.
type Options struct {
	// Timeout bounds each attempt (0 → 60s).
	Timeout time.Duration
	// Retries is how many additional attempts an idempotent read may
	// make after a retryable failure (0 = fail on the first error).
	// Mutations never retry regardless.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling per
	// subsequent retry (0 → 25ms). A cancelled context aborts the wait.
	RetryBackoff time.Duration
	// OnRetry, when set, observes every retry about to be attempted —
	// the hook a gateway counts client_retries_total with.
	OnRetry func(path string, attempt int, err error)
	// Wire selects the /v1/query codec; the zero value is WireAuto
	// (binary when the server speaks it, JSON otherwise).
	Wire WireMode
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	return o
}

// StatusError is a non-200 reply, carrying the HTTP status code and
// the server's error message. Callers distinguish server-side pressure
// (503) from client errors (400) with errors.As.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("%s (HTTP %d)", e.Msg, e.Code)
	}
	return fmt.Sprintf("HTTP %d", e.Code)
}

// Client talks to one smartstored (or smartgate) instance.
type Client struct {
	base  string
	hc    *http.Client
	opts  Options
	trace bool
	// binOK latches once a binary response proves the server speaks
	// the codec (WireAuto only). A pointer so WithTrace copies share
	// the learned state.
	binOK *atomic.Bool
}

// New builds a client for a daemon at addr — either a bare "host:port"
// or a full "http://host:port" base URL — with default options.
func New(addr string) *Client {
	return NewWithOptions(addr, Options{})
}

// NewWithOptions builds a client with explicit timeout/retry options.
func NewWithOptions(addr string, opts Options) *Client {
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	// A dedicated transport with a deep idle pool: benchmark and
	// service workloads run dozens of concurrent closed-loop callers
	// through one Client, and the default MaxIdleConnsPerHost of 2
	// would churn TCP connections, polluting measured tail latency
	// with handshake cost.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 64
	return &Client{
		base: base,
		// The per-attempt bound lives in the request context, not
		// http.Client.Timeout, so each retry gets a fresh window.
		hc:    &http.Client{Transport: tr},
		opts:  opts.withDefaults(),
		binOK: &atomic.Bool{},
	}
}

// BinaryNegotiated reports whether queries currently go out with
// binary request bodies: always under WireBinary, never under
// WireJSON, and once the server has proven itself under WireAuto.
func (c *Client) BinaryNegotiated() bool {
	switch c.opts.Wire {
	case WireBinary:
		return true
	case WireJSON:
		return false
	default:
		return c.binOK.Load()
	}
}

// WithTrace returns a copy of the client that sets the
// X-Smartstore-Trace header on every query, asking the server for its
// per-phase timing breakdown. The copy shares the underlying transport.
func (c *Client) WithTrace() *Client {
	cc := *c
	cc.trace = true
	return &cc
}

// retryable reports whether an attempt's failure may be retried on an
// idempotent request: transport-level errors (connection refused/reset,
// per-attempt timeout) and upstream-pressure statuses. Context
// cancellation from the caller is final.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusBadGateway ||
			se.Code == http.StatusServiceUnavailable ||
			se.Code == http.StatusGatewayTimeout
	}
	return true
}

// roundTrip runs one request with bounded retries when idempotent. The
// attempt function must build a fresh request each call (bodies are
// consumed by failed attempts).
func (c *Client) roundTrip(ctx context.Context, path string, idempotent bool, attempt func(ctx context.Context) error) error {
	retries := 0
	if idempotent {
		retries = c.opts.Retries
	}
	backoff := c.opts.RetryBackoff
	for try := 0; ; try++ {
		actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
		err := attempt(actx)
		cancel()
		if err == nil {
			return nil
		}
		if try >= retries || !retryable(ctx, err) {
			return err
		}
		if c.opts.OnRetry != nil {
			c.opts.OnRetry(path, try+1, err)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return err
		}
		backoff *= 2
	}
}

// post round-trips one JSON POST; out may be nil. Only idempotent
// requests retry.
func (c *Client) post(path string, in, out any, idempotent bool) error {
	return c.postCtx(context.Background(), path, in, out, idempotent)
}

// postCtx round-trips one JSON POST under ctx; out may be nil.
func (c *Client) postCtx(ctx context.Context, path string, in, out any, idempotent bool) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	return c.roundTrip(ctx, path, idempotent, func(actx context.Context) error {
		req, err := http.NewRequestWithContext(actx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("client: %s: %w", path, err)
		}
		req.Header.Set("Content-Type", "application/json")
		if c.trace {
			req.Header.Set(server.TraceHeader, "1")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("client: %s: %w", path, err)
		}
		return c.finish(path, resp, out)
	})
}

// get round-trips one GET (idempotent by definition).
func (c *Client) get(path string, out any) error {
	return c.roundTrip(context.Background(), path, true, func(actx context.Context) error {
		req, err := http.NewRequestWithContext(actx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return fmt.Errorf("client: %s: %w", path, err)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("client: %s: %w", path, err)
		}
		return c.finish(path, resp, out)
	})
}

func (c *Client) finish(path string, resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Code: resp.StatusCode}
		var we server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&we) == nil && we.Error != "" {
			se.Msg = we.Error
		}
		return fmt.Errorf("client: %s: %w", path, se)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// postQuery round-trips POST /v1/query in the negotiated codec. The
// request body is binary when the wire mode says so (forced, or
// auto-latched); the response decoder dispatches on the reply's
// Content-Type, so either codec is accepted regardless of what was
// sent. Non-200 replies are always JSON. Exactly one of single/batch
// is non-nil per the request shape.
func (c *Client) postQuery(ctx context.Context, qreq server.QueryRequest) (single *server.QueryResponse, batch *server.BatchQueryResponse, err error) {
	const path = "/v1/query"
	wantBatch := len(qreq.Queries) > 0
	var body []byte
	var contentType string
	if c.BinaryNegotiated() {
		body, err = wire.EncodeRequest(&qreq)
		contentType = wire.ContentType
	} else {
		body, err = json.Marshal(qreq)
		contentType = "application/json"
	}
	if err != nil {
		return nil, nil, fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	err = c.roundTrip(ctx, path, true, func(actx context.Context) error {
		req, err := http.NewRequestWithContext(actx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("client: %s: %w", path, err)
		}
		req.Header.Set("Content-Type", contentType)
		if c.opts.Wire != WireJSON {
			req.Header.Set("Accept", wire.ContentType)
		}
		if c.trace {
			req.Header.Set(server.TraceHeader, "1")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("client: %s: %w", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			se := &StatusError{Code: resp.StatusCode}
			var we server.ErrorResponse
			if json.NewDecoder(resp.Body).Decode(&we) == nil && we.Error != "" {
				se.Msg = we.Error
			}
			return fmt.Errorf("client: %s: %w", path, se)
		}
		if wire.IsBinary(resp.Header.Get("Content-Type")) {
			if c.opts.Wire == WireAuto {
				c.binOK.Store(true)
			}
			if wantBatch {
				batch, err = wire.DecodeBatchResponse(resp.Body)
			} else {
				single, err = wire.DecodeResponse(resp.Body)
			}
		} else {
			dec := json.NewDecoder(resp.Body)
			if wantBatch {
				batch = &server.BatchQueryResponse{}
				err = dec.Decode(batch)
			} else {
				single = &server.QueryResponse{}
				err = dec.Decode(single)
			}
		}
		if err != nil {
			return fmt.Errorf("client: decoding %s response: %w", path, err)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return single, batch, nil
}

// Query executes one composable query through the unified POST
// /v1/query endpoint. Per-query options (mode override, limit, record
// projection) travel with the query; cancelling ctx aborts the
// round trip. Queries are idempotent and retry per Options.
func (c *Client) Query(ctx context.Context, q smartstore.Query) (*server.QueryResponse, error) {
	req := server.QueryRequest{WireQuery: server.QueryToWire(q)}
	out, _, err := c.postQuery(ctx, req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueryBatch executes several queries in one request; the server runs
// them concurrently under a single admission ticket and answers in
// request order. Per-query failures after admission surface in the
// matching result's Error field.
func (c *Client) QueryBatch(ctx context.Context, qs []smartstore.Query) (*server.BatchQueryResponse, error) {
	// An empty batch needs no round trip — and would misencode as a
	// malformed single query (the queries field is omitempty).
	if len(qs) == 0 {
		return &server.BatchQueryResponse{}, nil
	}
	wqs := make([]server.WireQuery, len(qs))
	for i, q := range qs {
		wqs[i] = server.QueryToWire(q)
	}
	_, out, err := c.postQuery(ctx, server.QueryRequest{Queries: wqs})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Point looks up file metadata by exact pathname. It is a wrapper over
// Query.
func (c *Client) Point(path string) (*server.QueryResponse, error) {
	return c.Query(context.Background(), smartstore.NewPointQuery(path))
}

// Range finds all files whose attrs[i] lies within [lo[i], hi[i]], in
// raw attribute units. It is a wrapper over Query.
func (c *Client) Range(attrs []smartstore.Attr, lo, hi []float64) (*server.QueryResponse, error) {
	return c.Query(context.Background(), smartstore.NewRangeQuery(attrs, lo, hi))
}

// TopK finds the k files whose attributes are closest to point. It is a
// wrapper over Query.
func (c *Client) TopK(attrs []smartstore.Attr, point []float64, k int) (*server.QueryResponse, error) {
	return c.Query(context.Background(), smartstore.NewTopKQuery(attrs, point, k))
}

// Insert inserts a batch of files in one request. Files with a zero ID
// get one allocated by the server; the response lists the batch's ids
// in input order. Never retried: a timed-out insert may have landed.
func (c *Client) Insert(files []*smartstore.File) (*server.InsertResponse, error) {
	recs := make([]server.FileRecord, len(files))
	for i, f := range files {
		recs[i] = server.RecordFromFile(f)
	}
	return c.InsertRecords(context.Background(), recs)
}

// InsertRecords inserts wire records directly — the form a gateway
// forwards without materializing metadata.File values.
func (c *Client) InsertRecords(ctx context.Context, recs []server.FileRecord) (*server.InsertResponse, error) {
	var out server.InsertResponse
	if err := c.postCtx(ctx, "/v1/insert", server.InsertRequest{Files: recs}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete removes a file by id.
func (c *Client) Delete(id uint64) (*server.MutateResponse, error) {
	return c.DeleteCtx(context.Background(), id)
}

// DeleteCtx removes a file by id under ctx.
func (c *Client) DeleteCtx(ctx context.Context, id uint64) (*server.MutateResponse, error) {
	var out server.MutateResponse
	if err := c.postCtx(ctx, "/v1/delete", server.DeleteRequest{ID: id}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Modify updates an existing file's attributes, sending the full
// attribute vector.
func (c *Client) Modify(f *smartstore.File) (*server.MutateResponse, error) {
	return c.ModifyRecord(context.Background(), server.RecordFromFile(f))
}

// ModifyRecord forwards a modify in wire form, preserving the
// request's partial-attribute merge semantics — what a gateway must
// use, since materializing a File would zero unnamed attributes.
func (c *Client) ModifyRecord(ctx context.Context, rec server.FileRecord) (*server.MutateResponse, error) {
	var out server.MutateResponse
	if err := c.postCtx(ctx, "/v1/modify", server.ModifyRequest{File: rec}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Flush propagates all pending changes to replicas.
func (c *Client) Flush() (*server.FlushResponse, error) {
	return c.FlushCtx(context.Background())
}

// FlushCtx propagates all pending changes to replicas under ctx.
func (c *Client) FlushCtx(ctx context.Context) (*server.FlushResponse, error) {
	var out server.FlushResponse
	if err := c.postCtx(ctx, "/v1/flush", struct{}{}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats reports store structure and serving-layer counters.
func (c *Client) Stats() (*server.StatsResponse, error) {
	var out server.StatsResponse
	if err := c.get("/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReplStatus reports the daemon's replication posture: whether it is
// read-only, following a leader, caught up, or promoted. It answers on
// every member — leaders report a non-following, writable store.
func (c *Client) ReplStatus() (*server.ReplStatusWire, error) {
	var out server.ReplStatusWire
	if err := c.get("/v1/repl/status", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Promote asks a follower to stop following, apply everything it has
// fetched, and start accepting writes. Not idempotent at the transport
// level (no retry): the caller decides whether to re-issue, and the
// endpoint itself is idempotent server-side.
func (c *Client) Promote(ctx context.Context) (*server.ReplStatusWire, error) {
	var out server.ReplStatusWire
	if err := c.postCtx(ctx, "/v1/repl/promote", struct{}{}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus text exposition from
// /v1/metrics. Callers that want structured values feed the result to
// obs.ParsePrometheus.
func (c *Client) Metrics() (string, error) {
	var text string
	err := c.roundTrip(context.Background(), "/v1/metrics", true, func(actx context.Context) error {
		req, err := http.NewRequestWithContext(actx, http.MethodGet, c.base+"/v1/metrics", nil)
		if err != nil {
			return fmt.Errorf("client: /v1/metrics: %w", err)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("client: /v1/metrics: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("client: /v1/metrics: %w", &StatusError{Code: resp.StatusCode})
		}
		var b strings.Builder
		if _, err := io.Copy(&b, resp.Body); err != nil {
			return fmt.Errorf("client: reading /v1/metrics: %w", err)
		}
		text = b.String()
		return nil
	})
	return text, err
}

// Healthy reports whether the daemon answers its health check. Health
// probes never retry — the health loop wants the instantaneous truth,
// and its own cadence provides the retrying.
func (c *Client) Healthy() bool {
	actx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	var out map[string]bool
	return c.finish("/healthz", resp, &out) == nil && out["ok"]
}
