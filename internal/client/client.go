// Package client is the typed Go client of the smartstored HTTP/JSON
// metadata service. It speaks the wire format of internal/server and
// mirrors the root library API: Query and QueryBatch take
// smartstore.Query values — kind, dimensions, per-query options — and
// round-trip them through the unified POST /v1/query endpoint, with
// context cancellation aborting the HTTP exchange. The legacy Point,
// Range and TopK helpers remain as thin wrappers over Query.
//
// A Client is safe for concurrent use by multiple goroutines.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	smartstore "repro"
	"repro/internal/server"
)

// Client talks to one smartstored instance.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for a daemon at addr — either a bare "host:port"
// or a full "http://host:port" base URL.
func New(addr string) *Client {
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	// A dedicated transport with a deep idle pool: benchmark and
	// service workloads run dozens of concurrent closed-loop callers
	// through one Client, and the default MaxIdleConnsPerHost of 2
	// would churn TCP connections, polluting measured tail latency
	// with handshake cost.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 64
	return &Client{
		base: base,
		hc:   &http.Client{Timeout: 60 * time.Second, Transport: tr},
	}
}

// post round-trips one JSON request; out may be nil.
func (c *Client) post(path string, in, out any) error {
	return c.postCtx(context.Background(), path, in, out)
}

// postCtx round-trips one JSON request under ctx; out may be nil.
func (c *Client) postCtx(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	return c.finish(path, resp, out)
}

// get round-trips one GET.
func (c *Client) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	return c.finish(path, resp, out)
}

func (c *Client) finish(path string, resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&we) == nil && we.Error != "" {
			return fmt.Errorf("client: %s: %s (%s)", path, we.Error, resp.Status)
		}
		return fmt.Errorf("client: %s: %s", path, resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// Query executes one composable query through the unified POST
// /v1/query endpoint. Per-query options (mode override, limit, record
// projection) travel with the query; cancelling ctx aborts the
// round trip.
func (c *Client) Query(ctx context.Context, q smartstore.Query) (*server.QueryResponse, error) {
	var out server.QueryResponse
	req := server.QueryRequest{WireQuery: server.QueryToWire(q)}
	if err := c.postCtx(ctx, "/v1/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryBatch executes several queries in one request; the server runs
// them concurrently under a single admission ticket and answers in
// request order. Per-query failures after admission surface in the
// matching result's Error field.
func (c *Client) QueryBatch(ctx context.Context, qs []smartstore.Query) (*server.BatchQueryResponse, error) {
	// An empty batch needs no round trip — and would misencode as a
	// malformed single query (the queries field is omitempty).
	if len(qs) == 0 {
		return &server.BatchQueryResponse{}, nil
	}
	wqs := make([]server.WireQuery, len(qs))
	for i, q := range qs {
		wqs[i] = server.QueryToWire(q)
	}
	var out server.BatchQueryResponse
	if err := c.postCtx(ctx, "/v1/query", server.QueryRequest{Queries: wqs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Point looks up file metadata by exact pathname. It is a wrapper over
// Query.
func (c *Client) Point(path string) (*server.QueryResponse, error) {
	return c.Query(context.Background(), smartstore.NewPointQuery(path))
}

// Range finds all files whose attrs[i] lies within [lo[i], hi[i]], in
// raw attribute units. It is a wrapper over Query.
func (c *Client) Range(attrs []smartstore.Attr, lo, hi []float64) (*server.QueryResponse, error) {
	return c.Query(context.Background(), smartstore.NewRangeQuery(attrs, lo, hi))
}

// TopK finds the k files whose attributes are closest to point. It is a
// wrapper over Query.
func (c *Client) TopK(attrs []smartstore.Attr, point []float64, k int) (*server.QueryResponse, error) {
	return c.Query(context.Background(), smartstore.NewTopKQuery(attrs, point, k))
}

// Insert inserts a batch of files in one request. Files with a zero ID
// get one allocated by the server; the response lists the batch's ids
// in input order.
func (c *Client) Insert(files []*smartstore.File) (*server.InsertResponse, error) {
	recs := make([]server.FileRecord, len(files))
	for i, f := range files {
		recs[i] = server.RecordFromFile(f)
	}
	var out server.InsertResponse
	if err := c.post("/v1/insert", server.InsertRequest{Files: recs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete removes a file by id.
func (c *Client) Delete(id uint64) (*server.MutateResponse, error) {
	var out server.MutateResponse
	if err := c.post("/v1/delete", server.DeleteRequest{ID: id}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Modify updates an existing file's attributes.
func (c *Client) Modify(f *smartstore.File) (*server.MutateResponse, error) {
	var out server.MutateResponse
	if err := c.post("/v1/modify", server.ModifyRequest{File: server.RecordFromFile(f)}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Flush propagates all pending changes to replicas.
func (c *Client) Flush() (*server.FlushResponse, error) {
	var out server.FlushResponse
	if err := c.post("/v1/flush", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats reports store structure and serving-layer counters.
func (c *Client) Stats() (*server.StatsResponse, error) {
	var out server.StatsResponse
	if err := c.get("/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus text exposition from
// /v1/metrics. Callers that want structured values feed the result to
// obs.ParsePrometheus.
func (c *Client) Metrics() (string, error) {
	resp, err := c.hc.Get(c.base + "/v1/metrics")
	if err != nil {
		return "", fmt.Errorf("client: /v1/metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: /v1/metrics: %s", resp.Status)
	}
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		return "", fmt.Errorf("client: reading /v1/metrics: %w", err)
	}
	return b.String(), nil
}

// Healthy reports whether the daemon answers its health check.
func (c *Client) Healthy() bool {
	var out map[string]bool
	return c.get("/healthz", &out) == nil && out["ok"]
}
