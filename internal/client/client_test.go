package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	smartstore "repro"
	"repro/internal/server"
)

// newServedStore stands up an httptest daemon over a small store and
// returns a client for it.
func newServedStore(t testing.TB) (*Client, *smartstore.Store, *smartstore.TraceSet) {
	t.Helper()
	set, err := smartstore.GenerateTrace("EECS", 1200, 7)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(store, server.Options{}))
	t.Cleanup(ts.Close)
	return New(ts.URL), store, set
}

func TestClientQueriesMatchLibrary(t *testing.T) {
	cl, store, set := newServedStore(t)

	if !cl.Healthy() {
		t.Fatal("daemon not healthy")
	}

	// Point.
	want := set.Files[42]
	pt, err := cl.Point(want.Path)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Count == 0 {
		t.Fatalf("point query for %q found nothing", want.Path)
	}

	// Range answers match the library exactly (result ids are
	// deterministic regardless of the simulated home unit).
	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes}
	lo := []float64{0, 0}
	hi := []float64{5e8, 1e12}
	got, err := cl.Range(attrs, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := store.RangeQuery(attrs, lo, hi)
	if len(got.IDs) != len(direct) {
		t.Fatalf("remote range %d ids, library %d", len(got.IDs), len(direct))
	}
	directSet := map[uint64]bool{}
	for _, id := range direct {
		directSet[id] = true
	}
	for _, id := range got.IDs {
		if !directSet[id] {
			t.Fatalf("remote id %d not in library answer", id)
		}
	}

	// Top-k.
	tk, err := cl.TopK(attrs, []float64{want.Attrs[smartstore.AttrMTime],
		want.Attrs[smartstore.AttrReadBytes]}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tk.IDs) != 5 {
		t.Fatalf("top-5 returned %d ids", len(tk.IDs))
	}
}

func TestClientMutations(t *testing.T) {
	cl, _, set := newServedStore(t)

	f := &smartstore.File{Path: "/client/new.dat", Attrs: set.Files[0].Attrs}
	ins, err := cl.Insert([]*smartstore.File{f})
	if err != nil {
		t.Fatal(err)
	}
	if ins.Inserted != 1 || len(ins.IDs) != 1 || ins.IDs[0] == 0 {
		t.Fatalf("insert response %+v", ins)
	}

	if _, err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	pt, err := cl.Point("/client/new.dat")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Count != 1 || pt.IDs[0] != ins.IDs[0] {
		t.Fatalf("point after insert+flush: %+v want id %d", pt, ins.IDs[0])
	}

	f.ID = ins.IDs[0]
	f.Attrs[smartstore.AttrSize] = 777
	mod, err := cl.Modify(f)
	if err != nil {
		t.Fatal(err)
	}
	if !mod.Found {
		t.Fatal("modify did not find inserted file")
	}

	del, err := cl.Delete(f.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !del.Found {
		t.Fatal("delete did not find file")
	}
	del2, err := cl.Delete(f.ID)
	if err != nil {
		t.Fatal(err)
	}
	if del2.Found {
		t.Fatal("double delete reported found")
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.Epoch == 0 {
		t.Fatal("mutations did not advance the epoch")
	}
}

func TestClientCachedBit(t *testing.T) {
	cl, _, _ := newServedStore(t)
	attrs := []smartstore.Attr{smartstore.AttrMTime}
	lo, hi := []float64{0}, []float64{1e9}

	first, err := cl.Range(attrs, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Range(attrs, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || !second.Cached {
		t.Fatalf("cached bits: first=%v second=%v, want false/true", first.Cached, second.Cached)
	}
}

func TestClientUnifiedQueryAndBatch(t *testing.T) {
	cl, store, set := newServedStore(t)
	ctx := context.Background()
	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes}
	anchor := set.Files[42]

	// One query with options: records travel inline, the limit is
	// honoured and reported.
	resp, err := cl.Query(ctx, smartstore.NewRangeQuery(attrs,
		[]float64{0, 0}, []float64{1e9, 1e12}).
		WithOptions(smartstore.QueryOptions{Limit: 3, IncludeRecords: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.IDs) != 3 || !resp.Truncated {
		t.Fatalf("limited query: %d ids truncated=%v", len(resp.IDs), resp.Truncated)
	}
	if len(resp.Records) != 3 {
		t.Fatalf("records not inlined: %d", len(resp.Records))
	}
	for i, rec := range resp.Records {
		if rec.ID != resp.IDs[i] {
			t.Fatalf("record[%d] id %d != ids[%d] %d", i, rec.ID, i, resp.IDs[i])
		}
		if _, ok := store.FileByID(rec.ID); !ok {
			t.Fatalf("record id %d unknown to the store", rec.ID)
		}
	}

	// A mixed batch answers in order.
	batch, err := cl.QueryBatch(ctx, []smartstore.Query{
		smartstore.NewPointQuery(anchor.Path),
		smartstore.NewTopKQuery(attrs, []float64{
			anchor.Attrs[smartstore.AttrMTime],
			anchor.Attrs[smartstore.AttrReadBytes]}, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("%d results for 2 queries", len(batch.Results))
	}
	if batch.Results[0].Kind != "point" || batch.Results[1].Kind != "topk" {
		t.Fatalf("batch order not preserved: %q, %q",
			batch.Results[0].Kind, batch.Results[1].Kind)
	}
	if batch.Results[0].Error != "" || batch.Results[1].Error != "" {
		t.Fatalf("batch member failed: %+v", batch.Results)
	}
	if batch.Results[1].Count != 5 {
		t.Fatalf("batch topk answered %d ids", batch.Results[1].Count)
	}

	// A cancelled context aborts the round trip client-side.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := cl.Query(cancelled, smartstore.NewPointQuery(anchor.Path)); err == nil {
		t.Fatal("cancelled-context query did not error")
	}
}

func TestClientErrors(t *testing.T) {
	cl, _, _ := newServedStore(t)

	// Server-side validation surfaces as a typed error.
	if _, err := cl.TopK([]smartstore.Attr{smartstore.AttrMTime}, []float64{0}, 0); err == nil {
		t.Fatal("k=0 top-k did not error")
	}

	// A dead endpoint errors rather than hanging.
	dead := New("127.0.0.1:1")
	if dead.Healthy() {
		t.Fatal("dead endpoint reported healthy")
	}
	if _, err := dead.Stats(); err == nil {
		t.Fatal("stats against dead endpoint did not error")
	}
}

// flakyHandler answers failures times with failCode, then delegates to
// ok. It counts every request it sees.
type flakyHandler struct {
	mu       sync.Mutex
	failures int
	failCode int
	hits     int
	ok       http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.hits++
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	f.mu.Unlock()
	if fail {
		w.WriteHeader(f.failCode)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "induced failure"})
		return
	}
	f.ok.ServeHTTP(w, r)
}

func (f *flakyHandler) seen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits
}

func newFlakyStore(t testing.TB, failures, failCode int, opts Options) (*Client, *flakyHandler) {
	t.Helper()
	set, err := smartstore.GenerateTrace("EECS", 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fh := &flakyHandler{failures: failures, failCode: failCode, ok: server.New(store, server.Options{})}
	ts := httptest.NewServer(fh)
	t.Cleanup(ts.Close)
	return NewWithOptions(ts.URL, opts), fh
}

func TestClientRetriesIdempotentReads(t *testing.T) {
	var retried []string
	cl, fh := newFlakyStore(t, 2, http.StatusServiceUnavailable, Options{
		Retries:      2,
		RetryBackoff: time.Millisecond,
		OnRetry: func(path string, attempt int, err error) {
			retried = append(retried, path)
		},
	})
	resp, err := cl.Query(context.Background(), smartstore.NewPointQuery("/nope"))
	if err != nil {
		t.Fatalf("query did not survive two transient failures: %v", err)
	}
	if resp.Count != 0 {
		t.Fatalf("unexpected hits: %+v", resp)
	}
	if fh.seen() != 3 {
		t.Fatalf("server saw %d attempts, want 3", fh.seen())
	}
	if len(retried) != 2 || retried[0] != "/v1/query" {
		t.Fatalf("OnRetry observed %v", retried)
	}
}

func TestClientRetryBudgetExhausts(t *testing.T) {
	cl, fh := newFlakyStore(t, 3, http.StatusServiceUnavailable, Options{
		Retries:      1,
		RetryBackoff: time.Millisecond,
	})
	_, err := cl.Query(context.Background(), smartstore.NewPointQuery("/nope"))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retries surfaced %v, want the 503", err)
	}
	if fh.seen() != 2 {
		t.Fatalf("server saw %d attempts, want 2 (1 + 1 retry)", fh.seen())
	}
}

func TestClientNeverRetriesClientErrors(t *testing.T) {
	cl, fh := newFlakyStore(t, 5, http.StatusBadRequest, Options{
		Retries:      3,
		RetryBackoff: time.Millisecond,
	})
	_, err := cl.Query(context.Background(), smartstore.NewPointQuery("/nope"))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("got %v, want the 400", err)
	}
	if fh.seen() != 1 {
		t.Fatalf("a 400 was retried: server saw %d attempts", fh.seen())
	}
}

func TestClientNeverRetriesMutations(t *testing.T) {
	cl, fh := newFlakyStore(t, 5, http.StatusServiceUnavailable, Options{
		Retries:      3,
		RetryBackoff: time.Millisecond,
	})
	_, err := cl.Insert([]*smartstore.File{{Path: "/m.dat"}})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want the 503", err)
	}
	if fh.seen() != 1 {
		t.Fatalf("a mutation was retried: server saw %d attempts (a timed-out insert may have landed)", fh.seen())
	}
	if _, err := cl.Delete(7); fh.seen() != 2 {
		t.Fatalf("delete retried: %d attempts total (err %v)", fh.seen(), err)
	}
}
