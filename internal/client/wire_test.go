package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	smartstore "repro"
	"repro/internal/server"
	"repro/internal/wire"
)

// newServedStoreWire is newServedStore with a chosen wire mode, also
// returning the daemon URL for extra clients.
func newServedStoreWire(t testing.TB, mode WireMode) (*Client, string, *smartstore.TraceSet) {
	t.Helper()
	set, err := smartstore.GenerateTrace("EECS", 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	store, err := smartstore.Build(set.Files, smartstore.Config{Units: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(store, server.Options{}))
	t.Cleanup(ts.Close)
	return NewWithOptions(ts.URL, Options{Wire: mode}), ts.URL, set
}

// TestClientWireModes: the three modes return identical answers; auto
// latches binary after the first response, json never negotiates it.
func TestClientWireModes(t *testing.T) {
	clAuto, url, set := newServedStoreWire(t, WireAuto)
	clJSON := NewWithOptions(url, Options{Wire: WireJSON})
	clBin := NewWithOptions(url, Options{Wire: WireBinary})

	if clAuto.BinaryNegotiated() {
		t.Fatal("auto client claims binary before any response")
	}
	attrs := []smartstore.Attr{smartstore.AttrMTime}
	q := smartstore.NewRangeQuery(attrs, []float64{0}, []float64{1e9})
	q.Options.Limit = 25

	respAuto, err := clAuto.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !clAuto.BinaryNegotiated() {
		t.Fatal("auto client did not latch binary against a binary-capable daemon")
	}
	respJSON, err := clJSON.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if clJSON.BinaryNegotiated() {
		t.Fatal("forced-JSON client negotiated binary")
	}
	respBin, err := clBin.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// The cache served the repeat queries, so the reports replay and
	// the three answers must be fully identical — Cached excepted on
	// the first.
	respAuto.Cached, respJSON.Cached, respBin.Cached = false, false, false
	if !reflect.DeepEqual(respAuto, respJSON) || !reflect.DeepEqual(respJSON, respBin) {
		t.Fatalf("wire modes disagree:\n  auto: %+v\n  json: %+v\n  bin:  %+v",
			respAuto, respJSON, respBin)
	}

	// Batch through the binary codec matches JSON too.
	qs := []smartstore.Query{
		smartstore.NewPointQuery(set.Files[1].Path),
		q,
	}
	bAuto, err := clAuto.QueryBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	bJSON, err := clJSON.QueryBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bAuto.Results {
		bAuto.Results[i].Cached = false
		bJSON.Results[i].Cached = false
	}
	if !reflect.DeepEqual(bAuto, bJSON) {
		t.Fatalf("batch answers disagree across codecs")
	}
}

// TestClientFallsBackToJSON: against a daemon that ignores the Accept
// header (a pre-binary smartstored), the auto client keeps speaking
// JSON and never latches binary.
func TestClientFallsBackToJSON(t *testing.T) {
	var sawBinaryBody atomic.Bool
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if wire.IsBinary(r.Header.Get("Content-Type")) {
			sawBinaryBody.Store(true)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"kind":"point","ids":[5],"count":1,"cached":false,"report":{"latency_sec":0,"messages":1,"hops":0,"units_searched":1}}`))
	}))
	defer legacy.Close()

	cl := New(legacy.URL)
	for i := 0; i < 3; i++ {
		resp, err := cl.Query(context.Background(), smartstore.NewPointQuery("/x"))
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.IDs) != 1 || resp.IDs[0] != 5 {
			t.Fatalf("bad decode via fallback: %+v", resp)
		}
	}
	if cl.BinaryNegotiated() {
		t.Fatal("client latched binary against a JSON-only daemon")
	}
	if sawBinaryBody.Load() {
		t.Fatal("auto client sent a binary body before the daemon ever answered binary")
	}
}
