package trace

import (
	"strings"
	"testing"

	"repro/internal/metadata"
	"repro/internal/stats"
)

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 3 {
		t.Fatalf("Specs() returned %d, want 3", len(specs))
	}
	wantNames := []string{"HP", "MSN", "EECS"}
	for i, s := range specs {
		if s.Name != wantNames[i] {
			t.Fatalf("spec %d = %q, want %q", i, s.Name, wantNames[i])
		}
		if len(s.Stats) != 5 {
			t.Fatalf("%s has %d stats rows, want 5 (per paper tables)", s.Name, len(s.Stats))
		}
		if s.DefaultTIF <= 0 {
			t.Fatalf("%s DefaultTIF = %d", s.Name, s.DefaultTIF)
		}
	}
}

func TestPublishedScaleFactors(t *testing.T) {
	// Tables 1–3: scaled = original × TIF for the headline counters.
	for _, s := range Specs() {
		for _, st := range s.Stats {
			ratio := st.Scaled / st.Original
			if ratio < float64(s.DefaultTIF)*0.99 || ratio > float64(s.DefaultTIF)*1.01 {
				t.Errorf("%s %q: scaled/original = %v, want ≈ %d", s.Name, st.Label, ratio, s.DefaultTIF)
			}
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("MSN")
	if err != nil || s.Name != "MSN" {
		t.Fatalf("ByName(MSN) = %v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MSN().Generate(200, 7)
	b := MSN().Generate(200, 7)
	if len(a.Files) != len(b.Files) {
		t.Fatal("lengths differ")
	}
	for i := range a.Files {
		if a.Files[i].Path != b.Files[i].Path || a.Files[i].Attrs != b.Files[i].Attrs {
			t.Fatalf("file %d differs between identical seeds", i)
		}
	}
	c := MSN().Generate(200, 8)
	same := true
	for i := range a.Files {
		if a.Files[i].Attrs != c.Files[i].Attrs {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestGeneratePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate(0) did not panic")
		}
	}()
	HP().Generate(0, 1)
}

func TestGeneratedAttributesPlausible(t *testing.T) {
	for _, spec := range Specs() {
		set := spec.Generate(500, 42)
		var accessed, sized int
		for _, f := range set.Files {
			if f.Attrs[metadata.AttrSize] <= 0 {
				t.Fatalf("%s: non-positive size", spec.Name)
			}
			sized++
			if f.Attrs[metadata.AttrCTime] < 0 || f.Attrs[metadata.AttrCTime] > spec.DurationSec {
				t.Fatalf("%s: ctime %v outside trace duration", spec.Name, f.Attrs[metadata.AttrCTime])
			}
			if f.Attrs[metadata.AttrMTime] < f.Attrs[metadata.AttrCTime] {
				t.Fatalf("%s: mtime before ctime", spec.Name)
			}
			if f.Attrs[metadata.AttrAccessFreq] > 0 {
				accessed++
			}
			if f.Attrs[metadata.AttrReadBytes] < 0 || f.Attrs[metadata.AttrWriteBytes] < 0 {
				t.Fatalf("%s: negative I/O volume", spec.Name)
			}
		}
		if accessed < 100 {
			t.Fatalf("%s: only %d/500 files accessed; request replay broken?", spec.Name, accessed)
		}
		if !set.Norm.Fitted() {
			t.Fatalf("%s: normalizer not fitted", spec.Name)
		}
	}
}

func TestPopularitySkew(t *testing.T) {
	// Zipf popularity: the top decile of files by access count should
	// absorb a large share of requests (cf. Filecules: 45% of requests
	// visit 6.5% of files).
	set := MSN().Generate(1000, 3)
	var freqs []float64
	var total float64
	for _, f := range set.Files {
		freqs = append(freqs, f.Attrs[metadata.AttrAccessFreq])
		total += f.Attrs[metadata.AttrAccessFreq]
	}
	// top 10% by frequency
	top := 0.0
	for i := 0; i < 100; i++ {
		max, arg := -1.0, -1
		for j, v := range freqs {
			if v > max {
				max, arg = v, j
			}
		}
		top += max
		freqs[arg] = -2
	}
	if share := top / total; share < 0.4 {
		t.Fatalf("top-10%% files take %v of requests, want ≥ 0.4 (Zipf skew)", share)
	}
}

func TestScaleReplication(t *testing.T) {
	base := EECS().Generate(100, 5)
	scaled := base.Scale(4)
	if scaled.TIF != 4 {
		t.Fatalf("TIF = %d, want 4", scaled.TIF)
	}
	if len(scaled.Files) != 400 {
		t.Fatalf("scaled files = %d, want 400", len(scaled.Files))
	}
	// IDs unique.
	seen := map[uint64]bool{}
	for _, f := range scaled.Files {
		if seen[f.ID] {
			t.Fatalf("duplicate id %d after scaling", f.ID)
		}
		seen[f.ID] = true
	}
	// Sub-trace IDs present in paths, histogram preserved.
	subCount := map[int]int{}
	for _, f := range scaled.Files {
		subCount[f.SubTrace]++
		if !strings.HasPrefix(f.Path, "/sub") {
			t.Fatalf("path %q lacks sub-trace prefix", f.Path)
		}
	}
	for sub, c := range subCount {
		if c != 100 {
			t.Fatalf("sub-trace %d has %d files, want 100", sub, c)
		}
	}
	// Attribute histogram identical: every base attribute vector appears
	// exactly TIF times.
	if scaled.Files[0].Attrs != base.Files[0].Attrs {
		t.Fatal("scaling altered attribute values")
	}
}

func TestScaleIdentity(t *testing.T) {
	base := HP().Generate(50, 1)
	if got := base.Scale(1); got != base {
		t.Fatal("Scale(1) should return the receiver")
	}
}

func TestScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Scale(0) did not panic")
		}
	}()
	HP().Generate(10, 1).Scale(0)
}

func TestGenerateScaled(t *testing.T) {
	set := MSN().GenerateScaled(50, 3, 9)
	if len(set.Files) != 150 || set.TIF != 3 {
		t.Fatalf("GenerateScaled = %d files TIF %d", len(set.Files), set.TIF)
	}
}

func TestQueryGenRangeWithinBounds(t *testing.T) {
	set := MSN().Generate(300, 11)
	for _, dist := range stats.Distributions {
		g := NewQueryGen(set, dist, nil, 13)
		for i := 0; i < 100; i++ {
			r := g.Range(0.1)
			for d, a := range r.Attrs {
				lo, hi := set.Norm.Bounds(a)
				if r.Lo[d] < lo-1e-9 || r.Hi[d] > hi+1e-9 {
					t.Fatalf("%v range [%v,%v] outside attr bounds [%v,%v]",
						dist, r.Lo[d], r.Hi[d], lo, hi)
				}
				if r.Hi[d] < r.Lo[d] {
					t.Fatal("inverted range")
				}
			}
		}
	}
}

func TestQueryGenTopK(t *testing.T) {
	set := EECS().Generate(300, 17)
	g := NewQueryGen(set, stats.Zipf, nil, 19)
	q := g.TopK(8)
	if q.K != 8 || len(q.Point) != len(DefaultQueryAttrs()) {
		t.Fatalf("TopK = %+v", q)
	}
	for d, a := range q.Attrs {
		lo, hi := set.Norm.Bounds(a)
		if q.Point[d] < lo || q.Point[d] > hi {
			t.Fatalf("topk point outside bounds")
		}
	}
}

func TestQueryGenPoint(t *testing.T) {
	set := HP().Generate(100, 23)
	g := NewQueryGen(set, stats.Uniform, nil, 29)
	hits := 0
	for i := 0; i < 1000; i++ {
		p := g.Point(0.8)
		if !strings.HasPrefix(p.Filename, "/absent/") {
			hits++
		}
	}
	if hits < 700 || hits > 900 {
		t.Fatalf("hit fraction %d/1000, want ≈ 800", hits)
	}
}

func TestQueryGenCustomAttrs(t *testing.T) {
	set := HP().Generate(100, 31)
	attrs := []metadata.Attr{metadata.AttrSize}
	g := NewQueryGen(set, stats.Uniform, attrs, 37)
	r := g.Range(0.2)
	if len(r.Attrs) != 1 || r.Attrs[0] != metadata.AttrSize {
		t.Fatalf("custom attrs not honoured: %+v", r.Attrs)
	}
}
