// Package trace synthesizes the three file-system workloads the paper
// evaluates on — HP [17], MSN [18] and EECS [19] — and implements the
// trace scale-up mechanism of §5.1.
//
// The original traces are proprietary, so each Spec carries the
// published summary statistics (Tables 1–3) and a generator that
// produces a sampled population whose attribute marginals reproduce the
// characteristics the evaluation depends on: Zipf-skewed file
// popularity ("fewer than 1% clients issue 50% file requests"),
// lognormal file sizes, directory-skewed namespaces (locality ratios
// below 1%), and bursty temporal locality ("over 60% re-open operations
// take place within one minute").
//
// Scale-up follows §5.1 exactly: a trace is decomposed into TIF
// sub-traces, each file gains a unique sub-trace ID, all sub-traces
// start at time zero and replay concurrently, preserving chronological
// order within each sub-trace.
package trace

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/stats"
)

// Spec describes one of the paper's source traces: its published
// statistics plus the generator parameters tuned to reproduce them.
type Spec struct {
	Name string // trace name: "HP", "MSN" or "EECS"
	// Published original statistics (Tables 1–3), in the units the
	// paper reports.
	Stats []Stat
	// DefaultTIF is the Trace Intensifying Factor used in the paper's
	// scale-up table for this trace.
	DefaultTIF int
	// NominalFiles is the published file-population size of the original
	// (unscaled) trace. The cost model's virtual-population scaling maps
	// an in-memory sample onto NominalFiles × TIF records.
	NominalFiles float64

	// Generator parameters.
	Users        int     // distinct users (directory roots)
	DirsPerUser  int     // project/home subdirectories per user
	SizeMu       float64 // lognormal log-mean of file size (bytes)
	SizeSigma    float64 // lognormal log-sigma
	DurationSec  float64 // trace duration in seconds
	ReadFrac     float64 // fraction of requests that are reads
	MeanIOBytes  float64 // mean bytes moved per request
	PopularSkew  float64 // Zipf skew of file popularity
	ReqPerFile   float64 // average requests per file in the sample
	ReopenBursty float64 // fraction of accesses that are <1min re-opens
}

// Stat is a single row of a trace-characteristics table: original value
// and its TIF-scaled counterpart.
type Stat struct {
	Label    string  // what the row measures, as the paper names it
	Original float64 // published value
	Scaled   float64 // value after TIF scale-up
	Unit     string  // reporting unit ("M", "GB", ...)
}

// HP returns the HP trace spec (Table 1: 94.7M requests, 32 active
// users, 207 accounts, 0.969M active / 4M total files; TIF=80).
func HP() *Spec {
	return &Spec{
		Name:         "HP",
		DefaultTIF:   80,
		NominalFiles: 4e6, // Table 1: 4M total files
		Stats: []Stat{
			{"request", 94.7, 7576, "million"},
			{"active users", 32, 2560, ""},
			{"user accounts", 207, 16560, ""},
			{"active files", 0.969, 77.52, "million"},
			{"total files", 4, 320, "million"},
		},
		Users:        207,
		DirsPerUser:  12,
		SizeMu:       9.5, // median ≈ 13 KB
		SizeSigma:    2.2,
		DurationSec:  10 * 24 * 3600,
		ReadFrac:     0.58,
		MeanIOBytes:  24 << 10,
		PopularSkew:  1.05,
		ReqPerFile:   23.7, // 94.7M requests / 4M files
		ReopenBursty: 0.6,
	}
}

// MSN returns the MSN trace spec (Table 2: 1.25M files, 3.30M reads,
// 1.17M writes, 6 hours, 4.47M total I/O; TIF=100).
func MSN() *Spec {
	return &Spec{
		Name:         "MSN",
		DefaultTIF:   100,
		NominalFiles: 1.25e6, // Table 2: 1.25M files
		Stats: []Stat{
			{"# of files", 1.25, 125, "million"},
			{"total READ", 3.30, 330, "million"},
			{"total WRITE", 1.17, 117, "million"},
			{"duration", 6, 600, "hours"},
			{"total I/O", 4.47, 447, "million"},
		},
		Users:        64,
		DirsPerUser:  20,
		SizeMu:       10.4, // production server files, median ≈ 33 KB
		SizeSigma:    1.9,
		DurationSec:  6 * 3600,
		ReadFrac:     3.30 / 4.47,
		MeanIOBytes:  56 << 10,
		PopularSkew:  1.2,
		ReqPerFile:   4.47 / 1.25,
		ReopenBursty: 0.65,
	}
}

// EECS returns the EECS NFS trace spec (Table 3: 0.46M reads / 5.1GB,
// 0.667M writes / 9.1GB, 4.44M total operations; TIF=150).
func EECS() *Spec {
	return &Spec{
		Name:         "EECS",
		DefaultTIF:   150,
		NominalFiles: 0.74e6, // ≈ 4.44M operations (Table 3) / ~6 req/file
		Stats: []Stat{
			{"total READ", 0.46, 69, "million"},
			{"READ size", 5.1, 765, "GB"},
			{"total WRITE", 0.667, 100.05, "million"},
			{"WRITE size", 9.1, 1365, "GB"},
			{"total operations", 4.44, 666, "million"},
		},
		Users:        140,
		DirsPerUser:  8,
		SizeMu:       8.9, // email + research workload, small files
		SizeSigma:    2.4,
		DurationSec:  30 * 24 * 3600,
		ReadFrac:     0.46 / (0.46 + 0.667),
		MeanIOBytes:  12 << 10,
		PopularSkew:  0.95,
		ReqPerFile:   6.0,
		ReopenBursty: 0.62,
	}
}

// Specs returns all three trace specs in the paper's order.
func Specs() []*Spec { return []*Spec{HP(), MSN(), EECS()} }

// ByName returns the spec with the given (case-sensitive) name.
func ByName(name string) (*Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("trace: unknown trace %q (want HP, MSN or EECS)", name)
}

// Set is a generated workload: the sampled file population with fully
// populated attributes, plus the normalizer fitted over it.
type Set struct {
	Spec  *Spec                // the trace this set was synthesized from
	TIF   int                  // trace-intensifying factor applied
	Files []*metadata.File     // the sampled population
	Norm  *metadata.Normalizer // normalizer fitted to the population
}

// Generate samples nFiles files from the spec's distributions and
// simulates the request stream over them so behavioural attributes
// (read/write volume, access frequency, atime/mtime) carry the trace's
// popularity skew and temporal locality. The result is deterministic in
// seed.
func (s *Spec) Generate(nFiles int, seed uint64) *Set {
	if nFiles <= 0 {
		panic(fmt.Sprintf("trace: nFiles %d must be positive", nFiles))
	}
	rng := stats.NewRNG(seed)
	files := make([]*metadata.File, nFiles)

	for i := range files {
		user := i % s.Users
		dir := rng.IntN(s.DirsPerUser)
		f := &metadata.File{
			ID:   uint64(i + 1),
			Path: fmt.Sprintf("/%s/u%03d/d%02d/f%07d.dat", s.Name, user, dir, i),
		}
		f.Attrs[metadata.AttrSize] = stats.Lognormal(rng, s.SizeMu, s.SizeSigma)
		// Creation times skew early: most of a trace's files pre-exist.
		ct := s.DurationSec * rng.Float64() * rng.Float64()
		f.Attrs[metadata.AttrCTime] = ct
		f.Attrs[metadata.AttrMTime] = ct
		f.Attrs[metadata.AttrATime] = ct
		files[i] = f
	}

	// Replay a request stream with Zipf popularity over a random
	// permutation of the population (so popularity is independent of
	// creation order).
	perm := rng.Perm(nFiles)
	zipf := stats.NewZipfGen(rng, s.PopularSkew, nFiles)
	nReq := int(float64(nFiles) * s.ReqPerFile)
	for r := 0; r < nReq; r++ {
		f := files[perm[zipf.Next()]]
		// Bursty temporal locality: re-opens arrive within a minute of
		// the previous access; cold accesses land anywhere after create.
		var at float64
		if f.Attrs[metadata.AttrAccessFreq] > 0 && rng.Float64() < s.ReopenBursty {
			at = f.Attrs[metadata.AttrATime] + rng.Float64()*60
		} else {
			at = f.Attrs[metadata.AttrCTime] +
				rng.Float64()*(s.DurationSec-f.Attrs[metadata.AttrCTime])
		}
		if at > s.DurationSec {
			at = s.DurationSec
		}
		f.Attrs[metadata.AttrATime] = at
		f.Attrs[metadata.AttrAccessFreq]++
		bytes := s.MeanIOBytes * (0.25 + 1.5*rng.Float64())
		if rng.Float64() < s.ReadFrac {
			f.Attrs[metadata.AttrReadBytes] += bytes
		} else {
			f.Attrs[metadata.AttrWriteBytes] += bytes
			f.Attrs[metadata.AttrMTime] = at
		}
	}

	set := &Set{Spec: s, TIF: 1, Files: files, Norm: &metadata.Normalizer{}}
	set.Norm.Fit(files)
	return set
}

// Scale applies the §5.1 scale-up: the set is decomposed into tif
// sub-traces replayed concurrently. Each replica file gains a unique
// sub-trace ID in its path and identity while keeping its attribute
// histogram; concurrent replay at time zero is modelled by keeping the
// time attributes unchanged. Scale(1) returns the set itself.
func (s *Set) Scale(tif int) *Set {
	if tif < 1 {
		panic(fmt.Sprintf("trace: TIF %d must be ≥ 1", tif))
	}
	if tif == 1 {
		return s
	}
	files := make([]*metadata.File, 0, len(s.Files)*tif)
	var id uint64
	for sub := 0; sub < tif; sub++ {
		for _, f := range s.Files {
			id++
			nf := &metadata.File{
				ID:       id,
				Path:     fmt.Sprintf("/sub%03d%s", sub, f.Path),
				SubTrace: sub,
				Attrs:    f.Attrs,
			}
			files = append(files, nf)
		}
	}
	out := &Set{Spec: s.Spec, TIF: tif, Files: files, Norm: &metadata.Normalizer{}}
	out.Norm.Fit(files)
	return out
}

// GenerateScaled is shorthand for Generate(baseFiles, seed).Scale(tif).
func (s *Spec) GenerateScaled(baseFiles, tif int, seed uint64) *Set {
	return s.Generate(baseFiles, seed).Scale(tif)
}

// QueryGen synthesizes complex queries over a generated set following
// §5.1: "statistically generate random queries in a multidimensional
// space ... derived from the available I/O traces". Query coordinates
// are anchored on the attribute values of a file drawn under the
// Uniform, Gauss, or Zipf distribution over the popularity-ordered
// population, so queries probe populated regions of the attribute space
// (raw random coordinates in an outlier-stretched space almost never
// match anything): Uniform anchors uniformly across all files, Gauss
// concentrates around the popularity median, and Zipf concentrates on
// the hot head — reproducing the paper's observation that "under a Zipf
// or Gauss distribution, files are mutually associated with a higher
// degree than under uniform distribution" (§5.4.2).
type QueryGen struct {
	set     *Set
	dist    stats.Distribution
	sampler *stats.Sampler
	rng     *rand.Rand
	attrs   []metadata.Attr
	byPop   []*metadata.File // files ordered by descending access frequency
	zipf    *stats.ZipfGen
}

// DefaultQueryAttrs are the dimensions the paper's example queries use:
// last-revision time and read/write volumes ("revised between 10:00 and
// 16:20, read 30–50MB, written 5–8MB").
func DefaultQueryAttrs() []metadata.Attr {
	return []metadata.Attr{metadata.AttrMTime, metadata.AttrReadBytes, metadata.AttrWriteBytes}
}

// NewQueryGen builds a generator for the set under dist, deterministic
// in seed. attrs nil selects DefaultQueryAttrs.
func NewQueryGen(set *Set, dist stats.Distribution, attrs []metadata.Attr, seed uint64) *QueryGen {
	if attrs == nil {
		attrs = DefaultQueryAttrs()
	}
	rng := stats.NewRNG(seed)
	byPop := append([]*metadata.File(nil), set.Files...)
	sort.SliceStable(byPop, func(i, j int) bool {
		fi := byPop[i].Attrs[metadata.AttrAccessFreq]
		fj := byPop[j].Attrs[metadata.AttrAccessFreq]
		if fi != fj {
			return fi > fj
		}
		return byPop[i].ID < byPop[j].ID
	})
	g := &QueryGen{
		set:     set,
		dist:    dist,
		sampler: stats.NewSampler(dist, rng),
		rng:     rng,
		attrs:   attrs,
		byPop:   byPop,
	}
	if dist == stats.Zipf {
		g.zipf = stats.NewZipfGen(rng, 1.1, len(byPop))
	}
	return g
}

// anchor draws the file whose attribute values seed the next query's
// coordinates, under the generator's distribution over the
// popularity-ordered population.
func (g *QueryGen) anchor() *metadata.File {
	n := len(g.byPop)
	var idx int
	switch g.dist {
	case stats.Zipf:
		idx = g.zipf.Next()
	case stats.Gauss:
		idx = int(float64(n)/2 + g.rng.NormFloat64()*float64(n)/6)
	default:
		idx = g.rng.IntN(n)
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return g.byPop[idx]
}

// Range draws one range query whose per-dimension windows cover the
// given fraction (0 < width ≤ 1) of each attribute's observed span,
// centred near the anchor file's attribute values.
func (g *QueryGen) Range(width float64) query.Range {
	f := g.anchor()
	lo := make([]float64, len(g.attrs))
	hi := make([]float64, len(g.attrs))
	for i, a := range g.attrs {
		alo, ahi := g.set.Norm.Bounds(a)
		span := ahi - alo
		w := span * width
		// Jitter the window so the anchor is not always dead-centre.
		centre := f.Attrs[a] + g.rng.NormFloat64()*w/4
		lo[i] = clampF(centre-w/2, alo, ahi-w)
		hi[i] = lo[i] + w
	}
	return query.NewRange(g.attrs, lo, hi)
}

// TopK draws one top-k query whose point is a jittered anchor.
func (g *QueryGen) TopK(k int) query.TopK {
	f := g.anchor()
	p := make([]float64, len(g.attrs))
	for i, a := range g.attrs {
		alo, ahi := g.set.Norm.Bounds(a)
		span := ahi - alo
		p[i] = clampF(f.Attrs[a]+g.rng.NormFloat64()*span*0.01, alo, ahi)
	}
	return query.NewTopK(g.attrs, p, k)
}

func clampF(v, lo, hi float64) float64 {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Point draws a filename point query. With probability hitRate the name
// is an existing file's path drawn with the trace's popularity skew
// approximated by uniform choice; otherwise it is an absent name.
func (g *QueryGen) Point(hitRate float64) query.Point {
	if g.rng.Float64() < hitRate {
		f := g.set.Files[g.rng.IntN(len(g.set.Files))]
		return query.Point{Filename: f.Path}
	}
	return query.Point{Filename: fmt.Sprintf("/absent/%d.tmp", g.rng.Uint64())}
}
