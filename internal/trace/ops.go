package trace

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/stats"
)

// OpKind identifies one operation of a generated workload stream.
type OpKind uint8

const (
	// OpPoint is an exact-pathname lookup.
	OpPoint OpKind = iota
	// OpRange is a multi-dimensional range query.
	OpRange
	// OpTopK is a top-k nearest-neighbour query.
	OpTopK
	// OpInsert creates a new file whose attributes are drawn from the
	// trace's distributions.
	OpInsert
	// OpDelete removes an existing file by id.
	OpDelete
	// OpModify rewrites an existing file's attribute vector.
	OpModify
)

// String returns the wire name of the kind.
func (k OpKind) String() string {
	switch k {
	case OpPoint:
		return "point"
	case OpRange:
		return "range"
	case OpTopK:
		return "topk"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpModify:
		return "modify"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Mix weighs the operation kinds of a stream. Weights are relative (they
// need not sum to 1); a zero-value Mix defaults to the read-mostly serve
// mix (2 point : 3 range : 4 top-k : 1 batch-ish top-k).
type Mix struct {
	// Relative weight of each op kind; only ratios matter, and an
	// all-zero mix selects the read-mostly default (2/3/5 queries).
	Point, Range, TopK, Insert, Delete, Modify float64
}

func (m Mix) total() float64 {
	return m.Point + m.Range + m.TopK + m.Insert + m.Delete + m.Modify
}

func (m Mix) withDefaults() Mix {
	if m.total() <= 0 {
		return Mix{Point: 2, Range: 3, TopK: 5}
	}
	return m
}

// StreamSpec parameterizes one deterministic operation stream over a
// generated Set — the scenario composition surface the evaluation
// harness (internal/eval, cmd/smarteval) sweeps over. The zero value is
// a steady, Zipf-anchored, read-only mix over DefaultQueryAttrs.
type StreamSpec struct {
	// Mix weighs the operation kinds.
	Mix Mix
	// Dist is the anchor distribution of query coordinates over the
	// popularity-ordered population (§5.1): Uniform, Gauss or Zipf.
	Dist stats.Distribution
	// Attrs names the queried dimensions (nil → DefaultQueryAttrs). A
	// multi-tenant scenario interleaves streams with different subsets.
	Attrs []metadata.Attr
	// RangeWidth is the per-dimension window fraction of range queries
	// (0 → 0.05; scan-heavy scenarios use wide windows).
	RangeWidth float64
	// K is the top-k answer size (0 → 8).
	K int
	// PointHitRate is the fraction of point queries naming an existing
	// file (0 → 0.8).
	PointHitRate float64

	// Arrival shaping. A zero OpGap generates a dense (closed-loop)
	// stream: every op is due at time zero. With OpGap > 0, ops arrive
	// OpGap seconds apart; with BurstLen > 0 they instead arrive in
	// back-to-back bursts of BurstLen separated by BurstGap seconds —
	// the bursty temporal locality knob.
	OpGap    float64 // seconds between consecutive ops (0 = dense)
	BurstLen int     // ops per burst (0 = no bursting)
	BurstGap float64 // seconds between burst starts
}

func (s StreamSpec) withDefaults() StreamSpec {
	s.Mix = s.Mix.withDefaults()
	if s.Attrs == nil {
		s.Attrs = DefaultQueryAttrs()
	}
	if s.RangeWidth <= 0 {
		s.RangeWidth = 0.05
	}
	if s.K <= 0 {
		s.K = 8
	}
	if s.PointHitRate <= 0 {
		s.PointHitRate = 0.8
	}
	return s
}

// Op is one generated operation. Exactly the fields of its Kind are
// meaningful: Point/Range/TopK carry the prebuilt query, Insert carries
// a fresh File (ID zero — the serving layer allocates), Delete and
// Modify carry the target id (Modify also carries the replacement
// attribute vector in File).
type Op struct {
	Kind  OpKind         // which of the union's arms is populated
	Point query.Point    // OpPoint: the filename lookup
	Range query.Range    // OpRange: the multi-dimensional window
	TopK  query.TopK     // OpTopK: the anchor + k
	File  *metadata.File // OpInsert/OpModify: the record to write
	ID    uint64         // OpDelete/OpModify: the target file id
	// At is the op's arrival offset in seconds from stream start under
	// the spec's arrival shaping (0 for dense streams).
	At float64
}

// Fingerprint renders the op's full identity as a string — what the
// determinism tests and byte-identical replay comparisons hash. Two ops
// with equal fingerprints are the same operation.
func (o Op) Fingerprint() string {
	switch o.Kind {
	case OpPoint:
		return fmt.Sprintf("point at=%.6f path=%s", o.At, o.Point.Filename)
	case OpRange:
		return fmt.Sprintf("range at=%.6f attrs=%v lo=%v hi=%v", o.At, o.Range.Attrs, o.Range.Lo, o.Range.Hi)
	case OpTopK:
		return fmt.Sprintf("topk at=%.6f attrs=%v point=%v k=%d", o.At, o.TopK.Attrs, o.TopK.Point, o.TopK.K)
	case OpInsert:
		return fmt.Sprintf("insert at=%.6f path=%s attrs=%v", o.At, o.File.Path, o.File.Attrs)
	case OpDelete:
		return fmt.Sprintf("delete at=%.6f id=%d", o.At, o.ID)
	case OpModify:
		return fmt.Sprintf("modify at=%.6f id=%d attrs=%v", o.At, o.ID, o.File.Attrs)
	}
	return fmt.Sprintf("op(%d)", int(o.Kind))
}

// OpStream generates the deterministic operation sequence of one
// StreamSpec over a Set: same set, spec and seed ⇒ byte-identical op
// order (Op.Fingerprint), regardless of how the ops are later scheduled.
type OpStream struct {
	set     *Set
	spec    StreamSpec
	rng     *rand.Rand
	qg      *QueryGen
	mutIdx  *stats.ZipfGen // skewed target choice for delete/modify
	seq     int
	nextIns uint64
}

// NewOpStream builds a stream for the spec over the set, deterministic
// in seed. The underlying QueryGen derives its own seed from the
// stream's, so one seed pins both the coordinates and the op order.
func NewOpStream(set *Set, spec StreamSpec, seed uint64) *OpStream {
	spec = spec.withDefaults()
	return &OpStream{
		set:    set,
		spec:   spec,
		rng:    stats.NewRNG(seed),
		qg:     NewQueryGen(set, spec.Dist, spec.Attrs, seed^0xA5A5_5A5A_F00D_BEEF),
		mutIdx: stats.NewZipfGen(stats.NewRNG(seed+77), 1.05, len(set.Files)),
	}
}

// at computes the arrival offset of the op with ordinal i.
func (s *OpStream) at(i int) float64 {
	sp := s.spec
	if sp.BurstLen > 0 && sp.BurstGap > 0 {
		burst := i / sp.BurstLen
		within := i % sp.BurstLen
		return float64(burst)*sp.BurstGap + float64(within)*sp.OpGap
	}
	if sp.OpGap > 0 {
		return float64(i) * sp.OpGap
	}
	return 0
}

// Next draws the next operation. The stream is infinite; callers take
// as many ops as the run needs.
func (s *OpStream) Next() Op {
	m := s.spec.Mix
	u := s.rng.Float64() * m.total()
	op := Op{At: s.at(s.seq)}
	s.seq++
	switch {
	case u < m.Point:
		op.Kind = OpPoint
		op.Point = s.qg.Point(s.spec.PointHitRate)
	case u < m.Point+m.Range:
		op.Kind = OpRange
		op.Range = s.qg.Range(s.spec.RangeWidth)
	case u < m.Point+m.Range+m.TopK:
		op.Kind = OpTopK
		op.TopK = s.qg.TopK(s.spec.K)
	case u < m.Point+m.Range+m.TopK+m.Insert:
		op.Kind = OpInsert
		src := s.set.Files[s.mutIdx.Next()]
		s.nextIns++
		f := &metadata.File{Path: fmt.Sprintf("/stream/s%06d.dat", s.nextIns)}
		f.Attrs = src.Attrs
		// Jitter the behavioural attributes so inserts are not exact
		// clones (they stay inside the fitted normalization bounds).
		for _, a := range []metadata.Attr{metadata.AttrReadBytes, metadata.AttrWriteBytes} {
			lo, hi := s.set.Norm.Bounds(a)
			f.Attrs[a] = clampF(f.Attrs[a]*(0.5+s.rng.Float64()), lo, hi)
		}
		op.File = f
	case u < m.Point+m.Range+m.TopK+m.Insert+m.Delete:
		op.Kind = OpDelete
		op.ID = s.set.Files[s.mutIdx.Next()].ID
	default:
		op.Kind = OpModify
		src := s.set.Files[s.mutIdx.Next()]
		donor := s.set.Files[s.rng.IntN(len(s.set.Files))]
		f := &metadata.File{ID: src.ID, Path: src.Path, Attrs: donor.Attrs}
		op.ID = src.ID
		op.File = f
	}
	return op
}

// Take draws the next n operations.
func (s *OpStream) Take(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Interleave merges several per-tenant op sequences into one stream,
// picking the next tenant deterministically in seed and re-basing
// arrival offsets so tenants overlap — the multi-tenant composition of
// the evaluation harness. Each input sequence's internal order is
// preserved (the §5.1 sub-trace replay rule, applied to tenants).
func Interleave(seed uint64, tenants ...[]Op) []Op {
	rng := stats.NewRNG(seed ^ 0xC0FFEE)
	total := 0
	for _, t := range tenants {
		total += len(t)
	}
	out := make([]Op, 0, total)
	idx := make([]int, len(tenants))
	for len(out) < total {
		// Weight the draw by remaining ops so long tenants do not trail
		// in one solid run at the end.
		rem := 0
		for i, t := range tenants {
			rem += len(t) - idx[i]
		}
		u := rng.IntN(rem)
		for i, t := range tenants {
			n := len(t) - idx[i]
			if u < n {
				out = append(out, t[idx[i]])
				idx[i]++
				break
			}
			u -= n
		}
	}
	return out
}
