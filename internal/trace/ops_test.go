package trace

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/metadata"
	"repro/internal/stats"
)

// popFingerprint renders a generated population byte-for-byte: paths
// plus %x-formatted attributes (exact for float64, so no rounding can
// mask a divergence).
func popFingerprint(set *Set) string {
	var b strings.Builder
	for _, f := range set.Files {
		fmt.Fprintf(&b, "%d|%s|%x\n", f.ID, f.Path, f.Attrs)
	}
	return b.String()
}

// TestSeededDeterminismAllSpecs: same seed ⇒ byte-identical generated
// population across all three paper traces, and a different seed
// diverges. This is what makes eval runs reproducible in CI.
func TestSeededDeterminismAllSpecs(t *testing.T) {
	for _, spec := range []*Spec{HP(), MSN(), EECS()} {
		t.Run(spec.Name, func(t *testing.T) {
			a := popFingerprint(spec.Generate(500, 42))
			b := popFingerprint(spec.Generate(500, 42))
			if a != b {
				t.Fatal("same seed produced different populations")
			}
			c := popFingerprint(spec.Generate(500, 43))
			if a == c {
				t.Fatal("different seed produced identical population")
			}
		})
	}
}

// TestOpStreamDeterministic: same (set, spec, seed) ⇒ byte-identical op
// order across all three traces and every arrival/mix shape the eval
// scenarios use.
func TestOpStreamDeterministic(t *testing.T) {
	specs := map[string]StreamSpec{
		"read-zipf":    {Dist: stats.Zipf},
		"scan-uniform": {Dist: stats.Uniform, Mix: Mix{Range: 8, TopK: 1, Point: 1}, RangeWidth: 0.25},
		"insert-heavy": {Dist: stats.Zipf, Mix: Mix{Point: 1, Range: 2, TopK: 2, Insert: 4, Delete: 0.5, Modify: 0.5}},
		"bursty":       {Dist: stats.Gauss, BurstLen: 16, BurstGap: 0.02, OpGap: 0.0002},
		"tenant-attrs": {Dist: stats.Zipf, Attrs: []metadata.Attr{metadata.AttrSize, metadata.AttrATime}},
	}
	for _, tr := range []*Spec{HP(), MSN(), EECS()} {
		set := tr.Generate(400, 7)
		for name, sp := range specs {
			t.Run(tr.Name+"/"+name, func(t *testing.T) {
				a := NewOpStream(set, sp, 99).Take(300)
				b := NewOpStream(set, sp, 99).Take(300)
				for i := range a {
					if a[i].Fingerprint() != b[i].Fingerprint() {
						t.Fatalf("op %d diverged:\n  %s\n  %s", i, a[i].Fingerprint(), b[i].Fingerprint())
					}
				}
				c := NewOpStream(set, sp, 100).Take(300)
				same := true
				for i := range a {
					if a[i].Fingerprint() != c[i].Fingerprint() {
						same = false
						break
					}
				}
				if same {
					t.Fatal("different seed produced identical op stream")
				}
			})
		}
	}
}

// TestOpStreamMixAndArrivals: the generated stream respects the mix
// (every weighted kind appears, unweighted kinds never do) and the
// bursty arrival shape is monotone with back-to-back bursts.
func TestOpStreamMixAndArrivals(t *testing.T) {
	set := MSN().Generate(300, 3)
	sp := StreamSpec{
		Dist:     stats.Zipf,
		Mix:      Mix{Point: 1, Range: 1, TopK: 1, Insert: 1, Delete: 1, Modify: 1},
		BurstLen: 8,
		BurstGap: 0.05,
		OpGap:    0.001,
	}
	ops := NewOpStream(set, sp, 5).Take(600)
	seen := map[OpKind]int{}
	last := -1.0
	for i, op := range ops {
		seen[op.Kind]++
		if op.At < last {
			t.Fatalf("op %d arrival %.6f precedes %.6f", i, op.At, last)
		}
		last = op.At
	}
	for _, k := range []OpKind{OpPoint, OpRange, OpTopK, OpInsert, OpDelete, OpModify} {
		if seen[k] == 0 {
			t.Fatalf("kind %s never generated in 600 ops", k)
		}
	}
	// First burst: ops 0..7 are OpGap apart; op 8 starts the next burst.
	if got, want := ops[8].At, sp.BurstGap; got != want {
		t.Fatalf("burst 2 starts at %.6f, want %.6f", got, want)
	}
	// Read-only default mix never mutates.
	for i, op := range NewOpStream(set, StreamSpec{Dist: stats.Uniform}, 6).Take(400) {
		if op.Kind == OpInsert || op.Kind == OpDelete || op.Kind == OpModify {
			t.Fatalf("op %d: zero-weight kind %s generated", i, op.Kind)
		}
	}
}

// TestOpStreamInsertsWithinBounds: insert payloads stay inside the
// fitted normalization bounds (so served stores and the ground-truth
// mirror normalize them identically), carry no pre-assigned id, and get
// unique paths.
func TestOpStreamInsertsWithinBounds(t *testing.T) {
	set := HP().Generate(300, 11)
	sp := StreamSpec{Dist: stats.Zipf, Mix: Mix{Insert: 1}}
	paths := map[string]bool{}
	for i, op := range NewOpStream(set, sp, 21).Take(200) {
		if op.Kind != OpInsert {
			t.Fatalf("op %d: kind %s, want insert", i, op.Kind)
		}
		if op.File.ID != 0 {
			t.Fatalf("op %d: insert carries pre-assigned id %d", i, op.File.ID)
		}
		if paths[op.File.Path] {
			t.Fatalf("op %d: duplicate insert path %s", i, op.File.Path)
		}
		paths[op.File.Path] = true
		for a := metadata.Attr(0); a < metadata.NumAttrs; a++ {
			lo, hi := set.Norm.Bounds(a)
			if v := op.File.Attrs[a]; v < lo || v > hi {
				t.Fatalf("op %d: attr %v = %g outside fitted bounds [%g,%g]", i, a, v, lo, hi)
			}
		}
	}
}

// TestInterleave: deterministic in seed, preserves each tenant's
// internal order, and emits every op exactly once.
func TestInterleave(t *testing.T) {
	set := MSN().Generate(200, 9)
	// Query-only mixes so every op carries its tenant's attribute set
	// (the subsequence check below splits by attribute arity).
	t1 := NewOpStream(set, StreamSpec{Dist: stats.Zipf, Mix: Mix{Range: 1, TopK: 1}}, 1).Take(50)
	t2 := NewOpStream(set, StreamSpec{Dist: stats.Uniform, Mix: Mix{Range: 1, TopK: 1},
		Attrs: []metadata.Attr{metadata.AttrSize, metadata.AttrATime}}, 2).Take(80)

	a := Interleave(4, t1, t2)
	b := Interleave(4, t1, t2)
	if len(a) != 130 {
		t.Fatalf("interleaved %d ops, want 130", len(a))
	}
	for i := range a {
		if a[i].Fingerprint() != b[i].Fingerprint() {
			t.Fatalf("interleave not deterministic at op %d", i)
		}
	}
	// Subsequence check: removing the other tenant's ops recovers each
	// tenant's stream in order.
	var got1, got2 []Op
	for _, op := range a {
		if len(op.TopK.Attrs) == 2 || len(op.Range.Attrs) == 2 {
			got2 = append(got2, op)
		} else {
			got1 = append(got1, op)
		}
	}
	if len(got1) != len(t1) || len(got2) != len(t2) {
		t.Fatalf("tenant split %d/%d, want %d/%d", len(got1), len(got2), len(t1), len(t2))
	}
	for i := range t1 {
		if got1[i].Fingerprint() != t1[i].Fingerprint() {
			t.Fatalf("tenant 1 order broken at op %d", i)
		}
	}
	for i := range t2 {
		if got2[i].Fingerprint() != t2[i].Fingerprint() {
			t.Fatalf("tenant 2 order broken at op %d", i)
		}
	}
}
