package semtree

import (
	"sort"

	"repro/internal/metadata"
)

// Forest is the outcome of automatic configuration (§2.4): one or more
// semantic R-trees over different attribute subsets, able to serve
// complex queries with unpredictable queried-attribute combinations.
// The full-D tree is always present as the fallback that "produce[s] a
// superset of the queried results" for attribute combinations no
// specialized tree covers.
type Forest struct {
	// Full is the tree over all D attributes.
	Full *Tree
	// Specialized maps attribute-subset keys to their trees.
	Specialized []*Tree
	// Threshold is the index-unit-count difference ratio above which a
	// candidate subset tree is considered "sufficiently different" and
	// kept (§5.1 sets it to 10%).
	Threshold float64
	// Considered and Kept count candidate subset trees for reporting.
	Considered, Kept int
}

// DefaultAutoConfigThreshold is the §5.1 prototype setting (10%).
const DefaultAutoConfigThreshold = 0.10

// AutoConfigure runs the automatic configuration of §2.4: it builds the
// full-D tree, then for every candidate attribute subset builds a
// candidate tree and keeps it only when its index-unit count NO(Id)
// differs from the full tree's NO(ID) by more than threshold·NO(ID).
// Subsets nil selects all single- and two-attribute combinations of the
// query attributes (the common query patterns of §2.4's example).
func AutoConfigure(units []*StorageUnit, norm *metadata.Normalizer, cfg Config,
	subsets [][]metadata.Attr, threshold float64) *Forest {

	if threshold <= 0 {
		threshold = DefaultAutoConfigThreshold
	}
	fullCfg := cfg
	fullCfg.Attrs = metadata.AllAttrs()
	full := Build(units, norm, fullCfg)
	_, fullIdx := full.CountNodes()

	if subsets == nil {
		subsets = DefaultSubsets()
	}

	f := &Forest{Full: full, Threshold: threshold}
	for _, attrs := range subsets {
		f.Considered++
		subCfg := cfg
		subCfg.Attrs = attrs
		cand := Build(cloneUnits(units), norm, subCfg)
		_, candIdx := cand.CountNodes()
		diff := candIdx - fullIdx
		if diff < 0 {
			diff = -diff
		}
		// |NO(ID) − NO(Id)| larger than the threshold ⇒ sufficiently
		// different grouping structure ⇒ keep; otherwise the candidate
		// is redundant with the full tree and is deleted (§2.4).
		if float64(diff) > threshold*float64(fullIdx) {
			f.Specialized = append(f.Specialized, cand)
			f.Kept++
		}
	}
	return f
}

// DefaultSubsets enumerates the single- and pair-attribute combinations
// over the default query attributes.
func DefaultSubsets() [][]metadata.Attr {
	qa := []metadata.Attr{
		metadata.AttrSize, metadata.AttrCTime, metadata.AttrMTime,
		metadata.AttrReadBytes, metadata.AttrWriteBytes,
	}
	var out [][]metadata.Attr
	for i := range qa {
		out = append(out, []metadata.Attr{qa[i]})
	}
	for i := range qa {
		for j := i + 1; j < len(qa); j++ {
			out = append(out, []metadata.Attr{qa[i], qa[j]})
		}
	}
	return out
}

// cloneUnits deep-copies storage units so each tree owns its leaves
// (index state is per-tree; file records are shared, matching the
// multi-R-tree replication cost the paper trades off in §2.4).
func cloneUnits(units []*StorageUnit) []*StorageUnit {
	out := make([]*StorageUnit, len(units))
	for i, u := range units {
		out[i] = NewStorageUnit(u.ID, u.Files)
	}
	return out
}

// SelectTree returns the forest member whose grouping attributes best
// match the queried attributes: the specialized tree with the largest
// overlap and no extraneous dimensions, else the full tree ("For a
// future query, SmartStore will obtain query results from the semantic
// R-tree that has the same or similar attributes", §2.4).
func (f *Forest) SelectTree(queried []metadata.Attr) *Tree {
	want := map[metadata.Attr]bool{}
	for _, a := range queried {
		want[a] = true
	}
	var best *Tree
	bestScore := -1
	for _, t := range f.Specialized {
		overlap := 0
		extraneous := false
		for _, a := range t.Attrs {
			if want[a] {
				overlap++
			} else {
				extraneous = true
			}
		}
		if extraneous || overlap == 0 {
			continue
		}
		if overlap > bestScore {
			best, bestScore = t, overlap
		}
	}
	if best != nil && bestScore == len(queried) {
		return best
	}
	if best != nil && bestScore > 0 && len(best.Attrs) <= len(queried) {
		return best
	}
	return f.Full
}

// Trees returns every tree in the forest, full tree first.
func (f *Forest) Trees() []*Tree {
	out := []*Tree{f.Full}
	out = append(out, f.Specialized...)
	return out
}

// SizeBytes returns the total index footprint of the forest — the
// storage-space side of the §2.4 tradeoff.
func (f *Forest) SizeBytes() int {
	total := 0
	for _, t := range f.Trees() {
		total += t.SizeBytes()
	}
	return total
}

// SubsetKey renders an attribute subset as a stable string key.
func SubsetKey(attrs []metadata.Attr) string {
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.String()
	}
	sort.Strings(names)
	key := names[0]
	for _, n := range names[1:] {
		key += "+" + n
	}
	return key
}
