package semtree

import (
	"math"
	"sort"

	"repro/internal/metadata"
	"repro/internal/query"
)

// QueryStats reports the work a query performed, feeding the cost model
// (Table 4 latencies) and the grouping-efficiency histogram (Fig. 8).
type QueryStats struct {
	// NodesVisited is the number of tree nodes whose summaries were
	// examined.
	NodesVisited int
	// UnitsSearched is the number of storage units whose file lists were
	// scanned.
	UnitsSearched int
	// RecordsScanned is the number of file records examined inside
	// storage units.
	RecordsScanned int
	// GroupsTouched is the number of distinct first-level semantic
	// groups containing searched units. Hops of routing distance =
	// GroupsTouched − 1 (0-hop = served within one group, §5.3).
	GroupsTouched int
	// BloomChecks counts Bloom-filter membership tests (point queries).
	BloomChecks int
}

// Hops returns the routing distance of the query in groups beyond the
// first (Fig. 8's x-axis).
func (s QueryStats) Hops() int {
	if s.GroupsTouched <= 1 {
		return 0
	}
	return s.GroupsTouched - 1
}

// RangeQuery answers a multi-dimensional range query (§3.3.1) by
// descending every subtree whose MBR intersects the query rectangle and
// scanning the files of intersecting storage units.
func (t *Tree) RangeQuery(q query.Range) ([]uint64, QueryStats) {
	rect := queryRect(q.Attrs, q.Lo, q.Hi)
	var out []uint64
	var st QueryStats
	groups := map[*Node]struct{}{}

	var walk func(n *Node)
	walk = func(n *Node) {
		st.NodesVisited++
		if !n.HasMBR || !n.MBR.Intersects(rect) {
			return
		}
		if n.IsLeaf() {
			st.UnitsSearched++
			found := false
			for _, f := range n.Unit.Files {
				st.RecordsScanned++
				if q.Matches(f) {
					out = append(out, f.ID)
					found = true
				}
			}
			// A group counts toward routing distance when it serves
			// results (Fig. 8 measures the groups an operation is
			// served by).
			if found {
				groups[t.GroupOf(n)] = struct{}{}
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	st.GroupsTouched = len(groups)
	return out, st
}

// TopKQuery answers a top-k NN query (§3.3.2) with the paper's MaxD
// pruning: the storage unit most correlated with the query point is
// searched first to establish MaxD (the distance of the current k-th
// best result), then sibling subtrees are examined only while their
// MBR's minimum distance beats MaxD.
func (t *Tree) TopKQuery(q query.TopK) ([]uint64, QueryStats) {
	var st QueryStats
	groups := map[*Node]struct{}{}

	type cand struct {
		id   uint64
		dist float64
	}
	var best []cand
	maxD := -1.0 // distance of the current k-th result; -1 = fewer than k yet

	consider := func(c cand) {
		i := sort.Search(len(best), func(i int) bool {
			if best[i].dist != c.dist {
				return best[i].dist > c.dist
			}
			return best[i].id > c.id
		})
		best = append(best, cand{})
		copy(best[i+1:], best[i:])
		best[i] = c
		if len(best) > q.K {
			best = best[:q.K]
		}
		if len(best) == q.K {
			maxD = best[q.K-1].dist
		}
	}

	searchUnit := func(n *Node) {
		st.UnitsSearched++
		groups[t.GroupOf(n)] = struct{}{}
		for _, f := range n.Unit.Files {
			st.RecordsScanned++
			d := q.Dist(t.Norm, f)
			if maxD < 0 || d < maxD || len(best) < q.K {
				consider(cand{f.ID, d})
			}
		}
	}

	// Order subtrees by ascending MBR distance and prune with MaxD.
	var walk func(n *Node)
	walk = func(n *Node) {
		st.NodesVisited++
		if n.IsLeaf() {
			searchUnit(n)
			return
		}
		type childDist struct {
			c *Node
			d float64
		}
		cds := make([]childDist, 0, len(n.Children))
		for _, c := range n.Children {
			if !c.HasMBR {
				continue
			}
			// Distances compare in normalized space; q.Dist returns
			// squared distance, so square the MBR bound to match.
			d := normalizedMinDist(t.Norm, c.MBR, q.Attrs, q.Point)
			cds = append(cds, childDist{c, d * d})
		}
		sort.Slice(cds, func(i, j int) bool { return cds[i].d < cds[j].d })
		for _, cd := range cds {
			if maxD >= 0 && cd.d > maxD && len(best) >= q.K {
				break // §3.3.2: no subtree beyond MaxD can improve results
			}
			walk(cd.c)
		}
	}
	walk(t.Root)

	st.GroupsTouched = len(groups)
	out := make([]uint64, len(best))
	for i, c := range best {
		out[i] = c.id
	}
	return out, st
}

// PointQuery answers a filename point query (§3.3.3) by routing along
// the Bloom-filter path: a subtree is descended only when its unioned
// filter reports a positive hit; matching units are then checked
// exactly. False positives cost extra unit searches; false negatives
// cannot occur for names actually stored.
func (t *Tree) PointQuery(q query.Point) ([]uint64, QueryStats) {
	var out []uint64
	var st QueryStats
	groups := map[*Node]struct{}{}

	var walk func(n *Node)
	walk = func(n *Node) {
		st.NodesVisited++
		st.BloomChecks++
		if n.Filter == nil || !n.Filter.Contains(q.Filename) {
			return
		}
		if n.IsLeaf() {
			st.UnitsSearched++
			groups[t.GroupOf(n)] = struct{}{}
			for _, f := range n.Unit.LookupPath(q.Filename) {
				out = append(out, f.ID)
			}
			st.RecordsScanned += len(n.Unit.LookupPath(q.Filename))
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	st.GroupsTouched = len(groups)
	return out, st
}

// RouteToGroup returns the first-level index unit whose semantic vector
// is most correlated with the (normalized) request vector — the off-line
// pre-processing target-selection primitive of §3.4.
func (t *Tree) RouteToGroup(requestVector []float64) *Node {
	groups := t.FirstLevelIndexUnits()
	return t.bestGroup(groups, requestVector)
}

// RouteRangeGroup selects the off-line target group for a range query
// from the replicated first-level index information (semantic vector,
// MBR and member count, §3.4): the group maximizing the *expected
// matching mass* — its file count times the fraction of its MBR the
// query window covers per dimension, assuming uniform density within
// the MBR. Density weighting matters: a group with one behavioural
// outlier has an enormous MBR that overlaps everything but holds almost
// nothing in any given window, while the tight group actually holding
// the matching files wins on density. A single group is returned — the
// inaccuracy of this bounded search is exactly what the Recall measure
// of §5.4.2 quantifies.
func (t *Tree) RouteRangeGroup(q query.Range) *Node {
	return t.RouteRangeGroups(q, 1)[0]
}

// RouteRangeGroups returns up to maxGroups candidate groups for a range
// query, best expected-mass first: the target plus any siblings whose
// expected matching mass is a substantial fraction of the target's
// (§3.3.1's sibling checking — "query traffic is very likely bounded
// within one or a small number of tree nodes").
func (t *Tree) RouteRangeGroups(q query.Range, maxGroups int) []*Node {
	if maxGroups < 1 {
		maxGroups = 1
	}
	groups := t.FirstLevelIndexUnits()
	type scored struct {
		g    *Node
		mass float64
		dist float64
	}
	reqV := t.RequestVectorRange(q)
	cands := make([]scored, 0, len(groups))
	for _, g := range groups {
		mass := t.expectedMass(g, q)
		cands = append(cands, scored{g, mass, vecDist(reqV, g.Vector)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mass != cands[j].mass {
			return cands[i].mass > cands[j].mass
		}
		return cands[i].dist < cands[j].dist
	})
	out := []*Node{cands[0].g}
	// Siblings join when they carry a meaningful share of the expected
	// mass (0-hop stays the common case, Fig. 8).
	const siblingShare = 0.15
	for _, c := range cands[1:] {
		if len(out) >= maxGroups {
			break
		}
		if cands[0].mass <= 0 || c.mass < siblingShare*cands[0].mass {
			break
		}
		out = append(out, c.g)
	}
	return out
}

// expectedMass estimates how many of g's files fall inside the query
// window: member count times the covered fraction of the group MBR per
// dimension, assuming uniform density within the MBR.
func (t *Tree) expectedMass(g *Node, q query.Range) float64 {
	if !g.HasMBR {
		return 0
	}
	mass := float64(t.groupFileCount(g))
	for i, a := range q.Attrs {
		qlo := t.Norm.Value(a, q.Lo[i])
		qhi := t.Norm.Value(a, q.Hi[i])
		mlo := t.Norm.Value(a, g.MBR.Lo[a])
		mhi := t.Norm.Value(a, g.MBR.Hi[a])
		lo := math.Max(qlo, mlo)
		hi := math.Min(qhi, mhi)
		if hi < lo {
			return 0
		}
		width := mhi - mlo
		if width <= 0 {
			continue // degenerate dimension: fully covered
		}
		frac := (hi - lo) / width
		if frac > 1 {
			frac = 1
		}
		mass *= frac
	}
	return mass
}

// groupFileCount returns the number of files under group g (part of the
// replicated index-unit summary).
func (t *Tree) groupFileCount(g *Node) int {
	var leaves []*Node
	leaves = g.Leaves(leaves)
	n := 0
	for _, l := range leaves {
		n += l.Unit.Len()
	}
	return n
}

// RouteTopKGroup selects the single off-line target group for a top-k
// query.
func (t *Tree) RouteTopKGroup(q query.TopK) *Node {
	return t.RouteTopKGroups(q, 1)[0]
}

// RouteTopKGroups returns up to maxGroups candidate groups for a top-k
// query: groups ranked by MBR distance to the query point (ascending),
// ties broken by local density (count over MBR volume in the queried
// dimensions). Additional groups join only while their MBR still
// touches the point's neighbourhood — the sibling verification of
// §3.3.2's MaxD refinement.
func (t *Tree) RouteTopKGroups(q query.TopK, maxGroups int) []*Node {
	if maxGroups < 1 {
		maxGroups = 1
	}
	groups := t.FirstLevelIndexUnits()
	type scored struct {
		g       *Node
		dist    float64
		density float64
	}
	cands := make([]scored, 0, len(groups))
	for _, g := range groups {
		md := math.Inf(1)
		density := 0.0
		if g.HasMBR {
			md = normalizedMinDist(t.Norm, g.MBR, q.Attrs, q.Point)
			vol := 1.0
			for _, a := range q.Attrs {
				w := t.Norm.Value(a, g.MBR.Hi[a]) - t.Norm.Value(a, g.MBR.Lo[a])
				if w < 1e-6 {
					w = 1e-6
				}
				vol *= w
			}
			density = float64(t.groupFileCount(g)) / vol
		}
		cands = append(cands, scored{g, md, density})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].density > cands[j].density
	})
	out := []*Node{cands[0].g}
	// Sibling groups whose MBRs also (nearly) contain the point may hold
	// closer neighbours; check them per §3.3.2.
	const nearEps = 0.12
	for _, c := range cands[1:] {
		if len(out) >= maxGroups {
			break
		}
		if c.dist > cands[0].dist+nearEps {
			break
		}
		out = append(out, c.g)
	}
	return out
}

func vecDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		if i < len(b) {
			d := a[i] - b[i]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// RequestVectorRange summarizes a range query as a request vector (its
// window centre) in normalized space over the tree's grouping attrs.
func (t *Tree) RequestVectorRange(q query.Range) []float64 {
	v := make([]float64, len(t.Attrs))
	for i, a := range t.Attrs {
		// Attributes outside the query keep the mid-range default 0.5.
		v[i] = 0.5
		for j, qa := range q.Attrs {
			if qa == a {
				v[i] = (t.Norm.Value(a, q.Lo[j]) + t.Norm.Value(a, q.Hi[j])) / 2
			}
		}
	}
	return v
}

// RequestVectorTopK summarizes a top-k query as a request vector.
func (t *Tree) RequestVectorTopK(q query.TopK) []float64 {
	v := make([]float64, len(t.Attrs))
	for i, a := range t.Attrs {
		v[i] = 0.5
		for j, qa := range q.Attrs {
			if qa == a {
				v[i] = t.Norm.Value(a, q.Point[j])
			}
		}
	}
	return v
}

// SearchGroupRange scans only the units under the given first-level
// group for a range query — the local search the off-line approach
// performs at the routed target (§3.4).
func (t *Tree) SearchGroupRange(group *Node, q query.Range) ([]uint64, QueryStats) {
	rect := queryRect(q.Attrs, q.Lo, q.Hi)
	var out []uint64
	var st QueryStats
	st.GroupsTouched = 1
	var leaves []*Node
	leaves = group.Leaves(leaves)
	for _, n := range leaves {
		st.NodesVisited++
		if !n.HasMBR || !n.MBR.Intersects(rect) {
			continue
		}
		st.UnitsSearched++
		for _, f := range n.Unit.Files {
			st.RecordsScanned++
			if q.Matches(f) {
				out = append(out, f.ID)
			}
		}
	}
	return out, st
}

// SearchGroupTopK scans only the given group's units for a top-k query.
func (t *Tree) SearchGroupTopK(group *Node, q query.TopK) ([]uint64, QueryStats) {
	var st QueryStats
	st.GroupsTouched = 1
	type cand struct {
		id   uint64
		dist float64
	}
	var cands []cand
	var leaves []*Node
	leaves = group.Leaves(leaves)
	for _, n := range leaves {
		st.NodesVisited++
		st.UnitsSearched++
		for _, f := range n.Unit.Files {
			st.RecordsScanned++
			cands = append(cands, cand{f.ID, q.Dist(t.Norm, f)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	k := q.K
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out, st
}

// AllFiles returns every file in the tree (ground-truth scans).
func (t *Tree) AllFiles() []*metadata.File {
	var out []*metadata.File
	for _, l := range t.leaves {
		out = append(out, l.Unit.Files...)
	}
	return out
}

// OverlapsRange reports whether the tree's root MBR intersects the
// range query's rectangle — the shard-level pruning test the engine's
// fan-out uses to skip shards whose entire population falls outside the
// queried window without touching their deployment state.
func (t *Tree) OverlapsRange(q query.Range) bool {
	if !t.Root.HasMBR {
		return false
	}
	return t.Root.MBR.Intersects(queryRect(q.Attrs, q.Lo, q.Hi))
}

// MayContainPath reports whether any storage unit's Bloom filter admits
// the path — the shard-level pruning test for point-query fan-out.
// Names enter unit filters the moment a file is inserted (visibility
// staleness applies only to the replicated query snapshot), and Bloom
// filters never delete, so a negative proves the shard cannot answer:
// no false negatives, only the per-unit false-positive rate. Individual
// unit filters are consulted rather than the root's union — OR-ing the
// member checks has a far lower false-positive rate than one filter
// whose bit array is the union of all of them.
func (t *Tree) MayContainPath(path string) bool {
	for _, l := range t.leaves {
		if l.Unit.MayContain(path) {
			return true
		}
	}
	return false
}
