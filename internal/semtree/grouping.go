package semtree

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/lsi"
	"repro/internal/metadata"
)

// parallelFor runs fn(i) for i in [0, n) across cores when n is large.
// Work is index-addressed, so results are identical to the sequential
// loop.
func parallelFor(n int, fn func(i int)) {
	const threshold = 2048
	if n < threshold {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// PlaceSemantic distributes files across nUnits storage units by
// semantic correlation with approximately equal group sizes (Statement
// 1 of §3.1.1): an LSI model is fitted over the file vectors, files are
// ordered along the dominant semantic directions, and the order is cut
// into nUnits equal contiguous chunks. Files that are adjacent in the
// semantic subspace — and therefore likely to satisfy the same complex
// query — land in the same unit.
//
// The sort key quantizes the LSI components and orders them by
// *skewness*: components whose mass collapses into one bucket (the
// hot/cold split of behavioural attributes) come first — they separate
// the correlated hot tail into its own region without perturbing the
// bulk, which then sorts along the smooth components (timestamps).
// This is what clusters correlated files together and yields the high
// Zipf-query recall of §5.4.2 while keeping range recall high for the
// bulk of the population.
func PlaceSemantic(files []*metadata.File, nUnits int, norm *metadata.Normalizer, attrs []metadata.Attr) []*StorageUnit {
	if nUnits < 1 {
		panic("semtree: need at least one storage unit")
	}
	vectors := make([][]float64, len(files))
	parallelFor(len(files), func(i int) {
		vectors[i] = norm.Vector(files[i], attrs)
	})
	order := make([]int, len(files))
	for i := range order {
		order[i] = i
	}
	if len(files) > 1 {
		model, err := lsi.Fit(vectors, 0)
		if err == nil {
			keys := quantizedKeys(model, len(files))
			sort.SliceStable(order, func(a, b int) bool {
				ka, kb := keys[order[a]], keys[order[b]]
				for d := range ka {
					if ka[d] != kb[d] {
						return ka[d] < kb[d]
					}
				}
				return files[order[a]].ID < files[order[b]].ID
			})
		}
	}
	return cutIntoUnits(files, order, nUnits)
}

// placementBuckets is the quantization granularity of the leading LSI
// components in the placement sort key.
const placementBuckets = 6

// quantizedKeys converts each item's LSI coordinates into a
// lexicographic sort key: every component is quantized into coarse
// buckets, components are ordered by descending skewness (fraction of
// items in the modal bucket), and the smoothest component is appended
// continuously as the final tie-break.
//
// Skew-first ordering makes rare-valued components act as region
// splitters — the hot tail of behavioural attributes separates into its
// own contiguous region — while the bulk of the population, which ties
// on every skewed component, sorts along the smooth component
// (typically modification time). Both query regimes then enjoy
// locality: broad range windows over the bulk and tight neighbourhoods
// around hot files.
func quantizedKeys(model *lsi.Model, n int) [][]float64 {
	p := model.Rank()
	mins := make([]float64, p)
	maxs := make([]float64, p)
	for i := 0; i < n; i++ {
		v := model.ItemVector(i)
		for d := 0; d < p; d++ {
			if i == 0 || v[d] < mins[d] {
				mins[d] = v[d]
			}
			if i == 0 || v[d] > maxs[d] {
				maxs[d] = v[d]
			}
		}
	}
	bucketOf := func(v float64, d int) int {
		span := maxs[d] - mins[d]
		if span <= 0 {
			return 0
		}
		b := int((v - mins[d]) / span * placementBuckets)
		if b >= placementBuckets {
			b = placementBuckets - 1
		}
		return b
	}
	// Skewness per component: modal-bucket fraction.
	skew := make([]float64, p)
	for d := 0; d < p; d++ {
		counts := make([]int, placementBuckets)
		for i := 0; i < n; i++ {
			counts[bucketOf(model.ItemVector(i)[d], d)]++
		}
		mode := 0
		for _, c := range counts {
			if c > mode {
				mode = c
			}
		}
		skew[d] = float64(mode) / float64(n)
	}
	dims := make([]int, p)
	for d := range dims {
		dims[d] = d
	}
	sort.SliceStable(dims, func(a, b int) bool { return skew[dims[a]] > skew[dims[b]] })

	keys := make([][]float64, n)
	smoothest := dims[len(dims)-1]
	for i := 0; i < n; i++ {
		v := model.ItemVector(i)
		key := make([]float64, 0, p+1)
		for _, d := range dims {
			key = append(key, float64(bucketOf(v[d], d)))
		}
		key = append(key, v[smoothest]) // continuous final tie-break
		keys[i] = key
	}
	return keys
}

// PlaceRoundRobin distributes files across units ignoring semantics —
// the directory-tree-like placement the paper's baselines embody. It
// exists for ablation benches that quantify what semantic placement
// buys (grouping efficiency, Fig. 8).
func PlaceRoundRobin(files []*metadata.File, nUnits int) []*StorageUnit {
	if nUnits < 1 {
		panic("semtree: need at least one storage unit")
	}
	order := make([]int, len(files))
	for i := range order {
		order[i] = i
	}
	units := make([]*StorageUnit, nUnits)
	buckets := make([][]*metadata.File, nUnits)
	for i, idx := range order {
		u := i % nUnits
		buckets[u] = append(buckets[u], files[idx])
	}
	for i := range units {
		units[i] = NewStorageUnit(i, buckets[i])
	}
	return units
}

func cutIntoUnits(files []*metadata.File, order []int, nUnits int) []*StorageUnit {
	units := make([]*StorageUnit, nUnits)
	n := len(files)
	for u := 0; u < nUnits; u++ {
		lo := u * n / nUnits
		hi := (u + 1) * n / nUnits
		chunk := make([]*metadata.File, 0, hi-lo)
		for _, idx := range order[lo:hi] {
			chunk = append(chunk, files[idx])
		}
		units[u] = NewStorageUnit(u, chunk)
	}
	return units
}

// groupOnce aggregates nodes into parent groups at one tree level
// (§3.1.2): pairs of nodes whose LSI correlation exceeds the admission
// threshold eps are merged, each node joining the partner with the
// largest correlation value, subject to the fan-out cap maxChildren.
// Nodes left unmatched become singleton groups. The function guarantees
// progress: if thresholding produces no reduction, sequential chunks of
// up to maxChildren nodes are merged instead, so recursion always
// reaches a single root.
func groupOnce(nodes []*Node, eps float64, maxChildren int) [][]*Node {
	n := len(nodes)
	if n <= 1 {
		out := make([][]*Node, 0, n)
		for _, nd := range nodes {
			out = append(out, []*Node{nd})
		}
		return out
	}

	vectors := make([][]float64, n)
	for i, nd := range nodes {
		vectors[i] = nd.Vector
	}
	model, err := lsi.Fit(centerVectors(vectors), 0)

	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = -1
	}
	var groups [][]int

	if err == nil {
		sims := model.PairwiseDistanceCorrelations()
		type pair struct {
			i, j int
			sim  float64
		}
		var pairs []pair
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if s := sims.At(i, j); s > eps {
					pairs = append(pairs, pair{i, j, s})
				}
			}
		}
		// Highest correlation first (§3.1.2: "the one with the largest
		// correlation value will be chosen").
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].sim != pairs[b].sim {
				return pairs[a].sim > pairs[b].sim
			}
			if pairs[a].i != pairs[b].i {
				return pairs[a].i < pairs[b].i
			}
			return pairs[a].j < pairs[b].j
		})
		for _, p := range pairs {
			gi, gj := groupOf[p.i], groupOf[p.j]
			switch {
			case gi == -1 && gj == -1:
				groupOf[p.i] = len(groups)
				groupOf[p.j] = len(groups)
				groups = append(groups, []int{p.i, p.j})
			case gi == -1 && gj != -1:
				if len(groups[gj]) < maxChildren {
					groupOf[p.i] = gj
					groups[gj] = append(groups[gj], p.i)
				}
			case gi != -1 && gj == -1:
				if len(groups[gi]) < maxChildren {
					groupOf[p.j] = gi
					groups[gi] = append(groups[gi], p.j)
				}
			}
		}
	}
	// Unmatched nodes become singletons.
	for i := range nodes {
		if groupOf[i] == -1 {
			groupOf[i] = len(groups)
			groups = append(groups, []int{i})
		}
	}

	if len(groups) >= n {
		// No reduction — force progress by chunking sequential nodes.
		groups = groups[:0]
		for lo := 0; lo < n; lo += maxChildren {
			hi := lo + maxChildren
			if hi > n {
				hi = n
			}
			chunk := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				chunk = append(chunk, i)
			}
			groups = append(groups, chunk)
		}
	}

	out := make([][]*Node, len(groups))
	for g, idxs := range groups {
		members := make([]*Node, len(idxs))
		for k, i := range idxs {
			members[k] = nodes[i]
		}
		out[g] = members
	}
	return out
}

// SampleThreshold estimates the initial admission threshold by sampling
// analysis (§3.2.1: "The initial value of this threshold is determined
// by a sampling analysis"): it computes pairwise LSI correlations over
// the node vectors and returns the given quantile (0–1). Higher
// quantiles produce tighter, more numerous groups.
func SampleThreshold(vectors [][]float64, quantile float64) float64 {
	n := len(vectors)
	if n < 2 {
		return 0.5
	}
	model, err := lsi.Fit(centerVectors(vectors), 0)
	if err != nil {
		return 0.5
	}
	sims := model.PairwiseDistanceCorrelations()
	var all []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			all = append(all, sims.At(i, j))
		}
	}
	sort.Float64s(all)
	if quantile < 0 {
		quantile = 0
	}
	if quantile > 1 {
		quantile = 1
	}
	idx := int(quantile * float64(len(all)-1))
	return all[idx]
}

// OptimalThreshold sweeps candidate admission thresholds and returns
// the one whose grouping best realizes the semantic-correlation
// objective of §1.1/§5.5: members should sit close to their own group
// centroid (small Σ (fj − Ci)²) while groups stay mutually separated.
// The score is a silhouette-style quality — mean over nodes of
// (b − a) / max(a, b), with a the distance to the node's own group
// centroid and b the distance to the nearest other group's centroid —
// which peaks at an interior threshold: too-low thresholds merge
// unrelated nodes (a grows), too-high thresholds shatter natural groups
// (b shrinks). It is the quantity Fig. 11 plots against system scale
// and tree level. Higher scores are better.
func OptimalThreshold(nodes []*Node, candidates []float64, maxChildren int) (best float64, bestScore float64) {
	if len(candidates) == 0 {
		panic("semtree: no candidate thresholds")
	}
	best = candidates[0]
	bestScore = -2 // silhouette lower bound is −1
	for _, eps := range candidates {
		groups := groupOnce(nodes, eps, maxChildren)
		score := silhouette(groups)
		if score > bestScore {
			best, bestScore = eps, score
		}
	}
	return best, bestScore
}

// centerVectors subtracts the per-dimension mean so cosine correlations
// spread over their full range instead of compressing near 1 (all
// normalized attribute vectors share a large positive common
// component). Grouping, threshold sampling and threshold optimization
// all measure correlation in this centered space.
func centerVectors(vectors [][]float64) [][]float64 {
	n := len(vectors)
	if n == 0 {
		return vectors
	}
	dim := len(vectors[0])
	mean := make([]float64, dim)
	for _, v := range vectors {
		for i, x := range v {
			mean[i] += x
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	out := make([][]float64, n)
	for j, v := range vectors {
		c := make([]float64, dim)
		for i, x := range v {
			c[i] = x - mean[i]
		}
		out[j] = c
	}
	return out
}

// silhouette scores a grouping in [−1, 1]: the mean over nodes of
// (b − a)/max(a, b) where a is the distance to the node's own group
// centroid and b the distance to the nearest other centroid. A single
// group scores 0 (no separation evidence).
func silhouette(groups [][]*Node) float64 {
	if len(groups) < 2 {
		return 0
	}
	centroids := make([][]float64, len(groups))
	for g, members := range groups {
		if len(members) == 0 {
			continue
		}
		dim := len(members[0].Vector)
		c := make([]float64, dim)
		for _, nd := range members {
			for i, v := range nd.Vector {
				c[i] += v
			}
		}
		inv := 1 / float64(len(members))
		for i := range c {
			c[i] *= inv
		}
		centroids[g] = c
	}
	var sum float64
	var n int
	for g, members := range groups {
		for _, nd := range members {
			a := vecDist(nd.Vector, centroids[g])
			b := -1.0
			for h, c := range centroids {
				if h == g || c == nil {
					continue
				}
				if d := vecDist(nd.Vector, c); b < 0 || d < b {
					b = d
				}
			}
			if b < 0 {
				continue
			}
			den := a
			if b > den {
				den = b
			}
			if den > 0 {
				sum += (b - a) / den
			}
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// DefaultThresholdQuantile is the sampling quantile used when the caller
// does not supply explicit thresholds.
const DefaultThresholdQuantile = 0.75

// levelThreshold derives the admission threshold for tree level i ≥ 1
// from the base threshold: deeper (higher) levels relax the threshold
// geometrically, since index-unit centroids are progressively smoother
// (ε_i = ε₁ · decayⁱ⁻¹).
func levelThreshold(base float64, level int) float64 {
	eps := base
	for i := 1; i < level; i++ {
		eps *= 0.9
	}
	return eps
}
