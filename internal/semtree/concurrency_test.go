package semtree

import (
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Queries against a built tree are read-only and safe to run from many
// goroutines — the deployment model of a metadata service answering
// concurrent clients. This test checks result stability under
// concurrency (run with -race in CI to check memory safety too).
func TestConcurrentQueriesStable(t *testing.T) {
	tree, set := buildTestTree(t, 1000, 12, 201)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 203)

	type job struct {
		rq query.Range
		tq query.TopK
		pq query.Point
	}
	jobs := make([]job, 40)
	for i := range jobs {
		jobs[i] = job{
			rq: gen.Range(0.05),
			tq: gen.TopK(8),
			pq: query.Point{Filename: set.Files[(i*29)%len(set.Files)].Path},
		}
	}
	// Sequential reference answers.
	wantRange := make([][]uint64, len(jobs))
	wantTopK := make([][]uint64, len(jobs))
	wantPoint := make([][]uint64, len(jobs))
	for i, j := range jobs {
		wantRange[i], _ = tree.RangeQuery(j.rq)
		wantTopK[i], _ = tree.TopKQuery(j.tq)
		wantPoint[i], _ = tree.PointQuery(j.pq)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*len(jobs))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, j := range jobs {
				if got, _ := tree.RangeQuery(j.rq); !sameIDs(got, wantRange[i]) {
					errs <- "range answer changed under concurrency"
					return
				}
				if got, _ := tree.TopKQuery(j.tq); !sameIDs(got, wantTopK[i]) {
					errs <- "topk answer changed under concurrency"
					return
				}
				if got, _ := tree.PointQuery(j.pq); !sameIDs(got, wantPoint[i]) {
					errs <- "point answer changed under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// PlaceSemantic's parallel vector computation must be deterministic:
// repeated placements of the same corpus are identical.
func TestPlaceSemanticDeterministicUnderParallelism(t *testing.T) {
	set := testCorpus(t, 5000, 205) // above the parallelFor threshold
	attrs := trace.DefaultQueryAttrs()
	a := PlaceSemantic(set.Files, 16, set.Norm, attrs)
	b := PlaceSemantic(set.Files, 16, set.Norm, attrs)
	for i := range a {
		if a[i].Len() != b[i].Len() {
			t.Fatalf("unit %d sizes differ: %d vs %d", i, a[i].Len(), b[i].Len())
		}
		for j := range a[i].Files {
			if a[i].Files[j].ID != b[i].Files[j].ID {
				t.Fatalf("unit %d file %d differs between runs", i, j)
			}
		}
	}
}

func BenchmarkPlaceSemantic10k(b *testing.B) {
	set := trace.MSN().Generate(10000, 207)
	attrs := trace.DefaultQueryAttrs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlaceSemantic(set.Files, 60, set.Norm, attrs)
	}
}

func BenchmarkBuild60Units(b *testing.B) {
	set := trace.MSN().Generate(3000, 209)
	attrs := trace.DefaultQueryAttrs()
	units := PlaceSemantic(set.Files, 60, set.Norm, attrs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(cloneUnits(units), set.Norm, Config{Attrs: attrs})
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	tree, set := buildTestTree(b, 3000, 60, 211)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 213)
	queries := make([]query.Range, 64)
	for i := range queries {
		queries[i] = gen.Range(0.05)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.RangeQuery(queries[i%len(queries)])
	}
}

func BenchmarkTopKQuery(b *testing.B) {
	tree, set := buildTestTree(b, 3000, 60, 215)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 217)
	queries := make([]query.TopK, 64)
	for i := range queries {
		queries[i] = gen.TopK(8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.TopKQuery(queries[i%len(queries)])
	}
}

func BenchmarkPointQuery(b *testing.B) {
	tree, set := buildTestTree(b, 3000, 60, 219)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.PointQuery(query.Point{Filename: set.Files[i%len(set.Files)].Path})
	}
}
