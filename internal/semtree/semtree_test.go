package semtree

import (
	"sort"
	"testing"

	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/trace"
)

// testCorpus builds a small MSN-like workload with a fitted normalizer.
func testCorpus(t testing.TB, n int, seed uint64) *trace.Set {
	t.Helper()
	return trace.MSN().Generate(n, seed)
}

// buildTestTree builds a tree whose grouping predicate is the default
// query-attribute subset — the paper's "subset of d attributes,
// representing special interests" (§3.1.1) — so semantic grouping is
// aligned with the synthesized query patterns, as automatic
// configuration would arrange.
func buildTestTree(t testing.TB, nFiles, nUnits int, seed uint64) (*Tree, *trace.Set) {
	t.Helper()
	set := testCorpus(t, nFiles, seed)
	attrs := trace.DefaultQueryAttrs()
	units := PlaceSemantic(set.Files, nUnits, set.Norm, attrs)
	tree := Build(units, set.Norm, Config{Attrs: attrs})
	return tree, set
}

func TestPlaceSemanticEqualSizes(t *testing.T) {
	set := testCorpus(t, 1000, 1)
	units := PlaceSemantic(set.Files, 7, set.Norm, metadata.AllAttrs())
	if len(units) != 7 {
		t.Fatalf("got %d units, want 7", len(units))
	}
	total := 0
	for _, u := range units {
		if u.Len() < 1000/7-1 || u.Len() > 1000/7+1 {
			t.Fatalf("unit %d holds %d files; sizes must be approximately equal", u.ID, u.Len())
		}
		total += u.Len()
	}
	if total != 1000 {
		t.Fatalf("placed %d files, want 1000", total)
	}
}

func TestPlaceSemanticGroupsCorrelatedFiles(t *testing.T) {
	// Semantic placement should beat round-robin on within-unit SSE.
	set := testCorpus(t, 600, 2)
	attrs := metadata.AllAttrs()
	sem := PlaceSemantic(set.Files, 6, set.Norm, attrs)
	rr := PlaceRoundRobin(set.Files, 6)
	var semSSE, rrSSE float64
	for i := range sem {
		semSSE += metadata.SumSquaredError(set.Norm, sem[i].Files, attrs)
		rrSSE += metadata.SumSquaredError(set.Norm, rr[i].Files, attrs)
	}
	if semSSE >= rrSSE {
		t.Fatalf("semantic placement SSE %v not below round-robin %v", semSSE, rrSSE)
	}
}

func TestPlacePanics(t *testing.T) {
	set := testCorpus(t, 10, 3)
	for _, fn := range []func(){
		func() { PlaceSemantic(set.Files, 0, set.Norm, metadata.AllAttrs()) },
		func() { PlaceRoundRobin(set.Files, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("zero units did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestStorageUnitAddRemove(t *testing.T) {
	set := testCorpus(t, 20, 4)
	u := NewStorageUnit(0, set.Files[:10])
	if u.Len() != 10 {
		t.Fatalf("Len = %d, want 10", u.Len())
	}
	f := set.Files[10]
	u.AddFile(f)
	if !u.MayContain(f.Path) {
		t.Fatal("Bloom filter missing added file")
	}
	if got := u.LookupPath(f.Path); len(got) != 1 || got[0].ID != f.ID {
		t.Fatalf("LookupPath = %v", got)
	}
	if !u.RemoveFile(f.ID) {
		t.Fatal("RemoveFile failed")
	}
	if u.RemoveFile(f.ID) {
		t.Fatal("double remove succeeded")
	}
	if got := u.LookupPath(f.Path); len(got) != 0 {
		t.Fatalf("file still locatable after remove: %v", got)
	}
	mbr, ok := u.MBR()
	if !ok || mbr.Dims() != int(metadata.NumAttrs) {
		t.Fatal("MBR invalid after remove")
	}
}

func TestBuildBasics(t *testing.T) {
	tree, _ := buildTestTree(t, 500, 12, 5)
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(tree.Leaves()); got != 12 {
		t.Fatalf("leaves = %d, want 12", got)
	}
	if tree.Height() < 2 {
		t.Fatalf("height = %d, want ≥ 2", tree.Height())
	}
	storage, index := tree.CountNodes()
	if storage != 12 || index < 1 {
		t.Fatalf("CountNodes = %d/%d", storage, index)
	}
	if tree.TotalFiles() != 500 {
		t.Fatalf("TotalFiles = %d, want 500", tree.TotalFiles())
	}
	if len(tree.Thresholds) == 0 {
		t.Fatal("no thresholds recorded")
	}
	if tree.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestBuildSingleUnit(t *testing.T) {
	set := testCorpus(t, 50, 6)
	units := PlaceSemantic(set.Files, 1, set.Norm, metadata.AllAttrs())
	tree := Build(units, set.Norm, Config{})
	if !tree.Root.IsLeaf() {
		t.Fatal("single-unit tree root should be the leaf")
	}
	if len(tree.FirstLevelIndexUnits()) != 1 {
		t.Fatal("single-unit tree should expose one group")
	}
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	set := testCorpus(t, 10, 7)
	defer func() {
		if recover() == nil {
			t.Error("Build over no units did not panic")
		}
	}()
	Build(nil, set.Norm, Config{})
}

func TestConfigValidation(t *testing.T) {
	set := testCorpus(t, 50, 8)
	units := PlaceSemantic(set.Files, 4, set.Norm, metadata.AllAttrs())
	defer func() {
		if recover() == nil {
			t.Error("invalid fan-out config did not panic")
		}
	}()
	Build(units, set.Norm, Config{MaxChildren: 4, MinChildren: 3})
}

func TestRangeQueryMatchesTruth(t *testing.T) {
	tree, set := buildTestTree(t, 800, 10, 9)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 11)
	for i := 0; i < 50; i++ {
		q := gen.Range(0.15)
		got, st := tree.RangeQuery(q)
		want := query.RangeTruth(set.Files, q)
		if !sameIDs(got, want) {
			t.Fatalf("query %d: got %d ids, want %d", i, len(got), len(want))
		}
		if st.NodesVisited == 0 {
			t.Fatal("no nodes visited")
		}
	}
}

func TestRangeQueryPrunes(t *testing.T) {
	tree, set := buildTestTree(t, 2000, 20, 13)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 17)
	var scanned, total int
	for i := 0; i < 30; i++ {
		q := gen.Range(0.05)
		_, st := tree.RangeQuery(q)
		scanned += st.RecordsScanned
		total += 2000
	}
	if frac := float64(scanned) / float64(total); frac > 0.8 {
		t.Fatalf("range queries scanned %.0f%% of records; MBR pruning ineffective", frac*100)
	}
}

func TestTopKQueryMatchesTruthDistances(t *testing.T) {
	tree, set := buildTestTree(t, 500, 8, 19)
	gen := trace.NewQueryGen(set, stats.Gauss, nil, 23)
	for i := 0; i < 30; i++ {
		q := gen.TopK(8)
		got, _ := tree.TopKQuery(q)
		want := query.TopKTruth(set.Files, set.Norm, q)
		if len(got) != len(want) {
			t.Fatalf("topk returned %d, want %d", len(got), len(want))
		}
		// The semantic tree searches exhaustively under MaxD pruning, so
		// distances must match the true k-th distance exactly.
		byID := map[uint64]*metadata.File{}
		for _, f := range set.Files {
			byID[f.ID] = f
		}
		gotK := q.Dist(set.Norm, byID[got[len(got)-1]])
		wantK := q.Dist(set.Norm, byID[want[len(want)-1]])
		if gotK > wantK+1e-9 {
			t.Fatalf("query %d: k-th distance %v exceeds true %v", i, gotK, wantK)
		}
	}
}

func TestPointQueryFindsExistingFiles(t *testing.T) {
	tree, set := buildTestTree(t, 400, 8, 29)
	for i := 0; i < 100; i++ {
		f := set.Files[(i*37)%len(set.Files)]
		got, st := tree.PointQuery(query.Point{Filename: f.Path})
		found := false
		for _, id := range got {
			if id == f.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("point query missed existing file %q", f.Path)
		}
		if st.BloomChecks == 0 {
			t.Fatal("no bloom checks recorded")
		}
	}
}

func TestPointQueryAbsentMostlyPrunes(t *testing.T) {
	tree, _ := buildTestTree(t, 400, 8, 31)
	misses := 0
	for i := 0; i < 200; i++ {
		got, _ := tree.PointQuery(query.Point{Filename: "/absent/nothing-here.bin"})
		if len(got) == 0 {
			misses++
		}
	}
	if misses != 200 {
		t.Fatalf("absent file reported present %d times", 200-misses)
	}
}

func TestGroupingEfficiencyZeroHopMajority(t *testing.T) {
	// Fig. 8: most complex queries should be served within one group.
	tree, set := buildTestTree(t, 2000, 20, 37)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 41)
	zeroHop, total := 0, 0
	for i := 0; i < 100; i++ {
		q := gen.Range(0.03)
		_, st := tree.RangeQuery(q)
		if st.GroupsTouched == 0 {
			continue // empty result; no group touched
		}
		total++
		if st.Hops() == 0 {
			zeroHop++
		}
	}
	if total == 0 {
		t.Skip("all queries empty")
	}
	if frac := float64(zeroHop) / float64(total); frac < 0.5 {
		t.Fatalf("0-hop fraction = %v, want > 0.5 (semantic grouping should localize)", frac)
	}
}

func TestInsertUnitAndValidate(t *testing.T) {
	tree, set := buildTestTree(t, 600, 8, 43)
	extra := testCorpus(t, 80, 44)
	nu := NewStorageUnit(100, extra.Files)
	leaf := tree.InsertUnit(nu)
	if leaf.Parent == nil {
		t.Fatal("inserted unit has no parent group")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after insert: %v", err)
	}
	if len(tree.Leaves()) != 9 {
		t.Fatalf("leaves = %d, want 9", len(tree.Leaves()))
	}
	// New files must be findable.
	f := extra.Files[0]
	got, _ := tree.PointQuery(query.Point{Filename: f.Path})
	found := false
	for _, id := range got {
		if id == f.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("file in inserted unit not findable")
	}
	_ = set
}

func TestInsertManyUnitsSplits(t *testing.T) {
	tree, _ := buildTestTree(t, 300, 4, 47)
	for i := 0; i < 40; i++ {
		extra := testCorpus(t, 20, uint64(100+i))
		tree.InsertUnit(NewStorageUnit(200+i, extra.Files))
		if err := tree.Validate(); err != nil {
			t.Fatalf("Validate after insert %d: %v", i, err)
		}
	}
	if len(tree.Leaves()) != 44 {
		t.Fatalf("leaves = %d, want 44", len(tree.Leaves()))
	}
}

func TestDeleteUnit(t *testing.T) {
	tree, _ := buildTestTree(t, 600, 10, 53)
	target := tree.Leaves()[3].Unit.ID
	if !tree.DeleteUnit(target) {
		t.Fatal("DeleteUnit failed")
	}
	if tree.DeleteUnit(target) {
		t.Fatal("double delete succeeded")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after delete: %v", err)
	}
	if len(tree.Leaves()) != 9 {
		t.Fatalf("leaves = %d, want 9", len(tree.Leaves()))
	}
}

func TestDeleteManyUnitsMerges(t *testing.T) {
	tree, _ := buildTestTree(t, 800, 16, 59)
	ids := make([]int, 0, 16)
	for _, l := range tree.Leaves() {
		ids = append(ids, l.Unit.ID)
	}
	for _, id := range ids[:12] {
		if !tree.DeleteUnit(id) {
			t.Fatalf("DeleteUnit(%d) failed", id)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("Validate after deleting %d: %v", id, err)
		}
	}
	if len(tree.Leaves()) != 4 {
		t.Fatalf("leaves = %d, want 4", len(tree.Leaves()))
	}
	// Remaining files still findable via range query covering everything.
	q := query.NewRange(
		[]metadata.Attr{metadata.AttrSize},
		[]float64{0}, []float64{1e18},
	)
	got, _ := tree.RangeQuery(q)
	if len(got) != tree.TotalFiles() {
		t.Fatalf("full-range query found %d, want %d", len(got), tree.TotalFiles())
	}
}

func TestInsertDeleteFile(t *testing.T) {
	tree, set := buildTestTree(t, 300, 6, 61)
	nf := &metadata.File{ID: 999999, Path: "/new/file.bin"}
	nf.Attrs[metadata.AttrSize] = 12345
	nf.Attrs[metadata.AttrMTime] = 100
	leaf := tree.InsertFile(nf)
	if leaf == nil || !leaf.IsLeaf() {
		t.Fatal("InsertFile returned bad leaf")
	}
	got, _ := tree.PointQuery(query.Point{Filename: nf.Path})
	if len(got) != 1 || got[0] != nf.ID {
		t.Fatalf("inserted file not findable: %v", got)
	}
	if !tree.DeleteFile(nf.ID) {
		t.Fatal("DeleteFile failed")
	}
	if tree.DeleteFile(nf.ID) {
		t.Fatal("double DeleteFile succeeded")
	}
	if tree.TotalFiles() != 300 {
		t.Fatalf("TotalFiles = %d, want 300", tree.TotalFiles())
	}
	_ = set
}

func TestSampleThreshold(t *testing.T) {
	set := testCorpus(t, 200, 67)
	units := PlaceSemantic(set.Files, 10, set.Norm, metadata.AllAttrs())
	vectors := make([][]float64, len(units))
	for i, u := range units {
		vectors[i] = u.Vector(set.Norm, metadata.AllAttrs())
	}
	lo := SampleThreshold(vectors, 0.25)
	hi := SampleThreshold(vectors, 0.95)
	if lo > hi {
		t.Fatalf("quantiles inverted: %v > %v", lo, hi)
	}
	if hi <= 0 || hi > 1 {
		t.Fatalf("threshold %v out of (0,1]", hi)
	}
	if got := SampleThreshold(nil, 0.5); got != 0.5 {
		t.Fatalf("empty-vector threshold = %v, want 0.5 fallback", got)
	}
}

func TestOptimalThreshold(t *testing.T) {
	tree, _ := buildTestTree(t, 400, 12, 71)
	cands := []float64{0.3, 0.5, 0.7, 0.9}
	best, score := OptimalThreshold(tree.Leaves(), cands, 10)
	found := false
	for _, c := range cands {
		if c == best {
			found = true
		}
	}
	if !found {
		t.Fatalf("best threshold %v not among candidates", best)
	}
	if score < 0 {
		t.Fatalf("objective %v negative", score)
	}
}

func TestOptimalThresholdPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("OptimalThreshold with no candidates did not panic")
		}
	}()
	OptimalThreshold(nil, nil, 10)
}

func TestRouteRangeGroupsAndLocalSearch(t *testing.T) {
	tree, set := buildTestTree(t, 1000, 12, 73)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 79)
	agree := 0
	const n = 50
	for i := 0; i < n; i++ {
		q := gen.Range(0.05)
		targets := tree.RouteRangeGroups(q, 3)
		if len(targets) == 0 {
			t.Fatal("RouteRangeGroups returned nothing")
		}
		var local []uint64
		for _, g := range targets {
			ids, st := tree.SearchGroupRange(g, q)
			if st.GroupsTouched > 1 {
				t.Fatalf("local search touched %d groups", st.GroupsTouched)
			}
			local = append(local, ids...)
		}
		truth := query.RangeTruth(set.Files, q)
		if len(truth) == 0 {
			agree++
			continue
		}
		if stats.Recall(truth, local) > 0.5 {
			agree++
		}
	}
	// Off-line routing should usually land on groups holding most
	// results; allow slack since a window can straddle groups.
	if agree < n*3/4 {
		t.Fatalf("off-line routing found most results only %d/%d times", agree, n)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tree, _ := buildTestTree(t, 200, 6, 83)
	if err := tree.Validate(); err != nil {
		t.Fatalf("fresh tree invalid: %v", err)
	}
	// Corrupt a parent link.
	if !tree.Root.IsLeaf() && len(tree.Root.Children) > 0 {
		tree.Root.Children[0].Parent = nil
		if err := tree.Validate(); err == nil {
			t.Fatal("Validate missed corrupted parent link")
		}
	}
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint64(nil), a...)
	bs := append([]uint64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
