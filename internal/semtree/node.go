package semtree

import (
	"repro/internal/bloom"
	"repro/internal/metadata"
	"repro/internal/rtree"
)

// Node is one semantic R-tree node. Leaves wrap a StorageUnit; internal
// nodes are the index units of §2.3, each summarizing its children with
// an MBR (for complex queries), a unioned Bloom filter (for point
// queries, Fig. 4) and a centroid semantic vector (for LSI routing).
type Node struct {
	ID       int
	Level    int // 0 = leaf (storage unit)
	Unit     *StorageUnit
	Children []*Node
	Parent   *Node

	MBR    rtree.Rect
	HasMBR bool
	Filter *bloom.Filter
	Vector []float64
}

// IsLeaf reports whether the node is a storage unit.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// Leaves appends all storage-unit descendants of n to dst.
func (n *Node) Leaves(dst []*Node) []*Node {
	if n.IsLeaf() {
		return append(dst, n)
	}
	for _, c := range n.Children {
		dst = c.Leaves(dst)
	}
	return dst
}

// refresh recomputes the node's summaries from its children (or unit):
// MBR union, Bloom union, and centroid vector. It does not recurse.
func (n *Node) refresh(norm *metadata.Normalizer, attrs []metadata.Attr) {
	if n.IsLeaf() {
		n.MBR, n.HasMBR = n.Unit.MBR()
		n.Filter = n.Unit.Filter().Clone()
		n.Vector = n.Unit.Vector(norm, attrs)
		return
	}
	n.Filter = bloom.NewDefault()
	n.HasMBR = false
	n.Vector = make([]float64, len(attrs))
	live := 0
	for _, c := range n.Children {
		n.Filter.Union(c.Filter)
		if c.HasMBR {
			if !n.HasMBR {
				n.MBR = c.MBR.Clone()
				n.HasMBR = true
			} else {
				n.MBR.Expand(c.MBR)
			}
		}
		for i := range n.Vector {
			n.Vector[i] += c.Vector[i]
		}
		live++
	}
	if live > 0 {
		inv := 1 / float64(live)
		for i := range n.Vector {
			n.Vector[i] *= inv
		}
	}
}

// refreshUp refreshes n and every ancestor up to the root.
func (n *Node) refreshUp(norm *metadata.Normalizer, attrs []metadata.Attr) {
	for cur := n; cur != nil; cur = cur.Parent {
		cur.refresh(norm, attrs)
	}
}

// subtreeSize returns the number of nodes in the subtree rooted at n.
func (n *Node) subtreeSize() int {
	s := 1
	for _, c := range n.Children {
		s += c.subtreeSize()
	}
	return s
}

// height returns the height of the subtree rooted at n (leaf = 1).
func (n *Node) height() int {
	if n.IsLeaf() {
		return 1
	}
	best := 0
	for _, c := range n.Children {
		if h := c.height(); h > best {
			best = h
		}
	}
	return best + 1
}

// firstLevelAncestor returns the level-1 index unit above the leaf (the
// node whose replica vectors are distributed in off-line pre-processing,
// §3.4), or the node itself when the tree is a single level.
func (n *Node) firstLevelAncestor() *Node {
	cur := n
	for cur.Parent != nil && cur.Level < 1 {
		cur = cur.Parent
	}
	return cur
}
