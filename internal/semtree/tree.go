package semtree

import (
	"fmt"
	"math"

	"repro/internal/lsi"
	"repro/internal/metadata"
)

// Config parameterizes semantic R-tree construction.
type Config struct {
	// Attrs is the grouping predicate: the d-attribute subset whose
	// correlations drive grouping (§3.1.1). Nil selects all D attributes.
	Attrs []metadata.Attr
	// BaseThreshold is the level-1 admission threshold ε₁ ∈ [0,1].
	// Zero selects sampling analysis at DefaultThresholdQuantile.
	BaseThreshold float64
	// MaxChildren (M) and MinChildren (m) bound node fan-out (§4.1,
	// m ≤ M/2). Zero selects 10 and 2.
	MaxChildren int
	MinChildren int
}

func (c Config) withDefaults() Config {
	if c.Attrs == nil {
		c.Attrs = metadata.AllAttrs()
	}
	if c.MaxChildren == 0 {
		c.MaxChildren = 10
	}
	if c.MinChildren == 0 {
		c.MinChildren = 2
	}
	if err := c.Validate(); err != nil {
		panic(err.Error())
	}
	return c
}

// Validate reports whether the configuration can build a tree: the
// fan-out bounds, after applying defaults, must satisfy 2 ≤ m ≤ M/2
// (§4.1), and the admission threshold must lie in [0, 1]. Callers that
// accept configuration across a trust boundary (the daemon's flags, the
// root package's Build/Load) check this and return the error instead of
// letting Build panic.
func (c Config) Validate() error {
	m, M := c.MinChildren, c.MaxChildren
	if M == 0 {
		M = 10
	}
	if m == 0 {
		m = 2
	}
	if m < 0 || M < 0 {
		return fmt.Errorf("semtree: negative fan-out m=%d M=%d", c.MinChildren, c.MaxChildren)
	}
	if m < 2 || m > M/2 {
		return fmt.Errorf("semtree: invalid fan-out m=%d M=%d (need 2 ≤ m ≤ M/2)", m, M)
	}
	if c.BaseThreshold < 0 || c.BaseThreshold > 1 {
		return fmt.Errorf("semtree: admission threshold %g outside [0,1]", c.BaseThreshold)
	}
	return nil
}

// Tree is one semantic R-tree over a set of storage units.
type Tree struct {
	Root   *Node
	Norm   *metadata.Normalizer
	Attrs  []metadata.Attr
	Config Config

	// Thresholds[i] is the admission threshold ε_{i+1} used while
	// aggregating level i nodes into level i+1 parents.
	Thresholds []float64

	leaves  []*Node
	nodeSeq int
}

// Build constructs a semantic R-tree bottom-up over the given storage
// units (§3.1.2): leaves are wrapped into nodes, then recursively
// aggregated into index units under per-level LSI admission thresholds
// until a single root remains.
func Build(units []*StorageUnit, norm *metadata.Normalizer, cfg Config) *Tree {
	if len(units) == 0 {
		panic("semtree: cannot build over zero storage units")
	}
	cfg = cfg.withDefaults()
	t := &Tree{Norm: norm, Attrs: cfg.Attrs, Config: cfg}

	level := make([]*Node, len(units))
	for i, u := range units {
		n := &Node{ID: t.nextID(), Level: 0, Unit: u}
		n.refresh(norm, cfg.Attrs)
		level[i] = n
	}
	t.leaves = append([]*Node(nil), level...)

	base := cfg.BaseThreshold
	if base == 0 {
		vectors := make([][]float64, len(level))
		for i, n := range level {
			vectors[i] = n.Vector
		}
		base = SampleThreshold(vectors, DefaultThresholdQuantile)
	}

	depth := 1
	for len(level) > 1 {
		eps := levelThreshold(base, depth)
		t.Thresholds = append(t.Thresholds, eps)
		groups := groupOnce(level, eps, cfg.MaxChildren)
		next := make([]*Node, len(groups))
		for g, members := range groups {
			parent := &Node{ID: t.nextID(), Level: depth, Children: members}
			for _, m := range members {
				m.Parent = parent
			}
			parent.refresh(norm, cfg.Attrs)
			next[g] = parent
		}
		level = next
		depth++
	}
	t.Root = level[0]
	return t
}

func (t *Tree) nextID() int {
	t.nodeSeq++
	return t.nodeSeq
}

// Leaves returns the storage-unit nodes in construction order.
func (t *Tree) Leaves() []*Node { return t.leaves }

// Units returns the storage units in construction order.
func (t *Tree) Units() []*StorageUnit {
	out := make([]*StorageUnit, len(t.leaves))
	for i, n := range t.leaves {
		out[i] = n.Unit
	}
	return out
}

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.Root.height() }

// CountNodes returns (storage units, index units) — the NO(I) statistic
// the automatic-configuration heuristic compares (§2.4).
func (t *Tree) CountNodes() (storage, index int) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			storage++
			return
		}
		index++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return storage, index
}

// IndexUnits returns all non-leaf nodes, level-1 first.
func (t *Tree) IndexUnits() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	// Order by level ascending so first-level units come first.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Level < out[j-1].Level; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FirstLevelIndexUnits returns the level-1 index units — the semantic
// groups whose vectors are replicated in off-line pre-processing (§3.4).
func (t *Tree) FirstLevelIndexUnits() []*Node {
	var out []*Node
	for _, n := range t.IndexUnits() {
		if n.Level == 1 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		// Single-leaf tree: the root doubles as the only group.
		out = append(out, t.Root)
	}
	return out
}

// GroupOf returns the first-level group a leaf belongs to.
func (t *Tree) GroupOf(leaf *Node) *Node { return leaf.firstLevelAncestor() }

// TotalFiles returns the number of files across all storage units.
func (t *Tree) TotalFiles() int {
	n := 0
	for _, l := range t.leaves {
		n += l.Unit.Len()
	}
	return n
}

// SizeBytes estimates the index memory footprint of the whole tree for
// Fig. 7: per-node MBR + Bloom filter + vector, and per-unit map
// overhead. Decentralized deployment divides this across units.
func (t *Tree) SizeBytes() int {
	size := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		size += 16*int(metadata.NumAttrs) + 8*len(n.Vector) + 48
		if n.Filter != nil {
			size += n.Filter.SizeBytes()
		}
		if n.IsLeaf() {
			size += n.Unit.SizeBytes()
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return size
}

// InsertUnit adds a new storage unit to the tree (§3.2.1): the most
// closely related first-level group is located by LSI correlation over
// semantic vectors, admission-checked against the threshold, and the
// unit joins it (or the best-correlated group when none admits it).
// MBRs, filters and vectors are updated on the path to the root, and an
// overflowing group is split (§4.1).
func (t *Tree) InsertUnit(u *StorageUnit) *Node {
	validateUnitID(u.ID)
	leaf := &Node{ID: t.nextID(), Level: 0, Unit: u}
	leaf.refresh(t.Norm, t.Attrs)
	t.leaves = append(t.leaves, leaf)

	groups := t.FirstLevelIndexUnits()
	if len(groups) == 1 && groups[0] == t.Root && t.Root.IsLeaf() {
		// Degenerate single-leaf tree: create a root index unit.
		old := t.Root
		root := &Node{ID: t.nextID(), Level: 1, Children: []*Node{old, leaf}}
		old.Parent = root
		leaf.Parent = root
		root.refresh(t.Norm, t.Attrs)
		t.Root = root
		return leaf
	}

	best := t.bestGroup(groups, leaf.Vector)
	best.Children = append(best.Children, leaf)
	leaf.Parent = best
	leaf.refreshUp(t.Norm, t.Attrs)
	t.splitIfNeeded(best)
	return leaf
}

// bestGroup returns the group most semantically correlated with v under
// the §1.1 correlation measure: minimum Euclidean distance to the group
// centroid in the normalized attribute subspace. (Cosine similarity is
// used between *grouping pairs* during construction; for locating the
// group closest to a request vector, distance to the centroid is the
// measure the objective Σ (fj − Ci)² minimizes.)
func (t *Tree) bestGroup(groups []*Node, v []float64) *Node {
	best := groups[0]
	bestDist := math.Inf(1)
	for _, g := range groups {
		var d float64
		for i := range v {
			if i < len(g.Vector) {
				x := v[i] - g.Vector[i]
				d += x * x
			}
		}
		if d < bestDist {
			best, bestDist = g, d
		}
	}
	return best
}

// splitIfNeeded splits a node exceeding M children into two by vector
// similarity, propagating overflow upward (§4.1).
func (t *Tree) splitIfNeeded(n *Node) {
	for n != nil && len(n.Children) > t.Config.MaxChildren {
		g1, g2 := splitBySimilarity(n.Children)
		if n.Parent == nil {
			// Split the root: grow the tree by one level.
			a := &Node{ID: t.nextID(), Level: n.Level, Children: g1}
			b := &Node{ID: t.nextID(), Level: n.Level, Children: g2}
			for _, c := range g1 {
				c.Parent = a
			}
			for _, c := range g2 {
				c.Parent = b
			}
			a.refresh(t.Norm, t.Attrs)
			b.refresh(t.Norm, t.Attrs)
			root := &Node{ID: t.nextID(), Level: n.Level + 1, Children: []*Node{a, b}}
			a.Parent = root
			b.Parent = root
			root.refresh(t.Norm, t.Attrs)
			t.Root = root
			return
		}
		parent := n.Parent
		n.Children = g1
		for _, c := range g1 {
			c.Parent = n
		}
		sib := &Node{ID: t.nextID(), Level: n.Level, Children: g2}
		for _, c := range g2 {
			c.Parent = sib
		}
		n.refresh(t.Norm, t.Attrs)
		sib.refresh(t.Norm, t.Attrs)
		sib.Parent = parent
		parent.Children = append(parent.Children, sib)
		parent.refreshUp(t.Norm, t.Attrs)
		n = parent
	}
}

// splitBySimilarity partitions children into two groups seeded by the
// least-similar pair (the semantic analogue of Guttman's PickSeeds).
func splitBySimilarity(children []*Node) (g1, g2 []*Node) {
	s1, s2 := 0, 1
	worst := 2.0
	for i := 0; i < len(children); i++ {
		for j := i + 1; j < len(children); j++ {
			if s := lsi.DistanceCorrelation(children[i].Vector, children[j].Vector); s < worst {
				worst, s1, s2 = s, i, j
			}
		}
	}
	g1 = append(g1, children[s1])
	g2 = append(g2, children[s2])
	for i, c := range children {
		if i == s1 || i == s2 {
			continue
		}
		a := lsi.DistanceCorrelation(c.Vector, children[s1].Vector)
		b := lsi.DistanceCorrelation(c.Vector, children[s2].Vector)
		// Keep groups balanced when similarity doesn't discriminate.
		switch {
		case a > b && len(g1) <= len(g2)+1:
			g1 = append(g1, c)
		case b > a && len(g2) <= len(g1)+1:
			g2 = append(g2, c)
		case len(g1) <= len(g2):
			g1 = append(g1, c)
		default:
			g2 = append(g2, c)
		}
	}
	return g1, g2
}

// DeleteUnit removes a storage unit from the tree (§3.2.2), adjusting
// group vectors and MBRs, merging an underflowing group into its
// sibling, and propagating height adjustment upward. It reports whether
// the unit was found.
func (t *Tree) DeleteUnit(id int) bool {
	var leaf *Node
	for i, l := range t.leaves {
		if l.Unit.ID == id {
			leaf = l
			t.leaves = append(t.leaves[:i], t.leaves[i+1:]...)
			break
		}
	}
	if leaf == nil {
		return false
	}
	if leaf.Parent == nil {
		panic("semtree: cannot delete the last storage unit")
	}
	parent := leaf.Parent
	for i, c := range parent.Children {
		if c == leaf {
			parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
			break
		}
	}
	parent.refreshUp(t.Norm, t.Attrs)
	t.mergeIfNeeded(parent)
	return true
}

// mergeIfNeeded merges a node with fewer than m children into its most
// similar sibling (§3.2.2, §4.1) and collapses single-child chains.
func (t *Tree) mergeIfNeeded(n *Node) {
	for n != nil && n.Parent != nil && len(n.Children) < t.Config.MinChildren {
		parent := n.Parent
		// Find the most semantically similar sibling.
		var sib *Node
		bestSim := -1.0
		for _, c := range parent.Children {
			if c == n {
				continue
			}
			if s := lsi.DistanceCorrelation(c.Vector, n.Vector); s > bestSim {
				sib, bestSim = c, s
			}
		}
		if sib == nil {
			// n is the only child: collapse the parent ("when a group
			// becomes a child node of its former grandparent ... its
			// height adjustment is propagated upwardly").
			t.replaceChild(parent, n)
			n = parent.Parent
			continue
		}
		// Move n's children into the sibling.
		sib.Children = append(sib.Children, n.Children...)
		for _, c := range n.Children {
			c.Parent = sib
		}
		t.removeChild(parent, n)
		sib.refresh(t.Norm, t.Attrs)
		t.splitIfNeeded(sib)
		parent.refreshUp(t.Norm, t.Attrs)
		n = parent
	}
	// Collapse a root with a single non-leaf child.
	for !t.Root.IsLeaf() && len(t.Root.Children) == 1 {
		t.Root = t.Root.Children[0]
		t.Root.Parent = nil
	}
}

func (t *Tree) replaceChild(parent, child *Node) {
	grand := parent.Parent
	if grand == nil {
		t.Root = child
		child.Parent = nil
		return
	}
	for i, c := range grand.Children {
		if c == parent {
			grand.Children[i] = child
			child.Parent = grand
			grand.refreshUp(t.Norm, t.Attrs)
			return
		}
	}
}

func (t *Tree) removeChild(parent, child *Node) {
	for i, c := range parent.Children {
		if c == child {
			parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
			return
		}
	}
}

// InsertFile routes a file to the storage unit whose centroid is
// closest in the normalized attribute subspace at every tree level,
// then updates summaries on the root path. It returns the chosen leaf.
func (t *Tree) InsertFile(f *metadata.File) *Node {
	v := t.Norm.Vector(f, t.Attrs)
	cur := t.Root
	for !cur.IsLeaf() {
		cur = t.bestGroup(cur.Children, v)
	}
	cur.Unit.AddFile(f)
	cur.refreshUp(t.Norm, t.Attrs)
	return cur
}

// ModifyFile replaces a stored file's attributes in place and refreshes
// the owning unit's MBR plus the summaries on the root path. The path
// refresh is not optional: attributes moving outside the old MBR would
// otherwise leave the file invisible to range and top-k descent, which
// prune subtrees by MBR. It returns the stored record and its leaf.
func (t *Tree) ModifyFile(f *metadata.File) (*Node, *metadata.File, bool) {
	for _, leaf := range t.leaves {
		for _, existing := range leaf.Unit.Files {
			if existing.ID != f.ID {
				continue
			}
			existing.Attrs = f.Attrs
			leaf.Unit.recomputeMBR()
			leaf.refreshUp(t.Norm, t.Attrs)
			return leaf, existing, true
		}
	}
	return nil, nil, false
}

// DeleteFile removes the file with the given id from the unit that
// holds it, reporting success.
func (t *Tree) DeleteFile(id uint64) bool {
	for _, leaf := range t.leaves {
		if leaf.Unit.RemoveFile(id) {
			leaf.refreshUp(t.Norm, t.Attrs)
			return true
		}
	}
	return false
}

// Validate checks the structural invariants of the tree: parent/child
// linkage, level monotonicity, MBR containment, Bloom-filter union
// coverage, and fan-out bounds. It returns the first violation found.
// Tests and failure-injection harnesses call this after mutations.
func (t *Tree) Validate() error {
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.IsLeaf() {
			if n.Unit == nil {
				return fmt.Errorf("leaf node %d has no storage unit", n.ID)
			}
			return nil
		}
		if len(n.Children) == 0 {
			return fmt.Errorf("index unit %d has no children", n.ID)
		}
		if len(n.Children) > t.Config.MaxChildren {
			return fmt.Errorf("index unit %d has %d children > M=%d", n.ID, len(n.Children), t.Config.MaxChildren)
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("child %d of node %d has wrong parent link", c.ID, n.ID)
			}
			if c.Level >= n.Level {
				return fmt.Errorf("child %d level %d not below parent %d level %d", c.ID, c.Level, n.ID, n.Level)
			}
			if c.HasMBR && n.HasMBR && !n.MBR.Contains(c.MBR) {
				return fmt.Errorf("node %d MBR does not contain child %d MBR", n.ID, c.ID)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.Root)
}
