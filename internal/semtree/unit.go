// Package semtree implements SmartStore's core contribution: the
// semantic R-tree (paper §2–§4). File metadata is aggregated into
// storage units (leaf nodes) by semantic correlation, storage units are
// recursively grouped into index units (non-leaf nodes) with LSI-driven
// admission thresholds, and every tree node carries both a Minimum
// Bounding Rectangle over the full attribute space (for complex
// queries) and a Bloom filter over filenames (for point queries).
package semtree

import (
	"fmt"
	"math"

	"repro/internal/bloom"
	"repro/internal/metadata"
	"repro/internal/rtree"
)

// StorageUnit is a leaf of the semantic R-tree: one metadata server's
// share of the file population (§2.3 "Each metadata server is a leaf
// node in our semantic R-tree").
type StorageUnit struct {
	ID    int
	Files []*metadata.File

	byPath map[string][]*metadata.File
	filter *bloom.Filter
	mbr    rtree.Rect
	hasMBR bool
}

// NewStorageUnit creates a unit with the given files (which may be
// empty). The Bloom filter uses the §5.1 prototype geometry.
func NewStorageUnit(id int, files []*metadata.File) *StorageUnit {
	u := &StorageUnit{
		ID:     id,
		byPath: make(map[string][]*metadata.File, len(files)),
		filter: bloom.NewDefault(),
	}
	for _, f := range files {
		u.addFile(f)
	}
	return u
}

func (u *StorageUnit) addFile(f *metadata.File) {
	u.Files = append(u.Files, f)
	u.byPath[f.Path] = append(u.byPath[f.Path], f)
	u.filter.Add(f.Path)
	r := fileRect(f)
	if !u.hasMBR {
		u.mbr = r
		u.hasMBR = true
	} else {
		u.mbr.Expand(r)
	}
}

// AddFile inserts f into the unit, updating the Bloom filter and MBR.
func (u *StorageUnit) AddFile(f *metadata.File) { u.addFile(f) }

// RemoveFile removes the file with the given id, reporting whether it
// was present. The Bloom filter intentionally retains the name (Bloom
// filters cannot delete); §5.4.1 accounts the resulting false positives.
// The MBR is recomputed exactly.
func (u *StorageUnit) RemoveFile(id uint64) bool {
	for i, f := range u.Files {
		if f.ID != id {
			continue
		}
		u.Files = append(u.Files[:i], u.Files[i+1:]...)
		paths := u.byPath[f.Path]
		for j, pf := range paths {
			if pf.ID == id {
				u.byPath[f.Path] = append(paths[:j], paths[j+1:]...)
				break
			}
		}
		if len(u.byPath[f.Path]) == 0 {
			delete(u.byPath, f.Path)
		}
		u.recomputeMBR()
		return true
	}
	return false
}

func (u *StorageUnit) recomputeMBR() {
	u.hasMBR = false
	for _, f := range u.Files {
		r := fileRect(f)
		if !u.hasMBR {
			u.mbr = r
			u.hasMBR = true
		} else {
			u.mbr.Expand(r)
		}
	}
}

// Len returns the number of files stored.
func (u *StorageUnit) Len() int { return len(u.Files) }

// Filter returns the unit's Bloom filter.
func (u *StorageUnit) Filter() *bloom.Filter { return u.filter }

// MBR returns the unit's bounding rectangle over the full attribute
// space, and whether the unit is non-empty.
func (u *StorageUnit) MBR() (rtree.Rect, bool) { return u.mbr, u.hasMBR }

// LookupPath returns the files stored under the exact path.
func (u *StorageUnit) LookupPath(path string) []*metadata.File {
	return u.byPath[path]
}

// MayContain reports whether the Bloom filter admits the path.
func (u *StorageUnit) MayContain(path string) bool {
	return u.filter.Contains(path)
}

// Vector returns the unit's semantic vector: the centroid of its files'
// normalized attribute vectors over attrs (§3.1.2 "a semantic vector
// with d attributes is constructed ... to represent each of the N
// metadata nodes"). Empty units yield a zero vector.
func (u *StorageUnit) Vector(n *metadata.Normalizer, attrs []metadata.Attr) []float64 {
	if c := metadata.Centroid(n, u.Files, attrs); c != nil {
		return c
	}
	return make([]float64, len(attrs))
}

// SizeBytes estimates the unit's index-side memory footprint (filter +
// MBR + per-file path map overhead), used in Fig. 7. File metadata
// itself is payload, not index, and is excluded.
func (u *StorageUnit) SizeBytes() int {
	return u.filter.SizeBytes() + 16*int(metadata.NumAttrs) + 24*len(u.Files)
}

// fileRect returns the degenerate full-attribute-space rectangle of a
// single file.
func fileRect(f *metadata.File) rtree.Rect {
	p := make([]float64, metadata.NumAttrs)
	for a := 0; a < int(metadata.NumAttrs); a++ {
		p[a] = f.Attrs[a]
	}
	return rtree.PointRect(p)
}

// queryRect lifts a range query on a subset of attributes into the full
// D-dimensional attribute space, leaving unqueried dimensions unbounded.
func queryRect(attrs []metadata.Attr, lo, hi []float64) rtree.Rect {
	l := make([]float64, metadata.NumAttrs)
	h := make([]float64, metadata.NumAttrs)
	for a := range l {
		l[a] = math.Inf(-1)
		h[a] = math.Inf(1)
	}
	for i, a := range attrs {
		l[a], h[a] = lo[i], hi[i]
	}
	return rtree.Rect{Lo: l, Hi: h}
}

// normalizedMinDist returns the minimum normalized-space Euclidean
// distance from the query point (raw units, over attrs) to the MBR.
func normalizedMinDist(n *metadata.Normalizer, r rtree.Rect, attrs []metadata.Attr, point []float64) float64 {
	var s float64
	for i, a := range attrs {
		v := n.Value(a, point[i])
		lo := n.Value(a, r.Lo[a])
		hi := n.Value(a, r.Hi[a])
		var d float64
		switch {
		case v < lo:
			d = lo - v
		case v > hi:
			d = v - hi
		}
		s += d * d
	}
	return math.Sqrt(s)
}

func validateUnitID(id int) {
	if id < 0 {
		panic(fmt.Sprintf("semtree: negative unit id %d", id))
	}
}
