package semtree

import (
	"testing"

	"repro/internal/metadata"
)

func TestAutoConfigureKeepsFullTree(t *testing.T) {
	set := testCorpus(t, 400, 101)
	units := PlaceSemantic(set.Files, 10, set.Norm, metadata.AllAttrs())
	f := AutoConfigure(units, set.Norm, Config{}, nil, 0)
	if f.Full == nil {
		t.Fatal("forest lacks the full-D tree")
	}
	if f.Threshold != DefaultAutoConfigThreshold {
		t.Fatalf("threshold = %v, want default %v", f.Threshold, DefaultAutoConfigThreshold)
	}
	if f.Considered != len(DefaultSubsets()) {
		t.Fatalf("considered %d subsets, want %d", f.Considered, len(DefaultSubsets()))
	}
	if f.Kept != len(f.Specialized) {
		t.Fatalf("Kept=%d but %d specialized trees", f.Kept, len(f.Specialized))
	}
	if f.SizeBytes() <= f.Full.SizeBytes() && len(f.Specialized) > 0 {
		t.Fatal("forest size must exceed single tree when specialized trees kept")
	}
}

func TestAutoConfigureHighThresholdKeepsFewer(t *testing.T) {
	set := testCorpus(t, 400, 103)
	units := PlaceSemantic(set.Files, 12, set.Norm, metadata.AllAttrs())
	loose := AutoConfigure(units, set.Norm, Config{}, nil, 0.01)
	strict := AutoConfigure(units, set.Norm, Config{}, nil, 5.0)
	if strict.Kept > loose.Kept {
		t.Fatalf("stricter threshold kept more trees (%d > %d)", strict.Kept, loose.Kept)
	}
	if strict.Kept != 0 {
		t.Fatalf("threshold 500%% should keep no specialized trees, kept %d", strict.Kept)
	}
}

func TestSelectTreePrefersMatchingSubset(t *testing.T) {
	set := testCorpus(t, 300, 107)
	units := PlaceSemantic(set.Files, 8, set.Norm, metadata.AllAttrs())
	subsets := [][]metadata.Attr{
		{metadata.AttrSize},
		{metadata.AttrSize, metadata.AttrCTime},
	}
	f := AutoConfigure(units, set.Norm, Config{}, subsets, 0.0001)
	// Query over attributes no specialized tree covers → full tree.
	if got := f.SelectTree([]metadata.Attr{metadata.AttrAccessFreq}); got != f.Full {
		t.Fatal("unmatched query should select the full tree")
	}
	// Query exactly matching a kept subset selects it (when kept).
	for _, tr := range f.Specialized {
		got := f.SelectTree(tr.Attrs)
		if got == f.Full {
			t.Fatalf("query matching subset %v fell back to full tree", SubsetKey(tr.Attrs))
		}
	}
}

func TestSelectTreeNoExtraneousDims(t *testing.T) {
	set := testCorpus(t, 300, 109)
	units := PlaceSemantic(set.Files, 8, set.Norm, metadata.AllAttrs())
	subsets := [][]metadata.Attr{
		{metadata.AttrSize, metadata.AttrCTime, metadata.AttrMTime},
	}
	f := AutoConfigure(units, set.Norm, Config{}, subsets, 0.0001)
	// A 1-attribute query must not select a 3-attribute tree whose extra
	// dims would mis-group: it lacks full overlap, so fall back.
	got := f.SelectTree([]metadata.Attr{metadata.AttrSize})
	if got != f.Full {
		t.Fatal("partial-overlap specialized tree selected over full tree")
	}
}

func TestTreesIncludesAll(t *testing.T) {
	set := testCorpus(t, 200, 113)
	units := PlaceSemantic(set.Files, 6, set.Norm, metadata.AllAttrs())
	f := AutoConfigure(units, set.Norm, Config{}, nil, 0.0001)
	if len(f.Trees()) != 1+len(f.Specialized) {
		t.Fatalf("Trees() = %d, want %d", len(f.Trees()), 1+len(f.Specialized))
	}
	if f.Trees()[0] != f.Full {
		t.Fatal("Trees()[0] should be the full tree")
	}
}

func TestSubsetKeyStable(t *testing.T) {
	a := SubsetKey([]metadata.Attr{metadata.AttrCTime, metadata.AttrSize})
	b := SubsetKey([]metadata.Attr{metadata.AttrSize, metadata.AttrCTime})
	if a != b {
		t.Fatalf("SubsetKey order-dependent: %q vs %q", a, b)
	}
	if a != "ctime+size" {
		t.Fatalf("SubsetKey = %q, want ctime+size", a)
	}
}

func TestDefaultSubsetsCount(t *testing.T) {
	// 5 single + C(5,2)=10 pairs.
	if got := len(DefaultSubsets()); got != 15 {
		t.Fatalf("DefaultSubsets = %d, want 15", got)
	}
}

func TestSpecializedTreeAnswersQueriesCorrectly(t *testing.T) {
	set := testCorpus(t, 500, 127)
	units := PlaceSemantic(set.Files, 8, set.Norm, metadata.AllAttrs())
	subsets := [][]metadata.Attr{{metadata.AttrSize}}
	f := AutoConfigure(units, set.Norm, Config{}, subsets, 0.0001)
	for _, tr := range f.Trees() {
		if tr.TotalFiles() != 500 {
			t.Fatalf("tree %v holds %d files, want 500", tr.Attrs, tr.TotalFiles())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %v invalid: %v", tr.Attrs, err)
		}
	}
}
