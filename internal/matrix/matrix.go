// Package matrix provides the dense linear-algebra substrate used by the
// LSI semantic-analysis layer: a row-major dense matrix type, the usual
// products and norms, and a one-sided Jacobi singular value decomposition.
//
// The package is intentionally small and dependency-free (stdlib only).
// Matrices in this system are modest — attribute-item matrices with at
// most a few dozen rows (attributes) and a few thousand columns (files or
// storage units) — so a robust O(n·m²) Jacobi SVD is both simple and fast
// enough, and avoids the numerical fragility of hand-rolled QR iteration.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// NewDense returns a zeroed r×c matrix.
// It panics if r or c is not positive.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) in a Dense without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", r, c))
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: data length %d != %d*%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product a*b.
// It panics if the inner dimensions disagree.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*v.
func (m *Dense) MulVec(v []float64) []float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: vector length %d != cols %d", len(v), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element of m by f in place and returns m.
func (m *Dense) Scale(f float64) *Dense {
	for i := range m.data {
		m.data[i] *= f
	}
	return m
}

// Sub returns a-b as a new matrix. It panics on shape mismatch.
func Sub(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d - %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value of m.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the inner product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b, or 0 when either is
// the zero vector.
func Cosine(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// ErrNoConvergence reports that the Jacobi sweep limit was reached before
// the off-diagonal mass fell under tolerance. The decomposition returned
// alongside it is still usable but of reduced accuracy.
var ErrNoConvergence = errors.New("matrix: SVD did not converge")
