package matrix

import (
	"math"
	"sort"
)

// SVD holds a (thin) singular value decomposition A = U Σ Vᵀ where A is
// m×n, U is m×r, V is n×r, and Σ = diag(Sigma) with r = min(m, n).
// Singular values are sorted in decreasing order; columns of U and V are
// ordered to match.
type SVD struct {
	U     *Dense    // m×r, orthonormal columns
	Sigma []float64 // r singular values, descending
	V     *Dense    // n×r, orthonormal columns
}

const (
	svdMaxSweeps = 60
	svdTol       = 1e-12
)

// ComputeSVD computes the thin SVD of a by one-sided Jacobi rotations.
//
// The method orthogonalizes pairs of columns of a working copy W of A (or
// Aᵀ when m < n, swapping the roles of U and V afterwards). On exit the
// columns of W equal uᵢσᵢ; normalizing yields U and the singular values,
// and accumulating the rotations yields V. One-sided Jacobi is backward
// stable and computes even tiny singular values to high relative
// accuracy, which matters because LSI truncates on their magnitudes.
//
// ComputeSVD returns ErrNoConvergence if the off-diagonal mass has not
// fallen below tolerance after a fixed number of sweeps; the
// decomposition returned with it is the best iterate and remains usable.
func ComputeSVD(a *Dense) (*SVD, error) {
	if a.rows >= a.cols {
		return jacobiSVD(a)
	}
	// For wide matrices decompose the transpose and swap factors:
	// Aᵀ = U Σ Vᵀ  ⇒  A = V Σ Uᵀ.
	s, err := jacobiSVD(a.T())
	if err != nil && err != ErrNoConvergence {
		return nil, err
	}
	return &SVD{U: s.V, Sigma: s.Sigma, V: s.U}, err
}

// jacobiSVD runs one-sided Jacobi on a tall (m ≥ n) matrix.
func jacobiSVD(a *Dense) (*SVD, error) {
	m, n := a.rows, a.cols
	w := a.Clone() // working copy whose columns converge to uᵢσᵢ
	v := eye(n)

	var err error
	converged := false
	for sweep := 0; sweep < svdMaxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries for the (p,q) column pair.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					cp := w.data[i*n+p]
					cq := w.data[i*n+q]
					app += cp * cp
					aqq += cq * cq
					apq += cp * cq
				}
				if math.Abs(apq) <= svdTol*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq

				// Jacobi rotation zeroing the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t

				for i := 0; i < m; i++ {
					cp := w.data[i*n+p]
					cq := w.data[i*n+q]
					w.data[i*n+p] = c*cp - s*cq
					w.data[i*n+q] = s*cp + c*cq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			converged = true
			break
		}
	}
	if !converged {
		err = ErrNoConvergence
	}

	// Column norms are the singular values.
	sigma := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < m; i++ {
			x := w.data[i*n+j]
			s += x * x
		}
		sigma[j] = math.Sqrt(s)
	}

	// Sort descending, permuting U and V columns alike.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return sigma[idx[x]] > sigma[idx[y]] })

	u := NewDense(m, n)
	vOut := NewDense(n, n)
	sOut := make([]float64, n)
	for newJ, oldJ := range idx {
		sOut[newJ] = sigma[oldJ]
		if sigma[oldJ] > 0 {
			inv := 1 / sigma[oldJ]
			for i := 0; i < m; i++ {
				u.data[i*n+newJ] = w.data[i*n+oldJ] * inv
			}
		}
		for i := 0; i < n; i++ {
			vOut.data[i*n+newJ] = v.data[i*n+oldJ]
		}
	}
	return &SVD{U: u, Sigma: sOut, V: vOut}, err
}

// Truncate returns the rank-p decomposition: the first p columns of U and
// V and the first p singular values. If p exceeds the available rank it
// is clamped.
func (s *SVD) Truncate(p int) *SVD {
	r := len(s.Sigma)
	if p >= r {
		return s
	}
	if p < 1 {
		p = 1
	}
	return &SVD{
		U:     firstCols(s.U, p),
		Sigma: append([]float64(nil), s.Sigma[:p]...),
		V:     firstCols(s.V, p),
	}
}

// Rank returns the numerical rank of the decomposition: the number of
// singular values exceeding tol relative to the largest.
func (s *SVD) Rank(tol float64) int {
	if len(s.Sigma) == 0 || s.Sigma[0] == 0 {
		return 0
	}
	r := 0
	for _, sv := range s.Sigma {
		if sv > tol*s.Sigma[0] {
			r++
		}
	}
	return r
}

// Reconstruct returns U Σ Vᵀ, the (possibly truncated) approximation of
// the original matrix.
func (s *SVD) Reconstruct() *Dense {
	p := len(s.Sigma)
	us := s.U.Clone()
	for j := 0; j < p; j++ {
		for i := 0; i < us.rows; i++ {
			us.data[i*us.cols+j] *= s.Sigma[j]
		}
	}
	return Mul(us, s.V.T())
}

func firstCols(m *Dense, p int) *Dense {
	out := NewDense(m.rows, p)
	for i := 0; i < m.rows; i++ {
		copy(out.data[i*p:(i+1)*p], m.data[i*m.cols:i*m.cols+p])
	}
	return out
}

func eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}
