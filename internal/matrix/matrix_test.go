package matrix

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewDense(dims[0], dims[1])
		}()
	}
}

func TestNewDenseDataLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDenseData with short data did not panic")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 42.5)
	if got := m.At(1, 2); got != 42.5 {
		t.Fatalf("At(1,2) = %v, want 42.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestRowColCopies(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	c := m.Col(0)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v, want [3 4]", r)
	}
	if c[0] != 1 || c[1] != 3 {
		t.Fatalf("Col(0) = %v, want [1 3]", c)
	}
	r[0] = 99
	c[0] = 99
	if m.At(1, 0) != 3 || m.At(0, 0) != 1 {
		t.Fatal("Row/Col must return copies, not views")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	p := Mul(a, b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mul with mismatched dims did not panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVec(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", got)
	}
}

func TestSubAndNorms(t *testing.T) {
	a := NewDenseData(2, 2, []float64{3, 0, 0, 4})
	b := NewDenseData(2, 2, []float64{0, 0, 0, 0})
	d := Sub(a, b)
	if !almostEq(d.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("FrobeniusNorm = %v, want 5", d.FrobeniusNorm())
	}
	if d.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v, want 4", d.MaxAbs())
	}
}

func TestDotCosine(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if Dot(a, b) != 0 {
		t.Fatal("orthogonal dot != 0")
	}
	if Cosine(a, a) != 1 {
		t.Fatalf("Cosine(a,a) = %v, want 1", Cosine(a, a))
	}
	if Cosine(a, []float64{0, 0}) != 0 {
		t.Fatal("cosine with zero vector should be 0")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func checkOrthonormalCols(t *testing.T, m *Dense, tol float64) {
	t.Helper()
	g := Mul(m.T(), m)
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if !almostEq(g.At(i, j), want, tol) {
				t.Fatalf("columns not orthonormal: G[%d][%d] = %v", i, j, g.At(i, j))
			}
		}
	}
}

func TestSVDIdentity(t *testing.T) {
	s, err := ComputeSVD(eye(4))
	if err != nil {
		t.Fatalf("SVD error: %v", err)
	}
	for i, sv := range s.Sigma {
		if !almostEq(sv, 1, 1e-10) {
			t.Fatalf("sigma[%d] = %v, want 1", i, sv)
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		3, 0, 0,
		0, 5, 0,
		0, 0, 1,
	})
	s, err := ComputeSVD(a)
	if err != nil {
		t.Fatalf("SVD error: %v", err)
	}
	want := []float64{5, 3, 1}
	for i, w := range want {
		if !almostEq(s.Sigma[i], w, 1e-10) {
			t.Fatalf("sigma[%d] = %v, want %v", i, s.Sigma[i], w)
		}
	}
}

func TestSVDReconstructionTallWideSquare(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, dims := range [][2]int{{8, 5}, {5, 8}, {6, 6}, {1, 4}, {4, 1}, {2, 2}} {
		a := randomMatrix(rng, dims[0], dims[1])
		s, err := ComputeSVD(a)
		if err != nil {
			t.Fatalf("SVD %v error: %v", dims, err)
		}
		diff := Sub(s.Reconstruct(), a)
		if rel := diff.FrobeniusNorm() / a.FrobeniusNorm(); rel > 1e-9 {
			t.Fatalf("%v: reconstruction error %v too large", dims, rel)
		}
		checkOrthonormalCols(t, s.U, 1e-9)
		checkOrthonormalCols(t, s.V, 1e-9)
		for i := 1; i < len(s.Sigma); i++ {
			if s.Sigma[i] > s.Sigma[i-1]+1e-12 {
				t.Fatalf("%v: singular values not sorted: %v", dims, s.Sigma)
			}
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := NewDense(4, 3)
	u := []float64{1, 2, 3, 4}
	v := []float64{1, 1, 2}
	for i := range u {
		for j := range v {
			a.Set(i, j, u[i]*v[j])
		}
	}
	s, err := ComputeSVD(a)
	if err != nil {
		t.Fatalf("SVD error: %v", err)
	}
	if got := s.Rank(1e-10); got != 1 {
		t.Fatalf("Rank = %d, want 1 (sigma=%v)", got, s.Sigma)
	}
	diff := Sub(s.Reconstruct(), a)
	if rel := diff.FrobeniusNorm() / a.FrobeniusNorm(); rel > 1e-9 {
		t.Fatalf("rank-1 reconstruction error %v", rel)
	}
}

func TestSVDTruncate(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := randomMatrix(rng, 10, 6)
	s, err := ComputeSVD(a)
	if err != nil {
		t.Fatalf("SVD error: %v", err)
	}
	for _, p := range []int{1, 3, 6, 99} {
		tr := s.Truncate(p)
		wantP := p
		if wantP > 6 {
			wantP = 6
		}
		if len(tr.Sigma) != wantP {
			t.Fatalf("Truncate(%d) kept %d values, want %d", p, len(tr.Sigma), wantP)
		}
		if tr.U.Cols() != wantP || tr.V.Cols() != wantP {
			t.Fatalf("Truncate(%d) factor widths %d/%d, want %d", p, tr.U.Cols(), tr.V.Cols(), wantP)
		}
	}
	// Eckart–Young: the rank-p truncation is the best rank-p approximation;
	// its error equals sqrt(sum of squared discarded singular values).
	tr := s.Truncate(3)
	diff := Sub(tr.Reconstruct(), a)
	var want float64
	for _, sv := range s.Sigma[3:] {
		want += sv * sv
	}
	want = math.Sqrt(want)
	if !almostEq(diff.FrobeniusNorm(), want, 1e-8*(1+want)) {
		t.Fatalf("truncation error = %v, want %v", diff.FrobeniusNorm(), want)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	s, err := ComputeSVD(NewDense(3, 2))
	if err != nil {
		t.Fatalf("SVD error: %v", err)
	}
	for _, sv := range s.Sigma {
		if sv != 0 {
			t.Fatalf("zero matrix sigma = %v, want all zeros", s.Sigma)
		}
	}
	if s.Rank(1e-10) != 0 {
		t.Fatalf("zero matrix rank = %d, want 0", s.Rank(1e-10))
	}
}

// Property: for random matrices, reconstruction is accurate and singular
// values are non-negative and sorted.
func TestSVDPropertyRandom(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		r := 1 + int(rng.Uint64()%10)
		c := 1 + int(rng.Uint64()%10)
		a := randomMatrix(rng, r, c)
		s, err := ComputeSVD(a)
		if err != nil {
			return false
		}
		diff := Sub(s.Reconstruct(), a)
		denom := a.FrobeniusNorm()
		if denom == 0 {
			denom = 1
		}
		if diff.FrobeniusNorm()/denom > 1e-8 {
			return false
		}
		for i, sv := range s.Sigma {
			if sv < 0 {
				return false
			}
			if i > 0 && sv > s.Sigma[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm is invariant under SVD (sum of squared
// singular values equals squared Frobenius norm of A).
func TestSVDPropertyNormInvariant(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		r := 2 + int(rng.Uint64()%8)
		c := 2 + int(rng.Uint64()%8)
		a := randomMatrix(rng, r, c)
		s, err := ComputeSVD(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, sv := range s.Sigma {
			sum += sv * sv
		}
		af := a.FrobeniusNorm()
		return almostEq(math.Sqrt(sum), af, 1e-8*(1+af))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSVD60x8(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := randomMatrix(rng, 60, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeSVD(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul100(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 10))
	x := randomMatrix(rng, 100, 100)
	y := randomMatrix(rng, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
