package engine

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// attachTestWAL wires a fresh segmented WAL per shard into the engine.
func attachTestWAL(t testing.TB, e *Engine, dir string) []*wal.Log {
	t.Helper()
	logs := make([]*wal.Log, e.Shards())
	for i := range logs {
		l, _, err := wal.Open(filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", i)), i,
			wal.SyncNever, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}
	if err := e.AttachWAL(logs); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, l := range logs {
			l.Close()
		}
	})
	return logs
}

// TestCheckpointEncodeDoesNotHoldShardLocks is the lock-light
// checkpoint contract, run under -race in CI: while the snapshot
// write (the stand-in for the expensive gob encode + fsync) is in
// flight, a write to a shard must commit — no all-shard lock is held
// during the encode. Under the pre-segmentation protocol, which held
// every shard's read lock across the write callback, the insert below
// would deadlock against the blocked callback and the test would time
// out.
func TestCheckpointEncodeDoesNotHoldShardLocks(t *testing.T) {
	e, set := buildEngine(t, 300, 8, 4)
	logs := attachTestWAL(t, e, t.TempDir())

	entered := make(chan struct{})
	release := make(chan struct{})
	ckptErr := make(chan error, 1)
	go func() {
		ckptErr <- e.Checkpoint(func(snap *snapshot.Snapshot) error {
			close(entered)
			<-release
			return nil
		})
	}()
	<-entered

	done := make(chan error, 1)
	go func() {
		f := *set.Files[0]
		f.ID = 1 << 40
		f.Path = "/ckpt/mid-encode.dat"
		_, err := e.InsertBatch([]*metadata.File{&f})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("insert during checkpoint encode: %v", err)
		}
	case <-time.After(10 * time.Second):
		close(release)
		t.Fatal("write blocked while the checkpoint's snapshot encode was in flight")
	}
	close(release)
	if err := <-ckptErr; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// The mid-encode insert postdates the rotation boundary, so its
	// record must survive the checkpoint's deferred truncation.
	var live, headerOnly int64
	for _, l := range logs {
		live += l.Size()
		headerOnly += int64(wal.SegmentHeaderSize)
	}
	if live <= headerOnly {
		t.Fatalf("mid-encode insert's WAL record was truncated away: %d live bytes", live)
	}
	if _, ok := e.FileByID(1 << 40); !ok {
		t.Fatal("mid-encode insert not visible after checkpoint")
	}
}

// TestCheckpointRetiresCoveredSegments: records captured by the
// snapshot are deleted by the deferred truncation, records appended
// after the capture are kept — the boundary and the snapshot epochs
// agree exactly.
func TestCheckpointRetiresCoveredSegments(t *testing.T) {
	e, set := buildEngine(t, 200, 6, 2)
	logs := attachTestWAL(t, e, t.TempDir())

	for j := 0; j < 6; j++ {
		f := *set.Files[j]
		f.ID = uint64(1<<40 + j)
		f.Path = fmt.Sprintf("/pre/%d.dat", j)
		if _, err := e.InsertBatch([]*metadata.File{&f}); err != nil {
			t.Fatal(err)
		}
	}
	var preBytes int64
	for _, l := range logs {
		preBytes += l.Size()
	}

	var snap *snapshot.Snapshot
	if err := e.Checkpoint(func(s *snapshot.Snapshot) error { snap = s; return nil }); err != nil {
		t.Fatal(err)
	}
	var postBytes int64
	for _, l := range logs {
		postBytes += l.Size()
	}
	if postBytes >= preBytes {
		t.Fatalf("deferred truncation retired nothing: %d → %d bytes", preBytes, postBytes)
	}
	if snap.FileCount() != 206 {
		t.Fatalf("snapshot captured %d files, want 206", snap.FileCount())
	}
	// A second, mutation-free checkpoint must not churn segments.
	st0 := logs[0].Stats()
	if err := e.Checkpoint(func(*snapshot.Snapshot) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := logs[0].Stats(); got.Rotations != st0.Rotations {
		t.Fatalf("idle checkpoint rotated segments: %d → %d", st0.Rotations, got.Rotations)
	}
}
