package engine

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/merge"
	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/trace"
)

func testConfig(units, shards int) Config {
	return Config{
		Shards:  shards,
		Units:   units,
		Attrs:   trace.DefaultQueryAttrs(),
		Tree:    semtree.Config{},
		Cluster: cluster.Config{Seed: 9},
	}
}

func buildEngine(t testing.TB, n, units, shards int) (*Engine, *trace.Set) {
	t.Helper()
	set := trace.MSN().Generate(n, 9)
	e, err := Build(set.Files, testConfig(units, shards))
	if err != nil {
		t.Fatal(err)
	}
	return e, set
}

func TestBuildValidation(t *testing.T) {
	set := trace.MSN().Generate(50, 1)
	if _, err := Build(nil, testConfig(10, 1)); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Build(set.Files, testConfig(10, 12)); err == nil {
		t.Fatal("shards > units accepted")
	}
	cfg := testConfig(10, 2)
	cfg.Tree.MinChildren = 9
	if _, err := Build(set.Files, cfg); err == nil {
		t.Fatal("invalid fan-out accepted")
	}
}

func TestUnitShare(t *testing.T) {
	// 60 units over 4 shards → 15 each; 10 over 3 → 4,3,3; population
	// clamps the share.
	total := 0
	for i := 0; i < 4; i++ {
		total += unitShare(60, 4, i, 1000)
	}
	if total != 60 {
		t.Fatalf("4-way share sums to %d", total)
	}
	if got := unitShare(10, 3, 0, 1000); got != 4 {
		t.Fatalf("remainder shard got %d units", got)
	}
	if got := unitShare(10, 3, 0, 2); got != 2 {
		t.Fatalf("clamp to population failed: %d", got)
	}
	if got := unitShare(3, 3, 2, 1000); got != 1 {
		t.Fatalf("minimum share violated: %d", got)
	}
}

func TestSingleShardKeepsCorpusOrder(t *testing.T) {
	set := trace.MSN().Generate(300, 3)
	norm := &metadata.Normalizer{}
	norm.Fit(set.Files)
	parts := partition(set.Files, 1, norm, trace.DefaultQueryAttrs())
	if len(parts) != 1 {
		t.Fatalf("%d parts", len(parts))
	}
	for i, f := range parts[0] {
		if f != set.Files[i] {
			t.Fatalf("partition reordered the single-shard corpus at %d", i)
		}
	}
}

func TestPlacementIsStable(t *testing.T) {
	e, set := buildEngine(t, 1000, 12, 4)
	// Every routed insert must land on the shard the frozen centroids
	// pick — and picking twice must agree (stability).
	for i := 0; i < 50; i++ {
		src := set.Files[i*13]
		f := &metadata.File{ID: uint64(100000 + i), Path: "/pl/x.dat", Attrs: src.Attrs}
		first := e.shardFor(f)
		if again := e.shardFor(f); again != first {
			t.Fatalf("placement unstable: %d then %d", first, again)
		}
		if _, err := e.InsertBatch([]*metadata.File{f}); err != nil {
			t.Fatal(err)
		}
		e.assignMu.RLock()
		got := e.assign[f.ID]
		e.assignMu.RUnlock()
		if got != first {
			t.Fatalf("file %d routed to shard %d, placement says %d", f.ID, got, first)
		}
	}
}

func TestIDIndexRoutesMutations(t *testing.T) {
	e, set := buildEngine(t, 800, 8, 4)
	f := set.Files[42]
	got, ok := e.FileByID(f.ID)
	if !ok || got.Path != f.Path {
		t.Fatalf("FileByID(%d) = %+v, %v", f.ID, got, ok)
	}
	if _, found, err := e.Delete(f.ID); err != nil || !found {
		t.Fatalf("delete of stored id: found=%v err=%v", found, err)
	}
	if _, ok := e.FileByID(f.ID); ok {
		t.Fatal("deleted id still resolvable")
	}
	if _, found, _ := e.Delete(f.ID); found {
		t.Fatal("second delete reported found")
	}
	if _, found, _ := e.Modify(&metadata.File{ID: 999999}); found {
		t.Fatal("modify of unknown id reported found")
	}
}

func TestRangeFanOutPrunesDisjointShards(t *testing.T) {
	e, _ := buildEngine(t, 1000, 12, 4)
	// A window outside every shard's MBR must prune everywhere: no
	// shard touches its deployment (zero messages, zero units).
	rq := query.NewRange(trace.DefaultQueryAttrs(),
		[]float64{9e15, 9e15, 9e15}, []float64{9.1e15, 9.1e15, 9.1e15})
	ans, err := e.Range(context.Background(), rq, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.IDs) != 0 {
		t.Fatalf("disjoint window matched %d ids", len(ans.IDs))
	}
	if ans.Report.Messages != 0 || ans.Report.UnitsSearched != 0 {
		t.Fatalf("pruned fan-out still did work: %+v", ans.Report)
	}
}

func TestMergeTopKBoundedHeap(t *testing.T) {
	lists := [][]merge.Cand{
		{{ID: 1, Dist: 0.1}, {ID: 3, Dist: 0.3}, {ID: 5, Dist: 0.5}},
		{{ID: 2, Dist: 0.2}, {ID: 4, Dist: 0.3}, {ID: 6, Dist: 0.6}},
		{{ID: 7, Dist: 0.05}},
	}
	got := merge.TopK(lists, 4)
	want := []uint64{7, 1, 2, 3} // 0.05, 0.1, 0.2, then the 0.3 tie → lower id
	if len(got) != len(want) {
		t.Fatalf("merged %v", got)
	}
	for i := range want {
		if got[i].ID != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
	// Fewer candidates than k: everything survives, ordered.
	got = merge.TopK(lists[2:], 10)
	if len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("under-full merge %v", got)
	}
}

func TestNearestShardsFallsBackOnDisjointAttrs(t *testing.T) {
	e, _ := buildEngine(t, 800, 8, 4)
	// Queried attributes overlapping the placement predicate: routing
	// narrows to the offline shard budget.
	got := e.nearestShards(trace.DefaultQueryAttrs(), []float64{40000, 3e7, 6e7}, e.offlineMaxShards())
	if len(got) != e.offlineMaxShards() {
		t.Fatalf("overlapping attrs routed to %d shards, want %d", len(got), e.offlineMaxShards())
	}
	// Disjoint attributes (size/ctime vs the mtime/read/write placement
	// predicate): centroid distances carry no signal, so the routing
	// must fall back to every shard instead of an arbitrary prefix.
	disjoint := []metadata.Attr{metadata.AttrSize, metadata.AttrCTime}
	got = e.nearestShards(disjoint, []float64{4096, 1000}, e.offlineMaxShards())
	if len(got) != 4 {
		t.Fatalf("disjoint attrs routed to %d shards, want all 4", len(got))
	}
}

func TestFanOutCancellation(t *testing.T) {
	e, _ := buildEngine(t, 600, 8, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Range(ctx, query.NewRange(trace.DefaultQueryAttrs(),
		[]float64{0, 0, 0}, []float64{9e9, 9e9, 9e9}), QueryOpts{}); err == nil {
		t.Fatal("cancelled fan-out returned no error")
	}
}

func TestSnapshotRoundTripKeepsAssignment(t *testing.T) {
	e, _ := buildEngine(t, 900, 12, 3)
	snap := e.Snapshot()
	if snap.ShardCount() != 3 {
		t.Fatalf("captured %d shards", snap.ShardCount())
	}
	trees, err := snap.RestoreShards()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Restore(trees, testConfig(12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if back.Shards() != 3 {
		t.Fatalf("restored %d shards", back.Shards())
	}
	for i := range e.shards {
		a := e.shards[i].stats()
		b := back.shards[i].stats()
		if a.Files != b.Files || a.Units != b.Units {
			t.Fatalf("shard %d assignment drifted: %+v vs %+v", i, a, b)
		}
	}
	if back.MaxFileID() != e.MaxFileID() {
		t.Fatalf("max id %d vs %d", back.MaxFileID(), e.MaxFileID())
	}
}

func TestTopKIncludeDistsAndTargets(t *testing.T) {
	e, _ := buildEngine(t, 1000, 12, 4)
	q := query.NewTopK(trace.DefaultQueryAttrs(), []float64{40000, 3e7, 6e7}, 10)

	// On-line: every shard is a target, distances align with the ids
	// and come out ascending — the contract a federating gateway
	// merges on.
	ans, err := e.TopK(context.Background(), q, QueryOpts{Online: true, IncludeDists: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.IDs) != 10 {
		t.Fatalf("top-10 answered %d ids", len(ans.IDs))
	}
	if len(ans.Dists) != len(ans.IDs) {
		t.Fatalf("%d dists for %d ids", len(ans.Dists), len(ans.IDs))
	}
	for i := 1; i < len(ans.Dists); i++ {
		if ans.Dists[i] < ans.Dists[i-1] {
			t.Fatalf("dists not ascending: %v", ans.Dists)
		}
	}
	if len(ans.Targets) != 4 {
		t.Fatalf("on-line top-k targeted %d shards, want all 4", len(ans.Targets))
	}

	// Without IncludeDists the answer carries no distances.
	bare, err := e.TopK(context.Background(), q, QueryOpts{Online: true})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Dists != nil {
		t.Fatalf("dists leaked without IncludeDists: %v", bare.Dists)
	}

	// Off-line: routing narrows the target set to the shard budget,
	// and the targets name exactly the shards the cache must key on.
	off, err := e.TopK(context.Background(), q, QueryOpts{IncludeDists: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(off.Targets) != e.offlineMaxShards() {
		t.Fatalf("off-line top-k targeted %d shards, want %d", len(off.Targets), e.offlineMaxShards())
	}
	if len(off.Dists) != len(off.IDs) {
		t.Fatalf("off-line: %d dists for %d ids", len(off.Dists), len(off.IDs))
	}
}
