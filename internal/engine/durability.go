package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// durable reports whether the engine has a write-ahead log attached.
// All shards attach together, so probing the first suffices.
func (e *Engine) durable() bool { return e.shards[0].log != nil }

// AttachWAL wires one write-ahead log per shard into the engine. From
// this point every mutation follows the log-then-apply path. Attach
// happens before the engine is shared across goroutines (during Build
// or Open), so no lock is needed.
func (e *Engine) AttachWAL(logs []*wal.Log) error {
	if len(logs) != len(e.shards) {
		return fmt.Errorf("engine: %d WAL logs for %d shards", len(logs), len(e.shards))
	}
	for i, s := range e.shards {
		s.log = logs[i]
	}
	return nil
}

// SetShardEpochs restores per-shard mutation epochs from a snapshot, so
// a recovered deployment resumes its pre-crash epoch trajectory rather
// than restarting at zero. Call before the engine is shared.
func (e *Engine) SetShardEpochs(epochs []uint64) error {
	if len(epochs) != len(e.shards) {
		return fmt.Errorf("engine: %d epochs for %d shards", len(epochs), len(e.shards))
	}
	for i, s := range e.shards {
		s.epoch.Store(epochs[i])
	}
	e.setReplBase(epochs)
	return nil
}

// Recover replays per-shard WAL tails against a freshly restored
// engine, bringing it to the last acknowledged pre-crash state. base
// holds each shard's snapshot epoch (the truncation point): records at
// or below it are already in the snapshot — left over from a crash
// between a snapshot rename and the log truncation — and are skipped.
//
// A multi-shard batch record is applied only when every shard in its
// declared target set logged it past its own truncation point; a batch
// missing anywhere was never acknowledged (acknowledgement follows the
// last target's append), so dropping it everywhere preserves the
// engine's atomic-batch guarantee. Shards replay their surviving
// records independently and in parallel — the same no-shared-state
// property the live write path has.
//
// Recover returns the number of records applied. Call before the
// engine is shared, and checkpoint afterwards so batch ids restarting
// from zero cannot collide with ids still in a log.
func (e *Engine) Recover(tails [][]wal.Record, base []uint64) (int, error) {
	if len(tails) != len(e.shards) {
		return 0, fmt.Errorf("engine: %d WAL tails for %d shards", len(tails), len(e.shards))
	}
	if len(base) != len(e.shards) {
		return 0, fmt.Errorf("engine: %d snapshot epochs for %d shards", len(base), len(e.shards))
	}

	// Pass 1: drop records the snapshot already covers, then work out
	// which multi-shard batches reached every declared target.
	fresh := make([][]wal.Record, len(tails))
	logged := map[uint64]map[int]bool{} // batch id → shards that logged it
	targets := map[uint64][]int{}       // batch id → declared target set
	for i, tail := range tails {
		for _, rec := range tail {
			if rec.Epoch <= base[i] {
				continue
			}
			fresh[i] = append(fresh[i], rec)
			if rec.BatchID != 0 {
				if logged[rec.BatchID] == nil {
					logged[rec.BatchID] = map[int]bool{}
				}
				logged[rec.BatchID][i] = true
				targets[rec.BatchID] = rec.Targets
			}
		}
	}
	complete := map[uint64]bool{}
	for id, want := range targets {
		ok := len(want) > 0
		for _, t := range want {
			if t < 0 || t >= len(e.shards) || !logged[id][t] {
				ok = false
				break
			}
		}
		complete[id] = ok
	}

	// Pass 2: replay each shard's surviving records in log order, all
	// shards in parallel. Inserts restore the exact placement the log
	// recorded; the shared assignment index is the only cross-shard
	// state and is updated under its own lock.
	applied := make([]int, len(e.shards))
	var wg sync.WaitGroup
	for i := range e.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := e.shards[i]
			s.mu.Lock()
			defer s.mu.Unlock()
			for _, rec := range fresh[i] {
				if rec.BatchID != 0 && !complete[rec.BatchID] {
					continue
				}
				if !e.applyRecordLocked(i, rec) {
					continue // replayed no-op: no epoch move
				}
				applied[i]++
				// The record's epoch is the shard epoch after the
				// original apply; adopting it replays the epoch
				// trajectory along with the data.
				if rec.Epoch > s.epoch.Load() {
					s.epoch.Store(rec.Epoch)
				}
			}
		}(i)
	}
	wg.Wait()

	total := 0
	for _, n := range applied {
		total += n
	}
	return total, nil
}

// Checkpoint snapshots the engine and retires the WAL segments the
// snapshot covers, holding the all-shard lock only for the cheap part.
// The protocol is crash-safe at every point and keeps writers off the
// critical path of the expensive snapshot encode:
//
//  1. Under every shard's read lock (taken in the engine's ascending
//     total order, the same order Save and multi-shard batches use):
//     capture the snapshot — a memory copy of each shard's units plus
//     its epoch — and rotate each shard's WAL to a fresh segment. The
//     rotation boundary and the captured epoch align exactly: every
//     record at or below the boundary has an epoch the snapshot covers.
//  2. Release the locks, then hand the capture to write — which must
//     make it durable before returning. Mutations proceed concurrently,
//     logging into the fresh segments; the capture is a private copy,
//     so the encode races nothing.
//  3. Only after write returns does each shard delete its sealed
//     segments at or below the boundary (deferred truncation).
//
// A crash before the snapshot lands recovers from the previous snapshot
// plus all live segments; a crash after it lands but before (or during)
// the deferred deletion recovers from the new snapshot, with the
// leftover sealed records recognized by their epochs as already applied
// and skipped. ckptMu serializes concurrent checkpoints so their
// rotation boundaries and deletions cannot interleave.
func (e *Engine) Checkpoint(write func(*snapshot.Snapshot) error) error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()

	lockStart := time.Now()
	for _, s := range e.shards {
		s.mu.RLock()
	}
	snap := e.snapshotLocked()
	boundaries := make([]uint64, len(e.shards))
	var rotErr error
	for i, s := range e.shards {
		if s.log == nil {
			continue
		}
		if boundaries[i], rotErr = s.log.Rotate(); rotErr != nil {
			rotErr = fmt.Errorf("engine: shard %d: %w", s.id, rotErr)
			break
		}
	}
	for _, s := range e.shards {
		s.mu.RUnlock()
	}
	e.observeCkptPhase(func(o *Obs) *obs.Histogram { return o.CkptLockNs }, time.Since(lockStart))
	if rotErr != nil {
		// Shards rotated before the failure keep their sealed segments;
		// recovery replays them and the next checkpoint retires them.
		return rotErr
	}

	persistStart := time.Now()
	if err := write(snap); err != nil {
		return err
	}
	e.observeCkptPhase(func(o *Obs) *obs.Histogram { return o.CkptPersistNs }, time.Since(persistStart))
	// The snapshot is durable: its epochs become the replication base —
	// a follower whose watermark predates them must re-bootstrap from
	// this (or a later) snapshot, because the covering segments are
	// about to be retired.
	e.setReplBase(snap.ShardEpochs())

	retireStart := time.Now()
	defer func() {
		e.observeCkptPhase(func(o *Obs) *obs.Histogram { return o.CkptRetireNs }, time.Since(retireStart))
	}()
	for i, s := range e.shards {
		if s.log == nil {
			continue
		}
		if err := s.log.DropSealed(boundaries[i]); err != nil {
			// Leftover sealed segments are correctness-neutral (epoch
			// truncation skips them on recovery) but waste disk; surface
			// the error so the operator sees it and the next checkpoint
			// retries.
			return fmt.Errorf("engine: shard %d: %w", s.id, err)
		}
	}
	return nil
}
