package engine

import (
	"context"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/merge"
	"repro/internal/metadata"
	"repro/internal/query"
)

// Report carries the aggregated accounting of one engine operation in
// the same units as cluster.Result (seconds of virtual time, message
// counts). Across shards, latencies aggregate by max — the shards ran
// in parallel — while messages and per-node work sum.
type Report struct {
	Latency        float64
	Messages       int64
	Hops           int
	UnitsSearched  int
	VersionChecked int
	VersionLatency float64
}

func reportFrom(r cluster.Result) Report {
	return Report{
		Latency:        float64(r.Latency),
		Messages:       r.Messages,
		Hops:           r.Hops,
		UnitsSearched:  r.UnitsSearched,
		VersionChecked: r.VersionChecked,
		VersionLatency: float64(r.VersionLatency),
	}
}

// mergeParallel folds another shard's report into r under the parallel
// execution model: wall time is the slowest shard, work and traffic
// add up.
func (r *Report) mergeParallel(o Report) {
	if o.Latency > r.Latency {
		r.Latency = o.Latency
	}
	if o.VersionLatency > r.VersionLatency {
		r.VersionLatency = o.VersionLatency
	}
	r.Messages += o.Messages
	r.Hops += o.Hops
	r.UnitsSearched += o.UnitsSearched
	r.VersionChecked += o.VersionChecked
}

// QueryOpts carries the execution options of one engine query.
type QueryOpts struct {
	// Online selects the on-line multicast path on every shard.
	Online bool
	// Limit truncates the merged answer (0 = unlimited).
	Limit int
	// IncludeRecords projects full record copies into Answer.Records.
	IncludeRecords bool
	// IncludeDists resolves each top-k answer id's true normalized
	// squared distance into Answer.Dists — the handle a federating
	// gateway needs to merge per-store answers exactly. Ignored by
	// point and range queries.
	IncludeDists bool
}

// Answer is the merged result of one engine query.
type Answer struct {
	IDs []uint64
	// Dists holds, aligned with IDs, each candidate's true normalized
	// squared distance for top-k queries run with IncludeDists.
	Dists     []float64
	Records   []metadata.File
	Truncated bool
	Report    Report
	// Targets lists the shard indices the query fanned out to — the
	// exact shard set whose state the answer is a function of (pruning
	// happens inside a target; a shard outside Targets was excluded by
	// data-independent routing over frozen centroids). Serving-layer
	// caches key invalidation on these shards' epochs.
	Targets []int
}

// allShards returns every shard index — the target set of exhaustive
// fan-outs.
func (e *Engine) allShards() []int {
	out := make([]int, len(e.shards))
	for i := range out {
		out[i] = i
	}
	return out
}

// fanout runs one query function on the target shards in parallel and
// collects the per-shard answers in target order. The first failing
// shard cancels the rest (shards queued on their deployment slot
// abandon the wait) and its error is returned. A single target runs
// inline with the caller's context untouched.
func (e *Engine) fanout(ctx context.Context, targets []int, run func(ctx context.Context, s *Shard) (answer, error)) ([]answer, error) {
	run = e.observedRun(ctx, run)
	if len(targets) == 1 {
		a, err := run(ctx, e.shards[targets[0]])
		if err != nil {
			return nil, err
		}
		return []answer{a}, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	answers := make([]answer, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, idx := range targets {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			a, err := run(ctx, s)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			answers[i] = a
		}(i, e.shards[idx])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return answers, nil
}

// offlineMaxShards caps how many shards an off-line top-k fan-out may
// touch: the most-correlated shard plus a few siblings, growing slowly
// with the shard count — the shard-level analogue of the cluster's
// offlineMaxGroups, keeping the search "bounded within one or a small
// number of tree nodes" (§3.1.2) at any scale. A configured
// OfflineGroupBudget overrides the heuristic, clamped to the shard
// count: a budget ≥ the shard count targets every shard, so routing
// can never drop a shard that would contribute to the exact answer.
func (e *Engine) offlineMaxShards() int {
	n := len(e.shards)
	m := 1 + n/4
	if e.cfg.OfflineGroupBudget > 0 {
		m = e.cfg.OfflineGroupBudget
	}
	if m > n {
		m = n
	}
	return m
}

// nearestShards ranks shards by placement-centroid distance to the
// query point (normalized space) and returns the closest max indices —
// the shard-level off-line routing that mirrors the paper's
// replica-vector group routing. When the queried attributes share no
// dimension with the placement predicate, centroid distances carry no
// signal (every distance is zero), so the routing falls back to all
// shards rather than silently searching an arbitrary fixed prefix.
func (e *Engine) nearestShards(attrs []metadata.Attr, point []float64, max int) []int {
	overlap := false
	for _, a := range attrs {
		for _, ca := range e.cfg.Attrs {
			if ca == a {
				overlap = true
			}
		}
	}
	if !overlap {
		return e.allShards()
	}
	type ranked struct {
		idx  int
		dist float64
	}
	// Project the query point and each centroid onto the queried
	// attribute dimensions of the placement space.
	rs := make([]ranked, len(e.shards))
	for i, centroid := range e.centroids {
		var d float64
		for j, a := range attrs {
			v := e.norm.Value(a, point[j])
			// Placement centroids span cfg.Attrs; find the matching
			// dimension (small fixed-size scan).
			for k, ca := range e.cfg.Attrs {
				if ca == a && k < len(centroid) {
					x := v - centroid[k]
					d += x * x
				}
			}
		}
		rs[i] = ranked{idx: i, dist: d}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].dist != rs[j].dist {
			return rs[i].dist < rs[j].dist
		}
		return rs[i].idx < rs[j].idx
	})
	if max > len(rs) {
		max = len(rs)
	}
	out := make([]int, max)
	for i := 0; i < max; i++ {
		out[i] = rs[i].idx
	}
	sort.Ints(out)
	return out
}

// Point answers a filename point query: any shard may hold the path
// (placement is by attribute vector, not name), so the query fans out
// to all shards — skipping those whose root Bloom filter rejects the
// name — and unions the matches in shard order.
func (e *Engine) Point(ctx context.Context, q query.Point, opts QueryOpts) (Answer, error) {
	prune := len(e.shards) > 1
	proj := projectOpts{records: opts.IncludeRecords, max: opts.Limit}
	targets := e.allShards()
	answers, err := e.fanout(ctx, targets, func(ctx context.Context, s *Shard) (answer, error) {
		return s.point(ctx, q, prune, proj)
	})
	if err != nil {
		return Answer{}, err
	}
	return e.mergeUnion(answers, targets, opts), nil
}

// Range answers a multi-dimensional range query: the fan-out skips
// shards whose root MBR misses the query rectangle (the semantic
// narrowing of the paper, lifted to the shard level) and unions the
// rest in shard order.
func (e *Engine) Range(ctx context.Context, q query.Range, opts QueryOpts) (Answer, error) {
	prune := len(e.shards) > 1
	// Union merges keep a prefix in shard order, so no shard can place
	// more than Limit ids in the final answer — cap its projection there.
	proj := projectOpts{records: opts.IncludeRecords, max: opts.Limit}
	targets := e.allShards()
	answers, err := e.fanout(ctx, targets, func(ctx context.Context, s *Shard) (answer, error) {
		return s.rangeQuery(ctx, q, opts.Online, prune, proj)
	})
	if err != nil {
		return Answer{}, err
	}
	return e.mergeUnion(answers, targets, opts), nil
}

// TopK answers a top-k nearest-neighbour query. On-line, every shard
// returns its local top k; off-line, the fan-out routes to the few
// shards whose placement centroids are most correlated with the query
// point (the shard-level analogue of §3.4's replica-vector routing).
// The engine keeps the k globally nearest candidates by true normalized
// distance under a bounded max-heap. A single-shard engine returns the
// shard's answer untouched.
func (e *Engine) TopK(ctx context.Context, q query.TopK, opts QueryOpts) (Answer, error) {
	multi := len(e.shards) > 1
	targets := e.allShards()
	if multi && !opts.Online {
		targets = e.nearestShards(q.Attrs, q.Point, e.offlineMaxShards())
	}
	// Cross-shard merging needs every candidate's true distance; a
	// caller asking for distances (a federating gateway merging across
	// whole stores) needs them resolved even on a single shard.
	wantDists := multi || opts.IncludeDists
	answers, err := e.fanout(ctx, targets, func(ctx context.Context, s *Shard) (answer, error) {
		return s.topK(ctx, q, opts.Online, multi, wantDists, opts.IncludeRecords)
	})
	if err != nil {
		return Answer{}, err
	}
	var ids []uint64
	var dists []float64
	if multi {
		lists := make([][]merge.Cand, len(answers))
		for i, a := range answers {
			l := make([]merge.Cand, len(a.ids))
			for j, id := range a.ids {
				l[j] = merge.Cand{ID: id, Dist: a.dists[j]}
			}
			lists[i] = l
		}
		cands := merge.TopK(lists, q.K)
		ids = make([]uint64, len(cands))
		dists = make([]float64, len(cands))
		for i, c := range cands {
			ids[i] = c.ID
			dists[i] = c.Dist
		}
	} else {
		ids, dists = answers[0].ids, answers[0].dists
	}
	out := e.finish(ids, targets, answers, opts)
	if opts.IncludeDists && dists != nil {
		if len(out.IDs) < len(dists) {
			dists = dists[:len(out.IDs)]
		}
		out.Dists = dists
	}
	return out, nil
}

// mergeUnion concatenates per-shard ids in shard order and finishes the
// answer (limit, records, report aggregation). Engine shards hold
// disjoint id populations by construction, so the concatenation is the
// exact union.
func (e *Engine) mergeUnion(answers []answer, targets []int, opts QueryOpts) Answer {
	total := 0
	for _, a := range answers {
		total += len(a.ids)
	}
	ids := make([]uint64, 0, total)
	for _, a := range answers {
		ids = append(ids, a.ids...)
	}
	return e.finish(ids, targets, answers, opts)
}

// finish applies the limit, projects records for the final ids from the
// owning shards' captures, and aggregates the per-shard reports.
func (e *Engine) finish(ids []uint64, targets []int, answers []answer, opts QueryOpts) Answer {
	out := Answer{Targets: targets}
	if opts.Limit > 0 && len(ids) > opts.Limit {
		ids = ids[:opts.Limit]
		out.Truncated = true
	}
	out.IDs = ids
	first := true
	contributing := 0
	for _, a := range answers {
		if a.pruned {
			continue
		}
		if len(a.ids) > 0 {
			contributing++
		}
		rep := reportFrom(a.res)
		if first {
			out.Report = rep
			first = false
		} else {
			out.Report.mergeParallel(rep)
		}
	}
	// Routing distance composes across shards like it does across
	// groups: per-shard hops count groups beyond each shard's first, so
	// crossing into every additional contributing shard adds one more
	// hop (a single-shard answer adds none — identical to the unsharded
	// accounting).
	if contributing > 1 {
		out.Report.Hops += contributing - 1
	}
	if opts.IncludeRecords {
		out.Records = make([]metadata.File, 0, len(ids))
		for _, id := range ids {
			for _, a := range answers {
				if f, ok := a.recs[id]; ok {
					out.Records = append(out.Records, f)
					break
				}
			}
		}
	}
	return out
}
