package engine

import (
	"context"
	"time"

	"repro/internal/obs"
)

// Obs is the engine's metric sink, attached by the store facade once
// the serving layer has built its registry (SetObs). Fields may be nil
// individually; a nil sink (the default) keeps the query and mutation
// paths free of any instrumentation beyond one atomic load.
type Obs struct {
	// ShardQueryNs is the per-shard query execution wall time — one
	// observation per shard per fan-out, so tail skew across shards is
	// visible, not averaged away.
	ShardQueryNs *obs.Histogram
	// ShardsVisited / ShardsPruned count fan-out outcomes per shard:
	// pruned means the shard's root MBR or Bloom filter rejected the
	// query without touching the tree. Pruned/(Visited+Pruned) is the
	// shard-level pruning effectiveness.
	ShardsVisited *obs.Counter
	ShardsPruned  *obs.Counter
	// ShardInserts[i] counts files the placement routed to shard i —
	// the insert-placement distribution skew feeds future rebalancing.
	ShardInserts []*obs.Counter
	// Checkpoint phase durations, matching the three phases of
	// Engine.Checkpoint: lock (capture+rotate under the all-shard read
	// locks), persist (snapshot encode+fsync outside the locks), retire
	// (deferred sealed-segment deletion).
	CkptLockNs    *obs.Histogram
	CkptPersistNs *obs.Histogram
	CkptRetireNs  *obs.Histogram
}

// SetObs attaches (or replaces) the engine's metric sink. Safe to call
// while queries are in flight.
func (e *Engine) SetObs(o *Obs) { e.obsv.Store(o) }

// observedRun wraps a fan-out's per-shard run function with shard-level
// timing when a metric sink is attached or the context carries a query
// trace; otherwise it returns run unchanged.
func (e *Engine) observedRun(ctx context.Context, run func(ctx context.Context, s *Shard) (answer, error)) func(ctx context.Context, s *Shard) (answer, error) {
	o := e.obsv.Load()
	tr := obs.TraceFrom(ctx)
	if o == nil && tr == nil {
		return run
	}
	return func(ctx context.Context, s *Shard) (answer, error) {
		start := time.Now()
		a, err := run(ctx, s)
		if err != nil {
			return a, err
		}
		d := time.Since(start)
		if o != nil {
			if o.ShardQueryNs != nil {
				o.ShardQueryNs.Observe(uint64(d))
			}
			if a.pruned {
				if o.ShardsPruned != nil {
					o.ShardsPruned.Inc()
				}
			} else if o.ShardsVisited != nil {
				o.ShardsVisited.Inc()
			}
		}
		tr.AddShard(s.id, d, a.pruned)
		return a, nil
	}
}

// observeCkptPhase records one checkpoint phase duration.
func (e *Engine) observeCkptPhase(h func(*Obs) *obs.Histogram, d time.Duration) {
	o := e.obsv.Load()
	if o == nil {
		return
	}
	if hist := h(o); hist != nil {
		hist.Observe(uint64(d))
	}
}
