package engine

import (
	"fmt"

	"repro/internal/metadata"
	"repro/internal/wal"
)

// Replication support: a follower engine applies records shipped from
// a leader's WAL through the same switch recovery uses, so follower
// state after applying a shipped prefix is identical to leader state
// after logging it. The shipped records keep the leader's epoch stamps
// — the follower's shard epochs replay the leader's trajectory rather
// than advancing on their own — which is what makes the epoch a
// resume watermark shared by both sides.

// applyRecordLocked applies one WAL record to shard i, reporting
// whether it was effectual (a no-op delete/modify of an absent id is
// not). The caller must hold the shard's write lock; epoch adoption is
// the caller's job because recovery and replication share this switch
// but differ in when they adopt.
func (e *Engine) applyRecordLocked(i int, rec wal.Record) bool {
	s := e.shards[i]
	switch rec.Op {
	case wal.OpInsert:
		files := make([]*metadata.File, len(rec.Files))
		for j := range rec.Files {
			files[j] = &rec.Files[j]
		}
		s.insertFilesLocked(files)
		e.assignMu.Lock()
		for _, f := range files {
			e.assign[f.ID] = i
			if f.ID > e.maxID {
				e.maxID = f.ID
			}
		}
		e.assignMu.Unlock()
	case wal.OpDelete:
		if _, found := s.deleteLocked(rec.ID); !found {
			return false
		}
		e.assignMu.Lock()
		delete(e.assign, rec.ID)
		if rec.ID == e.maxID {
			e.recomputeMaxLocked()
		}
		e.assignMu.Unlock()
	case wal.OpModify:
		if _, found := s.modifyLocked(&rec.Files[0]); !found {
			return false
		}
	case wal.OpFlush:
		// Replay the propagation at the same point in the mutation
		// order, so replica state and epoch evolve exactly as they did
		// on the leader (or before the crash).
		for _, c := range s.clusters {
			c.PropagateAll()
		}
	}
	return true
}

// ApplyReplicated applies shipped leader records to one shard, in log
// order, logging each to the follower's own WAL (log-then-apply, the
// same ordering the live write path uses) before applying it. Records
// at or below the shard's current epoch are skipped — the pull
// protocol can legitimately re-ship a prefix after a follower restart
// — so the call is idempotent. It returns the number of records
// applied.
//
// The caller (internal/repl) is responsible for batch atomicity:
// multi-shard batch records must be withheld until every declared
// target's fragment has arrived. ApplyReplicated itself applies
// whatever it is given.
func (e *Engine) ApplyReplicated(shard int, recs []wal.Record) (int, error) {
	if shard < 0 || shard >= len(e.shards) {
		return 0, fmt.Errorf("engine: replicated records for shard %d of %d", shard, len(e.shards))
	}
	s := e.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	applied := 0
	for _, rec := range recs {
		if rec.Epoch <= s.epoch.Load() {
			continue
		}
		if s.log != nil {
			// Synchronous append preserving the leader's epoch stamp:
			// a follower crash mid-batch recovers through the ordinary
			// Recover path, whose batch-completeness check drops any
			// fragment the crash stranded (the leader re-ships it).
			if err := s.log.Append(&rec); err != nil {
				return applied, fmt.Errorf("engine: replicate shard %d: %w", shard, err)
			}
		}
		if e.applyRecordLocked(shard, rec) {
			if rec.Epoch > s.epoch.Load() {
				s.epoch.Store(rec.Epoch)
			}
		}
		applied++
	}
	return applied, nil
}

// setReplBase publishes the per-shard replication base — called with
// the epochs of a snapshot that just became durable.
func (e *Engine) setReplBase(epochs []uint64) {
	base := make([]uint64, len(epochs))
	copy(base, epochs)
	e.replBase.Store(&base)
}

// ReplBase returns each shard's replication base: the epoch of the
// latest durable snapshot, zero before any snapshot exists. A tail
// request whose watermark is below the base cannot be served from the
// log and must re-bootstrap from a snapshot.
func (e *Engine) ReplBase() []uint64 {
	if p := e.replBase.Load(); p != nil {
		out := make([]uint64, len(*p))
		copy(out, *p)
		return out
	}
	return make([]uint64, len(e.shards))
}
