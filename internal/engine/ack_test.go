package engine

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/metadata"
	"repro/internal/wal"
)

// TestConcurrentMutationsSyncAlways hammers a durable SyncAlways
// engine with concurrent inserts, modifies and deletes — the mix that
// exercises the stage-under-lock / acknowledge-outside-lock commit
// path — and then verifies both the live state and the WAL: every
// acknowledged insert that was not later deleted is queryable, and a
// reopened log replays exactly the records the engine acknowledged,
// in a per-shard order consistent with the epoch stamps.
func TestConcurrentMutationsSyncAlways(t *testing.T) {
	e, _ := buildEngine(t, 100, 4, 2)
	dir := t.TempDir()
	logs := make([]*wal.Log, e.Shards())
	for i := range logs {
		l, _, err := wal.Open(filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", i)), i,
			wal.SyncAlways, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}
	if err := e.AttachWAL(logs); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 6, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(1<<40 + w*perWriter + i)
				f := &metadata.File{
					ID:   id,
					Path: fmt.Sprintf("/ack/%d/%d.dat", w, i),
				}
				f.Attrs[0], f.Attrs[1] = float64(w), float64(i)
				if _, err := e.InsertBatch([]*metadata.File{f}); err != nil {
					errs <- fmt.Errorf("insert %d: %w", id, err)
					return
				}
				switch i % 3 {
				case 1:
					mod := *f
					mod.Attrs[0] = float64(w) + 0.5
					if _, found, err := e.Modify(&mod); err != nil || !found {
						errs <- fmt.Errorf("modify %d: found=%v err=%v", id, found, err)
						return
					}
				case 2:
					if _, found, err := e.Delete(id); err != nil || !found {
						errs <- fmt.Errorf("delete %d: found=%v err=%v", id, found, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every acknowledged insert that survived is queryable; every
	// deleted id is gone.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			id := uint64(1<<40 + w*perWriter + i)
			_, ok := e.FileByID(id)
			if deleted := i%3 == 2; ok == deleted {
				t.Fatalf("id %d: present=%v, want %v", id, ok, !deleted)
			}
		}
	}

	// Reopen the logs: every record fsync-acknowledged before Close
	// must replay, with per-shard epoch stamps strictly ascending (the
	// stage-under-lock order).
	for _, l := range logs {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for i := range logs {
		l, recs, err := wal.Open(filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", i)), i,
			wal.SyncNever, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prev := uint64(0)
		for j, rec := range recs {
			if rec.Epoch <= prev {
				t.Fatalf("shard %d record %d: epoch %d after %d (staging order violated)",
					i, j, rec.Epoch, prev)
			}
			prev = rec.Epoch
		}
		total += len(recs)
		l.Close()
	}
	// inserts + modifies + deletes, each a single-shard record.
	want := writers * perWriter
	for i := 0; i < perWriter; i++ {
		if i%3 != 0 {
			want += writers
		}
	}
	if total != want {
		t.Fatalf("replayed %d records across shards, want %d", total, want)
	}
}
