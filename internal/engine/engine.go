// Package engine is the sharded store engine behind the root package's
// Store: it owns N independent shards — each with its own semantic
// R-tree forest, cluster deployment, virtual-time state and lock — so
// concurrent queries and writes on different shards never contend.
//
// Placement is semantic and stable: the file population is cut into N
// contiguous regions of the LSI-ordered semantic space at build time,
// each region's centroid is frozen, and every later insert routes to
// the shard whose centroid is nearest in the normalized attribute
// subspace. An exact id → shard index (maintained on every mutation and
// rebuilt on load) routes point-wise operations — delete, modify,
// lookup-by-id — in O(1) without touching the other shards.
//
// Queries fan out to the relevant shards in parallel: range queries
// skip shards whose root MBR misses the query rectangle, top-k answers
// merge per-shard candidates by true normalized distance under a
// bounded heap, and reports aggregate with max-latency (shards run in
// parallel) and summed message/work counts. A single-shard engine
// executes exactly the original store's code path — no partitioning, no
// merging — so Shards=1 reproduces the unsharded behaviour bit for bit.
//
// Durability is per shard: with a write-ahead log attached (AttachWAL),
// every mutation follows the log-then-apply path under the shard's
// write lock — the record is on disk before the change is visible, and
// shards never contend on a shared log. A multi-shard insert batch is
// logged to every target shard (under the same ascending lock order
// Save uses) with a shared batch id before any shard applies, so
// recovery can drop a batch that did not reach every target — the
// atomic-batch guarantee survives a crash. Checkpoint is lock-light:
// it captures the snapshot and rotates every shard's segmented WAL
// under the all-shard read locks, releases them, writes the snapshot
// outside the lock hold, and only then deletes the sealed segments the
// snapshot covers — writers proceed for the whole encode. Recover
// replays per-shard tails, independently and in parallel, past the
// snapshot's per-shard epoch truncation points. See internal/wal and
// DESIGN.md §7.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/metadata"
	"repro/internal/semtree"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Config parameterizes Build and Restore.
type Config struct {
	// Shards is the number of independent shards. 0 selects 1.
	Shards int
	// Units is the total number of storage units, distributed across
	// shards as evenly as the populations allow.
	Units int
	// Attrs is the grouping predicate shared by every shard.
	Attrs []metadata.Attr
	// Online selects the on-line multicast path as the default complex
	// query execution.
	Online bool
	// AutoConfig builds specialized per-subset trees on every shard.
	AutoConfig bool
	// AutoConfigThreshold is the §2.4 index-unit-difference ratio.
	AutoConfigThreshold float64
	// Tree carries fan-out bounds and the admission threshold; its
	// Attrs field is ignored (Config.Attrs wins).
	Tree semtree.Config
	// Cluster carries versioning, lazy-update, seed and virtual-scale
	// settings. Shard 0 uses Cluster.Seed verbatim; later shards derive
	// distinct deterministic seeds from it.
	Cluster cluster.Config
	// OfflineGroupBudget overrides the off-line search breadth: each
	// shard's off-line complex query searches at most this many groups,
	// and a multi-shard off-line top-k fans out to at most this many
	// shards. 0 keeps the adaptive heuristics (offlineMaxGroups /
	// SharedOfflineBudget / offlineMaxShards); a budget at least the
	// group and shard counts makes the off-line path exhaustive. The
	// evaluation harness sweeps this knob to map the recall/cost curve.
	OfflineGroupBudget int
	// Norm, when fitted, is used verbatim instead of fitting a
	// normalizer to the build corpus. A federation of stores must share
	// one normalization so distances — and therefore top-k answers —
	// computed on different backends are comparable; the gateway's
	// equivalence guarantee depends on it.
	Norm *metadata.Normalizer
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 1
	}
	return c
}

// Engine is a sharded deployment.
type Engine struct {
	cfg    Config
	norm   *metadata.Normalizer
	shards []*Shard
	// centroids[i] is shard i's frozen semantic centroid over
	// cfg.Attrs in normalized space — the stable placement target.
	centroids [][]float64

	// assign maps file id → shard index; maxID tracks the largest
	// stored id. Both are guarded by assignMu. placeMu serializes only
	// the insert routing phase — validation plus id reservation — so
	// uniqueness checks cannot race another insert, while commits (and
	// deletes/modifies, which never reserve) proceed in parallel across
	// shards. Inserts reserve their ids before committing and deletes
	// unreserve only after committing, so an id always maps to the one
	// shard that holds (or is about to hold) it.
	assignMu sync.RWMutex
	assign   map[uint64]int
	maxID    uint64
	placeMu  sync.Mutex

	// batchSeq numbers multi-shard insert batches within this process
	// so their per-shard WAL records share a batch id. Recovery
	// checkpoints (snapshot + truncate) before the engine serves, so
	// ids restarting from zero can never collide with ids still in a
	// log. Zero is reserved for single-shard records.
	batchSeq atomic.Uint64

	// ckptMu serializes checkpoints: the rotate-snapshot-drop protocol
	// releases the shard locks mid-flight, so two interleaved
	// checkpoints could otherwise cross their rotation boundaries and
	// deferred deletions.
	ckptMu sync.Mutex

	// obsv is the optional metric sink (observe.go), attached by the
	// store facade after the serving layer builds its registry. Atomic
	// so attachment never races an in-flight query.
	obsv atomic.Pointer[Obs]

	// replBase holds each shard's replication base: the epoch of the
	// latest durable snapshot (repl.go). Atomic because followers probe
	// it on every tail pull while checkpoints replace it.
	replBase atomic.Pointer[[]uint64]
}

// seedFor derives shard i's deterministic cluster seed. Shard 0 keeps
// the configured seed verbatim so a single-shard engine reproduces the
// unsharded deployment exactly.
func seedFor(base uint64, i int) uint64 {
	return base + uint64(i)*0x9E3779B97F4A7C15
}

// Build constructs a sharded engine over the corpus: the population is
// partitioned into Shards semantic regions, each region deploys its own
// tree(s) and cluster, and the id index and placement centroids are
// frozen.
func Build(files []*metadata.File, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if len(files) == 0 {
		return nil, fmt.Errorf("engine: empty corpus")
	}
	if cfg.Shards < 1 || cfg.Shards > cfg.Units {
		return nil, fmt.Errorf("engine: %d shards invalid for %d units (need 1 ≤ shards ≤ units)",
			cfg.Shards, cfg.Units)
	}
	if cfg.Shards > len(files) {
		return nil, fmt.Errorf("engine: %d shards invalid for %d files", cfg.Shards, len(files))
	}
	if cfg.OfflineGroupBudget < 0 {
		return nil, fmt.Errorf("engine: negative offline group budget %d", cfg.OfflineGroupBudget)
	}
	if err := cfg.Tree.Validate(); err != nil {
		return nil, err
	}

	norm := cfg.Norm
	if norm == nil || !norm.Fitted() {
		norm = &metadata.Normalizer{}
		norm.Fit(files)
	}

	parts := partition(files, cfg.Shards, norm, cfg.Attrs)
	e := &Engine{
		cfg:       cfg,
		norm:      norm,
		shards:    make([]*Shard, cfg.Shards),
		centroids: make([][]float64, cfg.Shards),
		assign:    make(map[uint64]int, len(files)),
	}
	for i, part := range parts {
		e.shards[i] = buildShard(i, part, norm, cfg, unitShare(cfg.Units, cfg.Shards, i, len(part)),
			seedFor(cfg.Cluster.Seed, i))
		e.centroids[i] = centroidOf(norm, part, cfg.Attrs)
		for _, f := range part {
			e.assign[f.ID] = i
			if f.ID > e.maxID {
				e.maxID = f.ID
			}
		}
	}
	return e, nil
}

// Restore wraps an engine around trees restored from a snapshot, one
// shard per tree, rebuilding the id index and placement centroids from
// the persisted populations.
func Restore(trees []*semtree.Tree, cfg Config) (*Engine, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("engine: no shards to restore")
	}
	cfg.Shards = len(trees)
	cfg.Attrs = trees[0].Attrs
	e := &Engine{
		cfg:       cfg,
		norm:      trees[0].Norm,
		shards:    make([]*Shard, len(trees)),
		centroids: make([][]float64, len(trees)),
		assign:    map[uint64]int{},
	}
	for i, t := range trees {
		clCfg := cfg.Cluster
		clCfg.Seed = seedFor(cfg.Cluster.Seed, i)
		e.shards[i] = restoreShard(i, t, clCfg, cfg.OfflineGroupBudget)
		files := t.AllFiles()
		e.centroids[i] = centroidOf(e.norm, files, t.Attrs)
		for _, f := range files {
			e.assign[f.ID] = i
			if f.ID > e.maxID {
				e.maxID = f.ID
			}
		}
	}
	return e, nil
}

// partition cuts the corpus into shard populations along the same
// LSI-ordered semantic dimension the in-shard placement uses, so files
// likely to satisfy the same query land on the same shard. A one-shard
// engine keeps the corpus untouched (order included) to stay bit-for-
// bit identical with the unsharded build.
func partition(files []*metadata.File, shards int, norm *metadata.Normalizer, attrs []metadata.Attr) [][]*metadata.File {
	if shards == 1 {
		return [][]*metadata.File{files}
	}
	units := semtree.PlaceSemantic(files, shards, norm, attrs)
	parts := make([][]*metadata.File, len(units))
	for i, u := range units {
		parts[i] = u.Files
	}
	return parts
}

// unitShare distributes the total unit budget across shards, clamped to
// each shard's population.
func unitShare(units, shards, i, population int) int {
	share := units / shards
	if i < units%shards {
		share++
	}
	if share > population {
		share = population
	}
	if share < 1 {
		share = 1
	}
	return share
}

// centroidOf freezes a shard's placement centroid.
func centroidOf(norm *metadata.Normalizer, files []*metadata.File, attrs []metadata.Attr) []float64 {
	if c := metadata.Centroid(norm, files, attrs); c != nil {
		return c
	}
	return make([]float64, len(attrs))
}

// shardFor routes a file vector to the shard with the nearest frozen
// centroid — the stable semantic placement of writes.
func (e *Engine) shardFor(f *metadata.File) int {
	if len(e.shards) == 1 {
		return 0
	}
	v := e.norm.Vector(f, e.cfg.Attrs)
	best, bestDist := 0, -1.0
	for i, c := range e.centroids {
		var d float64
		for j := range v {
			if j < len(c) {
				x := v[j] - c[j]
				d += x * x
			}
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Epoch returns the composed mutation epoch: the sum of per-shard
// epochs. Each shard epoch is monotonic, so the sum is monotonic for
// any observer, and any committed mutation anywhere changes it — the
// property result caches key on.
func (e *Engine) Epoch() uint64 {
	var sum uint64
	for _, s := range e.shards {
		sum += s.epoch.Load()
	}
	return sum
}

// ShardEpochs snapshots every shard's mutation epoch in shard order.
// Each entry is individually monotonic, so a cache keyed on a target
// subset of shards can compare entries pair-wise and ignore writes that
// landed elsewhere.
func (e *Engine) ShardEpochs() []uint64 {
	out := make([]uint64, len(e.shards))
	for i, s := range e.shards {
		out[i] = s.epoch.Load()
	}
	return out
}

// Placement describes this engine's semantic placement for a
// federating layer above it: the placement attributes, the store-wide
// file-count-weighted centroid in raw attribute units, and the raw
// normalization bounds per attribute. A gateway composes the per-store
// bounds into a federation-wide normalization and routes by the raw
// centroids, mirroring shard-level frozen-centroid routing one level
// up.
type Placement struct {
	Attrs    []metadata.Attr
	Centroid []float64
	Lo, Hi   []float64
}

// Placement reports the engine's placement summary. The centroid is the
// file-count-weighted mean of the frozen shard centroids, denormalized
// through the engine's own bounds; degenerate bounds (hi ≤ lo: the fit
// saw one distinct value) denormalize to lo.
func (e *Engine) Placement() Placement {
	p := Placement{
		Attrs:    append([]metadata.Attr(nil), e.cfg.Attrs...),
		Centroid: make([]float64, len(e.cfg.Attrs)),
		Lo:       make([]float64, len(e.cfg.Attrs)),
		Hi:       make([]float64, len(e.cfg.Attrs)),
	}
	for j, a := range e.cfg.Attrs {
		p.Lo[j], p.Hi[j] = e.norm.Bounds(a)
	}
	var weight float64
	norm := make([]float64, len(e.cfg.Attrs))
	for i, s := range e.shards {
		w := float64(s.stats().Files)
		if w <= 0 {
			continue
		}
		weight += w
		for j := range norm {
			if j < len(e.centroids[i]) {
				norm[j] += w * e.centroids[i][j]
			}
		}
	}
	for j := range norm {
		v := 0.0
		if weight > 0 {
			v = norm[j] / weight
		}
		lo, hi := p.Lo[j], p.Hi[j]
		if hi > lo {
			p.Centroid[j] = lo + v*(hi-lo)
		} else {
			p.Centroid[j] = lo
		}
	}
	return p
}

// MaxFileID returns the largest file id currently stored (0 when
// empty), maintained incrementally alongside the id → shard index.
func (e *Engine) MaxFileID() uint64 {
	e.assignMu.RLock()
	defer e.assignMu.RUnlock()
	return e.maxID
}

// FileByID returns a copy of the stored file with the given id, routed
// directly to its owning shard through the id index.
func (e *Engine) FileByID(id uint64) (metadata.File, bool) {
	e.assignMu.RLock()
	idx, ok := e.assign[id]
	e.assignMu.RUnlock()
	if !ok {
		return metadata.File{}, false
	}
	return e.shards[idx].fileByID(id)
}

// InsertBatch validates and inserts files: ids must be nonzero, unique
// within the batch and absent from the store. The routing phase —
// validation plus id reservation in the assignment index — is
// serialized under placeMu so the uniqueness check cannot race another
// insert; the commit phase then runs outside it, so batches bound for
// different shards insert in parallel. All target shards are
// write-locked in ascending order (the deadlock-free total order
// Save's all-shard read-lock shares) before any insert lands, so each
// shard — and any snapshot — observes the batch atomically; a query
// fanning out across shards acquires per-shard read locks
// independently and sees per-shard (not cross-shard) atomicity. Each
// affected shard bumps its epoch once.
func (e *Engine) InsertBatch(files []*metadata.File) (Report, error) {
	if len(files) == 0 {
		return Report{}, nil
	}
	// Routing phase: validate, route, and reserve ids under placeMu.
	e.placeMu.Lock()
	e.assignMu.RLock()
	seen := make(map[uint64]bool, len(files))
	for _, f := range files {
		if f.ID == 0 {
			e.assignMu.RUnlock()
			e.placeMu.Unlock()
			return Report{}, fmt.Errorf("engine: insert without id (path %q)", f.Path)
		}
		if _, stored := e.assign[f.ID]; stored || seen[f.ID] {
			e.assignMu.RUnlock()
			e.placeMu.Unlock()
			return Report{}, fmt.Errorf("engine: duplicate file id %d", f.ID)
		}
		seen[f.ID] = true
	}
	e.assignMu.RUnlock()

	batches := make(map[int][]*metadata.File)
	for _, f := range files {
		idx := e.shardFor(f)
		batches[idx] = append(batches[idx], f)
	}
	e.assignMu.Lock()
	for idx, batch := range batches {
		for _, f := range batch {
			e.assign[f.ID] = idx
			if f.ID > e.maxID {
				e.maxID = f.ID
			}
		}
	}
	e.assignMu.Unlock()
	e.placeMu.Unlock()

	// Commit phase: lock every target shard in ascending order, then
	// run the per-shard sub-batches in parallel. A point-wise operation
	// racing a reserved-but-uncommitted id blocks on the shard lock and
	// observes the batch once it lands.
	targets := make([]int, 0, len(batches))
	for idx := range batches {
		targets = append(targets, idx)
	}
	sort.Ints(targets)
	for _, idx := range targets {
		e.shards[idx].mu.Lock()
	}
	unlock := func() {
		for _, idx := range targets {
			e.shards[idx].mu.Unlock()
		}
	}

	// Durability phase: with every target write-locked, stage the batch
	// record on every target shard's WAL before any shard applies
	// anything. A batch spanning shards carries a shared batch id and
	// the full target set, so recovery can drop a batch that did not
	// reach every target's log (it was never acknowledged) — the
	// atomic-batch guarantee survives a crash. A staging failure
	// rejects the whole batch before any insert lands; records already
	// staged on other targets are then incomplete and ignored by
	// recovery the same way. The fsync acknowledgements (the waits) are
	// collected here and drained only after the shard locks drop, so
	// concurrent writers overlap their group commits. Every collected
	// wait is called on every path — leaking one hangs Log.Close.
	var waits []func() error
	if e.durable() {
		var batchID uint64
		if len(targets) > 1 {
			batchID = e.batchSeq.Add(1)
		}
		waits = make([]func() error, 0, len(targets))
		for _, idx := range targets {
			sub := batches[idx]
			recs := make([]metadata.File, len(sub))
			for i, f := range sub {
				recs[i] = *f
			}
			rec := wal.Record{Op: wal.OpInsert, BatchID: batchID, Files: recs}
			if batchID != 0 {
				rec.Targets = targets
			}
			wait, err := e.shards[idx].stageRecord(rec)
			if err != nil {
				unlock()
				// The earlier targets' frames belong to a batch that
				// will never complete; recovery drops them. Their waits
				// must still run (commit verdicts are irrelevant — the
				// batch is already rejected).
				for _, w := range waits {
					_ = w()
				}
				e.unreserve(files)
				return Report{}, err
			}
			waits = append(waits, wait)
		}
	}

	results := make([]cluster.Result, len(targets))
	var wg sync.WaitGroup
	for i, idx := range targets {
		wg.Add(1)
		go func(i, idx int) {
			defer wg.Done()
			results[i] = e.shards[idx].insertFilesLocked(batches[idx])
			e.shards[idx].epoch.Add(1)
		}(i, idx)
	}
	wg.Wait()
	unlock()

	// Await the covering fsyncs outside every shard lock. A failed wait
	// means the batch applied but was never acknowledged durable — the
	// caller must treat it as indeterminate (DESIGN.md §7); the files
	// stay placed so the in-memory state remains coherent.
	var waitErr error
	for _, w := range waits {
		if err := w(); err != nil && waitErr == nil {
			waitErr = err
		}
	}
	if waitErr != nil {
		return Report{}, waitErr
	}

	if o := e.obsv.Load(); o != nil {
		for idx, batch := range batches {
			if idx < len(o.ShardInserts) && o.ShardInserts[idx] != nil {
				o.ShardInserts[idx].Add(uint64(len(batch)))
			}
		}
	}

	var total Report
	for i, res := range results {
		rep := reportFrom(res)
		if i == 0 {
			total = rep
		} else {
			total.mergeParallel(rep)
		}
	}
	return total, nil
}

// Delete removes a file by id, reporting whether it existed. The id
// index routes the delete to its owning shard — deletes on different
// shards run in parallel — and an unknown id is a no-op that touches no
// shard state and bumps no epoch. On a durable deployment the delete
// record is staged before it applies (a replayed delete of a since-
// vanished id is a harmless no-op); a WAL staging failure rejects the
// delete without applying it, and the group-commit fsync is awaited
// only after the shard lock drops. The index entry is removed only
// after the shard commit, so a concurrent insert of the same id is
// rejected as a duplicate until the delete has fully landed.
func (e *Engine) Delete(id uint64) (Report, bool, error) {
	e.assignMu.RLock()
	idx, ok := e.assign[id]
	e.assignMu.RUnlock()
	if !ok {
		return Report{}, false, nil
	}
	s := e.shards[idx]
	var res cluster.Result
	var found bool
	s.mu.Lock()
	wait, err := s.stageThen(wal.Record{Op: wal.OpDelete, ID: id}, func() bool {
		res, found = s.deleteLocked(id)
		return found
	})
	s.mu.Unlock()
	if err != nil {
		return Report{}, false, err
	}
	// The index entry goes regardless of the fsync verdict: the delete
	// already applied to the shard, and the assign index must track the
	// shard's contents.
	if found {
		e.assignMu.Lock()
		delete(e.assign, id)
		if id == e.maxID {
			e.recomputeMaxLocked()
		}
		e.assignMu.Unlock()
	}
	if err := wait(); err != nil {
		return Report{}, false, err
	}
	return reportFrom(res), found, nil
}

// Modify updates an existing file's attributes on its owning shard;
// modifies on different shards run in parallel. Durable deployments
// stage the replacement record before applying it; a WAL staging
// failure rejects the modify without applying it, and the fsync
// acknowledgement is awaited outside the shard lock.
func (e *Engine) Modify(f *metadata.File) (Report, bool, error) {
	e.assignMu.RLock()
	idx, ok := e.assign[f.ID]
	e.assignMu.RUnlock()
	if !ok {
		return Report{}, false, nil
	}
	s := e.shards[idx]
	var res cluster.Result
	var found bool
	s.mu.Lock()
	wait, err := s.stageThen(wal.Record{Op: wal.OpModify, Files: []metadata.File{*f}}, func() bool {
		res, found = s.modifyLocked(f)
		return found
	})
	s.mu.Unlock()
	if err != nil {
		return Report{}, false, err
	}
	if err := wait(); err != nil {
		return Report{}, false, err
	}
	return reportFrom(res), found, nil
}

// Flush propagates all pending changes on every shard. Each shard whose
// deployment had pending work logs the flush (durable deployments) and
// bumps its epoch; a WAL append failure stops the sweep with that
// shard's replicas untouched.
func (e *Engine) Flush() error {
	for _, s := range e.shards {
		if _, err := s.flush(); err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates structural statistics across shards and returns the
// per-shard breakdown.
func (e *Engine) Stats() (total ShardStats, per []ShardStats) {
	per = make([]ShardStats, len(e.shards))
	weightedBytes := 0
	for i, s := range e.shards {
		per[i] = s.stats()
		total.Units += per[i].Units
		total.IndexUnits += per[i].IndexUnits
		total.Files += per[i].Files
		total.Trees += per[i].Trees
		total.IndexBytesTotal += per[i].IndexBytesTotal
		if per[i].TreeHeight > total.TreeHeight {
			total.TreeHeight = per[i].TreeHeight
		}
		total.Epoch += per[i].Epoch
		weightedBytes += per[i].IndexBytesPerNode * per[i].Units
	}
	if total.Units > 0 {
		total.IndexBytesPerNode = weightedBytes / total.Units
	}
	total.Shard = -1
	return total, per
}

// Snapshot captures the engine under every shard's read lock — taken
// in ascending order before any shard is captured, so a snapshot
// racing a multi-shard batch sees either all of it or none of it.
func (e *Engine) Snapshot() *snapshot.Snapshot {
	for _, s := range e.shards {
		s.mu.RLock()
	}
	defer func() {
		for _, s := range e.shards {
			s.mu.RUnlock()
		}
	}()
	return e.snapshotLocked()
}

// snapshotLocked captures every shard's tree and epoch. The caller
// must hold every shard's read lock, so the epochs are the truncation
// points of exactly the state captured.
func (e *Engine) snapshotLocked() *snapshot.Snapshot {
	trees := make([]*semtree.Tree, len(e.shards))
	epochs := make([]uint64, len(e.shards))
	for i, s := range e.shards {
		trees[i] = s.primary.Tree
		epochs[i] = s.epoch.Load()
	}
	return snapshot.CaptureShards(trees, epochs)
}

// unreserve rolls back the assignment-index reservation of a rejected
// insert batch.
func (e *Engine) unreserve(files []*metadata.File) {
	e.assignMu.Lock()
	defer e.assignMu.Unlock()
	for _, f := range files {
		delete(e.assign, f.ID)
	}
	e.recomputeMaxLocked()
}

// recomputeMaxLocked rescans the assignment index for the largest
// stored id after a removal invalidated the incremental maximum. The
// caller must hold assignMu exclusively.
func (e *Engine) recomputeMaxLocked() {
	e.maxID = 0
	for fid := range e.assign {
		if fid > e.maxID {
			e.maxID = fid
		}
	}
}
