package engine

import (
	"context"
	"testing"

	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/trace"
)

// budgetEngine builds a multi-shard engine with the given offline group
// budget over a deterministic MSN population.
func budgetEngine(t *testing.T, shards, budget int) (*Engine, *trace.Set) {
	t.Helper()
	set := trace.MSN().Generate(600, 17)
	cfg := testConfig(24, shards)
	cfg.OfflineGroupBudget = budget
	e, err := Build(set.Files, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, set
}

func TestOfflineBudgetValidation(t *testing.T) {
	set := trace.MSN().Generate(100, 1)
	cfg := testConfig(10, 2)
	cfg.OfflineGroupBudget = -1
	if _, err := Build(set.Files, cfg); err == nil {
		t.Fatal("negative offline group budget accepted")
	}
	for _, b := range []int{0, 1, 2, 100} {
		cfg.OfflineGroupBudget = b
		if _, err := Build(set.Files, cfg); err != nil {
			t.Fatalf("budget %d rejected: %v", b, err)
		}
	}
}

// TestOfflineBudgetShardRouting: the boundary budgets map onto the
// off-line shard fan-out as documented — 0 keeps the 1+n/4 heuristic,
// 1 touches a single shard, and ≥ shard count touches every shard.
func TestOfflineBudgetShardRouting(t *testing.T) {
	const shards = 4
	for _, tc := range []struct{ budget, want int }{
		{0, 1 + shards/4},
		{1, 1},
		{shards, shards},
		{shards + 5, shards},
	} {
		e, _ := budgetEngine(t, shards, tc.budget)
		if got := e.offlineMaxShards(); got != tc.want {
			t.Errorf("budget %d: offlineMaxShards = %d, want %d", tc.budget, got, tc.want)
		}
	}
}

// TestBudgetAtLeastShardCountIsExhaustive: with the budget at (or
// above) both the shard count and every shard's group count, the
// off-line path must equal the exact single-union-store answer on a
// propagated snapshot — proving that neither shard routing nor group
// routing nor the conservative per-shard prunes ever drop a shard or
// group that would contribute to the exact answer.
func TestBudgetAtLeastShardCountIsExhaustive(t *testing.T) {
	for _, shards := range []int{1, 4} {
		e, set := budgetEngine(t, shards, 1000)
		gen := trace.NewQueryGen(set, stats.Zipf, nil, 23)
		ctx := context.Background()
		for i := 0; i < 40; i++ {
			rq := gen.Range(0.08)
			want := query.RangeTruth(set.Files, rq)
			got, err := e.Range(ctx, rq, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if r := stats.Recall(want, got.IDs); r != 1 {
				t.Fatalf("shards=%d range query %d: offline recall %.3f with exhaustive budget", shards, i, r)
			}
			if r := stats.Recall(got.IDs, want); r != 1 {
				t.Fatalf("shards=%d range query %d: answer has ids outside the truth", shards, i)
			}

			tq := gen.TopK(8)
			wantK := query.TopKTruth(set.Files, set.Norm, tq)
			gotK, err := e.TopK(ctx, tq, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if len(gotK.Targets) != shards {
				t.Fatalf("shards=%d topk query %d: exhaustive budget targeted %d shards", shards, i, len(gotK.Targets))
			}
			if r := stats.Recall(wantK, gotK.IDs); r != 1 {
				t.Fatalf("shards=%d topk query %d: offline recall %.3f with exhaustive budget", shards, i, r)
			}
		}
	}
}

// TestBudgetOneNeverInventsMatches: the minimal budget may miss range
// matches (that is the recall the harness measures) but everything it
// returns must be a true match, every searched shard was a real
// overlap candidate, and a point query must still find an existing
// path — the Bloom shard prune has no false negatives.
func TestBudgetOneNeverInventsMatches(t *testing.T) {
	e, set := budgetEngine(t, 4, 1)
	gen := trace.NewQueryGen(set, stats.Zipf, nil, 29)
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		rq := gen.Range(0.08)
		truth := map[uint64]bool{}
		for _, id := range query.RangeTruth(set.Files, rq) {
			truth[id] = true
		}
		got, err := e.Range(ctx, rq, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range got.IDs {
			if !truth[id] {
				t.Fatalf("range query %d: id %d answered but not a true match", i, id)
			}
		}
	}
	for i := 0; i < 60; i++ {
		f := set.Files[(i*97)%len(set.Files)]
		got, err := e.Point(ctx, query.Point{Filename: f.Path}, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range got.IDs {
			if id == f.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("point query for stored path %q missed id %d", f.Path, f.ID)
		}
	}
}

// TestBudgetBoundsSearchWork: the budget is a real breadth knob — the
// minimal budget searches no more units than the exhaustive one, and
// strictly fewer in aggregate over a query batch.
func TestBudgetBoundsSearchWork(t *testing.T) {
	eMin, set := budgetEngine(t, 4, 1)
	eMax, _ := budgetEngine(t, 4, 1000)
	genA := trace.NewQueryGen(set, stats.Zipf, nil, 31)
	genB := trace.NewQueryGen(set, stats.Zipf, nil, 31)
	ctx := context.Background()
	sumMin, sumMax := 0, 0
	for i := 0; i < 30; i++ {
		qa, qb := genA.TopK(8), genB.TopK(8)
		a, err := eMin.TopK(ctx, qa, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := eMax.TopK(ctx, qb, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		sumMin += a.Report.UnitsSearched
		sumMax += b.Report.UnitsSearched
	}
	if sumMin >= sumMax {
		t.Fatalf("budget 1 searched %d units, exhaustive budget %d — budget is not bounding work", sumMin, sumMax)
	}
}
